package flicker

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// These tests exercise the public API end to end, the way a downstream user
// of the library would.

func newTestPlatform(t *testing.T, seed string) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func echoPAL() PAL {
	return &PALFunc{
		PALName: "echo",
		Binary:  DescriptorCode("echo", "1.0", nil, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			return append([]byte("echo:"), input...), nil
		},
	}
}

func TestPublicAPISessionAndAttestation(t *testing.T) {
	p := newTestPlatform(t, "api-1")
	ca, err := NewPrivacyCA([]byte("api-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := NewQuoteDaemon(p.OSTPM(), Digest{}, ca, "api-host")
	if err != nil {
		t.Fatal(err)
	}
	nonce := SHA1Sum([]byte("api-nonce"))
	res, err := p.RunSession(echoPAL(), SessionOptions{Input: []byte("ping"), Nonce: &nonce})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	if string(res.Outputs) != "echo:ping" {
		t.Fatalf("outputs = %q", res.Outputs)
	}
	att, err := tqd.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	im, err := BuildImage(echoPAL(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Patch(res.SLBBase); err != nil {
		t.Fatal(err)
	}
	if err := VerifySession(ca.PublicKey(), att, nonce, im, []byte("ping"), res.Outputs); err != nil {
		t.Fatalf("attestation: %v", err)
	}
}

// Property: for arbitrary inputs, the verifier's offline recomputation of
// the final PCR-17 value always matches what the platform produced — the
// attestation algebra is total over the input space.
func TestSessionPCRAlgebraProperty(t *testing.T) {
	p := newTestPlatform(t, "api-prop")
	f := func(input []byte, nonceSeed []byte, useNonce bool) bool {
		if len(input) > 2000 {
			input = input[:2000]
		}
		var nonce *Digest
		if useNonce {
			n := SHA1Sum(nonceSeed)
			nonce = &n
		}
		res, err := p.RunSession(echoPAL(), SessionOptions{Input: input, Nonce: nonce})
		if err != nil || res.PALError != nil {
			return false
		}
		im, err := BuildImage(echoPAL(), false)
		if err != nil {
			return false
		}
		if err := im.Patch(res.SLBBase); err != nil {
			return false
		}
		return res.PCR17Final == ExpectedFinalPCR17(im, input, res.Outputs, nonce)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesExposed(t *testing.T) {
	b, i, fu := ProfileBroadcom(), ProfileInfineon(), ProfileFuture()
	if !(fu.TPMQuote < i.TPMQuote && i.TPMQuote < b.TPMQuote) {
		t.Fatal("profile ordering broken")
	}
	p, err := NewPlatform(Config{Seed: "api-inf", Profile: i})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunSession(echoPAL(), SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
}

func TestModuleInventoryAndTCB(t *testing.T) {
	inv := ModuleInventory()
	if len(inv) != 7 {
		t.Fatalf("inventory = %d modules", len(inv))
	}
	loc, _, err := TCBSize([]string{"OS Protection"})
	if err != nil || loc != 99 {
		t.Fatalf("TCB = %d (%v)", loc, err)
	}
}

func TestFullApplicationStoryOnOnePlatform(t *testing.T) {
	// One platform serves all four applications in sequence, sharing the
	// TPM, the SLB region, and the quote daemon — the "server consolidation"
	// picture of Figure 1.
	p := newTestPlatform(t, "api-story")
	ca, err := NewPrivacyCA([]byte("story-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuoteDaemon(p.OSTPM(), Digest{}, ca, "story-host"); err != nil {
		t.Fatal(err)
	}

	// 1. A sealing PAL stores a secret for its future self.
	var sealed []byte
	sealer := &PALFunc{
		PALName: "storage",
		Binary:  DescriptorCode("storage", "1.0", []string{"TPM Driver", "TPM Utilities"}, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			if len(input) > 0 {
				return env.Unseal(input)
			}
			blob, err := env.SealToSelf([]byte("long-term secret"))
			sealed = blob
			return []byte("stored"), err
		},
	}
	if res, err := p.RunSession(sealer, SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}

	// 2. A different PAL runs in between (and cannot unseal the secret).
	thief := &PALFunc{
		PALName: "thief",
		Binary:  DescriptorCode("thief", "1.0", nil, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			if _, err := env.Unseal(input); err == nil {
				return nil, errors.New("unsealed someone else's secret")
			}
			return []byte("blocked"), nil
		},
	}
	res, err := p.RunSession(thief, SessionOptions{Input: sealed})
	if err != nil || res.PALError != nil {
		t.Fatalf("isolation: %v %v", err, res.PALError)
	}

	// 3. The original PAL gets its secret back.
	res, err = p.RunSession(sealer, SessionOptions{Input: sealed})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	if !bytes.Equal(res.Outputs, []byte("long-term secret")) {
		t.Fatalf("recovered %q", res.Outputs)
	}
}

func TestSandboxedPALViaPublicAPI(t *testing.T) {
	p := newTestPlatform(t, "api-sbx")
	probe := &PALFunc{
		PALName: "probe",
		Binary:  DescriptorCode("probe", "1.0", []string{"OS Protection"}, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			if !env.Sandboxed() {
				return nil, errors.New("sandbox not active")
			}
			if _, err := env.ReadMem(0x100000, 16); err == nil {
				return nil, errors.New("read kernel memory from the sandbox")
			}
			return []byte("confined"), nil
		},
	}
	res, err := p.RunSession(probe, SessionOptions{Sandbox: true})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
}

func TestTwoStageViaPublicAPI(t *testing.T) {
	p := newTestPlatform(t, "api-2s")
	res, err := p.RunSession(echoPAL(), SessionOptions{Input: []byte("x"), TwoStage: true})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	im, _ := BuildImage(echoPAL(), true)
	im.Patch(res.SLBBase)
	if res.PCR17Final != ExpectedFinalPCR17(im, []byte("x"), res.Outputs, nil) {
		t.Fatal("two-stage algebra mismatch via public API")
	}
}
