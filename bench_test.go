package flicker

// Benchmark suite: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 7). Each benchmark runs the corresponding
// experiment from internal/bench against the platform simulation and
// reports the headline measurement as a custom metric in the paper's units
// (simulated milliseconds / seconds / fractions), alongside the usual
// real-time ns/op of the simulation itself.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or, for the full side-by-side tables, run:
//
//	go run ./cmd/benchtables

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"flicker/internal/bench"
)

// report attaches each row of a reproduced table as a custom metric.
func report(b *testing.B, t *bench.Table) {
	b.Helper()
	for _, r := range t.Rows {
		name := sanitizeMetric(r.Label) + "_" + sanitizeMetric(firstWord(r.Unit))
		b.ReportMetric(r.Measured, name)
	}
	if e := t.MaxRelError(); e > 0 {
		b.ReportMetric(e*100, "max_rel_err_%")
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '-', r == ':', r == '@':
			out = append(out, '_')
		}
	}
	return string(out)
}

func firstWord(s string) string {
	for i, r := range s {
		if r == ' ' {
			return s[:i]
		}
	}
	return s
}

// BenchmarkTable1RootkitBreakdown regenerates Table 1: the rootkit
// detector's per-operation overhead and the 1.02 s end-to-end query.
func BenchmarkTable1RootkitBreakdown(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Table1RootkitBreakdown()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkTable2SkinitVsSLBSize regenerates Table 2: SKINIT latency as a
// function of SLB size (0/4/16/32/64 KB).
func BenchmarkTable2SkinitVsSLBSize(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Table2SkinitVsSize()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkTable3SystemImpact regenerates Table 3: the 7:22.6 kernel build
// under periodic rootkit detection (full scale; the clock is simulated).
func BenchmarkTable3SystemImpact(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Table3SystemImpact(1.0)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkTable4DistcompOverhead regenerates Table 4: per-session overhead
// of the distributed-computing client at 1/2/4/8 s of application work.
func BenchmarkTable4DistcompOverhead(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Table4DistcompOverhead()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkFig8EfficiencyCurve regenerates Figure 8: Flicker efficiency vs
// user latency against 3/5/7-way replication.
func BenchmarkFig8EfficiencyCurve(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure8Efficiency()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkFig9aSSHSetupPAL regenerates Figure 9a: the SSH setup PAL
// breakdown (SKINIT, keygen, seal).
func BenchmarkFig9aSSHSetupPAL(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t1, _, err := bench.Figure9SSH()
		if err != nil {
			b.Fatal(err)
		}
		last = t1
	}
	report(b, last)
}

// BenchmarkFig9bSSHLoginPAL regenerates Figure 9b: the SSH login PAL
// breakdown (SKINIT, unseal, decrypt).
func BenchmarkFig9bSSHLoginPAL(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		_, t2, err := bench.Figure9SSH()
		if err != nil {
			b.Fatal(err)
		}
		last = t2
	}
	report(b, last)
}

// BenchmarkCASign regenerates Section 7.4.2: the CA's 906.2 ms certificate
// signing session.
func BenchmarkCASign(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.CASignLatency()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkRootkitEndToEnd isolates the Section 7.2 end-to-end number: one
// remote detection query (≈1.02 s simulated).
func BenchmarkRootkitEndToEnd(b *testing.B) {
	BenchmarkTable1RootkitBreakdown(b)
}

// BenchmarkSkinitOptimized measures the Section 7.2 optimization: the
// 4736-byte hash-and-extend stub cuts SKINIT from ~176 ms to ~14 ms.
func BenchmarkSkinitOptimized(b *testing.B) {
	prof := ProfileBroadcom()
	var full, stub float64
	for i := 0; i < b.N; i++ {
		full = float64(prof.SkinitCost(64*1024-4)) / 1e6
		stub = float64(prof.SkinitCost(4736)) / 1e6
	}
	b.ReportMetric(full, "skinit_64KB_ms")
	b.ReportMetric(stub, "skinit_stub_ms")
	b.ReportMetric(full-stub, "savings_ms")
}

// BenchmarkSec75BlockDevice regenerates the Section 7.5 experiment: file
// copies interleaved with repeated 8.3 s sessions, zero I/O errors.
func BenchmarkSec75BlockDevice(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Sec75BlockDeviceIntegrity(4<<20, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkAblationTPMProfiles compares Broadcom / Infineon / future-
// hardware profiles across the session-critical operations.
func BenchmarkAblationTPMProfiles(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationTPMProfiles()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkAblationNextGen quantifies the [19] recommendations: hardware-
// protected PAL context vs TPM sealed storage across hardware generations.
func BenchmarkAblationNextGen(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationNextGenSession()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkAblationMulticore compares classic (OS-suspending) sessions with
// partitioned launches that keep the OS running on the other cores.
func BenchmarkAblationMulticore(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationMulticoreImpact()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report(b, last)
}

// BenchmarkSessionRoundTrip measures the real-time cost of one simulated
// hello-world Flicker session (the simulator's own speed, not the paper's).
func BenchmarkSessionRoundTrip(b *testing.B) {
	p, err := NewPlatform(Config{Seed: "bench-rt"})
	if err != nil {
		b.Fatal(err)
	}
	hello := &PALFunc{
		PALName: "hello",
		Binary:  DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			return []byte("Hello, world"), nil
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.RunSession(hello, SessionOptions{})
		if err != nil || res.PALError != nil {
			b.Fatalf("%v %v", err, res.PALError)
		}
	}
}

// BenchmarkSessionThroughput measures back-to-back session throughput of the
// pipeline engine on cached SLB images — classic vs partitioned — in real
// sessions/second, and confirms the image cache keeps the hot path free of
// relinking.
func BenchmarkSessionThroughput(b *testing.B) {
	hello := &PALFunc{
		PALName: "hello",
		Binary:  DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			return []byte("Hello, world"), nil
		},
	}
	run := func(b *testing.B, f func(p *Platform) (*SessionResult, error)) {
		p, err := NewPlatform(Config{Seed: "bench-tp", Profile: ProfileFuture()})
		if err != nil {
			b.Fatal(err)
		}
		// Warm the image cache so the measured loop is the steady state.
		if _, err := f(p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		start := nowSeconds()
		for i := 0; i < b.N; i++ {
			res, err := f(p)
			if err != nil || res.PALError != nil {
				b.Fatalf("%v %v", err, res.PALError)
			}
		}
		b.StopTimer()
		if dt := nowSeconds() - start; dt > 0 {
			b.ReportMetric(float64(b.N)/dt, "sessions/s")
		}
		st := p.Stats()
		b.ReportMetric(float64(st.ImageBuilds), "image_builds")
		if st.ImageBuilds != 1 {
			b.Fatalf("hot path relinked the SLB image (%d builds)", st.ImageBuilds)
		}
	}
	b.Run("classic", func(b *testing.B) {
		run(b, func(p *Platform) (*SessionResult, error) {
			return p.RunSession(hello, SessionOptions{})
		})
	})
	b.Run("partitioned", func(b *testing.B) {
		run(b, func(p *Platform) (*SessionResult, error) {
			return p.RunSessionConcurrent(hello, SessionOptions{})
		})
	})
}

// BenchmarkSessionThroughputTraced measures the tracing tax on the session
// hot path at three sample rates: 0 (the sampler rejects every root — one
// counter check per session, gated in CI to stay within 5% of the untraced
// baseline), 0.01 (a steady production setting), and 1.0 (every session
// pays full span assembly into the flight recorder).
func BenchmarkSessionThroughputTraced(b *testing.B) {
	hello := &PALFunc{
		PALName: "hello",
		Binary:  DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			return []byte("Hello, world"), nil
		},
	}
	for _, bc := range []struct {
		name string
		rate float64
	}{{"rate=0", 0}, {"rate=0.01", 0.01}, {"rate=1", 1}} {
		b.Run(bc.name, func(b *testing.B) {
			p, err := NewPlatform(Config{Seed: "bench-trace", Profile: ProfileFuture()})
			if err != nil {
				b.Fatal(err)
			}
			tracer := NewTracer("bench", p.Clock.Now)
			tracer.SetSampleRate(bc.rate)
			rec := NewTraceFlightRecorder(64, 64, 0)
			tracer.OnComplete(rec.Offer)
			run := func() error {
				root := tracer.StartSampled("bench.run")
				var o SessionOptions
				if root != nil {
					o.TraceID = root.TraceHex()
					o.Observer = NewSessionTraceObserver(root)
				}
				res, err := p.RunSession(hello, o)
				if err != nil {
					return err
				}
				root.EndErr(res.PALError)
				return res.PALError
			}
			if err := run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := nowSeconds()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if dt := nowSeconds() - start; dt > 0 {
				b.ReportMetric(float64(b.N)/dt, "sessions/s")
			}
			// Short -benchtime runs may not reach a 1-in-100 sample, so only
			// full sampling asserts retention.
			if bc.rate >= 1 {
				if _, triggered, sampled := rec.Stats(); triggered+sampled == 0 {
					b.Fatal("traced benchmark retained no traces")
				}
			}
		})
	}
}

// BenchmarkPoolThroughput measures aggregate sessions/second through the
// sharded pool at 1 and 4 shards. Each platform serializes its sessions, so
// the pool's speedup comes from running independent platforms side by side;
// distinct PAL names exercise the affinity router so every shard stays warm
// for its own PALs.
//
// Two variants: "cpu" runs pure-simulation sessions (scales with physical
// cores — on a single-core host the shards time-slice and aggregate
// throughput stays flat), and "paced" emulates device-paced sessions where
// each PAL blocks on real hardware latency for ~200µs, the regime the pool
// exists for: independent platforms overlap their devices' wait time, so
// 4 shards sustain ~4× the sessions/s of 1 on any core count.
func BenchmarkPoolThroughput(b *testing.B) {
	makePALs := func(fn func(env *Env, input []byte) ([]byte, error)) []PAL {
		pals := make([]PAL, 8)
		for i := range pals {
			name := "pal-" + string(rune('a'+i))
			pals[i] = &PALFunc{
				PALName: name,
				Binary:  DescriptorCode(name, "1.0", nil, nil),
				Fn:      fn,
			}
		}
		return pals
	}
	run := func(b *testing.B, shards int, pals []PAL) {
		pool, err := NewPool(PoolConfig{
			Shards:   shards,
			QueueLen: 4,
			Platform: Config{Seed: "bench-pool", Profile: ProfileFuture()},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		// Warm every PAL's home shard so the measured loop runs with hot
		// image and measurement caches, as the classic benchmark does.
		for _, pl := range pals {
			if _, err := pool.Run(pl, SessionOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		// Enough concurrent submitters to keep 4 shards fed even when
		// GOMAXPROCS is low (RunParallel spawns GOMAXPROCS×parallelism
		// goroutines; parallelism does not inherit across b.Run).
		b.SetParallelism(8)
		b.ResetTimer()
		start := nowSeconds()
		var n atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			i := int(n.Add(1))
			for pb.Next() {
				res, err := pool.Run(pals[i%len(pals)], SessionOptions{})
				if err != nil || res.PALError != nil {
					b.Errorf("%v %v", err, res.PALError)
					return
				}
				i++
			}
		})
		b.StopTimer()
		if dt := nowSeconds() - start; dt > 0 {
			b.ReportMetric(float64(b.N)/dt, "sessions/s")
		}
	}
	quick := func(env *Env, input []byte) ([]byte, error) {
		return []byte("ok"), nil
	}
	// paced emulates a PAL whose session is dominated by real device latency
	// (a hardware TPM takes hundreds of ms per SKINIT; scaled down here to
	// keep the benchmark quick). The sleep happens inside the session, so a
	// shard's worker is occupied but its CPU is free for other shards.
	paced := func(env *Env, input []byte) ([]byte, error) {
		time.Sleep(200 * time.Microsecond)
		return []byte("ok"), nil
	}
	for _, bc := range []struct {
		name string
		fn   func(env *Env, input []byte) ([]byte, error)
	}{{"cpu", quick}, {"paced", paced}} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", bc.name, shards), func(b *testing.B) {
				run(b, shards, makePALs(bc.fn))
			})
		}
	}
}

// BenchmarkBatchThroughput measures the Section 7 amortization on the real
// engine: requests/second through one pool shard when every request pays
// its own session (batch=1) versus when the coalescer groups 8 requests
// behind one SKINIT (batch=8). The PAL is device-paced — its fixed
// per-session work (the stand-in for SKINIT + Seal/Unseal on a hardware
// TPM, scaled down to keep the benchmark quick) dwarfs per-request work,
// the regime batching exists for — so batch=8 must sustain at least 3×
// the requests/s of singletons on the same shard count.
func BenchmarkBatchThroughput(b *testing.B) {
	paced := &PALFunc{
		PALName: "paced",
		Binary:  DescriptorCode("paced", "1.0", nil, nil),
		Fn: func(env *Env, input []byte) ([]byte, error) {
			// Per-request application work: a short CPU-bound hash chain
			// (a timer sleep here would overshoot under load and swamp the
			// measurement on slow hosts).
			d := SHA1Sum(input)
			for i := 0; i < 32; i++ {
				d = SHA1Sum(d[:])
			}
			return append([]byte("ok:"), d[:4]...), nil
		},
	}
	run := func(b *testing.B, maxBatch int) float64 {
		pool, err := NewPool(PoolConfig{
			Shards:   1,
			QueueLen: 64,
			MaxBatch: maxBatch,
			MaxWait:  2 * time.Millisecond,
			Platform: Config{Seed: "bench-batch", Profile: ProfileFuture()},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		// Session entry/exit overhead: a BatchPAL whose OpenBatch sleeps
		// once per session (SKINIT + Unseal stand-in) regardless of how
		// many requests ride behind it.
		entry := &sessionOverheadPAL{inner: paced, overhead: 2 * time.Millisecond}
		if _, err := pool.Run(entry, SessionOptions{Input: []byte("warm")}); err != nil {
			b.Fatal(err)
		}
		b.SetParallelism(16)
		b.ResetTimer()
		start := nowSeconds()
		var n atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := n.Add(1)
				res, err := pool.Run(entry, SessionOptions{Input: []byte(fmt.Sprintf("req-%d", i))})
				if err != nil || res.PALError != nil {
					b.Errorf("%v %v", err, res.PALError)
					return
				}
			}
		})
		b.StopTimer()
		dt := nowSeconds() - start
		if dt <= 0 {
			return 0
		}
		rps := float64(b.N) / dt
		b.ReportMetric(rps, "requests/s")
		return rps
	}
	var single, batched float64
	b.Run("singleton", func(b *testing.B) { single = run(b, 1) })
	b.Run("batch=8", func(b *testing.B) { batched = run(b, 8) })
	if single > 0 && batched > 0 {
		speedup := batched / single
		b.Logf("amortization: %.0f req/s singleton, %.0f req/s batched (%.1fx)", single, batched, speedup)
		if speedup < 3 {
			b.Fatalf("batch=8 speedup %.2fx < 3x acceptance bar", speedup)
		}
	}
}

// sessionOverheadPAL wraps a PAL with a fixed real-time cost paid once per
// SESSION (at OpenBatch), modeling SKINIT + Unseal on hardware: singletons
// pay it per request, batches amortize it across the group.
type sessionOverheadPAL struct {
	inner    PAL
	overhead time.Duration
}

func (s *sessionOverheadPAL) Name() string { return s.inner.Name() }
func (s *sessionOverheadPAL) Code() []byte { return s.inner.Code() }
func (s *sessionOverheadPAL) Run(env *Env, input []byte) ([]byte, error) {
	time.Sleep(s.overhead)
	return s.inner.Run(env, input)
}
func (s *sessionOverheadPAL) OpenBatch(env *Env, header []byte, n int) (any, error) {
	time.Sleep(s.overhead)
	return nil, nil
}
func (s *sessionOverheadPAL) RunRequest(env *Env, bctx any, i int, input []byte) ([]byte, error) {
	return s.inner.Run(env, input)
}
func (s *sessionOverheadPAL) CloseBatch(env *Env, bctx any) ([]byte, error) { return nil, nil }

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
