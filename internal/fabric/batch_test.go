package fabric

// Tests of the batched, pipelined fabric RPC tentpole: wire-frame
// coalescing, the runBatch codec frames and their forged-count clamps,
// suffix-only failover resubmission, the heartbeat priority lane, and the
// batch trace shape.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flicker/internal/pal"
	"flicker/internal/trace"
)

// batchRig is a fabRig with the wire-frame coalescer enabled and every host
// admitted.
func batchRig(t *testing.T, hosts int, ccfg ControllerConfig) *fabRig {
	t.Helper()
	if ccfg.MaxBatch == 0 {
		ccfg.MaxBatch = 8
	}
	r := newFabRig(t, hosts, ccfg)
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// runAll fires n concurrent Runs with distinct inputs and returns the
// outputs, failing the test on any error.
func runAll(t *testing.T, c *Controller, n int) map[string]string {
	t.Helper()
	var mu sync.Mutex
	outs := make(map[string]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fmt.Sprintf("j%d", i)
			out, err := c.Run("echo", []byte(in))
			if err != nil {
				t.Errorf("run %s: %v", in, err)
				return
			}
			mu.Lock()
			outs[in] = string(out)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return outs
}

// Batched runs must return byte-identical outputs to singleton fabric runs,
// while executing strictly fewer physical sessions than runs (the
// amortization that motivates the whole tentpole).
func TestFabricBatchedOutputsBitIdenticalToSingleton(t *testing.T) {
	const runs = 32

	// Singleton fabric: one session per run.
	single := newFabRig(t, 1, ControllerConfig{Seed: "t"})
	if err := single.ctrl.Admit("host0"); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, runs)
	for i := 0; i < runs; i++ {
		in := fmt.Sprintf("j%d", i)
		out, err := single.ctrl.Run("echo", []byte(in))
		if err != nil {
			t.Fatal(err)
		}
		want[in] = string(out)
	}

	// Batched fabric: same inputs, concurrent so the coalescer can group.
	r := batchRig(t, 1, ControllerConfig{Seed: "t", MaxBatch: 8, MaxWait: 50 * time.Millisecond})
	got := runAll(t, r.ctrl, runs)
	for in, w := range want {
		if got[in] != w {
			t.Fatalf("batched output for %q = %q, singleton = %q", in, got[in], w)
		}
	}

	// Amortization: the batch host executed fewer physical sessions than
	// runs (1 admission session + one per flushed frame).
	phys := r.hosts[0].pool.Stats().Sessions
	if phys >= runs+1 {
		t.Fatalf("batched fabric ran %d physical sessions for %d runs — nothing coalesced", phys, runs)
	}
	// The coalescer's own accounting saw at least one flush.
	flush := r.reg.Counter("flicker_fabric_batch_flush_total", "", "reason")
	total := 0.0
	for _, reason := range []string{"full", "timeout", "drain"} {
		total += flush.With(reason).Value()
	}
	if total == 0 {
		t.Fatal("flicker_fabric_batch_flush_total never incremented")
	}
}

// Killing a host mid-load under batching loses no accepted jobs — the
// batched analogue of TestFabricFailoverLosesNoAcceptedJobs.
func TestFabricBatchFailoverLosesNoAcceptedJobs(t *testing.T) {
	r := batchRig(t, 3, ControllerConfig{Seed: "t", HostInFlight: 1, MaxBatch: 4})
	const jobs = 60
	var wg sync.WaitGroup
	var done atomic.Int64
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := r.ctrl.Run("echo", []byte(fmt.Sprintf("j%d", i)))
			if err != nil {
				errs <- fmt.Errorf("job %d: %w", i, err)
				return
			}
			if string(out) != fmt.Sprintf("echo:j%d", i) {
				errs <- fmt.Errorf("job %d: bad output %q", i, out)
				return
			}
			done.Add(1)
		}(i)
		if i == jobs/2 {
			r.hosts[1].Kill()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if done.Load() != jobs {
		t.Fatalf("completed %d/%d jobs", done.Load(), jobs)
	}
}

// rewriteBatchResp decodes a kindRunBatchResp frame, applies fn, and
// re-encodes it — the interposition hook the failover tests use to forge
// host behavior at the wire.
func rewriteBatchResp(t *testing.T, raw []byte, fn func(*runBatchResp)) []byte {
	t.Helper()
	if len(raw) == 0 || raw[0] != kindRunBatchResp {
		return raw
	}
	br, err := decodeRunBatchResp(raw[1:])
	if err != nil {
		t.Errorf("interposer decode: %v", err)
		return raw
	}
	fn(br)
	return appendRunBatchResp(nil, br)
}

// When a batch aborts mid-frame, the host reports the completed prefix as
// final and the interrupted suffix as runLost; the controller must deliver
// the prefix replies untouched and resubmit ONLY the suffix — to a host that
// has not already failed the job — under the same trace root.
func TestFabricBatchSuffixOnlyResubmission(t *testing.T) {
	r := batchRig(t, 2, ControllerConfig{
		Seed: "t", MaxBatch: 4, MaxWait: 3 * time.Second, TraceSample: 1,
	})

	var mu sync.Mutex
	received := map[string][]string{} // host -> member inputs, in arrival order
	var rewritten []string            // inputs whose status we forged to runLost
	var forged atomic.Bool
	for _, h := range r.hosts {
		h := h
		real := h.handle
		h.port.SetHandler(func(req []byte) []byte {
			if len(req) == 0 {
				return real(req)
			}
			switch req[0] {
			case kindRun:
				if rr, err := decodeRun(req[1:]); err == nil {
					mu.Lock()
					received[h.name] = append(received[h.name], string(rr.Input))
					mu.Unlock()
				}
				return real(req)
			case kindRunBatch:
				br, err := decodeRunBatch(req[1:])
				if err != nil {
					t.Errorf("interposer decode: %v", err)
					return real(req)
				}
				var inputs []string
				for _, m := range br.Members {
					inputs = append(inputs, string(m.Input))
				}
				mu.Lock()
				received[h.name] = append(received[h.name], inputs...)
				mu.Unlock()
				resp := real(append([]byte(nil), req...))
				if len(br.Members) >= 2 && forged.CompareAndSwap(false, true) {
					// Forge an abort that interrupted the second half: the
					// prefix stays as the host produced it, the suffix comes
					// back runLost.
					cut := len(br.Members) / 2
					mu.Lock()
					rewritten = append(rewritten, inputs[cut:]...)
					mu.Unlock()
					return rewriteBatchResp(t, resp, func(b *runBatchResp) {
						for i := cut; i < len(b.Members); i++ {
							b.Members[i] = runBatchMemberResp{Status: runLost, Err: "forced abort"}
						}
					})
				}
				return resp
			}
			return real(req)
		})
	}

	outs := runAll(t, r.ctrl, 4)
	for i := 0; i < 4; i++ {
		in := fmt.Sprintf("j%d", i)
		if outs[in] != "echo:"+in {
			t.Fatalf("output for %q = %q", in, outs[in])
		}
	}
	if !forged.Load() {
		t.Fatal("no batch frame with >= 2 members ever formed; coalescer broken")
	}

	mu.Lock()
	defer mu.Unlock()
	// Exactly the forged suffix was resubmitted, nothing else.
	if st := r.ctrl.Stats(); int(st.Resubmits) != len(rewritten) {
		t.Fatalf("resubmits = %d, want %d (the forged suffix only)", st.Resubmits, len(rewritten))
	}
	// And each resubmitted member traveled to a host that had not already
	// failed it: its input shows up exactly twice across the fleet, on two
	// different hosts.
	for _, in := range rewritten {
		hosts := []string{}
		for name, ins := range received {
			for _, got := range ins {
				if got == in {
					hosts = append(hosts, name)
				}
			}
		}
		if len(hosts) != 2 || hosts[0] == hosts[1] {
			t.Fatalf("resubmitted input %q seen on hosts %v, want exactly two distinct", in, hosts)
		}
	}

	// The resubmission is visible as one trace: two attempts under one root,
	// pinned by the failover trigger.
	var td *trace.TraceData
	for _, cand := range r.ctrl.Traces().Recent(0, "", "") {
		if cand.Trigger == "failover-resubmit" {
			td = cand
		}
	}
	if td == nil {
		t.Fatal("no failover-resubmit trace retained")
	}
	attempts := 0
	for _, s := range td.Spans {
		if s.Name == "attempt" {
			attempts++
		}
	}
	if attempts != 2 {
		t.Fatalf("failover trace has %d attempts, want 2 under one root", attempts)
	}
	tree := td.Tree()
	if tree == nil || tree.Name != "fabric.run" {
		t.Fatalf("failover tree root = %+v, want fabric.run", tree)
	}
	treeAttempts := 0
	for _, ch := range tree.Children {
		if ch.Name == "attempt" {
			treeAttempts++
		}
	}
	if treeAttempts != 2 {
		t.Fatalf("failover tree has %d attempt children, want 2 under one root", treeAttempts)
	}
}

// A host that echoes the wrong frame ID (or the wrong member count) is
// talking protocol garbage: the controller treats it like a crash and
// resubmits the whole frame to a survivor.
func TestFabricBatchFrameEchoMismatchIsGarbage(t *testing.T) {
	r := batchRig(t, 2, ControllerConfig{Seed: "t", MaxBatch: 4, MaxWait: 3 * time.Second})
	var victim atomic.Pointer[Host]
	var forged atomic.Bool
	for _, h := range r.hosts {
		h := h
		real := h.handle
		h.port.SetHandler(func(req []byte) []byte {
			resp := real(req)
			if len(req) > 0 && req[0] == kindRunBatch && forged.CompareAndSwap(false, true) {
				victim.Store(h)
				// Flip a bit of the echoed frame ID (first 8 bytes after the
				// kind byte).
				resp = append([]byte(nil), resp...)
				resp[8] ^= 0xFF
			}
			return resp
		})
	}
	outs := runAll(t, r.ctrl, 4)
	for i := 0; i < 4; i++ {
		in := fmt.Sprintf("j%d", i)
		if outs[in] != "echo:"+in {
			t.Fatalf("output for %q = %q", in, outs[in])
		}
	}
	if !forged.Load() {
		t.Fatal("no batch frame ever formed")
	}
	st := r.ctrl.Stats()
	if st.Resubmits == 0 {
		t.Fatal("frame-echo garbage caused no resubmission")
	}
	for _, hs := range st.PerHost {
		if hs.Name == victim.Load().Name() && hs.State != "lost" {
			t.Fatalf("garbage-talking host state = %s, want lost", hs.State)
		}
	}
}

// Heartbeats ride the priority lane: a host saturated with batched data
// frames (a blocking PAL holding its pool, the pipelining window full, and
// more frames queued) still answers probes — misses stay zero under a
// MissThreshold of 1 — and once the saturation clears, re-attestation
// succeeds and the host is still admitted.
func TestFabricBatchHeartbeatPriorityUnderSaturation(t *testing.T) {
	r := newFabRig(t, 1, ControllerConfig{
		Seed: "t", MaxBatch: 2, MaxWait: time.Millisecond, Window: 1,
		MissThreshold: 1, ReattestEvery: 2,
	})
	release := make(chan struct{})
	blocking := &pal.Func{
		PALName: "block",
		Binary:  pal.DescriptorCode("block", "1.0", nil, nil),
		Fn: func(_ *pal.Env, in []byte) ([]byte, error) {
			<-release
			return in, nil
		},
	}
	if err := r.ctrl.RegisterPAL(blocking); err != nil {
		t.Fatal(err)
	}
	if err := r.hosts[0].RegisterPAL(blocking); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Admit("host0"); err != nil {
		t.Fatal(err)
	}

	const jobs = 6
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := r.ctrl.Run("block", []byte{byte(i)}); err != nil {
				t.Errorf("blocked run %d: %v", i, err)
			}
		}(i)
	}
	// Wait until the host is genuinely saturated: a frame is executing (and
	// blocked) inside its pool.
	for i := 0; r.hosts[0].InFlight() == 0; i++ {
		if i > 10000 {
			t.Fatal("host never saturated")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Tick 1 (heartbeats only): the probe must bypass the full batch queue
	// and window. With MissThreshold 1, a single queued-behind-data probe
	// would evict the host.
	r.ctrl.Tick()
	if r.ctrl.Live() != 1 {
		t.Fatal("saturated-but-alive host was evicted by heartbeat")
	}
	for _, hs := range r.ctrl.Hosts() {
		if hs.Misses != 0 {
			t.Fatalf("saturated host misses = %d, want 0", hs.Misses)
		}
	}

	close(release)
	wg.Wait()

	// Tick 2: the re-attestation sweep runs now that sessions drained; the
	// host must survive it.
	r.ctrl.Tick()
	if r.ctrl.Live() != 1 {
		t.Fatal("host did not survive re-attestation after saturation")
	}
	for _, hs := range r.ctrl.Hosts() {
		if hs.Reattests != 1 {
			t.Fatalf("reattests = %d, want 1", hs.Reattests)
		}
	}
}

// The lead trace of a batched group descends attempt → host.runBatch →
// host.run → session, with the batch size annotated on the attempt.
func TestFabricBatchTraceShape(t *testing.T) {
	r := batchRig(t, 1, ControllerConfig{
		Seed: "t", MaxBatch: 4, MaxWait: 3 * time.Second, TraceSample: 1,
	})
	outs := runAll(t, r.ctrl, 4)
	if len(outs) != 4 {
		t.Fatalf("only %d/4 runs returned", len(outs))
	}
	var td *trace.TraceData
	for _, cand := range r.ctrl.Traces().Recent(0, "", "") {
		if cand.Name != "fabric.run" {
			continue
		}
		for _, s := range cand.Spans {
			if s.Name == "host.runBatch" {
				td = cand
			}
		}
	}
	if td == nil {
		t.Fatal("no trace carries a host.runBatch segment (lead trace lost)")
	}
	names := spanNames(td)
	for _, want := range []string{"attempt", "host.runBatch", "host.run", "session"} {
		if names[want] == 0 {
			t.Fatalf("batch trace missing %q; have %v", want, names)
		}
	}
	tree := td.Tree()
	if tree == nil || tree.Name != "fabric.run" || len(tree.Children) == 0 {
		t.Fatalf("tree root = %+v", tree)
	}
	var attempt *trace.TraceNode
	for _, ch := range tree.Children {
		if ch.Name == "attempt" {
			attempt = ch
		}
	}
	if attempt == nil {
		t.Fatal("no attempt child under fabric.run root")
	}
	batched := false
	for _, s := range td.Spans {
		if s.Name != "attempt" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "batch" && a.Value != "" && a.Value != "1" {
				batched = true
			}
		}
	}
	if !batched {
		t.Fatalf("no attempt span carries a batch>1 attr; spans = %v", names)
	}
	// The host.runBatch segment hangs under the attempt.
	foundBatchSeg := false
	var walk func(n *trace.TraceNode)
	walk = func(n *trace.TraceNode) {
		if n.Name == "host.runBatch" {
			foundBatchSeg = true
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(attempt)
	if !foundBatchSeg {
		t.Fatal("host.runBatch is not a descendant of the attempt span")
	}
}

// --- codec: runBatch frames --------------------------------------------------

func TestCodecRunBatchRoundTrip(t *testing.T) {
	want := &runBatchReq{
		Frame: 0xDEADBEEF01,
		PAL:   "echo",
		Trace: traceCtx{TraceID: 0xA1, Parent: 0xA2},
		Members: []runBatchMember{
			{Input: []byte("one"), Trace: traceCtx{TraceID: 0xB1, Parent: 0xB2}},
			{Input: nil},
			{Input: []byte("three")},
		},
	}
	got, err := decodeRunBatch(appendRunBatch(nil, want)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Frame != want.Frame || got.PAL != want.PAL || got.Trace != want.Trace {
		t.Fatalf("header round trip = %+v", got)
	}
	if len(got.Members) != 3 {
		t.Fatalf("member count = %d", len(got.Members))
	}
	for i := range want.Members {
		if string(got.Members[i].Input) != string(want.Members[i].Input) ||
			got.Members[i].Trace != want.Members[i].Trace {
			t.Fatalf("member %d = %+v, want %+v", i, got.Members[i], want.Members[i])
		}
	}
	// Trailing bytes are rejected.
	if _, err := decodeRunBatch(append(appendRunBatch(nil, want)[1:], 0xEE)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes = %v", err)
	}
}

func TestCodecRunBatchRespRoundTrip(t *testing.T) {
	want := &runBatchResp{
		Frame: 7,
		Members: []runBatchMemberResp{
			{Status: runOK, Output: []byte("out0"), Spans: sampleSpans()},
			{Status: runPALError, Err: "boom"},
			{Status: runLost, Err: "aborted"},
		},
		Spans: sampleSpans(),
	}
	got, err := decodeRunBatchResp(appendRunBatchResp(nil, want)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Frame != 7 || len(got.Members) != 3 || len(got.Spans) != 2 {
		t.Fatalf("resp round trip = %+v", got)
	}
	if got.Members[0].Status != runOK || string(got.Members[0].Output) != "out0" ||
		len(got.Members[0].Spans) != 2 {
		t.Fatalf("member 0 = %+v", got.Members[0])
	}
	if got.Members[1].Status != runPALError || got.Members[1].Err != "boom" {
		t.Fatalf("member 1 = %+v", got.Members[1])
	}
	if got.Members[2].Status != runLost {
		t.Fatalf("member 2 = %+v", got.Members[2])
	}
	if _, err := decodeRunBatchResp(append(appendRunBatchResp(nil, want)[1:], 0xEE)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes = %v", err)
	}
}

// A forged member count in either direction may not size an allocation: both
// decoders clamp the count against what the remaining bytes could frame —
// the `flickervet untrustedlen` discipline for the new frames.
func TestCodecForgedBatchCountsRejected(t *testing.T) {
	req := &runBatchReq{
		Frame: 1, PAL: "echo",
		Members: []runBatchMember{{Input: []byte("a")}, {Input: []byte("b")}},
	}
	raw := appendRunBatch(nil, req)[1:]
	body := append([]byte(nil), raw...)
	// Count sits after frame(8) + pal len(2)+name + traceCtx(16).
	off := 8 + 2 + len("echo") + 16
	binary.BigEndian.PutUint16(body[off:off+2], 0xFFFF)
	if _, err := decodeRunBatch(body); !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "batch count") {
		t.Fatalf("forged request count = %v, want clamp rejection", err)
	}
	// A forged member input length may not slice past the frame.
	body = append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(body[off+2:off+6], 0xFFFFFFF0)
	if _, err := decodeRunBatch(body); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("forged member length = %v", err)
	}

	resp := &runBatchResp{Frame: 1, Members: []runBatchMemberResp{{Status: runOK}, {Status: runOK}}}
	rraw := appendRunBatchResp(nil, resp)[1:]
	body = append([]byte(nil), rraw...)
	binary.BigEndian.PutUint16(body[8:10], 0xFFFF) // count sits after frame(8)
	if _, err := decodeRunBatchResp(body); !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "batch count") {
		t.Fatalf("forged response count = %v, want clamp rejection", err)
	}
	// Forged member output length.
	body = append([]byte(nil), rraw...)
	binary.BigEndian.PutUint32(body[11:15], 0xFFFFFFF0) // first member: status(1) then output len
	if _, err := decodeRunBatchResp(body); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("forged member output length = %v", err)
	}
}

// Batched concurrent traffic, ticks, stats reads, and a mid-load kill under
// -race: the batched dispatcher's goroutines (coalescer, frame goroutines,
// window lanes) against the controller's full external surface.
func TestFabricBatchConcurrentTrafficRace(t *testing.T) {
	r := batchRig(t, 3, ControllerConfig{Seed: "t", ReattestEvery: 3, MaxBatch: 4})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := r.ctrl.Run("echo", []byte{byte(w), byte(i)})
				if err != nil && !errors.Is(err, ErrNoHosts) {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			r.ctrl.Tick()
			r.ctrl.Stats()
			r.ctrl.Hosts()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.hosts[2].Kill()
	}()
	wg.Wait()
}
