package fabric

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/metrics"
	"flicker/internal/netsim"
	"flicker/internal/pal"
	"flicker/internal/simtime"
)

func testPAL(name string) pal.PAL {
	return &pal.Func{
		PALName: name,
		Binary:  pal.DescriptorCode(name, "1.0", nil, nil),
		Fn: func(_ *pal.Env, input []byte) ([]byte, error) {
			return append([]byte(name+":"), input...), nil
		},
	}
}

// tamperedAdmissionPAL computes the right output but from different code
// bytes: its launch measurement — and therefore its quoted PCR-17 — can
// never match the controller's registered build.
func tamperedAdmissionPAL() pal.PAL {
	return &pal.Func{
		PALName: AdmissionPALName,
		Binary:  pal.DescriptorCode(AdmissionPALName, "1.0-evil", nil, nil),
		Fn: func(_ *pal.Env, input []byte) ([]byte, error) {
			return AdmissionReply(input), nil
		},
	}
}

type fabRig struct {
	clock *simtime.Clock
	sw    *netsim.Switch
	ca    *attest.PrivacyCA
	ctrl  *Controller
	hosts []*Host
	reg   *metrics.Registry
}

// newFabRig stands up a controller and n admitted hosts, all serving the
// "echo" test PAL.
func newFabRig(t *testing.T, n int, ccfg ControllerConfig) *fabRig {
	t.Helper()
	r := &fabRig{clock: simtime.New(), reg: metrics.NewRegistry()}
	r.sw = netsim.NewSwitch(r.clock, 2*time.Millisecond, 0)
	ca, err := attest.NewPrivacyCA([]byte("fabric-test-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	r.ca = ca
	ccfg.Metrics = r.reg
	r.ctrl, err = NewController(r.sw, ca, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.ctrl.Close() })
	if err := r.ctrl.RegisterPAL(testPAL("echo")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.addHost(t, fmt.Sprintf("host%d", i), nil)
	}
	return r
}

func (r *fabRig) addHost(t *testing.T, name string, admission pal.PAL) *Host {
	t.Helper()
	h, err := NewHost(r.sw, r.ca, HostConfig{
		Name:         name,
		Platform:     core.PlatformConfig{Seed: "fabric-test|" + name},
		AdmissionPAL: admission,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterPAL(testPAL("echo")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	r.hosts = append(r.hosts, h)
	return h
}

func TestFabricAdmitAndRun(t *testing.T) {
	r := newFabRig(t, 2, ControllerConfig{Seed: "t"})
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.ctrl.Live(); got != 2 {
		t.Fatalf("Live() = %d, want 2", got)
	}
	for i := 0; i < 6; i++ {
		out, err := r.ctrl.Run("echo", []byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "echo:ping" {
			t.Fatalf("output = %q", out)
		}
	}
	st := r.ctrl.Stats()
	if st.Sessions != 6 {
		t.Fatalf("Stats().Sessions = %d, want 6", st.Sessions)
	}
	if st.AdmissionsOK != 2 || st.AdmissionsRejected != 0 {
		t.Fatalf("admissions = %d ok / %d rejected, want 2/0", st.AdmissionsOK, st.AdmissionsRejected)
	}
	// Affinity: with no load, every "echo" session lands on one member.
	busy := 0
	for _, hs := range st.PerHost {
		if hs.Sessions > 0 {
			busy++
			if hs.Sessions != 6 {
				t.Errorf("home host %s ran %d sessions, want all 6", hs.Name, hs.Sessions)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("%d hosts ran sessions under no load, want 1 (affinity)", busy)
	}
}

func TestFabricRunWithoutAdmissionFails(t *testing.T) {
	r := newFabRig(t, 1, ControllerConfig{Seed: "t"})
	if _, err := r.ctrl.Run("echo", []byte("x")); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("Run before any admission = %v, want ErrNoHosts", err)
	}
}

// A host whose admission PAL differs from the controller's registered
// build produces a quote over the wrong PCR-17 and must never be assigned
// a session.
func TestFabricTamperedHostRejectedAndNeverScheduled(t *testing.T) {
	r := newFabRig(t, 1, ControllerConfig{Seed: "t"})
	evil := r.addHost(t, "evil", tamperedAdmissionPAL())
	if err := r.ctrl.Admit("host0"); err != nil {
		t.Fatal(err)
	}
	err := r.ctrl.Admit("evil")
	if err == nil {
		t.Fatal("tampered host admitted")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("admission error = %v", err)
	}
	// Load the fabric; every job must land on the good host.
	for i := 0; i < 10; i++ {
		if _, err := r.ctrl.Run("echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := evil.sessions.Load(); n != 0 {
		t.Fatalf("rejected host executed %d sessions, want 0", n)
	}
	st := r.ctrl.Stats()
	if st.AdmissionsRejected != 1 {
		t.Fatalf("AdmissionsRejected = %d, want 1", st.AdmissionsRejected)
	}
	for _, hs := range st.PerHost {
		if hs.Name == "evil" && hs.State != "rejected" {
			t.Fatalf("evil host state = %s, want rejected", hs.State)
		}
	}
}

// With the nonce freshness window shorter than the network round trip, the
// quote comes back stale and admission is rejected end to end.
func TestFabricStaleNonceRejected(t *testing.T) {
	clock := simtime.New()
	// RTT 2s: challenge leg charges 1s, response leg 1s — past a 1.5s window.
	sw := netsim.NewSwitch(clock, 2*time.Second, 0)
	ca, err := attest.NewPrivacyCA([]byte("fabric-test-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(sw, ca, ControllerConfig{Seed: "t", NonceWindow: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(sw, ca, HostConfig{Name: "slow", Platform: core.PlatformConfig{Seed: "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := ctrl.Admit("slow"); !errors.Is(err, attest.ErrStaleNonce) {
		t.Fatalf("admission over slow net = %v, want ErrStaleNonce", err)
	}
	if ctrl.Live() != 0 {
		t.Fatal("stale-quoted host is live")
	}
}

// A man-in-the-middle that caches one good challenge response and replays
// it for the next challenge is caught by the nonce authority: the replayed
// quote answers an already-redeemed challenge.
func TestFabricReplayedQuoteRejected(t *testing.T) {
	r := newFabRig(t, 1, ControllerConfig{Seed: "t"})
	h := r.hosts[0]

	// Interpose on the host's port: record the first admission response,
	// replay it for every later challenge.
	var cached atomic.Pointer[[]byte]
	real := h.handle
	h.port.SetHandler(func(req []byte) []byte {
		if len(req) > 0 && req[0] == kindChallenge {
			if old := cached.Load(); old != nil {
				return *old
			}
			resp := real(req)
			cp := append([]byte(nil), resp...)
			cached.Store(&cp)
			return resp
		}
		return real(req)
	})

	if err := r.ctrl.Admit(h.Name()); err != nil {
		t.Fatalf("first admission: %v", err)
	}
	err := r.ctrl.Admit(h.Name())
	if !errors.Is(err, attest.ErrReplayedNonce) {
		t.Fatalf("replayed admission = %v, want ErrReplayedNonce", err)
	}
	// The failed re-admission demoted the member: no scheduling.
	if r.ctrl.Live() != 0 {
		t.Fatal("replaying host is live")
	}
}

// Drain, restart, re-admit: the full lifecycle a rolling upgrade needs.
func TestFabricReadmissionAfterDrainAndRestart(t *testing.T) {
	r := newFabRig(t, 2, ControllerConfig{Seed: "t"})
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ctrl.Drain("host0"); err != nil {
		t.Fatal(err)
	}
	if r.ctrl.Live() != 1 {
		t.Fatalf("Live() after drain = %d, want 1", r.ctrl.Live())
	}
	// Work still flows through the survivor.
	if _, err := r.ctrl.Run("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The drained host refuses direct traffic too.
	if raw := r.hosts[0].handle(encodeRun(&runReq{PAL: "echo"})); raw[0] == kindRunResp {
		rr, err := decodeRunResp(raw[1:])
		if err != nil || rr.Status != runDraining {
			t.Fatalf("drained host run status = %+v, %v; want draining", rr, err)
		}
	}

	// "Restart": the old process goes away, a new host attaches under the
	// same name (the switch allows reuse of a closed port) and re-attests.
	r.hosts[0].Close()
	h := r.addHost(t, "host0", nil)
	if err := r.ctrl.Admit(h.Name()); err != nil {
		t.Fatalf("re-admission after restart: %v", err)
	}
	if r.ctrl.Live() != 2 {
		t.Fatalf("Live() after re-admission = %d, want 2", r.ctrl.Live())
	}
	for i := 0; i < 4; i++ {
		if _, err := r.ctrl.Run("echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
}

// Killing a host mid-load loses no accepted jobs: every Run either lands
// on the dead host before the kill (completes) or is resubmitted to a
// survivor.
func TestFabricFailoverLosesNoAcceptedJobs(t *testing.T) {
	r := newFabRig(t, 3, ControllerConfig{Seed: "t", HostInFlight: 1})
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	const jobs = 60
	var wg sync.WaitGroup
	var done atomic.Int64
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := r.ctrl.Run("echo", []byte(fmt.Sprintf("j%d", i)))
			if err != nil {
				errs <- fmt.Errorf("job %d: %w", i, err)
				return
			}
			if string(out) != fmt.Sprintf("echo:j%d", i) {
				errs <- fmt.Errorf("job %d: bad output %q", i, out)
				return
			}
			done.Add(1)
		}(i)
		if i == jobs/2 {
			r.hosts[1].Kill()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if done.Load() != jobs {
		t.Fatalf("completed %d/%d jobs", done.Load(), jobs)
	}
	st := r.ctrl.Stats()
	for _, hs := range st.PerHost {
		if hs.Name == "host1" && hs.State != "lost" && hs.State != "admitted" {
			t.Fatalf("killed host state = %s", hs.State)
		}
	}
}

func TestFabricHeartbeatMarksLostHost(t *testing.T) {
	r := newFabRig(t, 2, ControllerConfig{Seed: "t", MissThreshold: 2})
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	r.hosts[1].Kill()
	r.ctrl.Tick()
	if r.ctrl.Live() != 2 {
		t.Fatalf("Live() after 1 miss = %d, want 2 (below threshold)", r.ctrl.Live())
	}
	r.ctrl.Tick()
	if r.ctrl.Live() != 1 {
		t.Fatalf("Live() after 2 misses = %d, want 1", r.ctrl.Live())
	}
	// Work still routes to the survivor.
	if _, err := r.ctrl.Run("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// Periodic re-attestation keeps verifying live members and evicts a host
// whose quotes stop verifying (here: its handler starts replaying).
func TestFabricPeriodicReattestation(t *testing.T) {
	r := newFabRig(t, 2, ControllerConfig{Seed: "t", ReattestEvery: 2})
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	r.ctrl.Tick() // tick 1: heartbeats only
	r.ctrl.Tick() // tick 2: re-attest sweep
	st := r.ctrl.Hosts()
	for _, hs := range st {
		if hs.Reattests != 1 {
			t.Fatalf("host %s reattests = %d, want 1", hs.Name, hs.Reattests)
		}
	}
	// host1 goes rogue: all later challenges get a garbage quote.
	h := r.hosts[1]
	real := h.handle
	h.port.SetHandler(func(req []byte) []byte {
		if len(req) > 0 && req[0] == kindChallenge {
			resp := real(req)
			// Flip a bit in the tail (the signature field).
			resp[len(resp)-1] ^= 0xFF
			return resp
		}
		return real(req)
	})
	r.ctrl.Tick()
	r.ctrl.Tick() // tick 4: re-attest fails for host1
	if r.ctrl.Live() != 1 {
		t.Fatalf("Live() after failed re-attestation = %d, want 1", r.ctrl.Live())
	}
}

func TestFabricPALErrorIsNotResubmitted(t *testing.T) {
	r := newFabRig(t, 2, ControllerConfig{Seed: "t"})
	failing := &pal.Func{
		PALName: "fail",
		Binary:  pal.DescriptorCode("fail", "1.0", nil, nil),
		Fn: func(_ *pal.Env, _ []byte) ([]byte, error) {
			return nil, errors.New("application says no")
		},
	}
	if err := r.ctrl.RegisterPAL(failing); err != nil {
		t.Fatal(err)
	}
	for _, h := range r.hosts {
		if err := h.RegisterPAL(failing); err != nil {
			t.Fatal(err)
		}
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.ctrl.Run("fail", nil)
	var pe *PALError
	if !errors.As(err, &pe) {
		t.Fatalf("Run(fail) = %v, want *PALError", err)
	}
	if st := r.ctrl.Stats(); st.Resubmits != 0 {
		t.Fatalf("PAL error caused %d resubmits, want 0", st.Resubmits)
	}
}

// A host advertising a PAL whose launch measurement differs from the
// controller's registered build is rejected at inventory check.
func TestFabricInventoryMismatchRejected(t *testing.T) {
	r := newFabRig(t, 1, ControllerConfig{Seed: "t"})
	h := r.hosts[0]
	// The host builds "echo" from different code than the controller did.
	forged := &pal.Func{
		PALName: "echo",
		Binary:  pal.DescriptorCode("echo", "9.9-backdoored", nil, nil),
		Fn:      func(_ *pal.Env, in []byte) ([]byte, error) { return in, nil },
	}
	if err := h.RegisterPAL(forged); err != nil {
		t.Fatal(err)
	}
	err := r.ctrl.Admit(h.Name())
	if err == nil || !strings.Contains(err.Error(), "launch measurement diverges") {
		t.Fatalf("admission with forged inventory = %v", err)
	}
}

func TestFabricMetricsCounters(t *testing.T) {
	r := newFabRig(t, 2, ControllerConfig{Seed: "t"})
	r.addHost(t, "evil", tamperedAdmissionPAL())
	for _, name := range []string{"host0", "host1"} {
		if err := r.ctrl.Admit(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ctrl.Admit("evil"); err == nil {
		t.Fatal("evil admitted")
	}
	for i := 0; i < 3; i++ {
		if _, err := r.ctrl.Run("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	adm := r.reg.Counter("flicker_fabric_admissions_total", "", "result")
	if got := adm.With("ok").Value(); got != 2 {
		t.Fatalf("admissions ok = %v, want 2", got)
	}
	if got := adm.With("rejected").Value(); got != 1 {
		t.Fatalf("admissions rejected = %v, want 1", got)
	}
	runs := r.reg.Counter("flicker_fabric_runs_total", "", "result")
	if got := runs.With("ok").Value(); got != 3 {
		t.Fatalf("runs ok = %v, want 3", got)
	}
	ev := r.reg.Counter("flicker_fabric_host_events_total", "", "event")
	if got := ev.With("up").Value(); got != 2 {
		t.Fatalf("host up events = %v, want 2", got)
	}
}

// Concurrent admissions, runs, ticks, and a kill under -race.
func TestFabricConcurrentTrafficRace(t *testing.T) {
	r := newFabRig(t, 3, ControllerConfig{Seed: "t", ReattestEvery: 3})
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := r.ctrl.Run("echo", []byte{byte(w), byte(i)})
				if err != nil && !errors.Is(err, ErrNoHosts) {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			r.ctrl.Tick()
			r.ctrl.Stats()
			r.ctrl.Hosts()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.hosts[2].Kill()
	}()
	wg.Wait()
}
