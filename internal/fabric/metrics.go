package fabric

import (
	"flicker/internal/metrics"
	"flicker/internal/sched"
)

// fabricMetrics holds the controller's pre-resolved series handles. Label
// sets are closed, so every handle is resolved once at construction (the
// metrichandle discipline); the per-host in-flight gauge is resolved per
// member at admission, the only time a new label value appears.
type fabricMetrics struct {
	reg *metrics.Registry

	admissionOK       *metrics.Counter
	admissionRejected *metrics.Counter

	hostUp          *metrics.Counter
	hostDown        *metrics.Counter
	hostDrained     *metrics.Counter
	reattestOK      *metrics.Counter
	reattestFail    *metrics.Counter

	resubmits *metrics.Counter
	runsOK    *metrics.Counter
	runsErr   *metrics.Counter

	// runSeconds is the controller-side end-to-end session latency — queue,
	// network, failover retries and all — the distribution /traces exemplars
	// index into.
	runSeconds *metrics.Histogram

	// Wire-frame coalescer instrumentation, mirroring the pool's
	// flicker_pool_batch_* pair one tier up: runs per frame and why each
	// group flushed, plus how often dispatch blocked on a full per-host
	// pipelining window.
	batchSize   *metrics.Histogram
	batchFlush  map[string]*metrics.Counter
	windowWaits *metrics.Counter

	inflight *metrics.GaugeVec
}

func newFabricMetrics(reg *metrics.Registry) *fabricMetrics {
	adm := reg.Counter("flicker_fabric_admissions_total",
		"Host admission attempts by quote-verification result.", "result")
	ev := reg.Counter("flicker_fabric_host_events_total",
		"Fleet membership events.", "event")
	runs := reg.Counter("flicker_fabric_runs_total",
		"Sessions dispatched through the controller by outcome.", "result")
	flush := reg.Counter("flicker_fabric_batch_flush_total",
		"Controller wire-frame coalescer flushes, by reason.", "reason")
	return &fabricMetrics{
		reg:               reg,
		admissionOK:       adm.With("ok"),
		admissionRejected: adm.With("rejected"),
		hostUp:            ev.With("up"),
		hostDown:          ev.With("down"),
		hostDrained:       ev.With("drained"),
		reattestOK:        ev.With("reattest_ok"),
		reattestFail:      ev.With("reattest_fail"),
		resubmits: reg.Counter("flicker_fabric_resubmits_total",
			"Accepted jobs resubmitted to a surviving host after a member failed.").With(),
		runsOK:  runs.With("ok").Cell(),
		runsErr: runs.With("pal_error").Cell(),
		runSeconds: reg.Histogram("flicker_fabric_run_seconds",
			"End-to-end controller-observed session latency, including failover.", nil).With().Cell(),
		batchSize: reg.Histogram("flicker_fabric_batch_size",
			"Runs coalesced per wire frame (1 = singleton fallback).",
			[]float64{1, 2, 4, 8, 16, 32}).With().Cell(),
		batchFlush: map[string]*metrics.Counter{
			sched.FlushFull:    flush.With(sched.FlushFull).Cell(),
			sched.FlushTimeout: flush.With(sched.FlushTimeout).Cell(),
			sched.FlushDrain:   flush.With(sched.FlushDrain).Cell(),
		},
		windowWaits: reg.Counter("flicker_fabric_window_waits_total",
			"Frame dispatches that blocked on a full per-host in-flight window.").With().Cell(),
		inflight: reg.Gauge("flicker_fabric_inflight",
			"Controller-observed in-flight sessions per host.", "host"),
	}
}
