package fabric

import "flicker/internal/metrics"

// fabricMetrics holds the controller's pre-resolved series handles. Label
// sets are closed, so every handle is resolved once at construction (the
// metrichandle discipline); the per-host in-flight gauge is resolved per
// member at admission, the only time a new label value appears.
type fabricMetrics struct {
	reg *metrics.Registry

	admissionOK       *metrics.Counter
	admissionRejected *metrics.Counter

	hostUp          *metrics.Counter
	hostDown        *metrics.Counter
	hostDrained     *metrics.Counter
	reattestOK      *metrics.Counter
	reattestFail    *metrics.Counter

	resubmits *metrics.Counter
	runsOK    *metrics.Counter
	runsErr   *metrics.Counter

	// runSeconds is the controller-side end-to-end session latency — queue,
	// network, failover retries and all — the distribution /traces exemplars
	// index into.
	runSeconds *metrics.Histogram

	inflight *metrics.GaugeVec
}

func newFabricMetrics(reg *metrics.Registry) *fabricMetrics {
	adm := reg.Counter("flicker_fabric_admissions_total",
		"Host admission attempts by quote-verification result.", "result")
	ev := reg.Counter("flicker_fabric_host_events_total",
		"Fleet membership events.", "event")
	runs := reg.Counter("flicker_fabric_runs_total",
		"Sessions dispatched through the controller by outcome.", "result")
	return &fabricMetrics{
		reg:               reg,
		admissionOK:       adm.With("ok"),
		admissionRejected: adm.With("rejected"),
		hostUp:            ev.With("up"),
		hostDown:          ev.With("down"),
		hostDrained:       ev.With("drained"),
		reattestOK:        ev.With("reattest_ok"),
		reattestFail:      ev.With("reattest_fail"),
		resubmits: reg.Counter("flicker_fabric_resubmits_total",
			"Accepted jobs resubmitted to a surviving host after a member failed.").With(),
		runsOK:  runs.With("ok").Cell(),
		runsErr: runs.With("pal_error").Cell(),
		runSeconds: reg.Histogram("flicker_fabric_run_seconds",
			"End-to-end controller-observed session latency, including failover.", nil).With().Cell(),
		inflight: reg.Gauge("flicker_fabric_inflight",
			"Controller-observed in-flight sessions per host.", "host"),
	}
}
