package fabric

// End-to-end tests of the tracing tentpole: a controller-rooted trace must
// cross the wire into the host, descend through pool/session/phase into
// TPM-command leaf spans, and come back assembled — including the partial
// trace a died-mid-call failover leaves behind.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"flicker/internal/metrics"
	"flicker/internal/pal"
	"flicker/internal/trace"
)

// traceRig is a fabRig with tracing at sample rate 1.
func traceRig(t *testing.T, hosts int, ccfg ControllerConfig) *fabRig {
	t.Helper()
	ccfg.TraceSample = 1.0
	r := newFabRig(t, hosts, ccfg)
	for _, h := range r.hosts {
		if err := r.ctrl.Admit(h.Name()); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// spanNames collects every span name in a trace.
func spanNames(td *trace.TraceData) map[string]int {
	names := make(map[string]int)
	for _, s := range td.Spans {
		names[s.Name]++
	}
	return names
}

// One traced session must produce a single assembled trace spanning all four
// levels: controller (fabric.run/attempt), host (host.run), session
// (session + pipeline phases), and TPM command leaves.
func TestFabricTraceEndToEnd(t *testing.T) {
	r := traceRig(t, 2, ControllerConfig{Seed: "t"})
	out, err := r.ctrl.Run("echo", []byte("ping"))
	if err != nil || string(out) != "echo:ping" {
		t.Fatalf("Run = %q, %v", out, err)
	}
	fr := r.ctrl.Traces()
	if fr == nil {
		t.Fatal("tracing enabled but Traces() is nil")
	}
	tds := fr.Recent(0, "", "")
	var td *trace.TraceData
	for _, cand := range tds {
		if cand.Name == "fabric.run" {
			td = cand
		}
	}
	if td == nil {
		t.Fatalf("no fabric.run trace retained (got %d traces)", len(tds))
	}
	if td.Attr("pal") != "echo" {
		t.Fatalf("root pal attr = %q", td.Attr("pal"))
	}
	names := spanNames(td)
	for _, want := range []string{"fabric.run", "attempt", "host.run", "session"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span; have %v", want, names)
		}
	}
	// Phase level and TPM-command level.
	if names["skinit"] == 0 || names["pal-exec"] == 0 {
		t.Fatalf("trace missing phase spans; have %v", names)
	}
	tpmLeaves := 0
	sites := make(map[string]bool)
	for _, s := range td.Spans {
		sites[s.Site] = true
		if strings.HasPrefix(s.Name, "tpm.") {
			tpmLeaves++
		}
	}
	if tpmLeaves == 0 {
		t.Fatalf("trace has no TPM-command leaf spans; have %v", names)
	}
	if !sites["controller"] {
		t.Fatalf("trace sites = %v, want controller present", sites)
	}
	hostSites := 0
	for s := range sites {
		if strings.HasPrefix(s, "host") {
			hostSites++
		}
	}
	if hostSites != 1 {
		t.Fatalf("trace sites = %v, want exactly one host site", sites)
	}
	// The tree reassembles with fabric.run at the root and the host segment
	// under the attempt span.
	tree := td.Tree()
	if tree == nil || tree.Name != "fabric.run" || len(tree.Children) == 0 {
		t.Fatalf("tree root = %+v", tree)
	}
	attempt := tree.Children[0]
	if attempt.Name != "attempt" || len(attempt.Children) == 0 || attempt.Children[0].Name != "host.run" {
		t.Fatalf("attempt subtree = %+v", attempt)
	}
	// Get() resolves the trace by its hex ID (the /traces/{id} path).
	if got := fr.Get(td.ID); got != td {
		t.Fatalf("Get(%s) = %p, want %p", td.ID, got, td)
	}
	// The controller-side latency histogram carries the trace as exemplar.
	exemplarOK := false
	for _, fam := range r.reg.Snapshot().Families {
		if fam.Name != "flicker_fabric_run_seconds" {
			continue
		}
		for _, s := range fam.Series {
			for _, ex := range s.Exemplars {
				if ex.TraceID != "" {
					exemplarOK = true
				}
			}
		}
	}
	if !exemplarOK {
		t.Fatal("flicker_fabric_run_seconds has no exemplar after a traced run")
	}
}

// Admission is traced too: the fabric.admit trace adopts the host.admit
// segment (which wraps the admission session and quote).
func TestFabricAdmissionTrace(t *testing.T) {
	r := traceRig(t, 1, ControllerConfig{Seed: "t"})
	var td *trace.TraceData
	for _, cand := range r.ctrl.Traces().Recent(0, "", "") {
		if cand.Name == "fabric.admit" {
			td = cand
		}
	}
	if td == nil {
		t.Fatal("no fabric.admit trace retained")
	}
	names := spanNames(td)
	if names["host.admit"] == 0 || names["session"] == 0 {
		t.Fatalf("admission trace spans = %v, want host.admit and session", names)
	}
}

// A host that dies mid-call leaves an orphaned attempt span; the resubmitted
// attempt lands under the same root, and the trace is pinned in the flight
// recorder's triggered ring.
func TestFabricFailoverTraceTwoAttemptsOneRoot(t *testing.T) {
	r := traceRig(t, 2, ControllerConfig{Seed: "t"})
	// Find the home host for "echo" deterministically: run once, see who
	// served it, then make that host die on its next run request.
	if _, err := r.ctrl.Run("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	var victim *Host
	for _, h := range r.hosts {
		if h.sessions.Load() > 0 {
			victim = h
		}
	}
	if victim == nil {
		t.Fatal("no host served the warmup run")
	}
	real := victim.handle
	victim.port.SetHandler(func(req []byte) []byte {
		if len(req) > 0 && req[0] == kindRun {
			victim.port.Close() // dies while serving: the reply is lost
		}
		return real(req)
	})
	out, err := r.ctrl.Run("echo", []byte("failover"))
	if err != nil || string(out) != "echo:failover" {
		t.Fatalf("Run over dying host = %q, %v", out, err)
	}
	var td *trace.TraceData
	for _, cand := range r.ctrl.Traces().Recent(0, "", "") {
		if cand.Trigger == "failover-resubmit" {
			td = cand
		}
	}
	if td == nil {
		t.Fatal("no failover-resubmit trace retained")
	}
	names := spanNames(td)
	if names["attempt"] != 2 {
		t.Fatalf("failover trace has %d attempt spans, want 2 (orphaned + resubmitted); %v", names["attempt"], names)
	}
	// Exactly one attempt carries the died-mid-call error; exactly one
	// host.run segment made it back (the survivor's).
	failed := 0
	for _, s := range td.Spans {
		if s.Name == "attempt" && s.Err != "" {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failover trace has %d failed attempts, want 1", failed)
	}
	if names["host.run"] != 1 {
		t.Fatalf("failover trace has %d host.run segments, want 1 (dead host's was lost)", names["host.run"])
	}
	// Both attempts hang off the single root.
	tree := td.Tree()
	if tree.Name != "fabric.run" || len(tree.Children) != 2 {
		t.Fatalf("failover tree = %s with %d children, want fabric.run with 2", tree.Name, len(tree.Children))
	}
}

// A session that fails on the host ends the root with an error, which the
// flight recorder retains deterministically.
func TestFabricAbortedSessionTraceRetained(t *testing.T) {
	r := traceRig(t, 1, ControllerConfig{Seed: "t"})
	failing := &pal.Func{
		PALName: "fail",
		Binary:  pal.DescriptorCode("fail", "1.0", nil, nil),
		Fn: func(_ *pal.Env, _ []byte) ([]byte, error) {
			return nil, errors.New("application says no")
		},
	}
	if err := r.ctrl.RegisterPAL(failing); err != nil {
		t.Fatal(err)
	}
	if err := r.hosts[0].RegisterPAL(failing); err != nil {
		t.Fatal(err)
	}
	// Re-admit so the new inventory is visible.
	if err := r.ctrl.Admit(r.hosts[0].Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctrl.Run("fail", nil); err == nil {
		t.Fatal("Run(fail) succeeded")
	}
	got := r.ctrl.Traces().Recent(0, "fail", "error")
	if len(got) == 0 {
		t.Fatal("no error trace retained for the failed session")
	}
	td := got[0]
	if td.Trigger != "error" || td.Err == "" {
		t.Fatalf("failed-session trace trigger=%q err=%q, want error trigger", td.Trigger, td.Err)
	}
	// Filters hold: the ok-outcome view must not contain it.
	for _, cand := range r.ctrl.Traces().Recent(0, "fail", "ok") {
		if cand.ID == td.ID {
			t.Fatal("error trace leaked into outcome=ok filter")
		}
	}
}

// A failed re-attestation produces an eviction trace (trigger
// "reattest-evict") and a host-evicted event linked to it by trace ID.
func TestFabricReattestEvictionTraceAndEvent(t *testing.T) {
	events := metrics.NewEventLog(0)
	r := traceRig(t, 2, ControllerConfig{Seed: "t", ReattestEvery: 1, Events: events})
	h := r.hosts[1]
	real := h.handle
	h.port.SetHandler(func(req []byte) []byte {
		if len(req) > 0 && req[0] == kindChallenge {
			resp := real(req)
			// Corrupt a byte inside the PAL inventory (first entry's name):
			// the advertised inventory no longer matches a registered build.
			resp[10] ^= 0xFF
			return resp
		}
		return real(req)
	})
	r.ctrl.Tick()
	if r.ctrl.Live() != 1 {
		t.Fatalf("Live() after eviction tick = %d, want 1", r.ctrl.Live())
	}
	var td *trace.TraceData
	for _, cand := range r.ctrl.Traces().Recent(0, "", "") {
		if cand.Trigger == "reattest-evict" {
			td = cand
		}
	}
	if td == nil {
		t.Fatal("no reattest-evict trace retained")
	}
	if td.Name != "fabric.reattest" || td.Attr("host") != "host1" {
		t.Fatalf("eviction trace = %s host=%q", td.Name, td.Attr("host"))
	}
	// The security event carries the trace ID.
	linked := false
	for _, ev := range events.Events() {
		if ev.Kind == metrics.EventHostEvicted && ev.TraceID == td.ID {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("no %s event linked to trace %s", metrics.EventHostEvicted, td.ID)
	}
}

// With TraceSample zero the controller mints nothing: no tracer, no
// recorder, zero trace context on the wire.
func TestFabricTracingDisabled(t *testing.T) {
	r := newFabRig(t, 1, ControllerConfig{Seed: "t"})
	if err := r.ctrl.Admit("host0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctrl.Run("echo", nil); err != nil {
		t.Fatal(err)
	}
	if r.ctrl.Traces() != nil || r.ctrl.Tracer() != nil {
		t.Fatal("tracing off but tracer/recorder exist")
	}
}

// Concurrent traced traffic, ticks, flight-recorder reads, and a mid-load
// kill — the -race half of the tracing satellite, at the fabric level.
func TestFabricTraceConcurrentRace(t *testing.T) {
	r := traceRig(t, 3, ControllerConfig{Seed: "t", ReattestEvery: 3})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				_, err := r.ctrl.Run("echo", []byte{byte(w), byte(i)})
				if err != nil && !errors.Is(err, ErrNoHosts) {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			r.ctrl.Tick()
			fr := r.ctrl.Traces()
			for _, td := range fr.Recent(8, "", "") {
				td.Tree()
				fr.Get(td.ID)
			}
			fr.Stats()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.hosts[2].Kill()
	}()
	wg.Wait()
}
