package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flicker/internal/apps/admit"
	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/netsim"
	"flicker/internal/pal"
	"flicker/internal/pool"
	"flicker/internal/tpm"
	"flicker/internal/trace"
)

// AdmissionPALName is the wire name of the PAL every host must run,
// freshly, to join the fabric. Its post-session PCR-17 value is what the
// controller's quote check pins.
const AdmissionPALName = admit.PALName

// AdmissionReply is the admission PAL's deterministic output for a
// challenge nonce (see internal/apps/admit — the PAL body is measured
// code and lives outside this untrusted package).
func AdmissionReply(nonce []byte) []byte { return admit.Reply(nonce) }

// AdmissionPAL returns the canonical admission PAL. A host built with a
// different admission binary — a tampered SLB — produces a different
// PCR-17 launch measurement and its Quote fails verification.
func AdmissionPAL() pal.PAL { return admit.PAL() }

// HostConfig configures one host agent.
type HostConfig struct {
	// Name is the host's port address on the switch and its platform
	// identity in the AIK certificate.
	Name string
	// Platform is the template for the host's shard platforms (as
	// pool.Config.Platform).
	Platform core.PlatformConfig
	// Shards, QueueLen, MaxBatch, MaxWait configure the host's local pool
	// (pool.Config semantics and defaults).
	Shards   int
	QueueLen int
	MaxBatch int
	MaxWait  time.Duration
	// WallClock passes through to the pool's queue-delay metric.
	WallClock func() time.Time
	// AdmissionPAL overrides the canonical admission PAL. Only tests use
	// this, to model a host whose measured launch code differs from what
	// the controller registered.
	AdmissionPAL pal.PAL
}

// Host is one fabric member: a platform pool plus an attestation daemon,
// serving the framed RPC protocol on a switch port. A host accepts
// sessions only between a successful admission and a drain or crash;
// whether it is *assigned* sessions is the controller's decision, gated on
// the host's Quote.
type Host struct {
	name      string
	pool      *pool.Pool
	platform  *core.Platform // shard 0; admission sessions and quotes run here
	daemon    *attest.Daemon
	port      *netsim.Port
	admission pal.PAL

	// tracer mints this host's segments of controller-rooted traces. Its
	// timebase is shard 0's simulated clock; session-internal spans are
	// replayed on their own shard's clock by trace.SessionObserver, and the
	// per-record Site field keeps the timebases apart when traces reassemble.
	tracer *trace.Tracer

	// attestMu serializes attestation (write side) against session traffic
	// (read side): a Quote must cover the admission session's PCR-17 value
	// with no interleaved session mutating it.
	attestMu sync.RWMutex

	palMu  sync.Mutex
	pals   map[string]pal.PAL
	launch map[string]tpm.Digest

	inflight atomic.Int64
	sessions atomic.Uint64
	draining atomic.Bool
}

// NewHost builds a host agent and attaches it to the switch under
// cfg.Name. The returned host serves requests immediately but will not
// receive work from a controller until admitted.
func NewHost(sw *netsim.Switch, ca *attest.PrivacyCA, cfg HostConfig) (*Host, error) {
	if cfg.Name == "" {
		return nil, errors.New("fabric: host needs a name")
	}
	pcfg := cfg.Platform
	if pcfg.Seed == "" {
		pcfg.Seed = "fabric-host|" + cfg.Name
	}
	p, err := pool.New(pool.Config{
		Shards:    cfg.Shards,
		QueueLen:  cfg.QueueLen,
		Platform:  pcfg,
		MaxBatch:  cfg.MaxBatch,
		MaxWait:   cfg.MaxWait,
		WallClock: cfg.WallClock,
	})
	if err != nil {
		return nil, err
	}
	h := &Host{
		name:     cfg.Name,
		pool:     p,
		platform: p.Shard(0),
		pals:     make(map[string]pal.PAL),
		launch:   make(map[string]tpm.Digest),
	}
	h.tracer = trace.NewTracer(cfg.Name, h.platform.Clock.Now)
	h.daemon, err = attest.NewDaemon(h.platform.OSTPM(), tpm.Digest{}, ca, cfg.Name)
	if err != nil {
		p.Close()
		return nil, err
	}
	h.admission = cfg.AdmissionPAL
	if h.admission == nil {
		h.admission = AdmissionPAL()
	}
	if err := h.RegisterPAL(h.admission); err != nil {
		p.Close()
		return nil, err
	}
	port, err := sw.Attach(cfg.Name, h.handle)
	if err != nil {
		p.Close()
		return nil, err
	}
	h.port = port
	return h, nil
}

// RegisterPAL makes a PAL servable by this host and records its expected
// PCR-17 launch measurement for the join inventory.
func (h *Host) RegisterPAL(p pal.PAL) error {
	im, err := core.BuildImage(p, false)
	if err != nil {
		return fmt.Errorf("fabric: building image for %s: %w", p.Name(), err)
	}
	h.palMu.Lock()
	defer h.palMu.Unlock()
	h.pals[p.Name()] = p
	h.launch[p.Name()] = attest.ExpectedLaunchPCR17(im)
	return nil
}

// Name returns the host's switch address / platform identity.
func (h *Host) Name() string { return h.name }

// Pool returns the host's session pool (for fleet-wide stats handlers).
func (h *Host) Pool() *pool.Pool { return h.pool }

// InFlight returns the host's currently executing session count.
func (h *Host) InFlight() int64 { return h.inflight.Load() }

// Kill models a crash: the port closes immediately, so in-flight calls
// lose their replies (the switch reports died-mid-call) and nothing new
// reaches the host. The pool is left running — a crashed machine does not
// get to run shutdown hooks.
func (h *Host) Kill() { h.port.Close() }

// Close shuts the host down gracefully: detach from the network, then
// drain and stop the pool.
func (h *Host) Close() error {
	h.port.Close()
	return h.pool.Close()
}

// handle serves one RPC frame. It runs on the caller's goroutine (netsim's
// synchronous call model); concurrency comes from concurrent callers.
func (h *Host) handle(req []byte) []byte {
	if len(req) == 0 {
		return encodeErrorResp("empty frame")
	}
	switch req[0] {
	case kindChallenge:
		return h.handleChallenge(req[1:])
	case kindRun:
		return h.handleRun(req[1:])
	case kindRunBatch:
		return h.handleRunBatch(req[1:])
	case kindHeartbeat:
		resp := &heartbeatResp{
			InFlight: uint32(h.inflight.Load()),
			Sessions: h.sessions.Load(),
			Draining: h.draining.Load(),
		}
		return encodeHeartbeatResp(resp)
	case kindDrain:
		h.draining.Store(true)
		return encodeEmpty(kindDrainResp)
	case kindStats:
		return encodeStatsResp(h.stats())
	default:
		return encodeErrorResp(fmt.Sprintf("unknown frame kind %d", req[0]))
	}
}

// handleChallenge answers an admission (or re-attestation) challenge: run
// the admission PAL with the verifier's nonce bound into the session, then
// Quote the resulting PCR-17 under the same nonce. The write lock excludes
// session traffic for the duration so no other session's measurements leak
// into (or race) the quoted value.
func (h *Host) handleChallenge(body []byte) []byte {
	nonce, tc, err := decodeChallenge(body)
	if err != nil {
		return encodeErrorResp(err.Error())
	}
	// Join the controller's admission trace (nil segment when untraced); the
	// segment covers the attestation lock wait, the admission session, and
	// the quote, and ships back inside the response.
	seg := h.tracer.Join(tc.TraceID, tc.Parent, "host.admit")
	seg.SetAttr("host", h.name)
	h.attestMu.Lock()
	defer h.attestMu.Unlock()
	res, err := h.platform.RunSession(h.admission, core.SessionOptions{
		Input:    nonce[:],
		Nonce:    &nonce,
		TraceID:  seg.TraceHex(),
		Observer: sessionObserver(seg),
	})
	if err != nil {
		seg.EndErr(err)
		return encodeErrorResp(fmt.Sprintf("admission session: %v", err))
	}
	att, err := h.daemon.Quote(nonce)
	if err != nil {
		seg.EndErr(err)
		return encodeErrorResp(fmt.Sprintf("quote: %v", err))
	}
	seg.End()
	return encodeChallengeResp(&challengeResp{
		PALs:    h.inventory(),
		Output:  res.Outputs,
		SLBBase: res.SLBBase,
		Att:     *att,
		Spans:   seg.Records(),
	})
}

// sessionObserver wraps a joined segment as a core.Observer, staying nil
// (no observer overhead at all) on the untraced path.
func sessionObserver(seg *trace.Span) core.Observer {
	if seg == nil {
		return nil
	}
	return trace.NewSessionObserver(seg)
}

// handleRun executes one session through the host's pool.
func (h *Host) handleRun(body []byte) []byte {
	r, err := decodeRun(body)
	if err != nil {
		return encodeErrorResp(err.Error())
	}
	if h.draining.Load() {
		return encodeRunResp(&runResp{Status: runDraining, Err: "host draining"})
	}
	h.palMu.Lock()
	p := h.pals[r.PAL]
	h.palMu.Unlock()
	if p == nil {
		return encodeRunResp(&runResp{Status: runUnknownPAL, Err: "PAL not registered: " + r.PAL})
	}
	// The host segment starts before the attestation read lock, so traces of
	// slow requests show time spent waiting out a concurrent re-attestation.
	seg := h.tracer.Join(r.Trace.TraceID, r.Trace.Parent, "host.run")
	seg.SetAttr("host", h.name)
	seg.SetAttr("pal", r.PAL)
	h.attestMu.RLock()
	defer h.attestMu.RUnlock()
	h.inflight.Add(1)
	defer h.inflight.Add(-1)
	res, err := h.pool.Run(p, core.SessionOptions{
		Input:    r.Input,
		TraceID:  seg.TraceHex(),
		Observer: sessionObserver(seg),
	})
	seg.EndErr(err)
	switch {
	case errors.Is(err, pool.ErrClosed):
		return encodeRunResp(&runResp{Status: runLost, Err: err.Error(), Spans: seg.Records()})
	case err != nil:
		return encodeRunResp(&runResp{Status: runPALError, Err: err.Error(), Spans: seg.Records()})
	case res.PALError != nil:
		return encodeRunResp(&runResp{Status: runPALError, Err: res.PALError.Error(), Spans: seg.Records()})
	}
	h.sessions.Add(1)
	return encodeRunResp(&runResp{Status: runOK, Output: res.Outputs, Spans: seg.Records()})
}

// handleRunBatch executes one runBatch frame as ONE batched pool session:
// one SKINIT, one Seal/Unseal for the whole group. Per-member statuses carry
// the completed-prefix contract back to the controller — members the batch
// engine finished are final (runOK / runPALError), members an abort
// interrupted are runLost so only the incomplete suffix is resubmitted.
func (h *Host) handleRunBatch(body []byte) []byte {
	r, err := decodeRunBatch(body)
	if err != nil {
		return encodeErrorResp(err.Error())
	}
	if len(r.Members) == 0 {
		return encodeErrorResp("empty batch")
	}
	if h.draining.Load() {
		return encodeBatchRefusal(r, runDraining, "host draining")
	}
	h.palMu.Lock()
	p := h.pals[r.PAL]
	h.palMu.Unlock()
	if p == nil {
		return encodeBatchRefusal(r, runUnknownPAL, "PAL not registered: "+r.PAL)
	}
	n := len(r.Members)
	// The frame-level segment parents under the first traced member's attempt
	// span; each member's own segment parents under its own attempt — except
	// the frame's lead trace, whose member segment nests under the frame
	// segment so the exemplar trace reads attempt → host.runBatch → host.run
	// → session.
	seg := h.tracer.Join(r.Trace.TraceID, r.Trace.Parent, "host.runBatch")
	seg.SetAttr("host", h.name)
	seg.SetAttr("pal", r.PAL)
	seg.SetAttrInt("batch", int64(n))
	_, segID := seg.Context()
	reqs := make([][]byte, n)
	memberSegs := make([]*trace.Span, n)
	var obs []core.Observer
	for i, m := range r.Members {
		reqs[i] = m.Input
		parent := m.Trace.Parent
		if seg != nil && m.Trace.TraceID == r.Trace.TraceID {
			parent = segID
		}
		ms := h.tracer.Join(m.Trace.TraceID, parent, "host.run")
		ms.SetAttr("host", h.name)
		memberSegs[i] = ms
		if o := sessionObserver(ms); o != nil {
			obs = append(obs, o)
		}
	}
	h.attestMu.RLock()
	defer h.attestMu.RUnlock()
	h.inflight.Add(int64(n))
	defer h.inflight.Add(int64(-n))
	br, err := h.pool.RunBatch(p, reqs, core.SessionOptions{
		TraceID:  seg.TraceHex(),
		Observer: core.CombineObservers(obs...),
	})
	resp := &runBatchResp{Frame: r.Frame, Members: make([]runBatchMemberResp, n)}
	for i := range resp.Members {
		mr := &resp.Members[i]
		switch {
		case errors.Is(err, pool.ErrClosed):
			mr.Status, mr.Err = runLost, err.Error()
		case err != nil:
			// The shared session aborted. Members before the interruption
			// point keep their replies (the batch engine's completed-prefix
			// contract); interrupted members report runLost and travel again.
			switch {
			case br != nil && i < br.Completed && br.Replies[i].Err == nil:
				mr.Status, mr.Output = runOK, br.Replies[i].Output
			case br != nil && i < br.Completed:
				mr.Status, mr.Err = runPALError, br.Replies[i].Err.Error()
			default:
				mr.Status, mr.Err = runLost, err.Error()
			}
		case br.Session.PALError != nil:
			// Batch-level PAL failure: the shared timer's completed prefix
			// keeps its replies (mirroring the pool's singleton narrowing);
			// everyone else sees the PAL error — final, never resubmitted.
			if errors.Is(br.Session.PALError, pal.ErrPALTimeout) && i < br.Completed && br.Replies[i].Err == nil {
				mr.Status, mr.Output = runOK, br.Replies[i].Output
			} else {
				mr.Status, mr.Err = runPALError, br.Session.PALError.Error()
			}
		case br.Replies[i].Err != nil:
			mr.Status, mr.Err = runPALError, br.Replies[i].Err.Error()
		default:
			mr.Status, mr.Output = runOK, br.Replies[i].Output
		}
		ms := memberSegs[i]
		if mr.Status == runOK {
			h.sessions.Add(1)
			ms.End()
		} else {
			ms.EndErr(errors.New(mr.Err))
		}
		mr.Spans = ms.Records()
	}
	seg.EndErr(err)
	resp.Spans = seg.Records()
	return appendRunBatchResp(nil, resp)
}

// encodeBatchRefusal answers a whole frame with one refusal status per
// member (draining, unknown PAL) — correct Frame echo and member count, so
// the controller's reply validation still holds.
func encodeBatchRefusal(r *runBatchReq, status byte, msg string) []byte {
	resp := &runBatchResp{Frame: r.Frame, Members: make([]runBatchMemberResp, len(r.Members))}
	for i := range resp.Members {
		resp.Members[i] = runBatchMemberResp{Status: status, Err: msg}
	}
	return appendRunBatchResp(nil, resp)
}

// inventory snapshots the host's registered PALs, sorted by name.
func (h *Host) inventory() []hostPAL {
	h.palMu.Lock()
	defer h.palMu.Unlock()
	names := make([]string, 0, len(h.pals))
	for name := range h.pals {
		names = append(names, name)
	}
	sort.Strings(names)
	inv := make([]hostPAL, 0, len(names))
	for _, name := range names {
		inv = append(inv, hostPAL{Name: name, Launch: h.launch[name]})
	}
	return inv
}

// stats sums the host's per-shard platform accounting.
func (h *Host) stats() *hostStats {
	st := &hostStats{InFlight: uint32(h.inflight.Load()), Sessions: h.sessions.Load()}
	for i := 0; i < h.pool.Shards(); i++ {
		st.Aborted += uint64(h.pool.Shard(i).Stats().Aborted)
	}
	h.palMu.Lock()
	for name := range h.pals {
		st.PALs = append(st.PALs, name)
	}
	h.palMu.Unlock()
	sort.Strings(st.PALs)
	return st
}
