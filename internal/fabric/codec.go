// Package fabric is the two-tier serving cluster: a controller admits host
// agents into a fleet, schedules sessions across them with the same
// PAL-affinity policy the in-process pool uses (internal/sched), and
// survives host loss by resubmitting work to survivors. Admission is
// Flicker's twist on cluster membership: a host receives traffic only
// after a TPM Quote over PCR 17 — produced by actually running the
// admission PAL under SKINIT — matches the value the controller computes
// from its own copy of the PAL images, so "the host runs the code we
// registered" is verified, not configured (Section 4.4's protocol made
// load-bearing).
//
// This file is the wire format: small framed request/response messages
// exchanged over internal/netsim. Frames cross a trust boundary — a host
// is untrusted until (and honestly, after) admission — so every decoded
// count and length is clamped against the remaining frame bytes before it
// sizes an allocation, the discipline `flickervet untrustedlen` enforces.
package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"flicker/internal/attest"
	"flicker/internal/tpm"
	"flicker/internal/trace"
)

// Frame kinds. Requests flow controller → host; each has one response
// kind. kindError is the generic failure response to any request.
const (
	kindChallenge byte = iota + 1
	kindChallengeResp
	kindRun
	kindRunResp
	kindHeartbeat
	kindHeartbeatResp
	kindDrain
	kindDrainResp
	kindStats
	kindStatsResp
	kindError
	// The batched-run pair extends the kind space (never renumber: admitted
	// fleets may mix controller and host builds in tests).
	kindRunBatch
	kindRunBatchResp
)

// Run response statuses.
const (
	runOK byte = iota
	runPALError
	runDraining
	runUnknownPAL
	runLost
)

// ErrBadFrame is wrapped by every decode failure.
var ErrBadFrame = errors.New("fabric: malformed frame")

// traceCtx is the distributed-trace propagation pair carried on every
// request frame: the trace ID and the caller's span that the host-side
// segment should parent under. A zero pair means "untraced" and costs the
// host a single comparison.
type traceCtx struct {
	TraceID uint64
	Parent  uint64
}

// hostPAL is one entry of a host's PAL inventory: the wire name and the
// expected PCR-17 launch value of the image the host built for it.
type hostPAL struct {
	Name   string
	Launch tpm.Digest
}

// challengeResp is the host's answer to an admission challenge.
type challengeResp struct {
	PALs    []hostPAL
	Output  []byte // admission session output (bound into PCR 17)
	SLBBase uint32 // where the admission SLB was loaded (the image's
	// launch measurement covers the patched load address, so the verifier
	// patches its own build with this before recomputing PCR 17)
	Att attest.Attestation
	// Spans is the host-side segment of the admission trace ([] when the
	// challenge was untraced).
	Spans []trace.SpanRecord
}

// runReq asks a host to execute one session.
type runReq struct {
	PAL   string
	Input []byte
	Trace traceCtx
}

// runResp reports one session's outcome.
type runResp struct {
	Status byte
	Output []byte
	Err    string
	// Spans is the host-side segment of the session trace, shipped back for
	// the controller to splice under its attempt span.
	Spans []trace.SpanRecord
}

// runBatchMember is one request riding in a runBatch frame: its input and
// its own trace propagation pair (each member belongs to its own Run root
// on the controller).
type runBatchMember struct {
	Input []byte
	Trace traceCtx
}

// runBatchReq asks a host to execute a same-PAL group as ONE batched pool
// session: one frame on the wire, one SKINIT + Seal/Unseal on the host.
// Frame is the pipelining correlation ID — the host echoes it so the
// controller can verify a reply answers the frame it sent on that lane.
// Trace is the frame-level propagation pair (the first traced member), the
// parent of the host's host.runBatch segment.
type runBatchReq struct {
	Frame   uint64
	PAL     string
	Trace   traceCtx
	Members []runBatchMember
}

// runBatchMemberResp is one member's outcome, same status space as runResp.
// The completed-prefix contract rides in the statuses: members the host
// finished are runOK/runPALError and are never resubmitted; members an
// abort interrupted come back runLost so the controller resubmits ONLY the
// incomplete suffix.
type runBatchMemberResp struct {
	Status byte
	Output []byte
	Err    string
	// Spans is this member's host-side segment (its host.run span).
	Spans []trace.SpanRecord
}

// runBatchResp reports a whole frame's outcomes. Spans is the frame-level
// host segment (the host.runBatch span plus the shared session's spans),
// spliced under the first traced member's attempt.
type runBatchResp struct {
	Frame   uint64
	Members []runBatchMemberResp
	Spans   []trace.SpanRecord
}

// heartbeatResp is a host's liveness/load report.
type heartbeatResp struct {
	InFlight uint32
	Sessions uint64
	Draining bool
}

// hostStats is a host's cumulative accounting for /stats.
type hostStats struct {
	Sessions uint64
	Aborted  uint64
	InFlight uint32
	PALs     []string
}

// --- primitive append/read helpers -----------------------------------------

func appendU16(b []byte, v int) []byte {
	return binary.BigEndian.AppendUint16(b, uint16(v))
}

func appendU32(b []byte, v int) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(v))
}

func appendBytes16(b, p []byte) []byte {
	return append(appendU16(b, len(p)), p...)
}

func appendBytes32(b, p []byte) []byte {
	return append(appendU32(b, len(p)), p...)
}

func readU16(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, fmt.Errorf("%w: truncated u16", ErrBadFrame)
	}
	return int(binary.BigEndian.Uint16(b)), b[2:], nil
}

func readU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: truncated u32", ErrBadFrame)
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

func readU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated u64", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// readBytes16 reads a u16-length-prefixed field. The length is clamped by
// the remaining frame before any slicing: a forged length cannot reach
// past the frame.
func readBytes16(b []byte) ([]byte, []byte, error) {
	n, rest, err := readU16(b)
	if err != nil {
		return nil, nil, err
	}
	if n > len(rest) {
		return nil, nil, fmt.Errorf("%w: field length %d exceeds remaining %d bytes", ErrBadFrame, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// readBytes32 is readBytes16 with a u32 length word, same clamp.
func readBytes32(b []byte) ([]byte, []byte, error) {
	v, rest, err := readU32(b)
	if err != nil {
		return nil, nil, err
	}
	n := int(v)
	if n < 0 || n > len(rest) {
		return nil, nil, fmt.Errorf("%w: field length %d exceeds remaining %d bytes", ErrBadFrame, v, len(rest))
	}
	return rest[:n], rest[n:], nil
}

func readDigest(b []byte) (tpm.Digest, []byte, error) {
	var d tpm.Digest
	if len(b) < len(d) {
		return d, nil, fmt.Errorf("%w: truncated digest", ErrBadFrame)
	}
	copy(d[:], b)
	return d, b[len(d):], nil
}

// --- trace context and span records -----------------------------------------

// appendTraceCtx writes the fixed 16-byte propagation pair. It is always
// written (zeros when untraced) so frame layouts stay positional and the
// trailing-bytes checks keep their teeth.
func appendTraceCtx(b []byte, tc traceCtx) []byte {
	b = binary.BigEndian.AppendUint64(b, tc.TraceID)
	return binary.BigEndian.AppendUint64(b, tc.Parent)
}

func readTraceCtx(b []byte) (traceCtx, []byte, error) {
	var tc traceCtx
	var err error
	if tc.TraceID, b, err = readU64(b); err != nil {
		return tc, nil, err
	}
	if tc.Parent, b, err = readU64(b); err != nil {
		return tc, nil, err
	}
	return tc, b, nil
}

// spanRecMin is the smallest possible encoded span record: two 8-byte IDs,
// empty name and site (2-byte lengths), two 8-byte times, empty error, and a
// zero attribute count. It bounds the forged-count clamp in readSpans.
const spanRecMin = 8 + 8 + 2 + 2 + 8 + 8 + 2 + 2

// attrMin is the smallest encoded attribute: two empty 2-byte-length fields.
const attrMin = 2 + 2

// appendSpans encodes a span-record blob: a u16 count followed by each
// record's IDs, name, site, times, error, and attributes. Counts past the
// u16 range are truncated at encode time so the wire count always matches
// what follows.
func appendSpans(b []byte, recs []trace.SpanRecord) []byte {
	if len(recs) > 0xffff {
		recs = recs[:0xffff]
	}
	b = appendU16(b, len(recs))
	for _, r := range recs {
		b = binary.BigEndian.AppendUint64(b, r.Span)
		b = binary.BigEndian.AppendUint64(b, r.Parent)
		b = appendBytes16(b, []byte(r.Name))
		b = appendBytes16(b, []byte(r.Site))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Start))
		b = binary.BigEndian.AppendUint64(b, uint64(r.Duration))
		b = appendBytes16(b, []byte(r.Err))
		b = appendU16(b, len(r.Attrs))
		for _, a := range r.Attrs {
			b = appendBytes16(b, []byte(a.Key))
			b = appendBytes16(b, []byte(a.Value))
		}
	}
	return b
}

// readSpans decodes a span-record blob. Both the record count and each
// record's attribute count are clamped against the remaining frame bytes
// before sizing any allocation — span blobs arrive from untrusted hosts.
func readSpans(b []byte) ([]trace.SpanRecord, []byte, error) {
	count, rest, err := readU16(b)
	if err != nil {
		return nil, nil, err
	}
	if count > len(rest)/spanRecMin {
		return nil, nil, fmt.Errorf("%w: span count %d exceeds what %d bytes can frame", ErrBadFrame, count, len(rest))
	}
	var recs []trace.SpanRecord
	if count > 0 {
		recs = make([]trace.SpanRecord, 0, count)
	}
	for i := 0; i < count; i++ {
		var r trace.SpanRecord
		if r.Span, rest, err = readU64(rest); err != nil {
			return nil, nil, err
		}
		if r.Parent, rest, err = readU64(rest); err != nil {
			return nil, nil, err
		}
		var name, site []byte
		if name, rest, err = readBytes16(rest); err != nil {
			return nil, nil, err
		}
		if site, rest, err = readBytes16(rest); err != nil {
			return nil, nil, err
		}
		r.Name, r.Site = string(name), string(site)
		var start, dur uint64
		if start, rest, err = readU64(rest); err != nil {
			return nil, nil, err
		}
		if dur, rest, err = readU64(rest); err != nil {
			return nil, nil, err
		}
		r.Start, r.Duration = time.Duration(start), time.Duration(dur)
		var msg []byte
		if msg, rest, err = readBytes16(rest); err != nil {
			return nil, nil, err
		}
		r.Err = string(msg)
		var nattrs int
		if nattrs, rest, err = readU16(rest); err != nil {
			return nil, nil, err
		}
		if nattrs > len(rest)/attrMin {
			return nil, nil, fmt.Errorf("%w: attr count %d exceeds what %d bytes can frame", ErrBadFrame, nattrs, len(rest))
		}
		for j := 0; j < nattrs; j++ {
			var k, v []byte
			if k, rest, err = readBytes16(rest); err != nil {
				return nil, nil, err
			}
			if v, rest, err = readBytes16(rest); err != nil {
				return nil, nil, err
			}
			r.Attrs = append(r.Attrs, trace.SpanAttr{Key: string(k), Value: string(v)})
		}
		recs = append(recs, r)
	}
	return recs, rest, nil
}

// --- challenge --------------------------------------------------------------

func encodeChallenge(nonce tpm.Digest, tc traceCtx) []byte {
	return appendTraceCtx(append([]byte{kindChallenge}, nonce[:]...), tc)
}

func decodeChallenge(b []byte) (tpm.Digest, traceCtx, error) {
	nonce, rest, err := readDigest(b)
	if err != nil {
		return nonce, traceCtx{}, err
	}
	tc, rest, err := readTraceCtx(rest)
	if err != nil {
		return nonce, tc, err
	}
	if len(rest) != 0 {
		return nonce, tc, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return nonce, tc, nil
}

func encodeChallengeResp(r *challengeResp) []byte {
	b := []byte{kindChallengeResp}
	b = appendU32(b, len(r.PALs))
	for _, p := range r.PALs {
		b = appendBytes16(b, []byte(p.Name))
		b = append(b, p.Launch[:]...)
	}
	b = appendBytes16(b, r.Output)
	b = binary.BigEndian.AppendUint32(b, r.SLBBase)
	b = append(b, r.Att.Nonce[:]...)
	b = append(b, r.Att.Composite[:]...)
	b = appendBytes16(b, r.Att.Signature)
	cert := r.Att.Cert
	if cert == nil {
		cert = &attest.AIKCert{}
	}
	b = appendBytes16(b, []byte(cert.PlatformID))
	b = appendBytes16(b, cert.AIKPub)
	b = appendBytes16(b, cert.Signature)
	return appendSpans(b, r.Spans)
}

// palEntryMin is the smallest possible inventory entry: empty name (2-byte
// length) plus a 20-byte digest. It bounds how many entries a frame of a
// given size could possibly carry.
const palEntryMin = 2 + 20

func decodeChallengeResp(b []byte) (*challengeResp, error) {
	count, rest, err := readU32(b)
	if err != nil {
		return nil, err
	}
	// Clamp the forged-count hazard: a 32-bit count word may not demand
	// more entries than the remaining bytes could frame.
	n := int(count)
	if n > len(rest)/palEntryMin {
		return nil, fmt.Errorf("%w: PAL count %d exceeds what %d bytes can frame", ErrBadFrame, count, len(rest))
	}
	r := &challengeResp{PALs: make([]hostPAL, 0, n)}
	for i := 0; i < n; i++ {
		var name []byte
		if name, rest, err = readBytes16(rest); err != nil {
			return nil, err
		}
		var launch tpm.Digest
		if launch, rest, err = readDigest(rest); err != nil {
			return nil, err
		}
		r.PALs = append(r.PALs, hostPAL{Name: string(name), Launch: launch})
	}
	if r.Output, rest, err = readBytes16(rest); err != nil {
		return nil, err
	}
	if r.SLBBase, rest, err = readU32(rest); err != nil {
		return nil, err
	}
	if r.Att.Nonce, rest, err = readDigest(rest); err != nil {
		return nil, err
	}
	if r.Att.Composite, rest, err = readDigest(rest); err != nil {
		return nil, err
	}
	if r.Att.Signature, rest, err = readBytes16(rest); err != nil {
		return nil, err
	}
	cert := &attest.AIKCert{}
	var id []byte
	if id, rest, err = readBytes16(rest); err != nil {
		return nil, err
	}
	cert.PlatformID = string(id)
	if cert.AIKPub, rest, err = readBytes16(rest); err != nil {
		return nil, err
	}
	if cert.Signature, rest, err = readBytes16(rest); err != nil {
		return nil, err
	}
	if r.Spans, rest, err = readSpans(rest); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	r.Att.Cert = cert
	return r, nil
}

// --- run --------------------------------------------------------------------

func encodeRun(r *runReq) []byte {
	return appendRun(nil, r)
}

func decodeRun(b []byte) (*runReq, error) {
	name, rest, err := readBytes16(b)
	if err != nil {
		return nil, err
	}
	input, rest, err := readBytes32(rest)
	if err != nil {
		return nil, err
	}
	tc, rest, err := readTraceCtx(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return &runReq{PAL: string(name), Input: input, Trace: tc}, nil
}

func encodeRunResp(r *runResp) []byte {
	b := []byte{kindRunResp, r.Status}
	b = appendBytes32(b, r.Output)
	b = appendBytes16(b, []byte(r.Err))
	return appendSpans(b, r.Spans)
}

func decodeRunResp(b []byte) (*runResp, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: missing run status", ErrBadFrame)
	}
	r := &runResp{Status: b[0]}
	out, rest, err := readBytes32(b[1:])
	if err != nil {
		return nil, err
	}
	r.Output = out
	msg, rest, err := readBytes16(rest)
	if err != nil {
		return nil, err
	}
	r.Err = string(msg)
	if r.Spans, rest, err = readSpans(rest); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return r, nil
}

// --- batched run ------------------------------------------------------------

// frameBufs recycles encode scratch and reply buffers on the controller's
// frame path: a steady-state dispatch encodes into a pooled buffer, ships
// it, receives the reply into a second pooled buffer (netsim CallAppend),
// decodes aliasing that buffer, copies out only what the caller keeps, and
// returns both. The singleton hot path was 33 allocs / 8.1 KB per op,
// dominated by exactly these two per-call frames.
var frameBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf() *[]byte { return frameBufs.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	// An outsized reply (a huge span blob) is dropped rather than pinned in
	// the pool forever.
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	frameBufs.Put(b)
}

// appendRun is encodeRun into caller-owned scratch (the zero-alloc frame
// path); encodeRun remains the allocating convenience wrapper.
func appendRun(b []byte, r *runReq) []byte {
	b = append(b, kindRun)
	b = appendBytes16(b, []byte(r.PAL))
	b = appendBytes32(b, r.Input)
	return appendTraceCtx(b, r.Trace)
}

// appendRunBatch encodes a runBatch frame into caller-owned scratch.
func appendRunBatch(b []byte, r *runBatchReq) []byte {
	b = append(b, kindRunBatch)
	b = binary.BigEndian.AppendUint64(b, r.Frame)
	b = appendBytes16(b, []byte(r.PAL))
	b = appendTraceCtx(b, r.Trace)
	b = appendU16(b, len(r.Members))
	for i := range r.Members {
		b = appendBytes32(b, r.Members[i].Input)
		b = appendTraceCtx(b, r.Members[i].Trace)
	}
	return b
}

// batchMemberMin is the smallest encoded request member: a u32 input length
// (empty input) plus the fixed 16-byte trace pair. It bounds the
// forged-count clamp in decodeRunBatch.
const batchMemberMin = 4 + 16

// decodeRunBatch decodes a runBatch frame. Member inputs alias the frame
// (zero-copy): the host copies them into the session input page anyway, so
// the decode itself allocates only the member slice.
func decodeRunBatch(b []byte) (*runBatchReq, error) {
	r := &runBatchReq{}
	var err error
	if r.Frame, b, err = readU64(b); err != nil {
		return nil, err
	}
	var name []byte
	if name, b, err = readBytes16(b); err != nil {
		return nil, err
	}
	r.PAL = string(name)
	if r.Trace, b, err = readTraceCtx(b); err != nil {
		return nil, err
	}
	var count int
	if count, b, err = readU16(b); err != nil {
		return nil, err
	}
	// Forged-count clamp: a count word may not demand more members than the
	// remaining bytes could frame.
	if count > len(b)/batchMemberMin {
		return nil, fmt.Errorf("%w: batch count %d exceeds what %d bytes can frame", ErrBadFrame, count, len(b))
	}
	r.Members = make([]runBatchMember, 0, count)
	for i := 0; i < count; i++ {
		var m runBatchMember
		if m.Input, b, err = readBytes32(b); err != nil {
			return nil, err
		}
		if m.Trace, b, err = readTraceCtx(b); err != nil {
			return nil, err
		}
		r.Members = append(r.Members, m)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
	}
	return r, nil
}

// appendRunBatchResp encodes a frame's outcomes into caller-owned scratch.
func appendRunBatchResp(b []byte, r *runBatchResp) []byte {
	b = append(b, kindRunBatchResp)
	b = binary.BigEndian.AppendUint64(b, r.Frame)
	b = appendU16(b, len(r.Members))
	for i := range r.Members {
		m := &r.Members[i]
		b = append(b, m.Status)
		b = appendBytes32(b, m.Output)
		b = appendBytes16(b, []byte(m.Err))
		b = appendSpans(b, m.Spans)
	}
	return appendSpans(b, r.Spans)
}

// batchRespMemberMin is the smallest encoded member response: status byte,
// empty u32 output, empty u16 error, zero u16 span count.
const batchRespMemberMin = 1 + 4 + 2 + 2

// decodeRunBatchResp decodes a frame's outcomes. Member outputs alias the
// reply buffer (zero-copy): the controller copies exactly the outputs it
// delivers before recycling the buffer.
func decodeRunBatchResp(b []byte) (*runBatchResp, error) {
	r := &runBatchResp{}
	var err error
	if r.Frame, b, err = readU64(b); err != nil {
		return nil, err
	}
	var count int
	if count, b, err = readU16(b); err != nil {
		return nil, err
	}
	// Same forged-count clamp as the request side — responses arrive from
	// untrusted hosts.
	if count > len(b)/batchRespMemberMin {
		return nil, fmt.Errorf("%w: batch count %d exceeds what %d bytes can frame", ErrBadFrame, count, len(b))
	}
	r.Members = make([]runBatchMemberResp, 0, count)
	for i := 0; i < count; i++ {
		var m runBatchMemberResp
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: missing member status", ErrBadFrame)
		}
		m.Status, b = b[0], b[1:]
		if m.Output, b, err = readBytes32(b); err != nil {
			return nil, err
		}
		var msg []byte
		if msg, b, err = readBytes16(b); err != nil {
			return nil, err
		}
		m.Err = string(msg)
		if m.Spans, b, err = readSpans(b); err != nil {
			return nil, err
		}
		r.Members = append(r.Members, m)
	}
	if r.Spans, b, err = readSpans(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
	}
	return r, nil
}

// --- heartbeat / drain / stats ---------------------------------------------

func encodeEmpty(kind byte) []byte { return []byte{kind} }

func encodeHeartbeatResp(r *heartbeatResp) []byte {
	b := []byte{kindHeartbeatResp}
	b = binary.BigEndian.AppendUint32(b, r.InFlight)
	b = binary.BigEndian.AppendUint64(b, r.Sessions)
	flags := byte(0)
	if r.Draining {
		flags = 1
	}
	return append(b, flags)
}

func decodeHeartbeatResp(b []byte) (*heartbeatResp, error) {
	r := &heartbeatResp{}
	var err error
	if r.InFlight, b, err = readU32(b); err != nil {
		return nil, err
	}
	if r.Sessions, b, err = readU64(b); err != nil {
		return nil, err
	}
	if len(b) != 1 {
		return nil, fmt.Errorf("%w: bad heartbeat flags", ErrBadFrame)
	}
	r.Draining = b[0]&1 != 0
	return r, nil
}

func encodeStatsResp(r *hostStats) []byte {
	b := []byte{kindStatsResp}
	b = binary.BigEndian.AppendUint64(b, r.Sessions)
	b = binary.BigEndian.AppendUint64(b, r.Aborted)
	b = binary.BigEndian.AppendUint32(b, r.InFlight)
	b = appendU32(b, len(r.PALs))
	for _, name := range r.PALs {
		b = appendBytes16(b, []byte(name))
	}
	return b
}

func decodeStatsResp(b []byte) (*hostStats, error) {
	r := &hostStats{}
	var err error
	if r.Sessions, b, err = readU64(b); err != nil {
		return nil, err
	}
	if r.Aborted, b, err = readU64(b); err != nil {
		return nil, err
	}
	if r.InFlight, b, err = readU32(b); err != nil {
		return nil, err
	}
	count, rest, err := readU32(b)
	if err != nil {
		return nil, err
	}
	// Same forged-count clamp as the inventory: each name costs at least
	// its 2-byte length word.
	n := int(count)
	if n > len(rest)/2 {
		return nil, fmt.Errorf("%w: PAL count %d exceeds what %d bytes can frame", ErrBadFrame, count, len(rest))
	}
	r.PALs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		var name []byte
		if name, rest, err = readBytes16(rest); err != nil {
			return nil, err
		}
		r.PALs = append(r.PALs, string(name))
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return r, nil
}

// --- error frames -----------------------------------------------------------

func encodeErrorResp(msg string) []byte {
	return appendBytes16([]byte{kindError}, []byte(msg))
}

// decodeResp strips and validates the response kind byte, converting
// kindError frames into Go errors.
func decodeResp(b []byte, want byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty response", ErrBadFrame)
	}
	if b[0] == kindError {
		msg, _, err := readBytes16(b[1:])
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("fabric: remote error: %s", msg)
	}
	if b[0] != want {
		return nil, fmt.Errorf("%w: response kind %d, want %d", ErrBadFrame, b[0], want)
	}
	return b[1:], nil
}
