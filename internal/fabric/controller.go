package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/metrics"
	"flicker/internal/netsim"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/sched"
	"flicker/internal/slb"
	"flicker/internal/tpm"
	"flicker/internal/trace"
)

// ControllerAddr is the controller's port name on the switch.
const ControllerAddr = "controller"

// ErrNoHosts is returned by Run when no admitted, non-draining host can
// serve the requested PAL (including after failover exhausted the fleet).
var ErrNoHosts = errors.New("fabric: no admitted host can serve this PAL")

// ErrClosed is returned by Run after Close has begun shutting the
// controller's dispatchers down.
var ErrClosed = errors.New("fabric: controller closed")

// PALError reports a session that a host executed but whose PAL failed.
// It is an application outcome, not a fabric failure, so the controller
// does not resubmit it.
type PALError struct {
	Host string
	Msg  string
}

func (e *PALError) Error() string {
	return fmt.Sprintf("fabric: PAL error on %s: %s", e.Host, e.Msg)
}

// ControllerConfig configures the fabric controller.
type ControllerConfig struct {
	// Seed makes the controller's challenge nonce stream deterministic.
	Seed string
	// NonceWindow bounds how long an admission challenge stays redeemable
	// on the switch clock (attest.NonceAuthority semantics; zero = 1 min).
	NonceWindow time.Duration
	// MissThreshold is how many consecutive missed heartbeats mark a host
	// lost (default 3).
	MissThreshold int
	// ReattestEvery re-attests every admitted host each N Ticks (0 = only
	// at admission).
	ReattestEvery int
	// HostInFlight is the per-host in-flight level above which PAL-affinity
	// routing spills to the least-loaded eligible host (default 8).
	HostInFlight int
	// MaxResubmits bounds failover attempts per accepted job (default 8).
	MaxResubmits int
	// MaxBatch enables the wire-frame coalescer: Run calls for the same PAL
	// are gathered (sched.Coalescer group commit, same MaxBatch/MaxWait/
	// singleton-fallback discipline as the pool's session coalescer) into one
	// multi-request runBatch frame — one frame on the wire, one host-pool
	// batch, one SKINIT + Seal/Unseal for the whole group. 0 or 1 disables
	// batching (every Run is its own synchronous kindRun exchange).
	MaxBatch int
	// MaxWait bounds how long the coalescer holds the first Run of a group
	// open waiting for companions (default 1ms when MaxBatch > 1).
	MaxWait time.Duration
	// Window is the pipelining depth: how many frames may be outstanding to
	// one host at once before dispatch blocks (default 4; only meaningful
	// when MaxBatch > 1). Heartbeats and control frames bypass the window
	// entirely.
	Window int
	// Metrics receives the fabric counters (nil = unregistered).
	Metrics *metrics.Registry
	// TraceSample enables distributed tracing: the fraction of Run calls
	// traced end to end (0 = tracing off entirely, 1 = every call). Sampling
	// is a deterministic counter, not a coin flip.
	TraceSample float64
	// TraceSlow is the flight recorder's tail-latency trigger: any completed
	// trace at least this long is retained (0 = no slow trigger).
	TraceSlow time.Duration
	// Events, if non-nil, receives fabric security events (re-attestation
	// evictions) linked to their trace IDs.
	Events *metrics.EventLog
}

// memberState is a host's position in the admission state machine:
//
//	         Admit ok                       Drain
//	(new) ─────────────► admitted ────────────────────► draining ──► drained
//	  │                   │     ▲                            │
//	  │ Admit fails       │     │ re-Admit after restart     │ heartbeat miss /
//	  ▼                   ▼     │                            ▼ died mid-call
//	rejected ◄── reattest │   (any non-admitted state)      lost
//	             fails    └────────────────────────────────►
type memberState int

const (
	stateAdmitted memberState = iota
	stateDraining
	stateDrained
	stateLost
	stateRejected
)

func (s memberState) String() string {
	switch s {
	case stateAdmitted:
		return "admitted"
	case stateDraining:
		return "draining"
	case stateDrained:
		return "drained"
	case stateLost:
		return "lost"
	case stateRejected:
		return "rejected"
	}
	return "unknown"
}

// member is the controller's view of one host.
type member struct {
	name       string
	state      memberState
	pals       map[string]bool
	inflight   int64
	sessions   int64
	misses     int
	reattests  int
	attestedAt time.Duration // switch-clock time of last verified quote
	lastErr    string
	gauge      *metrics.Gauge
}

// expectedPAL is the controller's own build of a registered PAL: the image
// whose measurements admission quotes must reproduce.
type expectedPAL struct {
	pal    pal.PAL
	im     *slb.Image
	launch tpm.Digest
}

// HostStatus is one member's externally visible state (the /hosts
// endpoint's row).
type HostStatus struct {
	Name       string   `json:"name"`
	State      string   `json:"state"`
	AttestedMS float64  `json:"attested_at_ms"`
	Reattests  int      `json:"reattests"`
	Misses     int      `json:"missed_heartbeats"`
	InFlight   int64    `json:"in_flight"`
	Sessions   int64    `json:"sessions"`
	PALs       []string `json:"pals"`
	LastError  string   `json:"last_error,omitempty"`
}

// Stats is the controller's fleet-wide accounting snapshot.
type Stats struct {
	Hosts              int          `json:"hosts"`
	Live               int          `json:"live"`
	AdmissionsOK       int64        `json:"admissions_ok"`
	AdmissionsRejected int64        `json:"admissions_rejected"`
	Resubmits          int64        `json:"resubmits"`
	Sessions           int64        `json:"sessions"`
	PerHost            []HostStatus `json:"per_host"`
}

// Controller admits hosts into the fabric via quote-verified attestation
// and schedules sessions across the admitted fleet.
type Controller struct {
	sw   *netsim.Switch
	port *netsim.Port
	ca   *palcrypto.RSAPublicKey
	auth *attest.NonceAuthority
	cfg  ControllerConfig
	met  *fabricMetrics

	// tracer and flight are nil when cfg.TraceSample is 0, so the untraced
	// fabric pays nothing beyond nil checks.
	tracer *trace.Tracer
	flight *trace.FlightRecorder

	mu       sync.Mutex
	cond     *sync.Cond
	members  map[string]*member
	expected map[string]expectedPAL
	ticks    int

	// Batched dispatch (cfg.MaxBatch > 1): one coalescing dispatcher
	// goroutine per PAL feeds pipelined frame goroutines, bounded per host by
	// a window lane. stop tears the dispatchers down.
	coal     sched.Coalescer
	stop     chan struct{}
	stopOnce sync.Once
	frameID  atomic.Uint64
	dispMu   sync.Mutex
	queues   map[string]chan *fabJob
	laneMu   sync.Mutex
	lanes    map[string]*hostLane

	admissionsOK       int64
	admissionsRejected int64
	resubmits          int64
	sessions           int64
}

// NewController attaches a controller to the switch. The privacy CA's
// public key is the attestation trust root; registered PAL images are the
// code-identity expectations.
func NewController(sw *netsim.Switch, ca *attest.PrivacyCA, cfg ControllerConfig) (*Controller, error) {
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.HostInFlight <= 0 {
		cfg.HostInFlight = 8
	}
	if cfg.MaxResubmits <= 0 {
		cfg.MaxResubmits = 8
	}
	// Same normalization as the pool's session coalescer — shared discipline,
	// shared defaults.
	co := sched.Coalescer{MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait}.Normalize()
	cfg.MaxBatch, cfg.MaxWait = co.MaxBatch, co.MaxWait
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	c := &Controller{
		sw:       sw,
		ca:       ca.PublicKey(),
		auth:     attest.NewNonceAuthority(sw.Clock().Now, cfg.NonceWindow, []byte(cfg.Seed)),
		cfg:      cfg,
		met:      newFabricMetrics(cfg.Metrics),
		members:  make(map[string]*member),
		expected: make(map[string]expectedPAL),
		coal:     co,
		stop:     make(chan struct{}),
		queues:   make(map[string]chan *fabJob),
		lanes:    make(map[string]*hostLane),
	}
	if cfg.TraceSample > 0 {
		c.tracer = trace.NewTracer("controller", sw.Clock().Now)
		c.tracer.SetSampleRate(cfg.TraceSample)
		c.flight = trace.NewFlightRecorder(0, 0, cfg.TraceSlow)
		c.tracer.OnComplete(c.flight.Offer)
	}
	c.cond = sync.NewCond(&c.mu)
	port, err := sw.Attach(ControllerAddr, nil)
	if err != nil {
		return nil, err
	}
	c.port = port
	if err := c.RegisterPAL(AdmissionPAL()); err != nil {
		return nil, err
	}
	return c, nil
}

// RegisterPAL records the controller's own build of a PAL. Hosts may only
// advertise PALs whose launch measurements match a registered build; the
// admission PAL is registered implicitly at construction.
func (c *Controller) RegisterPAL(p pal.PAL) error {
	im, err := core.BuildImage(p, false)
	if err != nil {
		return fmt.Errorf("fabric: building expected image for %s: %w", p.Name(), err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expected[p.Name()] = expectedPAL{pal: p, im: im, launch: attest.ExpectedLaunchPCR17(im)}
	return nil
}

// Admit challenges a host and, if its quote verifies, makes it schedulable.
// A previously drained, lost, or rejected member may be re-admitted (a
// restarted host rejoining); its attestation starts over from scratch.
func (c *Controller) Admit(host string) error {
	root := c.tracer.Start("fabric.admit")
	root.SetAttr("host", host)
	resp, err := c.attestHost(host, root)
	root.EndErr(err)
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.members[host]
	if m == nil {
		m = &member{name: host, gauge: c.met.inflight.With(host)}
		c.members[host] = m
	}
	if err != nil {
		m.state = stateRejected
		m.lastErr = err.Error()
		m.pals = nil
		c.admissionsRejected++
		c.met.admissionRejected.Inc()
		return fmt.Errorf("fabric: admission of %s rejected: %w", host, err)
	}
	m.state = stateAdmitted
	m.pals = make(map[string]bool, len(resp.PALs))
	for _, p := range resp.PALs {
		m.pals[p.Name] = true
	}
	m.misses = 0
	m.inflight = 0
	m.lastErr = ""
	m.attestedAt = c.sw.Clock().Now()
	m.gauge.Set(0)
	c.admissionsOK++
	c.met.admissionOK.Inc()
	c.met.hostUp.Inc()
	return nil
}

// attestHost runs one challenge round trip and verifies everything about
// the response: nonce freshness and single-use, certificate chain, quote
// signature, PCR-17 composite against the controller's own admission-PAL
// build, platform identity, and the advertised inventory's launch
// measurements.
func (c *Controller) attestHost(host string, parent *trace.Span) (*challengeResp, error) {
	nonce := c.auth.Issue()
	tid, pid := parent.Context()
	raw, err := c.port.Call(host, encodeChallenge(nonce, traceCtx{TraceID: tid, Parent: pid}))
	if err != nil {
		return nil, err
	}
	body, err := decodeResp(raw, kindChallengeResp)
	if err != nil {
		return nil, err
	}
	resp, err := decodeChallengeResp(body)
	if err != nil {
		return nil, err
	}
	// The host's segment of the admission trace (attestation lock, admission
	// session, quote) splices in under the challenge span.
	parent.Adopt(resp.Spans)
	// Freshness first: a response to an expired or already-redeemed
	// challenge is rejected before any cryptography runs.
	if err := c.auth.Redeem(resp.Att.Nonce); err != nil {
		return nil, err
	}
	if resp.Att.Nonce != nonce {
		// The host answered with a *different* outstanding nonce — possibly
		// replaying another exchange. It burned that nonce; reject.
		return nil, fmt.Errorf("%w: quote answers a different challenge", attest.ErrReplayedNonce)
	}
	adm, ok := c.lookupExpected(AdmissionPALName)
	if !ok {
		return nil, errors.New("fabric: admission PAL not registered")
	}
	if !bytes.Equal(resp.Output, AdmissionReply(nonce[:])) {
		return nil, errors.New("fabric: admission session output mismatch")
	}
	// The launch measurement covers the SLB as loaded, load address
	// patched in — rebuild our own copy of the admission image and patch
	// it with the base the host claims. A lie about the base just makes
	// the quote fail.
	im, err := core.BuildImage(adm.pal, false)
	if err != nil {
		return nil, fmt.Errorf("fabric: rebuilding admission image: %w", err)
	}
	if err := im.Patch(resp.SLBBase); err != nil {
		return nil, fmt.Errorf("fabric: patching admission image: %w", err)
	}
	expected := attest.ExpectedFinalPCR17(im, nonce[:], resp.Output, &nonce)
	if err := attest.Verify(c.ca, &resp.Att, nonce, expected); err != nil {
		return nil, err
	}
	if resp.Att.Cert == nil || resp.Att.Cert.PlatformID != host {
		return nil, fmt.Errorf("fabric: quote certified for %q, want %q",
			certID(resp.Att.Cert), host)
	}
	sawAdmission := false
	for _, p := range resp.PALs {
		exp, ok := c.lookupExpected(p.Name)
		if !ok {
			return nil, fmt.Errorf("fabric: host advertises unregistered PAL %q", p.Name)
		}
		if exp.launch != p.Launch {
			return nil, fmt.Errorf("fabric: host's %q launch measurement diverges from registered build", p.Name)
		}
		if p.Name == AdmissionPALName {
			sawAdmission = true
		}
	}
	if !sawAdmission {
		return nil, errors.New("fabric: inventory omits the admission PAL")
	}
	return resp, nil
}

func certID(cert *attest.AIKCert) string {
	if cert == nil {
		return "<no certificate>"
	}
	return cert.PlatformID
}

func (c *Controller) lookupExpected(name string) (expectedPAL, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.expected[name]
	return exp, ok
}

// Run executes one session somewhere in the fleet. Routing is PAL-affinity
// first (sched.Home over the eligible members), spilling to the
// least-loaded eligible host when the home member is saturated. A member
// that fails mid-job — unreachable, died mid-call, draining, or talking
// protocol garbage — is excluded and the job is resubmitted to a survivor,
// so an accepted job is lost only when the whole eligible fleet is gone.
//
// With cfg.MaxBatch > 1 the call is queued on the wire-frame coalescer
// instead of dispatched synchronously: same outcome semantics, but same-PAL
// neighbors share a runBatch frame and a host-side batched session.
func (c *Controller) Run(palName string, input []byte) ([]byte, error) {
	start := c.sw.Clock().Now()
	root := c.tracer.StartSampled("fabric.run")
	root.SetAttr("pal", palName)
	var out []byte
	var err error
	if c.coal.Enabled() {
		out, err = c.runBatched(palName, input, root)
	} else {
		out, err = c.run(palName, input, root)
	}
	root.EndErr(err)
	c.met.runSeconds.ObserveDurationExemplar(c.sw.Clock().Now()-start, root.TraceHex())
	return out, err
}

// run is Run's synchronous failover loop (batching disabled). Every dispatch
// attempt gets its own child span under root, so a resubmitted job's
// assembled trace shows the orphaned attempt (whose host half died with the
// host) and the successful sibling side by side.
func (c *Controller) run(palName string, input []byte, root *trace.Span) ([]byte, error) {
	tried := make(map[string]bool)
	for attempt := 0; attempt <= c.cfg.MaxResubmits; attempt++ {
		m := c.pick(palName, tried)
		if m == nil {
			return nil, fmt.Errorf("%w: %s", ErrNoHosts, palName)
		}
		att := root.Child("attempt")
		att.SetAttr("host", m.name)
		out, err, retry, down := c.callRun(m, palName, input, att)
		c.finishCallN(m, 1)
		if !retry {
			if err != nil {
				att.EndErr(err)
				return nil, err
			}
			c.noteSessions(m, 1)
			att.End()
			return out, nil
		}
		// Died mid-call, protocol garbage, or a refusal: the attempt span
		// survives as the orphaned half of a partial trace, the whole trace is
		// pinned for the recorder, and the job moves to a survivor.
		att.EndErr(err)
		root.Trigger("failover-resubmit")
		if down {
			c.hostLost(m, err)
		}
		tried[m.name] = true
		c.noteResubmit()
	}
	return nil, fmt.Errorf("%w: %s (failover budget exhausted)", ErrNoHosts, palName)
}

// callRun performs one singleton kindRun exchange with m on the pooled
// frame path (encode scratch and reply buffer both recycled — the fabric's
// zero-alloc discipline). out is an owned copy, safe after the buffers are
// recycled. retry reports that the member could not take the job (the
// caller's failover policy decides where it goes next); down additionally
// reports the member must be marked lost (dead or talking garbage, versus a
// clean refusal).
func (c *Controller) callRun(m *member, palName string, input []byte, att *trace.Span) (out []byte, err error, retry, down bool) {
	tid, pid := att.Context()
	scratch := getFrameBuf()
	enc := appendRun((*scratch)[:0], &runReq{
		PAL: palName, Input: input,
		Trace: traceCtx{TraceID: tid, Parent: pid},
	})
	reply := getFrameBuf()
	raw, cerr := c.port.CallAppend(m.name, enc, (*reply)[:0])
	*scratch = enc[:0]
	putFrameBuf(scratch)
	defer func() {
		if raw != nil {
			*reply = raw
		}
		putFrameBuf(reply)
	}()
	if cerr != nil {
		// Died mid-call: the reply — and the host's span records with it —
		// is gone.
		return nil, cerr, true, true
	}
	body, derr := decodeResp(raw, kindRunResp)
	if derr == nil {
		var rr *runResp
		if rr, derr = decodeRunResp(body); derr == nil {
			att.Adopt(rr.Spans)
			switch rr.Status {
			case runOK:
				// rr.Output aliases the pooled reply buffer; copy before it
				// recycles.
				return append([]byte(nil), rr.Output...), nil, false, false
			case runPALError:
				c.met.runsErr.Inc()
				return nil, &PALError{Host: m.name, Msg: rr.Err}, false, false
			default:
				// Draining, lost, or unknown PAL: this member cannot take
				// the job right now; try a survivor.
				return nil, fmt.Errorf("host refused (status %d): %s", rr.Status, rr.Err), true, false
			}
		}
	}
	// Protocol garbage from an admitted member: treat like a crash.
	return nil, derr, true, true
}

// --- batched dispatch -------------------------------------------------------

// fabJob is one queued Run riding the wire-frame coalescer. done is
// buffered: outcome delivery never blocks a frame goroutine.
type fabJob struct {
	input    []byte
	root     *trace.Span
	tried    map[string]bool
	attempts int
	done     chan fabOut
}

type fabOut struct {
	out []byte
	err error
}

// hostLane is one host's pipelining window: a frame dispatch acquires a
// token before its port call and releases it as soon as the wire exchange
// returns, so at most Window frames are outstanding to the host at once.
// The blocked-acquire counter mirrors the pool ring's waiter-counted
// backpressure semantics: contention is observable, not silent.
type hostLane struct {
	tokens chan struct{}
}

func (l *hostLane) acquire(met *fabricMetrics) {
	select {
	case l.tokens <- struct{}{}:
	default:
		met.windowWaits.Inc()
		l.tokens <- struct{}{}
	}
}

func (l *hostLane) release() { <-l.tokens }

func (c *Controller) laneFor(host string) *hostLane {
	c.laneMu.Lock()
	defer c.laneMu.Unlock()
	l, ok := c.lanes[host]
	if !ok {
		l = &hostLane{tokens: make(chan struct{}, c.cfg.Window)}
		c.lanes[host] = l
	}
	return l
}

// queueFor returns (lazily starting) the dispatcher queue for one PAL.
func (c *Controller) queueFor(palName string) chan *fabJob {
	c.dispMu.Lock()
	defer c.dispMu.Unlock()
	q, ok := c.queues[palName]
	if !ok {
		depth := 4 * c.coal.MaxBatch
		if depth < 64 {
			depth = 64
		}
		q = make(chan *fabJob, depth)
		c.queues[palName] = q
		go c.dispatch(palName, q)
	}
	return q
}

// runBatched enqueues one Run on its PAL's coalescer and waits for the
// outcome.
func (c *Controller) runBatched(palName string, input []byte, root *trace.Span) ([]byte, error) {
	j := &fabJob{input: input, root: root, done: make(chan fabOut, 1)}
	select {
	case c.queueFor(palName) <- j:
	case <-c.stop:
		return nil, ErrClosed
	}
	o := <-j.done
	return o.out, o.err
}

// dispatch is one PAL's coalescing dispatcher: gather a group (sched.Gather,
// the pool's group-commit discipline on a channel), pick a host, and issue
// the group as pipelined frames. The dispatcher itself never touches the
// wire — frame goroutines do — so gathering the next group overlaps the
// previous frames' round trips.
func (c *Controller) dispatch(palName string, q chan *fabJob) {
	for {
		var first *fabJob
		select {
		case first = <-q:
		case <-c.stop:
			c.failPending(q)
			return
		}
		group, reason := sched.Gather(c.coal, first, q)
		c.met.batchFlush[reason].Inc()
		c.met.batchSize.ObserveExemplar(float64(len(group)), firstRootHex(group))
		c.dispatchGroup(palName, group)
	}
}

// failPending drains a closing queue, failing everything in hand. Close's
// contract is that no Run is in flight when it is called, so this only
// sweeps stragglers.
func (c *Controller) failPending(q chan *fabJob) {
	for {
		select {
		case j := <-q:
			j.done <- fabOut{err: ErrClosed}
		default:
			return
		}
	}
}

// dispatchGroup splits a gathered group into frames bounded by what one
// batched session's input page can hold (core.BatchInputFits — the same
// bound the pool's coalescer applies) and issues each frame to a host.
func (c *Controller) dispatchGroup(palName string, group []*fabJob) {
	for len(group) > 0 {
		sizes := []int{len(group[0].input)}
		n := 1
		for n < len(group) {
			next := append(sizes, len(group[n].input))
			if !core.BatchInputFits(0, next...) {
				break
			}
			sizes = next
			n++
		}
		frame := group[:n]
		group = group[n:]
		m := c.pickN(palName, triedUnion(frame), len(frame))
		if m == nil {
			for _, j := range frame {
				j.done <- fabOut{err: fmt.Errorf("%w: %s", ErrNoHosts, palName)}
			}
			continue
		}
		lane := c.laneFor(m.name)
		// Window backpressure is applied here, in the dispatcher, so the
		// number of outstanding frames per host is bounded before goroutines
		// are spawned for them.
		lane.acquire(c.met)
		go c.callFrame(m, lane, palName, frame)
	}
}

// triedUnion merges the members' failover exclusion sets: a frame carrying
// any job that already failed on a host avoids that host for the whole
// frame.
func triedUnion(frame []*fabJob) map[string]bool {
	var u map[string]bool
	for _, j := range frame {
		for h := range j.tried {
			if u == nil {
				u = make(map[string]bool)
			}
			u[h] = true
		}
	}
	return u
}

// firstRootHex returns the first traced job's trace ID for exemplar
// attribution ("" when the whole group is untraced).
func firstRootHex(group []*fabJob) string {
	for _, j := range group {
		if h := j.root.TraceHex(); h != "" {
			return h
		}
	}
	return ""
}

// callFrame issues one frame: a singleton rides the legacy kindRun exchange
// (bit-identical to the unbatched fabric), a group rides one runBatch frame.
// The lane token is released as soon as the wire exchange returns — before
// decode, fan-out, or resubmission — so a retry that blocks re-enqueueing
// never wedges the host's window.
func (c *Controller) callFrame(m *member, lane *hostLane, palName string, frame []*fabJob) {
	if len(frame) == 1 {
		c.callSingle(m, lane, palName, frame[0])
		return
	}
	fid := c.frameID.Add(1)
	atts := make([]*trace.Span, len(frame))
	var ftc traceCtx
	for i, j := range frame {
		att := j.root.Child("attempt")
		att.SetAttr("host", m.name)
		att.SetAttrInt("batch", int64(len(frame)))
		att.SetAttrInt("frame", int64(fid))
		atts[i] = att
		if ftc.TraceID == 0 {
			tid, pid := att.Context()
			ftc = traceCtx{TraceID: tid, Parent: pid}
		}
	}
	req := &runBatchReq{Frame: fid, PAL: palName, Trace: ftc,
		Members: make([]runBatchMember, len(frame))}
	for i, j := range frame {
		tid, pid := atts[i].Context()
		req.Members[i] = runBatchMember{Input: j.input, Trace: traceCtx{TraceID: tid, Parent: pid}}
	}
	scratch := getFrameBuf()
	enc := appendRunBatch((*scratch)[:0], req)
	reply := getFrameBuf()
	raw, cerr := c.port.CallAppend(m.name, enc, (*reply)[:0])
	*scratch = enc[:0]
	putFrameBuf(scratch)
	lane.release()
	c.finishCallN(m, len(frame))
	if cerr != nil {
		// Died mid-call: the whole reply frame is lost, completed members and
		// all — every member resubmits (the empty-completed-prefix case).
		putFrameBuf(reply)
		for i, j := range frame {
			atts[i].EndErr(cerr)
			j.root.Trigger("failover-resubmit")
		}
		c.hostLost(m, cerr)
		for _, j := range frame {
			c.retryJob(palName, j, m.name)
		}
		return
	}
	body, derr := decodeResp(raw, kindRunBatchResp)
	var br *runBatchResp
	if derr == nil {
		br, derr = decodeRunBatchResp(body)
	}
	if derr == nil && (br.Frame != fid || len(br.Members) != len(frame)) {
		derr = fmt.Errorf("%w: batch reply mismatch (frame %d for %d, %d members for %d)",
			ErrBadFrame, br.Frame, fid, len(br.Members), len(frame))
	}
	if derr != nil {
		// Protocol garbage from an admitted member: treat like a crash.
		*reply = raw
		putFrameBuf(reply)
		for i, j := range frame {
			atts[i].EndErr(derr)
			j.root.Trigger("failover-resubmit")
		}
		c.hostLost(m, derr)
		for _, j := range frame {
			c.retryJob(palName, j, m.name)
		}
		return
	}
	// Fan the member outcomes out. The host finished members it reports
	// runOK/runPALError — those are final and never resubmitted; members it
	// reports runLost (an abort interrupted them) or a refusal status
	// resubmit individually, so only the incomplete suffix travels again.
	adopted := false
	ok := 0
	for i, j := range frame {
		mr := &br.Members[i]
		atts[i].Adopt(mr.Spans)
		if !adopted && atts[i] != nil {
			// The frame-level host segment (host.runBatch + the shared
			// session's spans) splices under the first traced attempt.
			atts[i].Adopt(br.Spans)
			adopted = true
		}
		switch mr.Status {
		case runOK:
			ok++
			atts[i].End()
			// mr.Output aliases the pooled reply buffer; copy before it
			// recycles.
			j.done <- fabOut{out: append([]byte(nil), mr.Output...)}
		case runPALError:
			c.met.runsErr.Inc()
			perr := &PALError{Host: m.name, Msg: mr.Err}
			atts[i].EndErr(perr)
			j.done <- fabOut{err: perr}
		default:
			atts[i].EndErr(fmt.Errorf("host refused (status %d): %s", mr.Status, mr.Err))
			j.root.Trigger("failover-resubmit")
			c.retryJob(palName, j, m.name)
		}
	}
	if ok > 0 {
		c.noteSessions(m, ok)
	}
	*reply = raw
	putFrameBuf(reply)
}

// callSingle is callFrame's singleton fallback: the legacy kindRun exchange
// with the batched path's failover plumbing.
func (c *Controller) callSingle(m *member, lane *hostLane, palName string, j *fabJob) {
	att := j.root.Child("attempt")
	att.SetAttr("host", m.name)
	out, err, retry, down := c.callRun(m, palName, j.input, att)
	lane.release()
	c.finishCallN(m, 1)
	if !retry {
		if err != nil {
			att.EndErr(err)
			j.done <- fabOut{err: err}
			return
		}
		c.noteSessions(m, 1)
		att.End()
		j.done <- fabOut{out: out}
		return
	}
	att.EndErr(err)
	j.root.Trigger("failover-resubmit")
	if down {
		c.hostLost(m, err)
	}
	c.retryJob(palName, j, m.name)
}

// retryJob excludes the failed host and re-enqueues the job on its PAL's
// coalescer, failing it once the failover budget is spent. Callers must not
// hold a lane token: the re-enqueue may block on a full queue.
func (c *Controller) retryJob(palName string, j *fabJob, host string) {
	if j.tried == nil {
		j.tried = make(map[string]bool)
	}
	j.tried[host] = true
	j.attempts++
	c.noteResubmit()
	if j.attempts > c.cfg.MaxResubmits {
		j.done <- fabOut{err: fmt.Errorf("%w: %s (failover budget exhausted)", ErrNoHosts, palName)}
		return
	}
	select {
	case c.queueFor(palName) <- j:
	case <-c.stop:
		j.done <- fabOut{err: ErrClosed}
	}
}

// noteSessions credits n completed sessions to a member.
func (c *Controller) noteSessions(m *member, n int) {
	c.mu.Lock()
	m.sessions += int64(n)
	c.sessions += int64(n)
	c.mu.Unlock()
	c.met.runsOK.Add(float64(n))
}

// Close tears the batched dispatchers down: queued jobs fail with ErrClosed
// and no further Run is accepted. Callers should let outstanding Runs finish
// first (Close does not wait for them). A controller with batching disabled
// needs no Close, but calling it is always safe.
func (c *Controller) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	return nil
}

func (c *Controller) noteResubmit() {
	c.mu.Lock()
	c.resubmits++
	c.mu.Unlock()
	c.met.resubmits.Inc()
}

// pick selects and reserves (inflight++) an eligible member for a PAL.
func (c *Controller) pick(palName string, tried map[string]bool) *member {
	return c.pickN(palName, tried, 1)
}

// pickN is pick reserving n in-flight slots at once — a whole frame's worth
// for a batched dispatch.
func (c *Controller) pickN(palName string, tried map[string]bool, n int) *member {
	c.mu.Lock()
	defer c.mu.Unlock()
	var eligible []*member
	names := make([]string, 0, len(c.members))
	for name := range c.members {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := c.members[name]
		if m.state == stateAdmitted && m.pals[palName] && !tried[name] {
			eligible = append(eligible, m)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	// Same routing core as the in-process pool: hash affinity keeps a PAL's
	// image cache hot on its home member; saturation spills least-loaded.
	i := sched.Home(palName, len(eligible))
	if eligible[i].inflight >= int64(c.cfg.HostInFlight) {
		i = sched.LeastLoaded(len(eligible), func(j int) int64 { return eligible[j].inflight })
	}
	m := eligible[i]
	m.inflight += int64(n)
	m.gauge.Set(float64(m.inflight))
	return m
}

// finishCallN releases n member reservations and wakes drain waiters.
func (c *Controller) finishCallN(m *member, n int) {
	c.mu.Lock()
	m.inflight -= int64(n)
	m.gauge.Set(float64(m.inflight))
	c.mu.Unlock()
	c.cond.Broadcast()
}

// hostLost transitions a member out of service after a failure.
func (c *Controller) hostLost(m *member, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.state != stateAdmitted && m.state != stateDraining {
		return
	}
	m.state = stateLost
	if cause != nil {
		m.lastErr = cause.Error()
	}
	m.gauge.Set(0)
	c.met.hostDown.Inc()
	c.cond.Broadcast()
}

// Tick drives the controller's periodic work: one heartbeat round, and —
// every cfg.ReattestEvery ticks — a re-attestation sweep. Hosts that miss
// cfg.MissThreshold consecutive heartbeats are marked lost; hosts whose
// re-attestation quote no longer verifies are evicted.
func (c *Controller) Tick() {
	c.mu.Lock()
	c.ticks++
	reattest := c.cfg.ReattestEvery > 0 && c.ticks%c.cfg.ReattestEvery == 0
	var live []*member
	for _, m := range c.members {
		if m.state == stateAdmitted || m.state == stateDraining {
			live = append(live, m)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].name < live[j].name })
	c.mu.Unlock()

	// Heartbeats ride the priority lane: a direct port.Call that never enters
	// a dispatcher queue and never takes a window token, so a host saturated
	// with batched data frames still answers probes and is not falsely
	// evicted. (The host side is symmetric — kindHeartbeat is served inline
	// from atomics, never through the pool.)
	for _, m := range live {
		raw, err := c.port.Call(m.name, encodeEmpty(kindHeartbeat))
		if err == nil {
			if _, err = decodeResp(raw, kindHeartbeatResp); err == nil {
				c.mu.Lock()
				m.misses = 0
				c.mu.Unlock()
				continue
			}
		}
		c.mu.Lock()
		m.misses++
		missed := m.misses >= c.cfg.MissThreshold
		c.mu.Unlock()
		if missed {
			c.hostLost(m, fmt.Errorf("missed %d heartbeats: %w", c.cfg.MissThreshold, err))
		}
	}

	if !reattest {
		return
	}
	for _, m := range live {
		c.mu.Lock()
		skip := m.state != stateAdmitted
		c.mu.Unlock()
		if skip {
			continue
		}
		// Re-attestations are traced unconditionally (when tracing is on):
		// an eviction is rare enough to always deserve a flight-recorder
		// entry, and its event links back to the trace.
		root := c.tracer.Start("fabric.reattest")
		root.SetAttr("host", m.name)
		if _, err := c.attestHost(m.name, root); err != nil {
			c.met.reattestFail.Inc()
			root.Trigger("reattest-evict")
			root.EndErr(err)
			if c.cfg.Events != nil {
				c.cfg.Events.RecordTrace(metrics.EventHostEvicted,
					"fabric: "+m.name+" evicted: re-attestation failed: "+err.Error(),
					root.TraceHex())
			}
			c.hostLost(m, fmt.Errorf("re-attestation failed: %w", err))
			continue
		}
		root.End()
		c.mu.Lock()
		m.reattests++
		m.attestedAt = c.sw.Clock().Now()
		c.mu.Unlock()
		c.met.reattestOK.Inc()
	}
}

// Traces returns the controller's flight recorder, nil when tracing is off
// (cfg.TraceSample == 0). The `flicker serve` /traces endpoints read it.
func (c *Controller) Traces() *trace.FlightRecorder { return c.flight }

// Tracer returns the controller's tracer, nil when tracing is off.
func (c *Controller) Tracer() *trace.Tracer { return c.tracer }

// Drain gracefully removes a host: stop routing new work to it, tell it to
// refuse direct submissions, wait for its controller-tracked in-flight
// jobs to finish, and mark it drained. The host may later rejoin via Admit.
func (c *Controller) Drain(host string) error {
	c.mu.Lock()
	m := c.members[host]
	if m == nil || m.state != stateAdmitted {
		state := "unknown"
		if m != nil {
			state = m.state.String()
		}
		c.mu.Unlock()
		return fmt.Errorf("fabric: cannot drain %s (state %s)", host, state)
	}
	m.state = stateDraining
	c.mu.Unlock()

	if _, err := c.port.Call(host, encodeEmpty(kindDrain)); err != nil {
		c.hostLost(m, err)
		return fmt.Errorf("fabric: drain of %s: host lost: %w", host, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for m.inflight > 0 && m.state == stateDraining {
		c.cond.Wait()
	}
	if m.state != stateDraining {
		return fmt.Errorf("fabric: %s failed while draining (state %s)", host, m.state)
	}
	m.state = stateDrained
	c.met.hostDrained.Inc()
	return nil
}

// Hosts lists every member the controller has ever challenged, sorted by
// name, with its current admission state.
func (c *Controller) Hosts() []HostStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]HostStatus, 0, len(c.members))
	names := make([]string, 0, len(c.members))
	for name := range c.members {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := c.members[name]
		hs := HostStatus{
			Name:       m.name,
			State:      m.state.String(),
			AttestedMS: float64(m.attestedAt) / float64(time.Millisecond),
			Reattests:  m.reattests,
			Misses:     m.misses,
			InFlight:   m.inflight,
			Sessions:   m.sessions,
			LastError:  m.lastErr,
		}
		for p := range m.pals {
			hs.PALs = append(hs.PALs, p)
		}
		sort.Strings(hs.PALs)
		out = append(out, hs)
	}
	return out
}

// Live reports how many members are currently schedulable.
func (c *Controller) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.members {
		if m.state == stateAdmitted {
			n++
		}
	}
	return n
}

// Stats snapshots the controller's fleet-wide accounting.
func (c *Controller) Stats() Stats {
	per := c.Hosts()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hosts:              len(c.members),
		AdmissionsOK:       c.admissionsOK,
		AdmissionsRejected: c.admissionsRejected,
		Resubmits:          c.resubmits,
		Sessions:           c.sessions,
		PerHost:            per,
	}
	for _, m := range c.members {
		if m.state == stateAdmitted {
			st.Live++
		}
	}
	return st
}
