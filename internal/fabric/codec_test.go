package fabric

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"flicker/internal/attest"
	"flicker/internal/tpm"
	"flicker/internal/trace"
)

func TestCodecChallengeRoundTrip(t *testing.T) {
	var nonce tpm.Digest
	for i := range nonce {
		nonce[i] = byte(i)
	}
	tc := traceCtx{TraceID: 0xABCD000000000001, Parent: 0xABCD000000000002}
	got, gotTC, err := decodeChallenge(encodeChallenge(nonce, tc)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got != nonce {
		t.Fatalf("nonce round trip = %x", got)
	}
	if gotTC != tc {
		t.Fatalf("trace ctx round trip = %+v", gotTC)
	}
	if _, _, err := decodeChallenge(nonce[:10]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated challenge = %v", err)
	}
	// A frame carrying the nonce but a truncated trace context is rejected.
	if _, _, err := decodeChallenge(encodeChallenge(nonce, tc)[1:30]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated trace ctx = %v", err)
	}
}

func sampleChallengeResp() *challengeResp {
	r := &challengeResp{
		PALs: []hostPAL{
			{Name: "echo", Launch: tpm.Digest{1, 2, 3}},
			{Name: AdmissionPALName, Launch: tpm.Digest{4, 5}},
		},
		Output: []byte("fabric-admitted:xyz"),
		Att: attest.Attestation{
			Nonce:     tpm.Digest{9},
			Composite: tpm.Digest{8},
			Signature: []byte("sig-bytes"),
			Cert: &attest.AIKCert{
				PlatformID: "host0",
				AIKPub:     []byte("pub-bytes"),
				Signature:  []byte("ca-sig"),
			},
		},
	}
	return r
}

func TestCodecChallengeRespRoundTrip(t *testing.T) {
	want := sampleChallengeResp()
	raw := encodeChallengeResp(want)
	body, err := decodeResp(raw, kindChallengeResp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeChallengeResp(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PALs) != 2 || got.PALs[0] != want.PALs[0] || got.PALs[1] != want.PALs[1] {
		t.Fatalf("inventory round trip = %+v", got.PALs)
	}
	if string(got.Output) != string(want.Output) {
		t.Fatalf("output = %q", got.Output)
	}
	if got.Att.Nonce != want.Att.Nonce || got.Att.Composite != want.Att.Composite {
		t.Fatal("attestation digests mangled")
	}
	if got.Att.Cert.PlatformID != "host0" || string(got.Att.Cert.AIKPub) != "pub-bytes" {
		t.Fatalf("cert round trip = %+v", got.Att.Cert)
	}
}

// A forged 32-bit PAL count may not drive the inventory allocation: the
// count is clamped against what the remaining bytes could possibly frame.
func TestCodecForgedPALCountRejected(t *testing.T) {
	raw := encodeChallengeResp(sampleChallengeResp())
	body := append([]byte(nil), raw[1:]...)
	binary.BigEndian.PutUint32(body[:4], 0xFFFFFFFF)
	_, err := decodeChallengeResp(body)
	if !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "PAL count") {
		t.Fatalf("forged count decode = %v, want clamp rejection", err)
	}
}

func TestCodecForgedStatsCountRejected(t *testing.T) {
	raw := encodeStatsResp(&hostStats{Sessions: 7, PALs: []string{"echo"}})
	body := append([]byte(nil), raw[1:]...)
	// The count word sits after sessions(8) + aborted(8) + inflight(4).
	binary.BigEndian.PutUint32(body[20:24], 1<<30)
	_, err := decodeStatsResp(body)
	if !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "PAL count") {
		t.Fatalf("forged stats count decode = %v, want clamp rejection", err)
	}
}

// A forged field length may not slice past the frame.
func TestCodecForgedFieldLengthRejected(t *testing.T) {
	raw := encodeRun(&runReq{PAL: "echo", Input: []byte("abc")})
	body := append([]byte(nil), raw[1:]...)
	binary.BigEndian.PutUint16(body[:2], 0xFFFF) // PAL-name length
	if _, err := decodeRun(body); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("forged name length = %v", err)
	}
	body = append([]byte(nil), raw[1:]...)
	binary.BigEndian.PutUint32(body[6:10], 0xFFFFFFF0) // input length
	if _, err := decodeRun(body); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("forged input length = %v", err)
	}
}

func TestCodecRunRoundTripAndTrailing(t *testing.T) {
	rr, err := decodeRun(encodeRun(&runReq{PAL: "p", Input: []byte("in")})[1:])
	if err != nil || rr.PAL != "p" || string(rr.Input) != "in" {
		t.Fatalf("run round trip = %+v, %v", rr, err)
	}
	raw := append(encodeRun(&runReq{PAL: "p"})[1:], 0xEE)
	if _, err := decodeRun(raw); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes = %v", err)
	}
	resp, err := decodeRunResp(encodeRunResp(&runResp{Status: runOK, Output: []byte("o"), Err: "e"})[1:])
	if err != nil || resp.Status != runOK || string(resp.Output) != "o" || resp.Err != "e" {
		t.Fatalf("run resp round trip = %+v, %v", resp, err)
	}
}

func sampleSpans() []trace.SpanRecord {
	return []trace.SpanRecord{
		{Span: 0x1000000000000001, Parent: 0, Name: "host.run", Site: "host0",
			Start: 5 * time.Millisecond, Duration: 40 * time.Millisecond,
			Attrs: []trace.SpanAttr{{Key: "pal", Value: "echo"}, {Key: "host", Value: "host0"}}},
		{Span: 0x1000000000000002, Parent: 0x1000000000000001, Name: "session", Site: "host0",
			Start: 6 * time.Millisecond, Duration: 38 * time.Millisecond, Err: "boom"},
	}
}

func TestCodecSpanRecordsRoundTrip(t *testing.T) {
	want := sampleSpans()
	resp, err := decodeRunResp(encodeRunResp(&runResp{Status: runOK, Spans: want})[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Spans) != len(want) {
		t.Fatalf("span count = %d, want %d", len(resp.Spans), len(want))
	}
	for i := range want {
		g, w := resp.Spans[i], want[i]
		if g.Span != w.Span || g.Parent != w.Parent || g.Name != w.Name ||
			g.Site != w.Site || g.Start != w.Start || g.Duration != w.Duration || g.Err != w.Err {
			t.Fatalf("span %d round trip = %+v, want %+v", i, g, w)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("span %d attrs = %+v", i, g.Attrs)
		}
		for j := range w.Attrs {
			if g.Attrs[j] != w.Attrs[j] {
				t.Fatalf("span %d attr %d = %+v", i, j, g.Attrs[j])
			}
		}
	}
	// The challenge response carries the same blob.
	cr := sampleChallengeResp()
	cr.Spans = sampleSpans()
	got, err := decodeChallengeResp(encodeChallengeResp(cr)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 2 || got.Spans[1].Err != "boom" {
		t.Fatalf("challenge resp spans = %+v", got.Spans)
	}
}

// A forged span count may not size the record allocation, and a forged
// attribute count may not size an attribute slice: both are clamped against
// the remaining frame bytes. Span blobs arrive from untrusted hosts.
func TestCodecForgedSpanCountsRejected(t *testing.T) {
	raw := encodeRunResp(&runResp{Status: runOK, Spans: sampleSpans()})[1:]
	// Span count sits after status(1) + output len(4) + err len(2).
	body := append([]byte(nil), raw...)
	binary.BigEndian.PutUint16(body[7:9], 0xFFFF)
	if _, err := decodeRunResp(body); !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "span count") {
		t.Fatalf("forged span count = %v, want clamp rejection", err)
	}
	// Attr count of the first record sits after the fixed span header plus
	// its name, site, and error fields.
	body = append([]byte(nil), raw...)
	off := 9 + 8 + 8 + 2 + len("host.run") + 2 + len("host0") + 8 + 8 + 2
	binary.BigEndian.PutUint16(body[off:off+2], 0xFFFF)
	if _, err := decodeRunResp(body); !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "attr count") {
		t.Fatalf("forged attr count = %v, want clamp rejection", err)
	}
}

func TestCodecHeartbeatAndStatsRoundTrip(t *testing.T) {
	hb, err := decodeHeartbeatResp(encodeHeartbeatResp(&heartbeatResp{InFlight: 3, Sessions: 99, Draining: true})[1:])
	if err != nil || hb.InFlight != 3 || hb.Sessions != 99 || !hb.Draining {
		t.Fatalf("heartbeat round trip = %+v, %v", hb, err)
	}
	st, err := decodeStatsResp(encodeStatsResp(&hostStats{Sessions: 5, Aborted: 1, InFlight: 2, PALs: []string{"a", "b"}})[1:])
	if err != nil || st.Sessions != 5 || st.Aborted != 1 || st.InFlight != 2 || len(st.PALs) != 2 {
		t.Fatalf("stats round trip = %+v, %v", st, err)
	}
}

func TestCodecErrorFrames(t *testing.T) {
	if _, err := decodeResp(encodeErrorResp("boom"), kindRunResp); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error frame = %v", err)
	}
	if _, err := decodeResp([]byte{kindStatsResp}, kindRunResp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("wrong kind = %v", err)
	}
	if _, err := decodeResp(nil, kindRunResp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty resp = %v", err)
	}
}
