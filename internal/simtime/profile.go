package simtime

import "time"

// Profile is a hardware latency profile: the cost model for every simulated
// operation whose latency the paper measures. The default profiles are
// calibrated so that the benchmark harness reproduces the paper's tables.
//
// Calibration notes (all from Section 7 of the paper):
//
//   - Table 2 gives SKINIT latency vs SLB size on the HP dc5750 (Broadcom
//     BCM0102 TPM): 0 KB -> ~0 ms, 4 KB -> 11.9 ms, 64 KB -> 177.5 ms. The
//     model is an affine fit: CPUStateChange (<1 ms, "the first column shows
//     that changing the CPU state requires less than 1 ms") plus a per-KB
//     transfer-and-hash cost of ~2.76 ms/KB.
//   - Table 1: TPM Quote 972.7 ms, PCR Extend 1.2 ms on the Broadcom part.
//   - Table 4 / Figure 9b: Unseal 898.3-905.4 ms Broadcom. Section 7.3 notes
//     an Infineon TPM unseals in under 400 ms and quotes in under 331 ms.
//   - Figure 9a: Seal 10.2 ms; TPM GetRandom (128 bytes) 1.3 ms; 1024-bit RSA
//     key generation on the 2.2 GHz Athlon64 185.7 ms; PKCS#1 decrypt 4.6 ms;
//     RSA sign 4.7 ms (Section 7.4.2).
//   - Section 7.2: hashing the kernel (text + syscall table + modules) takes
//     22.0 ms; we model main-CPU SHA-1 at ~80 MB/s over the ~1.8 MB kernel
//     image, i.e. CPUHashPerByte of ~12.2 ns.
type Profile struct {
	Name string

	// CPU-side costs.
	CPUStateChange  time.Duration // SKINIT's CPU portion (mode switch, DEV setup)
	CPUHashPerByte  time.Duration // SHA-1 on the main CPU, per byte
	RSAKeyGen1024   time.Duration // 1024-bit keypair generation in a PAL
	RSADecrypt1024  time.Duration // PKCS#1 v1.5 decrypt with a 1024-bit key
	RSASign1024     time.Duration // PKCS#1 v1.5 sign with a 1024-bit key
	MD5CryptCost    time.Duration // one md5crypt password hash
	HMACCost        time.Duration // HMAC-SHA1 over a small PAL state blob
	AESBlockCost    time.Duration // one AES-128 block (state encryption)
	ContextSwitch   time.Duration // OS suspend/resume bookkeeping (flicker-module)
	PageTableReload time.Duration // skeleton page table build + CR3 reload

	// TPM costs (per command, on the TPM's internal processor).
	TPMTransferPerByte time.Duration // SKINIT SLB transfer + hash inside the TPM
	TPMExtend          time.Duration
	TPMQuote           time.Duration
	TPMSeal            time.Duration
	TPMUnseal          time.Duration
	TPMGetRandom       time.Duration // per GetRandom call (128 bytes)
	TPMPCRRead         time.Duration
	TPMNVRead          time.Duration
	TPMNVWrite         time.Duration
	TPMCounter         time.Duration // increment/read monotonic counter
	TPMLoadKey         time.Duration // load AIK for quoting
	TPMMakeIdentity    time.Duration // AIK generation (one-time)
	TPMOIAPSession     time.Duration // establish an authorization session

	// Next-generation hardware capabilities, from the authors' concurrent
	// recommendations paper [19] ("How low can you go?"). Both are false
	// on the 2008-era profiles and true on ProfileFuture.

	// MulticoreIsolation allows a late launch on one core while untrusted
	// code keeps executing on the others ("Systems should support secure
	// execution on a subset of CPU cores... This will eliminate problems
	// with interrupts being disabled", Section 7.5).
	MulticoreIsolation bool
	// HWContextProtection provides hardware-protected PAL state across
	// sessions, replacing TPM sealed storage for checkpointing ("Hardware
	// mechanisms to protect PAL state while a PAL is context-switched out
	// can potentially eliminate a major source of Flicker's overhead
	// related to sealed storage").
	HWContextProtection bool
	// HWContextCost is the per-operation cost of the protected context
	// store when HWContextProtection is available.
	HWContextCost time.Duration
}

// SkinitCost returns the modeled latency of an SKINIT over an SLB of the
// given length in bytes: the CPU state change plus the TPM transfer/hash.
func (p *Profile) SkinitCost(slbLen int) time.Duration {
	return p.CPUStateChange + time.Duration(slbLen)*p.TPMTransferPerByte
}

// CPUHashCost returns the modeled latency of hashing n bytes on the main CPU.
func (p *Profile) CPUHashCost(n int) time.Duration {
	return time.Duration(n) * p.CPUHashPerByte
}

// ProfileBroadcom models the paper's primary test machine: an HP dc5750
// (AMD Athlon64 X2 4200+, 2.2 GHz) with a v1.2 Broadcom BCM0102 TPM.
func ProfileBroadcom() *Profile {
	return &Profile{
		Name:           "broadcom-bcm0102",
		CPUStateChange: 900 * time.Microsecond,
		// (177.5ms - 0.9ms) / 65536 B = ~2.695 us/B. At 4 KB this gives
		// 0.9 + 11.0 = 11.9 ms and at 64 KB 177.5 ms, matching Table 2.
		TPMTransferPerByte: 2695 * time.Nanosecond,
		CPUHashPerByte:     12 * time.Nanosecond, // ~22 ms over a 1.8 MB kernel
		RSAKeyGen1024:      FromMillis(185.7),
		RSADecrypt1024:     FromMillis(4.6),
		RSASign1024:        FromMillis(4.7),
		MD5CryptCost:       120 * time.Microsecond,
		HMACCost:           35 * time.Microsecond,
		AESBlockCost:       280 * time.Nanosecond,
		ContextSwitch:      250 * time.Microsecond,
		PageTableReload:    180 * time.Microsecond,
		TPMExtend:          FromMillis(1.2),
		TPMQuote:           FromMillis(972.7),
		TPMSeal:            FromMillis(10.2),
		TPMUnseal:          FromMillis(898.3),
		TPMGetRandom:       FromMillis(1.3),
		TPMPCRRead:         FromMillis(0.8),
		TPMNVRead:          FromMillis(12.0),
		TPMNVWrite:         FromMillis(14.0),
		TPMCounter:         FromMillis(5.0),
		TPMLoadKey:         FromMillis(40.0),
		TPMMakeIdentity:    FromMillis(2500.0),
		TPMOIAPSession:     FromMillis(3.0),
	}
}

// ProfileInfineon models the faster Infineon v1.2 TPM the paper cites as a
// comparison point (quote under 331 ms, unseal under 391 ms).
func ProfileInfineon() *Profile {
	p := ProfileBroadcom()
	p.Name = "infineon"
	p.TPMQuote = FromMillis(331.0)
	p.TPMUnseal = FromMillis(391.0)
	p.TPMSeal = FromMillis(8.0)
	p.TPMExtend = FromMillis(1.0)
	p.TPMTransferPerByte = 2200 * time.Nanosecond
	return p
}

// ProfileFuture models the hardware recommendations of the authors'
// concurrent work ([19], "How low can you go?"), which they report can
// improve performance by up to six orders of magnitude: TPM operations
// become register-speed and the late launch is microseconds.
func ProfileFuture() *Profile {
	p := ProfileBroadcom()
	p.Name = "future-hw"
	p.CPUStateChange = 2 * time.Microsecond
	p.TPMTransferPerByte = 1 * time.Nanosecond
	p.TPMExtend = 1 * time.Microsecond
	p.TPMQuote = 200 * time.Microsecond // still one real signature on the CPU
	p.TPMSeal = 10 * time.Microsecond
	p.TPMUnseal = 10 * time.Microsecond
	p.TPMGetRandom = 1 * time.Microsecond
	p.TPMPCRRead = 1 * time.Microsecond
	p.TPMNVRead = 2 * time.Microsecond
	p.TPMNVWrite = 2 * time.Microsecond
	p.TPMCounter = 2 * time.Microsecond
	p.TPMLoadKey = 5 * time.Microsecond
	p.TPMMakeIdentity = 500 * time.Microsecond
	p.TPMOIAPSession = 1 * time.Microsecond
	p.MulticoreIsolation = true
	p.HWContextProtection = true
	p.HWContextCost = 2 * time.Microsecond
	return p
}
