package simtime

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock Now() = %v, want 0", got)
	}
	if n := len(c.Charges()); n != 0 {
		t.Fatalf("new clock has %d charges, want 0", n)
	}
}

func TestClockAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(5*time.Millisecond, "a")
	c.Advance(7*time.Millisecond, "b")
	if got, want := c.Now(), 12*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	ch := c.Charges()
	if len(ch) != 2 {
		t.Fatalf("got %d charges, want 2", len(ch))
	}
	if ch[0].At != 0 || ch[0].Duration != 5*time.Millisecond || ch[0].Label != "a" {
		t.Errorf("charge[0] = %+v", ch[0])
	}
	if ch[1].At != 5*time.Millisecond {
		t.Errorf("charge[1].At = %v, want 5ms", ch[1].At)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	New().Advance(-time.Millisecond, "bad")
}

func TestClockTotalByLabel(t *testing.T) {
	c := New()
	c.Advance(time.Millisecond, "tpm")
	c.Advance(2*time.Millisecond, "cpu")
	c.Advance(3*time.Millisecond, "tpm")
	totals := c.TotalByLabel()
	if totals["tpm"] != 4*time.Millisecond {
		t.Errorf("tpm total = %v, want 4ms", totals["tpm"])
	}
	if totals["cpu"] != 2*time.Millisecond {
		t.Errorf("cpu total = %v, want 2ms", totals["cpu"])
	}
}

func TestClockChargesSince(t *testing.T) {
	c := New()
	c.Advance(time.Millisecond, "a")
	mark := c.Now()
	c.Advance(time.Millisecond, "b")
	since := c.ChargesSince(mark)
	if len(since) != 1 || since[0].Label != "b" {
		t.Fatalf("ChargesSince = %+v, want single 'b'", since)
	}
}

func TestClockReset(t *testing.T) {
	c := New()
	c.Advance(time.Second, "x")
	c.Reset()
	if c.Now() != 0 || len(c.Charges()) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Microsecond, "w")
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), 5000*time.Microsecond; got != want {
		t.Fatalf("concurrent total = %v, want %v", got, want)
	}
}

func TestNoiseDeterministic(t *testing.T) {
	a := NewWithNoise(42, 0.05)
	b := NewWithNoise(42, 0.05)
	for i := 0; i < 100; i++ {
		da := a.Advance(time.Millisecond, "n")
		db := b.Advance(time.Millisecond, "n")
		if da != db {
			t.Fatalf("iteration %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
}

func TestNoiseBounded(t *testing.T) {
	c := NewWithNoise(7, 0.05)
	for i := 0; i < 1000; i++ {
		d := c.Advance(100*time.Millisecond, "n")
		lo := 94 * time.Millisecond
		hi := 106 * time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("noise out of +/-5%% + slack bounds: %v", d)
		}
	}
}

func TestNoiseZeroFraction(t *testing.T) {
	c := NewWithNoise(1, 0)
	if d := c.Advance(time.Second, "n"); d != time.Second {
		t.Fatalf("zero-fraction noise changed duration: %v", d)
	}
}

func TestMillisRoundTrip(t *testing.T) {
	f := func(msx1000 uint32) bool {
		ms := float64(msx1000) / 1000.0
		got := Millis(FromMillis(ms))
		return math.Abs(got-ms) <= 1e-6*(1+math.Abs(ms))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock's Now always equals the sum of its charges.
func TestClockSumInvariant(t *testing.T) {
	f := func(durs []uint16) bool {
		c := New()
		var want time.Duration
		for _, d := range durs {
			dd := time.Duration(d) * time.Microsecond
			c.Advance(dd, "p")
			want += dd
		}
		if c.Now() != want {
			return false
		}
		var sum time.Duration
		for _, ch := range c.Charges() {
			sum += ch.Duration
		}
		return sum == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileSkinitMatchesTable2(t *testing.T) {
	p := ProfileBroadcom()
	// Table 2 of the paper: SLB size (KB) -> SKINIT latency (ms).
	cases := []struct {
		kb   int
		want float64
		tol  float64
	}{
		{0, 0.9, 1.0}, // paper reports "0.0" (i.e., <1 ms)
		{4, 11.9, 1.0},
		{16, 45.0, 2.0},
		{32, 89.2, 2.5},
		{64, 177.5, 2.5},
	}
	for _, tc := range cases {
		got := Millis(p.SkinitCost(tc.kb * 1024))
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("SKINIT(%d KB) = %.1f ms, want %.1f +/- %.1f", tc.kb, got, tc.want, tc.tol)
		}
	}
}

func TestProfileMonotoneInSLBSize(t *testing.T) {
	for _, p := range []*Profile{ProfileBroadcom(), ProfileInfineon(), ProfileFuture()} {
		prev := time.Duration(-1)
		for kb := 0; kb <= 64; kb += 4 {
			c := p.SkinitCost(kb * 1024)
			if c <= prev {
				t.Errorf("%s: SkinitCost not strictly increasing at %d KB", p.Name, kb)
			}
			prev = c
		}
	}
}

func TestProfileOrdering(t *testing.T) {
	b, i, f := ProfileBroadcom(), ProfileInfineon(), ProfileFuture()
	if !(f.TPMQuote < i.TPMQuote && i.TPMQuote < b.TPMQuote) {
		t.Error("expected future < infineon < broadcom quote latency")
	}
	if !(f.TPMUnseal < i.TPMUnseal && i.TPMUnseal < b.TPMUnseal) {
		t.Error("expected future < infineon < broadcom unseal latency")
	}
}

func TestBreakdownContainsLabels(t *testing.T) {
	c := New()
	c.Advance(time.Millisecond, "skinit")
	c.Advance(2*time.Millisecond, "quote")
	s := c.Breakdown()
	for _, want := range []string{"skinit", "quote"} {
		if !contains(s, want) {
			t.Errorf("breakdown missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
