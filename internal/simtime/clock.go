// Package simtime provides the deterministic simulated clock that underpins
// every latency measurement in the Flicker platform simulation.
//
// The paper's evaluation (Section 7) is a set of latency tables measured with
// RDTSC on real hardware. This package replaces the hardware with calibrated
// latency profiles: every simulated hardware operation (an SKINIT, a TPM
// command, a stretch of CPU work) charges time to a Clock, and the benchmark
// harness reads session traces off the Clock to regenerate the paper's rows.
// Because the clock is purely logical, runs are deterministic and fast
// regardless of how many simulated seconds they cover.
package simtime

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is a deterministic logical clock. Time only moves when a simulated
// component explicitly advances it. The zero value is not usable; use New.
type Clock struct {
	mu       sync.Mutex
	now      time.Duration
	charges  []Charge
	noise    *noiseSource
	onCharge func(Charge)
}

// Charge records a single latency contribution, used by the benchmark
// harness to break down session cost per operation (Tables 1, 4; Figure 9).
type Charge struct {
	At       time.Duration // simulated time at which the charge began
	Duration time.Duration
	Label    string
}

// New returns a clock starting at simulated time zero.
func New() *Clock {
	return &Clock{}
}

// NewWithNoise returns a clock whose Advance calls are perturbed by a small
// deterministic pseudo-random jitter (fraction of each charge, e.g. 0.01 for
// ±1%). The paper reports standard deviations on its measurements; noise lets
// Table 3 style experiments show realistic spread while staying reproducible.
func NewWithNoise(seed uint64, fraction float64) *Clock {
	return &Clock{noise: newNoiseSource(seed, fraction)}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, recording a labeled charge.
// It returns the charged duration (after noise, if enabled).
func (c *Clock) Advance(d time.Duration, label string) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v (%s)", d, label))
	}
	c.mu.Lock()
	if c.noise != nil {
		d = c.noise.perturb(d)
	}
	ch := Charge{At: c.now, Duration: d, Label: label}
	c.charges = append(c.charges, ch)
	c.now += d
	hook := c.onCharge
	c.mu.Unlock()
	if hook != nil {
		hook(ch)
	}
	return d
}

// SetOnCharge installs fn as the clock's charge hook: every Advance invokes
// it with the recorded charge, outside the clock's lock (the hook may call
// Now or Charges). The session layer uses this to attribute charges to the
// currently-open timeline phase. Passing nil removes the hook.
func (c *Clock) SetOnCharge(fn func(Charge)) {
	c.mu.Lock()
	c.onCharge = fn
	c.mu.Unlock()
}

// Charges returns a copy of all recorded charges in order.
func (c *Clock) Charges() []Charge {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Charge, len(c.charges))
	copy(out, c.charges)
	return out
}

// ChargesSince returns a copy of the charges that began at or after t.
func (c *Clock) ChargesSince(t time.Duration) []Charge {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Charge
	for _, ch := range c.charges {
		if ch.At >= t {
			out = append(out, ch)
		}
	}
	return out
}

// Reset rewinds the clock to zero and discards all charges.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
	c.charges = nil
}

// TotalByLabel aggregates charge durations by label.
func (c *Clock) TotalByLabel() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration)
	for _, ch := range c.charges {
		out[ch.Label] += ch.Duration
	}
	return out
}

// Breakdown renders a sorted per-label cost table, for session traces.
func (c *Clock) Breakdown() string {
	totals := c.TotalByLabel()
	labels := make([]string, 0, len(totals))
	for l := range totals {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	s := ""
	for _, l := range labels {
		s += fmt.Sprintf("%-28s %10.3f ms\n", l, Millis(totals[l]))
	}
	return s
}

// Millis converts a duration to floating-point milliseconds, the unit the
// paper reports in.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// FromMillis builds a duration from floating-point milliseconds.
func FromMillis(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// noiseSource is a small deterministic PRNG (xorshift64*) used only for
// latency jitter. It is not cryptographic.
type noiseSource struct {
	state    uint64
	fraction float64
}

func newNoiseSource(seed uint64, fraction float64) *noiseSource {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	if fraction < 0 {
		fraction = 0
	}
	return &noiseSource{state: seed, fraction: fraction}
}

func (n *noiseSource) next() uint64 {
	x := n.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	n.state = x
	return x * 0x2545F4914F6CDD1D
}

// perturb returns d scaled by a factor uniform in [1-fraction, 1+fraction].
func (n *noiseSource) perturb(d time.Duration) time.Duration {
	if n.fraction == 0 || d == 0 {
		return d
	}
	// Map next() to [-1, 1).
	u := float64(int64(n.next()>>11))/float64(1<<52) - 1
	scaled := float64(d) * (1 + u*n.fraction)
	if scaled < 0 {
		scaled = 0
	}
	return time.Duration(scaled)
}
