package memory

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flicker/internal/metrics"
)

func TestNewRoundsUpToPage(t *testing.T) {
	m := New(1)
	if m.Size() != PageSize {
		t.Fatalf("Size = %d, want %d", m.Size(), PageSize)
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(64 * 1024)
	data := []byte("flicker session state")
	if err := m.Write(1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(1000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	m := New(PageSize)
	if _, err := m.Read(uint32(PageSize), 1); err == nil {
		t.Error("read past end accepted")
	}
	if err := m.Write(uint32(PageSize-1), []byte{1, 2}); err == nil {
		t.Error("write past end accepted")
	}
	var ae *AccessError
	_, err := m.Read(1<<30, 4)
	if !errors.As(err, &ae) {
		t.Errorf("expected AccessError, got %v", err)
	}
}

func TestZeroErasesSecrets(t *testing.T) {
	m := New(2 * PageSize)
	secret := []byte("private signing key material")
	m.Write(100, secret)
	if err := m.Zero(100, len(secret)); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(100, len(secret))
	if !bytes.Equal(got, make([]byte, len(secret))) {
		t.Fatal("Zero left residue")
	}
}

func TestDEVBlocksDMAButNotCPU(t *testing.T) {
	m := New(32 * PageSize) // 128 KB: room for a full 64 KB SLB region
	nic := m.AttachDevice("malicious-nic")
	// Stage a secret in what will become the SLB region.
	slbBase := uint32(4 * PageSize)
	m.Write(slbBase, []byte("PAL secret"))

	// Before protection, the device can read it (the attack works).
	if _, err := nic.Read(slbBase, 10); err != nil {
		t.Fatalf("pre-protection DMA read should succeed: %v", err)
	}

	if err := m.DEVProtect(slbBase, 64*1024); err != nil {
		t.Fatal(err)
	}
	if !m.DEVProtected(slbBase, 64*1024) {
		t.Fatal("DEVProtected = false after protect")
	}

	// DMA read and write are now blocked...
	if _, err := nic.Read(slbBase, 10); err == nil {
		t.Error("DEV failed to block DMA read")
	}
	if err := nic.Write(slbBase+100, []byte{0xEE}); err == nil {
		t.Error("DEV failed to block DMA write")
	}
	// ...but CPU accesses still work (the PAL runs on the CPU).
	if _, err := m.Read(slbBase, 10); err != nil {
		t.Errorf("CPU read blocked by DEV: %v", err)
	}
}

func TestDEVPartialOverlapBlocks(t *testing.T) {
	m := New(16 * PageSize)
	dev := m.AttachDevice("disk")
	m.DEVProtect(uint32(2*PageSize), PageSize)
	// A transfer straddling the protected page must be rejected entirely.
	if _, err := dev.Read(uint32(2*PageSize-8), 16); err == nil {
		t.Error("straddling DMA read accepted")
	}
	// A transfer entirely outside is fine.
	if _, err := dev.Read(uint32(4*PageSize), 16); err != nil {
		t.Errorf("unrelated DMA read blocked: %v", err)
	}
}

func TestDEVClearRestoresDMA(t *testing.T) {
	m := New(8 * PageSize)
	dev := m.AttachDevice("nic")
	m.DEVProtect(0, 2*PageSize)
	if err := m.DEVClear(0, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if m.DEVProtected(0, PageSize) {
		t.Error("still protected after clear")
	}
	if _, err := dev.Read(0, 64); err != nil {
		t.Errorf("DMA still blocked after clear: %v", err)
	}
}

func TestDEVProtectedEdgeCases(t *testing.T) {
	m := New(4 * PageSize)
	if m.DEVProtected(0, 0) {
		t.Error("zero-length range reported protected")
	}
	if m.DEVProtected(uint32(m.Size()), 1) {
		t.Error("out-of-range reported protected")
	}
	m.DEVProtect(0, PageSize)
	if m.DEVProtected(0, 2*PageSize) {
		t.Error("partially protected range reported fully protected")
	}
}

func TestDEVBlockedDMAWriteCountsMetricOnce(t *testing.T) {
	m := New(8 * PageSize)
	reg := metrics.NewRegistry()
	log := metrics.NewEventLog(0)
	m.Instrument(reg, log)
	nic := m.AttachDevice("nic")
	if err := m.DEVProtect(0, PageSize); err != nil {
		t.Fatal(err)
	}

	if err := nic.Write(64, []byte{1, 2, 3}); err == nil {
		t.Fatal("DEV failed to block the DMA write")
	}
	violations := reg.Counter("flicker_dev_violations_total", "", "device", "op")
	if got := violations.With("nic", "write").Value(); got != 1 {
		t.Errorf("dev-violation counter = %v, want exactly 1", got)
	}
	tx := reg.Counter("flicker_dma_transactions_total", "", "device", "op", "result")
	if got := tx.With("nic", "write", "dev-blocked").Value(); got != 1 {
		t.Errorf("dev-blocked transaction counter = %v, want exactly 1", got)
	}
	if got := tx.With("nic", "write", "ok").Value(); got != 0 {
		t.Errorf("ok transaction counter = %v, want 0", got)
	}
	events := log.EventsByKind(metrics.EventDEVViolation)
	if len(events) != 1 {
		t.Fatalf("DEV-violation events = %d, want 1: %+v", len(events), events)
	}

	// A permitted DMA transaction counts bytes but no violation.
	if err := nic.Write(uint32(4*PageSize), []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	bytesMoved := reg.Counter("flicker_dma_bytes_total", "", "device", "op")
	if got := bytesMoved.With("nic", "write").Value(); got != 2 {
		t.Errorf("dma bytes = %v, want 2", got)
	}
	if got := violations.With("nic", "write").Value(); got != 1 {
		t.Errorf("violation counter moved on permitted DMA: %v", got)
	}
}

// Property: for any in-range write, a read of the same range returns the
// written bytes, and DMA behaves identically to CPU access when no DEV
// protection overlaps.
func TestReadWriteProperty(t *testing.T) {
	m := New(64 * PageSize)
	dev := m.AttachDevice("prop")
	f := func(addrRaw uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := uint32(addrRaw)
		if int(addr)+len(data) > m.Size() {
			return true
		}
		if err := m.Write(addr, data); err != nil {
			return false
		}
		cpu, err := m.Read(addr, len(data))
		if err != nil || !bytes.Equal(cpu, data) {
			return false
		}
		dma, err := dev.Read(addr, len(data))
		return err == nil && bytes.Equal(dma, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: protect+clear over arbitrary ranges always leaves the DEV
// consistent: after clearing everything we protected, no page blocks DMA.
func TestDEVProtectClearProperty(t *testing.T) {
	f := func(ranges [][2]uint16) bool {
		m := New(32 * PageSize)
		dev := m.AttachDevice("p")
		for _, r := range ranges {
			addr := uint32(r[0]) % uint32(m.Size())
			n := int(r[1])%PageSize + 1
			if int(addr)+n > m.Size() {
				continue
			}
			m.DEVProtect(addr, n)
		}
		m.DEVClear(0, m.Size())
		_, err := dev.Read(0, m.Size())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Write-generation tracking -------------------------------------------

// Generation must change after any mutation (CPU write, zero, DMA write)
// that lands inside the observed range, and must be stable across reads and
// mutations elsewhere. This is the invariant SKINIT's measurement cache
// depends on for tamper soundness.
func TestGenerationBumpsOnEveryMutationKind(t *testing.T) {
	m := New(8 * PageSize)
	region := uint32(PageSize)
	n := 2 * PageSize

	g0 := m.Generation(region, n)
	if _, err := m.Read(region, n); err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(region, n); g != g0 {
		t.Fatalf("generation moved on read: %d -> %d", g0, g)
	}

	if err := m.Write(region+10, []byte{1}); err != nil {
		t.Fatal(err)
	}
	g1 := m.Generation(region, n)
	if g1 == g0 {
		t.Fatal("generation unchanged after CPU write into region")
	}

	if err := m.Zero(region, PageSize); err != nil {
		t.Fatal(err)
	}
	g2 := m.Generation(region, n)
	if g2 == g1 {
		t.Fatal("generation unchanged after Zero into region")
	}

	dev := m.AttachDevice("nic")
	if err := dev.Write(region+PageSize+5, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	g3 := m.Generation(region, n)
	if g3 == g2 {
		t.Fatal("generation unchanged after DMA write into region")
	}

	// Mutation outside the observed range must not disturb it.
	if err := m.Write(4*PageSize, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(region, n); g != g3 {
		t.Fatalf("generation moved on out-of-range write: %d -> %d", g3, g)
	}
}

// WriteIfChanged of identical bytes must be generation-neutral; a single
// differing byte must bump only that page.
func TestWriteIfChangedGenerationNeutralWhenIdentical(t *testing.T) {
	m := New(8 * PageSize)
	img := make([]byte, 3*PageSize)
	for i := range img {
		img[i] = byte(i)
	}
	if err := m.Write(0, img); err != nil {
		t.Fatal(err)
	}
	g0 := m.Generation(0, len(img))

	changed, err := m.WriteIfChanged(0, img)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("WriteIfChanged reported a change for identical bytes")
	}
	if g := m.Generation(0, len(img)); g != g0 {
		t.Fatalf("generation moved on no-op WriteIfChanged: %d -> %d", g0, g)
	}

	img[2*PageSize+7] ^= 0xFF
	changed, err = m.WriteIfChanged(0, img)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("WriteIfChanged missed a real change")
	}
	if g := m.Generation(0, 2*PageSize); g != g0 {
		t.Fatalf("untouched pages bumped: %d -> %d", g0, m.Generation(0, 2*PageSize))
	}
	if g := m.Generation(2*PageSize, PageSize); g == g0 {
		t.Fatal("changed page not bumped")
	}
	got, err := m.Read(0, len(img))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("WriteIfChanged left wrong contents")
	}
}

// ZeroIfDirty over an already-clean range is generation-neutral; over a
// dirty range it erases and bumps.
func TestZeroIfDirtyGenerationNeutralWhenClean(t *testing.T) {
	m := New(4 * PageSize)
	g0 := m.Generation(0, 2*PageSize)
	changed, err := m.ZeroIfDirty(0, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("ZeroIfDirty reported a change on clean memory")
	}
	if g := m.Generation(0, 2*PageSize); g != g0 {
		t.Fatal("generation moved on no-op ZeroIfDirty")
	}

	if err := m.Write(PageSize+3, []byte{0x55}); err != nil {
		t.Fatal(err)
	}
	g1 := m.Generation(0, 2*PageSize)
	changed, err = m.ZeroIfDirty(0, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("ZeroIfDirty missed dirty bytes")
	}
	if g := m.Generation(0, 2*PageSize); g == g1 {
		t.Fatal("changed page not bumped")
	}
	got, err := m.Read(0, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d not erased: %#x", i, b)
		}
	}
}

// Generation is collision-free across an intervening mutation: observe,
// mutate, restore the original bytes — the generation must still differ,
// because writeSeq is monotonic. (A checksum-based scheme would collide.)
func TestGenerationMonotonicNoABA(t *testing.T) {
	m := New(4 * PageSize)
	orig := []byte("slb image bytes")
	if err := m.Write(0, orig); err != nil {
		t.Fatal(err)
	}
	g0 := m.Generation(0, len(orig))
	if err := m.Write(0, []byte("tampered bytes!")); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, orig); err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(0, len(orig)); g == g0 {
		t.Fatal("generation repeated after tamper-and-restore (ABA)")
	}
}
