// Package memory simulates the platform's physical memory system: a flat
// physical address space, the Device Exclusion Vector (DEV) that SKINIT
// programs to block DMA into the Secure Loader Block, and DMA-capable
// devices that issue bus transactions.
//
// The adversary model of the paper (Section 3.1) explicitly includes
// malicious DMA-capable expansion cards; this package lets tests mount that
// attack and observe that the DEV defeats it.
package memory

import (
	"bytes"
	"fmt"
	"sync"

	"flicker/internal/metrics"
)

// PageSize is the size of a physical page; the DEV protects memory at page
// granularity, as on real SVM hardware.
const PageSize = 4096

// PhysMem is the machine's physical memory: a flat byte-addressable array
// plus the DEV. All accesses go through accessor methods so protection can
// be enforced uniformly for CPU-originated and device-originated traffic.
type PhysMem struct {
	mu   sync.RWMutex
	data []byte
	dev  []bool // one bit per page; true = DMA excluded

	// Write-generation tracking: writeSeq is a monotonic mutation counter
	// and pageGen[p] records the writeSeq of the last mutation touching
	// page p. Generation(addr, n) folds these into a cheap fingerprint of
	// "has anything in this range been written since?", which is what lets
	// SKINIT memoize the measurement of an unchanged staged SLB while any
	// CPU write, DMA write, or zeroing into the range forces a re-hash.
	writeSeq uint64
	pageGen  []uint64

	// DMA instrumentation (see Instrument); always non-nil, detached until
	// Instrument is called. imu guards the pointers so Instrument does not
	// race with in-flight transactions.
	imu          sync.Mutex
	metDMA       *metrics.CounterVec // device, op, result
	metDMABytes  *metrics.CounterVec // device, op
	metDEVBlocks *metrics.CounterVec // device, op
	// dmaOK caches the ok-path series handles per (device, op): DMA streams
	// thousands of transactions per session, and the device/op vocabulary is
	// a handful of names, so the hot path must not re-join label keys.
	dmaOK  map[[2]string]dmaOKHandles
	events *metrics.EventLog
}

// dmaOKHandles are one (device, op) pair's resolved completed-DMA series.
type dmaOKHandles struct {
	txn   *metrics.Counter
	bytes *metrics.Counter
}

// New creates a physical memory of the given size (rounded up to a page).
func New(size int) *PhysMem {
	if size <= 0 {
		panic("memory: non-positive size")
	}
	pages := (size + PageSize - 1) / PageSize
	m := &PhysMem{
		data:    make([]byte, pages*PageSize),
		dev:     make([]bool, pages),
		pageGen: make([]uint64, pages),
	}
	m.Instrument(nil, nil)
	return m
}

// Instrument points the memory system's DMA metrics at a registry and its
// DEV violations at an event log. The metric families are:
//
//	flicker_dma_transactions_total{device,op,result} — ok|dev-blocked|bad-range
//	flicker_dma_bytes_total{device,op}               — bytes moved by completed DMA
//	flicker_dev_violations_total{device,op}          — transactions the DEV rejected
func (m *PhysMem) Instrument(reg *metrics.Registry, events *metrics.EventLog) {
	m.imu.Lock()
	defer m.imu.Unlock()
	m.metDMA = reg.Counter("flicker_dma_transactions_total",
		"Device DMA transactions, by device, direction, and outcome.", "device", "op", "result")
	m.metDMABytes = reg.Counter("flicker_dma_bytes_total",
		"Bytes moved by completed device DMA transactions.", "device", "op")
	m.metDEVBlocks = reg.Counter("flicker_dev_violations_total",
		"Device DMA transactions rejected by the Device Exclusion Vector.", "device", "op")
	m.dmaOK = make(map[[2]string]dmaOKHandles)
	m.events = events
}

// recordDMA folds one device transaction into the instruments; result is
// "ok", "dev-blocked", or "bad-range". Completed transactions (the hot
// path) go through handles cached per (device, op); rejections are
// once-per-incident fault paths.
func (m *PhysMem) recordDMA(device, op, result string, n int) {
	m.imu.Lock()
	if result == "ok" {
		key := [2]string{device, op}
		h, ok := m.dmaOK[key]
		if !ok {
			h = dmaOKHandles{
				txn:   m.metDMA.With(device, op, "ok").Cell(),
				bytes: m.metDMABytes.With(device, op).Cell(),
			}
			m.dmaOK[key] = h
		}
		m.imu.Unlock()
		h.txn.Inc()
		h.bytes.Add(float64(n))
		return
	}
	dma, blocks, events := m.metDMA, m.metDEVBlocks, m.events
	m.imu.Unlock()
	//flickervet:allow metrichandle(DEV rejections and bad ranges are once-per-incident fault paths)
	dma.With(device, op, result).Inc()
	if result == "dev-blocked" {
		//flickervet:allow metrichandle(same fault path as above)
		blocks.With(device, op).Inc()
		events.Record(metrics.EventDEVViolation,
			fmt.Sprintf("memory: DEV blocked DMA %s by %q (%d bytes)", op, device, n))
	}
}

// Size returns the size of physical memory in bytes.
func (m *PhysMem) Size() int {
	return len(m.data)
}

// AccessError describes a rejected memory transaction.
type AccessError struct {
	Addr   uint32
	Len    int
	Reason string
}

// Error describes the rejected transaction.
func (e *AccessError) Error() string {
	return fmt.Sprintf("memory: access [%#x,+%d) rejected: %s", e.Addr, e.Len, e.Reason)
}

func (m *PhysMem) checkRange(addr uint32, n int) error {
	if n < 0 || int(addr) > len(m.data) || int(addr)+n > len(m.data) {
		return &AccessError{Addr: addr, Len: n, Reason: "out of physical memory"}
	}
	return nil
}

// Read copies n bytes starting at addr. CPU-originated reads are never
// blocked by the DEV (the DEV filters only device traffic).
func (m *PhysMem) Read(addr uint32, n int) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:int(addr)+n])
	return out, nil
}

// bumpLocked marks the pages covering [addr, addr+n) as mutated. Callers
// hold m.mu and have validated the range.
func (m *PhysMem) bumpLocked(addr uint32, n int) {
	if n <= 0 {
		return
	}
	m.writeSeq++
	for p := int(addr) / PageSize; p <= (int(addr)+n-1)/PageSize; p++ {
		m.pageGen[p] = m.writeSeq
	}
}

// Generation returns a fingerprint of the write history of [addr, addr+n):
// the highest mutation sequence number recorded for any page the range
// touches. Two calls return the same value iff no Write, Zero, or DMA write
// has landed on any covered page in between (writeSeq is monotonic, so the
// maximum can never repeat across an intervening mutation). An invalid or
// empty range returns 0.
func (m *PhysMem) Generation(addr uint32, n int) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if n <= 0 || m.checkRange(addr, n) != nil {
		return 0
	}
	var g uint64
	for p := int(addr) / PageSize; p <= (int(addr)+n-1)/PageSize; p++ {
		if m.pageGen[p] > g {
			g = m.pageGen[p]
		}
	}
	return g
}

// Write stores b at addr (CPU-originated).
func (m *PhysMem) Write(addr uint32, b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, len(b)); err != nil {
		return err
	}
	copy(m.data[addr:], b)
	m.bumpLocked(addr, len(b))
	return nil
}

// WriteIfChanged stores b at addr like Write, but compares page by page
// first and only copies (and bumps the write generation of) pages whose
// content actually differs. Placing an identical staged image is therefore
// generation-neutral, which is what keeps SKINIT's measurement cache warm
// across back-to-back sessions of the same PAL.
func (m *PhysMem) WriteIfChanged(addr uint32, b []byte) (changed bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, len(b)); err != nil {
		return false, err
	}
	for off := 0; off < len(b); {
		end := (int(addr)+off)/PageSize*PageSize + PageSize - int(addr)
		if end > len(b) {
			end = len(b)
		}
		if !bytes.Equal(m.data[int(addr)+off:int(addr)+end], b[off:end]) {
			copy(m.data[int(addr)+off:], b[off:end])
			m.bumpLocked(addr+uint32(off), end-off)
			changed = true
		}
		off = end
	}
	return changed, nil
}

// Zero clears n bytes starting at addr; used by the SLB Core's cleanup phase
// to erase PAL secrets before the OS resumes.
func (m *PhysMem) Zero(addr uint32, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, n); err != nil {
		return err
	}
	clear(m.data[addr : int(addr)+n])
	m.bumpLocked(addr, n)
	return nil
}

// ZeroIfDirty clears n bytes starting at addr like Zero, but only touches
// (and bumps the write generation of) pages holding a nonzero byte. Erasing
// an already-clean range is generation-neutral.
func (m *PhysMem) ZeroIfDirty(addr uint32, n int) (changed bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, n); err != nil {
		return false, err
	}
	for off := 0; off < n; {
		end := (int(addr)+off)/PageSize*PageSize + PageSize - int(addr)
		if end > n {
			end = n
		}
		chunk := m.data[int(addr)+off : int(addr)+end]
		if !allZero(chunk) {
			clear(chunk)
			m.bumpLocked(addr+uint32(off), end-off)
			changed = true
		}
		off = end
	}
	return changed, nil
}

// zeroPage is the comparison reference for allZero's memcmp fast path.
var zeroPage [PageSize]byte

// allZero reports whether every byte of b (at most one page) is zero.
func allZero(b []byte) bool {
	return bytes.Equal(b, zeroPage[:len(b)])
}

// DEVProtect marks the pages covering [addr, addr+n) as DMA-excluded.
// SKINIT calls this for the 64 KB starting at the SLB base; preparatory code
// in the first 64 KB may call it again to extend protection upward.
func (m *PhysMem) DEVProtect(addr uint32, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, n); err != nil {
		return err
	}
	for p := int(addr) / PageSize; p <= (int(addr)+n-1)/PageSize; p++ {
		m.dev[p] = true
	}
	return nil
}

// DEVClear removes DMA exclusion from the pages covering [addr, addr+n);
// the SLB Core clears its protections just before resuming the OS.
func (m *PhysMem) DEVClear(addr uint32, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, n); err != nil {
		return err
	}
	for p := int(addr) / PageSize; p <= (int(addr)+n-1)/PageSize; p++ {
		m.dev[p] = false
	}
	return nil
}

// DEVProtected reports whether every page of [addr, addr+n) is DMA-excluded.
func (m *PhysMem) DEVProtected(addr uint32, n int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.checkRange(addr, n) != nil || n == 0 {
		return false
	}
	for p := int(addr) / PageSize; p <= (int(addr)+n-1)/PageSize; p++ {
		if !m.dev[p] {
			return false
		}
	}
	return true
}

// devBlocks reports whether any page of [addr, addr+n) is DMA-excluded.
func (m *PhysMem) devBlocks(addr uint32, n int) bool {
	for p := int(addr) / PageSize; p <= (int(addr)+n-1)/PageSize; p++ {
		if m.dev[p] {
			return true
		}
	}
	return false
}

// DMARead performs a device-originated read. It fails with an AccessError
// if any touched page is DEV-protected.
func (m *PhysMem) DMARead(device string, addr uint32, n int) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkRange(addr, n); err != nil {
		m.recordDMA(device, "read", "bad-range", n)
		return nil, err
	}
	if n > 0 && m.devBlocks(addr, n) {
		m.recordDMA(device, "read", "dev-blocked", n)
		return nil, &AccessError{Addr: addr, Len: n,
			Reason: fmt.Sprintf("DEV blocks DMA read by %q", device)}
	}
	m.recordDMA(device, "read", "ok", n)
	out := make([]byte, n)
	copy(out, m.data[addr:int(addr)+n])
	return out, nil
}

// DMAWrite performs a device-originated write, subject to the DEV.
func (m *PhysMem) DMAWrite(device string, addr uint32, b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRange(addr, len(b)); err != nil {
		m.recordDMA(device, "write", "bad-range", len(b))
		return err
	}
	if len(b) > 0 && m.devBlocks(addr, len(b)) {
		m.recordDMA(device, "write", "dev-blocked", len(b))
		return &AccessError{Addr: addr, Len: len(b),
			Reason: fmt.Sprintf("DEV blocks DMA write by %q", device)}
	}
	m.recordDMA(device, "write", "ok", len(b))
	copy(m.data[addr:], b)
	m.bumpLocked(addr, len(b))
	return nil
}

// Device is a DMA-capable peripheral (e.g. the paper's example of a
// malicious Ethernet card on the PCI bus). It can only touch memory through
// DMARead/DMAWrite and is therefore subject to the DEV.
type Device struct {
	Name string
	mem  *PhysMem
}

// AttachDevice registers a named DMA-capable device on the bus.
func (m *PhysMem) AttachDevice(name string) *Device {
	return &Device{Name: name, mem: m}
}

// Read issues a DMA read transaction from the device.
func (d *Device) Read(addr uint32, n int) ([]byte, error) {
	return d.mem.DMARead(d.Name, addr, n)
}

// Write issues a DMA write transaction from the device.
func (d *Device) Write(addr uint32, b []byte) error {
	return d.mem.DMAWrite(d.Name, addr, b)
}
