package cpu

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// testMachine builds a 2-core machine with 1 MB RAM and a Broadcom-profile
// TPM on a shared deterministic clock.
func testMachine(t *testing.T, cores int) (*Machine, *tpm.TPM, *simtime.Clock) {
	t.Helper()
	clock := simtime.New()
	prof := simtime.ProfileBroadcom()
	tp, err := tpm.New(clock, prof, tpm.Options{Seed: []byte("cpu-test")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(clock, prof, tis.NewBus(tp), Config{Cores: cores, MemSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return m, tp, clock
}

// writeSLB stores a minimal SLB (header + body) at base and returns its
// full contents.
func writeSLB(t *testing.T, m *Machine, base uint32, bodyLen int) []byte {
	t.Helper()
	slb := make([]byte, 4+bodyLen)
	binary.LittleEndian.PutUint16(slb[0:2], uint16(len(slb))) // length
	binary.LittleEndian.PutUint16(slb[2:4], 4)                // entry point
	for i := 4; i < len(slb); i++ {
		slb[i] = byte(i)
	}
	if err := m.Mem.Write(base, slb); err != nil {
		t.Fatal(err)
	}
	return slb
}

// parkAPs deschedules and INITs all APs, the flicker-module's job.
func parkAPs(t *testing.T, m *Machine) {
	t.Helper()
	for _, c := range m.Cores()[1:] {
		if err := m.SetCoreIdle(c.ID, true); err != nil {
			t.Fatal(err)
		}
		if err := m.SendINITIPI(c.ID); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSKINITHappyPath(t *testing.T) {
	m, tp, _ := testMachine(t, 2)
	slb := writeSLB(t, m, 0x10000, 1000)
	parkAPs(t, m)

	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatalf("SKINIT: %v", err)
	}
	// Header parsed.
	if int(ll.SLBLen) != len(slb) || ll.Entry != 4 {
		t.Errorf("header: len=%d entry=%d", ll.SLBLen, ll.Entry)
	}
	// PCR 17 = H(0 || H(SLB)).
	want := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum(slb))
	if tp.PCRValue(17) != want {
		t.Error("PCR 17 wrong after SKINIT")
	}
	if ll.PCR17 != want {
		t.Error("LateLaunch.PCR17 wrong")
	}
	// Hardware protections.
	if !m.Mem.DEVProtected(0x10000, SLBMaxLen) {
		t.Error("DEV not programmed over 64 KB window")
	}
	if m.BSP().InterruptsEnabled() {
		t.Error("interrupts still enabled")
	}
	if !m.DebugDisabled() {
		t.Error("debug access not disabled")
	}
	if !m.SecureSessionActive() {
		t.Error("secure session not active")
	}
	// Flat protected mode at slb_base, paging off.
	if m.BSP().PagingEnabled() {
		t.Error("paging still enabled")
	}
	if base, _ := m.BSP().Segments(); base != 0x10000 {
		t.Errorf("segment base = %#x, want SLB base", base)
	}

	// End restores everything.
	if err := ll.End(); err != nil {
		t.Fatal(err)
	}
	if m.Mem.DEVProtected(0x10000, SLBMaxLen) {
		t.Error("DEV still set after End")
	}
	if !m.BSP().InterruptsEnabled() {
		t.Error("interrupts not restored")
	}
	if m.DebugDisabled() || m.SecureSessionActive() {
		t.Error("secure state not cleared")
	}
	if err := ll.End(); err == nil {
		t.Error("double End accepted")
	}
}

func TestSKINITRequiresRing0(t *testing.T) {
	m, _, _ := testMachine(t, 1)
	writeSLB(t, m, 0x10000, 100)
	m.BSP().SetRing(3)
	if _, err := m.SKINIT(0, 0x10000); err == nil || !strings.Contains(err.Error(), "privileged") {
		t.Fatalf("ring-3 SKINIT: %v", err)
	}
}

func TestSKINITRequiresBSP(t *testing.T) {
	m, _, _ := testMachine(t, 2)
	writeSLB(t, m, 0x10000, 100)
	parkAPs(t, m)
	if _, err := m.SKINIT(1, 0x10000); err == nil || !strings.Contains(err.Error(), "BSP") {
		t.Fatalf("AP SKINIT: %v", err)
	}
}

func TestSKINITRequiresAPsInINIT(t *testing.T) {
	m, _, _ := testMachine(t, 4)
	writeSLB(t, m, 0x10000, 100)
	// APs still running: must fail.
	if _, err := m.SKINIT(0, 0x10000); err == nil {
		t.Fatal("SKINIT with running APs accepted")
	}
	// Idle but not INIT'd: still fails.
	for _, c := range m.Cores()[1:] {
		m.SetCoreIdle(c.ID, true)
	}
	if _, err := m.SKINIT(0, 0x10000); err == nil {
		t.Fatal("SKINIT with idle-but-not-INIT APs accepted")
	}
	// INIT everyone: succeeds.
	for _, c := range m.Cores()[1:] {
		if err := m.SendINITIPI(c.ID); err != nil {
			t.Fatal(err)
		}
	}
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	ll.End()
}

func TestINITIPIRejectsRunningCore(t *testing.T) {
	m, _, _ := testMachine(t, 2)
	if err := m.SendINITIPI(1); err == nil {
		t.Fatal("INIT IPI to running core accepted")
	}
	m.SetCoreIdle(1, true)
	if err := m.SendINITIPI(1); err != nil {
		t.Fatal(err)
	}
	// Idempotent on an already-halted core.
	if err := m.SendINITIPI(1); err != nil {
		t.Fatal(err)
	}
	if err := m.StartupAP(1); err != nil {
		t.Fatal(err)
	}
	if m.Cores()[1].State() != CoreRunning {
		t.Fatal("SIPI did not restart core")
	}
	if err := m.SendINITIPI(0); err == nil {
		t.Fatal("INIT IPI to BSP accepted")
	}
}

func TestSKINITHeaderValidation(t *testing.T) {
	m, _, _ := testMachine(t, 1)
	// Zero length.
	m.Mem.Write(0x10000, []byte{0, 0, 0, 0})
	if _, err := m.SKINIT(0, 0x10000); err == nil {
		t.Error("zero-length SLB accepted")
	}
	// Entry beyond length.
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint16(hdr[0:2], 8)
	binary.LittleEndian.PutUint16(hdr[2:4], 100)
	m.Mem.Write(0x10000, hdr)
	if _, err := m.SKINIT(0, 0x10000); err == nil {
		t.Error("entry>length SLB accepted")
	}
	// Header outside physical memory.
	if _, err := m.SKINIT(0, uint32(m.Mem.Size())); err == nil {
		t.Error("out-of-range SLB base accepted")
	}
}

func TestSKINITBlocksNestedLaunch(t *testing.T) {
	m, _, _ := testMachine(t, 1)
	writeSLB(t, m, 0x10000, 100)
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	writeSLB(t, m, 0x30000, 100)
	if _, err := m.SKINIT(0, 0x30000); err == nil {
		t.Fatal("nested SKINIT accepted")
	}
	ll.End()
}

func TestDMABlockedDuringSession(t *testing.T) {
	m, _, _ := testMachine(t, 1)
	writeSLB(t, m, 0x10000, 100)
	nic := m.Mem.AttachDevice("evil-nic")
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	// The whole 64 KB window is excluded, even though the SLB is tiny.
	if _, err := nic.Read(0x10000+60000, 16); err == nil {
		t.Error("DMA read inside 64 KB window succeeded")
	}
	if err := nic.Write(0x10000+8, []byte{0xBA, 0xD0}); err == nil {
		t.Error("DMA write into SLB succeeded")
	}
	ll.End()
	if _, err := nic.Read(0x10000, 16); err != nil {
		t.Errorf("DMA still blocked after session end: %v", err)
	}
}

func TestExtendProtection(t *testing.T) {
	m, _, _ := testMachine(t, 1)
	writeSLB(t, m, 0x10000, 100)
	dev := m.Mem.AttachDevice("dev")
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	upper := uint32(0x10000 + SLBMaxLen)
	if _, err := dev.Read(upper, 8); err != nil {
		t.Fatalf("upper region should be DMA-accessible before extension: %v", err)
	}
	if err := ll.ExtendProtection(upper, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Read(upper, 8); err == nil {
		t.Error("extended protection not effective")
	}
	ll.End()
	// End only clears the primary window; extended regions are the PAL's
	// responsibility (mirrors the paper's preparatory-code contract).
	if err := ll.ExtendProtection(upper, 4096); err == nil {
		t.Error("ExtendProtection accepted after End")
	}
	m.Mem.DEVClear(upper, 4096)
}

func TestInterruptsQueueDuringSession(t *testing.T) {
	m, _, _ := testMachine(t, 1)
	writeSLB(t, m, 0x10000, 100)
	ll, _ := m.SKINIT(0, 0x10000)
	m.PendInterrupt(1)  // keyboard
	m.PendInterrupt(14) // disk
	if got := m.DrainInterrupts(); got != nil {
		t.Fatalf("interrupts delivered while disabled: %v", got)
	}
	if m.PendingInterruptCount() != 2 {
		t.Fatal("pending interrupts lost")
	}
	ll.End()
	got := m.DrainInterrupts()
	if len(got) != 2 || got[0] != 1 || got[1] != 14 {
		t.Fatalf("drained %v after resume", got)
	}
}

func TestSKINITTimingMatchesTable2Model(t *testing.T) {
	prof := simtime.ProfileBroadcom()
	// The SLB length field is 16 bits, so the largest representable SLB is
	// 65535 bytes; "64 KB" in Table 2 maps to the full window minus header.
	for _, total := range []int{4 * 1024, 16 * 1024, 32 * 1024, 64*1024 - 4} {
		m, _, clock := testMachine(t, 1)
		slb := writeSLB(t, m, 0x10000, total-4)
		before := clock.Now()
		ll, err := m.SKINIT(0, 0x10000)
		if err != nil {
			t.Fatal(err)
		}
		got := clock.Now() - before
		want := prof.SkinitCost(len(slb))
		if got != want {
			t.Errorf("%d-byte SLB: charged %v, want %v", total, got, want)
		}
		ll.End()
	}
}

func TestSKINITMeasuresOnlyDeclaredLength(t *testing.T) {
	// The Section 7.2 optimization depends on SKINIT transferring only
	// SLB.length bytes while the DEV covers the full 64 KB.
	m, tp, _ := testMachine(t, 1)
	short := writeSLB(t, m, 0x10000, 732) // 736-byte SLB
	// Garbage beyond the declared length must not affect the measurement.
	m.Mem.Write(0x10000+736, bytes.Repeat([]byte{0x55}, 1024))
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	want := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum(short))
	if tp.PCRValue(17) != want {
		t.Error("measurement included bytes beyond SLB length")
	}
	ll.End()
}

func TestNewMachineValidation(t *testing.T) {
	clock := simtime.New()
	prof := simtime.ProfileBroadcom()
	tp, _ := tpm.New(clock, prof, tpm.Options{Seed: []byte("x")})
	if _, err := NewMachine(clock, prof, tis.NewBus(tp), Config{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	m, err := NewMachine(clock, prof, tis.NewBus(tp), Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem.Size() != 16<<20 {
		t.Fatalf("default memory = %d", m.Mem.Size())
	}
}

func TestSKINITAbortRestoresState(t *testing.T) {
	// A mid-flight SKINIT failure (SLB declared length runs past physical
	// memory) must unwind the partial hardware state: DEV cleared,
	// interrupts restored, no secure session left dangling.
	m, _, _ := testMachine(t, 1)
	base := uint32(m.Mem.Size() - 4096) // header fits, body does not
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint16(hdr[0:2], 16*1024) // length reaches past memory
	binary.LittleEndian.PutUint16(hdr[2:4], 4)
	if err := m.Mem.Write(base, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SKINIT(0, base); err == nil {
		t.Fatal("SKINIT with out-of-memory SLB accepted")
	}
	if m.SecureSessionActive() || m.DebugDisabled() {
		t.Error("aborted launch left secure state set")
	}
	if !m.BSP().InterruptsEnabled() {
		t.Error("aborted launch left interrupts masked")
	}
	// A clean launch works afterwards.
	writeSLB(t, m, 0x10000, 100)
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	ll.End()
}
