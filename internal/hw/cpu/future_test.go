package cpu

import (
	"bytes"
	"errors"
	"testing"

	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// futureMachine builds a machine on the ProfileFuture capability set.
func futureMachine(t *testing.T, cores int) (*Machine, *tpm.TPM, *simtime.Clock) {
	t.Helper()
	clock := simtime.New()
	prof := simtime.ProfileFuture()
	tp, err := tpm.New(clock, prof, tpm.Options{Seed: []byte("future-cpu")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(clock, prof, tis.NewBus(tp), Config{Cores: cores, MemSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return m, tp, clock
}

func TestPartitionedLaunchHappyPath(t *testing.T) {
	m, tp, _ := futureMachine(t, 2)
	slb := writeSLB(t, m, 0x10000, 500)
	// NO AP parking — the whole point.
	ll, err := m.SKINITPartitioned(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if !ll.Partitioned {
		t.Error("launch not marked partitioned")
	}
	// Security contract unchanged: DEV + measurement.
	if !m.Mem.DEVProtected(0x10000, SLBMaxLen) {
		t.Error("DEV not programmed")
	}
	want := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum(slb))
	if tp.PCRValue(17) != want {
		t.Error("PCR 17 wrong after partitioned launch")
	}
	// The other core is untouched and still takes interrupts.
	if m.Cores()[1].State() != CoreRunning {
		t.Error("AP disturbed by partitioned launch")
	}
	m.PendInterrupt(7)
	if got := m.DrainInterrupts(); len(got) != 1 || got[0] != 7 {
		t.Errorf("interrupt not deliverable: %v", got)
	}
	// But the launching core is masked.
	if m.BSP().InterruptsEnabled() {
		t.Error("secure core interrupts still enabled")
	}
	if err := ll.End(); err != nil {
		t.Fatal(err)
	}
	if m.Mem.DEVProtected(0x10000, SLBMaxLen) || !m.BSP().InterruptsEnabled() {
		t.Error("teardown incomplete")
	}
}

func TestPartitionedLaunchGatedByProfile(t *testing.T) {
	m, _, _ := testMachine(t, 2) // Broadcom profile
	writeSLB(t, m, 0x10000, 100)
	if _, err := m.SKINITPartitioned(0, 0x10000); !errors.Is(err, ErrNoMulticoreIsolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestPartitionedLaunchValidation(t *testing.T) {
	m, _, _ := futureMachine(t, 2)
	// Ring 3 rejected.
	writeSLB(t, m, 0x10000, 100)
	m.BSP().SetRing(3)
	if _, err := m.SKINITPartitioned(0, 0x10000); err == nil {
		t.Error("ring-3 partitioned launch accepted")
	}
	m.BSP().SetRing(0)
	// Bad header rejected.
	m.Mem.Write(0x30000, []byte{0, 0, 0, 0})
	if _, err := m.SKINITPartitioned(0, 0x30000); err == nil {
		t.Error("zero-length SLB accepted")
	}
	// Invalid core.
	if _, err := m.SKINITPartitioned(9, 0x10000); err == nil {
		t.Error("invalid core accepted")
	}
	// Nested launch rejected.
	ll, err := m.SKINITPartitioned(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SKINITPartitioned(0, 0x10000); err == nil {
		t.Error("nested partitioned launch accepted")
	}
	ll.End()
}

func TestStashLifecycle(t *testing.T) {
	m, _, _ := futureMachine(t, 1)
	id := palcrypto.SHA1Sum([]byte("pal-identity"))
	// Outside a session: inaccessible.
	if err := m.StashWrite(id, []byte("x")); err == nil {
		t.Fatal("stash writable outside a session")
	}
	writeSLB(t, m, 0x10000, 100)
	ll, err := m.SKINITPartitioned(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StashWrite(id, []byte("checkpoint")); err != nil {
		t.Fatal(err)
	}
	got, err := m.StashRead(id)
	if err != nil || !bytes.Equal(got, []byte("checkpoint")) {
		t.Fatalf("stash read: %q %v", got, err)
	}
	// Unknown identity.
	other := palcrypto.SHA1Sum([]byte("someone else"))
	if _, err := m.StashRead(other); err == nil {
		t.Error("read of missing identity succeeded")
	}
	// Capacity: one slot can hold the full store; a second identity is
	// then rejected until space frees.
	if err := m.StashWrite(id, make([]byte, StashCapacity)); err != nil {
		t.Fatal(err)
	}
	if err := m.StashWrite(other, []byte("x")); err == nil {
		t.Error("over-capacity write across identities accepted")
	}
	// Shrinking the first slot frees space.
	if err := m.StashWrite(id, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := m.StashWrite(other, []byte("fits now")); err != nil {
		t.Fatal(err)
	}
	ll.End()
	// After the session the store is sealed again, but contents persist
	// for the next session.
	if _, err := m.StashRead(id); err == nil {
		t.Error("stash readable after session end")
	}
	ll2, _ := m.SKINITPartitioned(0, 0x10000)
	got, err = m.StashRead(id)
	if err != nil || !bytes.Equal(got, []byte("small")) {
		t.Fatalf("stash lost across sessions: %q %v", got, err)
	}
	ll2.End()
}

func TestStashGatedByProfile(t *testing.T) {
	m, _, _ := testMachine(t, 1) // Broadcom
	writeSLB(t, m, 0x10000, 100)
	parkAPs(t, m)
	ll, err := m.SKINIT(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	defer ll.End()
	id := palcrypto.SHA1Sum([]byte("x"))
	if err := m.StashWrite(id, []byte("y")); !errors.Is(err, ErrNoHWContext) {
		t.Errorf("stash write on 2008 hardware: %v", err)
	}
	if _, err := m.StashRead(id); !errors.Is(err, ErrNoHWContext) {
		t.Errorf("stash read on 2008 hardware: %v", err)
	}
}

func TestStashChargesContextCost(t *testing.T) {
	m, _, clock := futureMachine(t, 1)
	writeSLB(t, m, 0x10000, 100)
	ll, err := m.SKINITPartitioned(0, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	defer ll.End()
	id := palcrypto.SHA1Sum([]byte("id"))
	before := clock.Now()
	m.StashWrite(id, []byte("data"))
	m.StashRead(id)
	want := 2 * simtime.ProfileFuture().HWContextCost
	if got := clock.Now() - before; got != want {
		t.Errorf("stash ops charged %v, want %v", got, want)
	}
}
