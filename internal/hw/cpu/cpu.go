// Package cpu simulates the processor side of an AMD SVM platform: a
// multi-core machine with privilege rings, segmentation and paging state,
// an interrupt controller capable of INIT inter-processor interrupts, and
// the SKINIT instruction with all of the preconditions and hardware effects
// the paper relies on (Section 2.4):
//
//   - SKINIT is privileged (ring 0) and valid only on the Boot Strap
//     Processor; all Application Processors must have accepted an INIT IPI.
//   - It programs the Device Exclusion Vector to block DMA to the SLB's
//     64 KB, disables interrupts, and disables debug access.
//   - It streams the SLB to the TPM at locality 4, resetting the dynamic
//     PCRs and extending the SLB measurement into PCR 17.
//   - It enters flat 32-bit protected mode with paging disabled and jumps
//     to the SLB entry point.
package cpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"flicker/internal/hw/memory"
	"flicker/internal/hw/tis"
	"flicker/internal/metrics"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

// Ring is an x86 protection ring (0 most privileged, 3 least).
type Ring int

// CoreState tracks what a core is doing, at the granularity the SKINIT
// preconditions care about.
type CoreState int

// Core states.
const (
	CoreRunning    CoreState = iota // executing scheduled work
	CoreIdle                        // descheduled (CPU hotplug offline)
	CoreInitHalted                  // received INIT IPI; waiting for SIPI
)

// String renders the state for diagnostics.
func (s CoreState) String() string {
	switch s {
	case CoreRunning:
		return "running"
	case CoreIdle:
		return "idle"
	case CoreInitHalted:
		return "init-halted"
	default:
		return fmt.Sprintf("CoreState(%d)", int(s))
	}
}

// Core is one logical processor.
type Core struct {
	ID    int
	IsBSP bool

	mu                sync.Mutex
	state             CoreState
	ring              Ring
	interruptsEnabled bool
	pagingEnabled     bool
	cr3               uint32 // page-table base register
	gdtBase           uint32
	segBase           uint32 // flattened CS/DS/SS base
	segLimit          uint32
}

// State returns the core's scheduling state.
func (c *Core) State() CoreState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Ring returns the core's current privilege ring.
func (c *Core) Ring() Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// SetRing moves the core to a privilege ring (used by the kernel for user
// processes and by the SLB Core's OS-protection module for ring-3 PALs).
func (c *Core) SetRing(r Ring) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = r
}

// InterruptsEnabled reports the core's IF flag.
func (c *Core) InterruptsEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interruptsEnabled
}

// SetInterrupts sets the core's IF flag (STI/CLI).
func (c *Core) SetInterrupts(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interruptsEnabled = on
}

// PagingEnabled reports whether paged memory mode is active.
func (c *Core) PagingEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pagingEnabled
}

// SetPaging toggles paged memory mode, as the SLB Core does when resuming
// the OS ("we re-enable paged memory mode" after reloading segments).
func (c *Core) SetPaging(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pagingEnabled = on
}

// CR3 returns the page-table base register.
func (c *Core) CR3() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cr3
}

// SetCR3 rewrites the page-table base register (restoring the kernel's page
// tables during Resume OS).
func (c *Core) SetCR3(v uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cr3 = v
}

// Segments returns the flattened segment base and limit.
func (c *Core) Segments() (base, limit uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.segBase, c.segLimit
}

// SetSegments loads the flattened CS/DS/SS descriptors. The SLB Core uses
// segments based at slb_base so position-dependent PAL code works; Resume
// OS reloads descriptors covering all of memory.
func (c *Core) SetSegments(base, limit uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.segBase, c.segLimit = base, limit
}

// GDTBase returns the loaded GDT physical base.
func (c *Core) GDTBase() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gdtBase
}

// SetGDTBase loads a new GDT.
func (c *Core) SetGDTBase(v uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gdtBase = v
}

// setState transitions the scheduling state.
func (c *Core) setState(s CoreState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = s
}

// Machine is the whole platform: cores, physical memory, the TPM bus, and
// the security-relevant global state SKINIT manipulates.
type Machine struct {
	Mem    *memory.PhysMem
	TPMBus *tis.Bus

	clock   *simtime.Clock
	profile *simtime.Profile

	mu            sync.Mutex
	cores         []*Core
	debugDisabled bool
	secureActive  bool
	pendingIRQs   []int
	secureStash   *SecureStash

	// measureCache memoizes SLB measurements by (base, length) and the
	// memory's write generation for that range: an unchanged staged image
	// re-measures in O(1) while any CPU write, patch or DMA store into the
	// window invalidates the entry (see measureSLB).
	measureCache map[measureKey]measureEntry

	// Late-launch instrumentation (see Instrument); always non-nil,
	// detached until Instrument is called.
	metSKINIT *metrics.CounterVec // variant, result (ok handles cached below)
	// Hot-path series handles, resolved once in Instrument: every SKINIT
	// touches the measurement cache, and successful launches dominate.
	metSKINITOK    map[string]*metrics.Counter // by variant
	metMeasureHit  *metrics.Counter
	metMeasureMiss *metrics.Counter
	events         *metrics.EventLog
}

// measureKey identifies one staged SLB by location and declared length.
type measureKey struct {
	base uint32
	len  uint16
}

// measureEntry is a cached SLB digest, valid only while the write
// generation of the measured range still equals gen.
type measureEntry struct {
	gen    uint64
	digest tpm.Digest
}

// Config describes a machine to construct.
type Config struct {
	Cores   int // >= 1; core 0 is the BSP
	MemSize int // bytes of physical memory
}

// NewMachine builds a machine wired to the given TPM bus.
func NewMachine(clock *simtime.Clock, profile *simtime.Profile, bus *tis.Bus, cfg Config) (*Machine, error) {
	if cfg.Cores < 1 {
		return nil, errors.New("cpu: need at least one core")
	}
	if cfg.MemSize <= 0 {
		cfg.MemSize = 16 << 20
	}
	m := &Machine{
		Mem:     memory.New(cfg.MemSize),
		TPMBus:  bus,
		clock:   clock,
		profile: profile,
	}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &Core{
			ID:                i,
			IsBSP:             i == 0,
			state:             CoreRunning,
			ring:              0,
			interruptsEnabled: true,
			pagingEnabled:     true,
			segLimit:          uint32(cfg.MemSize - 1),
		})
	}
	m.Instrument(nil, nil)
	return m, nil
}

// Instrument points the machine's late-launch metrics at a registry and its
// precondition violations at an event log. The metric family is:
//
//	flicker_skinit_attempts_total{variant,result} — variant classic|partitioned;
//	result ok or the violated precondition (not-ring0, not-bsp, ap-not-init,
//	active, bad-slb, dev-fault, measure-fault, no-multicore).
func (m *Machine) Instrument(reg *metrics.Registry, events *metrics.EventLog) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metSKINIT = reg.Counter("flicker_skinit_attempts_total",
		"SKINIT attempts, by launch variant and outcome.", "variant", "result")
	m.metSKINITOK = map[string]*metrics.Counter{
		"classic":     m.metSKINIT.With("classic", "ok").Cell(),
		"partitioned": m.metSKINIT.With("partitioned", "ok").Cell(),
	}
	cache := reg.Counter("flicker_skinit_measure_cache_total",
		"SKINIT measurement cache lookups, by result (hit = unchanged image re-measured in O(1)).",
		"result")
	m.metMeasureHit = cache.With("hit").Cell()
	m.metMeasureMiss = cache.With("miss").Cell()
	m.events = events
}

// measureSLB runs the locality-4 measurement of the staged SLB, returning
// the SLB digest (what PCR 17 was extended with) and the resulting PCR 17
// value. It memoizes (base, length, write-generation) → digest: when the
// staged bytes are provably unchanged since the last launch, the TPM is
// driven through the HASH_START/HASH_DIGEST fast path instead of re-reading
// and re-hashing up to 60 KB. The cached and streamed paths are
// bit-identical in PCR 17 and in simulated time charged; any write, patch,
// or DMA store into the window bumps the range's generation and forces a
// full re-hash, so tampering is never masked. fault classifies an error for
// recordSKINIT ("bad-slb" or "measure-fault").
//
// Callers invoke this after DEVProtect, so DMA cannot move the bytes
// between the generation sample and the hash; a CPU-side race would bump
// the generation, which the re-sample before publishing the entry catches.
func (m *Machine) measureSLB(slbBase uint32, length uint16) (digest, pcr17 tpm.Digest, fault string, err error) {
	key := measureKey{base: slbBase, len: length}
	gen := m.Mem.Generation(slbBase, int(length))
	m.mu.Lock()
	ent, ok := m.measureCache[key]
	hit, miss := m.metMeasureHit, m.metMeasureMiss
	m.mu.Unlock()
	if ok && gen != 0 && ent.gen == gen {
		hit.Inc()
		pcr17, err = tpm.RunHashSequencePrecomputed(m.TPMBus, ent.digest, int(length))
		if err != nil {
			return tpm.Digest{}, tpm.Digest{}, "measure-fault", err
		}
		return ent.digest, pcr17, "", nil
	}
	miss.Inc()
	slb, err := m.Mem.Read(slbBase, int(length))
	if err != nil {
		return tpm.Digest{}, tpm.Digest{}, "bad-slb", err
	}
	sum := palcrypto.SHA1Sum(slb)
	copy(digest[:], sum[:])
	// The digest is computed once on the launching CPU and handed to the
	// TPM with the byte count; the TPM charges the full per-byte transfer
	// cost, so Table 2's linear SKINIT latency is preserved exactly.
	pcr17, err = tpm.RunHashSequencePrecomputed(m.TPMBus, digest, int(length))
	if err != nil {
		return tpm.Digest{}, tpm.Digest{}, "measure-fault", err
	}
	if gen2 := m.Mem.Generation(slbBase, int(length)); gen2 != 0 && gen2 == gen {
		m.mu.Lock()
		if m.measureCache == nil {
			m.measureCache = make(map[measureKey]measureEntry)
		}
		if len(m.measureCache) >= 64 {
			// The cache only ever holds a handful of staged regions; a
			// wholesale reset on overflow keeps it bounded without an LRU.
			clear(m.measureCache)
		}
		m.measureCache[key] = measureEntry{gen: gen, digest: digest}
		m.mu.Unlock()
	}
	return digest, pcr17, "", nil
}

// recordSKINIT folds one late-launch attempt into the instruments. The ok
// outcome (every healthy launch) uses the cached per-variant handle; fault
// outcomes are once-per-incident and may look their series up directly.
func (m *Machine) recordSKINIT(variant, result, detail string) {
	m.mu.Lock()
	met, ok, ev := m.metSKINIT, m.metSKINITOK[variant], m.events
	m.mu.Unlock()
	if result == "ok" && ok != nil {
		ok.Inc()
		return
	}
	//flickervet:allow metrichandle(fault outcomes fire at most once per failed launch)
	met.With(variant, result).Inc()
	if result != "ok" {
		ev.Record(metrics.EventSKINITFault, detail)
	}
}

// Cores returns the machine's cores; index 0 is the BSP.
func (m *Machine) Cores() []*Core { return m.cores }

// BSP returns the Boot Strap Processor.
func (m *Machine) BSP() *Core { return m.cores[0] }

// DebugDisabled reports whether hardware debug access is blocked (true
// while a late launch is active).
func (m *Machine) DebugDisabled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.debugDisabled
}

// SecureSessionActive reports whether a late launch is in progress.
func (m *Machine) SecureSessionActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.secureActive
}

// SendINITIPI delivers an INIT inter-processor interrupt to an AP. The AP
// must be idle (descheduled via CPU hotplug) — sending INIT to a core that
// is executing processes is the bug the paper's flicker-module avoids by
// using CPU hotplug first (Section 4.2, "Suspend OS").
func (m *Machine) SendINITIPI(coreID int) error {
	if coreID <= 0 || coreID >= len(m.cores) {
		return fmt.Errorf("cpu: INIT IPI to invalid core %d", coreID)
	}
	c := m.cores[coreID]
	switch c.State() {
	case CoreIdle:
		c.setState(CoreInitHalted)
		return nil
	case CoreInitHalted:
		return nil // already halted
	default:
		return fmt.Errorf("cpu: core %d is running; deschedule it before INIT", coreID)
	}
}

// StartupAP releases an AP from INIT back to the running state (the SIPI
// the OS sends after the Flicker session when it re-onlines the core).
func (m *Machine) StartupAP(coreID int) error {
	if coreID <= 0 || coreID >= len(m.cores) {
		return fmt.Errorf("cpu: SIPI to invalid core %d", coreID)
	}
	m.cores[coreID].setState(CoreRunning)
	return nil
}

// SetCoreIdle marks an AP as descheduled (CPU hotplug offline).
func (m *Machine) SetCoreIdle(coreID int, idle bool) error {
	if coreID <= 0 || coreID >= len(m.cores) {
		return fmt.Errorf("cpu: invalid core %d", coreID)
	}
	if idle {
		m.cores[coreID].setState(CoreIdle)
	} else {
		m.cores[coreID].setState(CoreRunning)
	}
	return nil
}

// PendInterrupt queues an external interrupt. If the BSP has interrupts
// disabled (during a Flicker session), the interrupt stays pending and is
// observed only after the OS resumes — this is the mechanism behind the
// paper's discussion of lost keyboard input and deferred I/O (Section 7.5).
func (m *Machine) PendInterrupt(irq int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pendingIRQs = append(m.pendingIRQs, irq)
}

// DrainInterrupts returns and clears pending interrupts if any running core
// can take them; it returns nil while every available core has interrupts
// disabled. During a classic Flicker session the BSP is masked and the APs
// are INIT-halted, so interrupts stay pending; during a partitioned launch
// (the [19] multicore extension) the other cores keep taking them.
func (m *Machine) DrainInterrupts() []int {
	deliverable := false
	for _, c := range m.cores {
		if c.State() == CoreRunning && c.InterruptsEnabled() {
			deliverable = true
			break
		}
	}
	if !deliverable {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.pendingIRQs
	m.pendingIRQs = nil
	return out
}

// PendingInterruptCount reports how many interrupts are queued.
func (m *Machine) PendingInterruptCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pendingIRQs)
}

// SLBMaxLen is the architectural limit on the Secure Loader Block: the
// first two 16-bit words (length, entry point) "must be between 0 and
// 64 KB".
const SLBMaxLen = 64 * 1024

// LateLaunch is the hardware context created by a successful SKINIT. The
// session layer keeps it until the SLB Core resumes the OS.
type LateLaunch struct {
	m       *Machine
	core    *Core
	ended   bool
	savedIF bool

	// SLBBase is the physical address passed to SKINIT.
	SLBBase uint32
	// SLBLen and Entry are the header words read from the SLB.
	SLBLen uint16
	Entry  uint16
	// Measurement is the SHA-1 of the SLB contents, as extended into
	// PCR 17 by the TPM.
	Measurement tpm.Digest
	// PCR17 is the PCR 17 value after the measurement extend.
	PCR17 tpm.Digest
	// Partitioned marks a multicore-isolation launch (SKINITPartitioned):
	// only the launching core was isolated.
	Partitioned bool
}

// SKINIT executes the late-launch instruction on the given core.
func (m *Machine) SKINIT(coreID int, slbBase uint32) (*LateLaunch, error) {
	if coreID < 0 || coreID >= len(m.cores) {
		return nil, fmt.Errorf("cpu: invalid core %d", coreID)
	}
	core := m.cores[coreID]

	// Precondition: privileged instruction.
	if core.Ring() != 0 {
		m.recordSKINIT("classic", "not-ring0", "cpu: SKINIT from ring != 0")
		return nil, errors.New("cpu: SKINIT is privileged (#GP: not ring 0)")
	}
	// Precondition: BSP only.
	if !core.IsBSP {
		m.recordSKINIT("classic", "not-bsp", fmt.Sprintf("cpu: SKINIT on AP %d", core.ID))
		return nil, errors.New("cpu: SKINIT can only be run on the BSP")
	}
	// Precondition: every AP has accepted an INIT IPI.
	for _, c := range m.cores[1:] {
		if c.State() != CoreInitHalted {
			m.recordSKINIT("classic", "ap-not-init",
				fmt.Sprintf("cpu: SKINIT with AP %d %s", c.ID, c.State()))
			return nil, fmt.Errorf("cpu: AP %d not in INIT state (is %s); SKINIT handshake would fail",
				c.ID, c.State())
		}
	}
	m.mu.Lock()
	if m.secureActive {
		m.mu.Unlock()
		m.recordSKINIT("classic", "active", "cpu: SKINIT while a late launch is active")
		return nil, errors.New("cpu: late launch already active")
	}
	m.mu.Unlock()

	// Read and validate the SLB header: length and entry point words.
	hdr, err := m.Mem.Read(slbBase, 4)
	if err != nil {
		m.recordSKINIT("classic", "bad-slb", "cpu: SLB header unreadable")
		return nil, fmt.Errorf("cpu: SLB header: %w", err)
	}
	length := binary.LittleEndian.Uint16(hdr[0:2])
	entry := binary.LittleEndian.Uint16(hdr[2:4])
	if length == 0 {
		m.recordSKINIT("classic", "bad-slb", "cpu: SLB length is zero")
		return nil, errors.New("cpu: SLB length is zero")
	}
	if entry >= length {
		m.recordSKINIT("classic", "bad-slb", "cpu: SLB entry point beyond length")
		return nil, fmt.Errorf("cpu: SLB entry point %#x beyond length %#x", entry, length)
	}

	// Hardware protections: DEV over the full 64 KB window regardless of
	// the SLB's declared length ("SKINIT enables the Device Exclusion
	// Vector for the entire 64 KB of memory starting from the base of the
	// SLB, even if the SLB's length is less than 64 KB").
	devLen := SLBMaxLen
	if int(slbBase)+devLen > m.Mem.Size() {
		devLen = m.Mem.Size() - int(slbBase)
	}
	if err := m.Mem.DEVProtect(slbBase, devLen); err != nil {
		m.recordSKINIT("classic", "dev-fault", "cpu: DEV setup failed")
		return nil, fmt.Errorf("cpu: DEV setup: %w", err)
	}

	savedIF := core.InterruptsEnabled()
	core.SetInterrupts(false)
	m.mu.Lock()
	m.debugDisabled = true
	m.secureActive = true
	m.mu.Unlock()

	// CPU state change cost (mode switch, DEV programming): the sub-1ms
	// component of Table 2's zero-size row.
	m.clock.Advance(m.profile.CPUStateChange, "cpu.skinit")

	// Measure the SLB: only the declared length is transmitted (this is
	// what makes the Section 7.2 "SKINIT Optimization" possible). An
	// unchanged staged image hits the write-generation measurement cache.
	meas, pcr17, fault, err := m.measureSLB(slbBase, length)
	if err != nil {
		m.abortLaunch(core, slbBase, savedIF)
		if fault == "bad-slb" {
			m.recordSKINIT("classic", "bad-slb", "cpu: SLB body unreadable")
			return nil, fmt.Errorf("cpu: SLB read: %w", err)
		}
		m.recordSKINIT("classic", "measure-fault", "cpu: locality-4 SLB measurement failed")
		return nil, fmt.Errorf("cpu: SLB measurement: %w", err)
	}

	// Enter flat 32-bit protected mode, paging disabled, at the entry point.
	core.SetPaging(false)
	core.SetSegments(slbBase, uint32(SLBMaxLen-1))

	m.recordSKINIT("classic", "ok", "")
	return &LateLaunch{
		m:           m,
		core:        core,
		savedIF:     savedIF,
		SLBBase:     slbBase,
		SLBLen:      length,
		Entry:       entry,
		Measurement: meas,
		PCR17:       pcr17,
	}, nil
}

// abortLaunch unwinds partial SKINIT state after a mid-flight failure.
func (m *Machine) abortLaunch(core *Core, slbBase uint32, savedIF bool) {
	m.Mem.DEVClear(slbBase, SLBMaxLen)
	core.SetInterrupts(savedIF)
	m.mu.Lock()
	m.debugDisabled = false
	m.secureActive = false
	m.mu.Unlock()
}

// Core returns the core the launch is running on.
func (l *LateLaunch) Core() *Core { return l.core }

// ExtendProtection adds DEV protection beyond the initial 64 KB, the
// mechanism the paper describes for PALs larger than the SLB window.
func (l *LateLaunch) ExtendProtection(addr uint32, n int) error {
	if l.ended {
		return errors.New("cpu: late launch already ended")
	}
	return l.m.Mem.DEVProtect(addr, n)
}

// End tears down the hardware protections: the SLB Core calls this as the
// final step of Resume OS, after secrets are erased. Interrupts return to
// their pre-SKINIT state and debug access is restored.
func (l *LateLaunch) End() error {
	if l.ended {
		return errors.New("cpu: late launch already ended")
	}
	l.ended = true
	if err := l.m.Mem.DEVClear(l.SLBBase, SLBMaxLen); err != nil {
		return err
	}
	l.core.SetInterrupts(l.savedIF)
	l.m.mu.Lock()
	l.m.debugDisabled = false
	l.m.secureActive = false
	l.m.mu.Unlock()
	return nil
}

// Ended reports whether End has been called.
func (l *LateLaunch) Ended() bool { return l.ended }
