package cpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"flicker/internal/tpm"
)

// This file implements the next-generation hardware capabilities the paper
// recommends in its concurrent work [19] ("How low can you go?"). They are
// gated by the latency profile: 2008-era profiles reject them, so the base
// reproduction keeps exactly the paper's constraints, while ProfileFuture
// enables the extension experiments.

// ErrNoMulticoreIsolation is returned when partitioned launch is attempted
// on hardware without the capability.
var ErrNoMulticoreIsolation = errors.New("cpu: this hardware has no multicore secure-partition support")

// ErrNoHWContext is returned when the protected context store is absent.
var ErrNoHWContext = errors.New("cpu: this hardware has no protected PAL context store")

// SKINITPartitioned performs a late launch that isolates only the launching
// core: the other cores keep executing untrusted code, and interrupts stay
// enabled for them. The DEV still protects the SLB's 64 KB against DMA, and
// PCR 17 is reset and extended exactly as with SKINIT.
//
// Requires Profile.MulticoreIsolation (a [19] recommendation); on 2008-era
// profiles it fails and callers must use SKINIT with full OS suspension.
func (m *Machine) SKINITPartitioned(coreID int, slbBase uint32) (*LateLaunch, error) {
	if !m.profile.MulticoreIsolation {
		m.recordSKINIT("partitioned", "no-multicore", "cpu: partitioned launch without hardware support")
		return nil, ErrNoMulticoreIsolation
	}
	if coreID < 0 || coreID >= len(m.cores) {
		return nil, fmt.Errorf("cpu: invalid core %d", coreID)
	}
	core := m.cores[coreID]
	if core.Ring() != 0 {
		m.recordSKINIT("partitioned", "not-ring0", "cpu: SKINIT from ring != 0")
		return nil, errors.New("cpu: SKINIT is privileged (#GP: not ring 0)")
	}
	m.mu.Lock()
	if m.secureActive {
		m.mu.Unlock()
		m.recordSKINIT("partitioned", "active", "cpu: SKINIT while a late launch is active")
		return nil, errors.New("cpu: late launch already active")
	}
	m.mu.Unlock()

	hdr, err := m.Mem.Read(slbBase, 4)
	if err != nil {
		m.recordSKINIT("partitioned", "bad-slb", "cpu: SLB header unreadable")
		return nil, fmt.Errorf("cpu: SLB header: %w", err)
	}
	length := binary.LittleEndian.Uint16(hdr[0:2])
	entry := binary.LittleEndian.Uint16(hdr[2:4])
	if length == 0 {
		m.recordSKINIT("partitioned", "bad-slb", "cpu: SLB length is zero")
		return nil, errors.New("cpu: SLB length is zero")
	}
	if entry >= length {
		m.recordSKINIT("partitioned", "bad-slb", "cpu: SLB entry point beyond length")
		return nil, fmt.Errorf("cpu: SLB entry point %#x beyond length %#x", entry, length)
	}
	devLen := SLBMaxLen
	if int(slbBase)+devLen > m.Mem.Size() {
		devLen = m.Mem.Size() - int(slbBase)
	}
	if err := m.Mem.DEVProtect(slbBase, devLen); err != nil {
		m.recordSKINIT("partitioned", "dev-fault", "cpu: DEV setup failed")
		return nil, fmt.Errorf("cpu: DEV setup: %w", err)
	}
	savedIF := core.InterruptsEnabled()
	core.SetInterrupts(false) // only the secure core masks interrupts
	m.mu.Lock()
	m.debugDisabled = true
	m.secureActive = true
	m.mu.Unlock()
	m.clock.Advance(m.profile.CPUStateChange, "cpu.skinit")

	meas, pcr17, fault, err := m.measureSLB(slbBase, length)
	if err != nil {
		m.abortLaunch(core, slbBase, savedIF)
		if fault == "bad-slb" {
			m.recordSKINIT("partitioned", "bad-slb", "cpu: SLB body unreadable")
			return nil, fmt.Errorf("cpu: SLB read: %w", err)
		}
		m.recordSKINIT("partitioned", "measure-fault", "cpu: locality-4 SLB measurement failed")
		return nil, fmt.Errorf("cpu: SLB measurement: %w", err)
	}
	core.SetPaging(false)
	core.SetSegments(slbBase, uint32(SLBMaxLen-1))
	m.recordSKINIT("partitioned", "ok", "")
	return &LateLaunch{
		m: m, core: core, savedIF: savedIF,
		SLBBase: slbBase, SLBLen: length, Entry: entry,
		Measurement: meas, PCR17: pcr17,
		Partitioned: true,
	}, nil
}

// SecureStash is the hardware-protected PAL context store of [19]: a
// fixed-capacity on-chip memory, keyed by PAL identity (the PCR-17 launch
// value), readable and writable only while a late launch with that identity
// is active. It replaces the TPM Seal/Unseal round trip for checkpointing
// PAL state, eliminating "a major source of Flicker's overhead related to
// sealed storage".
type SecureStash struct {
	mu       sync.Mutex
	slots    map[tpm.Digest][]byte
	capacity int
	used     int
}

// StashCapacity is the simulated on-chip protected memory size.
const StashCapacity = 256 * 1024

func (m *Machine) stash() *SecureStash {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.secureStash == nil {
		m.secureStash = &SecureStash{slots: make(map[tpm.Digest][]byte), capacity: StashCapacity}
	}
	return m.secureStash
}

// StashWrite stores protected context for the PAL identified by identity.
// It fails unless the hardware supports context protection AND a late
// launch is currently active (software outside a session cannot reach the
// store).
func (m *Machine) StashWrite(identity tpm.Digest, data []byte) error {
	if !m.profile.HWContextProtection {
		return ErrNoHWContext
	}
	if !m.SecureSessionActive() {
		return errors.New("cpu: protected context store inaccessible outside a late launch")
	}
	s := m.stash()
	s.mu.Lock()
	defer s.mu.Unlock()
	old := len(s.slots[identity])
	if s.used-old+len(data) > s.capacity {
		return fmt.Errorf("cpu: protected context store full (%d/%d bytes)", s.used, s.capacity)
	}
	s.used += len(data) - old
	s.slots[identity] = append([]byte(nil), data...)
	m.clock.Advance(m.profile.HWContextCost, "hw.ctxstash")
	return nil
}

// StashRead retrieves protected context for identity under the same gates.
func (m *Machine) StashRead(identity tpm.Digest) ([]byte, error) {
	if !m.profile.HWContextProtection {
		return nil, ErrNoHWContext
	}
	if !m.SecureSessionActive() {
		return nil, errors.New("cpu: protected context store inaccessible outside a late launch")
	}
	s := m.stash()
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.slots[identity]
	if !ok {
		return nil, fmt.Errorf("cpu: no protected context for identity %x", identity[:8])
	}
	m.clock.Advance(m.profile.HWContextCost, "hw.ctxfetch")
	return append([]byte(nil), data...), nil
}
