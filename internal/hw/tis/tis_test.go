package tis

import (
	"bytes"
	"testing"

	"flicker/internal/metrics"
)

// echoTPM is a trivial handler recording the locality of each command.
type echoTPM struct {
	lastLoc Locality
}

func (e *echoTPM) HandleCommand(loc Locality, cmd []byte) []byte {
	e.lastLoc = loc
	out := append([]byte{byte(loc)}, cmd...)
	return out
}

func TestRequestSubmitRelease(t *testing.T) {
	e := &echoTPM{}
	b := NewBus(e)
	if err := b.RequestUse(Locality0); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Submit(Locality0, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte{0, 1, 2, 3}) {
		t.Fatalf("resp = %v", resp)
	}
	if err := b.Release(Locality0); err != nil {
		t.Fatal(err)
	}
	if b.ActiveLocality() != -1 {
		t.Fatal("interface still active after release")
	}
}

func TestSubmitWithoutClaimFails(t *testing.T) {
	b := NewBus(&echoTPM{})
	if _, err := b.Submit(Locality0, nil); err != ErrNotClaimed {
		t.Fatalf("err = %v, want ErrNotClaimed", err)
	}
	// Claimed by someone else.
	b.RequestUse(Locality1)
	if _, err := b.Submit(Locality0, nil); err != ErrNotClaimed {
		t.Fatalf("err = %v, want ErrNotClaimed", err)
	}
}

func TestHigherLocalitySeizes(t *testing.T) {
	b := NewBus(&echoTPM{})
	if err := b.RequestUse(Locality0); err != nil {
		t.Fatal(err)
	}
	// The OS (locality 0) holds the interface; SKINIT (locality 4) seizes it.
	if err := b.RequestUse(Locality4); err != nil {
		t.Fatalf("locality 4 could not seize: %v", err)
	}
	if got := b.ActiveLocality(); got != Locality4 {
		t.Fatalf("active = %v, want Locality4", got)
	}
	// The OS can no longer submit.
	if _, err := b.Submit(Locality0, nil); err == nil {
		t.Fatal("seized locality could still submit")
	}
}

func TestEqualOrLowerLocalityBlocked(t *testing.T) {
	b := NewBus(&echoTPM{})
	b.RequestUse(Locality2)
	if err := b.RequestUse(Locality2); err != ErrLocalityBusy {
		t.Fatalf("equal locality: err = %v, want busy", err)
	}
	if err := b.RequestUse(Locality1); err != ErrLocalityBusy {
		t.Fatalf("lower locality: err = %v, want busy", err)
	}
}

func TestReleaseWrongHolder(t *testing.T) {
	b := NewBus(&echoTPM{})
	b.RequestUse(Locality2)
	if err := b.Release(Locality0); err == nil {
		t.Fatal("released by non-holder")
	}
}

func TestInvalidLocality(t *testing.T) {
	b := NewBus(&echoTPM{})
	if err := b.RequestUse(Locality(9)); err == nil {
		t.Fatal("accepted invalid locality")
	}
	if Locality(-1).Valid() || Locality(5).Valid() {
		t.Fatal("Valid() wrong for out-of-range localities")
	}
}

func TestSubmitWithoutClaimCountsMetricOnce(t *testing.T) {
	b := NewBus(&echoTPM{})
	reg := metrics.NewRegistry()
	log := metrics.NewEventLog(0)
	b.Instrument(reg, log)

	if _, err := b.Submit(Locality2, nil); err != ErrNotClaimed {
		t.Fatalf("err = %v, want ErrNotClaimed", err)
	}
	submits := reg.Counter("flicker_tis_submits_total",
		"", "locality", "result")
	if got := submits.With("2", "not-claimed").Value(); got != 1 {
		t.Errorf("not-claimed counter = %v, want exactly 1", got)
	}
	if got := submits.With("2", "ok").Value(); got != 0 {
		t.Errorf("ok counter = %v, want 0", got)
	}
	faults := log.EventsByKind(metrics.EventLocalityFault)
	if len(faults) != 1 {
		t.Errorf("locality-fault events = %d, want 1: %+v", len(faults), faults)
	}
}

func TestArbitrationMetrics(t *testing.T) {
	b := NewBus(&echoTPM{})
	reg := metrics.NewRegistry()
	b.Instrument(reg, metrics.NewEventLog(0))

	b.RequestUse(Locality0) // granted
	b.RequestUse(Locality0) // busy (equal locality)
	b.RequestUse(Locality4) // granted (seize)
	b.Release(Locality0)    // fault (not the holder)
	b.Release(Locality4)    // ok

	requests := reg.Counter("flicker_tis_requests_total", "", "locality", "result")
	releases := reg.Counter("flicker_tis_releases_total", "", "locality", "result")
	for _, c := range []struct {
		vec      *metrics.CounterVec
		loc, res string
		want     float64
	}{
		{requests, "0", "granted", 1},
		{requests, "0", "busy", 1},
		{requests, "4", "granted", 1},
		{releases, "0", "fault", 1},
		{releases, "4", "ok", 1},
	} {
		if got := c.vec.With(c.loc, c.res).Value(); got != c.want {
			t.Errorf("locality %s result %s = %v, want %v", c.loc, c.res, got, c.want)
		}
	}
}

func TestSubmitAt(t *testing.T) {
	e := &echoTPM{}
	b := NewBus(e)
	resp, err := b.SubmitAt(Locality4, []byte{0xAB})
	if err != nil {
		t.Fatal(err)
	}
	if e.lastLoc != Locality4 || !bytes.Equal(resp, []byte{4, 0xAB}) {
		t.Fatalf("lastLoc=%v resp=%v", e.lastLoc, resp)
	}
	// Interface must be free afterwards.
	if b.ActiveLocality() != -1 {
		t.Fatal("SubmitAt leaked the claim")
	}
}
