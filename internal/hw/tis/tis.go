// Package tis simulates the TPM Interface Specification (TIS) transport:
// the memory-mapped window through which software and the chipset talk to
// the TPM. It models the parts Flicker depends on: localities (the CPU
// issues SKINIT's PCR-17 reset at locality 4, which no software can claim),
// access arbitration between the untrusted OS driver and the PAL's driver,
// and byte-level command/response framing.
package tis

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"flicker/internal/metrics"
)

// Locality identifies the privilege of the requester on the LPC bus.
type Locality int

// Localities defined by the TIS specification. Locality4 is asserted only
// by the CPU microcode during SKINIT; software cannot claim it.
const (
	Locality0 Locality = iota // legacy software (the untrusted OS)
	Locality1                 // trusted OS components
	Locality2                 // the dynamically launched environment (the PAL)
	Locality3                 // auxiliary trusted components
	Locality4                 // CPU hardware (SKINIT) only
)

// Valid reports whether l is a defined locality.
func (l Locality) Valid() bool { return l >= Locality0 && l <= Locality4 }

// Handler processes one marshaled TPM command issued at a locality and
// returns the marshaled response. The TPM core implements this.
type Handler interface {
	HandleCommand(loc Locality, cmd []byte) []byte
}

// Bus is the TIS access-control front end in front of a Handler.
type Bus struct {
	mu      sync.Mutex
	tpm     Handler
	active  Locality
	claimed bool

	// Locality-arbitration instrumentation (see Instrument); the vecs are
	// always non-nil, detached until Instrument is called.
	metRequests *metrics.CounterVec // locality, result
	metReleases *metrics.CounterVec // locality, result
	metSubmits  *metrics.CounterVec // locality, result
	// Happy-path series resolved once per locality so the per-command grab/
	// submit/release cycle does not re-join label keys (fault paths take the
	// slow With lookup). Indexed by locality; reset by Instrument.
	okRequests [Locality4 + 1]*metrics.Counter
	okReleases [Locality4 + 1]*metrics.Counter
	okSubmits  [Locality4 + 1]*metrics.Counter
	events     *metrics.EventLog
}

// ErrLocalityBusy is returned when a different locality holds the interface.
var ErrLocalityBusy = errors.New("tis: interface held by another locality")

// ErrNotClaimed is returned when submitting a command without access.
var ErrNotClaimed = errors.New("tis: locality has not requested use")

// NewBus wraps a TPM command handler in TIS access arbitration.
func NewBus(tpm Handler) *Bus {
	b := &Bus{tpm: tpm, active: -1}
	b.Instrument(nil, nil)
	return b
}

// Instrument points the bus's locality-traffic metrics at a registry and its
// locality faults at an event log. The metric families are:
//
//	flicker_tis_requests_total{locality,result}  — grabs: granted|busy|invalid
//	flicker_tis_releases_total{locality,result}  — releases: ok|fault
//	flicker_tis_submits_total{locality,result}   — submissions: ok|not-claimed
func (b *Bus) Instrument(reg *metrics.Registry, events *metrics.EventLog) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.metRequests = reg.Counter("flicker_tis_requests_total",
		"TIS locality grab attempts, by locality and arbitration result.", "locality", "result")
	b.metReleases = reg.Counter("flicker_tis_releases_total",
		"TIS locality releases, by locality and result.", "locality", "result")
	b.metSubmits = reg.Counter("flicker_tis_submits_total",
		"TPM command submissions through the TIS window, by locality and result.", "locality", "result")
	b.okRequests = [Locality4 + 1]*metrics.Counter{}
	b.okReleases = [Locality4 + 1]*metrics.Counter{}
	b.okSubmits = [Locality4 + 1]*metrics.Counter{}
	b.events = events
}

// cachedOK returns (lazily resolving) the happy-path series for a valid
// locality from cache, so series only appear in the exposition once used.
// Callers hold b.mu.
func cachedOK(cache *[Locality4 + 1]*metrics.Counter, vec *metrics.CounterVec, l Locality, result string) *metrics.Counter {
	if cache[l] == nil {
		cache[l] = vec.With(locLabel(l), result).Cell()
	}
	return cache[l]
}

// locLabel renders a locality (possibly invalid) as a metric label.
func locLabel(l Locality) string { return strconv.Itoa(int(l)) }

// RequestUse claims the interface for a locality. A higher locality can
// seize the interface from a lower one (the TIS priority rule that lets
// SKINIT's locality-4 traffic preempt the OS driver); equal or lower
// localities must wait for a release.
func (b *Bus) RequestUse(l Locality) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !l.Valid() {
		//flickervet:allow metrichandle(invalid-locality grabs are once-per-incident faults)
		b.metRequests.With(locLabel(l), "invalid").Inc()
		b.events.Record(metrics.EventLocalityFault,
			fmt.Sprintf("tis: grab with invalid locality %d", l))
		return fmt.Errorf("tis: invalid locality %d", l)
	}
	if b.claimed && l <= b.active {
		//flickervet:allow metrichandle(contended grabs are the exceptional path)
		b.metRequests.With(locLabel(l), "busy").Inc()
		b.events.Record(metrics.EventLocalityFault,
			fmt.Sprintf("tis: locality %d grab rejected; locality %d holds the interface", l, b.active))
		return ErrLocalityBusy
	}
	cachedOK(&b.okRequests, b.metRequests, l, "granted").Inc()
	b.active = l
	b.claimed = true
	return nil
}

// Release relinquishes the interface if l currently holds it.
func (b *Bus) Release(l Locality) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.claimed || b.active != l {
		//flickervet:allow metrichandle(mismatched releases are once-per-incident faults)
		b.metReleases.With(locLabel(l), "fault").Inc()
		return fmt.Errorf("tis: locality %d does not hold the interface", l)
	}
	cachedOK(&b.okReleases, b.metReleases, l, "ok").Inc()
	b.claimed = false
	b.active = -1
	return nil
}

// ActiveLocality returns the locality holding the interface, or -1.
func (b *Bus) ActiveLocality() Locality {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.claimed {
		return -1
	}
	return b.active
}

// Submit sends a marshaled command at locality l. The locality must hold
// the interface.
func (b *Bus) Submit(l Locality, cmd []byte) ([]byte, error) {
	b.mu.Lock()
	if !b.claimed || b.active != l {
		//flickervet:allow metrichandle(unclaimed submits are once-per-incident faults)
		b.metSubmits.With(locLabel(l), "not-claimed").Inc()
		b.events.Record(metrics.EventLocalityFault,
			fmt.Sprintf("tis: submit at locality %d without holding the interface", l))
		b.mu.Unlock()
		return nil, ErrNotClaimed
	}
	cachedOK(&b.okSubmits, b.metSubmits, l, "ok").Inc()
	b.mu.Unlock()
	return b.tpm.HandleCommand(l, cmd), nil
}

// SubmitAt is a convenience that claims, submits, and releases in one call;
// hardware paths (SKINIT) use it since their access cannot be contended.
func (b *Bus) SubmitAt(l Locality, cmd []byte) ([]byte, error) {
	if err := b.RequestUse(l); err != nil {
		return nil, err
	}
	defer b.Release(l)
	return b.Submit(l, cmd)
}
