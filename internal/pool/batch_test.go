package pool

import (
	"fmt"
	"testing"

	"flicker/internal/core"
)

// RunBatch amortizes one physical session over the whole request slice and
// produces replies — and a PCR-17 launch measurement — bit-identical to what
// singleton Runs of the same PAL would have produced.
func TestPoolRunBatch(t *testing.T) {
	hello := testPAL("hello")

	// Singleton baseline on a dedicated pool.
	single := newPool(t, 1, 4)
	res, err := single.Run(hello, core.SessionOptions{Input: []byte("r0")})
	if err != nil {
		t.Fatal(err)
	}
	wantPCR := fmt.Sprintf("%x", res.PCR17AtLaunch)

	p := newPool(t, 1, 4)
	reqs := [][]byte{[]byte("r0"), []byte("r1"), []byte("r2")}
	br, err := p.RunBatch(hello, reqs, core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Completed != 3 || len(br.Replies) != 3 {
		t.Fatalf("completed %d/%d replies", br.Completed, len(br.Replies))
	}
	for i, r := range br.Replies {
		if r.Err != nil {
			t.Fatalf("reply %d: %v", i, r.Err)
		}
		want := fmt.Sprintf("hello:r%d", i)
		if string(r.Output) != want {
			t.Fatalf("reply %d = %q, want %q", i, r.Output, want)
		}
	}
	// The launch measurement is the bit-identity anchor: same PAL, same
	// platform seed, same PCR-17 — batched or not.
	if got := fmt.Sprintf("%x", br.Session.PCR17AtLaunch); got != wantPCR {
		t.Fatalf("batch PCR17 = %s, singleton = %s", got, wantPCR)
	}
	// One physical session for the whole batch.
	if st := p.Stats(); st.Sessions != 1 {
		t.Fatalf("Stats().Sessions = %d, want 1 for the whole batch", st.Sessions)
	}

	if _, err := p.RunBatch(hello, nil, core.SessionOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// RunBatch on a draining pool refuses cleanly with ErrClosed, like Run.
func TestPoolRunBatchAfterClose(t *testing.T) {
	p := newPool(t, 1, 4)
	p.Close()
	if _, err := p.RunBatch(testPAL("hello"), [][]byte{[]byte("x")}, core.SessionOptions{}); err == nil {
		t.Fatal("RunBatch on closed pool succeeded")
	}
}
