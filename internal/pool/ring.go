package pool

// The submit ring: a bounded multi-producer single-consumer queue built on
// sequence-stamped slots (the Vyukov bounded-queue discipline). Each shard
// owns one ring; any number of submitters publish into it with a CAS ticket
// claim and the shard's worker consumes it alone. Replacing the old
// mutex-guarded channel removes the last cross-shard serialization on the
// submit path: a push is one ticket CAS plus two slot stores, a pop is two
// loads and two stores, and neither ever takes a lock.
//
// Slot protocol. slots[i].seq carries the slot's state machine:
//
//	seq == pos            free — a producer holding ticket pos may claim it
//	seq == pos+1          published — the consumer at head == pos may take it
//	seq == pos+len(slots) recycled — free for the producer one lap ahead
//
// A producer claims ticket pos by CASing tail pos→pos+1, writes the job,
// then publishes with seq = pos+1. The consumer sees seq == head+1, reads
// the job, and recycles with seq = head+len(slots). Tickets are uint64 and
// never wrap in practice.
//
// Capacity. The slot array is sized to the next power of two (for mask
// indexing) but the logical capacity is exactly Config.QueueLen, enforced by
// the tail-head occupancy gate, so saturation and backpressure trip at the
// configured depth, same as the old channel. The gate reads head without
// synchronizing against an in-flight pop, so a push racing the consumer's
// recycle can report full one operation early — indistinguishable from
// having raced the genuinely full queue a moment sooner.

import "sync/atomic"

// ringSlot is one sequence-stamped cell. The job pointer is owned by
// whichever side the seq state machine says owns the slot.
type ringSlot struct {
	seq atomic.Uint64
	// The plain pointer is safe by construction: a producer writes j only
	// between winning the CAS on tail and publishing seq (Store-release),
	// and the consumer reads j only after observing that publish, then
	// clears it before the recycling Store hands the slot back. Every
	// handoff is ordered by a seq Load/Store pair, so j is never accessed
	// concurrently — the Vyukov MPSC ownership argument.
	//flickervet:allow atomicsafe(ownership of j is handed off through the seq publish/recycle protocol; accesses never overlap)
	j *job
}

// ring is a bounded MPSC queue. Producers call tryPush concurrently; pop
// and empty-at-head checks belong to the single consumer.
type ring struct {
	cap   uint64
	mask  uint64
	slots []ringSlot
	head  atomic.Uint64 // next position to consume (written by the consumer)
	tail  atomic.Uint64 // next producer ticket (CAS-claimed)
}

// newRing builds a ring with logical capacity n (>= 1).
func newRing(n int) *ring {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	r := &ring{cap: uint64(n), mask: uint64(size - 1), slots: make([]ringSlot, size)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush publishes j, returning false when the ring is at capacity.
// Safe for any number of concurrent producers.
func (r *ring) tryPush(j *job) bool {
	for {
		pos := r.tail.Load()
		if pos-r.head.Load() >= r.cap {
			return false
		}
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		if seq == pos {
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.j = j
				slot.seq.Store(pos + 1)
				return true
			}
			continue // lost the ticket race; reload tail
		}
		if seq < pos {
			// The consumer has not recycled this slot: a full lap of
			// published jobs sits ahead of it.
			return false
		}
		// seq > pos: another producer advanced tail past us; retry.
	}
}

// pop takes the oldest published job. Single consumer only.
func (r *ring) pop() (*job, bool) {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return nil, false // empty, or the producer at pos is mid-publish
	}
	j := slot.j
	slot.j = nil
	r.head.Store(pos + 1)
	slot.seq.Store(pos + uint64(len(r.slots)))
	return j, true
}

// empty reports whether every claimed ticket has been consumed. Used only
// in the consumer's park protocol, where a racing publish is caught by the
// producer's wake instead.
func (r *ring) empty() bool {
	return r.head.Load() == r.tail.Load()
}
