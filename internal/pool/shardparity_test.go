package pool

// Shard-parity tests: per-shard platform stacks must change nothing the
// attestation protocol or the observability surface can see. A PAL's
// measurement chain is bit-identical on any shard and on a bare classic
// platform, and the per-shard metric cells fold into the same shared-
// registry totals the un-sharded instruments would have produced.

import (
	"fmt"
	"testing"

	"flicker/internal/core"
	"flicker/internal/metrics"
)

// TestShardPCR17BitIdentical: the same PAL yields the same Measurement,
// PCR17AtLaunch, and PCR17Final on a standalone classic platform and on
// every shard of a pool — shard seeds perturb the simulated hardware's
// identity, never the measured-launch chain.
func TestShardPCR17BitIdentical(t *testing.T) {
	classic, err := core.NewPlatform(core.PlatformConfig{Seed: "parity-classic"})
	if err != nil {
		t.Fatal(err)
	}
	hello := testPAL("parity")
	want, err := classic.RunSession(hello, core.SessionOptions{Input: []byte("x")})
	if err != nil || want.PALError != nil {
		t.Fatalf("classic session: %v %v", err, want.PALError)
	}

	p := newPool(t, 4, 4)
	for i := 0; i < p.Shards(); i++ {
		got, err := p.Shard(i).RunSession(hello, core.SessionOptions{Input: []byte("x")})
		if err != nil || got.PALError != nil {
			t.Fatalf("shard %d session: %v %v", i, err, got.PALError)
		}
		if got.Measurement != want.Measurement {
			t.Errorf("shard %d Measurement %x != classic %x", i, got.Measurement, want.Measurement)
		}
		if got.PCR17AtLaunch != want.PCR17AtLaunch {
			t.Errorf("shard %d PCR17AtLaunch %x != classic %x", i, got.PCR17AtLaunch, want.PCR17AtLaunch)
		}
		if got.PCR17Final != want.PCR17Final {
			t.Errorf("shard %d PCR17Final %x != classic %x", i, got.PCR17Final, want.PCR17Final)
		}
	}
	// And through the routed API: the verifier's independent computation
	// holds no matter which shard ran the session.
	res, err := p.Run(hello, core.SessionOptions{Input: []byte("x")})
	if err != nil || res.PALError != nil {
		t.Fatal(err, res)
	}
	if res.PCR17AtLaunch != res.Image.ExpectedPCR17() {
		t.Errorf("routed session PCR17AtLaunch %x != verifier's expected %x",
			res.PCR17AtLaunch, res.Image.ExpectedPCR17())
	}
}

// familyTotal sums every series of one family in a snapshot.
func familyTotal(snap metrics.Snapshot, family string) (total float64, series int) {
	for _, f := range snap.Families {
		if f.Name != family {
			continue
		}
		for _, s := range f.Series {
			total += s.Value
			series++
		}
	}
	return total, series
}

// TestShardMetricFoldOnScrape: sessions spread over every shard write
// through per-shard cells (platform instruments and pool submit counters
// alike), and a registry scrape folds them into exactly the fleet totals —
// the /stats and Prometheus surfaces need no per-shard plumbing.
func TestShardMetricFoldOnScrape(t *testing.T) {
	p := newPool(t, 4, 8)
	// Distinct PAL names until every shard has run at least one session.
	const sessions = 32
	for i := 0; i < sessions; i++ {
		if _, err := p.Run(testPAL(fmt.Sprintf("fold-%d", i)), core.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	perShard := 0
	for i := 0; i < p.Shards(); i++ {
		if n := p.Shard(i).Stats().Sessions; n > 0 {
			busy++
			perShard += n
		}
	}
	if busy != p.Shards() {
		t.Fatalf("only %d of %d shards ran sessions; fold not exercised fleet-wide", busy, p.Shards())
	}
	if perShard != sessions {
		t.Fatalf("per-shard Stats sum to %d sessions, want %d", perShard, sessions)
	}

	snap := p.Metrics().Snapshot()
	if got, _ := familyTotal(snap, "flicker_sessions_total"); int(got) != sessions {
		t.Errorf("flicker_sessions_total folds to %v, want %d (per-shard sum)", got, sessions)
	}
	if got, _ := familyTotal(snap, "flicker_pool_submissions_total"); int(got) != sessions {
		t.Errorf("flicker_pool_submissions_total folds to %v, want %d", got, sessions)
	}
	// Each session issues a fixed TPM command sequence per platform; the
	// folded fleet-wide dispatch count must be an exact multiple spread
	// over the same series labels a single platform would emit.
	tpmTotal, _ := familyTotal(snap, "flicker_tpm_commands_total")
	if tpmTotal == 0 || int(tpmTotal)%sessions != 0 {
		t.Errorf("flicker_tpm_commands_total folds to %v, want a per-session multiple of %d", tpmTotal, sessions)
	}
	// The queue-delay histogram's base handle reads must fold shard cells.
	if got := p.metQueueDelay.Count(); got != sessions {
		t.Errorf("queue-delay count folds to %d, want %d", got, sessions)
	}
}
