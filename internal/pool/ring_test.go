package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"flicker/internal/core"
	"flicker/internal/pal"
)

// TestRingFIFOAndCapacity: the ring is FIFO and honors its logical
// capacity exactly, including non-power-of-two depths (the slot array
// rounds up; the occupancy gate must not).
func TestRingFIFOAndCapacity(t *testing.T) {
	for _, depth := range []int{1, 3, 4, 5, 16} {
		r := newRing(depth)
		jobs := make([]*job, depth)
		for i := range jobs {
			jobs[i] = &job{}
			if !r.tryPush(jobs[i]) {
				t.Fatalf("depth %d: push %d rejected below capacity", depth, i)
			}
		}
		if r.tryPush(&job{}) {
			t.Fatalf("depth %d: push accepted at capacity", depth)
		}
		for i := range jobs {
			j, ok := r.pop()
			if !ok || j != jobs[i] {
				t.Fatalf("depth %d: pop %d = %v ok=%v, want FIFO order", depth, i, j, ok)
			}
		}
		if _, ok := r.pop(); ok {
			t.Fatalf("depth %d: pop succeeded on empty ring", depth)
		}
		// A second lap exercises the sequence recycling.
		if !r.tryPush(jobs[0]) {
			t.Fatalf("depth %d: push rejected after full drain", depth)
		}
		if j, ok := r.pop(); !ok || j != jobs[0] {
			t.Fatalf("depth %d: second-lap pop failed", depth)
		}
	}
}

// TestRingConcurrentProducers: many producers race into one ring while a
// single consumer drains; every pushed job is consumed exactly once. Run
// under -race this also checks the publish/consume memory ordering.
func TestRingConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 2000
	r := newRing(64)
	var pushed, popped atomic.Int64
	seen := make(map[*job]bool, producers*perProducer)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				j := &job{}
				for !r.tryPush(j) {
					runtime.Gosched()
				}
				pushed.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for popped.Load() < producers*perProducer {
			if j, ok := r.pop(); ok {
				if seen[j] {
					t.Error("job consumed twice")
					return
				}
				seen[j] = true
				popped.Add(1)
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	<-done
	if got := popped.Load(); got != producers*perProducer {
		t.Fatalf("consumed %d jobs, want %d", got, producers*perProducer)
	}
}

// TestPoolCloseDrainHammer races Run, TryRun, and Close: every submission
// that was accepted (did not return ErrClosed/ErrSaturated) must complete
// with a session result — accepted-then-dropped would hang the submitter,
// and a double-completed job would double-send on its reply channel (the
// race detector and the channel's cap-1 send would both trip).
func TestPoolCloseDrainHammer(t *testing.T) {
	for round := 0; round < 4; round++ {
		p, err := New(Config{
			Shards:   2,
			QueueLen: 2,
			Platform: core.PlatformConfig{Seed: fmt.Sprintf("pool-drain-%d", round)},
		})
		if err != nil {
			t.Fatal(err)
		}
		var accepted, completed atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					name := fmt.Sprintf("pal-%d", (w+i)%4)
					var res *core.SessionResult
					var err error
					if w%2 == 0 {
						res, err = p.Run(testPAL(name), core.SessionOptions{})
					} else {
						res, err = p.TryRun(testPAL(name), core.SessionOptions{})
					}
					switch {
					case err == nil:
						accepted.Add(1)
						if res == nil {
							t.Errorf("accepted job returned nil result")
						} else {
							completed.Add(1)
						}
					case errors.Is(err, ErrClosed) || errors.Is(err, ErrSaturated):
						// Rejected; fine under the racing Close/saturation.
					default:
						t.Errorf("unexpected submit error: %v", err)
					}
				}
			}(w)
		}
		close(start)
		// Close concurrently with the submitter storm: raced submissions
		// either reject with ErrClosed or drain to completion.
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if accepted.Load() != completed.Load() {
			t.Fatalf("accepted %d jobs but %d completed", accepted.Load(), completed.Load())
		}
		if st := p.Stats(); int64(st.Sessions) < completed.Load() {
			t.Fatalf("platforms ran %d sessions, fewer than %d completed replies", st.Sessions, completed.Load())
		}
		if _, err := p.Run(testPAL("late"), core.SessionOptions{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Run after drain = %v, want ErrClosed", err)
		}
	}
}

// TestPoolBackpressureDuringClose: a Run blocked on a full ring when Close
// begins holds an inflight ticket, so the worker keeps draining and the
// blocked submitter's session still completes (the old RWMutex guarantee).
func TestPoolBackpressureDuringClose(t *testing.T) {
	p, err := New(Config{
		Shards:   1,
		QueueLen: 1,
		Platform: core.PlatformConfig{Seed: "pool-bp-close"},
	})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &pal.Func{
		PALName: "blocker",
		Binary:  pal.DescriptorCode("blocker", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			close(started)
			<-release
			return []byte("done"), nil
		},
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = p.Run(blocker, core.SessionOptions{}) }()
	<-started
	// Fill the single ring slot and pile blocked submitters behind it.
	for i := 1; i < 6; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); _, errs[i] = p.Run(testPAL("queued"), core.SessionOptions{}) }(i)
	}
	// Blocker in flight + one job in the ring slot + four submitters blocked
	// on backpressure (pending counts blocked submissions too).
	waitPending(t, p, 6)
	closed := make(chan error, 1)
	go func() { closed <- p.Close() }()
	close(release)
	wg.Wait()
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("submitter %d: %v (blocked submissions must drain or reject, never fail)", i, err)
		}
	}
}

// TestPoolSubmitAllocs budgets the warm submit-to-reply round trip. Job
// records and their reply channels are pooled, the ring publishes without
// allocating, and the session itself runs on the platform's scratch, so
// the pool must add only a handful of allocations over the bare session.
func TestPoolSubmitAllocs(t *testing.T) {
	p := newPool(t, 1, 4)
	hello := testPAL("hello")
	if _, err := p.Run(hello, core.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		res, err := p.Run(hello, core.SessionOptions{})
		if err != nil || res.PALError != nil {
			t.Fatalf("%v %v", err, res.PALError)
		}
	})
	// The warm classic session itself costs ~19 allocs (budgeted at 32 in
	// core's TestSessionAllocsRegression); the pool's submit/reply framing
	// rides the job pool and must stay within a small constant of that.
	const budget = 40
	if avg > budget {
		t.Errorf("pool round trip costs %.0f allocs, budget %d", avg, budget)
	}
}

// BenchmarkPoolThroughputParallel drives the pool with open-loop parallel
// submitters (RunParallel spawns GOMAXPROCS goroutines), the shape the
// shard-parallel scaling gate measures in cmd/benchsessions.
func BenchmarkPoolThroughputParallel(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			p, err := New(Config{
				Shards:   shards,
				QueueLen: 64,
				Platform: core.PlatformConfig{Seed: "bench-pool"},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			// Distinct PAL names spread affinity across shards.
			pals := make([]pal.PAL, 8)
			for i := range pals {
				pals[i] = testPAL(fmt.Sprintf("bench-%d", i))
			}
			for _, pl := range pals {
				if _, err := p.Run(pl, core.SessionOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					res, err := p.Run(pals[i%len(pals)], core.SessionOptions{})
					if err != nil || res.PALError != nil {
						b.Errorf("%v %v", err, res.PALError)
						return
					}
					i++
				}
			})
		})
	}
}
