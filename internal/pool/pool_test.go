package pool

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flicker/internal/core"
	"flicker/internal/metrics"
	"flicker/internal/pal"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

func testPAL(name string) pal.PAL {
	return &pal.Func{
		PALName: name,
		Binary:  pal.DescriptorCode(name, "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return append([]byte(name+":"), input...), nil
		},
	}
}

func newPool(t *testing.T, shards, queueLen int) *Pool {
	t.Helper()
	p, err := New(Config{
		Shards:   shards,
		QueueLen: queueLen,
		Platform: core.PlatformConfig{Seed: "pool-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolRunsSessions(t *testing.T) {
	p := newPool(t, 4, 4)
	for i := 0; i < 8; i++ {
		res, err := p.Run(testPAL("hello"), core.SessionOptions{Input: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if res.PALError != nil {
			t.Fatal(res.PALError)
		}
		if string(res.Outputs) != "hello:x" {
			t.Fatalf("outputs = %q", res.Outputs)
		}
	}
	st := p.Stats()
	if st.Sessions != 8 {
		t.Fatalf("Stats().Sessions = %d, want 8", st.Sessions)
	}
	if st.Shards != 4 {
		t.Fatalf("Stats().Shards = %d, want 4", st.Shards)
	}
}

// Affinity: under no load, every session for one PAL lands on the same
// shard, keeping that platform's image and measurement caches warm.
func TestPoolAffinityRouting(t *testing.T) {
	p := newPool(t, 4, 4)
	hello := testPAL("hello")
	for i := 0; i < 6; i++ {
		if _, err := p.Run(hello, core.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	for i := 0; i < p.Shards(); i++ {
		st := p.Shard(i).Stats()
		if st.Sessions > 0 {
			busy++
			if st.Sessions != 6 {
				t.Errorf("home shard ran %d sessions, want all 6", st.Sessions)
			}
			if st.ImageBuilds != 1 {
				t.Errorf("home shard linked the image %d times, want 1", st.ImageBuilds)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("sessions spread over %d shards under no load, want 1 (affinity)", busy)
	}
	// Different PAL names spread across shards rather than piling onto one.
	homes := make(map[*shard]bool)
	for i := 0; i < 32; i++ {
		homes[p.homeShard(fmt.Sprintf("pal-%d", i))] = true
	}
	if len(homes) < 2 {
		t.Fatalf("32 PAL names all hash to one shard; affinity hash is degenerate")
	}
}

// Backpressure: with one shard and a tiny queue, TryRun must reject once
// the queue is full, and Run must block-then-complete rather than reject.
func TestPoolBackpressure(t *testing.T) {
	p := newPool(t, 1, 1)
	slow := &pal.Func{
		PALName: "slow",
		Binary:  pal.DescriptorCode("slow", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("done"), nil
		},
	}
	// Saturate: fire enough concurrent Runs that the single queue slot and
	// worker are both busy, then check TryRun sees ErrSaturated at least
	// once while the storm is in flight.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Run(slow, core.SessionOptions{}); err != nil {
				t.Errorf("Run under saturation: %v", err)
			}
		}()
	}
	sawSaturated := false
	for i := 0; i < 200 && !sawSaturated; i++ {
		_, err := p.TryRun(slow, core.SessionOptions{})
		if errors.Is(err, ErrSaturated) {
			sawSaturated = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if !sawSaturated {
		t.Log("TryRun never saw saturation (scheduler drained too fast); rejection path untested this run")
	}
	if st := p.Stats(); st.Sessions < 8 {
		t.Fatalf("only %d sessions completed", st.Sessions)
	}
}

// Drain-on-close: sessions queued before Close still execute; submissions
// after Close fail with ErrClosed.
func TestPoolDrainOnClose(t *testing.T) {
	p := newPool(t, 2, 8)
	hello := testPAL("hello")
	type out struct {
		res *core.SessionResult
		err error
	}
	results := make(chan out, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Run(hello, core.SessionOptions{})
			results <- out{res, err}
		}()
	}
	wg.Wait() // all 8 completed (Run is synchronous), now close
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("pre-close session failed: %v", r.err)
		}
	}
	if _, err := p.Run(hello, core.SessionOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	if _, err := p.TryRun(hello, core.SessionOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryRun after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// The -race hammer: sessions for several PALs racing with Stats() and
// metrics scrapes across all shards.
func TestPoolConcurrentHammer(t *testing.T) {
	p := newPool(t, 4, 4)
	pals := []pal.PAL{testPAL("a"), testPAL("b"), testPAL("c"), testPAL("d")}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := p.Run(pals[(w+i)%len(pals)], core.SessionOptions{Input: []byte{byte(i)}})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if res.PALError != nil {
					t.Errorf("worker %d: %v", w, res.PALError)
					return
				}
			}
		}(w)
	}
	// Concurrent observers: Stats and full metric scrapes while sessions run.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Stats()
				p.Metrics().Snapshot()
				p.Events().Events()
			}
		}
	}()
	wg.Wait()
	close(stop)
	obs.Wait()
	if st := p.Stats(); st.Sessions != 80 {
		t.Fatalf("Sessions = %d, want 80", st.Sessions)
	}
}

// Shared observability: all shards report into one registry, so the pool's
// session counter equals the per-shard sum.
func TestPoolSharedMetricsRegistry(t *testing.T) {
	p := newPool(t, 3, 4)
	for i := 0; i < 9; i++ {
		if _, err := p.Run(testPAL(fmt.Sprintf("pal-%d", i%3)), core.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	var submitted float64
	for _, f := range p.Metrics().Snapshot().Families {
		if f.Name == "flicker_pool_submissions_total" {
			for _, s := range f.Series {
				submitted += s.Value
			}
		}
	}
	if int(submitted) != 9 {
		t.Fatalf("flicker_pool_submissions_total = %v, want 9", submitted)
	}
	if st := p.Stats(); st.Sessions != 9 {
		t.Fatalf("Stats().Sessions = %d, want 9", st.Sessions)
	}
}

// --- Coalescer --------------------------------------------------------------

// snapshotCounter sums a counter family's series, optionally filtered to one
// label value.
func snapshotCounter(p *Pool, family, labelValue string) float64 {
	var total float64
	for _, f := range p.Metrics().Snapshot().Families {
		if f.Name != family {
			continue
		}
		for _, s := range f.Series {
			if labelValue != "" {
				match := false
				for _, v := range s.Labels {
					if v == labelValue {
						match = true
					}
				}
				if !match {
					continue
				}
			}
			total += s.Value
		}
	}
	return total
}

// waitPending polls until the pool reports n queued + in-flight jobs.
func waitPending(t *testing.T, p *Pool, n int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if p.Stats().Pending == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("Pending never reached %d (now %d)", n, p.Stats().Pending)
}

// The coalescer: jobs queued behind a busy worker flush as ONE batched
// session, incompatible jobs (here: one with a verifier nonce) fall back to
// singletons, and the batch metrics record the flush.
func TestPoolCoalescesQueuedJobs(t *testing.T) {
	p, err := New(Config{
		Shards:   1,
		QueueLen: 16,
		MaxBatch: 8,
		MaxWait:  20 * time.Millisecond,
		Platform: core.PlatformConfig{Seed: "pool-batch-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &pal.Func{
		PALName: "blocker",
		Binary:  pal.DescriptorCode("blocker", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			close(started)
			<-release
			return []byte("unblocked"), nil
		},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Run(blocker, core.SessionOptions{}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	<-started // the worker is now pinned inside the blocker session

	// Queue 4 coalescable jobs plus one pinned to a singleton by its nonce.
	batched := testPAL("batched")
	nonce := tpm.Digest{1, 2, 3}
	results := make([]*core.SessionResult, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := core.SessionOptions{Input: []byte{byte('a' + i)}}
			if i == 4 {
				opts.Nonce = &nonce
			}
			res, err := p.Run(batched, opts)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	waitPending(t, p, 6) // blocker in flight + 5 queued
	close(release)
	wg.Wait()

	for i := 0; i < 5; i++ {
		if results[i] == nil {
			t.Fatalf("job %d: no result", i)
		}
		if results[i].PALError != nil {
			t.Fatalf("job %d: %v", i, results[i].PALError)
		}
		want := "batched:" + string([]byte{byte('a' + i)})
		if string(results[i].Outputs) != want {
			t.Errorf("job %d outputs = %q, want %q (reply isolation)", i, results[i].Outputs, want)
		}
	}
	// 3 sessions total: the blocker, ONE batch of 4, and the nonce singleton.
	if n := p.Shard(0).Stats().Sessions; n != 3 {
		t.Errorf("shard ran %d sessions for 6 jobs, want 3 (coalesced)", n)
	}
	if v := snapshotCounter(p, "flicker_pool_batch_flush_total", ""); v != 1 {
		t.Errorf("flicker_pool_batch_flush_total = %v, want 1", v)
	}
	if results[4].Pipeline != "classic" {
		t.Errorf("nonce job ran on %q, want a singleton classic session", results[4].Pipeline)
	}
	if results[0].Pipeline != "classic-batch" {
		t.Errorf("coalesced job ran on %q, want classic-batch", results[0].Pipeline)
	}
}

// pinShardWorker occupies a single-shard pool's worker with a blocker
// session until the returned release func is called, so jobs queued in the
// meantime gather into one coalesced group when the worker comes back.
func pinShardWorker(t *testing.T, p *Pool, wg *sync.WaitGroup) func() {
	t.Helper()
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &pal.Func{
		PALName: "blocker",
		Binary:  pal.DescriptorCode("blocker", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			close(started)
			<-release
			return []byte("unblocked"), nil
		},
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Run(blocker, core.SessionOptions{}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	<-started
	return func() { close(release) }
}

// Coalescing must not make jobs time out that would succeed as singletons:
// the batch session arms ONE shared SLB Core timer for the whole group, so
// its budget scales with the group size.
func TestPoolBatchScalesTimerBudget(t *testing.T) {
	p, err := New(Config{
		Shards:   1,
		QueueLen: 16,
		MaxBatch: 4,
		MaxWait:  20 * time.Millisecond,
		Platform: core.PlatformConfig{Seed: "pool-batch-budget"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	release := pinShardWorker(t, p, &wg)

	// Each job burns 10ms of simulated CPU against a 15ms budget: fine
	// alone, but an unscaled shared timer would kill every member of a
	// 4-job batch after the first request.
	steady := &pal.Func{
		PALName: "steady",
		Binary:  pal.DescriptorCode("steady", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			env.ChargeCPU(simtime.Charge{Duration: 10 * time.Millisecond, Label: "cpu.steady"})
			return append([]byte("ok:"), input...), nil
		},
	}
	results := make([]*core.SessionResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(steady, core.SessionOptions{
				Input:      []byte{byte('a' + i)},
				MaxPALTime: 15 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
		waitPending(t, p, 2+i) // blocker in flight + i+1 queued, in order
	}
	release()
	wg.Wait()

	for i, res := range results {
		if res == nil {
			t.Fatalf("job %d: no result", i)
		}
		if res.PALError != nil {
			t.Errorf("job %d: %v (coalescing must not introduce timeouts)", i, res.PALError)
		} else if want := "ok:" + string([]byte{byte('a' + i)}); string(res.Outputs) != want {
			t.Errorf("job %d outputs = %q, want %q", i, res.Outputs, want)
		}
	}
	// The 4 jobs shared ONE batched session (plus the blocker's singleton).
	if n := p.Shard(0).Stats().Sessions; n != 2 {
		t.Errorf("shard ran %d sessions, want 2 (blocker + one batch)", n)
	}
}

// A batch-level timeout must not clobber members whose requests completed
// before the shared timer fired: they keep their replies, exactly as their
// own singleton sessions would have succeeded; the interrupted request and
// the ones that never ran see the timeout.
func TestPoolBatchTimeoutPreservesCompletedPrefix(t *testing.T) {
	p, err := New(Config{
		Shards:   1,
		QueueLen: 16,
		MaxBatch: 4,
		MaxWait:  20 * time.Millisecond,
		Platform: core.PlatformConfig{Seed: "pool-batch-timeout"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	release := pinShardWorker(t, p, &wg)

	// 'S' burns far past the whole scaled budget (4 x 50ms); the rest 10ms.
	mixed := &pal.Func{
		PALName: "mixed",
		Binary:  pal.DescriptorCode("mixed", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			d := 10 * time.Millisecond
			if input[0] == 'S' {
				d = time.Second
			}
			env.ChargeCPU(simtime.Charge{Duration: d, Label: "cpu.mixed"})
			return append([]byte("ok:"), input...), nil
		},
	}
	inputs := []byte{'a', 'b', 'S', 'c'}
	results := make([]*core.SessionResult, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(mixed, core.SessionOptions{
				Input:      []byte{inputs[i]},
				MaxPALTime: 50 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
		waitPending(t, p, 2+i) // pin the queue (and therefore batch) order
	}
	release()
	wg.Wait()

	// a and b completed before the timer fired: their replies survive.
	for i := 0; i < 2; i++ {
		if results[i] == nil {
			t.Fatalf("job %d: no result", i)
		}
		if results[i].PALError != nil {
			t.Fatalf("job %d PALError = %v; completed-prefix reply clobbered by the batch timeout", i, results[i].PALError)
		}
		if want := "ok:" + string(inputs[i]); string(results[i].Outputs) != want {
			t.Errorf("job %d outputs = %q, want %q", i, results[i].Outputs, want)
		}
	}
	// S (interrupted) and c (never ran) both report the timeout, no output.
	for i := 2; i < 4; i++ {
		if results[i] == nil {
			t.Fatalf("job %d: no result", i)
		}
		if !errors.Is(results[i].PALError, pal.ErrPALTimeout) {
			t.Errorf("job %d PALError = %v, want ErrPALTimeout", i, results[i].PALError)
		}
		if len(results[i].Outputs) != 0 {
			t.Errorf("job %d outputs = %q, want none", i, results[i].Outputs)
		}
	}
	if n := p.Shard(0).Stats().Sessions; n != 2 {
		t.Errorf("shard ran %d sessions, want 2 (blocker + one batch)", n)
	}
}

// MaxBatch=1 (the default) must keep exact singleton behavior.
func TestPoolDefaultIsSingleton(t *testing.T) {
	p := newPool(t, 1, 4)
	for i := 0; i < 4; i++ {
		if _, err := p.Run(testPAL("solo"), core.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.Shard(0).Stats().Sessions; n != 4 {
		t.Fatalf("sessions = %d, want 4", n)
	}
	if v := snapshotCounter(p, "flicker_pool_batch_flush_total", ""); v != 0 {
		t.Fatalf("batch flushes = %v with MaxBatch unset", v)
	}
}

// leastLoaded picks the shard with the fewest queued + in-flight sessions,
// first-wins on ties.
func TestPoolLeastLoaded(t *testing.T) {
	p := newPool(t, 3, 4)
	p.shards[0].pending.Store(5)
	p.shards[1].pending.Store(2)
	p.shards[2].pending.Store(7)
	if got := p.leastLoaded(); got != p.shards[1] {
		t.Fatalf("leastLoaded picked pending=%d, want shard 1 (pending=2)", got.pending.Load())
	}
	p.shards[1].pending.Store(5)
	p.shards[2].pending.Store(5)
	if got := p.leastLoaded(); got != p.shards[0] {
		t.Fatal("leastLoaded tie must resolve to the first shard")
	}
	for _, s := range p.shards {
		s.pending.Store(0)
	}
}

// Overflow spill: when a PAL's home queue is full, submission overflows to
// the least-loaded shard instead of blocking.
func TestPoolOverflowSpill(t *testing.T) {
	p, err := New(Config{
		Shards:   2,
		QueueLen: 1,
		Platform: core.PlatformConfig{Seed: "pool-spill-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Find names homed on shard 0.
	nameOn := func(idx int, prefix string) string {
		for i := 0; ; i++ {
			n := fmt.Sprintf("%s-%d", prefix, i)
			if p.homeShard(n) == p.shards[idx] {
				return n
			}
		}
	}
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &pal.Func{
		PALName: nameOn(0, "blocker"),
		Binary:  pal.DescriptorCode("blocker", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			close(started)
			<-release
			return []byte("unblocked"), nil
		},
	}
	spillName := nameOn(0, "spill")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Run(blocker, core.SessionOptions{}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	<-started

	// Fill shard 0's single queue slot...
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Run(testPAL(spillName), core.SessionOptions{}); err != nil {
			t.Errorf("queued job: %v", err)
		}
	}()
	waitPending(t, p, 2)
	// ...so this submission must spill to shard 1 and complete while the
	// home worker is still pinned.
	res, err := p.Run(testPAL(spillName), core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Outputs) != spillName+":" {
		t.Fatalf("spilled outputs = %q", res.Outputs)
	}
	if v := snapshotCounter(p, "flicker_pool_submissions_total", "overflow"); v < 1 {
		t.Errorf("overflow submissions = %v, want >= 1", v)
	}
	if n := p.Shard(1).Stats().Sessions; n != 1 {
		t.Errorf("overflow shard ran %d sessions, want 1", n)
	}
	close(release)
	wg.Wait()
}

// The queue-delay metric reads Config.WallClock, so a test-injected clock
// makes the histogram exactly reproducible: with a clock that steps 1ms per
// reading and strictly alternating enqueue/observe calls (sequential Run on
// one shard), every job's recorded delay is exactly one step.
func TestPoolQueueDelayDeterministic(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	step := time.Millisecond
	p, err := New(Config{
		Shards:   1,
		QueueLen: 4,
		Platform: core.PlatformConfig{Seed: "pool-test"},
		WallClock: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(step)
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const jobs = 5
	for i := 0; i < jobs; i++ {
		if _, err := p.Run(testPAL("clocked"), core.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.metQueueDelay.Count(); got != jobs {
		t.Fatalf("queue-delay observations = %d, want %d", got, jobs)
	}
	// Each job: one reading at enqueue, the next at dequeue — exactly one
	// 1ms step of delay, every run, on every machine.
	want := metrics.Seconds(step) * jobs
	if got := p.metQueueDelay.Sum(); got != want {
		t.Fatalf("queue-delay sum = %v, want exactly %v", got, want)
	}
}
