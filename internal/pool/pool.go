// Package pool scales Flicker session throughput beyond a single platform.
// A core.Platform faithfully serializes its sessions — the flicker-module
// owns one SLB buffer and the machine supports one late launch at a time —
// so a process is capped at one machine's session rate. The paper's own
// Section 7.5 points at the way out: secure execution confined to a subset
// of resources while the rest of the system does other work. The pool is
// the fleet-scale analogue — N independent simulated platforms behind one
// Run API.
//
// Sessions are routed by PAL affinity: a PAL's name hashes to a home shard,
// so repeat sessions land on the platform whose SLB image cache and SKINIT
// measurement cache are already warm for it. When the home shard's bounded
// queue is full, Run overflows to the least-loaded shard and, if every
// queue is full, blocks (backpressure); TryRun returns ErrSaturated
// instead. Close drains: queued sessions still execute, then the workers
// exit.
//
// The hot path is shard-parallel end to end: each shard owns a lock-free
// MPSC submit ring (see ring.go) and a private platform stack, submission
// takes no locks (an in-flight ticket counter and an atomic closed flag
// replace the old submit/close RWMutex), job records are pooled, and every
// per-session metric writes through a lock-free cell. All shards still
// share one metrics.Registry and one event log — per-shard cells fold at
// scrape time — so the existing observability surface (flicker serve,
// Prometheus exposition) aggregates the fleet without per-shard plumbing.
package pool

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flicker/internal/core"
	"flicker/internal/metrics"
	"flicker/internal/pal"
	"flicker/internal/sched"
)

// ErrClosed is returned by Run/TryRun after Close has begun.
var ErrClosed = errors.New("pool: closed")

// ErrSaturated is returned by TryRun when every shard's queue is full.
var ErrSaturated = errors.New("pool: all shard queues full")

// Config describes a pool.
type Config struct {
	// Shards is the number of independent platforms (default 1).
	Shards int
	// QueueLen bounds each shard's submission queue (default 16).
	QueueLen int
	// Platform is the template configuration for every shard. Seed is
	// suffixed per shard so the platforms are distinct but deterministic;
	// Metrics/Events are overridden with the pool's shared pair.
	Platform core.PlatformConfig
	// MaxBatch enables the adaptive coalescer: a shard worker gathers up
	// to MaxBatch queued jobs for the same PAL and runs them as ONE
	// batched session (group-commit style), amortizing the per-session
	// fixed costs. 0 or 1 disables coalescing (every job is a singleton
	// session). Jobs that cannot share a session — different PAL code,
	// incompatible options, a verifier nonce, fault injection, or a group
	// that would overflow the input page — fall back to singleton
	// sessions.
	MaxBatch int
	// MaxWait bounds how long a worker holds the first job of a group
	// open waiting for companions before flushing what it has (default
	// 1ms; only meaningful when MaxBatch > 1).
	MaxWait time.Duration
	// WallClock supplies the wall-clock reading used for the queue-delay
	// metric (default time.Now). Queue delay is real scheduling latency, not
	// simulated time, so it cannot come from simtime.Clock — but tests
	// inject a fake here to make the histogram deterministic.
	WallClock func() time.Time
}

// job is one queued session. Records are pooled and recycled (the done
// channel included: each cycle is exactly one send and one receive), so a
// warm submit allocates nothing. A job with batch set is a pre-formed group
// (RunBatch): it rides the same ring to the same affinity shard but
// executes as one RunSessionBatch call and never coalesces with neighbors.
type job struct {
	pl    pal.PAL
	opts  core.SessionOptions
	batch [][]byte
	enq   time.Time
	done  chan result
}

type result struct {
	res *core.SessionResult
	br  *core.BatchResult
	err error
}

// shard is one platform plus its submit ring and the ring's park/wake
// state. All the shard's hot-path metrics write through private lock-free
// cells, so two shards never contend on the shared registry.
type shard struct {
	platform *core.Platform
	ring     *ring
	// pending counts queued plus in-flight sessions, for least-loaded
	// overflow routing.
	pending atomic.Int64

	// Consumer parking: the worker sets sleeping before blocking on wake;
	// a producer that publishes while sleeping is set CASes it back and
	// sends the (cap-1, non-blocking) wake token. A busy worker costs
	// producers one atomic load and no channel operation.
	sleeping atomic.Bool
	wake     chan struct{}

	// Producer backpressure: a blocked Run registers in waiters, and the
	// worker offers a space token after every pop while waiters > 0.
	waiters atomic.Int64
	space   chan struct{}

	// Per-shard cells on the pool's shared series (see metrics/cells.go).
	queueDelay *metrics.Histogram
	batchSize  *metrics.Histogram
	batchFlush map[string]*metrics.Counter
}

// push publishes j to the shard's ring and wakes its worker if parked.
func (s *shard) push(j *job) bool {
	if !s.ring.tryPush(j) {
		return false
	}
	s.wakeWorker()
	return true
}

// pop takes one job and, when submitters are blocked on backpressure,
// offers them the freed slot.
func (s *shard) pop() (*job, bool) {
	j, ok := s.ring.pop()
	if ok && s.waiters.Load() > 0 {
		select {
		case s.space <- struct{}{}:
		default:
		}
	}
	return j, ok
}

// wakeWorker rouses a parked worker. The CAS makes the wake single-shot
// per park: concurrent producers race to flip sleeping and only the winner
// touches the channel.
func (s *shard) wakeWorker() {
	if s.sleeping.CompareAndSwap(true, false) {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// Pool is a sharded session pool.
type Pool struct {
	shards   []*shard
	metrics  *metrics.Registry
	events   *metrics.EventLog
	wg       sync.WaitGroup
	maxBatch int
	maxWait  time.Duration

	// The submit/close handshake, lock-free: submitters hold an inflight
	// ticket across submit; Close flips closed and workers drain until the
	// rings are empty and no ticket remains. A submitter that raced past
	// the closed check completes its enqueue (its ticket keeps the workers
	// alive), exactly as the old RWMutex read side did.
	closed   atomic.Bool
	inflight atomic.Int64

	// jobs recycles job records (with their reply channels) across
	// submissions.
	jobs sync.Pool

	// now is Config.WallClock (default time.Now), used only for the
	// queue-delay metric.
	now func() time.Time

	// Submission counters are resolved to cell-backed handles once at
	// construction — the label sets are closed (route: home|overflow) and
	// submit is the pool's hot path, shared by every producer goroutine.
	metSubmitHome     *metrics.Counter
	metSubmitOverflow *metrics.Counter
	metRejected       *metrics.Counter
	// Base (locked) handles for the per-shard celled series; kept for
	// reads — Count/Sum on these fold every shard's cell in.
	metBatchSize  *metrics.Histogram
	metBatchFlush map[string]*metrics.Counter
	metQueueDelay *metrics.Histogram
}

// New builds and boots a pool of cfg.Shards platforms.
func New(cfg Config) (*Pool, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 16
	}
	reg := cfg.Platform.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	events := cfg.Platform.Events
	if events == nil {
		events = metrics.NewEventLog(0)
	}
	seed := cfg.Platform.Seed
	if seed == "" {
		seed = "flicker"
	}
	// The group-commit knobs are the shared sched.Coalescer discipline —
	// the fabric controller normalizes its wire-frame coalescer the same way.
	co := sched.Coalescer{MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait}.Normalize()
	cfg.MaxBatch, cfg.MaxWait = co.MaxBatch, co.MaxWait
	now := cfg.WallClock
	if now == nil {
		//flickervet:allow walltime(queue delay is real scheduling latency; tests inject Config.WallClock)
		now = time.Now
	}
	submit := reg.Counter("flicker_pool_submissions_total",
		"Sessions submitted to the pool, by route (home = PAL-affinity shard).", "route")
	flush := reg.Counter("flicker_pool_batch_flush_total",
		"Coalescer group flushes, by reason.", "reason")
	p := &Pool{
		metrics:           reg,
		events:            events,
		maxBatch:          cfg.MaxBatch,
		maxWait:           cfg.MaxWait,
		now:               now,
		metSubmitHome:     submit.With("home").Cell(),
		metSubmitOverflow: submit.With("overflow").Cell(),
		metRejected: reg.Counter("flicker_pool_rejected_total",
			"TryRun submissions rejected because every shard queue was full.").With().Cell(),
		metBatchSize: reg.Histogram("flicker_pool_batch_size",
			"Jobs coalesced per flushed group (1 = singleton fallback).",
			[]float64{1, 2, 4, 8, 16, 32}).With(),
		metBatchFlush: map[string]*metrics.Counter{
			sched.FlushFull:    flush.With(sched.FlushFull),
			sched.FlushTimeout: flush.With(sched.FlushTimeout),
			sched.FlushDrain:   flush.With(sched.FlushDrain),
		},
		metQueueDelay: reg.Histogram("flicker_pool_queue_delay_seconds",
			"Wall-clock time a job spent queued before its session started.",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}).With(),
	}
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Platform
		scfg.Seed = fmt.Sprintf("%s-shard%d", seed, i)
		scfg.Metrics = reg
		scfg.Events = events
		plat, err := core.NewPlatform(scfg)
		if err != nil {
			return nil, fmt.Errorf("pool: shard %d: %w", i, err)
		}
		p.shards = append(p.shards, &shard{
			platform:   plat,
			ring:       newRing(cfg.QueueLen),
			wake:       make(chan struct{}, 1),
			space:      make(chan struct{}, 1),
			queueDelay: p.metQueueDelay.Cell(),
			batchSize:  p.metBatchSize.Cell(),
			batchFlush: map[string]*metrics.Counter{
				sched.FlushFull:    p.metBatchFlush[sched.FlushFull].Cell(),
				sched.FlushTimeout: p.metBatchFlush[sched.FlushTimeout].Cell(),
				sched.FlushDrain:   p.metBatchFlush[sched.FlushDrain].Cell(),
			},
		})
	}
	for _, s := range p.shards {
		p.wg.Add(1)
		go p.worker(s)
	}
	return p, nil
}

// drained reports the worker exit condition: Close has begun and no
// submitter ticket is in flight, so no further publish can occur.
func (p *Pool) drained() bool {
	return p.closed.Load() && p.inflight.Load() == 0
}

// take blocks until a job is available, or returns false once the pool is
// closed and fully drained.
func (p *Pool) take(s *shard) (*job, bool) {
	for {
		if j, ok := s.pop(); ok {
			return j, true
		}
		if p.drained() {
			// A publish may have landed between the failed pop and the
			// drained check; take it before exiting.
			if j, ok := s.pop(); ok {
				return j, true
			}
			return nil, false
		}
		s.sleeping.Store(true)
		// Re-check after announcing the park: a producer that published
		// before seeing sleeping is caught here; one that published after
		// will CAS sleeping back and send the wake.
		if !s.ring.empty() || p.drained() {
			s.sleeping.Store(false)
			continue
		}
		<-s.wake
		s.sleeping.Store(false)
	}
}

// worker drains one shard's ring until the pool is closed and drained.
// With coalescing enabled it gathers a group per iteration; otherwise each
// job is one singleton session.
func (p *Pool) worker(s *shard) {
	defer p.wg.Done()
	for {
		j, ok := p.take(s)
		if !ok {
			return
		}
		if p.maxBatch <= 1 {
			p.runSingleton(s, j)
			continue
		}
		group, reason := p.gather(s, j)
		p.flush(s, group, reason)
	}
}

// runSingleton executes one job as its own session (or, for a pre-formed
// batch job, one batched session).
func (p *Pool) runSingleton(s *shard, j *job) {
	s.queueDelay.ObserveDurationExemplar(p.now().Sub(j.enq), j.opts.TraceID)
	if j.batch != nil {
		p.runBatchJob(s, j)
		return
	}
	res, err := s.platform.RunSession(j.pl, j.opts)
	s.pending.Add(-1)
	j.done <- result{res: res, err: err}
}

// runBatchJob executes a pre-formed RunBatch group as one batched session.
// The group was assembled by the caller (the fabric controller's wire-frame
// coalescer), so it bypasses gather/flush but shares the shard worker, the
// affinity routing, and the batch-size histogram with coalesced groups.
func (p *Pool) runBatchJob(s *shard, j *job) {
	s.batchSize.ObserveExemplar(float64(len(j.batch)), j.opts.TraceID)
	br, err := s.platform.RunSessionBatch(j.pl, core.Batch{Requests: j.batch}, j.opts)
	s.pending.Add(-1)
	j.done <- result{br: br, err: err}
}

// gather collects up to MaxBatch jobs, holding the first for at most
// MaxWait (group commit): a burst flushes immediately at MaxBatch, a lone
// request waits one MaxWait and runs alone, and a draining pool flushes
// whatever is in hand.
func (p *Pool) gather(s *shard, first *job) ([]*job, string) {
	group := []*job{first}
	timer := time.NewTimer(p.maxWait)
	defer timer.Stop()
	for len(group) < p.maxBatch {
		if j, ok := s.pop(); ok {
			group = append(group, j)
			continue
		}
		if p.drained() {
			if j, ok := s.pop(); ok {
				group = append(group, j)
				continue
			}
			return group, sched.FlushDrain
		}
		s.sleeping.Store(true)
		if !s.ring.empty() || p.drained() {
			s.sleeping.Store(false)
			continue
		}
		select {
		case <-s.wake:
			s.sleeping.Store(false)
		case <-timer.C:
			s.sleeping.Store(false)
			return group, sched.FlushTimeout
		}
	}
	return group, sched.FlushFull
}

// batchable reports whether a job may share a session with others at all:
// a verifier nonce, fault injection, or an injector pins a job to its own
// singleton session, and a pre-formed batch is already a group.
func batchable(j *job) bool {
	return j.batch == nil && j.opts.Nonce == nil && j.opts.FailPhase == "" && j.opts.Injector == nil
}

// coalescable reports whether b can join a group keyed by a: same measured
// identity (name + code + extra code) and identical session options.
func coalescable(a, b *job) bool {
	if !batchable(a) || !batchable(b) {
		return false
	}
	if a.pl.Name() != b.pl.Name() || !bytes.Equal(a.pl.Code(), b.pl.Code()) {
		return false
	}
	ae, aok := a.pl.(pal.LargePAL)
	be, bok := b.pl.(pal.LargePAL)
	if aok != bok || (aok && !bytes.Equal(ae.ExtraCode(), be.ExtraCode())) {
		return false
	}
	// Tracing fields (TraceID, Observer) deliberately do not split groups:
	// runBatch merges every member's observer, so a traced job coalesces
	// with untraced companions and still sees the shared session's spans.
	return a.opts.Sandbox == b.opts.Sandbox &&
		a.opts.HeapSize == b.opts.HeapSize &&
		a.opts.TwoStage == b.opts.TwoStage &&
		a.opts.MaxPALTime == b.opts.MaxPALTime
}

// flush partitions a gathered group by PAL affinity and option
// compatibility (bounded by what fits the input page) and runs each
// partition: one batched session for 2+ jobs, a singleton session for a
// lone job.
func (p *Pool) flush(s *shard, group []*job, reason string) {
	now := p.now()
	for _, j := range group {
		s.queueDelay.ObserveDurationExemplar(now.Sub(j.enq), j.opts.TraceID)
	}
	used := make([]bool, len(group))
	for i := range group {
		if used[i] {
			continue
		}
		used[i] = true
		part := []*job{group[i]}
		sizes := []int{len(group[i].opts.Input)}
		if batchable(group[i]) {
			for k := i + 1; k < len(group) && len(part) < p.maxBatch; k++ {
				if used[k] || !coalescable(group[i], group[k]) {
					continue
				}
				if !core.BatchInputFits(0, append(sizes, len(group[k].opts.Input))...) {
					continue
				}
				used[k] = true
				part = append(part, group[k])
				sizes = append(sizes, len(group[k].opts.Input))
			}
		}
		s.batchSize.ObserveExemplar(float64(len(part)), firstTraceID(part))
		if len(part) == 1 {
			p.runSingletonNoDelay(s, part[0])
			continue
		}
		s.batchFlush[reason].Inc()
		p.runBatch(s, part)
	}
}

// runSingletonNoDelay is runSingleton minus the queue-delay observation
// (flush already recorded it for the whole group).
func (p *Pool) runSingletonNoDelay(s *shard, j *job) {
	if j.batch != nil {
		p.runBatchJob(s, j)
		return
	}
	res, err := s.platform.RunSession(j.pl, j.opts)
	s.pending.Add(-1)
	j.done <- result{res: res, err: err}
}

// runBatch executes a partition as one batched session and fans the
// per-request replies back out to the waiting submitters. Each job's
// SessionResult is the shared session's, narrowed to its own reply, so a
// caller cannot observe another request's output. On session abort, every
// member of the group sees the abort error — the batch engine's
// completed-prefix contract is exercised directly via RunSessionBatch.
func (p *Pool) runBatch(s *shard, part []*job) {
	reqs := make([][]byte, len(part))
	for i, j := range part {
		reqs[i] = j.opts.Input
	}
	opts := part[0].opts
	opts.Input = nil
	// Every traced member observes the shared session: merge the group's
	// per-job observers, and pin the first traced member's ID for deep-layer
	// exemplar attribution (one physical session, one active trace tag).
	var obs []core.Observer
	var traceID string
	for _, j := range part {
		if j.opts.Observer != nil {
			obs = append(obs, j.opts.Observer)
		}
		if traceID == "" {
			traceID = j.opts.TraceID
		}
	}
	opts.Observer = core.CombineObservers(obs...)
	opts.TraceID = traceID
	if opts.MaxPALTime > 0 {
		// Each member was promised MaxPALTime as its own session; the batch
		// arms ONE shared SLB Core timer for the whole group, so scale the
		// budget by the group size. A job that would finish as a singleton
		// must not time out merely because it was coalesced.
		opts.MaxPALTime *= time.Duration(len(part))
	}
	br, err := s.platform.RunSessionBatch(part[0].pl, core.Batch{Requests: reqs}, opts)
	for i, j := range part {
		s.pending.Add(-1)
		if err != nil {
			j.done <- result{err: err}
			continue
		}
		r := *br.Session
		switch {
		case br.Session.PALError == nil:
			r.Outputs = br.Replies[i].Output
			r.PALError = br.Replies[i].Err
		case errors.Is(br.Session.PALError, pal.ErrPALTimeout) && i < br.Completed && br.Replies[i].Err == nil:
			// The shared timer fired mid-batch, but this member's request
			// had already completed — it keeps its reply, exactly as its
			// own singleton session would have succeeded. Members at or
			// past the interruption point see the timeout below.
			r.Outputs = br.Replies[i].Output
			r.PALError = nil
		default:
			// A batch-level PAL failure (OpenBatch/CloseBatch, or the
			// timeout for requests it actually interrupted) reaches every
			// remaining member as its PALError.
			r.Outputs = nil
		}
		j.done <- result{res: &r}
	}
}

// firstTraceID returns the first traced member's ID ("" when the whole
// group is untraced), linking the batch-size histogram to a trace that rode
// in that group.
func firstTraceID(part []*job) string {
	for _, j := range part {
		if j.opts.TraceID != "" {
			return j.opts.TraceID
		}
	}
	return ""
}

// homeShard returns the PAL's affinity shard via the shared scheduling
// core (sched.Home: FNV-1a over the PAL name). Affinity keeps a PAL's
// sessions on the platform whose image and measurement caches are warm for
// it, and the fabric controller applies the same function across hosts, so
// placement policy has exactly one definition.
func (p *Pool) homeShard(name string) *shard {
	return p.shards[sched.Home(name, len(p.shards))]
}

// leastLoaded returns the shard with the fewest queued + in-flight
// sessions.
func (p *Pool) leastLoaded() *shard {
	return p.shards[sched.LeastLoaded(len(p.shards), p.shardLoad)]
}

// shardLoad is the sched load callback: shard i's queued + in-flight count.
func (p *Pool) shardLoad(i int) int64 { return p.shards[i].pending.Load() }

// newJob checks a pooled record out (allocating only on a cold pool) and
// stamps it for this submission.
func (p *Pool) newJob(pl pal.PAL, opts core.SessionOptions) *job {
	j, _ := p.jobs.Get().(*job)
	if j == nil {
		j = &job{done: make(chan result, 1)}
	}
	j.pl = pl
	j.opts = opts
	j.batch = nil
	j.enq = p.now()
	return j
}

// putJob recycles a job record after its reply has been received (or its
// submission rejected). The done channel is reused: each cycle is exactly
// one send matched by one receive.
func (p *Pool) putJob(j *job) {
	j.pl = nil
	j.opts = core.SessionOptions{}
	j.batch = nil
	p.jobs.Put(j)
}

// submitDone retires a submitter's inflight ticket. The last ticket out
// after Close wakes every parked worker so they can observe the drain
// condition and exit.
func (p *Pool) submitDone() {
	if p.inflight.Add(-1) == 0 && p.closed.Load() {
		for _, s := range p.shards {
			s.wakeWorker()
		}
	}
}

// submit routes one job: non-blocking try on the home shard, then the
// least-loaded shard; if both rings are full, either block on the home
// shard (wait=true, backpressure) or fail with ErrSaturated. The fast path
// is lock-free: an inflight ticket, one ring CAS, one cell increment.
func (p *Pool) submit(pl pal.PAL, opts core.SessionOptions, batch [][]byte, wait bool) (*job, error) {
	p.inflight.Add(1)
	defer p.submitDone()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	j := p.newJob(pl, opts)
	j.batch = batch
	home := p.homeShard(pl.Name())
	home.pending.Add(1)
	if home.push(j) {
		p.metSubmitHome.Inc()
		return j, nil
	}
	home.pending.Add(-1)
	if alt := p.leastLoaded(); alt != home {
		alt.pending.Add(1)
		if alt.push(j) {
			p.metSubmitOverflow.Inc()
			return j, nil
		}
		alt.pending.Add(-1)
	}
	if !wait {
		p.metRejected.Inc()
		p.putJob(j)
		return nil, ErrSaturated
	}
	// Backpressure: spin-register on the home shard until its ring has
	// room. The worker keeps draining while we wait (our inflight ticket
	// holds off the drain exit), and offers a space token after each pop
	// while waiters is nonzero, so a blocked submitter always lands.
	home.pending.Add(1)
	for {
		if home.push(j) {
			p.metSubmitHome.Inc()
			return j, nil
		}
		home.waiters.Add(1)
		// Re-try after registering: a pop between the failed push and the
		// registration would otherwise strand us before the first token.
		if home.push(j) {
			home.waiters.Add(-1)
			p.metSubmitHome.Inc()
			return j, nil
		}
		<-home.space
		home.waiters.Add(-1)
	}
}

// Run executes one session on the PAL's affinity shard (or, under load, the
// least-loaded shard), blocking for queue space when the pool is saturated.
func (p *Pool) Run(pl pal.PAL, opts core.SessionOptions) (*core.SessionResult, error) {
	j, err := p.submit(pl, opts, nil, true)
	if err != nil {
		return nil, err
	}
	r := <-j.done
	p.putJob(j)
	return r.res, r.err
}

// TryRun is Run without backpressure: it returns ErrSaturated instead of
// blocking when every shard queue is full.
func (p *Pool) TryRun(pl pal.PAL, opts core.SessionOptions) (*core.SessionResult, error) {
	j, err := p.submit(pl, opts, nil, false)
	if err != nil {
		return nil, err
	}
	r := <-j.done
	p.putJob(j)
	return r.res, r.err
}

// RunBatch executes a pre-formed group of requests as ONE batched session on
// the PAL's affinity shard — one SKINIT, one Seal/Unseal for the whole group.
// The caller has already decided the grouping (the fabric host runs each
// runBatch wire frame through here), so the group bypasses the coalescer and
// executes verbatim. opts.Input is ignored; each request's input rides in
// reqs. The BatchResult carries the shared session plus per-request replies,
// with the engine's completed-prefix contract intact: on abort, Completed
// counts the requests that finished and their Replies are preserved.
func (p *Pool) RunBatch(pl pal.PAL, reqs [][]byte, opts core.SessionOptions) (*core.BatchResult, error) {
	if len(reqs) == 0 {
		return nil, errors.New("pool: empty batch")
	}
	opts.Input = nil
	j, err := p.submit(pl, opts, reqs, true)
	if err != nil {
		return nil, err
	}
	r := <-j.done
	p.putJob(j)
	return r.br, r.err
}

// Close drains the pool: no new submissions are accepted, queued sessions
// still execute (including those of submitters that raced past the closed
// check — their inflight tickets keep the workers alive), and Close
// returns once every worker has exited. Closing twice is a no-op.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for _, s := range p.shards {
		s.wakeWorker()
	}
	p.wg.Wait()
	return nil
}

// Shards returns the number of platforms in the pool.
func (p *Pool) Shards() int { return len(p.shards) }

// Shard returns shard i's platform, for tests and direct inspection.
func (p *Pool) Shard(i int) *core.Platform { return p.shards[i].platform }

// Metrics returns the shared registry every shard reports into.
func (p *Pool) Metrics() *metrics.Registry { return p.metrics }

// Events returns the shared security event log.
func (p *Pool) Events() *metrics.EventLog { return p.events }

// Stats aggregates the fleet.
type Stats struct {
	// Shards is the pool width.
	Shards int `json:"shards"`
	// Sessions and Aborted sum core.SessionStats over all shards.
	Sessions int `json:"sessions"`
	Aborted  int `json:"aborted"`
	// Pending is the current queued + in-flight session count.
	Pending int `json:"pending"`
	// PerShard holds each platform's own aggregates, indexed by shard.
	PerShard []core.SessionStats `json:"per_shard"`
}

// Stats snapshots the pool's aggregate session statistics.
func (p *Pool) Stats() Stats {
	st := Stats{Shards: len(p.shards)}
	for _, s := range p.shards {
		ps := s.platform.Stats()
		st.Sessions += ps.Sessions
		st.Aborted += ps.Aborted
		st.Pending += int(s.pending.Load())
		st.PerShard = append(st.PerShard, ps)
	}
	return st
}
