// Package pal defines the programming model for Pieces of Application Logic
// and the module library they link against (the paper's Section 5). A PAL
// implements the PAL interface; its Code bytes are its measured identity;
// Run executes inside a Flicker session with an Env that exposes exactly
// the capabilities the paper's modules provide: the TPM driver and
// utilities, physical memory access (optionally sandboxed by the OS
// Protection module), a malloc-style heap, the crypto library, and the
// secure-channel helpers.
package pal

import (
	"fmt"
)

// PAL is a Piece of Application Logic.
type PAL interface {
	// Name is a human-readable label (not part of the measured identity).
	Name() string
	// Code returns the PAL's deterministic binary identity: the bytes that
	// are linked after the SLB Core and measured by SKINIT. Two PALs with
	// equal Code are, for attestation purposes, the same PAL.
	Code() []byte
	// Run executes the PAL's application-specific logic inside a session.
	Run(env *Env, input []byte) ([]byte, error)
}

// LargePAL is an optional interface for PALs whose code does not fit in
// the 64 KB SLB window: ExtraCode returns the "Additional PAL Code" placed
// above the parameter pages, which the measured SLB's preparatory code
// protects (DEV) and measures (PCR 17) before use.
type LargePAL interface {
	PAL
	ExtraCode() []byte
}

// DescriptorCode builds a canonical, deterministic code identity for a PAL
// from its name, version, linked modules, and static configuration. It is
// the simulation's stand-in for the compiled PAL binary: any change to the
// version, module list, or embedded configuration changes the measurement,
// exactly as recompiling would.
func DescriptorCode(name, version string, modules []string, config []byte) []byte {
	out := []byte("FLICKER-PAL\x00")
	appendField := func(b []byte) {
		out = append(out, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
		out = append(out, b...)
	}
	appendField([]byte(name))
	appendField([]byte(version))
	appendField([]byte(fmt.Sprint(modules)))
	appendField(config)
	return out
}

// Func adapts a function to the PAL interface for small PALs.
type Func struct {
	PALName string
	Binary  []byte
	// ExtraBinary, when non-empty, is additional PAL code beyond the 64 KB
	// SLB (Func then satisfies LargePAL).
	ExtraBinary []byte
	Fn          func(env *Env, input []byte) ([]byte, error)
}

// Name implements PAL.
func (f *Func) Name() string { return f.PALName }

// Code implements PAL.
func (f *Func) Code() []byte { return f.Binary }

// Run implements PAL.
func (f *Func) Run(env *Env, input []byte) ([]byte, error) { return f.Fn(env, input) }

// ExtraCode implements LargePAL.
func (f *Func) ExtraCode() []byte { return f.ExtraBinary }

// ModuleInfo describes one entry of the PAL module library, with the line
// and size accounting from Figure 6 of the paper.
type ModuleInfo struct {
	Name        string
	LOC         int
	SizeKB      float64
	Mandatory   bool
	Description string
}

// ModuleInventory reproduces Figure 6: the modules that can be included in
// a PAL, each adding code to the PAL's TCB. Only the SLB Core is mandatory.
func ModuleInventory() []ModuleInfo {
	return []ModuleInfo{
		{"SLB Core", 94, 0.312, true, "Prepare environment, execute PAL, clean environment, resume OS"},
		{"OS Protection", 5, 0.046, false, "Memory protection, ring 3 PAL execution"},
		{"TPM Driver", 216, 0.825, false, "Communication with the TPM"},
		{"TPM Utilities", 889, 9.427, false, "Performs TPM operations, e.g., Seal, Unseal, GetRand, PCR Extend"},
		{"Crypto", 2262, 31.380, false, "General purpose cryptographic operations, RSA, SHA-1, SHA-512 etc."},
		{"Memory Management", 657, 12.511, false, "Implementation of malloc/free/realloc"},
		{"Secure Channel", 292, 2.021, false, "Generates a keypair, seals private key, returns public key"},
	}
}

// TCBSize sums the lines of code for a set of linked modules, the number
// the paper's "as few as 250 lines" headline is about (SLB Core + OS
// Protection + the application's own logic).
func TCBSize(modules []string) (loc int, sizeKB float64, err error) {
	inv := make(map[string]ModuleInfo)
	for _, m := range ModuleInventory() {
		inv[m.Name] = m
	}
	seen := map[string]bool{}
	// SLB Core is always included.
	loc = inv["SLB Core"].LOC
	sizeKB = inv["SLB Core"].SizeKB
	seen["SLB Core"] = true
	for _, name := range modules {
		if seen[name] {
			continue
		}
		mi, ok := inv[name]
		if !ok {
			return 0, 0, fmt.Errorf("pal: unknown module %q", name)
		}
		seen[name] = true
		loc += mi.LOC
		sizeKB += mi.SizeKB
	}
	return loc, sizeKB, nil
}
