package pal

import (
	"errors"
	"fmt"

	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// Secure Channel module (Section 4.4.2): "the PAL generates an asymmetric
// keypair within the protection of the Flicker session and then transmits
// the public key to the remote party. The private key is sealed for a
// future invocation of the same PAL."
//
// The two halves of the protocol are GenerateChannelKeypair (run inside the
// first Flicker session) and OpenChannel (run inside a later session of the
// same PAL, to recover the private key and decrypt a message encrypted
// under the public key).

// ChannelKeypair is the output of the setup session.
type ChannelKeypair struct {
	// Public is the channel public key, returned as a PAL output and
	// covered by the session's attestation.
	Public *palcrypto.RSAPublicKey
	// SealedPrivate is the private key sealed to this PAL's PCR-17 value;
	// the untrusted OS stores it between sessions (sdata in Figure 7).
	SealedPrivate []byte
}

// GenerateChannelKeypair creates an RSA keypair inside the session, seals
// the private key to the current PAL identity, and returns both halves.
// The key generation cost (Figure 9a: 185.7 ms for 1024 bits) is charged
// to the platform clock.
func GenerateChannelKeypair(env *Env, bits int) (*ChannelKeypair, error) {
	env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSAKeyGen1024, Label: "cpu.keygen"})
	key, err := palcrypto.GenerateRSAKey(env.RNG(), bits)
	if err != nil {
		return nil, fmt.Errorf("pal: channel keygen: %w", err)
	}
	sealed, err := env.SealToSelf(palcrypto.MarshalPrivateKey(key))
	if err != nil {
		return nil, fmt.Errorf("pal: sealing channel key: %w", err)
	}
	return &ChannelKeypair{
		Public:        &key.RSAPublicKey,
		SealedPrivate: sealed,
	}, nil
}

// OpenChannel recovers a sealed channel private key inside a later session
// of the same PAL and decrypts one PKCS#1 message. The unseal only
// succeeds when PCR 17 holds the sealing PAL's value, which is the entire
// security argument of the SSH protocol's second session.
func OpenChannel(env *Env, sealedPrivate, ciphertext []byte) ([]byte, error) {
	raw, err := env.Unseal(sealedPrivate)
	if err != nil {
		return nil, fmt.Errorf("pal: unsealing channel key: %w", err)
	}
	key, err := palcrypto.UnmarshalPrivateKey(raw)
	if err != nil {
		return nil, fmt.Errorf("pal: corrupt channel key: %w", err)
	}
	// The recovered key lives only for this one decryption; wipe it (and
	// the DER bytes it was parsed from) before the session returns.
	defer key.Zero()
	defer clear(raw)
	env.ChargeCPU(simtime.Charge{Duration: env.Profile().RSADecrypt1024, Label: "cpu.rsadecrypt"})
	pt, err := palcrypto.DecryptPKCS1(key, ciphertext)
	if err != nil {
		return nil, errors.New("pal: channel decryption failed")
	}
	return pt, nil
}

// RecoverChannelKey unseals and parses the channel private key without
// decrypting anything (for PALs that need the key for signing, like the CA).
func RecoverChannelKey(env *Env, sealedPrivate []byte) (*palcrypto.RSAPrivateKey, error) {
	raw, err := env.Unseal(sealedPrivate)
	if err != nil {
		return nil, fmt.Errorf("pal: unsealing channel key: %w", err)
	}
	key, err := palcrypto.UnmarshalPrivateKey(raw)
	if err != nil {
		return nil, fmt.Errorf("pal: corrupt channel key: %w", err)
	}
	return key, nil
}
