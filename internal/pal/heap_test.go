package pal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeapMallocFree(t *testing.T) {
	h := NewHeap(4096)
	a, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if err := h.Write(a, bytes.Repeat([]byte{0xAA}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := h.Write(b, bytes.Repeat([]byte{0xBB}, 200)); err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(a, 100)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 100)) {
		t.Fatal("allocation a corrupted")
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	// b still intact after freeing a.
	got, _ = h.Read(b, 200)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xBB}, 200)) {
		t.Fatal("allocation b corrupted by free of a")
	}
}

func TestHeapExhaustionAndCoalesce(t *testing.T) {
	h := NewHeap(1024)
	var ptrs []int
	for {
		p, err := h.Malloc(64)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) < 8 {
		t.Fatalf("only %d allocations fit in 1 KB", len(ptrs))
	}
	// Free everything; coalescing must let a large allocation succeed.
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Malloc(900); err != nil {
		t.Fatalf("large malloc after full free failed: %v", err)
	}
}

func TestHeapRealloc(t *testing.T) {
	h := NewHeap(4096)
	p, _ := h.Malloc(40)
	h.Write(p, []byte("hello, flicker heap!"))
	// Grow: contents preserved.
	q, err := h.Realloc(p, 400)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.Read(q, 20)
	if !bytes.Equal(got, []byte("hello, flicker heap!")) {
		t.Fatal("realloc lost contents")
	}
	// Shrink in place.
	r, err := h.Realloc(q, 10)
	if err != nil || r != q {
		t.Fatalf("shrink moved block: %v %v", r, err)
	}
	// Realloc(0, n) == Malloc.
	s, err := h.Realloc(0, 16)
	if err != nil || s == 0 {
		t.Fatal("realloc(0) failed")
	}
	// Realloc of freed block rejected.
	h.Free(r)
	if _, err := h.Realloc(r, 100); err == nil {
		t.Fatal("realloc of freed block accepted")
	}
}

func TestHeapInvalidOps(t *testing.T) {
	h := NewHeap(1024)
	if _, err := h.Malloc(0); err == nil {
		t.Error("malloc(0) accepted")
	}
	if _, err := h.Malloc(-5); err == nil {
		t.Error("malloc(-5) accepted")
	}
	if err := h.Free(12345); err == nil {
		t.Error("free of bogus pointer accepted")
	}
	p, _ := h.Malloc(16)
	if err := h.Write(p, make([]byte, 64)); err == nil {
		t.Error("overflowing write accepted")
	}
	if _, err := h.Read(p, 64); err == nil {
		t.Error("overflowing read accepted")
	}
}

func TestHeapWipe(t *testing.T) {
	h := NewHeap(1024)
	p, _ := h.Malloc(32)
	h.Write(p, []byte("secret key material........"))
	h.Wipe()
	// Everything is free again and zeroed.
	q, err := h.Malloc(900)
	if err != nil {
		t.Fatalf("post-wipe malloc: %v", err)
	}
	got, _ := h.Read(q, 900)
	if !bytes.Equal(got, make([]byte, 900)) {
		t.Fatal("wipe left residue")
	}
}

// Property: a random sequence of mallocs and frees never corrupts data:
// every live allocation reads back exactly what was written.
func TestHeapFuzzProperty(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint16
		Which uint8
	}
	f := func(ops []op) bool {
		h := NewHeap(64 * 1024)
		type live struct {
			ptr  int
			data []byte
		}
		var lives []live
		seed := byte(1)
		for _, o := range ops {
			if o.Alloc {
				n := int(o.Size)%512 + 1
				p, err := h.Malloc(n)
				if err != nil {
					continue
				}
				data := bytes.Repeat([]byte{seed}, n)
				seed++
				if h.Write(p, data) != nil {
					return false
				}
				lives = append(lives, live{p, data})
			} else if len(lives) > 0 {
				i := int(o.Which) % len(lives)
				if h.Free(lives[i].ptr) != nil {
					return false
				}
				lives = append(lives[:i], lives[i+1:]...)
			}
			// Validate all live blocks.
			for _, l := range lives {
				got, err := h.Read(l.ptr, len(l.data))
				if err != nil || !bytes.Equal(got, l.data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTCBSize(t *testing.T) {
	// The paper's headline: Flicker adds "as few as 250 lines" — SLB Core
	// alone is 94; with OS Protection it is 99; the mandatory core stays
	// under 250.
	loc, _, err := TCBSize(nil)
	if err != nil || loc != 94 {
		t.Fatalf("bare TCB = %d (%v), want 94", loc, err)
	}
	loc, _, err = TCBSize([]string{"OS Protection"})
	if err != nil || loc != 99 {
		t.Fatalf("TCB with OS protection = %d", loc)
	}
	if loc >= 250 {
		t.Fatalf("minimal TCB %d lines exceeds the paper's 250-line bound", loc)
	}
	// Duplicate modules are counted once; SLB Core is implicit.
	a, _, _ := TCBSize([]string{"Crypto", "Crypto", "SLB Core"})
	b, _, _ := TCBSize([]string{"Crypto"})
	if a != b {
		t.Fatal("duplicate module counting")
	}
	if _, _, err := TCBSize([]string{"Nonexistent"}); err == nil {
		t.Fatal("unknown module accepted")
	}
	// Full stack (the SSH PAL's footprint) is everything.
	all := []string{"OS Protection", "TPM Driver", "TPM Utilities", "Crypto", "Memory Management", "Secure Channel"}
	loc, kb, _ := TCBSize(all)
	if loc != 94+5+216+889+2262+657+292 {
		t.Fatalf("full TCB LoC = %d", loc)
	}
	if kb < 56 || kb > 57 {
		t.Fatalf("full TCB size = %.3f KB", kb)
	}
}

func TestDescriptorCode(t *testing.T) {
	a := DescriptorCode("ssh", "1.0", []string{"Crypto"}, []byte("cfg"))
	b := DescriptorCode("ssh", "1.0", []string{"Crypto"}, []byte("cfg"))
	if !bytes.Equal(a, b) {
		t.Fatal("descriptor not deterministic")
	}
	variants := [][]byte{
		DescriptorCode("ssh2", "1.0", []string{"Crypto"}, []byte("cfg")),
		DescriptorCode("ssh", "1.1", []string{"Crypto"}, []byte("cfg")),
		DescriptorCode("ssh", "1.0", []string{"Crypto", "TPM Driver"}, []byte("cfg")),
		DescriptorCode("ssh", "1.0", []string{"Crypto"}, []byte("cfg2")),
	}
	for i, v := range variants {
		if bytes.Equal(a, v) {
			t.Errorf("variant %d did not change the descriptor", i)
		}
	}
}
