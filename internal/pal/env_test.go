package pal

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"flicker/internal/hw/cpu"
	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// envRig assembles a minimal machine + TPM and returns a ready Env plus its
// parts, simulating what the SLB Core does after SKINIT.
type envRig struct {
	clock   *simtime.Clock
	profile *simtime.Profile
	machine *cpu.Machine
	tpm     *tpm.TPM
	slbBase uint32
}

func newEnvRig(t *testing.T) *envRig {
	t.Helper()
	clock := simtime.New()
	prof := simtime.ProfileBroadcom()
	tp, err := tpm.New(clock, prof, tpm.Options{Seed: []byte("env-test")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(clock, prof, tis.NewBus(tp), cpu.Config{Cores: 1, MemSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return &envRig{clock: clock, profile: prof, machine: m, tpm: tp, slbBase: 0x200000}
}

func (r *envRig) env(t *testing.T, cfg EnvConfig) *Env {
	t.Helper()
	cfg.Clock = r.clock
	cfg.Profile = r.profile
	cfg.Mem = r.machine.Mem
	cfg.Core = r.machine.BSP()
	if cfg.TPM == nil {
		cfg.TPM = tpm.NewClient(r.machine.TPMBus, tis.Locality2, []byte("env"))
	}
	cfg.SLBBase = r.slbBase
	cfg.SLBLen = 8192
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(EnvConfig{}); err == nil {
		t.Fatal("incomplete config accepted")
	}
}

func TestEnvRNGSeededFromTPM(t *testing.T) {
	r := newEnvRig(t)
	before := r.clock.Now()
	e := r.env(t, EnvConfig{})
	// NewEnv issued a GetRandom (1.3 ms on the Broadcom profile).
	if got := r.clock.Now() - before; got != r.profile.TPMGetRandom {
		t.Errorf("env setup charged %v, want %v", got, r.profile.TPMGetRandom)
	}
	a := e.Random(16)
	b := e.Random(16)
	if bytes.Equal(a, b) {
		t.Error("successive Random draws identical")
	}
	if e.RNG() == nil {
		t.Error("RNG not exposed")
	}
	// Explicit seed bypasses the TPM call and is deterministic.
	e2 := r.env(t, EnvConfig{RNGSeed: []byte("fixed")})
	e3 := r.env(t, EnvConfig{RNGSeed: []byte("fixed")})
	if !bytes.Equal(e2.Random(8), e3.Random(8)) {
		t.Error("seeded RNGs diverge")
	}
}

func TestEnvMemoryAndSandbox(t *testing.T) {
	r := newEnvRig(t)
	open := r.env(t, EnvConfig{})
	if err := open.WriteMem(0x1000, []byte("anywhere")); err != nil {
		t.Fatalf("unsandboxed write: %v", err)
	}
	got, err := open.ReadMem(0x1000, 8)
	if err != nil || !bytes.Equal(got, []byte("anywhere")) {
		t.Fatalf("read back: %q %v", got, err)
	}
	if open.Sandboxed() {
		t.Error("Sandboxed() true without OS Protection")
	}

	sbx := r.env(t, EnvConfig{Sandbox: true})
	if !sbx.Sandboxed() {
		t.Fatal("sandbox not active")
	}
	if r.machine.BSP().Ring() != 3 {
		t.Error("PAL not in ring 3")
	}
	var sf *SegFault
	if _, err := sbx.ReadMem(0x1000, 8); !errors.As(err, &sf) {
		t.Errorf("out-of-bounds read: %v", err)
	}
	if err := sbx.WriteMem(r.slbBase-4, make([]byte, 8)); !errors.As(err, &sf) {
		t.Errorf("straddling write: %v", err)
	}
	// Inside the PAL's region (including the parameter pages): allowed.
	if err := sbx.WriteMem(sbx.InputAddr(), []byte("in")); err != nil {
		t.Errorf("parameter page write: %v", err)
	}
	if err := sbx.WriteMem(sbx.OutputAddr(), []byte("out")); err != nil {
		t.Errorf("output page write: %v", err)
	}
	sbx.ExitSandbox()
	if r.machine.BSP().Ring() != 0 {
		t.Error("ExitSandbox did not restore ring 0")
	}
	if sf.Error() == "" {
		t.Error("SegFault has no message")
	}
}

func TestEnvHashCharges(t *testing.T) {
	r := newEnvRig(t)
	e := r.env(t, EnvConfig{})
	data := bytes.Repeat([]byte{0x5A}, 10000)
	if err := e.WriteMem(0x4000, data); err != nil {
		t.Fatal(err)
	}
	before := r.clock.Now()
	d, err := e.HashMem(0x4000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if d != palcrypto.SHA1Sum(data) {
		t.Error("HashMem digest wrong")
	}
	if got := r.clock.Now() - before; got != r.profile.CPUHashCost(len(data)) {
		t.Errorf("HashMem charged %v", got)
	}
	if e.HashBytes(data) != palcrypto.SHA1Sum(data) {
		t.Error("HashBytes digest wrong")
	}
	if _, err := e.HashMem(uint32(r.machine.Mem.Size()), 16); err == nil {
		t.Error("out-of-range HashMem accepted")
	}
}

func TestEnvSealUnsealAndPCR(t *testing.T) {
	r := newEnvRig(t)
	// Put PCR 17 into a launch state first.
	if _, err := tpm.RunHashSequence(r.machine.TPMBus, []byte("env pal")); err != nil {
		t.Fatal(err)
	}
	e := r.env(t, EnvConfig{})
	blob, err := e.SealToSelf([]byte("pal secret"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Unseal(blob)
	if err != nil || !bytes.Equal(got, []byte("pal secret")) {
		t.Fatalf("unseal: %q %v", got, err)
	}
	// Seal to another PAL's identity: our own unseal fails.
	other := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum([]byte("other pal")))
	blob2, err := e.SealToPCR17([]byte("for other"), &other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Unseal(blob2); err == nil {
		t.Fatal("unsealed a blob bound to another PAL")
	}
	// Extend + read.
	v0, err := e.PCR17()
	if err != nil {
		t.Fatal(err)
	}
	m := palcrypto.SHA1Sum([]byte("result"))
	if err := e.ExtendPCR17(m); err != nil {
		t.Fatal(err)
	}
	v1, _ := e.PCR17()
	if v1 != tpm.ExtendDigest(v0, m) {
		t.Fatal("ExtendPCR17 algebra wrong")
	}
}

func TestEnvOutputsAndAddresses(t *testing.T) {
	r := newEnvRig(t)
	e := r.env(t, EnvConfig{})
	e.SetOutput([]byte("result bytes"))
	if !bytes.Equal(e.Output(), []byte("result bytes")) {
		t.Error("staged output lost")
	}
	if e.OutputAddr() != r.slbBase+uint32(slb.OutputsOffset) {
		t.Error("OutputAddr wrong")
	}
	if e.InputAddr() != r.slbBase+uint32(slb.InputsOffset) {
		t.Error("InputAddr wrong")
	}
	if e.SLBBase() != r.slbBase {
		t.Error("SLBBase wrong")
	}
	if e.Profile() != r.profile {
		t.Error("Profile not exposed")
	}
}

func TestEnvTimerDirect(t *testing.T) {
	r := newEnvRig(t)
	e := r.env(t, EnvConfig{MaxPALTime: 10 * time.Millisecond})
	if e.TimedOut() {
		t.Fatal("fresh env already timed out")
	}
	e.ChargeCPU(simtime.Charge{Duration: 20 * time.Millisecond, Label: "spin"})
	if !e.TimedOut() {
		t.Fatal("TimedOut false after overrun")
	}
	if _, err := e.HashMem(r.slbBase, 4); !errors.Is(err, ErrPALTimeout) {
		t.Errorf("HashMem after timeout: %v", err)
	}
	if _, err := e.SealToSelf([]byte("x")); !errors.Is(err, ErrPALTimeout) {
		t.Errorf("Seal after timeout: %v", err)
	}
	if _, err := e.Unseal([]byte("x")); !errors.Is(err, ErrPALTimeout) {
		t.Errorf("Unseal after timeout: %v", err)
	}
	if err := e.StashContext([]byte("x")); !errors.Is(err, ErrPALTimeout) {
		t.Errorf("Stash after timeout: %v", err)
	}
	if _, err := e.FetchContext(); !errors.Is(err, ErrPALTimeout) {
		t.Errorf("Fetch after timeout: %v", err)
	}
}

func TestEnvContextStoreGates(t *testing.T) {
	r := newEnvRig(t)
	// No machine wired: ErrNoHWContext.
	e := r.env(t, EnvConfig{})
	if err := e.StashContext([]byte("x")); !errors.Is(err, cpu.ErrNoHWContext) {
		t.Errorf("stash without machine: %v", err)
	}
	if _, err := e.FetchContext(); !errors.Is(err, cpu.ErrNoHWContext) {
		t.Errorf("fetch without machine: %v", err)
	}
	if e.HWContextAvailable() {
		t.Error("HW context claimed without a machine")
	}
	// Machine wired but 2008-era profile: still unavailable.
	e2 := r.env(t, EnvConfig{Machine: r.machine})
	if e2.HWContextAvailable() {
		t.Error("HW context claimed on Broadcom profile")
	}
}

func TestSecureChannelModuleDirect(t *testing.T) {
	r := newEnvRig(t)
	if _, err := tpm.RunHashSequence(r.machine.TPMBus, []byte("channel pal")); err != nil {
		t.Fatal(err)
	}
	e := r.env(t, EnvConfig{RNGSeed: []byte("chan")})
	kp, err := GenerateChannelKeypair(e, 512)
	if err != nil {
		t.Fatal(err)
	}
	// A remote party encrypts under the public key...
	ct, err := palcrypto.EncryptPKCS1(palcrypto.NewPRNG([]byte("remote")), kp.Public, []byte("the password"))
	if err != nil {
		t.Fatal(err)
	}
	// ...and a later session of the same PAL opens the channel.
	pt, err := OpenChannel(e, kp.SealedPrivate, ct)
	if err != nil || !bytes.Equal(pt, []byte("the password")) {
		t.Fatalf("OpenChannel: %q %v", pt, err)
	}
	// RecoverChannelKey yields a signing-capable key.
	key, err := RecoverChannelKey(e, kp.SealedPrivate)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := palcrypto.SignPKCS1SHA1(key, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := palcrypto.VerifyPKCS1SHA1(kp.Public, []byte("msg"), sig); err != nil {
		t.Fatal("recovered key does not match public half")
	}
	// Corrupt sealed blob: all paths fail cleanly.
	bad := append([]byte(nil), kp.SealedPrivate...)
	bad[len(bad)/2] ^= 1
	if _, err := OpenChannel(e, bad, ct); err == nil {
		t.Error("OpenChannel accepted corrupt sdata")
	}
	if _, err := RecoverChannelKey(e, bad); err == nil {
		t.Error("RecoverChannelKey accepted corrupt sdata")
	}
	// Garbage ciphertext: uniform failure.
	if _, err := OpenChannel(e, kp.SealedPrivate, []byte("junk")); err == nil {
		t.Error("OpenChannel accepted garbage ciphertext")
	}
}
