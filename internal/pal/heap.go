package pal

import (
	"errors"
	"fmt"
)

// Heap is the Memory Management module: "a small version of
// malloc/free/realloc for use by applications. The memory region used as
// the heap is simply a large global buffer" (Section 5.1.2).
//
// It is a classic first-fit free-list allocator with block headers,
// splitting on allocation and coalescing on free. Offsets into the buffer
// play the role of pointers.
type Heap struct {
	buf  []byte
	head int // offset of the first block header
}

// Block header layout: size (4 bytes, payload size) | free flag (1 byte) |
// padding to 8. The payload follows the header.
const (
	hdrSize   = 8
	minSplit  = 16 // do not split off blocks smaller than this payload
	heapAlign = 8
)

// NewHeap creates a heap over a fresh global buffer of n bytes.
func NewHeap(n int) *Heap {
	if n < hdrSize+minSplit {
		n = hdrSize + minSplit
	}
	h := &Heap{buf: make([]byte, n)}
	h.setHdr(0, n-hdrSize, true)
	return h
}

func (h *Heap) setHdr(off, payload int, free bool) {
	b := h.buf[off:]
	b[0] = byte(payload >> 24)
	b[1] = byte(payload >> 16)
	b[2] = byte(payload >> 8)
	b[3] = byte(payload)
	if free {
		b[4] = 1
	} else {
		b[4] = 0
	}
}

func (h *Heap) hdr(off int) (payload int, free bool) {
	b := h.buf[off:]
	payload = int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	return payload, b[4] == 1
}

// ErrOutOfMemory is returned when no free block can satisfy a request.
var ErrOutOfMemory = errors.New("pal: heap out of memory")

// Malloc allocates n bytes and returns the payload offset.
func (h *Heap) Malloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pal: malloc(%d)", n)
	}
	n = (n + heapAlign - 1) &^ (heapAlign - 1)
	off := h.head
	for off < len(h.buf) {
		payload, free := h.hdr(off)
		if free && payload >= n {
			// Split if the remainder is worth keeping.
			if payload-n >= hdrSize+minSplit {
				h.setHdr(off, n, false)
				h.setHdr(off+hdrSize+n, payload-n-hdrSize, true)
			} else {
				h.setHdr(off, payload, false)
			}
			return off + hdrSize, nil
		}
		off += hdrSize + payload
	}
	return 0, ErrOutOfMemory
}

// Free releases an allocation by payload offset, coalescing with any free
// successor blocks.
func (h *Heap) Free(ptr int) error {
	off, err := h.blockFor(ptr)
	if err != nil {
		return err
	}
	payload, free := h.hdr(off)
	if free {
		return fmt.Errorf("pal: double free at %#x", ptr)
	}
	h.setHdr(off, payload, true)
	h.coalesce()
	return nil
}

// Realloc resizes an allocation, moving it if needed; the old contents are
// preserved up to min(old, new) bytes. Realloc(0, n) behaves like Malloc.
func (h *Heap) Realloc(ptr, n int) (int, error) {
	if ptr == 0 {
		return h.Malloc(n)
	}
	off, err := h.blockFor(ptr)
	if err != nil {
		return 0, err
	}
	payload, free := h.hdr(off)
	if free {
		return 0, fmt.Errorf("pal: realloc of freed block at %#x", ptr)
	}
	need := (n + heapAlign - 1) &^ (heapAlign - 1)
	if need <= payload {
		return ptr, nil // shrink in place
	}
	newPtr, err := h.Malloc(n)
	if err != nil {
		return 0, err
	}
	copy(h.buf[newPtr:newPtr+payload], h.buf[ptr:ptr+payload])
	if err := h.Free(ptr); err != nil {
		return 0, err
	}
	return newPtr, nil
}

// blockFor validates a payload offset and returns its header offset.
func (h *Heap) blockFor(ptr int) (int, error) {
	off := h.head
	for off < len(h.buf) {
		payload, _ := h.hdr(off)
		if off+hdrSize == ptr {
			return off, nil
		}
		off += hdrSize + payload
	}
	return 0, fmt.Errorf("pal: invalid heap pointer %#x", ptr)
}

// coalesce merges adjacent free blocks.
func (h *Heap) coalesce() {
	off := h.head
	for off < len(h.buf) {
		payload, free := h.hdr(off)
		next := off + hdrSize + payload
		if free && next < len(h.buf) {
			np, nf := h.hdr(next)
			if nf {
				h.setHdr(off, payload+hdrSize+np, true)
				continue // try to absorb the block after that too
			}
		}
		off = next
	}
}

// Write stores data at a payload offset, bounds-checked against the block.
func (h *Heap) Write(ptr int, data []byte) error {
	off, err := h.blockFor(ptr)
	if err != nil {
		return err
	}
	payload, free := h.hdr(off)
	if free {
		return fmt.Errorf("pal: write to freed block at %#x", ptr)
	}
	if len(data) > payload {
		return fmt.Errorf("pal: heap write of %d bytes into %d-byte block", len(data), payload)
	}
	copy(h.buf[ptr:], data)
	return nil
}

// Read copies n bytes from a payload offset.
func (h *Heap) Read(ptr, n int) ([]byte, error) {
	off, err := h.blockFor(ptr)
	if err != nil {
		return nil, err
	}
	payload, free := h.hdr(off)
	if free {
		return nil, fmt.Errorf("pal: read from freed block at %#x", ptr)
	}
	if n > payload {
		return nil, fmt.Errorf("pal: heap read of %d bytes from %d-byte block", n, payload)
	}
	out := make([]byte, n)
	copy(out, h.buf[ptr:])
	return out, nil
}

// FreeBytes returns the total free payload capacity (fragmentation aware).
func (h *Heap) FreeBytes() int {
	total := 0
	off := h.head
	for off < len(h.buf) {
		payload, free := h.hdr(off)
		if free {
			total += payload
		}
		off += hdrSize + payload
	}
	return total
}

// Wipe zeroes the entire heap buffer: the SLB Core's cleanup phase erases
// "any sensitive data left in memory by the PAL".
func (h *Heap) Wipe() {
	for i := range h.buf {
		h.buf[i] = 0
	}
	h.setHdr(0, len(h.buf)-hdrSize, true)
}
