package pal

import (
	"errors"
	"fmt"
	"time"

	"flicker/internal/hw/cpu"
	"flicker/internal/hw/memory"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// Env is the execution environment a PAL sees inside a Flicker session. It
// exposes the machine through the same narrow interfaces the paper's PAL
// modules provide. The SLB Core constructs it; application code receives it
// in PAL.Run.
type Env struct {
	clock   *simtime.Clock
	profile *simtime.Profile
	mem     *memory.PhysMem
	core    *cpu.Core

	// TPM is the PAL's TPM driver, bound to locality 2.
	TPM *tpm.Client

	slbBase  uint32
	slbLen   int
	extraLen int

	// OS Protection state: when sandboxed, memory accesses are restricted
	// to [slbBase, slbBase+slb.ParamAreaLen) and the PAL runs in ring 3.
	sandboxed bool

	// Heap is nil unless the Memory Management module is linked.
	Heap *Heap

	rng     *palcrypto.PRNG
	outputs []byte

	// machine gives access to next-generation hardware features (the
	// protected context store); nil in minimal environments.
	machine *cpu.Machine
	// deadline is the absolute simulated time at which the SLB Core's
	// timer fires (zero = no limit). See Section 5.1.2: "We are also
	// investigating techniques to limit a PAL's execution time using timer
	// interrupts in the SLB Core."
	deadline time.Duration
	// identity is the hardware-latched PCR-17 launch value.
	identity tpm.Digest
}

// EnvConfig is what the SLB Core needs to build an Env.
type EnvConfig struct {
	Clock   *simtime.Clock
	Profile *simtime.Profile
	Mem     *memory.PhysMem
	Core    *cpu.Core
	TPM     *tpm.Client
	SLBBase uint32
	SLBLen  int
	// Sandbox enables the OS Protection module: ring-3 execution with
	// segment limits confining the PAL to its own memory region.
	Sandbox bool
	// HeapSize, if non-zero, links the Memory Management module with a
	// heap of that many bytes.
	HeapSize int
	// RNGSeed seeds the PAL-side PRNG. The paper's PALs seed theirs from
	// TPM GetRandom; NewEnv does the same when this is nil.
	RNGSeed []byte
	// Machine, if set, exposes next-generation hardware features (the
	// protected context store of [19]) to the PAL.
	Machine *cpu.Machine
	// MaxPALTime arms the SLB Core's execution timer: once the PAL has
	// consumed this much simulated time, its heavyweight operations fail
	// with ErrPALTimeout. Zero disables the timer. Budgets must leave room
	// for TPM operations ("a PAL may need some minimal amount of time to
	// allow TPM operations to complete").
	MaxPALTime time.Duration
	// Identity is the PAL's launch identity (PCR 17 after SKINIT), latched
	// by the hardware for the protected context store.
	Identity tpm.Digest
	// ExtraLen is the size of the additional-PAL-code region above the
	// parameter pages; the OS Protection sandbox includes it.
	ExtraLen int
}

// NewEnv prepares a PAL execution environment (the SLB Core's
// initialization phase).
func NewEnv(cfg EnvConfig) (*Env, error) {
	e := &Env{}
	if err := e.Reinit(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reinit re-prepares an Env in place for a new session, reusing the
// receiver's PRNG state and (shape-permitting) heap buffer. It is
// behaviorally identical to NewEnv — the session engine keeps one Env per
// platform so a warm session does not rebuild the environment on the heap.
func (e *Env) Reinit(cfg EnvConfig) error {
	if cfg.Clock == nil || cfg.Profile == nil || cfg.Mem == nil || cfg.TPM == nil {
		return errors.New("pal: incomplete environment config")
	}
	e.clock = cfg.Clock
	e.profile = cfg.Profile
	e.mem = cfg.Mem
	e.core = cfg.Core
	e.TPM = cfg.TPM
	e.slbBase = cfg.SLBBase
	e.slbLen = cfg.SLBLen
	e.extraLen = cfg.ExtraLen
	e.sandboxed = cfg.Sandbox
	e.outputs = nil
	e.deadline = 0
	if cfg.HeapSize > 0 {
		// NewHeap clamps tiny sizes; mirror it so a matching request
		// reuses the buffer it produced.
		n := cfg.HeapSize
		if n < hdrSize+minSplit {
			n = hdrSize + minSplit
		}
		if e.Heap != nil && len(e.Heap.buf) == n {
			e.Heap.setHdr(0, n-hdrSize, true)
		} else {
			e.Heap = NewHeap(cfg.HeapSize)
		}
	} else {
		e.Heap = nil
	}
	seed := cfg.RNGSeed
	if seed == nil {
		// "We also make one call to TPM GetRandom to obtain 128 bytes of
		// random data (it is used to seed a pseudorandom number
		// generator)" — Section 7.4.1.
		b, err := cfg.TPM.GetRandom(128)
		if err != nil {
			return fmt.Errorf("pal: seeding PRNG from TPM: %w", err)
		}
		seed = b
	}
	if e.rng == nil {
		e.rng = palcrypto.NewPRNG(seed)
	} else {
		e.rng.Reseed(seed)
	}
	e.machine = cfg.Machine
	e.identity = cfg.Identity
	if cfg.MaxPALTime > 0 {
		e.deadline = cfg.Clock.Now() + cfg.MaxPALTime
	}
	if cfg.Sandbox && cfg.Core != nil {
		// OS Protection: run the PAL in ring 3 behind segment limits.
		cfg.Core.SetRing(3)
		cfg.Core.SetSegments(cfg.SLBBase, uint32(slb.ParamAreaLen+cfg.ExtraLen-1))
	}
	return nil
}

// ExitSandbox returns the core to ring 0 (the SLB Core's call-gate path
// after the PAL exits).
func (e *Env) ExitSandbox() {
	if e.sandboxed && e.core != nil {
		e.core.SetRing(0)
	}
}

// Sandboxed reports whether the OS Protection module is active.
func (e *Env) Sandboxed() bool { return e.sandboxed }

// SLBBase returns the physical base address of the SLB.
func (e *Env) SLBBase() uint32 { return e.slbBase }

// errSegFault is returned for sandbox violations.
type SegFault struct {
	Addr uint32
	Len  int
}

// Error renders the fault like a #GP report.
func (s *SegFault) Error() string {
	return fmt.Sprintf("pal: #GP: access [%#x,+%d) outside PAL segment limits", s.Addr, s.Len)
}

// checkBounds enforces the OS Protection segment limits.
func (e *Env) checkBounds(addr uint32, n int) error {
	if !e.sandboxed {
		return nil
	}
	lo := e.slbBase
	hi := e.slbBase + uint32(slb.ParamAreaLen+e.extraLen)
	if addr < lo || uint32(int(addr)+n) > hi || int(addr)+n < int(addr) {
		return &SegFault{Addr: addr, Len: n}
	}
	return nil
}

// ReadMem reads physical memory. Without OS Protection a PAL "can access
// the machine's entire physical memory" (Section 4.2); with it, accesses
// outside the PAL's region fault.
func (e *Env) ReadMem(addr uint32, n int) ([]byte, error) {
	if err := e.checkBounds(addr, n); err != nil {
		return nil, err
	}
	return e.mem.Read(addr, n)
}

// WriteMem writes physical memory, subject to the same sandbox rules.
func (e *Env) WriteMem(addr uint32, data []byte) error {
	if err := e.checkBounds(addr, len(data)); err != nil {
		return err
	}
	return e.mem.Write(addr, data)
}

// ChargeCPU accounts simulated CPU time spent in application logic.
func (e *Env) ChargeCPU(d simtime.Charge) {
	e.clock.Advance(d.Duration, d.Label)
}

// Profile exposes the platform cost model so PALs charge realistic time
// for their heavyweight operations (RSA, hashing).
func (e *Env) Profile() *simtime.Profile { return e.profile }

// HashMem hashes n bytes of physical memory on the main CPU, charging the
// calibrated per-byte cost (this is the rootkit detector's workhorse).
func (e *Env) HashMem(addr uint32, n int) (tpm.Digest, error) {
	if err := e.checkTimer(); err != nil {
		return tpm.Digest{}, err
	}
	data, err := e.ReadMem(addr, n)
	if err != nil {
		return tpm.Digest{}, err
	}
	e.clock.Advance(e.profile.CPUHashCost(n), "cpu.hash")
	return palcrypto.SHA1Sum(data), nil
}

// HashBytes hashes a buffer on the main CPU with cost accounting.
func (e *Env) HashBytes(data []byte) tpm.Digest {
	e.clock.Advance(e.profile.CPUHashCost(len(data)), "cpu.hash")
	return palcrypto.SHA1Sum(data)
}

// Random returns n bytes from the PAL's PRNG (seeded from the TPM).
func (e *Env) Random(n int) []byte { return e.rng.Bytes(n) }

// RNG exposes the PAL PRNG for key generation.
func (e *Env) RNG() *palcrypto.PRNG { return e.rng }

// ExtendPCR17 extends a measurement into PCR 17 (TPM Utilities module).
func (e *Env) ExtendPCR17(m tpm.Digest) error {
	_, err := e.TPM.Extend(17, m)
	return err
}

// PCR17 reads the current PCR 17 value.
func (e *Env) PCR17() (tpm.Digest, error) {
	return e.TPM.PCRRead(17)
}

// SealToSelf seals data so that only this PAL — identified by the current
// PCR 17 value — can unseal it in a future Flicker session (Section 4.3.1).
func (e *Env) SealToSelf(data []byte) ([]byte, error) {
	return e.SealToPCR17(data, nil)
}

// SealToPCR17 seals data to a future session whose PCR 17 holds value v;
// v == nil means the current PCR 17 value (seal to self). Sealing to
// another PAL P' uses v = H(0x00^20 || H(P')).
func (e *Env) SealToPCR17(data []byte, v *tpm.Digest) ([]byte, error) {
	if err := e.checkTimer(); err != nil {
		return nil, err
	}
	var target tpm.Digest
	if v == nil {
		cur, err := e.PCR17()
		if err != nil {
			return nil, err
		}
		target = cur
	} else {
		target = *v
	}
	sel := tpm.SelectPCRs(17)
	dar := tpm.CompositeHash(sel, map[int]tpm.Digest{17: target})
	return e.TPM.Seal(tpm.Digest{}, sel, dar, data)
}

// Unseal opens a sealed blob; it fails unless this PAL's PCR state matches
// the blob's binding.
func (e *Env) Unseal(blob []byte) ([]byte, error) {
	if err := e.checkTimer(); err != nil {
		return nil, err
	}
	return e.TPM.Unseal(tpm.Digest{}, blob)
}

// SetOutput stages the PAL's output parameters; the SLB Core copies them to
// the well-known output page and extends their measurement into PCR 17.
func (e *Env) SetOutput(out []byte) {
	e.outputs = append([]byte(nil), out...)
}

// Output returns the staged output.
func (e *Env) Output() []byte { return e.outputs }

// ResetOutput clears any staged output. The batched request loop calls it
// at each request boundary so a request that stages nothing is observed as
// such — exactly what a singleton session's fresh Env would show — rather
// than inheriting the previous request's staged reply.
func (e *Env) ResetOutput() { e.outputs = nil }

// OutputAddr returns the physical address of the well-known output page
// ("the second 4-KB page above the 64-KB SLB").
func (e *Env) OutputAddr() uint32 { return e.slbBase + uint32(slb.OutputsOffset) }

// InputAddr returns the physical address of the input parameter page.
func (e *Env) InputAddr() uint32 { return e.slbBase + uint32(slb.InputsOffset) }

// ErrPALTimeout is returned by Env operations once the SLB Core's timer
// budget is exhausted; the session reports it as the PAL's failure.
var ErrPALTimeout = errors.New("pal: execution time budget exceeded (SLB Core timer fired)")

// checkTimer enforces the execution budget at Env operation boundaries
// (the simulation's granularity for the timer interrupt).
func (e *Env) checkTimer() error {
	if e.deadline > 0 && e.clock.Now() >= e.deadline {
		return ErrPALTimeout
	}
	return nil
}

// TimedOut reports whether the execution budget has been exhausted.
func (e *Env) TimedOut() bool {
	return e.deadline > 0 && e.clock.Now() >= e.deadline
}

// Identity returns the hardware-latched PAL identity (PCR 17 at launch).
func (e *Env) Identity() tpm.Digest { return e.identity }

// StashContext stores PAL state in the next-generation hardware's protected
// context store ([19]), keyed by this PAL's launch identity. On 2008-era
// profiles it fails with cpu.ErrNoHWContext; PALs fall back to sealed
// storage.
func (e *Env) StashContext(data []byte) error {
	if err := e.checkTimer(); err != nil {
		return err
	}
	if e.machine == nil {
		return cpu.ErrNoHWContext
	}
	return e.machine.StashWrite(e.identity, data)
}

// FetchContext retrieves PAL state from the protected context store.
func (e *Env) FetchContext() ([]byte, error) {
	if err := e.checkTimer(); err != nil {
		return nil, err
	}
	if e.machine == nil {
		return nil, cpu.ErrNoHWContext
	}
	return e.machine.StashRead(e.identity)
}

// HWContextAvailable reports whether the platform offers the protected
// context store.
func (e *Env) HWContextAvailable() bool {
	return e.machine != nil && e.profile.HWContextProtection
}

// ExtraCodeAddr returns the physical address of the additional-PAL-code
// region (meaningful only for large PALs).
func (e *Env) ExtraCodeAddr() uint32 { return e.slbBase + uint32(slb.ExtraCodeOffset) }
