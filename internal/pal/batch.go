package pal

import "fmt"

// Batched PAL execution (the paper's Section 7.3-7.4 amortization): a PAL
// that implements BatchPAL can serve a group of requests inside ONE Flicker
// session — one SKINIT measurement, one Unseal of carried state at entry,
// one Seal at exit, N request executions. The per-session fixed costs that
// dominate Section 7's breakdowns are paid once and amortized over the
// group, while each request's reply stays independently attributable in the
// framed output region.
//
// The request loop itself is driven by internal/core (RunSessionBatch), so
// the engine can attribute per-request charges to observers, inject faults
// between requests, and preserve the abort contract (a session killed at
// request k scrubs the window and reports only the completed prefix).

// BatchReply is one request's outcome within a batched session.
type BatchReply struct {
	// Output is the request's reply bytes (nil when Err is set).
	Output []byte
	// Err is the request-level failure. A failed request does not abort
	// the batch: the remaining requests still execute and the session
	// still seals, extends, and resumes normally.
	Err error
}

// BatchPAL is the multi-request entry convention. OpenBatch runs once with
// the batch header (state shared by every request — e.g. a sealed database,
// unsealed exactly once), RunRequest runs once per request against the open
// batch context, and CloseBatch runs once after the last request; its
// return is the batch trailer (e.g. the state resealed exactly once, after
// the last request — preserving sealed-state monotonicity).
type BatchPAL interface {
	PAL
	// OpenBatch prepares shared batch state from the header. The returned
	// context is threaded through RunRequest and CloseBatch. An error here
	// fails the whole batch as a PAL-level error (no requests run).
	OpenBatch(env *Env, header []byte, n int) (any, error)
	// RunRequest executes request i. An error is recorded as that
	// request's BatchReply.Err; execution continues with request i+1.
	RunRequest(env *Env, bctx any, i int, input []byte) ([]byte, error)
	// CloseBatch finalizes the batch and returns the trailer (nil is
	// fine). An error here fails the whole session's PAL step: carried
	// state that cannot be resealed must not be silently dropped.
	CloseBatch(env *Env, bctx any) ([]byte, error)
}

// AsBatch returns p's batch implementation. PALs that implement BatchPAL
// are returned as-is; plain PALs get a run-per-request adapter, which gives
// every request exactly the semantics of a singleton session body — this is
// what lets the pool coalesce arbitrary PALs without changing behavior.
func AsBatch(p PAL) BatchPAL {
	if bp, ok := p.(BatchPAL); ok {
		return bp
	}
	return &runPerRequest{p}
}

// runPerRequest adapts a plain PAL to BatchPAL by calling Run once per
// request. It carries no cross-request state, so it accepts no header.
type runPerRequest struct{ PAL }

func (r *runPerRequest) OpenBatch(env *Env, header []byte, n int) (any, error) {
	if len(header) > 0 {
		return nil, fmt.Errorf("pal: %s does not accept a batch header", r.Name())
	}
	return nil, nil
}

func (r *runPerRequest) RunRequest(env *Env, _ any, _ int, input []byte) ([]byte, error) {
	return r.PAL.Run(env, input)
}

func (r *runPerRequest) CloseBatch(*Env, any) ([]byte, error) { return nil, nil }
