package kernel

import (
	"bytes"
	"testing"
	"time"

	"flicker/internal/hw/cpu"
	"flicker/internal/hw/tis"
	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

func bootKernel(t *testing.T, cores int) (*Kernel, *cpu.Machine, *simtime.Clock) {
	t.Helper()
	clock := simtime.New()
	prof := simtime.ProfileBroadcom()
	tp, err := tpm.New(clock, prof, tpm.Options{Seed: []byte("kernel-test")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(clock, prof, tis.NewBus(tp), Config{}.machineConfig(cores))
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(m, clock, prof, "test")
	if err != nil {
		t.Fatal(err)
	}
	return k, m, clock
}

// Config is a test helper shim so the fixture reads clearly.
type Config struct{}

func (Config) machineConfig(cores int) cpu.Config {
	return cpu.Config{Cores: cores, MemSize: 32 << 20}
}

func TestBootWritesKernelImage(t *testing.T) {
	k, m, _ := bootKernel(t, 2)
	text, err := m.Mem.Read(KernelTextBase, 64)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(text, make([]byte, 64)) {
		t.Fatal("kernel text is all zero")
	}
	regions := k.MeasurableRegions()
	if len(regions) != 2 {
		t.Fatalf("fresh kernel has %d measurable regions, want 2", len(regions))
	}
}

func TestBootDeterministicImage(t *testing.T) {
	_, m1, _ := bootKernel(t, 1)
	_, m2, _ := bootKernel(t, 1)
	a, _ := m1.Mem.Read(KernelTextBase, KernelTextLen)
	b, _ := m2.Mem.Read(KernelTextBase, KernelTextLen)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different kernel images")
	}
}

func TestLoadModule(t *testing.T) {
	k, m, _ := bootKernel(t, 1)
	mod, err := k.LoadModule("ext3", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Base < ModuleArenaBase {
		t.Fatalf("module base %#x below arena", mod.Base)
	}
	body, _ := m.Mem.Read(mod.Base, 16)
	if bytes.Equal(body, make([]byte, 16)) {
		t.Fatal("module body empty")
	}
	if got := len(k.MeasurableRegions()); got != 3 {
		t.Fatalf("measurable regions = %d, want 3", got)
	}
	// Second module lands above the first, page aligned.
	mod2, _ := k.LoadModule("tpm_tis", 100)
	if mod2.Base <= mod.Base || mod2.Base%4096 != 0 {
		t.Fatalf("module2 base %#x", mod2.Base)
	}
}

func TestKAlloc(t *testing.T) {
	k, _, _ := bootKernel(t, 1)
	a, err := k.KAlloc(1000, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if a%65536 != 0 {
		t.Fatalf("allocation %#x not 64KB-aligned", a)
	}
	b, _ := k.KAlloc(1000, 65536)
	if b <= a {
		t.Fatal("allocations overlap")
	}
	if _, err := k.KAlloc(0, 16); err == nil {
		t.Fatal("zero-size kalloc accepted")
	}
	if _, err := k.KAlloc(1<<30, 16); err == nil {
		t.Fatal("oversized kalloc accepted")
	}
}

func TestRootkitChangesMeasurement(t *testing.T) {
	k, m, _ := bootKernel(t, 1)
	before, _ := m.Mem.Read(SyscallTableBase, 4*NumSyscalls)
	if err := k.InstallRootkit("adore-ng", []int{2, 4, 90}); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Mem.Read(SyscallTableBase, 4*NumSyscalls)
	if bytes.Equal(before, after) {
		t.Fatal("rootkit did not modify the syscall table")
	}
	if !k.Compromised() || len(k.Rootkits()) != 1 {
		t.Fatal("rootkit bookkeeping wrong")
	}
	if err := k.InstallRootkit("bad", []int{NumSyscalls}); err == nil {
		t.Fatal("out-of-range syscall index accepted")
	}
}

func TestPatchKernelText(t *testing.T) {
	k, m, _ := bootKernel(t, 1)
	orig, _ := m.Mem.Read(KernelTextBase+0x500, 4)
	if err := k.PatchKernelText(0x500, []byte{0xE9, 0xDE, 0xAD, 0x00}); err != nil {
		t.Fatal(err)
	}
	now, _ := m.Mem.Read(KernelTextBase+0x500, 4)
	if bytes.Equal(orig, now) {
		t.Fatal("patch had no effect")
	}
	if err := k.PatchKernelText(KernelTextLen-1, []byte{1, 2}); err == nil {
		t.Fatal("out-of-range patch accepted")
	}
}

func TestSchedulerRunsWork(t *testing.T) {
	k, _, clock := bootKernel(t, 2)
	k.Spawn("make", 500*time.Millisecond)
	before := clock.Now()
	total := k.RunToCompletion()
	if total != 500*time.Millisecond {
		t.Fatalf("consumed %v, want 500ms", total)
	}
	if clock.Now()-before != total {
		t.Fatal("clock and consumed time disagree")
	}
	if len(k.Processes()) != 0 {
		t.Fatal("finished processes not reaped")
	}
}

func TestSchedulerParallelism(t *testing.T) {
	// Two processes on two cores finish in the time of one.
	k, _, clock := bootKernel(t, 2)
	k.Spawn("a", 100*time.Millisecond)
	k.Spawn("b", 100*time.Millisecond)
	before := clock.Now()
	k.RunToCompletion()
	if got := clock.Now() - before; got != 100*time.Millisecond {
		t.Fatalf("2 procs / 2 cores took %v, want 100ms", got)
	}
	// Two processes on one core take twice as long.
	k2, _, clock2 := bootKernel(t, 1)
	k2.Spawn("a", 100*time.Millisecond)
	k2.Spawn("b", 100*time.Millisecond)
	before = clock2.Now()
	k2.RunToCompletion()
	if got := clock2.Now() - before; got != 200*time.Millisecond {
		t.Fatalf("2 procs / 1 core took %v, want 200ms", got)
	}
}

func TestHotplugLifecycle(t *testing.T) {
	k, m, _ := bootKernel(t, 2)
	if k.OnlineCoreCount() != 2 {
		t.Fatalf("online = %d", k.OnlineCoreCount())
	}
	if err := k.OfflineCore(1); err != nil {
		t.Fatal(err)
	}
	if k.OnlineCoreCount() != 1 {
		t.Fatal("offline not reflected")
	}
	if m.Cores()[1].State() != cpu.CoreIdle {
		t.Fatal("core not idle after hotplug")
	}
	// Now the flicker-module can INIT it.
	if err := m.SendINITIPI(1); err != nil {
		t.Fatal(err)
	}
	if err := k.OnlineCore(1); err != nil {
		t.Fatal(err)
	}
	if m.Cores()[1].State() != cpu.CoreRunning || k.OnlineCoreCount() != 2 {
		t.Fatal("online not restored")
	}
	if err := k.OfflineCore(0); err == nil {
		t.Fatal("offlined the BSP")
	}
}

func TestSysfs(t *testing.T) {
	k, _, _ := bootKernel(t, 1)
	var stored []byte
	k.RegisterSysfs("/sys/kernel/flicker/slb", &FuncNode{
		ReadFn:  func() ([]byte, error) { return stored, nil },
		WriteFn: func(d []byte) error { stored = append([]byte(nil), d...); return nil },
	})
	if err := k.SysfsWrite("/sys/kernel/flicker/slb", []byte("pal")); err != nil {
		t.Fatal(err)
	}
	got, err := k.SysfsRead("/sys/kernel/flicker/slb")
	if err != nil || !bytes.Equal(got, []byte("pal")) {
		t.Fatalf("read %q %v", got, err)
	}
	if _, err := k.SysfsRead("/nonexistent"); err == nil {
		t.Fatal("read of missing path succeeded")
	}
	ro := &FuncNode{ReadFn: func() ([]byte, error) { return nil, nil }}
	k.RegisterSysfs("/ro", ro)
	if err := k.SysfsWrite("/ro", []byte("x")); err == nil {
		t.Fatal("write to read-only node succeeded")
	}
	k.UnregisterSysfs("/ro")
	if _, err := k.SysfsRead("/ro"); err == nil {
		t.Fatal("unregistered node still readable")
	}
}

func TestBlockCopyIntegrity(t *testing.T) {
	k, _, _ := bootKernel(t, 1)
	src := k.AttachBlockDev("cdrom", 1<<20, time.Nanosecond)
	dst := k.AttachBlockDev("usb", 1<<20, time.Nanosecond)
	payload := make([]byte, 300*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	src.Store(0, payload)
	cp, err := k.StartCopy(src, 0, dst, 0, len(payload), 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	for !cp.Done() {
		if _, err := cp.Pump(128 * 1024); err != nil {
			t.Fatal(err)
		}
	}
	wantSum, _ := src.Checksum(0, len(payload))
	gotSum, _ := dst.Checksum(0, len(payload))
	if wantSum != gotSum {
		t.Fatal("copy corrupted data")
	}
	if cp.IOErrors != 0 {
		t.Fatalf("IO errors = %d", cp.IOErrors)
	}
}

func TestBlockCopyDefersDuringSession(t *testing.T) {
	k, m, _ := bootKernel(t, 1)
	src := k.AttachBlockDev("hd", 1<<20, time.Nanosecond)
	dst := k.AttachBlockDev("usb", 1<<20, time.Nanosecond)
	src.Store(0, bytes.Repeat([]byte{0xAA}, 4096))
	cp, _ := k.StartCopy(src, 0, dst, 0, 4096, 4096)

	// Fake an active session by launching for real.
	slbBase, _ := k.KAlloc(cpu.SLBMaxLen, 65536)
	slb := make([]byte, 64)
	slb[0] = 64 // length
	slb[2] = 4  // entry
	m.Mem.Write(slbBase, slb)
	ll, err := m.SKINIT(0, slbBase)
	if err != nil {
		t.Fatal(err)
	}
	n, err := cp.Pump(4096)
	if err != nil || n != 0 {
		t.Fatalf("pump during session moved %d bytes (err %v)", n, err)
	}
	if cp.Deferred != 1 {
		t.Fatalf("Deferred = %d", cp.Deferred)
	}
	ll.End()
	if _, err := cp.Pump(4096); err != nil || !cp.Done() {
		t.Fatalf("pump after session: %v", err)
	}
	if cp.IOErrors != 0 {
		t.Fatal("well-behaved driver hit IO errors")
	}
}

func TestUnsafeDriverFaultsAgainstDEV(t *testing.T) {
	k, m, _ := bootKernel(t, 1)
	src := k.AttachBlockDev("hd", 1<<20, time.Nanosecond)
	dst := k.AttachBlockDev("usb", 1<<20, time.Nanosecond)
	src.Store(0, bytes.Repeat([]byte{0xBB}, 4096))

	// Allocate the SLB and put the copy's bounce buffer in the protected
	// 64 KB window right after it.
	slbBase, _ := k.KAlloc(cpu.SLBMaxLen, 65536)
	cpBad := &Copy{
		k: k, src: src, dst: dst,
		srcOff: 0, dstOff: 0, remaining: 4096,
		bounceAddr: slbBase + 8192, bounceLen: 4096,
	}
	slb := make([]byte, 64)
	slb[0] = 64
	slb[2] = 4
	m.Mem.Write(slbBase, slb)
	ll, err := m.SKINIT(0, slbBase)
	if err != nil {
		t.Fatal(err)
	}
	defer ll.End()
	if _, err := cpBad.PumpUnsafely(4096); err == nil {
		t.Fatal("DMA into protected window did not fault")
	}
	if cpBad.IOErrors == 0 {
		t.Fatal("IO error not recorded")
	}
}

func TestKernelAccessors(t *testing.T) {
	k, _, clock := bootKernel(t, 1)
	if k.Clock() != clock {
		t.Error("Clock accessor wrong")
	}
	if k.Profile() == nil {
		t.Error("Profile accessor nil")
	}
	k.LoadModule("snd", 1024)
	mods := k.Modules()
	if len(mods) != 1 || mods[0].Name != "snd" {
		t.Errorf("Modules = %+v", mods)
	}
	if k.Compromised() {
		t.Error("fresh kernel compromised")
	}
	k.Compromise()
	if !k.Compromised() {
		t.Error("Compromise not recorded")
	}
	if len(k.SysfsPaths()) != 0 {
		t.Error("fresh kernel has sysfs entries")
	}
	k.RegisterSysfs("/x", &FuncNode{})
	if got := k.SysfsPaths(); len(got) != 1 || got[0] != "/x" {
		t.Errorf("SysfsPaths = %v", got)
	}
	if _, ok := k.BlockDevice("none"); ok {
		t.Error("missing block device found")
	}
	b := k.AttachBlockDev("sda", 4096, time.Nanosecond)
	if got, ok := k.BlockDevice("sda"); !ok || got != b {
		t.Error("BlockDevice lookup failed")
	}
}

func TestAbsorbParallelWork(t *testing.T) {
	k, _, clock := bootKernel(t, 2)
	k.Spawn("a", 100*time.Millisecond)
	k.Spawn("b", 100*time.Millisecond)
	before := clock.Now()
	retired := k.AbsorbParallelWork(2, 100*time.Millisecond)
	if retired != 200*time.Millisecond {
		t.Fatalf("retired %v, want 200ms (2 cores x 100ms)", retired)
	}
	if clock.Now() != before {
		t.Fatal("AbsorbParallelWork advanced the clock")
	}
	if len(k.Processes()) != 0 {
		t.Fatal("work not retired")
	}
	// Degenerate inputs.
	if k.AbsorbParallelWork(0, time.Second) != 0 {
		t.Error("zero cores retired work")
	}
	if k.AbsorbParallelWork(2, 0) != 0 {
		t.Error("zero duration retired work")
	}
	// One core, one long process: bounded by d.
	k.Spawn("c", time.Second)
	if got := k.AbsorbParallelWork(1, 300*time.Millisecond); got != 300*time.Millisecond {
		t.Errorf("partial retire = %v", got)
	}
}

func TestCopyValidation(t *testing.T) {
	k, _, _ := bootKernel(t, 1)
	src := k.AttachBlockDev("a", 4096, time.Nanosecond)
	dst := k.AttachBlockDev("b", 4096, time.Nanosecond)
	// Default chunk size kicks in for chunk <= 0.
	cp, err := k.StartCopy(src, 0, dst, 0, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Pump(2048); err != nil || !cp.Done() {
		t.Fatalf("pump: %v", err)
	}
	// Out-of-range media access fails cleanly.
	if err := src.Store(4000, make([]byte, 200)); err == nil {
		t.Error("overflow store accepted")
	}
	if _, err := src.Media(4000, 200); err == nil {
		t.Error("overflow media read accepted")
	}
	if _, err := src.Checksum(-1, 10); err == nil {
		t.Error("negative checksum range accepted")
	}
	// PumpUnsafely on a finished copy is a no-op.
	if n, err := cp.PumpUnsafely(100); n != 0 || err != nil {
		t.Errorf("PumpUnsafely on done copy: %d %v", n, err)
	}
}

func TestPumpUnsafelyMovesDataOutsideSessions(t *testing.T) {
	k, _, _ := bootKernel(t, 1)
	src := k.AttachBlockDev("a", 1<<16, time.Nanosecond)
	dst := k.AttachBlockDev("b", 1<<16, time.Nanosecond)
	payload := bytes.Repeat([]byte{0xCD}, 8192)
	src.Store(0, payload)
	cp, err := k.StartCopy(src, 0, dst, 0, len(payload), 4096)
	if err != nil {
		t.Fatal(err)
	}
	for !cp.Done() {
		if _, err := cp.PumpUnsafely(4096); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := dst.Media(0, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("unsafe pump corrupted data")
	}
}
