package kernel

import (
	"fmt"
	"sort"
	"time"

	"flicker/internal/hw/cpu"
)

// Process is a schedulable unit of simulated CPU work.
type Process struct {
	PID       int
	Name      string
	Remaining time.Duration // simulated CPU time left
}

// Spawn creates a process with the given amount of CPU work to do.
func (k *Kernel) Spawn(name string, work time.Duration) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := &Process{PID: k.nextPID, Name: name, Remaining: work}
	k.nextPID++
	k.procs[p.PID] = p
	return p
}

// Processes returns the live processes sorted by PID.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// onlineCores counts cores currently available for scheduling.
func (k *Kernel) onlineCores() int {
	n := 0
	for _, c := range k.M.Cores() {
		if c.State() == cpu.CoreRunning && !k.offline[c.ID] {
			n++
		}
	}
	return n
}

// OnlineCoreCount reports how many cores the scheduler can use.
func (k *Kernel) OnlineCoreCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.onlineCores()
}

// OfflineCore deschedules an AP via CPU hotplug ("CPU Hotplug support
// available in recent Linux kernels (starting with version 2.6.19)"): its
// processes migrate to the remaining cores and the core goes idle.
func (k *Kernel) OfflineCore(coreID int) error {
	if coreID == 0 {
		return fmt.Errorf("kernel: cannot offline the BSP")
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.offline[coreID] {
		return nil
	}
	if err := k.M.SetCoreIdle(coreID, true); err != nil {
		return err
	}
	k.offline[coreID] = true
	// Migration is implicit: Run schedules over online cores only.
	return nil
}

// OnlineCore brings a hotplugged core back (SIPI + scheduler visibility).
func (k *Kernel) OnlineCore(coreID int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.offline[coreID] {
		return nil
	}
	if err := k.M.StartupAP(coreID); err != nil {
		return err
	}
	delete(k.offline, coreID)
	return nil
}

// Run advances simulated time by at most d, distributing CPU time across
// live processes on the online cores, and returns the simulated time
// actually consumed (less than d if all work finished early). Interrupts
// pending on the BSP are drained first, charging a small handling cost.
func (k *Kernel) Run(d time.Duration) time.Duration {
	for _, irq := range k.M.DrainInterrupts() {
		_ = irq
		k.clock.Advance(10*time.Microsecond, "os.irq")
	}
	k.mu.Lock()
	cores := k.onlineCores()
	var live []*Process
	for _, p := range k.procs {
		if p.Remaining > 0 {
			live = append(live, p)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].PID < live[j].PID })
	k.mu.Unlock()

	if cores == 0 || len(live) == 0 {
		return 0
	}
	// Work the cores can retire in d of wall time, spread evenly over
	// runnable processes (an idealized CFS).
	var consumed time.Duration
	remainingWall := d
	for remainingWall > 0 {
		k.mu.Lock()
		live = live[:0]
		for _, p := range k.procs {
			if p.Remaining > 0 {
				live = append(live, p)
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].PID < live[j].PID })
		if len(live) == 0 {
			k.mu.Unlock()
			break
		}
		// Time until the next process completes, if all cores divide evenly.
		runnable := len(live)
		if runnable > cores {
			runnable = cores
		}
		// Shortest remaining first among the scheduled set for the slice
		// calculation; everyone scheduled progresses at full core speed.
		slice := remainingWall
		for i := 0; i < runnable; i++ {
			if live[i].Remaining < slice {
				slice = live[i].Remaining
			}
		}
		for i := 0; i < runnable; i++ {
			live[i].Remaining -= slice
		}
		k.mu.Unlock()
		k.clock.Advance(slice, "os.work")
		consumed += slice
		remainingWall -= slice
	}
	k.reap()
	return consumed
}

// RunToCompletion runs until every process has exhausted its work,
// returning the simulated time consumed.
func (k *Kernel) RunToCompletion() time.Duration {
	var total time.Duration
	for {
		c := k.Run(time.Second)
		total += c
		if c == 0 {
			return total
		}
	}
}

// reap removes finished processes.
func (k *Kernel) reap() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for pid, p := range k.procs {
		if p.Remaining <= 0 {
			delete(k.procs, pid)
		}
	}
}

// AbsorbParallelWork retires up to d of wall-clock work per core across the
// given number of cores WITHOUT advancing the simulated clock. It models
// work done concurrently with an activity that has already charged that
// wall time — specifically, untrusted code continuing on other cores while
// a partitioned Flicker session runs (the multicore recommendation of
// [19]). Returns the total CPU time retired.
func (k *Kernel) AbsorbParallelWork(cores int, d time.Duration) time.Duration {
	if cores <= 0 || d <= 0 {
		return 0
	}
	var retired time.Duration
	remaining := d
	for remaining > 0 {
		k.mu.Lock()
		var live []*Process
		for _, p := range k.procs {
			if p.Remaining > 0 {
				live = append(live, p)
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].PID < live[j].PID })
		if len(live) == 0 {
			k.mu.Unlock()
			break
		}
		runnable := len(live)
		if runnable > cores {
			runnable = cores
		}
		slice := remaining
		for i := 0; i < runnable; i++ {
			if live[i].Remaining < slice {
				slice = live[i].Remaining
			}
		}
		for i := 0; i < runnable; i++ {
			live[i].Remaining -= slice
			retired += slice
		}
		k.mu.Unlock()
		remaining -= slice
	}
	k.reap()
	return retired
}
