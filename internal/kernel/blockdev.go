package kernel

import (
	"fmt"
	"time"

	"flicker/internal/hw/memory"
	"flicker/internal/palcrypto"
)

// BlockDev is a DMA-capable block device (hard drive, CD-ROM, USB stick).
// Its transfers go through the machine's DMA path and are therefore subject
// to the DEV; the driver defers transfers while a Flicker session is active,
// the mitigation Section 7.5 recommends ("these transfers should be
// scheduled such that they do not occur during a Flicker session").
type BlockDev struct {
	Name    string
	storage []byte
	dma     *memory.Device
	k       *Kernel
	// perByte is the simulated transfer cost (bus + media).
	perByte time.Duration
}

// AttachBlockDev creates a block device of the given capacity.
func (k *Kernel) AttachBlockDev(name string, capacity int, perByte time.Duration) *BlockDev {
	b := &BlockDev{
		Name:    name,
		storage: make([]byte, capacity),
		dma:     k.M.Mem.AttachDevice(name),
		k:       k,
		perByte: perByte,
	}
	k.mu.Lock()
	k.devs[name] = b
	k.mu.Unlock()
	return b
}

// BlockDevice returns an attached device by name.
func (k *Kernel) BlockDevice(name string) (*BlockDev, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	b, ok := k.devs[name]
	return b, ok
}

// Store writes media content directly (staging test data; not a DMA path).
func (b *BlockDev) Store(off int, data []byte) error {
	if off < 0 || off+len(data) > len(b.storage) {
		return fmt.Errorf("kernel: %s: store out of range", b.Name)
	}
	copy(b.storage[off:], data)
	return nil
}

// Media reads media content directly (for integrity checks).
func (b *BlockDev) Media(off, n int) ([]byte, error) {
	// n < 0 must be rejected explicitly: off+n would pass the range check
	// and make(..., n) panics on negative sizes.
	if off < 0 || n < 0 || off+n > len(b.storage) {
		return nil, fmt.Errorf("kernel: %s: media read out of range", b.Name)
	}
	out := make([]byte, n)
	copy(out, b.storage[off:])
	return out, nil
}

// Checksum returns the MD5 of a media range — the paper verified copied
// files with md5sum (Section 7.5).
func (b *BlockDev) Checksum(off, n int) ([16]byte, error) {
	data, err := b.Media(off, n)
	if err != nil {
		return [16]byte{}, err
	}
	return palcrypto.MD5Sum(data), nil
}

// Copy is an in-flight device-to-device file copy pumped through a DMA
// bounce buffer in kernel memory.
type Copy struct {
	k          *Kernel
	src, dst   *BlockDev
	srcOff     int
	dstOff     int
	remaining  int
	bounceAddr uint32
	bounceLen  int
	Deferred   int // chunks deferred because a Flicker session was active
	IOErrors   int // DMA faults (should stay zero with a well-behaved driver)
}

// StartCopy begins copying n bytes between devices using a fresh bounce
// buffer of the given chunk size.
func (k *Kernel) StartCopy(src *BlockDev, srcOff int, dst *BlockDev, dstOff, n, chunk int) (*Copy, error) {
	if chunk <= 0 {
		chunk = 64 * 1024
	}
	addr, err := k.KAlloc(chunk, 4096)
	if err != nil {
		return nil, err
	}
	return &Copy{
		k: k, src: src, dst: dst,
		srcOff: srcOff, dstOff: dstOff, remaining: n,
		bounceAddr: addr, bounceLen: chunk,
	}, nil
}

// Done reports whether the copy has finished.
func (c *Copy) Done() bool { return c.remaining <= 0 }

// Pump transfers up to maxBytes. A well-behaved driver defers if a Flicker
// session is active (counting Deferred); the transfer itself is two DMA
// transactions per chunk (device→RAM, RAM→device) plus media time.
func (c *Copy) Pump(maxBytes int) (int, error) {
	if c.Done() {
		return 0, nil
	}
	if c.k.M.SecureSessionActive() {
		c.Deferred++
		return 0, nil
	}
	moved := 0
	for moved < maxBytes && c.remaining > 0 {
		n := c.bounceLen
		if n > c.remaining {
			n = c.remaining
		}
		if n > maxBytes-moved {
			n = maxBytes - moved
		}
		// Device reads media and DMA-writes into the bounce buffer.
		data, err := c.src.Media(c.srcOff, n)
		if err != nil {
			return moved, err
		}
		if err := c.src.dma.Write(c.bounceAddr, data); err != nil {
			c.IOErrors++
			return moved, fmt.Errorf("kernel: DMA fault on %s: %w", c.src.Name, err)
		}
		// Destination DMA-reads the bounce buffer and writes media.
		buf, err := c.dst.dma.Read(c.bounceAddr, n)
		if err != nil {
			c.IOErrors++
			return moved, fmt.Errorf("kernel: DMA fault on %s: %w", c.dst.Name, err)
		}
		if err := c.dst.Store(c.dstOff, buf); err != nil {
			return moved, err
		}
		cost := time.Duration(n) * (c.src.perByte + c.dst.perByte)
		c.k.clock.Advance(cost, "io.copy")
		c.srcOff += n
		c.dstOff += n
		c.remaining -= n
		moved += n
	}
	return moved, nil
}

// PumpUnsafely transfers one chunk WITHOUT checking for an active Flicker
// session — a driver that is not Flicker-aware. Its DMA will fault against
// the DEV if it touches protected pages, which tests use to show why
// Flicker-aware drivers matter.
func (c *Copy) PumpUnsafely(maxBytes int) (int, error) {
	if c.Done() {
		return 0, nil
	}
	n := c.bounceLen
	if n > c.remaining {
		n = c.remaining
	}
	if n > maxBytes {
		n = maxBytes
	}
	data, err := c.src.Media(c.srcOff, n)
	if err != nil {
		return 0, err
	}
	if err := c.src.dma.Write(c.bounceAddr, data); err != nil {
		c.IOErrors++
		return 0, fmt.Errorf("kernel: DMA fault on %s: %w", c.src.Name, err)
	}
	buf, err := c.dst.dma.Read(c.bounceAddr, n)
	if err != nil {
		c.IOErrors++
		return 0, err
	}
	if err := c.dst.Store(c.dstOff, buf); err != nil {
		return 0, err
	}
	c.k.clock.Advance(time.Duration(n)*(c.src.perByte+c.dst.perByte), "io.copy")
	c.srcOff += n
	c.dstOff += n
	c.remaining -= n
	return n, nil
}
