package kernel

import "fmt"

// SysfsNode is one virtual file in the sysfs. The flicker-module exposes
// four of these: control, inputs, outputs, and slb (Section 4.2, "Accept
// Uninitialized SLB and Inputs").
type SysfsNode interface {
	Read() ([]byte, error)
	Write(data []byte) error
}

// RegisterSysfs mounts a node at a path like
// "/sys/kernel/flicker/control". Re-registering a path replaces the node.
func (k *Kernel) RegisterSysfs(path string, node SysfsNode) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.sysfs[path] = node
}

// UnregisterSysfs removes a node.
func (k *Kernel) UnregisterSysfs(path string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.sysfs, path)
}

// SysfsRead reads a sysfs file (what an application's open+read does).
func (k *Kernel) SysfsRead(path string) ([]byte, error) {
	k.mu.Lock()
	node, ok := k.sysfs[path]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("kernel: sysfs path %q does not exist", path)
	}
	return node.Read()
}

// SysfsWrite writes a sysfs file.
func (k *Kernel) SysfsWrite(path string, data []byte) error {
	k.mu.Lock()
	node, ok := k.sysfs[path]
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("kernel: sysfs path %q does not exist", path)
	}
	return node.Write(data)
}

// SysfsPaths lists the mounted paths (for diagnostics).
func (k *Kernel) SysfsPaths() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []string
	for p := range k.sysfs {
		out = append(out, p)
	}
	return out
}

// FuncNode adapts read/write funcs to a SysfsNode.
type FuncNode struct {
	ReadFn  func() ([]byte, error)
	WriteFn func([]byte) error
}

// Read calls ReadFn, or fails if the node is write-only.
func (f *FuncNode) Read() ([]byte, error) {
	if f.ReadFn == nil {
		return nil, fmt.Errorf("kernel: sysfs node is write-only")
	}
	return f.ReadFn()
}

// Write calls WriteFn, or fails if the node is read-only.
func (f *FuncNode) Write(data []byte) error {
	if f.WriteFn == nil {
		return fmt.Errorf("kernel: sysfs node is read-only")
	}
	return f.WriteFn(data)
}
