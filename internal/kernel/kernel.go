// Package kernel simulates the untrusted operating system of the paper's
// threat model: a Linux-like kernel with a measurable image (text segment,
// syscall table, loadable modules), a process scheduler with CPU hotplug,
// a sysfs through which the flicker-module exposes its interface, and block
// devices whose transfers interact with Flicker sessions.
//
// The kernel is explicitly OUTSIDE the TCB. Its adversarial surface
// (Compromise, InstallRootkit, arbitrary physical memory access) implements
// the paper's Section 3.1 attacker: ring-0 code that can invoke SKINIT with
// arguments of its choosing, monitor network traffic, and replay
// ciphertexts, but cannot defeat the CPU/TPM/chipset protections.
package kernel

import (
	"fmt"
	"sync"

	"flicker/internal/hw/cpu"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// Memory layout constants for the simulated kernel image. Addresses are
// physical; the simulated kernel runs with a unity-mapped lowmem like a
// 32-bit Linux kernel.
const (
	// KernelTextBase is where the kernel's text segment is loaded.
	KernelTextBase = 0x00100000 // 1 MB, the classic Linux load address
	// KernelTextLen is the size of the simulated text segment. Sized so
	// that text + syscall table + modules come to ~1.8 MB, matching the
	// 22 ms hash cost in Table 1 under the calibrated CPU hash rate.
	KernelTextLen = 0x00180000 // 1.5 MB
	// SyscallTableBase holds NR_syscalls 4-byte handler pointers.
	SyscallTableBase = KernelTextBase + KernelTextLen
	// NumSyscalls is the number of entries in the syscall table.
	NumSyscalls = 320
	// ModuleArenaBase is where loadable modules are placed.
	ModuleArenaBase = SyscallTableBase + 4*NumSyscalls
	// HeapBase is the start of the kernel's general allocation arena
	// (kmalloc); the flicker-module's SLB buffer comes from here.
	HeapBase = 0x00400000 // 4 MB
)

// Module is a loaded kernel module occupying a memory range.
type Module struct {
	Name string
	Base uint32
	Len  int
}

// Kernel is the simulated untrusted OS.
type Kernel struct {
	M       *cpu.Machine
	clock   *simtime.Clock
	profile *simtime.Profile

	mu          sync.Mutex
	modules     []Module
	nextModBase uint32
	heapNext    uint32

	procs   map[int]*Process
	nextPID int
	offline map[int]bool // hotplugged-off cores

	sysfs map[string]SysfsNode

	compromised bool
	rootkits    []string

	devs map[string]*BlockDev
}

// Boot constructs a kernel on the machine, writing the kernel image into
// physical memory. The image bytes are deterministic in the seed so that
// known-good measurements are stable.
func Boot(m *cpu.Machine, clock *simtime.Clock, profile *simtime.Profile, seed string) (*Kernel, error) {
	k := &Kernel{
		M:           m,
		clock:       clock,
		profile:     profile,
		nextModBase: ModuleArenaBase,
		heapNext:    HeapBase,
		procs:       make(map[int]*Process),
		nextPID:     1,
		offline:     make(map[int]bool),
		sysfs:       make(map[string]SysfsNode),
		devs:        make(map[string]*BlockDev),
	}
	// Kernel text: pseudo-random but deterministic content.
	text := palcrypto.NewPRNG([]byte("kernel-text|" + seed)).Bytes(KernelTextLen)
	if err := m.Mem.Write(KernelTextBase, text); err != nil {
		return nil, fmt.Errorf("kernel: writing text: %w", err)
	}
	// Syscall table: each entry points somewhere inside the text segment.
	tbl := &tableBuilder{}
	prng := palcrypto.NewPRNG([]byte("syscall-table|" + seed))
	for i := 0; i < NumSyscalls; i++ {
		off := uint32(prng.Intn(KernelTextLen - 16))
		tbl.addr(KernelTextBase + off)
	}
	if err := m.Mem.Write(SyscallTableBase, tbl.b); err != nil {
		return nil, fmt.Errorf("kernel: writing syscall table: %w", err)
	}
	return k, nil
}

type tableBuilder struct{ b []byte }

func (t *tableBuilder) addr(a uint32) {
	t.b = append(t.b, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
}

// Clock returns the platform clock (for workload accounting).
func (k *Kernel) Clock() *simtime.Clock { return k.clock }

// Profile returns the platform latency profile.
func (k *Kernel) Profile() *simtime.Profile { return k.profile }

// LoadModule loads a named module with deterministic contents of the given
// size and returns it.
func (k *Kernel) LoadModule(name string, size int) (Module, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	body := palcrypto.NewPRNG([]byte("module|" + name)).Bytes(size)
	base := (k.nextModBase + 4095) &^ 4095 // modules load page-aligned
	mod := Module{Name: name, Base: base, Len: size}
	if err := k.M.Mem.Write(mod.Base, body); err != nil {
		return Module{}, fmt.Errorf("kernel: loading module %s: %w", name, err)
	}
	k.nextModBase = base + uint32((size+4095)&^4095)
	k.modules = append(k.modules, mod)
	return mod, nil
}

// Modules returns the loaded module list.
func (k *Kernel) Modules() []Module {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]Module, len(k.modules))
	copy(out, k.modules)
	return out
}

// KAlloc allocates kernel memory with the given alignment and returns its
// physical address. The flicker-module uses this for the SLB buffer
// ("slb_base").
func (k *Kernel) KAlloc(size int, align uint32) (uint32, error) {
	if size <= 0 {
		return 0, fmt.Errorf("kernel: kalloc of %d bytes", size)
	}
	if align == 0 {
		align = 16
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	base := (k.heapNext + align - 1) &^ (align - 1)
	if int(base)+size > k.M.Mem.Size() {
		return 0, fmt.Errorf("kernel: out of memory allocating %d bytes", size)
	}
	k.heapNext = base + uint32(size)
	return base, nil
}

// MeasurableRegions returns the regions a rootkit detector hashes: kernel
// text, the syscall table, and every loaded module (Section 6.1).
func (k *Kernel) MeasurableRegions() [][2]uint32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := [][2]uint32{
		{KernelTextBase, KernelTextLen},
		{SyscallTableBase, 4 * NumSyscalls},
	}
	for _, m := range k.modules {
		out = append(out, [2]uint32{m.Base, uint32(m.Len)})
	}
	return out
}

// Compromise marks the kernel as attacker-controlled. It gates nothing in
// the simulation (the kernel is always untrusted); it exists so scenarios
// and traces can record when the adversary takes over.
func (k *Kernel) Compromise() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.compromised = true
}

// Compromised reports whether Compromise was called.
func (k *Kernel) Compromised() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.compromised
}

// InstallRootkit hooks syscall table entries the way kernel rootkits do:
// it overwrites entry slots to point at attacker code planted in the module
// arena. Returns the name recorded for the rootkit.
func (k *Kernel) InstallRootkit(name string, entries []int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.compromised = true
	// Plant the malicious handler body.
	body := palcrypto.NewPRNG([]byte("rootkit|" + name)).Bytes(256)
	base := k.nextModBase
	if err := k.M.Mem.Write(base, body); err != nil {
		return err
	}
	k.nextModBase += 4096
	for _, e := range entries {
		if e < 0 || e >= NumSyscalls {
			return fmt.Errorf("kernel: syscall index %d out of range", e)
		}
		t := &tableBuilder{}
		t.addr(base)
		if err := k.M.Mem.Write(SyscallTableBase+uint32(4*e), t.b); err != nil {
			return err
		}
	}
	k.rootkits = append(k.rootkits, name)
	return nil
}

// PatchKernelText flips bytes inside the kernel text segment (an inline
// hook), another rootkit technique the detector must catch.
func (k *Kernel) PatchKernelText(offset uint32, patch []byte) error {
	if int(offset)+len(patch) > KernelTextLen {
		return fmt.Errorf("kernel: patch out of text segment")
	}
	k.mu.Lock()
	k.compromised = true
	k.mu.Unlock()
	return k.M.Mem.Write(KernelTextBase+offset, patch)
}

// Rootkits lists installed rootkits (ground truth for detector tests).
func (k *Kernel) Rootkits() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]string(nil), k.rootkits...)
}
