package tpm

import (
	"bytes"
	"testing"
	"testing/quick"

	"flicker/internal/hw/tis"
)

func TestOSAPSealUnsealRoundTrip(t *testing.T) {
	r := newRig(t)
	data := []byte("sealed under an OSAP session")
	blob, err := r.os.SealOSAP(Digest{}, PCRSelection{}, Digest{}, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.os.UnsealOSAP(Digest{}, blob)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("unseal: %q %v", got, err)
	}
	// OIAP and OSAP blobs are interchangeable (same sealing engine).
	got, err = r.os.Unseal(Digest{}, blob)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("OIAP unseal of OSAP blob: %q %v", got, err)
	}
}

func TestOSAPWrongSecretFails(t *testing.T) {
	r := newRig(t)
	var bad Digest
	bad[19] = 0x42
	// The wrong secret produces the wrong shared secret, so the command
	// MAC is wrong and the TPM rejects it.
	if _, err := r.os.SealOSAP(bad, PCRSelection{}, Digest{}, []byte("x")); !IsCode(err, RCAuthFail) {
		t.Fatalf("err = %v, want auth fail", err)
	}
}

func TestOSAPEntityMismatchFails(t *testing.T) {
	r := newRig(t)
	// Seal via an OSAP session bound to the OWNER entity must fail: the
	// TPM checks that the session entity matches the command's target.
	w := &buf{}
	w.u32(KHSRK)
	w.raw(make([]byte, DigestSize))
	PCRSelection{}.marshal(w)
	w.bytes32([]byte("d"))
	if _, err := r.os.runAuth1OSAP(OrdSeal, w.b, ETOwner, KHOwner, Digest{}); !IsCode(err, RCAuthFail) {
		t.Fatalf("err = %v, want auth fail on entity mismatch", err)
	}
}

func TestOSAPUnknownEntityFails(t *testing.T) {
	r := newRig(t)
	if _, err := r.os.runAuth1OSAP(OrdSeal, nil, ETKeyHandle, 0xdeadbeef, Digest{}); !IsCode(err, RCBadIndex) {
		t.Fatalf("err = %v, want bad index from OSAP setup", err)
	}
}

// TestCommandFuzz throws random byte strings at the TPM at every locality
// and requires graceful error codes — never panics, never RCSuccess for
// garbage.
func TestCommandFuzz(t *testing.T) {
	r := newRig(t)
	f := func(loc uint8, raw []byte) bool {
		resp := r.tpm.HandleCommand(tis.Locality(loc%5), raw)
		_, rc, _, err := parseFrame(resp)
		if err != nil {
			return false // the TPM must always answer with a valid frame
		}
		return rc != RCSuccess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFramedFuzz fuzzes structurally valid frames with random ordinals and
// bodies: still no panics, and only well-formed commands may succeed.
func TestFramedFuzz(t *testing.T) {
	r := newRig(t)
	f := func(loc uint8, tagSel bool, ord uint32, body []byte) bool {
		tag := tagRQUCommand
		if tagSel {
			tag = tagRQUAuth1
		}
		resp := r.tpm.HandleCommand(tis.Locality(loc%5), marshalCommand(tag, ord, body))
		_, _, _, err := parseFrame(resp)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
