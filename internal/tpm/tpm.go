// Package tpm simulates a v1.2 Trusted Platform Module at the command level:
// a PCR bank with static and dynamic (resettable) registers, locality-gated
// operations, sealed storage bound to PCR state, quotes signed by an AIK,
// OIAP/OSAP authorization sessions, non-volatile storage with PCR-based
// access control, monotonic counters, and a random number generator.
//
// Flicker's security argument rests on a handful of TPM properties, all
// enforced here exactly as the paper states them (Sections 2.1-2.3):
//
//   - PCRs 17-23 are dynamic: a reboot sets them to -1 (all 0xFF), and only
//     the locality-4 hardware sequence issued by SKINIT can reset PCR 17 to
//     zero without a reboot. Software cannot reset PCR 17.
//   - Seal binds data to future PCR contents; Unseal releases it only when
//     the named PCRs hold the named values.
//   - Quote signs the selected PCR values together with an external nonce
//     using the private AIK, which never leaves the TPM.
//
// The TPM charges all operation latencies to a simtime.Clock using a
// simtime.Profile, which is how the paper's tables are regenerated.
package tpm

import (
	"fmt"
	"sync"

	"flicker/internal/hw/tis"
	"flicker/internal/metrics"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// Options configures a simulated TPM.
type Options struct {
	// KeyBits is the modulus size for the SRK and AIKs. Real v1.2 TPMs use
	// 2048; tests default to 512 to keep key generation fast (operation
	// latency is charged from the profile either way).
	KeyBits int
	// Seed makes the TPM's RNG (and hence its keys) deterministic.
	Seed []byte
	// OwnerAuth is the 20-byte owner authorization secret. Zero value means
	// all zeros.
	OwnerAuth Digest
}

// TPM is the simulated chip. All exported methods are safe for concurrent
// use; the TPM serializes commands like the real single-threaded part.
type TPM struct {
	mu      sync.Mutex
	clock   *simtime.Clock
	profile *simtime.Profile

	pcrs      [NumPCRs]Digest
	bootCount int

	srk       *palcrypto.RSAPrivateKey
	srkAuth   Digest // well-known (all zero) per TCG convention
	ownerAuth Digest
	tpmProof  Digest // secret binding sealed blobs to this TPM
	rng       *palcrypto.PRNG
	keyBits   int

	// Loaded keys by handle (AIKs). The SRK has the fixed handle KHSRK.
	keys       map[uint32]*loadedKey
	nextHandle uint32

	sessions    map[uint32]*session
	nextSession uint32

	counters    map[uint32]*counter
	nextCounter uint32

	nv map[uint32]*nvSpace

	// In-progress locality-4 hash sequence (SKINIT SLB transfer). The
	// state is stored by value and reset per sequence so a warm session's
	// SKINIT does not allocate a fresh hash state.
	hashActive bool
	hash       palcrypto.SHA1

	// rbody is the response-body scratch handed out by respBuf, and rnd the
	// GetRandom payload scratch. Both are valid only under t.mu:
	// marshalResponse copies the body into the (never-pooled) response
	// frame before HandleCommand returns, so neither escapes a command.
	rbody buf
	rnd   []byte

	// needStartup is set by a platform reset: the TPM refuses every
	// command except TPM_Startup until the BIOS issues one (the v1.2
	// post-init discipline).
	needStartup bool

	// Per-command instrumentation (see Instrument). The vecs are always
	// non-nil — an uninstrumented TPM records into detached instruments.
	metCommands  *metrics.CounterVec   // ordinal, code
	metLatency   *metrics.HistogramVec // ordinal
	metMalformed *metrics.Counter
	events       *metrics.EventLog
	// Per-ordinal handles resolved once, so the dispatch hot path does not
	// re-join label keys on every command. okCounters holds the rc=0 series
	// (failures take the slow With path); latHists the latency series.
	// Guarded by t.mu like the rest of dispatch; reset by Instrument.
	okCounters map[uint32]*metrics.Counter
	latHists   map[uint32]*metrics.Histogram
	// traceTag, when set, carries the active session's distributed-trace
	// ID; dispatch pins it as the exemplar on the command-latency bucket
	// each command lands in. Nil-safe (a nil tag always reads "").
	traceTag *metrics.TraceTag
}

type loadedKey struct {
	priv      *palcrypto.RSAPrivateKey
	usageAuth Digest
	isAIK     bool
}

type counter struct {
	value uint32
	auth  Digest
}

type nvSpace struct {
	data      []byte
	pcrRead   PCRSelection
	digRead   Digest
	pcrWrite  PCRSelection
	digWrite  Digest
	hasPCRReq bool
}

// New creates a powered-on TPM. The returned TPM has already "booted": the
// static PCRs are zero and the dynamic PCRs hold -1.
func New(clock *simtime.Clock, profile *simtime.Profile, opts Options) (*TPM, error) {
	if opts.KeyBits == 0 {
		opts.KeyBits = 512
	}
	seed := opts.Seed
	if seed == nil {
		seed = []byte("flicker-sim-tpm-default-seed")
	}
	t := &TPM{
		clock:     clock,
		profile:   profile,
		ownerAuth: opts.OwnerAuth,
		rng:       palcrypto.NewPRNG(seed),
		keyBits:   opts.KeyBits,
		keys:      make(map[uint32]*loadedKey),
		sessions:  make(map[uint32]*session),
		counters:  make(map[uint32]*counter),
		nv:        make(map[uint32]*nvSpace),
	}
	srk, err := palcrypto.GenerateRSAKey(t.rng, opts.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("tpm: SRK generation: %w", err)
	}
	t.srk = srk
	copy(t.tpmProof[:], t.rng.Bytes(DigestSize))
	t.nextHandle = 0x01000000
	t.nextSession = 0x02000000
	t.nextCounter = 1
	t.rebootLocked()
	t.needStartup = false // New() plays the BIOS's TPM_Startup(ST_CLEAR)
	t.Instrument(nil, nil)
	return t, nil
}

// Instrument points the TPM's per-command metrics at a registry and its
// security events at a log. Passing nil for either detaches that side (the
// construction default). The metric families are:
//
//	flicker_tpm_commands_total{ordinal,code}  — dispatches by result code
//	flicker_tpm_command_seconds{ordinal}      — simulated latency histogram
//	flicker_tpm_malformed_total               — unparseable request frames
func (t *TPM) Instrument(reg *metrics.Registry, events *metrics.EventLog) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metCommands = reg.Counter("flicker_tpm_commands_total",
		"TPM commands dispatched, by ordinal and result code.", "ordinal", "code")
	t.metLatency = reg.Histogram("flicker_tpm_command_seconds",
		"Simulated TPM command latency by ordinal.", nil, "ordinal")
	t.metMalformed = reg.Counter("flicker_tpm_malformed_total",
		"TPM request frames rejected before dispatch.").With()
	t.okCounters = make(map[uint32]*metrics.Counter)
	t.latHists = make(map[uint32]*metrics.Histogram)
	t.events = events
}

// SetTraceTag installs the trace tag dispatch reads for latency exemplars
// (the platform shares one tag between its pipeline and its TPM).
func (t *TPM) SetTraceTag(tag *metrics.TraceTag) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traceTag = tag
}

// respBuf returns the TPM's response-body scratch, reset for a new body.
// Valid only while t.mu is held, which every command handler is; the body is
// copied into the response frame before HandleCommand returns.
func (t *TPM) respBuf() *buf {
	t.rbody.b = t.rbody.b[:0]
	return &t.rbody
}

// rebootLocked resets volatile state as a platform reset does.
// Callers must hold t.mu or be in New.
func (t *TPM) rebootLocked() {
	for i := 0; i < NumPCRs; i++ {
		if i >= FirstDynamicPCR {
			// A reboot sets dynamic PCRs to -1 so a verifier can distinguish
			// a reboot from a dynamic reset (paper Section 2.3).
			for j := range t.pcrs[i] {
				t.pcrs[i][j] = 0xFF
			}
		} else {
			t.pcrs[i] = Digest{}
		}
	}
	t.sessions = make(map[uint32]*session)
	t.keys = make(map[uint32]*loadedKey)
	t.hashActive = false
	t.bootCount++
	t.needStartup = true
}

// Reboot simulates a platform power cycle. NV storage, counters and the
// SRK survive; PCRs, sessions and the volatile key slots reset — the OS's
// TPM software stack must LoadKey2 its wrapped blobs again.
func (t *TPM) Reboot() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebootLocked()
}

// BootCount returns the number of platform resets seen (1 after New).
func (t *TPM) BootCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bootCount
}

// PCRValue returns the current contents of a PCR. This is a debug/verifier
// backdoor equivalent to an unauthenticated PCRRead.
func (t *TPM) PCRValue(i int) Digest {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= NumPCRs {
		panic("tpm: PCR index out of range")
	}
	return t.pcrs[i]
}

// SRKPublic returns the SRK's public half (used by tests and by the storage
// layer to recognize this TPM's blobs).
func (t *TPM) SRKPublic() *palcrypto.RSAPublicKey {
	return &t.srk.RSAPublicKey
}

// charge advances the simulated clock.
func (t *TPM) charge(d simtime.Charge) {
	t.clock.Advance(d.Duration, d.Label)
}

func (t *TPM) extendLocked(idx int, m Digest) {
	t.pcrs[idx] = ExtendDigest(t.pcrs[idx], m)
}

// compositeLocked computes the composite hash of the current PCR values
// under sel.
func (t *TPM) compositeLocked(sel PCRSelection) Digest {
	vals := make(map[int]Digest)
	for _, i := range sel.Indices() {
		vals[i] = t.pcrs[i]
	}
	return CompositeHash(sel, vals)
}

// HandleCommand implements tis.Handler: it parses a request frame,
// dispatches on the ordinal, and returns a response frame. Malformed input
// never panics; it produces an error return code.
func (t *TPM) HandleCommand(loc tis.Locality, cmd []byte) []byte {
	// The real part is single-threaded: serialize the whole command, which
	// also makes the instrument pointers safe against Instrument.
	t.mu.Lock()
	defer t.mu.Unlock()
	tag, ord, body, err := parseFrame(cmd)
	if err != nil {
		t.metMalformed.Inc()
		return marshalResponse(tagRSPCommand, RCBadParameter, nil)
	}
	if tag != tagRQUCommand && tag != tagRQUAuth1 {
		t.metMalformed.Inc()
		return marshalResponse(tagRSPCommand, RCBadParameter, nil)
	}
	rbody, rc := t.dispatch(loc, tag, ord, body)
	rtag := tagRSPCommand
	if tag == tagRQUAuth1 && rc == RCSuccess {
		rtag = tagRSPAuth1
	}
	return marshalResponse(rtag, rc, rbody)
}
