package tpm

import (
	"flicker/internal/simtime"
	"time"
)

func time64(n int) time.Duration { return time.Duration(n) }

// NV storage commands. The paper (Section 4.3.2) uses the TPM's
// non-volatile storage facility, with PCR-gated access, to hold the secure
// counter that defeats replay attacks against sealed storage: "Setting the
// PCR requirements to match those specified during the TPM Seal command
// creates an environment where a counter value stored in non-volatile
// storage is only available to the desired PAL."

// cmdNVDefineSpace defines an NV index (owner-authorized).
// Params: index(4) || size(4) || hasPCRReq(1) ||
//
//	[pcrSelRead || digestRead(20) || pcrSelWrite || digestWrite(20)]
func (t *TPM) cmdNVDefineSpace(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMNVWrite, Label: "tpm.nvdefine"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	r := &rdr{b: params}
	index, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	size, err := r.u32()
	if err != nil || size == 0 || size > 1<<16 {
		return nil, RCBadParameter
	}
	hasReq, err := r.u8()
	if err != nil {
		return nil, RCBadParameter
	}
	sp := &nvSpace{data: make([]byte, size)}
	if hasReq != 0 {
		sp.hasPCRReq = true
		if sp.pcrRead, err = parsePCRSelection(r); err != nil {
			return nil, RCBadParameter
		}
		d, err := r.raw(DigestSize)
		if err != nil {
			return nil, RCBadParameter
		}
		copy(sp.digRead[:], d)
		if sp.pcrWrite, err = parsePCRSelection(r); err != nil {
			return nil, RCBadParameter
		}
		d, err = r.raw(DigestSize)
		if err != nil {
			return nil, RCBadParameter
		}
		copy(sp.digWrite[:], d)
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdNVDefineSpace, params, tr, ETOwner, KHOwner)
	if rc != RCSuccess {
		return nil, rc
	}
	if _, exists := t.nv[index]; exists {
		return nil, RCBadIndex
	}
	t.nv[index] = sp
	return appendResponseAuth(nil, authKey, RCSuccess, OrdNVDefineSpace, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

// nvGateOK checks a space's PCR requirement for read or write.
func (t *TPM) nvGateOK(sel PCRSelection, want Digest) bool {
	if sel.Count() == 0 {
		return true
	}
	return t.compositeLocked(sel) == want
}

// cmdNVWriteValue writes data into an NV index at an offset.
// Params: index(4) || offset(4) || bytes32(data).
func (t *TPM) cmdNVWriteValue(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMNVWrite, Label: "tpm.nvwrite"})
	r := &rdr{b: body}
	index, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	off, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	data, err := r.bytes32()
	if err != nil {
		return nil, RCBadParameter
	}
	sp, ok := t.nv[index]
	if !ok {
		return nil, RCBadIndex
	}
	if sp.hasPCRReq && !t.nvGateOK(sp.pcrWrite, sp.digWrite) {
		return nil, RCAreaLocked
	}
	if int(off)+len(data) > len(sp.data) {
		return nil, RCBadParameter
	}
	copy(sp.data[off:], data)
	return nil, RCSuccess
}

// cmdNVReadValue reads from an NV index.
// Params: index(4) || offset(4) || length(4).
func (t *TPM) cmdNVReadValue(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMNVRead, Label: "tpm.nvread"})
	r := &rdr{b: body}
	index, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	off, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	n, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	sp, ok := t.nv[index]
	if !ok {
		return nil, RCBadIndex
	}
	if sp.hasPCRReq && !t.nvGateOK(sp.pcrRead, sp.digRead) {
		return nil, RCAreaLocked
	}
	if int(off)+int(n) > len(sp.data) {
		return nil, RCBadParameter
	}
	w := &buf{}
	w.bytes32(sp.data[off : int(off)+int(n)])
	return w.b, RCSuccess
}
