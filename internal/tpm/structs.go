package tpm

import (
	"flicker/internal/palcrypto"
)

// DigestSize is the size of a TPM 1.2 digest (SHA-1).
const DigestSize = 20

// Digest is a TPM 1.2 measurement digest.
type Digest = [DigestSize]byte

// NumPCRs is the number of PCRs in a v1.2 TPM (at least 24 required).
const NumPCRs = 24

// Dynamic PCR range: PCRs 17-23 can be reset without a reboot under the
// proper conditions (Section 2.3 of the paper).
const (
	FirstDynamicPCR = 17
	LastDynamicPCR  = 23
)

// PCRSelection is a bitmap over the TPM's PCRs (TPM_PCR_SELECTION).
type PCRSelection struct {
	bitmap [3]byte // 24 PCRs / 8
}

// SelectPCRs builds a selection from a list of PCR indices.
func SelectPCRs(idxs ...int) PCRSelection {
	var s PCRSelection
	for _, i := range idxs {
		if i < 0 || i >= NumPCRs {
			panic("tpm: PCR index out of range")
		}
		s.bitmap[i/8] |= 1 << uint(i%8)
	}
	return s
}

// Has reports whether PCR i is selected.
func (s PCRSelection) Has(i int) bool {
	if i < 0 || i >= NumPCRs {
		return false
	}
	return s.bitmap[i/8]&(1<<uint(i%8)) != 0
}

// Indices returns the selected PCR indices in ascending order.
func (s PCRSelection) Indices() []int {
	var out []int
	for i := 0; i < NumPCRs; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Count returns the number of selected PCRs.
func (s PCRSelection) Count() int { return len(s.Indices()) }

// marshal appends the TPM_PCR_SELECTION wire form: sizeOfSelect(2)=3 then
// the bitmap.
func (s PCRSelection) marshal(w *buf) {
	w.u16(3)
	w.raw(s.bitmap[:])
}

func parsePCRSelection(r *rdr) (PCRSelection, error) {
	var s PCRSelection
	n, err := r.u16()
	if err != nil {
		return s, err
	}
	if n != 3 {
		return s, errTruncated
	}
	b, err := r.raw(3)
	if err != nil {
		return s, err
	}
	copy(s.bitmap[:], b)
	return s, nil
}

// CompositeHash computes the TPM_COMPOSITE_HASH over the given selection and
// PCR values: SHA1(TPM_PCR_SELECTION || valueSize || PCR values in index
// order). Both the TPM (for Quote/Seal) and remote verifiers (to recompute
// expected values) use this, so it lives here as a pure function.
func CompositeHash(sel PCRSelection, values map[int]Digest) Digest {
	w := &buf{}
	sel.marshal(w)
	idxs := sel.Indices()
	w.u32(uint32(len(idxs) * DigestSize))
	for _, i := range idxs {
		v := values[i]
		w.raw(v[:])
	}
	return palcrypto.SHA1Sum(w.b)
}

// QuoteInfo builds the TPM_QUOTE_INFO structure that the TPM signs:
// version(1.1.0.0) || "QUOT" || compositeHash || externalData.
func QuoteInfo(composite Digest, externalData Digest) []byte {
	w := &buf{}
	w.raw([]byte{1, 1, 0, 0})
	w.raw([]byte("QUOT"))
	w.raw(composite[:])
	w.raw(externalData[:])
	return w.b
}

// ExtendDigest computes the PCR extend operation:
// PCRnew = SHA1(PCRold || m).
func ExtendDigest(old Digest, m Digest) Digest {
	cat := make([]byte, 0, 2*DigestSize)
	cat = append(cat, old[:]...)
	cat = append(cat, m[:]...)
	return palcrypto.SHA1Sum(cat)
}

// Handles for well-known TPM resources.
const (
	// KHSRK is the storage root key handle (TPM_KH_SRK).
	KHSRK uint32 = 0x40000000
	// KHOwner is the owner authorization handle (TPM_KH_OWNER).
	KHOwner uint32 = 0x40000001
)

// Entity types for OSAP (TPM_ET_*).
const (
	ETKeyHandle uint16 = 0x0001
	ETOwner     uint16 = 0x0002
)
