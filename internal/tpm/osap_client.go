package tpm

import (
	"fmt"

	"flicker/internal/palcrypto"
)

// OSAP client support. The paper's TPM Utilities module implements "the
// OIAP and OSAP sessions necessary to authorize Seal and Unseal" (Section
// 5.1.2). OSAP derives a per-session shared secret from the entity's usage
// secret, so the secret itself is never used directly as a MAC key — the
// preferred mode for Seal in the TPM 1.2 specification.

// runAuth1OSAP executes an authorized command under an OSAP session bound
// to the given entity.
func (c *Client) runAuth1OSAP(ordinal uint32, params []byte, entityType uint16, entityValue uint32, secret Digest) ([]byte, error) {
	if err := c.bus.RequestUse(c.loc); err != nil {
		return nil, err
	}
	defer c.bus.Release(c.loc)

	// OSAP: send entity + nonceOddOSAP, derive the shared secret.
	var nonceOddOSAP Digest
	copy(nonceOddOSAP[:], c.rng.Bytes(DigestSize))
	w := &buf{}
	w.u16(entityType)
	w.u32(entityValue)
	w.raw(nonceOddOSAP[:])
	resp, err := c.bus.Submit(c.loc, marshalCommand(tagRQUCommand, OrdOSAP, w.b))
	if err != nil {
		return nil, err
	}
	_, rc, out, err := parseFrame(resp)
	if err != nil {
		return nil, err
	}
	if rc != RCSuccess {
		return nil, &CommandError{Ordinal: OrdOSAP, Code: rc}
	}
	r := &rdr{b: out}
	handle, err := r.u32()
	if err != nil {
		return nil, err
	}
	neb, err := r.raw(DigestSize)
	if err != nil {
		return nil, err
	}
	neOSAPb, err := r.raw(DigestSize)
	if err != nil {
		return nil, err
	}
	var nonceEven, nonceEvenOSAP Digest
	copy(nonceEven[:], neb)
	copy(nonceEvenOSAP[:], neOSAPb)

	// sharedSecret = HMAC(entityAuth, nonceEvenOSAP || nonceOddOSAP).
	var msg []byte
	msg = append(msg, nonceEvenOSAP[:]...)
	msg = append(msg, nonceOddOSAP[:]...)
	sharedRaw := palcrypto.HMACSHA1(secret[:], msg)
	var shared Digest
	copy(shared[:], sharedRaw[:])

	var nonceOdd Digest
	copy(nonceOdd[:], c.rng.Bytes(DigestSize))
	tr := authTrailer{handle: handle, nonceOdd: nonceOdd, cont: false}
	tr.auth = authMAC(shared, ordinal, params, nonceEven, nonceOdd, false)
	cmd := marshalCommand(tagRQUAuth1, ordinal, appendAuth1(append([]byte(nil), params...), tr))

	resp, err = c.bus.Submit(c.loc, cmd)
	if err != nil {
		return nil, err
	}
	_, rc, body, err := parseFrame(resp)
	if err != nil {
		return nil, err
	}
	if rc != RCSuccess {
		return nil, &CommandError{Ordinal: ordinal, Code: rc}
	}
	trailerLen := DigestSize + 1 + DigestSize
	if len(body) < trailerLen {
		return nil, errTruncated
	}
	outParams := body[:len(body)-trailerLen]
	tb := body[len(body)-trailerLen:]
	var ne2 Digest
	copy(ne2[:], tb[:DigestSize])
	cont := tb[DigestSize] != 0
	var mac Digest
	copy(mac[:], tb[DigestSize+1:])
	want := responseMAC(shared, rc, ordinal, outParams, ne2, nonceOdd, cont)
	if !palcrypto.ConstantTimeEqual(want[:], mac[:]) {
		return nil, fmt.Errorf("tpm: OSAP response MAC verification failed for ordinal %#x", ordinal)
	}
	return append([]byte(nil), outParams...), nil
}

// SealOSAP is Seal authorized via an OSAP session on the SRK, the mode the
// TPM 1.2 specification prescribes for Seal.
func (c *Client) SealOSAP(srkAuth Digest, sel PCRSelection, digestAtRelease Digest, data []byte) ([]byte, error) {
	w := &buf{}
	w.u32(KHSRK)
	w.raw(digestAtRelease[:])
	sel.marshal(w)
	w.bytes32(data)
	out, err := c.runAuth1OSAP(OrdSeal, w.b, ETKeyHandle, KHSRK, srkAuth)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}

// UnsealOSAP is Unseal authorized via an OSAP session on the SRK.
func (c *Client) UnsealOSAP(srkAuth Digest, blob []byte) ([]byte, error) {
	w := &buf{}
	w.u32(KHSRK)
	w.bytes32(blob)
	out, err := c.runAuth1OSAP(OrdUnseal, w.b, ETKeyHandle, KHSRK, srkAuth)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}
