package tpm

import (
	"testing"

	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// newBenchRig is newRig without the testing.T plumbing, for benchmarks and
// allocation measurements.
func newBenchRig(tb testing.TB) *rig {
	tb.Helper()
	clock := simtime.New()
	tp, err := New(clock, simtime.ProfileBroadcom(), Options{Seed: []byte("bench-tpm")})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	bus := tis.NewBus(tp)
	return &rig{
		tpm:   tp,
		bus:   bus,
		clock: clock,
		os:    NewClient(bus, tis.Locality0, []byte("os-nonces")),
		pal:   NewClient(bus, tis.Locality2, []byte("pal-nonces")),
		hw:    NewClient(bus, tis.Locality4, []byte("hw-nonces")),
	}
}

// TestCommandAllocsRegression is the allocation guard for the TPM round
// trip itself: the client-side scratch buffers must keep simple command
// framing off the heap, so a session's dozens of TPM commands do not grow
// the per-session allocation budget. The budgets have headroom over the
// measured values (the TPM core still allocates its response frames); a
// regression that reintroduces per-command client marshaling allocations
// trips them.
func TestCommandAllocsRegression(t *testing.T) {
	r := newBenchRig(t)
	d := Digest(palcrypto.SHA1Sum([]byte("warm")))

	// Unauthorized round trip: client frame reuse leaves only the TPM's
	// response allocations.
	extend := testing.AllocsPerRun(200, func() {
		if _, err := r.os.Extend(10, d); err != nil {
			t.Fatal(err)
		}
	})
	if extend > 6 {
		t.Errorf("Extend round trip = %.1f allocs, budget 6", extend)
	}

	read := testing.AllocsPerRun(200, func() {
		if _, err := r.os.PCRRead(10); err != nil {
			t.Fatal(err)
		}
	})
	if read > 6 {
		t.Errorf("PCRRead round trip = %.1f allocs, budget 6", read)
	}

	// Authorized round trip (OIAP handshake + MACs + the TPM-side RSA seed
	// decrypt, which owns most of the budget via math/big). The guard
	// catches client-side marshaling regressions on top of that floor.
	blob, err := r.pal.Seal(Digest{}, PCRSelection{}, Digest{}, []byte("sealed-payload"))
	if err != nil {
		t.Fatal(err)
	}
	unseal := testing.AllocsPerRun(100, func() {
		if _, err := r.pal.Unseal(Digest{}, blob); err != nil {
			t.Fatal(err)
		}
	})
	if unseal > 170 {
		t.Errorf("Unseal round trip = %.1f allocs, budget 170", unseal)
	}
}

func BenchmarkExtendRoundTrip(b *testing.B) {
	r := newBenchRig(b)
	d := Digest(palcrypto.SHA1Sum([]byte("bench")))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.os.Extend(10, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealUnsealRoundTrip(b *testing.B) {
	r := newBenchRig(b)
	blob, err := r.pal.Seal(Digest{}, PCRSelection{}, Digest{}, []byte("sealed-payload"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.pal.Unseal(Digest{}, blob); err != nil {
			b.Fatal(err)
		}
	}
}
