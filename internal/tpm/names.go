package tpm

import "fmt"

// OrdinalName returns the canonical short name of a TPM command ordinal, as
// used for metric labels and diagnostics ("extend", "quote", "seal", ...).
// Unknown ordinals render as their hex value so they stay distinguishable.
func OrdinalName(ord uint32) string {
	switch ord {
	case OrdStartup:
		return "startup"
	case OrdOIAP:
		return "oiap"
	case OrdOSAP:
		return "osap"
	case OrdExtend:
		return "extend"
	case OrdPCRRead:
		return "pcrread"
	case OrdPCRReset:
		return "pcrreset"
	case OrdGetRandom:
		return "getrandom"
	case OrdGetCapability:
		return "getcapability"
	case OrdQuote:
		return "quote"
	case OrdSeal:
		return "seal"
	case OrdUnseal:
		return "unseal"
	case OrdMakeIdentity:
		return "makeidentity"
	case OrdLoadKey2:
		return "loadkey2"
	case OrdCreateWrapKey:
		return "createwrapkey"
	case OrdSign:
		return "sign"
	case OrdFlushSpecific:
		return "flushspecific"
	case OrdNVDefineSpace:
		return "nvdefinespace"
	case OrdNVWriteValue:
		return "nvwritevalue"
	case OrdNVReadValue:
		return "nvreadvalue"
	case OrdCreateCounter:
		return "createcounter"
	case OrdIncrementCounter:
		return "incrementcounter"
	case OrdReadCounter:
		return "readcounter"
	case OrdHashStart:
		return "hashstart"
	case OrdHashData:
		return "hashdata"
	case OrdHashEnd:
		return "hashend"
	case OrdHashDigest:
		return "hashdigest"
	default:
		return fmt.Sprintf("0x%08X", ord)
	}
}
