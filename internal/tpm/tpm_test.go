package tpm

import (
	"bytes"
	"testing"

	"flicker/internal/hw/tis"
	"flicker/internal/metrics"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// rig is a TPM plus its bus, OS-level client and the clock, the standard
// fixture for these tests.
type rig struct {
	tpm   *TPM
	bus   *tis.Bus
	clock *simtime.Clock
	os    *Client // locality 0: the untrusted OS's driver
	pal   *Client // locality 2: the PAL's driver
	hw    *Client // locality 4: CPU hardware traffic
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simtime.New()
	tp, err := New(clock, simtime.ProfileBroadcom(), Options{Seed: []byte("test-tpm")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bus := tis.NewBus(tp)
	return &rig{
		tpm:   tp,
		bus:   bus,
		clock: clock,
		os:    NewClient(bus, tis.Locality0, []byte("os-nonces")),
		pal:   NewClient(bus, tis.Locality2, []byte("pal-nonces")),
		hw:    NewClient(bus, tis.Locality4, []byte("hw-nonces")),
	}
}

func minusOne() Digest {
	var d Digest
	for i := range d {
		d[i] = 0xFF
	}
	return d
}

func TestBootPCRValues(t *testing.T) {
	r := newRig(t)
	for i := 0; i < FirstDynamicPCR; i++ {
		if r.tpm.PCRValue(i) != (Digest{}) {
			t.Errorf("static PCR %d not zero at boot", i)
		}
	}
	// "A reboot sets the value of PCRs 17-23 to -1, so that a remote
	// verifier can distinguish between a reboot and a dynamic reset."
	for i := FirstDynamicPCR; i <= LastDynamicPCR; i++ {
		if r.tpm.PCRValue(i) != minusOne() {
			t.Errorf("dynamic PCR %d not -1 at boot", i)
		}
	}
}

func TestExtendSemantics(t *testing.T) {
	r := newRig(t)
	m := palcrypto.SHA1Sum([]byte("a.out"))
	got, err := r.os.Extend(10, m)
	if err != nil {
		t.Fatal(err)
	}
	want := ExtendDigest(Digest{}, m)
	if got != want {
		t.Fatalf("extend result mismatch")
	}
	// Extend is order-sensitive and cumulative.
	m2 := palcrypto.SHA1Sum([]byte("config"))
	got2, _ := r.os.Extend(10, m2)
	if got2 != ExtendDigest(want, m2) {
		t.Fatal("second extend mismatch")
	}
	if got2 == ExtendDigest(ExtendDigest(Digest{}, m2), m) {
		t.Fatal("extend appears order-insensitive")
	}
}

func TestExtendInvalidIndex(t *testing.T) {
	r := newRig(t)
	if _, err := r.os.Extend(NumPCRs, Digest{}); !IsCode(err, RCBadIndex) {
		t.Fatalf("err = %v, want bad index", err)
	}
}

func TestSoftwareCannotResetPCR17(t *testing.T) {
	r := newRig(t)
	// Neither the OS (locality 0) nor the PAL (locality 2) may reset PCR 17.
	for _, c := range []*Client{r.os, r.pal} {
		err := c.PCRReset(SelectPCRs(17))
		if err == nil {
			t.Fatalf("locality %d reset PCR 17", c.Locality())
		}
	}
	// Even locality 4 cannot use the *software* reset for PCR 17; the only
	// path is the SKINIT hash sequence.
	if err := r.hw.PCRReset(SelectPCRs(17)); !IsCode(err, RCBadIndex) {
		t.Fatalf("locality-4 software reset of PCR 17: err = %v, want bad index", err)
	}
}

func TestSoftwareResetPCR20Locality(t *testing.T) {
	r := newRig(t)
	r.os.Extend(20, palcrypto.SHA1Sum([]byte("x")))
	// Locality 0 may not reset PCR 20...
	if err := r.os.PCRReset(SelectPCRs(20)); !IsCode(err, RCBadLocality) {
		t.Fatalf("locality-0 reset: %v, want bad locality", err)
	}
	// ...locality 2 may.
	if err := r.pal.PCRReset(SelectPCRs(20)); err != nil {
		t.Fatalf("locality-2 reset: %v", err)
	}
	if r.tpm.PCRValue(20) != (Digest{}) {
		t.Fatal("PCR 20 not zero after reset")
	}
}

func TestDispatchErrorCountsMetricOnce(t *testing.T) {
	r := newRig(t)
	reg := metrics.NewRegistry()
	log := metrics.NewEventLog(0)
	r.tpm.Instrument(reg, log)

	// Locality 0 may not reset PCR 20: dispatch returns RCBadLocality (0x29).
	if err := r.os.PCRReset(SelectPCRs(20)); !IsCode(err, RCBadLocality) {
		t.Fatalf("err = %v, want bad locality", err)
	}
	commands := reg.Counter("flicker_tpm_commands_total", "", "ordinal", "code")
	if got := commands.With("pcrreset", "41").Value(); got != 1 {
		t.Errorf("pcrreset/41 counter = %v, want exactly 1", got)
	}
	if got := commands.With("pcrreset", "0").Value(); got != 0 {
		t.Errorf("pcrreset/0 counter = %v, want 0", got)
	}
	// The failed dispatch still consumed simulated time: one latency sample.
	latency := reg.Histogram("flicker_tpm_command_seconds", "", nil, "ordinal")
	if got := latency.With("pcrreset").Count(); got != 1 {
		t.Errorf("pcrreset latency samples = %d, want 1", got)
	}
	if faults := log.EventsByKind(metrics.EventLocalityFault); len(faults) != 1 {
		t.Errorf("locality-fault events = %d, want 1", len(faults))
	}

	// A successful command lands in the rc=0 series of its own ordinal.
	if _, err := r.os.Extend(10, palcrypto.SHA1Sum([]byte("m"))); err != nil {
		t.Fatal(err)
	}
	if got := commands.With("extend", "0").Value(); got != 1 {
		t.Errorf("extend/0 counter = %v, want 1", got)
	}
}

func TestHashStartRecordsPCR17ResetEvent(t *testing.T) {
	r := newRig(t)
	reg := metrics.NewRegistry()
	log := metrics.NewEventLog(0)
	r.tpm.Instrument(reg, log)
	runHashSequence(t, r, []byte("slb bytes"))
	if resets := log.EventsByKind(metrics.EventPCR17Reset); len(resets) != 1 {
		t.Fatalf("pcr17-reset events = %d, want 1", len(resets))
	}
}

// runHashSequence simulates the SKINIT-side locality-4 traffic for an SLB.
func runHashSequence(t *testing.T, r *rig, slb []byte) {
	t.Helper()
	for _, step := range [][2]interface{}{
		{OrdHashStart, []byte(nil)},
		{OrdHashData, slb},
		{OrdHashEnd, []byte(nil)},
	} {
		ord := step[0].(uint32)
		body := step[1].([]byte)
		resp, err := r.bus.SubmitAt(tis.Locality4, marshalCommand(tagRQUCommand, ord, body))
		if err != nil {
			t.Fatalf("hash sequence submit: %v", err)
		}
		if _, rc, _, _ := parseFrame(resp); rc != RCSuccess {
			t.Fatalf("hash sequence ordinal %#x rc=%#x", ord, rc)
		}
	}
}

func TestHashSequenceResetsAndExtends(t *testing.T) {
	r := newRig(t)
	slb := bytes.Repeat([]byte{0xCD}, 4096)
	runHashSequence(t, r, slb)

	// PCR 17 = SHA1(0^20 || SHA1(SLB)): V = H(0x00^20 || H(P)).
	want := ExtendDigest(Digest{}, palcrypto.SHA1Sum(slb))
	if r.tpm.PCRValue(17) != want {
		t.Fatal("PCR 17 != H(0 || H(SLB)) after hash sequence")
	}
	// Other dynamic PCRs were reset to zero (not -1).
	for i := 18; i <= LastDynamicPCR; i++ {
		if r.tpm.PCRValue(i) != (Digest{}) {
			t.Errorf("PCR %d not zero after dynamic reset", i)
		}
	}
}

func TestHashSequenceRejectedFromSoftwareLocalities(t *testing.T) {
	r := newRig(t)
	for _, loc := range []tis.Locality{tis.Locality0, tis.Locality1, tis.Locality2, tis.Locality3} {
		resp, err := r.bus.SubmitAt(loc, marshalCommand(tagRQUCommand, OrdHashStart, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, rc, _, _ := parseFrame(resp); rc != RCBadLocality {
			t.Errorf("HashStart at locality %d: rc=%#x, want bad locality", loc, rc)
		}
	}
	// Forged PCR 17 attempt: software extends cannot reach the post-SKINIT
	// value because they cannot first reset PCR 17 from -1.
	slb := []byte("target PAL")
	m := palcrypto.SHA1Sum(slb)
	got, _ := r.os.Extend(17, m)
	if got == ExtendDigest(Digest{}, m) {
		t.Fatal("software forged the SKINIT PCR-17 value")
	}
}

func TestHashDataWithoutStartFails(t *testing.T) {
	r := newRig(t)
	resp, _ := r.bus.SubmitAt(tis.Locality4, marshalCommand(tagRQUCommand, OrdHashData, []byte("x")))
	if _, rc, _, _ := parseFrame(resp); rc != RCFail {
		t.Fatalf("HashData without HashStart: rc=%#x", rc)
	}
	resp, _ = r.bus.SubmitAt(tis.Locality4, marshalCommand(tagRQUCommand, OrdHashEnd, nil))
	if _, rc, _, _ := parseFrame(resp); rc != RCFail {
		t.Fatalf("HashEnd without HashStart: rc=%#x", rc)
	}
}

func TestRebootRestoresMinusOne(t *testing.T) {
	r := newRig(t)
	runHashSequence(t, r, []byte("slb"))
	if r.tpm.PCRValue(17) == minusOne() {
		t.Fatal("sanity: PCR 17 should differ from -1 after SKINIT")
	}
	r.tpm.Reboot()
	if err := r.os.Startup(); err != nil {
		t.Fatalf("startup after reboot: %v", err)
	}
	if r.tpm.PCRValue(17) != minusOne() {
		t.Fatal("PCR 17 != -1 after reboot")
	}
	if r.tpm.BootCount() != 2 {
		t.Fatalf("boot count = %d, want 2", r.tpm.BootCount())
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	r := newRig(t)
	data := []byte("the CA's private signing key")
	blob, err := r.os.Seal(Digest{}, PCRSelection{}, Digest{}, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.os.Unseal(Digest{}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unsealed data mismatch")
	}
}

func TestSealBindsToPCRState(t *testing.T) {
	r := newRig(t)
	// Seal to the post-SKINIT PCR-17 value of a specific PAL, as PALs do:
	// "P specifies that PCR 17 must have the value V = H(0x0020 || H(P'))".
	pal := []byte("authorized PAL image")
	v := ExtendDigest(Digest{}, palcrypto.SHA1Sum(pal))
	sel := SelectPCRs(17)
	dar := CompositeHash(sel, map[int]Digest{17: v})

	blob, err := r.os.Seal(Digest{}, sel, dar, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Unseal now (PCR 17 = -1): must fail with the wrong-PCR code.
	if _, err := r.os.Unseal(Digest{}, blob); !IsCode(err, RCWrongPCRVal) {
		t.Fatalf("unseal before SKINIT: %v, want wrong PCR value", err)
	}
	// After the right PAL launches, unseal succeeds.
	runHashSequence(t, r, pal)
	got, err := r.pal.Unseal(Digest{}, blob)
	if err != nil {
		t.Fatalf("unseal after correct SKINIT: %v", err)
	}
	if !bytes.Equal(got, []byte("secret")) {
		t.Fatal("wrong plaintext")
	}
	// A different PAL cannot unseal.
	r.tpm.Reboot()
	if err := r.os.Startup(); err != nil {
		t.Fatalf("startup after reboot: %v", err)
	}
	runHashSequence(t, r, []byte("malicious PAL image"))
	if _, err := r.pal.Unseal(Digest{}, blob); !IsCode(err, RCWrongPCRVal) {
		t.Fatalf("unseal under wrong PAL: %v, want wrong PCR value", err)
	}
}

func TestCapExtendRevokesAccess(t *testing.T) {
	// "it revokes access to any secrets kept in the TPM's sealed storage
	// which may have been available during PAL execution" (Section 4.4.1).
	r := newRig(t)
	pal := []byte("pal with secrets")
	v := ExtendDigest(Digest{}, palcrypto.SHA1Sum(pal))
	sel := SelectPCRs(17)
	dar := CompositeHash(sel, map[int]Digest{17: v})
	blob, _ := r.os.Seal(Digest{}, sel, dar, []byte("s3kr1t"))

	runHashSequence(t, r, pal)
	if _, err := r.pal.Unseal(Digest{}, blob); err != nil {
		t.Fatalf("in-session unseal failed: %v", err)
	}
	// SLB Core extends PCR 17 with a fixed public constant at exit.
	r.pal.Extend(17, palcrypto.SHA1Sum([]byte("flicker-session-terminator")))
	if _, err := r.os.Unseal(Digest{}, blob); !IsCode(err, RCWrongPCRVal) {
		t.Fatalf("post-cap unseal: %v, want wrong PCR value", err)
	}
}

func TestUnsealRejectsTamperedBlob(t *testing.T) {
	r := newRig(t)
	blob, _ := r.os.Seal(Digest{}, PCRSelection{}, Digest{}, []byte("data"))
	for _, pos := range []int{0, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0x01
		if _, err := r.os.Unseal(Digest{}, bad); err == nil {
			t.Errorf("tampered blob (byte %d) unsealed", pos)
		}
	}
	if _, err := r.os.Unseal(Digest{}, []byte("not a blob")); !IsCode(err, RCNotSealedBlob) {
		t.Errorf("garbage blob: %v", err)
	}
}

func TestUnsealRejectsForeignBlob(t *testing.T) {
	// A blob sealed by a different TPM must not unseal here (tpmProof).
	r1 := newRig(t)
	clock := simtime.New()
	tp2, _ := New(clock, simtime.ProfileBroadcom(), Options{Seed: []byte("other-tpm")})
	bus2 := tis.NewBus(tp2)
	os2 := NewClient(bus2, tis.Locality0, []byte("n"))
	blob, err := os2.Seal(Digest{}, PCRSelection{}, Digest{}, []byte("foreign"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.os.Unseal(Digest{}, blob); err == nil {
		t.Fatal("foreign blob unsealed")
	}
}

func TestSealWrongSRKAuthFails(t *testing.T) {
	r := newRig(t)
	var bad Digest
	bad[0] = 1
	if _, err := r.os.Seal(bad, PCRSelection{}, Digest{}, []byte("x")); !IsCode(err, RCAuthFail) {
		t.Fatalf("seal with wrong SRK auth: %v, want auth fail", err)
	}
}

func TestQuoteVerifies(t *testing.T) {
	r := newRig(t)
	aik, aikPub, _, err := r.os.MakeIdentity(Digest{})
	if err != nil {
		t.Fatal(err)
	}
	runHashSequence(t, r, []byte("some pal"))
	nonce := palcrypto.SHA1Sum([]byte("verifier nonce"))
	sel := SelectPCRs(17)
	q, err := r.os.Quote(aik, Digest{}, nonce, sel)
	if err != nil {
		t.Fatal(err)
	}
	// The verifier recomputes the expected composite and checks the sig.
	wantPCR := ExtendDigest(Digest{}, palcrypto.SHA1Sum([]byte("some pal")))
	wantComposite := CompositeHash(sel, map[int]Digest{17: wantPCR})
	if q.Composite != wantComposite {
		t.Fatal("quote composite != expected")
	}
	qi := QuoteInfo(q.Composite, nonce)
	if err := palcrypto.VerifyPKCS1SHA1(aikPub, qi, q.Signature); err != nil {
		t.Fatalf("quote signature invalid: %v", err)
	}
	// A different nonce must not verify against this signature.
	other := QuoteInfo(q.Composite, palcrypto.SHA1Sum([]byte("replayed nonce")))
	if err := palcrypto.VerifyPKCS1SHA1(aikPub, other, q.Signature); err == nil {
		t.Fatal("quote verified under wrong nonce (replay)")
	}
}

func TestQuoteRequiresAIK(t *testing.T) {
	r := newRig(t)
	nonce := Digest{}
	if _, err := r.os.Quote(0xdeadbeef, Digest{}, nonce, SelectPCRs(17)); !IsCode(err, RCBadIndex) {
		t.Fatalf("quote with bogus handle: %v", err)
	}
	if _, err := r.os.Quote(KHSRK, Digest{}, nonce, SelectPCRs(17)); !IsCode(err, RCBadIndex) {
		t.Fatalf("quote with SRK handle: %v", err)
	}
}

func TestMakeIdentityWrongOwnerAuth(t *testing.T) {
	clock := simtime.New()
	var owner Digest
	copy(owner[:], bytes.Repeat([]byte{7}, DigestSize))
	tp, _ := New(clock, simtime.ProfileBroadcom(), Options{Seed: []byte("t"), OwnerAuth: owner})
	bus := tis.NewBus(tp)
	c := NewClient(bus, tis.Locality0, []byte("n"))
	if _, _, _, err := c.MakeIdentity(Digest{}); !IsCode(err, RCAuthFail) {
		t.Fatalf("wrong owner auth: %v, want auth fail", err)
	}
	if _, _, _, err := c.MakeIdentity(owner); err != nil {
		t.Fatalf("correct owner auth: %v", err)
	}
}

func TestNVPCRGating(t *testing.T) {
	r := newRig(t)
	pal := []byte("counter-owning PAL")
	v := ExtendDigest(Digest{}, palcrypto.SHA1Sum(pal))
	sel := SelectPCRs(17)
	dig := CompositeHash(sel, map[int]Digest{17: v})
	req := &NVPCRRequirement{Read: sel, ReadDigest: dig, Write: sel, WriteDigest: dig}
	if err := r.os.NVDefineSpace(Digest{}, 0x1000, 8, req); err != nil {
		t.Fatal(err)
	}
	// The OS (PCR 17 = -1) can neither read nor write.
	if err := r.os.NVWrite(0x1000, 0, []byte{1}); !IsCode(err, RCAreaLocked) {
		t.Fatalf("OS NV write: %v, want area locked", err)
	}
	if _, err := r.os.NVRead(0x1000, 0, 1); !IsCode(err, RCAreaLocked) {
		t.Fatalf("OS NV read: %v, want area locked", err)
	}
	// The right PAL can.
	runHashSequence(t, r, pal)
	if err := r.pal.NVWrite(0x1000, 0, []byte{0, 0, 0, 42}); err != nil {
		t.Fatalf("PAL NV write: %v", err)
	}
	got, err := r.pal.NVRead(0x1000, 0, 4)
	if err != nil || !bytes.Equal(got, []byte{0, 0, 0, 42}) {
		t.Fatalf("PAL NV read: %v %v", got, err)
	}
}

func TestNVUngatedAndBounds(t *testing.T) {
	r := newRig(t)
	if err := r.os.NVDefineSpace(Digest{}, 7, 16, nil); err != nil {
		t.Fatal(err)
	}
	// Redefinition is rejected.
	if err := r.os.NVDefineSpace(Digest{}, 7, 16, nil); !IsCode(err, RCBadIndex) {
		t.Fatalf("redefine: %v", err)
	}
	if err := r.os.NVWrite(7, 12, []byte{1, 2, 3, 4, 5}); !IsCode(err, RCBadParameter) {
		t.Fatalf("overflow write: %v", err)
	}
	if err := r.os.NVWrite(7, 4, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	got, err := r.os.NVRead(7, 4, 2)
	if err != nil || !bytes.Equal(got, []byte{9, 9}) {
		t.Fatalf("read back: %v %v", got, err)
	}
	if _, err := r.os.NVRead(99, 0, 1); !IsCode(err, RCBadIndex) {
		t.Fatalf("undefined index read: %v", err)
	}
}

func TestNVSurvivesReboot(t *testing.T) {
	r := newRig(t)
	r.os.NVDefineSpace(Digest{}, 3, 4, nil)
	r.os.NVWrite(3, 0, []byte{1, 2, 3, 4})
	r.tpm.Reboot()
	if err := r.os.Startup(); err != nil {
		t.Fatalf("startup after reboot: %v", err)
	}
	got, err := r.os.NVRead(3, 0, 4)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("NV lost across reboot: %v %v", got, err)
	}
}

func TestMonotonicCounter(t *testing.T) {
	r := newRig(t)
	id, err := r.os.CreateCounter(Digest{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := r.os.ReadCounter(id)
	if v != 0 {
		t.Fatalf("fresh counter = %d", v)
	}
	for i := 1; i <= 5; i++ {
		nv, err := r.os.IncrementCounter(id)
		if err != nil || nv != uint32(i) {
			t.Fatalf("increment %d: %d %v", i, nv, err)
		}
	}
	r.tpm.Reboot()
	if err := r.os.Startup(); err != nil {
		t.Fatalf("startup after reboot: %v", err)
	}
	if v, _ := r.os.ReadCounter(id); v != 5 {
		t.Fatalf("counter lost across reboot: %d", v)
	}
	if _, err := r.os.IncrementCounter(999); !IsCode(err, RCBadIndex) {
		t.Fatalf("bogus counter id: %v", err)
	}
}

func TestGetRandomDeterministicPerSeed(t *testing.T) {
	r := newRig(t)
	a, err := r.os.GetRandom(32)
	if err != nil || len(a) != 32 {
		t.Fatalf("GetRandom: %v len=%d", err, len(a))
	}
	b, _ := r.os.GetRandom(32)
	if bytes.Equal(a, b) {
		t.Fatal("successive GetRandom calls identical")
	}
	if _, err := r.os.GetRandom(1 << 20); err == nil {
		t.Fatal("oversize GetRandom accepted")
	}
}

func TestGetCapability(t *testing.T) {
	r := newRig(t)
	ver, n, err := r.os.GetVersion()
	if err != nil || ver != "1.2" || n != NumPCRs {
		t.Fatalf("GetVersion: %q %d %v", ver, n, err)
	}
	bc, err := r.os.BootCount()
	if err != nil || bc != 1 {
		t.Fatalf("BootCount: %d %v", bc, err)
	}
}

func TestMalformedCommandsDoNotPanic(t *testing.T) {
	r := newRig(t)
	inputs := [][]byte{
		nil,
		{1, 2, 3},
		marshalCommand(tagRQUCommand, 0xFFFF, nil),           // unknown ordinal
		marshalCommand(0x9999, OrdExtend, make([]byte, 24)),  // bad tag
		marshalCommand(tagRQUCommand, OrdExtend, []byte{1}),  // truncated body
		marshalCommand(tagRQUCommand, OrdSeal, []byte{0, 0}), // auth cmd, wrong tag
		marshalCommand(tagRQUAuth1, OrdUnseal, []byte{1, 2}), // short auth trailer
		func() []byte { // size field lies
			c := marshalCommand(tagRQUCommand, OrdPCRRead, []byte{0, 0, 0, 1})
			c[5] = 0xFF
			return c
		}(),
	}
	for i, in := range inputs {
		resp := r.tpm.HandleCommand(tis.Locality0, in)
		if _, rc, _, err := parseFrame(resp); err != nil || rc == RCSuccess {
			t.Errorf("input %d: rc=%#x err=%v (want graceful failure)", i, rc, err)
		}
	}
}

func TestTimingChargesMatchProfile(t *testing.T) {
	r := newRig(t)
	p := simtime.ProfileBroadcom()
	before := r.clock.Now()
	r.os.Extend(10, Digest{})
	if got := r.clock.Now() - before; got != p.TPMExtend {
		t.Errorf("extend charged %v, want %v", got, p.TPMExtend)
	}
	before = r.clock.Now()
	blob, _ := r.os.Seal(Digest{}, PCRSelection{}, Digest{}, []byte("d"))
	sealCost := r.clock.Now() - before
	// Seal = OIAP session + seal op.
	if want := p.TPMOIAPSession + p.TPMSeal; sealCost != want {
		t.Errorf("seal charged %v, want %v", sealCost, want)
	}
	before = r.clock.Now()
	r.os.Unseal(Digest{}, blob)
	if want := p.TPMOIAPSession + p.TPMUnseal; r.clock.Now()-before != want {
		t.Errorf("unseal charged %v, want %v", r.clock.Now()-before, want)
	}
}

func TestHashSequenceTransferCharge(t *testing.T) {
	r := newRig(t)
	p := simtime.ProfileBroadcom()
	before := r.clock.Now()
	runHashSequence(t, r, make([]byte, 4096))
	got := r.clock.Now() - before
	want := 4096 * p.TPMTransferPerByte
	if got != want {
		t.Errorf("4KB transfer charged %v, want %v", got, want)
	}
}

func TestCompositeHashDeterministic(t *testing.T) {
	sel := SelectPCRs(17, 18)
	vals := map[int]Digest{
		17: palcrypto.SHA1Sum([]byte("a")),
		18: palcrypto.SHA1Sum([]byte("b")),
	}
	if CompositeHash(sel, vals) != CompositeHash(sel, vals) {
		t.Fatal("composite not deterministic")
	}
	vals2 := map[int]Digest{17: vals[18], 18: vals[17]}
	if CompositeHash(sel, vals) == CompositeHash(sel, vals2) {
		t.Fatal("composite ignores value positions")
	}
}

func TestPCRSelection(t *testing.T) {
	s := SelectPCRs(0, 17, 23)
	if !s.Has(0) || !s.Has(17) || !s.Has(23) || s.Has(16) {
		t.Fatal("Has wrong")
	}
	idx := s.Indices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 17 || idx[2] != 23 {
		t.Fatalf("Indices = %v", idx)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SelectPCRs(24) did not panic")
		}
	}()
	SelectPCRs(24)
}

func TestStartupDiscipline(t *testing.T) {
	r := newRig(t)
	// A fresh TPM (New plays the BIOS) accepts commands immediately...
	if _, err := r.os.PCRRead(0); err != nil {
		t.Fatal(err)
	}
	// ...a double Startup without a reset is rejected...
	if err := r.os.Startup(); !IsCode(err, RCBadOrdinal) {
		t.Fatalf("double startup: %v", err)
	}
	// ...and after a reset everything but Startup fails.
	r.tpm.Reboot()
	if _, err := r.os.PCRRead(0); !IsCode(err, RCInvalidPostInit) {
		t.Fatalf("post-reset command: %v, want invalid-postinit", err)
	}
	if _, err := r.os.Seal(Digest{}, PCRSelection{}, Digest{}, []byte("x")); !IsCode(err, RCInvalidPostInit) {
		t.Fatalf("post-reset seal: %v", err)
	}
	if err := r.os.Startup(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.os.PCRRead(0); err != nil {
		t.Fatalf("post-startup command: %v", err)
	}
}
