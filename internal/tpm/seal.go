package tpm

import (
	"flicker/internal/palcrypto"
)

// Sealed-storage blob handling. TPM_Seal produces a ciphertext that only
// this TPM can open, and only when the PCRs named at seal time hold the
// values named at seal time (Section 2.2 of the paper). The blob travels
// through untrusted hands (the OS stores it on disk), so it is encrypted
// and authenticated, and it embeds tpmProof — a secret known only to this
// TPM — so that forged blobs are rejected.
//
// Blob layout:
//
//	magic "FLKRSEAL"
//	pcrSelection (TPM_PCR_SELECTION wire form)
//	digestAtRelease (20 bytes; all-zero if no PCR binding)
//	encSeed   (bytes32: PKCS#1 under the SRK public key)
//	ct        (bytes32: AES-128-CTR of tpmProof || data under K_enc(seed))
//	mac       (20 bytes: HMAC-SHA1 under K_mac(seed) of everything above)
const sealMagic = "FLKRSEAL"

func deriveSealKeys(seed []byte) (encKey []byte, macKey []byte) {
	e := palcrypto.SHA1Sum(append([]byte("seal-enc|"), seed...))
	m := palcrypto.SHA1Sum(append([]byte("seal-mac|"), seed...))
	return e[:16], m[:]
}

// sealLocked produces a sealed blob binding data to (sel, digestAtRelease).
// An empty selection (Count()==0) means no PCR binding.
func (t *TPM) sealLocked(sel PCRSelection, digestAtRelease Digest, data []byte) ([]byte, uint32) {
	seed := t.rng.Bytes(16)
	encKey, macKey := deriveSealKeys(seed)

	plain := &buf{}
	plain.raw(t.tpmProof[:])
	plain.bytes32(data)

	aes, err := palcrypto.NewAES(encKey)
	if err != nil {
		return nil, RCFail
	}
	ct := append([]byte(nil), plain.b...)
	var iv [16]byte // fresh seed per blob makes a zero IV safe
	aes.CTRKeystream(iv, ct)

	encSeed, err := palcrypto.EncryptPKCS1(t.rng, &t.srk.RSAPublicKey, seed)
	if err != nil {
		return nil, RCFail
	}

	w := &buf{}
	w.raw([]byte(sealMagic))
	sel.marshal(w)
	w.raw(digestAtRelease[:])
	w.bytes32(encSeed)
	w.bytes32(ct)
	mac := palcrypto.HMACSHA1(macKey, w.b)
	w.raw(mac[:])
	return w.b, RCSuccess
}

// unsealLocked opens a sealed blob, enforcing tpmProof and the PCR binding
// against the TPM's current PCR values.
func (t *TPM) unsealLocked(blob []byte) ([]byte, uint32) {
	r := &rdr{b: blob}
	magic, err := r.raw(len(sealMagic))
	if err != nil || string(magic) != sealMagic {
		return nil, RCNotSealedBlob
	}
	sel, err := parsePCRSelection(r)
	if err != nil {
		return nil, RCNotSealedBlob
	}
	dar, err := r.raw(DigestSize)
	if err != nil {
		return nil, RCNotSealedBlob
	}
	encSeed, err := r.bytes32()
	if err != nil {
		return nil, RCNotSealedBlob
	}
	ct, err := r.bytes32()
	if err != nil {
		return nil, RCNotSealedBlob
	}
	macGot, err := r.raw(DigestSize)
	if err != nil || !r.empty() {
		return nil, RCNotSealedBlob
	}

	seed, err := palcrypto.DecryptPKCS1(t.srk, encSeed)
	if err != nil {
		return nil, RCNotSealedBlob
	}
	encKey, macKey := deriveSealKeys(seed)
	macWant := palcrypto.HMACSHA1(macKey, blob[:len(blob)-DigestSize])
	if !palcrypto.ConstantTimeEqual(macGot, macWant[:]) {
		return nil, RCNotSealedBlob
	}

	aes, err := palcrypto.NewAES(encKey)
	if err != nil {
		return nil, RCFail
	}
	pt := append([]byte(nil), ct...)
	var iv [16]byte
	aes.CTRKeystream(iv, pt)
	pr := &rdr{b: pt}
	proof, err := pr.raw(DigestSize)
	if err != nil || !palcrypto.ConstantTimeEqual(proof, t.tpmProof[:]) {
		return nil, RCNotSealedBlob
	}
	data, err := pr.bytes32()
	if err != nil {
		return nil, RCNotSealedBlob
	}

	if sel.Count() > 0 {
		var want Digest
		copy(want[:], dar)
		if t.compositeLocked(sel) != want {
			return nil, RCWrongPCRVal
		}
	}
	return data, RCSuccess
}
