package tpm

import (
	"bytes"
	"testing"

	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

func TestCreateWrapKeyAndSign(t *testing.T) {
	r := newRig(t)
	var usageAuth Digest
	copy(usageAuth[:], bytes.Repeat([]byte{0x11}, DigestSize))
	blob, pub, err := r.os.CreateWrapKey(Digest{}, KeyUsageSigning, usageAuth)
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.os.LoadKey2(blob)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := r.os.Sign(h, usageAuth, []byte("message"))
	if err != nil {
		t.Fatal(err)
	}
	if err := palcrypto.VerifyPKCS1SHA1(pub, []byte("message"), sig); err != nil {
		t.Fatalf("signature invalid: %v", err)
	}
	// Wrong usage auth: rejected.
	if _, err := r.os.Sign(h, Digest{}, []byte("m")); !IsCode(err, RCAuthFail) {
		t.Fatalf("wrong usage auth: %v", err)
	}
}

func TestWrapKeyValidation(t *testing.T) {
	r := newRig(t)
	// Bad usage value.
	w := &buf{}
	w.u32(KHSRK)
	w.u16(0x9999)
	w.raw(make([]byte, DigestSize))
	if _, err := r.os.runAuth1(OrdCreateWrapKey, w.b, Digest{}); !IsCode(err, RCBadParameter) {
		t.Fatalf("bogus usage: %v", err)
	}
	// Non-SRK parent.
	w2 := &buf{}
	w2.u32(0x12345)
	w2.u16(KeyUsageSigning)
	w2.raw(make([]byte, DigestSize))
	if _, err := r.os.runAuth1(OrdCreateWrapKey, w2.b, Digest{}); !IsCode(err, RCBadIndex) {
		t.Fatalf("non-SRK parent: %v", err)
	}
}

func TestLoadKey2RejectsTamperedBlob(t *testing.T) {
	r := newRig(t)
	blob, _, err := r.os.CreateWrapKey(Digest{}, KeyUsageSigning, Digest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 1
		if _, err := r.os.LoadKey2(bad); err == nil {
			t.Errorf("tampered blob (byte %d) loaded", pos)
		}
	}
	if _, err := r.os.LoadKey2([]byte("junk")); err == nil {
		t.Error("garbage blob loaded")
	}
}

func TestLoadKey2RejectsForeignBlob(t *testing.T) {
	// A blob wrapped by a different TPM (different SRK + tpmProof) must
	// not load.
	r := newRig(t)
	clock := simtime.New()
	tp2, err := New(clock, simtime.ProfileBroadcom(), Options{Seed: []byte("other-tpm-2")})
	if err != nil {
		t.Fatal(err)
	}
	os2 := NewClient(tis.NewBus(tp2), tis.Locality0, []byte("n"))
	blob, _, err := os2.CreateWrapKey(Digest{}, KeyUsageSigning, Digest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.os.LoadKey2(blob); err == nil {
		t.Fatal("foreign key blob loaded")
	}
}

func TestFlushSpecific(t *testing.T) {
	r := newRig(t)
	blob, _, _ := r.os.CreateWrapKey(Digest{}, KeyUsageSigning, Digest{})
	h, err := r.os.LoadKey2(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.os.FlushSpecific(h); err != nil {
		t.Fatal(err)
	}
	// The handle is gone.
	if _, err := r.os.Sign(h, Digest{}, []byte("m")); !IsCode(err, RCBadIndex) {
		t.Fatalf("sign with flushed handle: %v", err)
	}
	if err := r.os.FlushSpecific(h); !IsCode(err, RCBadIndex) {
		t.Fatalf("double flush: %v", err)
	}
	if err := r.os.FlushSpecific(KHSRK); !IsCode(err, RCBadIndex) {
		t.Fatalf("SRK flush: %v", err)
	}
	// The blob reloads fine afterwards.
	if _, err := r.os.LoadKey2(blob); err != nil {
		t.Fatalf("reload after flush: %v", err)
	}
}

func TestKeySlotExhaustion(t *testing.T) {
	r := newRig(t)
	blob, _, _ := r.os.CreateWrapKey(Digest{}, KeyUsageSigning, Digest{})
	var handles []uint32
	for {
		h, err := r.os.LoadKey2(blob)
		if err != nil {
			if !IsCode(err, RCResources) {
				t.Fatalf("unexpected load failure: %v", err)
			}
			break
		}
		handles = append(handles, h)
		if len(handles) > 64 {
			t.Fatal("no slot limit enforced")
		}
	}
	// Freeing one slot lets a load succeed again.
	if err := r.os.FlushSpecific(handles[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.os.LoadKey2(blob); err != nil {
		t.Fatalf("load after flush: %v", err)
	}
}

func TestAIKCannotSignRawData(t *testing.T) {
	r := newRig(t)
	aik, _, _, err := r.os.MakeIdentity(Digest{})
	if err != nil {
		t.Fatal(err)
	}
	// AIKs sign quotes only; TPM_Sign with an AIK is rejected so an
	// attacker cannot fabricate a "quote" by signing a crafted
	// TPM_QUOTE_INFO as raw data.
	if _, err := r.os.Sign(aik, Digest{}, []byte("01010000QUOT...")); !IsCode(err, RCBadParameter) {
		t.Fatalf("AIK signed raw data: %v", err)
	}
}

func TestRebootEvictsKeysAndReloadWorks(t *testing.T) {
	r := newRig(t)
	aik, aikPub, blob, err := r.os.MakeIdentity(Digest{})
	if err != nil {
		t.Fatal(err)
	}
	runHashSequence(t, r, []byte("pal before reboot"))
	if _, err := r.os.Quote(aik, Digest{}, Digest{}, SelectPCRs(17)); err != nil {
		t.Fatalf("pre-reboot quote: %v", err)
	}
	r.tpm.Reboot()
	if err := r.os.Startup(); err != nil {
		t.Fatalf("startup after reboot: %v", err)
	}
	// The volatile handle is gone...
	if _, err := r.os.Quote(aik, Digest{}, Digest{}, SelectPCRs(17)); !IsCode(err, RCBadIndex) {
		t.Fatalf("quote with evicted handle: %v", err)
	}
	// ...but the wrapped blob reloads and quotes with the same key.
	h2, err := r.os.LoadKey2(blob)
	if err != nil {
		t.Fatal(err)
	}
	nonce := palcrypto.SHA1Sum([]byte("post-reboot"))
	q, err := r.os.Quote(h2, Digest{}, nonce, SelectPCRs(17))
	if err != nil {
		t.Fatal(err)
	}
	qi := QuoteInfo(q.Composite, nonce)
	if err := palcrypto.VerifyPKCS1SHA1(aikPub, qi, q.Signature); err != nil {
		t.Fatal("reloaded AIK is a different key")
	}
}

func TestWrapKeyBlobsAreUnique(t *testing.T) {
	r := newRig(t)
	a, apub, _ := r.os.CreateWrapKey(Digest{}, KeyUsageSigning, Digest{})
	b, bpub, _ := r.os.CreateWrapKey(Digest{}, KeyUsageSigning, Digest{})
	if bytes.Equal(a, b) {
		t.Fatal("two CreateWrapKey calls produced identical blobs")
	}
	if apub.N.Cmp(bpub.N) == 0 {
		t.Fatal("two CreateWrapKey calls produced the same key")
	}
}
