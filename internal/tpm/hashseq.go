package tpm

import (
	"encoding/binary"
	"fmt"

	"flicker/internal/hw/tis"
)

// RunHashSequence performs the locality-4 HASH_START / HASH_DATA / HASH_END
// sequence by which SKINIT transmits the SLB to the TPM. This is the CPU
// microcode path: it is the ONLY way PCR 17 can be reset without a reboot,
// and it submits at tis.Locality4, which no simulated software component
// holds. It returns the resulting PCR 17 value.
//
// The SLB is streamed in LPC-sized chunks; the per-byte transfer cost
// charged by the TPM is what produces Table 2's linear SKINIT latency.
func RunHashSequence(bus *tis.Bus, slb []byte) (Digest, error) {
	submit := submitLocality4(bus)
	if _, err := submit(OrdHashStart, nil); err != nil {
		return Digest{}, fmt.Errorf("tpm: hash start: %w", err)
	}
	const chunk = 4096
	for off := 0; off < len(slb); off += chunk {
		end := off + chunk
		if end > len(slb) {
			end = len(slb)
		}
		if _, err := submit(OrdHashData, slb[off:end]); err != nil {
			return Digest{}, fmt.Errorf("tpm: hash data: %w", err)
		}
	}
	out, err := submit(OrdHashEnd, nil)
	if err != nil {
		return Digest{}, fmt.Errorf("tpm: hash end: %w", err)
	}
	var v Digest
	if len(out) != DigestSize {
		return Digest{}, errTruncated
	}
	copy(v[:], out)
	return v, nil
}

// RunHashSequencePrecomputed performs the same locality-4 sequence when the
// CPU already knows the SLB's digest from its write-generation measurement
// cache: HASH_START (resetting PCRs 17-23 exactly as the streaming path
// does) followed by HASH_DIGEST, which charges the full per-byte transfer
// cost for totalLen bytes and extends digest into PCR 17. The PCR 17 value
// and the simulated time charged are bit-identical to streaming the same
// bytes through RunHashSequence; only the host-side hashing work is skipped.
func RunHashSequencePrecomputed(bus *tis.Bus, digest Digest, totalLen int) (Digest, error) {
	submit := submitLocality4(bus)
	if _, err := submit(OrdHashStart, nil); err != nil {
		return Digest{}, fmt.Errorf("tpm: hash start: %w", err)
	}
	body := make([]byte, 4+DigestSize)
	binary.BigEndian.PutUint32(body, uint32(totalLen))
	copy(body[4:], digest[:])
	out, err := submit(OrdHashDigest, body)
	if err != nil {
		return Digest{}, fmt.Errorf("tpm: hash digest: %w", err)
	}
	var v Digest
	if len(out) != DigestSize {
		return Digest{}, errTruncated
	}
	copy(v[:], out)
	return v, nil
}

// submitLocality4 returns a closure submitting one command at the hardware
// locality and unwrapping the response frame. The closure reuses one frame
// buffer across the sequence's commands (submits are synchronous and the
// TPM copies what it retains), so streaming a 64KB SLB in 4KB chunks frames
// without re-allocating.
func submitLocality4(bus *tis.Bus) func(ord uint32, body []byte) ([]byte, error) {
	var frame []byte
	return func(ord uint32, body []byte) ([]byte, error) {
		frame = appendCommand(frame, tagRQUCommand, ord, body)
		resp, err := bus.SubmitAt(tis.Locality4, frame)
		if err != nil {
			return nil, err
		}
		_, rc, out, err := parseFrame(resp)
		if err != nil {
			return nil, err
		}
		if rc != RCSuccess {
			return nil, &CommandError{Ordinal: ord, Code: rc}
		}
		return out, nil
	}
}
