package tpm

import (
	"fmt"

	"flicker/internal/hw/tis"
)

// RunHashSequence performs the locality-4 HASH_START / HASH_DATA / HASH_END
// sequence by which SKINIT transmits the SLB to the TPM. This is the CPU
// microcode path: it is the ONLY way PCR 17 can be reset without a reboot,
// and it submits at tis.Locality4, which no simulated software component
// holds. It returns the resulting PCR 17 value.
//
// The SLB is streamed in LPC-sized chunks; the per-byte transfer cost
// charged by the TPM is what produces Table 2's linear SKINIT latency.
func RunHashSequence(bus *tis.Bus, slb []byte) (Digest, error) {
	submit := func(ord uint32, body []byte) ([]byte, error) {
		resp, err := bus.SubmitAt(tis.Locality4, marshalCommand(tagRQUCommand, ord, body))
		if err != nil {
			return nil, err
		}
		_, rc, out, err := parseFrame(resp)
		if err != nil {
			return nil, err
		}
		if rc != RCSuccess {
			return nil, &CommandError{Ordinal: ord, Code: rc}
		}
		return out, nil
	}
	if _, err := submit(OrdHashStart, nil); err != nil {
		return Digest{}, fmt.Errorf("tpm: hash start: %w", err)
	}
	const chunk = 4096
	for off := 0; off < len(slb); off += chunk {
		end := off + chunk
		if end > len(slb) {
			end = len(slb)
		}
		if _, err := submit(OrdHashData, slb[off:end]); err != nil {
			return Digest{}, fmt.Errorf("tpm: hash data: %w", err)
		}
	}
	out, err := submit(OrdHashEnd, nil)
	if err != nil {
		return Digest{}, fmt.Errorf("tpm: hash end: %w", err)
	}
	var v Digest
	if len(out) != DigestSize {
		return Digest{}, errTruncated
	}
	copy(v[:], out)
	return v, nil
}
