package tpm

import (
	"encoding/binary"
	"strconv"

	"flicker/internal/hw/tis"
	"flicker/internal/metrics"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// dispatch executes one parsed command and records its per-ordinal metrics:
// a count labeled by result code, and the command's simulated latency (the
// clock time its charges advanced — the quantity Section 7's tables report).
// Callers hold t.mu.
func (t *TPM) dispatch(loc tis.Locality, tag uint16, ord uint32, body []byte) ([]byte, uint32) {
	start := t.clock.Now()
	rbody, rc := t.dispatchOrdinal(loc, tag, ord, body)
	name := OrdinalName(ord)
	if rc == RCSuccess {
		c, ok := t.okCounters[ord]
		if !ok {
			c = t.metCommands.With(name, "0").Cell()
			t.okCounters[ord] = c
		}
		c.Inc()
	} else {
		//flickervet:allow metrichandle(non-success result codes are once-per-incident fault paths)
		t.metCommands.With(name, strconv.FormatUint(uint64(rc), 10)).Inc()
	}
	h, ok := t.latHists[ord]
	if !ok {
		h = t.metLatency.With(name).Cell()
		t.latHists[ord] = h
	}
	h.ObserveDurationExemplar(t.clock.Now()-start, t.traceTag.Get())
	if rc == RCBadLocality {
		t.events.Record(metrics.EventLocalityFault,
			"tpm: "+name+" refused at locality "+strconv.Itoa(int(loc)))
	}
	return rbody, rc
}

// dispatchOrdinal is the ordinal switch behind dispatch.
func (t *TPM) dispatchOrdinal(loc tis.Locality, tag uint16, ord uint32, body []byte) ([]byte, uint32) {
	if t.needStartup && ord != OrdStartup {
		return nil, RCInvalidPostInit
	}
	switch ord {
	case OrdStartup:
		return t.cmdStartup()
	case OrdOIAP:
		return t.cmdOIAP()
	case OrdOSAP:
		return t.cmdOSAP(body)
	case OrdExtend:
		return t.cmdExtend(body)
	case OrdPCRRead:
		return t.cmdPCRRead(body)
	case OrdPCRReset:
		return t.cmdPCRReset(loc, body)
	case OrdGetRandom:
		return t.cmdGetRandom(body)
	case OrdGetCapability:
		return t.cmdGetCapability(body)
	case OrdQuote:
		return t.cmdQuote(tag, body)
	case OrdSeal:
		return t.cmdSeal(tag, body)
	case OrdUnseal:
		return t.cmdUnseal(tag, body)
	case OrdMakeIdentity:
		return t.cmdMakeIdentity(tag, body)
	case OrdLoadKey2:
		return t.cmdLoadKey2Blob(body)
	case OrdCreateWrapKey:
		return t.cmdCreateWrapKey(tag, body)
	case OrdSign:
		return t.cmdSign(tag, body)
	case OrdFlushSpecific:
		return t.cmdFlushSpecific(body)
	case OrdNVDefineSpace:
		return t.cmdNVDefineSpace(tag, body)
	case OrdNVWriteValue:
		return t.cmdNVWriteValue(body)
	case OrdNVReadValue:
		return t.cmdNVReadValue(body)
	case OrdCreateCounter:
		return t.cmdCreateCounter(tag, body)
	case OrdIncrementCounter:
		return t.cmdIncrementCounter(body)
	case OrdReadCounter:
		return t.cmdReadCounter(body)
	case OrdHashStart:
		return t.cmdHashStart(loc)
	case OrdHashData:
		return t.cmdHashData(loc, body)
	case OrdHashEnd:
		return t.cmdHashEnd(loc)
	case OrdHashDigest:
		return t.cmdHashDigest(loc, body)
	default:
		return nil, RCBadOrdinal
	}
}

func (t *TPM) cmdOIAP() ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMOIAPSession, Label: "tpm.oiap"})
	h, ne := t.oiapLocked()
	w := t.respBuf()
	w.u32(h)
	w.raw(ne[:])
	return w.b, RCSuccess
}

func (t *TPM) cmdOSAP(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMOIAPSession, Label: "tpm.osap"})
	r := &rdr{b: body}
	et, err := r.u16()
	if err != nil {
		return nil, RCBadParameter
	}
	ev, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	no, err := r.raw(DigestSize)
	if err != nil {
		return nil, RCBadParameter
	}
	var nonceOddOSAP Digest
	copy(nonceOddOSAP[:], no)
	h, ne, neOSAP, rc := t.osapLocked(et, ev, nonceOddOSAP)
	if rc != RCSuccess {
		return nil, rc
	}
	w := t.respBuf()
	w.u32(h)
	w.raw(ne[:])
	w.raw(neOSAP[:])
	return w.b, RCSuccess
}

func (t *TPM) cmdExtend(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMExtend, Label: "tpm.extend"})
	r := &rdr{b: body}
	idx, err := r.u32()
	if err != nil || idx >= NumPCRs {
		return nil, RCBadIndex
	}
	db, err := r.raw(DigestSize)
	if err != nil {
		return nil, RCBadParameter
	}
	var m Digest
	copy(m[:], db)
	t.extendLocked(int(idx), m)
	return t.pcrs[idx][:], RCSuccess
}

func (t *TPM) cmdPCRRead(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMPCRRead, Label: "tpm.pcrread"})
	r := &rdr{b: body}
	idx, err := r.u32()
	if err != nil || idx >= NumPCRs {
		return nil, RCBadIndex
	}
	return t.pcrs[idx][:], RCSuccess
}

// cmdPCRReset implements the software TPM_PCR_Reset. Per the v1.2 locality
// matrix, software may reset PCRs 20-22 from locality 2 or higher. PCR 17
// is *never* software-resettable: "Only a hardware command from the CPU can
// reset PCR 17" (paper Section 2.3). That restriction is the root of
// Flicker's attestation guarantee.
func (t *TPM) cmdPCRReset(loc tis.Locality, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMExtend, Label: "tpm.pcrreset"})
	r := &rdr{b: body}
	sel, err := parsePCRSelection(r)
	if err != nil {
		return nil, RCBadParameter
	}
	idxs := sel.Indices()
	if len(idxs) == 0 {
		return nil, RCBadParameter
	}
	for _, i := range idxs {
		if i < 20 || i > 22 {
			return nil, RCBadIndex
		}
	}
	if loc < tis.Locality2 {
		return nil, RCBadLocality
	}
	for _, i := range idxs {
		t.pcrs[i] = Digest{}
	}
	return nil, RCSuccess
}

func (t *TPM) cmdGetRandom(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMGetRandom, Label: "tpm.getrandom"})
	r := &rdr{b: body}
	n, err := r.u32()
	if err != nil || n > 4096 {
		return nil, RCBadParameter
	}
	if cap(t.rnd) < int(n) {
		t.rnd = make([]byte, n)
	}
	t.rnd = t.rnd[:n]
	t.rng.Read(t.rnd)
	w := t.respBuf()
	w.bytes32(t.rnd)
	return w.b, RCSuccess
}

func (t *TPM) cmdGetCapability(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMPCRRead, Label: "tpm.getcapability"})
	r := &rdr{b: body}
	area, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	w := t.respBuf()
	switch area {
	case 0: // version + PCR count
		w.raw([]byte{1, 2, 0, 0})
		w.u32(NumPCRs)
	case 1: // boot count
		w.u32(uint32(t.bootCount))
	default:
		return nil, RCBadParameter
	}
	return w.b, RCSuccess
}

// cmdQuote signs (nonce, selected PCRs) with a loaded AIK.
// Params: keyHandle(4) || externalData(20) || pcrSelection. Auth targets
// the key handle.
func (t *TPM) cmdQuote(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMQuote, Label: "tpm.quote"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	r := &rdr{b: params}
	kh, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	ed, err := r.raw(DigestSize)
	if err != nil {
		return nil, RCBadParameter
	}
	sel, err := parsePCRSelection(r)
	if err != nil {
		return nil, RCBadParameter
	}
	key, ok := t.keys[kh]
	if !ok || !key.isAIK {
		return nil, RCBadIndex
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdQuote, params, tr, ETKeyHandle, kh)
	if rc != RCSuccess {
		return nil, rc
	}
	composite := t.compositeLocked(sel)
	var nonce Digest
	copy(nonce[:], ed)
	qi := QuoteInfo(composite, nonce)
	sig, err := palcrypto.SignPKCS1SHA1(key.priv, qi)
	if err != nil {
		return nil, RCFail
	}
	w := t.respBuf()
	w.raw(composite[:])
	w.bytes32(sig)
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdQuote, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

// cmdSeal binds data to a future PCR state.
// Params: keyHandle(4) || digestAtRelease(20) || pcrSelection || bytes32(data).
func (t *TPM) cmdSeal(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMSeal, Label: "tpm.seal"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	r := &rdr{b: params}
	kh, err := r.u32()
	if err != nil || kh != KHSRK {
		return nil, RCBadIndex
	}
	darb, err := r.raw(DigestSize)
	if err != nil {
		return nil, RCBadParameter
	}
	sel, err := parsePCRSelection(r)
	if err != nil {
		return nil, RCBadParameter
	}
	data, err := r.bytes32()
	if err != nil {
		return nil, RCBadParameter
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdSeal, params, tr, ETKeyHandle, kh)
	if rc != RCSuccess {
		return nil, rc
	}
	var dar Digest
	copy(dar[:], darb)
	blob, rc := t.sealLocked(sel, dar, data)
	if rc != RCSuccess {
		return nil, rc
	}
	w := t.respBuf()
	w.bytes32(blob)
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdSeal, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

// cmdUnseal releases sealed data if the PCR binding is satisfied.
// Params: keyHandle(4) || bytes32(blob).
func (t *TPM) cmdUnseal(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMUnseal, Label: "tpm.unseal"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	r := &rdr{b: params}
	kh, err := r.u32()
	if err != nil || kh != KHSRK {
		return nil, RCBadIndex
	}
	blob, err := r.bytes32()
	if err != nil {
		return nil, RCBadParameter
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdUnseal, params, tr, ETKeyHandle, kh)
	if rc != RCSuccess {
		return nil, rc
	}
	data, rc := t.unsealLocked(blob)
	if rc != RCSuccess {
		return nil, rc
	}
	w := t.respBuf()
	w.bytes32(data)
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdUnseal, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

// cmdMakeIdentity generates a fresh AIK (owner-authorized) and returns its
// handle and public key. In the real protocol the AIK public key is then
// certified by a Privacy CA; internal/attest implements that step.
func (t *TPM) cmdMakeIdentity(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMMakeIdentity, Label: "tpm.makeidentity"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdMakeIdentity, params, tr, ETOwner, KHOwner)
	if rc != RCSuccess {
		return nil, rc
	}
	priv, err := palcrypto.GenerateRSAKey(t.rng, t.keyBits)
	if err != nil {
		return nil, RCFail
	}
	blob, rc := t.wrapKeyLocked(priv, KeyUsageIdentity, Digest{})
	if rc != RCSuccess {
		return nil, rc
	}
	h := t.nextHandle
	t.nextHandle++
	t.keys[h] = &loadedKey{priv: priv, isAIK: true}
	w := t.respBuf()
	w.u32(h)
	w.bytes32(palcrypto.MarshalPublicKey(&priv.RSAPublicKey))
	w.bytes32(blob)
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdMakeIdentity, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

func (t *TPM) cmdCreateCounter(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMCounter, Label: "tpm.createcounter"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdCreateCounter, params, tr, ETOwner, KHOwner)
	if rc != RCSuccess {
		return nil, rc
	}
	id := t.nextCounter
	t.nextCounter++
	t.counters[id] = &counter{}
	w := t.respBuf()
	w.u32(id)
	w.u32(0)
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdCreateCounter, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

func (t *TPM) cmdIncrementCounter(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMCounter, Label: "tpm.inccounter"})
	r := &rdr{b: body}
	id, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	c, ok := t.counters[id]
	if !ok {
		return nil, RCBadIndex
	}
	c.value++
	w := t.respBuf()
	w.u32(c.value)
	return w.b, RCSuccess
}

func (t *TPM) cmdReadCounter(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMCounter, Label: "tpm.readcounter"})
	r := &rdr{b: body}
	id, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	c, ok := t.counters[id]
	if !ok {
		return nil, RCBadIndex
	}
	w := t.respBuf()
	w.u32(c.value)
	return w.b, RCSuccess
}

// Locality-4 hash sequence: the CPU's SKINIT microcode resets the dynamic
// PCRs, streams the SLB through HashData, and HashEnd extends the final
// digest into PCR 17. No software locality may issue these.

func (t *TPM) cmdHashStart(loc tis.Locality) ([]byte, uint32) {
	if loc != tis.Locality4 {
		return nil, RCBadLocality
	}
	for i := FirstDynamicPCR; i <= LastDynamicPCR; i++ {
		t.pcrs[i] = Digest{}
	}
	t.events.Record(metrics.EventPCR17Reset,
		"tpm: locality-4 hash sequence reset PCRs 17-23")
	t.hashActive = true
	t.hash.Reset()
	return nil, RCSuccess
}

func (t *TPM) cmdHashData(loc tis.Locality, body []byte) ([]byte, uint32) {
	if loc != tis.Locality4 {
		return nil, RCBadLocality
	}
	if !t.hashActive {
		return nil, RCFail
	}
	// The dominant SKINIT cost: transferring the SLB over the LPC bus and
	// hashing it inside the TPM (Table 2's linear growth).
	t.charge(simtime.Charge{
		Duration: time64(len(body)) * t.profile.TPMTransferPerByte,
		Label:    "tpm.hashdata",
	})
	t.hash.Write(body)
	return nil, RCSuccess
}

func (t *TPM) cmdHashEnd(loc tis.Locality) ([]byte, uint32) {
	if loc != tis.Locality4 {
		return nil, RCBadLocality
	}
	if !t.hashActive {
		return nil, RCFail
	}
	var m Digest
	t.hash.SumInto(&m)
	t.extendLocked(17, m)
	t.hashActive = false
	return t.pcrs[17][:], RCSuccess
}

// cmdHashDigest is the single-command fast path of the locality-4 hash
// sequence, used when the CPU's measurement cache already holds the digest
// of an unchanged SLB. The body is a big-endian u32 transfer length followed
// by the 20-byte digest. It charges exactly what the equivalent HASH_DATA
// chunk stream would have (len × per-byte transfer, in one charge — the sums
// are identical, so Table 2's simulated latencies are unchanged), extends
// the digest into PCR 17 and closes the sequence. Only reachable after a
// HASH_START, so the fast path can never skip the PCR 17-23 reset.
func (t *TPM) cmdHashDigest(loc tis.Locality, body []byte) ([]byte, uint32) {
	if loc != tis.Locality4 {
		return nil, RCBadLocality
	}
	if !t.hashActive {
		return nil, RCFail
	}
	if len(body) != 4+DigestSize {
		return nil, RCBadParameter
	}
	totalLen := binary.BigEndian.Uint32(body)
	t.charge(simtime.Charge{
		Duration: time64(int(totalLen)) * t.profile.TPMTransferPerByte,
		Label:    "tpm.hashdata",
	})
	var m Digest
	copy(m[:], body[4:])
	t.extendLocked(17, m)
	t.hashActive = false
	return t.pcrs[17][:], RCSuccess
}

// cmdStartup is TPM_Startup(ST_CLEAR): the BIOS's first command after a
// platform reset, which unlocks the rest of the command set.
func (t *TPM) cmdStartup() ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMPCRRead, Label: "tpm.startup"})
	if !t.needStartup {
		// A second Startup without an intervening reset is an error.
		return nil, RCBadOrdinal
	}
	t.needStartup = false
	return nil, RCSuccess
}
