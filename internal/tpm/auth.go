package tpm

import (
	"flicker/internal/palcrypto"
)

// TPM 1.2 authorization sessions. OIAP sessions authorize commands with an
// HMAC keyed by the target entity's usage secret; OSAP sessions derive a
// shared secret bound to one entity at session setup. The paper's "TPM
// Utilities" PAL module implements exactly these two session types to
// authorize Seal and Unseal (Section 5.1.2).

type sessionType int

const (
	sessionOIAP sessionType = iota
	sessionOSAP
)

type session struct {
	typ          sessionType
	nonceEven    Digest
	sharedSecret Digest // OSAP only
	entityType   uint16 // OSAP only
	entityValue  uint32 // OSAP only
}

// newNonce draws a fresh nonce from the TPM RNG.
func (t *TPM) newNonce() Digest {
	var n Digest
	copy(n[:], t.rng.Bytes(DigestSize))
	return n
}

// oiapLocked creates an OIAP session, returning (handle, nonceEven).
func (t *TPM) oiapLocked() (uint32, Digest) {
	h := t.nextSession
	t.nextSession++
	s := &session{typ: sessionOIAP, nonceEven: t.newNonce()}
	t.sessions[h] = s
	return h, s.nonceEven
}

// osapLocked creates an OSAP session bound to an entity. nonceOddOSAP comes
// from the caller; the shared secret is HMAC(entityAuth, nonceEvenOSAP ||
// nonceOddOSAP).
func (t *TPM) osapLocked(entityType uint16, entityValue uint32, nonceOddOSAP Digest) (handle uint32, nonceEven, nonceEvenOSAP Digest, rc uint32) {
	auth, rc := t.entityAuthLocked(entityType, entityValue)
	if rc != RCSuccess {
		return 0, Digest{}, Digest{}, rc
	}
	nonceEvenOSAP = t.newNonce()
	var msg []byte
	msg = append(msg, nonceEvenOSAP[:]...)
	msg = append(msg, nonceOddOSAP[:]...)
	shared := palcrypto.HMACSHA1(auth[:], msg)
	h := t.nextSession
	t.nextSession++
	s := &session{
		typ:         sessionOSAP,
		nonceEven:   t.newNonce(),
		entityType:  entityType,
		entityValue: entityValue,
	}
	copy(s.sharedSecret[:], shared[:])
	t.sessions[h] = s
	return h, s.nonceEven, nonceEvenOSAP, RCSuccess
}

// entityAuthLocked returns the usage secret for an entity addressed by an
// OSAP request or an OIAP-authorized command.
func (t *TPM) entityAuthLocked(entityType uint16, entityValue uint32) (Digest, uint32) {
	switch entityType {
	case ETOwner:
		return t.ownerAuth, RCSuccess
	case ETKeyHandle:
		if entityValue == KHSRK {
			return t.srkAuth, RCSuccess
		}
		if k, ok := t.keys[entityValue]; ok {
			return k.usageAuth, RCSuccess
		}
		return Digest{}, RCBadIndex
	default:
		return Digest{}, RCBadParameter
	}
}

// authTrailer is the TPM 1.2 auth1 block appended to authorized commands:
// authHandle(4) || nonceOdd(20) || continueAuthSession(1) || authValue(20).
type authTrailer struct {
	handle   uint32
	nonceOdd Digest
	cont     bool
	auth     Digest
}

const authTrailerLen = 4 + DigestSize + 1 + DigestSize

// splitAuth1 splits an auth1 command body into parameters and trailer.
func splitAuth1(body []byte) (params []byte, tr authTrailer, err error) {
	if len(body) < authTrailerLen {
		return nil, tr, errTruncated
	}
	params = body[:len(body)-authTrailerLen]
	r := &rdr{b: body[len(body)-authTrailerLen:]}
	tr.handle, _ = r.u32()
	no, _ := r.raw(DigestSize)
	copy(tr.nonceOdd[:], no)
	c, _ := r.u8()
	tr.cont = c != 0
	av, _ := r.raw(DigestSize)
	copy(tr.auth[:], av)
	return params, tr, nil
}

// appendAuth1 appends an auth trailer to a command body (client side).
func appendAuth1(body []byte, tr authTrailer) []byte {
	w := &buf{b: body}
	w.u32(tr.handle)
	w.raw(tr.nonceOdd[:])
	if tr.cont {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.raw(tr.auth[:])
	return w.b
}

// authMAC computes the command authorization HMAC per TPM 1.2 Part 1 §13:
// HMAC(key, SHA1(ordinal || params) || nonceEven || nonceOdd || continue).
func authMAC(key Digest, ordinal uint32, params []byte, nonceEven, nonceOdd Digest, cont bool) Digest {
	w := &buf{}
	w.u32(ordinal)
	w.raw(params)
	paramDigest := palcrypto.SHA1Sum(w.b)
	m := &buf{}
	m.raw(paramDigest[:])
	m.raw(nonceEven[:])
	m.raw(nonceOdd[:])
	if cont {
		m.u8(1)
	} else {
		m.u8(0)
	}
	return palcrypto.HMACSHA1(key[:], m.b)
}

// responseMAC computes the response authorization HMAC:
// HMAC(key, SHA1(returnCode || ordinal || outParams) || nonceEven' ||
// nonceOdd || continue).
func responseMAC(key Digest, rc, ordinal uint32, outParams []byte, nonceEven, nonceOdd Digest, cont bool) Digest {
	w := &buf{}
	w.u32(rc)
	w.u32(ordinal)
	w.raw(outParams)
	paramDigest := palcrypto.SHA1Sum(w.b)
	m := &buf{}
	m.raw(paramDigest[:])
	m.raw(nonceEven[:])
	m.raw(nonceOdd[:])
	if cont {
		m.u8(1)
	} else {
		m.u8(0)
	}
	return palcrypto.HMACSHA1(key[:], m.b)
}

// verifyAuthLocked checks an auth trailer for a command targeting the given
// entity. On success it rolls the session nonce and returns the key to MAC
// the response with, along with the fresh nonceEven.
func (t *TPM) verifyAuthLocked(ordinal uint32, params []byte, tr authTrailer, entityType uint16, entityValue uint32) (key Digest, nonceEven Digest, rc uint32) {
	s, ok := t.sessions[tr.handle]
	if !ok {
		return Digest{}, Digest{}, RCAuthFail
	}
	switch s.typ {
	case sessionOIAP:
		auth, arc := t.entityAuthLocked(entityType, entityValue)
		if arc != RCSuccess {
			return Digest{}, Digest{}, arc
		}
		key = auth
	case sessionOSAP:
		if s.entityType != entityType || s.entityValue != entityValue {
			return Digest{}, Digest{}, RCAuthFail
		}
		key = s.sharedSecret
	}
	want := authMAC(key, ordinal, params, s.nonceEven, tr.nonceOdd, tr.cont)
	if !palcrypto.ConstantTimeEqual(want[:], tr.auth[:]) {
		delete(t.sessions, tr.handle)
		return Digest{}, Digest{}, RCAuthFail
	}
	// Roll the even nonce; close the session unless continueAuthSession.
	s.nonceEven = t.newNonce()
	nonceEven = s.nonceEven
	if !tr.cont {
		delete(t.sessions, tr.handle)
	}
	return key, nonceEven, RCSuccess
}

// appendResponseAuth appends nonceEven || continue || responseMAC to a
// response body.
func appendResponseAuth(body []byte, key Digest, rc, ordinal uint32, nonceEven, nonceOdd Digest, cont bool) []byte {
	mac := responseMAC(key, rc, ordinal, body, nonceEven, nonceOdd, cont)
	w := &buf{b: body}
	w.raw(nonceEven[:])
	if cont {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.raw(mac[:])
	return w.b
}
