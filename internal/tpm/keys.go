package tpm

import (
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

// Wrapped-key management (TPM 1.2 Part 3 §10). Keys other than the SRK
// live OUTSIDE the TPM as wrapped blobs: the private half is encrypted
// under the parent storage key and bound to this TPM with tpmProof. The
// OS's TPM software stack loads blobs into volatile handles with LoadKey2
// and evicts them with FlushSpecific; a reboot clears every loaded handle,
// so the tqd must reload its AIK blob after a power cycle.

// Key usage values (TPM_KEY_USAGE).
const (
	KeyUsageSigning  uint16 = 0x0010
	KeyUsageStorage  uint16 = 0x0011
	KeyUsageIdentity uint16 = 0x0012
)

// Additional ordinals for key management.
const (
	OrdCreateWrapKey uint32 = 0x0000001F
	OrdSign          uint32 = 0x0000003C
	OrdFlushSpecific uint32 = 0x000000BA
)

const keyBlobMagic = "FLKRKEY1"

// wrapKeyLocked produces a wrapped key blob: usage and usageAuth travel
// with the encrypted private key; the public half is plaintext.
func (t *TPM) wrapKeyLocked(priv *palcrypto.RSAPrivateKey, usage uint16, usageAuth Digest) ([]byte, uint32) {
	plain := &buf{}
	plain.u16(usage)
	plain.raw(usageAuth[:])
	plain.raw(t.tpmProof[:])
	plain.bytes32(palcrypto.MarshalPrivateKey(priv))

	seed := t.rng.Bytes(16)
	encKey, macKey := deriveSealKeys(append([]byte("wrapkey|"), seed...))
	aes, err := palcrypto.NewAES(encKey)
	if err != nil {
		return nil, RCFail
	}
	ct := append([]byte(nil), plain.b...)
	var iv [16]byte
	aes.CTRKeystream(iv, ct)
	encSeed, err := palcrypto.EncryptPKCS1(t.rng, &t.srk.RSAPublicKey, seed)
	if err != nil {
		return nil, RCFail
	}
	w := &buf{}
	w.raw([]byte(keyBlobMagic))
	w.bytes32(palcrypto.MarshalPublicKey(&priv.RSAPublicKey))
	w.bytes32(encSeed)
	w.bytes32(ct)
	mac := palcrypto.HMACSHA1(macKey, w.b)
	w.raw(mac[:])
	return w.b, RCSuccess
}

// unwrapKeyLocked opens a wrapped key blob.
func (t *TPM) unwrapKeyLocked(blob []byte) (*loadedKey, uint16, uint32) {
	r := &rdr{b: blob}
	magic, err := r.raw(len(keyBlobMagic))
	if err != nil || string(magic) != keyBlobMagic {
		return nil, 0, RCBadParameter
	}
	pubRaw, err := r.bytes32()
	if err != nil {
		return nil, 0, RCBadParameter
	}
	encSeed, err := r.bytes32()
	if err != nil {
		return nil, 0, RCBadParameter
	}
	ct, err := r.bytes32()
	if err != nil {
		return nil, 0, RCBadParameter
	}
	macGot, err := r.raw(DigestSize)
	if err != nil || !r.empty() {
		return nil, 0, RCBadParameter
	}
	seed, err := palcrypto.DecryptPKCS1(t.srk, encSeed)
	if err != nil {
		return nil, 0, RCBadParameter
	}
	encKey, macKey := deriveSealKeys(append([]byte("wrapkey|"), seed...))
	macWant := palcrypto.HMACSHA1(macKey, blob[:len(blob)-DigestSize])
	if !palcrypto.ConstantTimeEqual(macGot, macWant[:]) {
		return nil, 0, RCBadParameter
	}
	aes, err := palcrypto.NewAES(encKey)
	if err != nil {
		return nil, 0, RCFail
	}
	pt := append([]byte(nil), ct...)
	var iv [16]byte
	aes.CTRKeystream(iv, pt)
	pr := &rdr{b: pt}
	usage, err := pr.u16()
	if err != nil {
		return nil, 0, RCBadParameter
	}
	ua, err := pr.raw(DigestSize)
	if err != nil {
		return nil, 0, RCBadParameter
	}
	proof, err := pr.raw(DigestSize)
	if err != nil || !palcrypto.ConstantTimeEqual(proof, t.tpmProof[:]) {
		return nil, 0, RCBadParameter
	}
	privRaw, err := pr.bytes32()
	if err != nil {
		return nil, 0, RCBadParameter
	}
	priv, err := palcrypto.UnmarshalPrivateKey(privRaw)
	if err != nil {
		return nil, 0, RCBadParameter
	}
	// Cross-check the plaintext public half against the wrapped private.
	pub, err := palcrypto.UnmarshalPublicKey(pubRaw)
	if err != nil || pub.N.Cmp(priv.N) != 0 {
		return nil, 0, RCBadParameter
	}
	lk := &loadedKey{priv: priv, isAIK: usage == KeyUsageIdentity}
	copy(lk.usageAuth[:], ua)
	return lk, usage, RCSuccess
}

// cmdCreateWrapKey generates a keypair wrapped under the SRK.
// Params: parentHandle(4) || keyUsage(2) || usageAuth(20). Auth targets the
// parent (the SRK).
func (t *TPM) cmdCreateWrapKey(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMMakeIdentity, Label: "tpm.createwrapkey"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	r := &rdr{b: params}
	parent, err := r.u32()
	if err != nil || parent != KHSRK {
		return nil, RCBadIndex
	}
	usage, err := r.u16()
	if err != nil {
		return nil, RCBadParameter
	}
	switch usage {
	case KeyUsageSigning, KeyUsageStorage, KeyUsageIdentity:
	default:
		return nil, RCBadParameter
	}
	uab, err := r.raw(DigestSize)
	if err != nil {
		return nil, RCBadParameter
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdCreateWrapKey, params, tr, ETKeyHandle, parent)
	if rc != RCSuccess {
		return nil, rc
	}
	priv, err := palcrypto.GenerateRSAKey(t.rng, t.keyBits)
	if err != nil {
		return nil, RCFail
	}
	var usageAuth Digest
	copy(usageAuth[:], uab)
	blob, rc := t.wrapKeyLocked(priv, usage, usageAuth)
	if rc != RCSuccess {
		return nil, rc
	}
	w := &buf{}
	w.bytes32(blob)
	w.bytes32(palcrypto.MarshalPublicKey(&priv.RSAPublicKey))
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdCreateWrapKey, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}

// cmdLoadKey2Blob loads a wrapped key blob into a volatile handle.
// Params: parentHandle(4) || bytes32(blob).
func (t *TPM) cmdLoadKey2Blob(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMLoadKey, Label: "tpm.loadkey"})
	r := &rdr{b: body}
	parent, err := r.u32()
	if err != nil || parent != KHSRK {
		return nil, RCBadIndex
	}
	blob, err := r.bytes32()
	if err != nil {
		return nil, RCBadParameter
	}
	lk, _, rc := t.unwrapKeyLocked(blob)
	if rc != RCSuccess {
		return nil, rc
	}
	if len(t.keys) >= 16 {
		return nil, RCResources // volatile key slots are scarce on real parts
	}
	h := t.nextHandle
	t.nextHandle++
	t.keys[h] = lk
	w := &buf{}
	w.u32(h)
	return w.b, RCSuccess
}

// cmdFlushSpecific evicts a loaded key. Params: handle(4).
func (t *TPM) cmdFlushSpecific(body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMPCRRead, Label: "tpm.flush"})
	r := &rdr{b: body}
	h, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	if h == KHSRK {
		return nil, RCBadIndex // the SRK is not evictable
	}
	if _, ok := t.keys[h]; !ok {
		return nil, RCBadIndex
	}
	delete(t.keys, h)
	return nil, RCSuccess
}

// cmdSign signs data with a loaded signing key.
// Params: keyHandle(4) || bytes32(data). Auth targets the key.
func (t *TPM) cmdSign(tag uint16, body []byte) ([]byte, uint32) {
	t.charge(simtime.Charge{Duration: t.profile.TPMQuote / 2, Label: "tpm.sign"})
	if tag != tagRQUAuth1 {
		return nil, RCAuthFail
	}
	params, tr, err := splitAuth1(body)
	if err != nil {
		return nil, RCBadParameter
	}
	r := &rdr{b: params}
	kh, err := r.u32()
	if err != nil {
		return nil, RCBadParameter
	}
	data, err := r.bytes32()
	if err != nil {
		return nil, RCBadParameter
	}
	key, ok := t.keys[kh]
	if !ok {
		return nil, RCBadIndex
	}
	if key.isAIK {
		// AIKs only sign TPM-internal structures (quotes), never raw data.
		return nil, RCBadParameter
	}
	authKey, nonceEven, rc := t.verifyAuthLocked(OrdSign, params, tr, ETKeyHandle, kh)
	if rc != RCSuccess {
		return nil, rc
	}
	sig, err := palcrypto.SignPKCS1SHA1(key.priv, data)
	if err != nil {
		return nil, RCFail
	}
	w := &buf{}
	w.bytes32(sig)
	return appendResponseAuth(w.b, authKey, RCSuccess, OrdSign, nonceEven, tr.nonceOdd, tr.cont), RCSuccess
}
