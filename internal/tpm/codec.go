package tpm

import (
	"encoding/binary"
	"errors"
)

// The TPM speaks a byte-level command protocol (TPM 1.2 Part 3). This file
// holds the little marshaling toolkit used by both the TPM core and client
// drivers: big-endian integers and length-prefixed byte fields, plus the
// request/response framing.
//
// Request frame:  tag(2) | totalSize(4) | ordinal(4)  | body...
// Response frame: tag(2) | totalSize(4) | returnCode(4) | body...

// Command tags (TPM 1.2 Part 3 §2.1).
const (
	tagRQUCommand uint16 = 0x00C1
	tagRSPCommand uint16 = 0x00C4
	tagRQUAuth1   uint16 = 0x00C2
	tagRSPAuth1   uint16 = 0x00C5
)

// Ordinals for the commands Flicker uses (TPM 1.2 Part 2 §17).
const (
	OrdStartup          uint32 = 0x00000099
	OrdOIAP             uint32 = 0x0000000A
	OrdOSAP             uint32 = 0x0000000B
	OrdExtend           uint32 = 0x00000014
	OrdPCRRead          uint32 = 0x00000015
	OrdQuote            uint32 = 0x00000016
	OrdSeal             uint32 = 0x00000017
	OrdUnseal           uint32 = 0x00000018
	OrdGetRandom        uint32 = 0x00000046
	OrdGetCapability    uint32 = 0x00000065
	OrdMakeIdentity     uint32 = 0x00000079
	OrdLoadKey2         uint32 = 0x00000041
	OrdPCRReset         uint32 = 0x000000C8
	OrdNVDefineSpace    uint32 = 0x000000CC
	OrdNVWriteValue     uint32 = 0x000000CD
	OrdNVReadValue      uint32 = 0x000000CF
	OrdCreateCounter    uint32 = 0x000000DC
	OrdIncrementCounter uint32 = 0x000000DD
	OrdReadCounter      uint32 = 0x000000DE
	// Locality-4 hardware sequence used by SKINIT to transmit the SLB.
	OrdHashStart uint32 = 0x000000F0
	OrdHashData  uint32 = 0x000000F1
	OrdHashEnd   uint32 = 0x000000F2
	// OrdHashDigest is the locality-4 fast path for a re-measurement whose
	// digest the CPU already knows (write-generation measurement cache): it
	// carries the precomputed SLB digest plus the original transfer length,
	// charges the full per-byte LPC transfer cost, extends PCR 17 and closes
	// the sequence — HASH_DATA chunks and HASH_END folded into one command.
	OrdHashDigest uint32 = 0x000000F3
)

// Return codes (TPM 1.2 Part 2 §16).
const (
	RCSuccess       uint32 = 0x00000000
	RCAuthFail      uint32 = 0x00000001
	RCBadIndex      uint32 = 0x00000002
	RCBadParameter  uint32 = 0x00000003
	RCDisabled      uint32 = 0x00000007
	RCFail          uint32 = 0x00000009
	RCBadOrdinal    uint32 = 0x0000000A
	RCNotSealedBlob uint32 = 0x00000021
	RCWrongPCRVal   uint32 = 0x00000018
	RCBadLocality   uint32 = 0x00000029
	RCResources     uint32 = 0x00000015
	RCAreaLocked    uint32 = 0x0000003C
	// RCInvalidPostInit: a command other than TPM_Startup arrived after a
	// platform reset (TPM 1.2 Part 2 §16, TPM_E_INVALID_POSTINIT).
	RCInvalidPostInit uint32 = 0x00000026
)

// buf is an append-only big-endian writer.
type buf struct{ b []byte }

func (w *buf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *buf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *buf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buf) raw(p []byte) { w.b = append(w.b, p...) }

// bytes32 writes a 4-byte length prefix followed by the data.
func (w *buf) bytes32(p []byte) {
	w.u32(uint32(len(p)))
	w.raw(p)
}

// errTruncated reports a short read while parsing a structure.
var errTruncated = errors.New("tpm: truncated structure")

// rdr is a consuming big-endian reader.
type rdr struct{ b []byte }

func (r *rdr) u8() (uint8, error) {
	if len(r.b) < 1 {
		return 0, errTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *rdr) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *rdr) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *rdr) raw(n int) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, errTruncated
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v, nil
}

// bytes32 reads a 4-byte length prefix followed by that many bytes.
func (r *rdr) bytes32() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, errTruncated
	}
	return r.raw(int(n))
}

func (r *rdr) empty() bool { return len(r.b) == 0 }

// marshalCommand frames a request.
func marshalCommand(tag uint16, ordinal uint32, body []byte) []byte {
	return appendCommand(nil, tag, ordinal, body)
}

// appendCommand frames a request into dst's capacity (dst may be nil) and
// returns the frame. The buffer may be reused for the next command as soon
// as the synchronous submit returns: command handling copies anything the
// TPM retains from the request frame.
func appendCommand(dst []byte, tag uint16, ordinal uint32, body []byte) []byte {
	w := &buf{b: dst[:0]}
	w.u16(tag)
	w.u32(uint32(10 + len(body)))
	w.u32(ordinal)
	w.raw(body)
	return w.b
}

// marshalResponse frames a response. The frame is sized exactly and copied
// out of body, so handlers may hand in a scratch buffer; the returned frame
// itself is freshly allocated and never pooled — the caller owns it.
func marshalResponse(tag uint16, rc uint32, body []byte) []byte {
	out := make([]byte, 10+len(body))
	binary.BigEndian.PutUint16(out, tag)
	binary.BigEndian.PutUint32(out[2:], uint32(10+len(body)))
	binary.BigEndian.PutUint32(out[6:], rc)
	copy(out[10:], body)
	return out
}

// parseFrame splits a frame into (tag, code, body); code is the ordinal for
// requests and the return code for responses.
func parseFrame(p []byte) (tag uint16, code uint32, body []byte, err error) {
	if len(p) < 10 {
		return 0, 0, nil, errTruncated
	}
	tag = binary.BigEndian.Uint16(p)
	size := binary.BigEndian.Uint32(p[2:])
	if int(size) != len(p) {
		return 0, 0, nil, errors.New("tpm: frame size mismatch")
	}
	code = binary.BigEndian.Uint32(p[6:])
	return tag, code, p[10:], nil
}
