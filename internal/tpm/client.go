package tpm

import (
	"fmt"

	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
)

// Client is a TPM driver: it marshals commands, runs authorization
// sessions, and verifies response MACs. Two instances exist in a Flicker
// platform: the untrusted OS's TPM software stack (locality 0) and the
// PAL's in-SLB TPM driver (locality 2) — the paper's "TPM Driver" and "TPM
// Utilities" modules.
//
// A Client is not safe for concurrent use (the nonce rng is stateful);
// that existing contract is what makes the per-client scratch buffers
// below safe. Response frames are never pooled: callers retain subslices
// of them (blobs, random bytes, signatures).
type Client struct {
	bus *tis.Bus
	loc tis.Locality
	rng *palcrypto.PRNG

	// Scratch reused across commands on the session hot path. pbuf holds
	// command parameters while they are built; cmd holds the framed
	// command handed to the bus. Both may be overwritten by the next
	// command: submits are synchronous and the TPM copies what it keeps.
	pbuf buf
	cmd  []byte
}

// NewClient creates a driver bound to a locality on the given bus.
func NewClient(bus *tis.Bus, loc tis.Locality, nonceSeed []byte) *Client {
	return &Client{bus: bus, loc: loc, rng: palcrypto.NewPRNG(nonceSeed)}
}

// Locality returns the locality this driver issues commands at.
func (c *Client) Locality() tis.Locality { return c.loc }

// Reseed resets the client's nonce generator to the state NewClient with the
// same seed would produce. It lets a session reuse a cached driver while
// keeping the nonce stream identical to a freshly constructed one.
func (c *Client) Reseed(nonceSeed []byte) { c.rng.Reseed(nonceSeed) }

// params resets and returns the client's parameter scratch buffer. The
// returned buffer is valid until the next params call — long enough to
// build one command's body and hand it to run/runAuth1, which copy it
// into the frame scratch.
func (c *Client) params() *buf {
	c.pbuf.b = c.pbuf.b[:0]
	return &c.pbuf
}

// CommandError is a non-zero TPM return code surfaced as a Go error.
type CommandError struct {
	Ordinal uint32
	Code    uint32
}

// Error includes the ordinal and the TPM return code.
func (e *CommandError) Error() string {
	return fmt.Sprintf("tpm: ordinal %#x failed with return code %#x", e.Ordinal, e.Code)
}

// IsCode reports whether err is a CommandError with the given return code.
func IsCode(err error, code uint32) bool {
	ce, ok := err.(*CommandError)
	return ok && ce.Code == code
}

// run frames, submits, and unframes one unauthorized command.
func (c *Client) run(ordinal uint32, body []byte) ([]byte, error) {
	c.cmd = appendCommand(c.cmd, tagRQUCommand, ordinal, body)
	resp, err := c.bus.SubmitAt(c.loc, c.cmd)
	if err != nil {
		return nil, err
	}
	_, rc, out, err := parseFrame(resp)
	if err != nil {
		return nil, err
	}
	if rc != RCSuccess {
		return nil, &CommandError{Ordinal: ordinal, Code: rc}
	}
	return out, nil
}

// runAuth1 executes an authorized command: it opens an OIAP session, MACs
// the parameters under secret, submits, and verifies the response MAC.
func (c *Client) runAuth1(ordinal uint32, params []byte, secret Digest) ([]byte, error) {
	if err := c.bus.RequestUse(c.loc); err != nil {
		return nil, err
	}
	defer c.bus.Release(c.loc)

	// OIAP.
	c.cmd = appendCommand(c.cmd, tagRQUCommand, OrdOIAP, nil)
	oiapResp, err := c.bus.Submit(c.loc, c.cmd)
	if err != nil {
		return nil, err
	}
	_, rc, out, err := parseFrame(oiapResp)
	if err != nil {
		return nil, err
	}
	if rc != RCSuccess {
		return nil, &CommandError{Ordinal: OrdOIAP, Code: rc}
	}
	r := &rdr{b: out}
	handle, err := r.u32()
	if err != nil {
		return nil, err
	}
	neb, err := r.raw(DigestSize)
	if err != nil {
		return nil, err
	}
	var nonceEven, nonceOdd Digest
	copy(nonceEven[:], neb)
	copy(nonceOdd[:], c.rng.Bytes(DigestSize))

	tr := authTrailer{handle: handle, nonceOdd: nonceOdd, cont: false}
	tr.auth = authMAC(secret, ordinal, params, nonceEven, nonceOdd, false)
	// Frame body = params || auth trailer, built directly in the frame
	// scratch so the hot path marshals without allocating.
	w := &buf{b: c.cmd[:0]}
	w.u16(tagRQUAuth1)
	w.u32(uint32(10 + len(params) + authTrailerLen))
	w.u32(ordinal)
	w.raw(params)
	c.cmd = appendAuth1(w.b, tr)

	resp, err := c.bus.Submit(c.loc, c.cmd)
	if err != nil {
		return nil, err
	}
	_, rc, body, err := parseFrame(resp)
	if err != nil {
		return nil, err
	}
	if rc != RCSuccess {
		return nil, &CommandError{Ordinal: ordinal, Code: rc}
	}
	// Response body = outParams || nonceEven'(20) || cont(1) || mac(20).
	trailerLen := DigestSize + 1 + DigestSize
	if len(body) < trailerLen {
		return nil, errTruncated
	}
	outParams := body[:len(body)-trailerLen]
	tb := body[len(body)-trailerLen:]
	var ne2 Digest
	copy(ne2[:], tb[:DigestSize])
	cont := tb[DigestSize] != 0
	var mac Digest
	copy(mac[:], tb[DigestSize+1:])
	want := responseMAC(secret, rc, ordinal, outParams, ne2, nonceOdd, cont)
	if !palcrypto.ConstantTimeEqual(want[:], mac[:]) {
		return nil, fmt.Errorf("tpm: response MAC verification failed for ordinal %#x", ordinal)
	}
	// The response frame is freshly allocated per command, so the
	// subslice is safe to hand to callers without copying.
	return outParams, nil
}

// Extend extends PCR idx with digest m and returns the new PCR value.
func (c *Client) Extend(idx int, m Digest) (Digest, error) {
	w := c.params()
	w.u32(uint32(idx))
	w.raw(m[:])
	out, err := c.run(OrdExtend, w.b)
	if err != nil {
		return Digest{}, err
	}
	var v Digest
	copy(v[:], out)
	return v, nil
}

// PCRRead returns the current value of PCR idx.
func (c *Client) PCRRead(idx int) (Digest, error) {
	w := c.params()
	w.u32(uint32(idx))
	out, err := c.run(OrdPCRRead, w.b)
	if err != nil {
		return Digest{}, err
	}
	var v Digest
	copy(v[:], out)
	return v, nil
}

// PCRReset issues a software reset of the selected PCRs (only 20-22 may
// succeed, and only from locality >= 2).
func (c *Client) PCRReset(sel PCRSelection) error {
	w := c.params()
	sel.marshal(w)
	_, err := c.run(OrdPCRReset, w.b)
	return err
}

// GetRandom returns n bytes from the TPM RNG.
func (c *Client) GetRandom(n int) ([]byte, error) {
	w := c.params()
	w.u32(uint32(n))
	out, err := c.run(OrdGetRandom, w.b)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}

// GetVersion returns the TPM family version string and PCR count.
func (c *Client) GetVersion() (string, int, error) {
	w := c.params()
	w.u32(0)
	out, err := c.run(OrdGetCapability, w.b)
	if err != nil {
		return "", 0, err
	}
	r := &rdr{b: out}
	vb, err := r.raw(4)
	if err != nil {
		return "", 0, err
	}
	n, err := r.u32()
	if err != nil {
		return "", 0, err
	}
	return fmt.Sprintf("%d.%d", vb[0], vb[1]), int(n), nil
}

// BootCount returns the TPM's platform reset count.
func (c *Client) BootCount() (int, error) {
	w := c.params()
	w.u32(1)
	out, err := c.run(OrdGetCapability, w.b)
	if err != nil {
		return 0, err
	}
	r := &rdr{b: out}
	n, err := r.u32()
	return int(n), err
}

// QuoteResult is a successful TPM_Quote: the composite over the selected
// PCRs and the AIK signature over TPM_QUOTE_INFO(composite, nonce).
type QuoteResult struct {
	Composite Digest
	Signature []byte
}

// Quote asks the TPM to sign (nonce, selected PCRs) with the AIK at handle.
func (c *Client) Quote(aikHandle uint32, aikAuth Digest, nonce Digest, sel PCRSelection) (*QuoteResult, error) {
	w := c.params()
	w.u32(aikHandle)
	w.raw(nonce[:])
	sel.marshal(w)
	out, err := c.runAuth1(OrdQuote, w.b, aikAuth)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	cb, err := r.raw(DigestSize)
	if err != nil {
		return nil, err
	}
	sig, err := r.bytes32()
	if err != nil {
		return nil, err
	}
	q := &QuoteResult{Signature: sig}
	copy(q.Composite[:], cb)
	return q, nil
}

// Seal binds data to (sel, digestAtRelease) under the SRK. srkAuth is the
// SRK usage secret (the TCG well-known all-zero value by default).
func (c *Client) Seal(srkAuth Digest, sel PCRSelection, digestAtRelease Digest, data []byte) ([]byte, error) {
	w := c.params()
	w.u32(KHSRK)
	w.raw(digestAtRelease[:])
	sel.marshal(w)
	w.bytes32(data)
	out, err := c.runAuth1(OrdSeal, w.b, srkAuth)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}

// Unseal opens a sealed blob; it fails with RCWrongPCRVal if the PCR
// binding is not currently satisfied.
func (c *Client) Unseal(srkAuth Digest, blob []byte) ([]byte, error) {
	w := c.params()
	w.u32(KHSRK)
	w.bytes32(blob)
	out, err := c.runAuth1(OrdUnseal, w.b, srkAuth)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}

// MakeIdentity creates a fresh AIK (owner-authorized) and returns its
// volatile handle, its public key, and the wrapped key blob the software
// stack stores on disk and reloads after reboots.
func (c *Client) MakeIdentity(ownerAuth Digest) (uint32, *palcrypto.RSAPublicKey, []byte, error) {
	out, err := c.runAuth1(OrdMakeIdentity, nil, ownerAuth)
	if err != nil {
		return 0, nil, nil, err
	}
	r := &rdr{b: out}
	h, err := r.u32()
	if err != nil {
		return 0, nil, nil, err
	}
	pkb, err := r.bytes32()
	if err != nil {
		return 0, nil, nil, err
	}
	pk, err := palcrypto.UnmarshalPublicKey(pkb)
	if err != nil {
		return 0, nil, nil, err
	}
	blob, err := r.bytes32()
	if err != nil {
		return 0, nil, nil, err
	}
	return h, pk, blob, nil
}

// CreateWrapKey generates a keypair of the given usage, wrapped under the
// SRK. It returns the blob (stored by untrusted software) and the public
// key; the private half exists outside the TPM only in encrypted form.
func (c *Client) CreateWrapKey(srkAuth Digest, usage uint16, usageAuth Digest) ([]byte, *palcrypto.RSAPublicKey, error) {
	w := c.params()
	w.u32(KHSRK)
	w.u16(usage)
	w.raw(usageAuth[:])
	out, err := c.runAuth1(OrdCreateWrapKey, w.b, srkAuth)
	if err != nil {
		return nil, nil, err
	}
	r := &rdr{b: out}
	blob, err := r.bytes32()
	if err != nil {
		return nil, nil, err
	}
	pkb, err := r.bytes32()
	if err != nil {
		return nil, nil, err
	}
	pk, err := palcrypto.UnmarshalPublicKey(pkb)
	if err != nil {
		return nil, nil, err
	}
	return blob, pk, nil
}

// LoadKey2 loads a wrapped key blob into a volatile handle.
func (c *Client) LoadKey2(blob []byte) (uint32, error) {
	w := c.params()
	w.u32(KHSRK)
	w.bytes32(blob)
	out, err := c.run(OrdLoadKey2, w.b)
	if err != nil {
		return 0, err
	}
	r := &rdr{b: out}
	return r.u32()
}

// FlushSpecific evicts a loaded key handle.
func (c *Client) FlushSpecific(handle uint32) error {
	w := c.params()
	w.u32(handle)
	_, err := c.run(OrdFlushSpecific, w.b)
	return err
}

// Sign signs data with a loaded signing key (PKCS#1 v1.5 over SHA-1).
func (c *Client) Sign(handle uint32, usageAuth Digest, data []byte) ([]byte, error) {
	w := c.params()
	w.u32(handle)
	w.bytes32(data)
	out, err := c.runAuth1(OrdSign, w.b, usageAuth)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}

// NVDefineSpace defines an NV index of the given size. If pcrGated is
// non-nil, read and write access both require the selected PCRs to hold
// the composite digest given.
type NVPCRRequirement struct {
	Read        PCRSelection
	ReadDigest  Digest
	Write       PCRSelection
	WriteDigest Digest
}

// NVDefineSpace defines a non-volatile storage index (owner-authorized).
func (c *Client) NVDefineSpace(ownerAuth Digest, index uint32, size int, req *NVPCRRequirement) error {
	w := c.params()
	w.u32(index)
	w.u32(uint32(size))
	if req == nil {
		w.u8(0)
	} else {
		w.u8(1)
		req.Read.marshal(w)
		w.raw(req.ReadDigest[:])
		req.Write.marshal(w)
		w.raw(req.WriteDigest[:])
	}
	_, err := c.runAuth1(OrdNVDefineSpace, w.b, ownerAuth)
	return err
}

// NVWrite writes data at an offset within an NV index.
func (c *Client) NVWrite(index uint32, offset int, data []byte) error {
	w := c.params()
	w.u32(index)
	w.u32(uint32(offset))
	w.bytes32(data)
	_, err := c.run(OrdNVWriteValue, w.b)
	return err
}

// NVRead reads n bytes at an offset within an NV index.
func (c *Client) NVRead(index uint32, offset, n int) ([]byte, error) {
	w := c.params()
	w.u32(index)
	w.u32(uint32(offset))
	w.u32(uint32(n))
	out, err := c.run(OrdNVReadValue, w.b)
	if err != nil {
		return nil, err
	}
	r := &rdr{b: out}
	return r.bytes32()
}

// CreateCounter creates a monotonic counter (owner-authorized) and returns
// its id.
func (c *Client) CreateCounter(ownerAuth Digest) (uint32, error) {
	out, err := c.runAuth1(OrdCreateCounter, nil, ownerAuth)
	if err != nil {
		return 0, err
	}
	r := &rdr{b: out}
	id, err := r.u32()
	return id, err
}

// IncrementCounter bumps a monotonic counter and returns the new value.
func (c *Client) IncrementCounter(id uint32) (uint32, error) {
	w := c.params()
	w.u32(id)
	out, err := c.run(OrdIncrementCounter, w.b)
	if err != nil {
		return 0, err
	}
	r := &rdr{b: out}
	return r.u32()
}

// ReadCounter returns a monotonic counter's current value.
func (c *Client) ReadCounter(id uint32) (uint32, error) {
	w := c.params()
	w.u32(id)
	out, err := c.run(OrdReadCounter, w.b)
	if err != nil {
		return 0, err
	}
	r := &rdr{b: out}
	return r.u32()
}

// Startup issues TPM_Startup(ST_CLEAR), the BIOS's first command after a
// platform reset.
func (c *Client) Startup() error {
	_, err := c.run(OrdStartup, nil)
	return err
}
