// Package ima implements a trusted-boot integrity measurement architecture
// in the style of IBM IMA [26], the approach the paper contrasts Flicker
// against (Sections 2.1 and 8): every piece of software loaded since boot
// is hashed into a static PCR and recorded in an event log, and an
// attestation consists of the (untrusted) log plus a TPM quote over that
// PCR.
//
// The package exists to reproduce the paper's motivation quantitatively:
//
//   - a trusted-boot verifier "must assess a list of all software loaded
//     since boot time (including the OS) and its configuration
//     information" — its burden grows with everything the platform ever
//     ran, and the attestation leaks the platform's full software
//     inventory;
//   - "the security of a newly executed piece of code depends on the
//     security of all previously executed code. Due to the lack of
//     isolation, a single compromised piece of code may compromise all
//     subsequent code" — once a measured-but-exploited component runs,
//     later loads can simply go unmeasured and the attestation still
//     verifies.
//
// Flicker's attestation, by contrast, covers one PAL, its inputs and its
// outputs, regardless of what else the platform runs.
package ima

import (
	"errors"
	"fmt"

	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

// MeasurementPCR is the static PCR used for application measurements
// (IMA uses PCR 10).
const MeasurementPCR = 10

// Event is one entry of the measurement log: a software load.
type Event struct {
	Name string // e.g. "/usr/bin/sshd" or "config:/etc/ssh/sshd_config"
	Hash tpm.Digest
}

// Agent is the kernel-side measurement agent. It extends each measurement
// into the static PCR and appends it to the (untrusted) in-memory log.
// A compromised kernel can stop calling Measure — exactly the gap the
// paper describes.
type Agent struct {
	tpmc *tpm.Client
	log  []Event
}

// NewAgent creates a measurement agent over the OS's TPM driver.
func NewAgent(tpmc *tpm.Client) *Agent {
	return &Agent{tpmc: tpmc}
}

// Measure records a software load: m = SHA-1(content), extended into the
// measurement PCR and appended to the log.
func (a *Agent) Measure(name string, content []byte) error {
	h := palcrypto.SHA1Sum(content)
	if _, err := a.tpmc.Extend(MeasurementPCR, h); err != nil {
		return fmt.Errorf("ima: extending measurement for %s: %w", name, err)
	}
	a.log = append(a.log, Event{Name: name, Hash: h})
	return nil
}

// Log returns a copy of the event log (untrusted data; the quote is what
// authenticates it).
func (a *Agent) Log() []Event {
	return append([]Event(nil), a.log...)
}

// Attestation is a trusted-boot attestation: the full event log plus a
// quote over the measurement PCR.
type Attestation struct {
	Log       []Event
	Nonce     tpm.Digest
	Composite tpm.Digest
	Signature []byte
}

// Attest produces the attestation for a verifier nonce, quoting with the
// given AIK handle.
func (a *Agent) Attest(aikHandle uint32, aikAuth tpm.Digest, nonce tpm.Digest) (*Attestation, error) {
	q, err := a.tpmc.Quote(aikHandle, aikAuth, nonce, tpm.SelectPCRs(MeasurementPCR))
	if err != nil {
		return nil, err
	}
	return &Attestation{
		Log:       a.Log(),
		Nonce:     nonce,
		Composite: q.Composite,
		Signature: q.Signature,
	}, nil
}

// AggregateOf recomputes the PCR value implied by a log: the fold of
// extends over the zero register.
func AggregateOf(log []Event) tpm.Digest {
	v := tpm.Digest{}
	for _, e := range log {
		v = tpm.ExtendDigest(v, e.Hash)
	}
	return v
}

// Verify performs the trusted-boot verification procedure of Section 2.1:
// check the quote signature, recompute the aggregate from the log and
// compare it to the quoted PCR, and then check EVERY log entry against the
// verifier's database of known-good software. It returns the number of
// entries assessed.
//
// knownGood maps measurement hashes the verifier trusts; any unknown entry
// fails verification (the verifier cannot "decide whether to trust the
// platform based on the events in the log" otherwise).
func Verify(aikPub *palcrypto.RSAPublicKey, att *Attestation, nonce tpm.Digest, knownGood map[tpm.Digest]bool) (int, error) {
	if att == nil {
		return 0, errors.New("ima: nil attestation")
	}
	if att.Nonce != nonce {
		return 0, errors.New("ima: nonce mismatch")
	}
	qi := tpm.QuoteInfo(att.Composite, nonce)
	if err := palcrypto.VerifyPKCS1SHA1(aikPub, qi, att.Signature); err != nil {
		return 0, fmt.Errorf("ima: quote signature: %w", err)
	}
	want := tpm.CompositeHash(tpm.SelectPCRs(MeasurementPCR),
		map[int]tpm.Digest{MeasurementPCR: AggregateOf(att.Log)})
	if att.Composite != want {
		return 0, errors.New("ima: log does not match the quoted PCR (tampered log)")
	}
	for i, e := range att.Log {
		if !knownGood[e.Hash] {
			return i, fmt.Errorf("ima: log entry %d (%s) is not known-good", i, e.Name)
		}
	}
	return len(att.Log), nil
}

// AttestationSize returns the byte size of the attestation a trusted-boot
// verifier must transfer and process: the quote plus the whole log. Used
// by the comparison bench against Flicker's constant-size attestation.
func (att *Attestation) AttestationSize() int {
	n := len(att.Signature) + 2*tpm.DigestSize
	for _, e := range att.Log {
		n += len(e.Name) + tpm.DigestSize
	}
	return n
}
