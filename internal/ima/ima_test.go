package ima

import (
	"fmt"
	"strings"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

type rig struct {
	p      *core.Platform
	agent  *Agent
	aik    uint32
	aikPub *palcrypto.RSAPublicKey
}

func newRig(t *testing.T) *rig {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "ima-test"})
	if err != nil {
		t.Fatal(err)
	}
	osTPM := p.OSTPM()
	aik, aikPub, _, err := osTPM.MakeIdentity(tpm.Digest{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{p: p, agent: NewAgent(p.OSTPM()), aik: aik, aikPub: aikPub}
}

// bootChain loads a plausible software stack through the agent and returns
// the verifier's known-good database.
func (r *rig) bootChain(t *testing.T, n int) map[tpm.Digest]bool {
	t.Helper()
	known := make(map[tpm.Digest]bool)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/usr/bin/app-%03d", i)
		content := []byte("binary:" + name)
		if err := r.agent.Measure(name, content); err != nil {
			t.Fatal(err)
		}
		known[palcrypto.SHA1Sum(content)] = true
	}
	return known
}

func TestTrustedBootVerifies(t *testing.T) {
	r := newRig(t)
	known := r.bootChain(t, 25)
	nonce := palcrypto.SHA1Sum([]byte("n1"))
	att, err := r.agent.Attest(r.aik, tpm.Digest{}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	assessed, err := Verify(r.aikPub, att, nonce, known)
	if err != nil {
		t.Fatalf("clean boot rejected: %v", err)
	}
	// The paper's point: the verifier had to assess EVERY entry.
	if assessed != 25 {
		t.Fatalf("assessed %d entries, want 25", assessed)
	}
}

func TestTamperedLogRejected(t *testing.T) {
	r := newRig(t)
	known := r.bootChain(t, 5)
	nonce := palcrypto.SHA1Sum([]byte("n2"))
	att, err := r.agent.Attest(r.aik, tpm.Digest{}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	// The OS rewrites a log entry to hide a load: aggregate mismatch.
	att.Log[2].Hash = palcrypto.SHA1Sum([]byte("innocent-looking"))
	if _, err := Verify(r.aikPub, att, nonce, known); err == nil ||
		!strings.Contains(err.Error(), "tampered log") {
		t.Fatalf("err = %v, want tampered-log rejection", err)
	}
}

func TestUnknownSoftwareRejected(t *testing.T) {
	r := newRig(t)
	known := r.bootChain(t, 5)
	if err := r.agent.Measure("/tmp/unknown-binary", []byte("who knows")); err != nil {
		t.Fatal(err)
	}
	nonce := palcrypto.SHA1Sum([]byte("n3"))
	att, _ := r.agent.Attest(r.aik, tpm.Digest{}, nonce)
	if _, err := Verify(r.aikPub, att, nonce, known); err == nil {
		t.Fatal("unknown software accepted")
	}
}

func TestCompromiseGapVsFlicker(t *testing.T) {
	// The paper's core criticism (Section 8): "a single compromised piece
	// of code may compromise all subsequent code." A measured-but-
	// vulnerable component is exploited at runtime; the kernel then loads
	// malware WITHOUT measuring it. The trusted-boot attestation still
	// verifies — the verifier is blind to the malware.
	r := newRig(t)
	known := r.bootChain(t, 10)
	r.p.Kernel.Compromise()
	// Malware loads unmeasured (the compromised kernel skips the agent).
	if _, err := r.p.Kernel.LoadModule("stealth-rootkit", 4096); err != nil {
		t.Fatal(err)
	}
	nonce := palcrypto.SHA1Sum([]byte("n4"))
	att, _ := r.agent.Attest(r.aik, tpm.Digest{}, nonce)
	if _, err := Verify(r.aikPub, att, nonce, known); err != nil {
		t.Fatalf("expected the trusted-boot gap: verification failed with %v", err)
	}
	// Flicker closes the gap: a detector PAL hashes the ACTUAL kernel
	// state, and the malicious module changes the measured regions.
	regions := r.p.Kernel.MeasurableRegions()
	if len(regions) != 3 { // text + syscall table + the rootkit module
		t.Fatalf("regions = %d", len(regions))
	}
}

func TestVerifierBurdenGrowsWithPlatform(t *testing.T) {
	// Quantify "meaningful attestation": trusted-boot attestation size and
	// assessment count grow linearly with loaded software; Flicker's stay
	// constant.
	sizes := map[int]int{}
	for _, n := range []int{10, 100, 400} {
		r := newRig(t)
		known := r.bootChain(t, n)
		nonce := palcrypto.SHA1Sum([]byte("n5"))
		att, err := r.agent.Attest(r.aik, tpm.Digest{}, nonce)
		if err != nil {
			t.Fatal(err)
		}
		assessed, err := Verify(r.aikPub, att, nonce, known)
		if err != nil || assessed != n {
			t.Fatalf("n=%d: assessed=%d err=%v", n, assessed, err)
		}
		sizes[n] = att.AttestationSize()
	}
	if !(sizes[10] < sizes[100] && sizes[100] < sizes[400]) {
		t.Fatalf("attestation size not growing: %v", sizes)
	}
	// Linear growth of the log payload (net of the constant quote part):
	// 100→400 entries adds ~3.3x what 10→100 added.
	if sizes[400]-sizes[100] < 3*(sizes[100]-sizes[10]) {
		t.Fatalf("expected ~linear growth, got %v", sizes)
	}
}

func TestNonceFreshness(t *testing.T) {
	r := newRig(t)
	known := r.bootChain(t, 3)
	n1 := palcrypto.SHA1Sum([]byte("fresh"))
	att, _ := r.agent.Attest(r.aik, tpm.Digest{}, n1)
	n2 := palcrypto.SHA1Sum([]byte("other"))
	if _, err := Verify(r.aikPub, att, n2, known); err == nil {
		t.Fatal("stale attestation accepted")
	}
	if _, err := Verify(r.aikPub, nil, n1, known); err == nil {
		t.Fatal("nil attestation accepted")
	}
}

func TestStaticPCRNotResettable(t *testing.T) {
	// The measurement PCR is static: only a reboot clears it, so the log
	// cannot be "rewound" (contrast with the dynamic PCR 17).
	r := newRig(t)
	r.bootChain(t, 2)
	osTPM := r.p.OSTPM()
	if err := osTPM.PCRReset(tpm.SelectPCRs(MeasurementPCR)); err == nil {
		t.Fatal("static PCR reset accepted")
	}
	before := r.p.TPM.PCRValue(MeasurementPCR)
	r.p.TPM.Reboot()
	if err := r.p.OSTPM().Startup(); err != nil {
		t.Fatal(err)
	}
	if r.p.TPM.PCRValue(MeasurementPCR) == before {
		t.Fatal("reboot did not clear the static PCR")
	}
	if r.p.TPM.PCRValue(MeasurementPCR) != (tpm.Digest{}) {
		t.Fatal("static PCR not zero after reboot")
	}
}

// TestFlickerAttestationConstantSize contrasts the two models directly.
func TestFlickerAttestationConstantSize(t *testing.T) {
	r := newRig(t)
	r.bootChain(t, 200) // platform has run plenty of software
	// The Flicker verifier needs: one quote signature + the PAL identity +
	// inputs/outputs. Nothing about the 200 loaded binaries.
	ca, err := attest.NewPrivacyCA([]byte("ima-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := attest.NewDaemon(r.p.OSTPM(), tpm.Digest{}, ca, "host")
	if err != nil {
		t.Fatal(err)
	}
	hello := helloPAL()
	nonce := palcrypto.SHA1Sum([]byte("flicker-n"))
	res, err := r.p.RunSession(hello, core.SessionOptions{Nonce: &nonce})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	att, err := tqd.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := core.BuildImage(hello, false)
	im.Patch(res.SLBBase)
	if err := attest.VerifySession(ca.PublicKey(), att, nonce, im, nil, res.Outputs); err != nil {
		t.Fatalf("flicker attestation failed on a busy platform: %v", err)
	}
	// And it leaks nothing about the other software: the quote covers
	// PCR 17 only.
	flickerSize := len(att.Signature) + 2*tpm.DigestSize
	imaAtt, _ := r.agent.Attest(r.aik, tpm.Digest{}, nonce)
	if imaAtt.AttestationSize() < 10*flickerSize {
		t.Fatalf("expected IMA attestation (%d B) >> Flicker attestation (%d B)",
			imaAtt.AttestationSize(), flickerSize)
	}
}

func helloPAL() pal.PAL {
	return &pal.Func{
		PALName: "ima-demo",
		Binary:  pal.DescriptorCode("ima-demo", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("ok"), nil
		},
	}
}
