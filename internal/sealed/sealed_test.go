package sealed

import (
	"bytes"
	"errors"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/core"
	"flicker/internal/pal"
	"flicker/internal/tpm"
)

const nvIdx = 0x00011000

// statePAL is a PAL that maintains replay-protected state: each run
// unseals (if input carries a blob), appends a byte, reseals, and outputs
// blob || state for the host to store.
func statePAL(t *testing.T, collect *[][]byte) pal.PAL {
	return &pal.Func{
		PALName: "state-pal",
		Binary:  pal.DescriptorCode("state-pal", "1.0", []string{"TPM Driver", "TPM Utilities"}, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			var state []byte
			if len(input) > 0 {
				var err error
				state, err = Unseal(env, nvIdx, input)
				if err != nil {
					return nil, err
				}
			}
			state = append(state, byte(len(state)+1))
			blob, err := Seal(env, nvIdx, state)
			if err != nil {
				return nil, err
			}
			*collect = append(*collect, blob)
			return state, nil
		},
	}
}

func setup(t *testing.T) (*core.Platform, pal.PAL, *[][]byte) {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "sealed-test"})
	if err != nil {
		t.Fatal(err)
	}
	blobs := &[][]byte{}
	sp := statePAL(t, blobs)
	// The counter space is gated to the PAL's launch identity.
	im, err := core.BuildImage(sp, false)
	if err != nil {
		t.Fatal(err)
	}
	// The NV gate must match the PCR-17 value during execution, which is
	// the *patched* image's launch value. Pre-patch for the base the
	// platform will use: allocation is deterministic, so run a probe.
	probeBase := probeSLBBase(t, p)
	im.Patch(probeBase)
	if err := DefineCounter(p.OSTPM(), tpm.Digest{}, nvIdx, attest.ExpectedLaunchPCR17(im)); err != nil {
		t.Fatal(err)
	}
	return p, sp, blobs
}

// probeSLBBase predicts the next SLB base by replicating the allocator on a
// twin platform (allocation is deterministic in the seed).
func probeSLBBase(t *testing.T, p *core.Platform) uint32 {
	t.Helper()
	twin, err := core.NewPlatform(core.PlatformConfig{Seed: "sealed-test"})
	if err != nil {
		t.Fatal(err)
	}
	base, err := twin.Mod.AllocateSLB()
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestSealUnsealAcrossSessions(t *testing.T) {
	p, sp, blobs := setup(t)
	// Session 1: create state.
	res1, err := p.RunSession(sp, core.SessionOptions{})
	if err != nil || res1.PALError != nil {
		t.Fatalf("session 1: %v / %v", err, res1.PALError)
	}
	if !bytes.Equal(res1.Outputs, []byte{1}) {
		t.Fatalf("state after 1 = %v", res1.Outputs)
	}
	// Session 2: pass the latest blob back in.
	res2, err := p.RunSession(sp, core.SessionOptions{Input: (*blobs)[0]})
	if err != nil || res2.PALError != nil {
		t.Fatalf("session 2: %v / %v", err, res2.PALError)
	}
	if !bytes.Equal(res2.Outputs, []byte{1, 2}) {
		t.Fatalf("state after 2 = %v", res2.Outputs)
	}
}

func TestReplayOfStaleBlobRejected(t *testing.T) {
	p, sp, blobs := setup(t)
	if _, err := p.RunSession(sp, core.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	res2, err := p.RunSession(sp, core.SessionOptions{Input: (*blobs)[0]})
	if err != nil || res2.PALError != nil {
		t.Fatalf("session 2: %v / %v", err, res2.PALError)
	}
	// The malicious OS now replays blob #1 (version 1) although the
	// counter is at 2 — the password-change attack of Section 4.3.2.
	res3, err := p.RunSession(sp, core.SessionOptions{Input: (*blobs)[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res3.PALError == nil || !errors.Is(res3.PALError, ErrReplay) {
		t.Fatalf("replay not detected: %v", res3.PALError)
	}
	// The fresh blob still works.
	res4, err := p.RunSession(sp, core.SessionOptions{Input: (*blobs)[1]})
	if err != nil || res4.PALError != nil {
		t.Fatalf("fresh blob rejected: %v / %v", err, res4.PALError)
	}
}

func TestOSCannotTouchCounter(t *testing.T) {
	p, _, _ := setup(t)
	osTPM := p.OSTPM()
	if _, err := osTPM.NVRead(nvIdx, 0, 4); !tpm.IsCode(err, tpm.RCAreaLocked) {
		t.Fatalf("OS NV read: %v, want area locked", err)
	}
	if err := osTPM.NVWrite(nvIdx, 0, []byte{0, 0, 0, 9}); !tpm.IsCode(err, tpm.RCAreaLocked) {
		t.Fatalf("OS NV write: %v, want area locked", err)
	}
}

func TestWrongPALCannotUseCounter(t *testing.T) {
	p, sp, blobs := setup(t)
	if _, err := p.RunSession(sp, core.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	evil := &pal.Func{
		PALName: "evil-pal",
		Binary:  pal.DescriptorCode("evil-pal", "6.6", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			// Try to read the victim's counter and unseal its blob.
			if _, err := env.TPM.NVRead(nvIdx, 0, 4); err == nil {
				return nil, errors.New("counter readable by wrong PAL")
			}
			if _, err := env.Unseal(input); err == nil {
				return nil, errors.New("blob unsealed by wrong PAL")
			}
			return []byte("blocked"), nil
		},
	}
	res, err := p.RunSession(evil, core.SessionOptions{Input: (*blobs)[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatalf("isolation failed: %v", res.PALError)
	}
}

func TestMonotonicCounterVariant(t *testing.T) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "mono-test"})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := p.OSTPM().CreateCounter(tpm.Digest{})
	if err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	mp := &pal.Func{
		PALName: "mono-pal",
		Binary:  pal.DescriptorCode("mono-pal", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if len(input) > 0 {
				state, err := UnsealMonotonic(env, ctr, input)
				if err != nil {
					return nil, err
				}
				state = append(state, 'x')
				blob, err := SealMonotonic(env, ctr, state)
				if err != nil {
					return nil, err
				}
				blobs = append(blobs, blob)
				return state, nil
			}
			blob, err := SealMonotonic(env, ctr, []byte("v1"))
			if err != nil {
				return nil, err
			}
			blobs = append(blobs, blob)
			return []byte("v1"), nil
		},
	}
	if res, err := p.RunSession(mp, core.SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	res, err := p.RunSession(mp, core.SessionOptions{Input: blobs[0]})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	// Replay the stale blob.
	res, err = p.RunSession(mp, core.SessionOptions{Input: blobs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PALError, ErrReplay) {
		t.Fatalf("monotonic replay not detected: %v", res.PALError)
	}
}
