// Package sealed implements replay-protected sealed storage for PAL state
// (Section 4.3.2, Figure 4 of the paper). TPM Seal alone guarantees that
// only the intended PAL can read a blob, but not that the blob is the
// *latest* version — the untrusted OS stores the ciphertexts and can hand a
// PAL a stale one (e.g. a password database from before a password change).
//
// The defense is a secure counter kept where only the PAL can touch it: a
// TPM non-volatile storage index whose read and write access both require
// PCR 17 to hold the PAL's launch value. Seal increments the counter and
// binds the new value into the sealed blob; Unseal rejects any blob whose
// embedded value differs from the current counter.
package sealed

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flicker/internal/pal"
	"flicker/internal/tpm"
)

// ErrReplay is returned when a sealed blob is stale: its embedded counter
// value does not match the secure counter.
var ErrReplay = errors.New("sealed: replay detected (stale sealed-storage version)")

// counterSize is the NV space size for the version counter.
const counterSize = 4

// DefineCounter creates the PCR-gated NV counter space for a PAL whose
// post-launch PCR 17 value is palPCR17. It is owner-authorized and can run
// from the untrusted OS (the OS cannot *use* the counter afterwards — the
// PCR gate sees to that). The paper obtains the owner authorization inside
// a session via the secure-channel protocol; either path yields the same
// space.
func DefineCounter(osTPM *tpm.Client, ownerAuth tpm.Digest, nvIndex uint32, palPCR17 tpm.Digest) error {
	sel := tpm.SelectPCRs(17)
	dig := tpm.CompositeHash(sel, map[int]tpm.Digest{17: palPCR17})
	req := &tpm.NVPCRRequirement{Read: sel, ReadDigest: dig, Write: sel, WriteDigest: dig}
	if err := osTPM.NVDefineSpace(ownerAuth, nvIndex, counterSize, req); err != nil {
		return fmt.Errorf("sealed: defining counter space: %w", err)
	}
	return nil
}

// readCounter reads the current counter value from inside a PAL session.
func readCounter(env *pal.Env, nvIndex uint32) (uint32, error) {
	b, err := env.TPM.NVRead(nvIndex, 0, counterSize)
	if err != nil {
		return 0, fmt.Errorf("sealed: reading counter: %w", err)
	}
	return binary.BigEndian.Uint32(b), nil
}

// incrementCounter bumps the counter from inside a PAL session.
func incrementCounter(env *pal.Env, nvIndex uint32) (uint32, error) {
	v, err := readCounter(env, nvIndex)
	if err != nil {
		return 0, err
	}
	v++
	var b [counterSize]byte
	binary.BigEndian.PutUint32(b[:], v)
	if err := env.TPM.NVWrite(nvIndex, 0, b[:]); err != nil {
		return 0, fmt.Errorf("sealed: incrementing counter: %w", err)
	}
	return v, nil
}

// Seal implements Figure 4's Seal(d): increment the counter, then seal
// d || j to this PAL. The returned ciphertext is safe to hand to the OS.
func Seal(env *pal.Env, nvIndex uint32, data []byte) ([]byte, error) {
	j, err := incrementCounter(env, nvIndex)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(payload[0:4], j)
	copy(payload[4:], data)
	blob, err := env.SealToSelf(payload)
	if err != nil {
		return nil, fmt.Errorf("sealed: sealing versioned payload: %w", err)
	}
	return blob, nil
}

// Unseal implements Figure 4's Unseal(c): unseal d || j', read the counter
// j, and output d only if j' == j.
func Unseal(env *pal.Env, nvIndex uint32, blob []byte) ([]byte, error) {
	payload, err := env.Unseal(blob)
	if err != nil {
		return nil, fmt.Errorf("sealed: unsealing: %w", err)
	}
	if len(payload) < 4 {
		return nil, errors.New("sealed: corrupt versioned payload")
	}
	jPrime := binary.BigEndian.Uint32(payload[0:4])
	j, err := readCounter(env, nvIndex)
	if err != nil {
		return nil, err
	}
	if jPrime != j {
		return nil, ErrReplay
	}
	return payload[4:], nil
}

// SealMonotonic is the alternative realization over the TPM's Monotonic
// Counter facility instead of NV storage. The monotonic counter lacks a
// PCR gate, so this variant protects against replay but relies on the
// sealed blob itself for secrecy/PAL-binding; it is included because the
// paper names both options ("a trusted third party, and the Monotonic
// Counter and Non-volatile Storage facilities of v1.2 TPMs").
func SealMonotonic(env *pal.Env, counterID uint32, data []byte) ([]byte, error) {
	j, err := env.TPM.IncrementCounter(counterID)
	if err != nil {
		return nil, fmt.Errorf("sealed: incrementing monotonic counter: %w", err)
	}
	payload := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(payload[0:4], j)
	copy(payload[4:], data)
	return env.SealToSelf(payload)
}

// UnsealMonotonic is the monotonic-counter unseal check.
func UnsealMonotonic(env *pal.Env, counterID uint32, blob []byte) ([]byte, error) {
	payload, err := env.Unseal(blob)
	if err != nil {
		return nil, fmt.Errorf("sealed: unsealing: %w", err)
	}
	if len(payload) < 4 {
		return nil, errors.New("sealed: corrupt versioned payload")
	}
	jPrime := binary.BigEndian.Uint32(payload[0:4])
	j, err := env.TPM.ReadCounter(counterID)
	if err != nil {
		return nil, err
	}
	if jPrime != j {
		return nil, ErrReplay
	}
	return payload[4:], nil
}
