package flickermod

import (
	"bytes"
	"testing"

	"flicker/internal/hw/cpu"
	"flicker/internal/hw/tis"
	"flicker/internal/kernel"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

func newModule(t *testing.T) (*Module, *kernel.Kernel, *cpu.Machine) {
	t.Helper()
	clock := simtime.New()
	prof := simtime.ProfileBroadcom()
	tp, err := tpm.New(clock, prof, tpm.Options{Seed: []byte("fm-test")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(clock, prof, tis.NewBus(tp), cpu.Config{Cores: 2, MemSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(m, clock, prof, "fm")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(k, m)
	if err != nil {
		t.Fatal(err)
	}
	return mod, k, m
}

func TestLoadRegistersSysfs(t *testing.T) {
	_, k, _ := newModule(t)
	for _, p := range []string{SysfsControl, SysfsInputs, SysfsOutputs, SysfsSLB} {
		found := false
		for _, got := range k.SysfsPaths() {
			if got == p {
				found = true
			}
		}
		if !found {
			t.Errorf("sysfs path %s not registered", p)
		}
	}
}

func TestSysfsStaging(t *testing.T) {
	mod, k, _ := newModule(t)
	_ = mod
	if err := k.SysfsWrite(SysfsSLB, []byte("slb-bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := k.SysfsRead(SysfsSLB)
	if err != nil || !bytes.Equal(got, []byte("slb-bytes")) {
		t.Fatalf("slb read-back: %q %v", got, err)
	}
	if err := k.SysfsWrite(SysfsInputs, []byte("in")); err != nil {
		t.Fatal(err)
	}
	// Inputs entry is write-only.
	if _, err := k.SysfsRead(SysfsInputs); err == nil {
		t.Error("inputs entry readable")
	}
	// Outputs entry is read-only.
	if err := k.SysfsWrite(SysfsOutputs, []byte("x")); err == nil {
		t.Error("outputs entry writable")
	}
}

func TestControlWithoutLauncher(t *testing.T) {
	_, k, _ := newModule(t)
	k.SysfsWrite(SysfsSLB, []byte("some slb"))
	if err := k.SysfsWrite(SysfsControl, []byte{1}); err == nil {
		t.Fatal("control accepted without a launcher")
	}
}

func TestControlWithoutSLB(t *testing.T) {
	mod, k, _ := newModule(t)
	mod.SetLauncher(launcherFunc(func(key [20]byte, in []byte) ([]byte, error) {
		return []byte("ok"), nil
	}))
	if err := k.SysfsWrite(SysfsControl, []byte{1}); err == nil {
		t.Fatal("control accepted without a staged SLB")
	}
}

type launcherFunc func(key [20]byte, inputs []byte) ([]byte, error)

func (f launcherFunc) LaunchByMeasurement(key [20]byte, inputs []byte) ([]byte, error) {
	return f(key, inputs)
}

func TestControlDispatchesByHash(t *testing.T) {
	mod, k, _ := newModule(t)
	var gotKey [20]byte
	var gotInputs []byte
	mod.SetLauncher(launcherFunc(func(key [20]byte, in []byte) ([]byte, error) {
		gotKey, gotInputs = key, in
		return []byte("launched"), nil
	}))
	slbBytes := []byte("the staged slb image")
	k.SysfsWrite(SysfsSLB, slbBytes)
	k.SysfsWrite(SysfsInputs, []byte("params"))
	if err := k.SysfsWrite(SysfsControl, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if gotKey != palcrypto.SHA1Sum(slbBytes) {
		t.Error("launcher keyed by wrong hash")
	}
	if !bytes.Equal(gotInputs, []byte("params")) {
		t.Error("inputs not forwarded")
	}
	out, _ := k.SysfsRead(SysfsOutputs)
	if !bytes.Equal(out, []byte("launched")) {
		t.Errorf("outputs = %q", out)
	}
}

func TestAllocateSLBStable(t *testing.T) {
	mod, _, _ := newModule(t)
	a, err := mod.AllocateSLB()
	if err != nil {
		t.Fatal(err)
	}
	if a%slb.MaxLen != 0 {
		t.Errorf("slb_base %#x not 64 KB aligned", a)
	}
	b, err := mod.AllocateSLB()
	if err != nil || b != a {
		t.Fatalf("second allocation %#x != first %#x", b, a)
	}
}

func TestPlaceSLBAndReadInputs(t *testing.T) {
	mod, _, m := newModule(t)
	base, _ := mod.AllocateSLB()
	im, err := slb.Build(slb.PALCode{Name: "p", Code: []byte("code")})
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.PlaceSLB(im, base, []byte("hello inputs")); err != nil {
		t.Fatal(err)
	}
	// The image landed at base.
	got, _ := m.Mem.Read(base, im.Len())
	if !bytes.Equal(got, im.Bytes()) {
		t.Error("image bytes not placed")
	}
	in, err := mod.ReadInputs(base)
	if err != nil || !bytes.Equal(in, []byte("hello inputs")) {
		t.Fatalf("inputs = %q %v", in, err)
	}
	// Oversized inputs rejected.
	if err := mod.PlaceSLB(im, base, make([]byte, 5000)); err == nil {
		t.Error("oversized inputs accepted")
	}
	// Corrupt input length detected.
	m.Mem.Write(base+uint32(slb.InputsOffset), []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := mod.ReadInputs(base); err == nil {
		t.Error("corrupt input length accepted")
	}
}

func TestSuspendResumeLifecycle(t *testing.T) {
	mod, k, m := newModule(t)
	base, _ := mod.AllocateSLB()
	m.BSP().SetCR3(0x1234000)
	m.BSP().SetGDTBase(0x2000)
	st, err := mod.SuspendOS(base)
	if err != nil {
		t.Fatal(err)
	}
	if st.CR3 != 0x1234000 || st.GDTBase != 0x2000 {
		t.Error("saved state wrong")
	}
	if m.Cores()[1].State() != cpu.CoreInitHalted {
		t.Error("AP not INIT-halted")
	}
	if k.OnlineCoreCount() != 1 {
		t.Error("AP still schedulable")
	}
	// Saved state persisted to the saved-state page.
	page, _ := m.Mem.Read(st.SavedAt, 8)
	if page[0] == 0 && page[1] == 0 && page[2] == 0 && page[3] == 0 {
		t.Error("saved-state page empty")
	}
	// Restore.
	m.BSP().SetCR3(0)
	mod.RestoreKernelContext(m.BSP(), st)
	if m.BSP().CR3() != 0x1234000 || !m.BSP().PagingEnabled() {
		t.Error("kernel context not restored")
	}
	if err := mod.ResumeOS(st); err != nil {
		t.Fatal(err)
	}
	if k.OnlineCoreCount() != 2 {
		t.Error("APs not re-onlined")
	}
	// Double resume rejected.
	if err := mod.ResumeOS(st); err == nil {
		t.Error("double resume accepted")
	}
}

func TestSuspendFailsWithBusyAP(t *testing.T) {
	mod, k, m := newModule(t)
	_ = k
	base, _ := mod.AllocateSLB()
	// Manually pin the AP in a state hotplug can't fix: already running and
	// we simulate hotplug failure by onlining after offline… instead check
	// the INIT path: force the AP busy again after hotplug marks it idle.
	// Simplest: make SendINITIPI fail by keeping the core running — that
	// happens when OfflineCore fails; here we exercise the success path and
	// then verify SKINIT preconditions elsewhere. Sanity: suspend works.
	st, err := mod.SuspendOS(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SKINIT(0, base); err == nil {
		t.Fatal("SKINIT succeeded with an unwritten SLB header")
	}
	mod.ResumeOS(st)
}
