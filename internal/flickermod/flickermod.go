// Package flickermod simulates the paper's flicker-module: the untrusted
// Linux kernel module that exposes sysfs entries (slb, inputs, outputs,
// control), allocates kernel memory for the SLB, patches the skeleton
// GDT/TSS once slb_base is known, suspends the OS (CPU hotplug + INIT IPIs
// + kernel state save), and restores everything afterwards.
//
// The module is NOT in the TCB: "The flicker-module is not included in the
// TCB of the application, since its actions are verified" (Section 4.1). A
// buggy or malicious flicker-module can refuse service or corrupt the SLB,
// but corruption changes the measurement and is caught by attestation.
package flickermod

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"flicker/internal/hw/cpu"
	"flicker/internal/kernel"
	"flicker/internal/palcrypto"
	"flicker/internal/slb"
)

// Sysfs paths the module registers.
const (
	SysfsControl = "/sys/kernel/flicker/control"
	SysfsInputs  = "/sys/kernel/flicker/inputs"
	SysfsOutputs = "/sys/kernel/flicker/outputs"
	SysfsSLB     = "/sys/kernel/flicker/slb"
)

// Launcher runs a prepared Flicker session; the core package provides the
// implementation. It exists so the sysfs control path can trigger a launch
// without flickermod importing core.
type Launcher interface {
	// LaunchByMeasurement runs the session for a previously registered SLB
	// whose unpatched code hash matches key, with the given inputs, and
	// returns the PAL outputs.
	LaunchByMeasurement(key [20]byte, inputs []byte) ([]byte, error)
}

// Module is a loaded flicker-module instance.
type Module struct {
	K *kernel.Kernel
	M *cpu.Machine

	mu       sync.Mutex
	slbBase  uint32
	slbBytes []byte
	inputs   []byte
	outputs  []byte
	launcher Launcher
	loaded   bool
	// inputScratch stages the length-prefixed input page so PlaceSLB does
	// not allocate a fresh page buffer per session.
	inputScratch [slb.PageSize]byte
}

// Load inserts the module into the kernel: it registers the four sysfs
// entries and is then ready to run sessions. Loading twice is an error,
// like insmod'ing a live module.
func Load(k *kernel.Kernel, m *cpu.Machine) (*Module, error) {
	mod := &Module{K: k, M: m}
	k.RegisterSysfs(SysfsSLB, &kernel.FuncNode{
		WriteFn: func(d []byte) error {
			mod.mu.Lock()
			defer mod.mu.Unlock()
			mod.slbBytes = append([]byte(nil), d...)
			return nil
		},
		ReadFn: func() ([]byte, error) {
			mod.mu.Lock()
			defer mod.mu.Unlock()
			return mod.slbBytes, nil
		},
	})
	k.RegisterSysfs(SysfsInputs, &kernel.FuncNode{
		WriteFn: func(d []byte) error {
			mod.mu.Lock()
			defer mod.mu.Unlock()
			mod.inputs = append([]byte(nil), d...)
			return nil
		},
	})
	k.RegisterSysfs(SysfsOutputs, &kernel.FuncNode{
		ReadFn: func() ([]byte, error) {
			mod.mu.Lock()
			defer mod.mu.Unlock()
			return mod.outputs, nil
		},
	})
	k.RegisterSysfs(SysfsControl, &kernel.FuncNode{
		WriteFn: func(d []byte) error { return mod.control(d) },
	})
	mod.loaded = true
	return mod, nil
}

// SetLauncher wires the session runner used by the sysfs control path.
func (mod *Module) SetLauncher(l Launcher) {
	mod.mu.Lock()
	defer mod.mu.Unlock()
	mod.launcher = l
}

// control handles writes to the control entry; any write starts a session
// over the staged SLB and inputs.
func (mod *Module) control([]byte) error {
	mod.mu.Lock()
	launcher := mod.launcher
	slbBytes := mod.slbBytes
	inputs := mod.inputs
	mod.mu.Unlock()
	if launcher == nil {
		return errors.New("flickermod: no launcher wired")
	}
	if len(slbBytes) == 0 {
		return errors.New("flickermod: no SLB staged")
	}
	out, err := launcher.LaunchByMeasurement(palcrypto.SHA1Sum(slbBytes), inputs)
	if err != nil {
		return err
	}
	mod.mu.Lock()
	mod.outputs = out
	mod.mu.Unlock()
	return nil
}

// PublishOutputs makes session outputs readable at the outputs sysfs entry.
// The slice is retained as-is (the session engine hands over the PAL's own
// staged-output buffer, which nothing mutates afterwards) — the same
// aliasing the control-path launcher already uses.
func (mod *Module) PublishOutputs(out []byte) {
	mod.mu.Lock()
	defer mod.mu.Unlock()
	mod.outputs = out
}

// AllocateSLB returns slb_base: the 64 KB-aligned kernel buffer for the SLB
// region and its parameter pages. The buffer is allocated once, when first
// needed, and reused for every subsequent session — the module "is only
// loaded once" (Figure 2), so slb_base is stable across sessions. A stable
// base is what lets a PAL seal data to its own measurement and unseal it in
// a later session: the measurement covers the patched GDT, which embeds
// slb_base.
func (mod *Module) AllocateSLB() (uint32, error) {
	mod.mu.Lock()
	defer mod.mu.Unlock()
	if mod.slbBase != 0 {
		return mod.slbBase, nil
	}
	base, err := mod.K.KAlloc(slb.RegionLen, slb.MaxLen)
	if err != nil {
		return 0, err
	}
	mod.slbBase = base
	return base, nil
}

// PlaceSLB patches an image for slbBase and writes it into kernel memory,
// along with the inputs at the well-known input page. All stores go through
// WriteIfChanged: re-staging the identical image leaves the region's write
// generation untouched, which is what lets SKINIT's measurement cache
// recognize an unchanged SLB across back-to-back sessions.
func (mod *Module) PlaceSLB(im *slb.Image, slbBase uint32, inputs []byte) error {
	if len(inputs) > slb.PageSize-4 {
		return fmt.Errorf("flickermod: inputs of %d bytes exceed the 4 KB parameter page", len(inputs))
	}
	if err := im.Patch(slbBase); err != nil {
		return err
	}
	if _, err := mod.M.Mem.WriteIfChanged(slbBase, im.Bytes()); err != nil {
		return err
	}
	// Additional PAL code lands above the parameter pages; the measured
	// SLB's preparatory code protects and measures it after SKINIT.
	if im.HasExtra() {
		if _, err := mod.M.Mem.WriteIfChanged(slbBase+uint32(slb.ExtraCodeOffset), im.Extra()); err != nil {
			return err
		}
	}
	// Inputs are length-prefixed in the input page.
	mod.mu.Lock()
	page := mod.inputScratch[:4+len(inputs)]
	binary.LittleEndian.PutUint32(page[0:4], uint32(len(inputs)))
	copy(page[4:], inputs)
	_, err := mod.M.Mem.WriteIfChanged(slbBase+uint32(slb.InputsOffset), page)
	mod.mu.Unlock()
	return err
}

// ReadInputs reads the length-prefixed inputs from the input page (what the
// SLB Core hands the PAL).
func (mod *Module) ReadInputs(slbBase uint32) ([]byte, error) {
	hdr, err := mod.M.Mem.Read(slbBase+uint32(slb.InputsOffset), 4)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > slb.PageSize-4 {
		return nil, errors.New("flickermod: corrupt input length")
	}
	return mod.M.Mem.Read(slbBase+uint32(slb.InputsOffset)+4, int(n))
}

// SavedState is the kernel context stashed before SKINIT so the SLB Core
// can resume the OS: CR3 (the kernel page tables), the kernel GDT base, and
// which cores were hotplugged.
type SavedState struct {
	CR3          uint32
	GDTBase      uint32
	OfflinedAPs  []int
	SavedAt      uint32 // physical address of the saved-state page
	wasSuspended bool
}

// Suspended reports whether the state is still pending a ResumeOS — the
// session pipeline's teardown guard, so resume runs exactly once.
func (st *SavedState) Suspended() bool { return st.wasSuspended }

// SuspendOS prepares the machine for SKINIT: it hotplugs every AP offline,
// sends the INIT IPIs, and saves the BSP's kernel state into the
// saved-state page above the SLB (Section 4.2, "Suspend OS").
func (mod *Module) SuspendOS(slbBase uint32) (*SavedState, error) {
	st := &SavedState{
		CR3:     mod.M.BSP().CR3(),
		GDTBase: mod.M.BSP().GDTBase(),
		SavedAt: slbBase + uint32(slb.SavedStateOffset),
	}
	for _, c := range mod.M.Cores()[1:] {
		if err := mod.K.OfflineCore(c.ID); err != nil {
			return nil, fmt.Errorf("flickermod: hotplug of core %d: %w", c.ID, err)
		}
		if err := mod.M.SendINITIPI(c.ID); err != nil {
			return nil, fmt.Errorf("flickermod: INIT IPI to core %d: %w", c.ID, err)
		}
		st.OfflinedAPs = append(st.OfflinedAPs, c.ID)
	}
	// Persist the state to the saved-state page (the SLB Core reads it
	// during Resume OS).
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], st.CR3)
	binary.LittleEndian.PutUint32(buf[4:8], st.GDTBase)
	if err := mod.M.Mem.Write(st.SavedAt, buf[:]); err != nil {
		return nil, err
	}
	mod.K.Clock().Advance(mod.K.Profile().ContextSwitch, "os.suspend")
	st.wasSuspended = true
	return st, nil
}

// ResumeOS completes the OS side of resume after the SLB Core has restored
// paging: it re-onlines the hotplugged cores and restarts scheduling.
func (mod *Module) ResumeOS(st *SavedState) error {
	if !st.wasSuspended {
		return errors.New("flickermod: resume without suspend")
	}
	for _, id := range st.OfflinedAPs {
		if err := mod.K.OnlineCore(id); err != nil {
			return fmt.Errorf("flickermod: re-onlining core %d: %w", id, err)
		}
	}
	mod.K.Clock().Advance(mod.K.Profile().ContextSwitch, "os.resume")
	st.wasSuspended = false
	return nil
}

// RestoreKernelContext performs the SLB Core's two-phase return to the
// kernel: reload flat segments, rebuild skeleton page tables (charged as
// PageTableReload), re-enable paging, restore CR3 and the kernel GDT.
func (mod *Module) RestoreKernelContext(core *cpu.Core, st *SavedState) {
	// Phase 1: segment descriptors covering all of memory via the call
	// gate in the SLB Core's GDT.
	core.SetSegments(0, uint32(mod.M.Mem.Size()-1))
	// Phase 2: skeleton page tables with a unity mapping, then paging on,
	// then the kernel's own tables.
	mod.K.Clock().Advance(mod.K.Profile().PageTableReload, "cpu.pagetables")
	core.SetPaging(true)
	core.SetCR3(st.CR3)
	core.SetGDTBase(st.GDTBase)
}

// SaveContextOnly saves the launching core's kernel context without
// suspending the other cores — the preparation step for a partitioned
// launch on next-generation hardware ([19]), where "untrusted legacy code
// [continues] to execute on other cores".
func (mod *Module) SaveContextOnly(slbBase uint32) (*SavedState, error) {
	st := &SavedState{
		CR3:     mod.M.BSP().CR3(),
		GDTBase: mod.M.BSP().GDTBase(),
		SavedAt: slbBase + uint32(slb.SavedStateOffset),
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:4], st.CR3)
	binary.LittleEndian.PutUint32(buf[4:8], st.GDTBase)
	if err := mod.M.Mem.Write(st.SavedAt, buf); err != nil {
		return nil, err
	}
	mod.K.Clock().Advance(mod.K.Profile().ContextSwitch, "os.suspend")
	st.wasSuspended = true
	return st, nil
}
