package sched

import "time"

// Group-commit coalescing is the second policy the pool and the fabric
// controller share (the first is Home/LeastLoaded placement): gather up to
// MaxBatch compatible work items behind the first one, holding the group
// open for at most MaxWait, then flush — a burst flushes immediately at
// MaxBatch, a lone item waits one MaxWait and runs alone (the singleton
// fallback), and a closing queue flushes whatever is in hand. The pool
// applies it to shard rings (amortizing SKINIT + Seal/Unseal per session);
// the controller applies it to wire frames (amortizing the netsim round
// trip per session). One definition keeps the two amortization tiers
// honest about implementing the same discipline.

// Flush reasons, labeling why a gathered group was released. They are the
// label values of flicker_pool_batch_flush_total and
// flicker_fabric_batch_flush_total.
const (
	// FlushFull: the group reached MaxBatch.
	FlushFull = "full"
	// FlushTimeout: MaxWait expired with the group still short.
	FlushTimeout = "timeout"
	// FlushDrain: the queue is closing; flush what is in hand.
	FlushDrain = "drain"
)

// Coalescer is the group-commit policy knob pair.
type Coalescer struct {
	// MaxBatch is the largest group a single flush may carry. 0 or 1
	// disables coalescing entirely (every item is a singleton).
	MaxBatch int
	// MaxWait bounds how long the first item of a group is held open
	// waiting for companions.
	MaxWait time.Duration
}

// Normalize applies the shared defaults: an enabled coalescer with no
// explicit MaxWait holds groups for 1ms.
func (c Coalescer) Normalize() Coalescer {
	if c.MaxBatch > 1 && c.MaxWait <= 0 {
		c.MaxWait = time.Millisecond
	}
	return c
}

// Enabled reports whether the policy coalesces at all.
func (c Coalescer) Enabled() bool { return c.MaxBatch > 1 }

// Gather is the channel-fed gather loop (the fabric controller's dispatch
// queues are channels; the pool has its own ring-fed twin with identical
// semantics): collect up to c.MaxBatch items starting from first, holding
// the group open for at most c.MaxWait. Returns the group and its flush
// reason.
func Gather[T any](c Coalescer, first T, ch <-chan T) ([]T, string) {
	group := []T{first}
	if !c.Enabled() {
		return group, FlushFull
	}
	timer := time.NewTimer(c.MaxWait)
	defer timer.Stop()
	for len(group) < c.MaxBatch {
		select {
		case item := <-ch:
			group = append(group, item)
		case <-timer.C:
			return group, FlushTimeout
		}
	}
	return group, FlushFull
}
