package sched

import (
	"fmt"
	"testing"
)

// Home must match the FNV-1a routing the pool has always used, so the
// extraction cannot silently re-home every PAL's warm caches.
func TestHomeIsFNV1a(t *testing.T) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	for _, key := range []string{"", "a", "ssh-auth", "flicker-ca", "pal-7"} {
		h := uint64(offset64)
		for i := 0; i < len(key); i++ {
			h ^= uint64(key[i])
			h *= prime64
		}
		for _, n := range []int{1, 3, 4, 16} {
			if got, want := Home(key, n), int(h%uint64(n)); got != want {
				t.Fatalf("Home(%q, %d) = %d, want %d", key, n, got, want)
			}
		}
	}
}

func TestHomeSpreadsKeys(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < 32; i++ {
		seen[Home(fmt.Sprintf("pal-%d", i), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("32 keys over 4 targets hit only %d homes", len(seen))
	}
}

func TestLeastLoadedPicksMinAndBreaksTiesLow(t *testing.T) {
	loads := []int64{5, 2, 9, 2}
	got := LeastLoaded(len(loads), func(i int) int64 { return loads[i] })
	if got != 1 {
		t.Fatalf("LeastLoaded = %d, want 1 (first of the tied minima)", got)
	}
	one := LeastLoaded(1, func(int) int64 { return 99 })
	if one != 0 {
		t.Fatalf("single-target LeastLoaded = %d, want 0", one)
	}
}

func TestPickPrefersHomeThenSpillsThenFails(t *testing.T) {
	loads := []int64{3, 1, 2, 7}
	load := func(i int) int64 { return loads[i] }
	key := "k"
	home := Home(key, 4)

	// Home has room: home wins regardless of load.
	if got := Pick(key, 4, load, func(int) bool { return false }); got != home {
		t.Fatalf("Pick with room = %d, want home %d", got, home)
	}
	// Home full: least-loaded other target with room.
	gotSpill := Pick(key, 4, load, func(i int) bool { return i == home })
	wantSpill := -1
	var wantLoad int64
	for i := 0; i < 4; i++ {
		if i == home {
			continue
		}
		if wantSpill < 0 || loads[i] < wantLoad {
			wantSpill, wantLoad = i, loads[i]
		}
	}
	if gotSpill != wantSpill {
		t.Fatalf("Pick spill = %d, want %d", gotSpill, wantSpill)
	}
	// Everything full: -1.
	if got := Pick(key, 4, load, func(int) bool { return true }); got != -1 {
		t.Fatalf("Pick all-full = %d, want -1", got)
	}
	if got := Pick(key, 0, load, func(int) bool { return false }); got != -1 {
		t.Fatalf("Pick n=0 = %d, want -1", got)
	}
}
