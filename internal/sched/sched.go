// Package sched is the routing core shared by the single-process session
// pool (internal/pool) and the controller of the attestation fabric
// (internal/fabric): key-affinity placement with least-loaded spill.
//
// The policy is the one the pool grew for PAL routing — a PAL's name hashes
// to a home target, so repeat sessions land where the SLB image cache and
// SKINIT measurement cache are already warm for it, and an overloaded home
// spills to the least-loaded target. Extracting it lets the fabric
// controller apply the identical policy across hosts instead of shards,
// so a PAL keeps one warm home whether the fleet is in-process or
// distributed.
//
// The package is deliberately allocation-free: Home is a pure hash and
// LeastLoaded walks loads through a callback, so the pool's submit path
// and the controller's dispatch path can call them without feeding the GC.
package sched

// Home returns the affinity index for key among n targets: FNV-1a over the
// key, modulo n. It is deterministic across processes and runs, so a
// controller and its hosts agree on placement without coordination.
// n must be > 0.
func Home(key string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// LeastLoaded returns the index in [0, n) with the smallest load, asking
// load(i) for each candidate. Ties resolve to the lowest index, so the
// choice is deterministic. n must be > 0.
func LeastLoaded(n int, load func(i int) int64) int {
	best, bestLoad := 0, load(0)
	for i := 1; i < n; i++ {
		if l := load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// Pick routes one unit of work: the home target for key if it has room,
// otherwise the least-loaded target with room, otherwise -1. full(i)
// reports that target i cannot accept more work (queue full, draining,
// lost); load(i) is its current queued+in-flight count.
func Pick(key string, n int, load func(i int) int64, full func(i int) bool) int {
	if n <= 0 {
		return -1
	}
	home := Home(key, n)
	if !full(home) {
		return home
	}
	best, bestLoad := -1, int64(0)
	for i := 0; i < n; i++ {
		if full(i) {
			continue
		}
		if l := load(i); best < 0 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}
