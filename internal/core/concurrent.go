package core

import (
	"fmt"

	"flicker/internal/hw/tis"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// RunSessionConcurrent executes a Flicker session on the BSP while the
// untrusted OS keeps running on the remaining cores. This is the multicore
// extension the paper recommends for next-generation hardware (Section 7.5
// / [19]): "Systems should support secure execution on a subset of CPU
// cores, while allowing untrusted legacy code to continue to execute on
// other cores. This will eliminate problems with interrupts being
// disabled."
//
// It requires a profile with MulticoreIsolation (ProfileFuture); on
// 2008-era profiles it returns cpu.ErrNoMulticoreIsolation. The security
// contract is unchanged — DEV over the SLB, PCR-17 reset and measurement,
// cleanup, cap extend — but the OS is never suspended: work scheduled on
// the other cores is retired concurrently with the session, and pending
// interrupts are delivered to them throughout.
func (p *Platform) RunSessionConcurrent(pl pal.PAL, opts SessionOptions) (*SessionResult, error) {
	res := &SessionResult{Start: p.Clock.Now(), Nonce: opts.Nonce}
	phase := func(name string, f func() error) error {
		st := p.Clock.Now()
		err := f()
		res.Phases = append(res.Phases, Phase{Name: name, Start: st, Duration: p.Clock.Now() - st})
		return err
	}

	var im *slb.Image
	var slbBase uint32
	if err := phase("accept", func() error {
		var err error
		im = opts.image
		if im == nil {
			im, err = BuildImage(pl, opts.TwoStage)
			if err != nil {
				return err
			}
		}
		slbBase, err = p.Mod.AllocateSLB()
		return err
	}); err != nil {
		return nil, err
	}
	res.Image = im
	res.SLBBase = slbBase

	if err := phase("init-slb", func() error {
		return p.Mod.PlaceSLB(im, slbBase, opts.Input)
	}); err != nil {
		return nil, err
	}

	// Save only the launching core's context — no hotplug, no INIT IPIs.
	var saved *flickerSaved
	if err := phase("save-context", func() error {
		st, err := p.Mod.SaveContextOnly(slbBase)
		if err != nil {
			return err
		}
		saved = &flickerSaved{st: st}
		return nil
	}); err != nil {
		return nil, err
	}

	var launch launchState
	if err := phase("skinit-partitioned", func() error {
		ll, err := p.Machine.SKINITPartitioned(0, slbBase)
		if err != nil {
			return err
		}
		launch.ll = ll
		return nil
	}); err != nil {
		return nil, err
	}
	res.Measurement = launch.ll.Measurement

	var env *pal.Env
	var palOut []byte
	var palErr error
	if err := phase("pal-exec", func() error {
		p.mu.Lock()
		p.seq++
		seed := fmt.Sprintf("pal-tpm-%d", p.seq)
		p.mu.Unlock()
		palTPM := tpm.NewClient(p.Bus, tis.Locality2, []byte(seed))
		if im.TwoStage() {
			p.Clock.Advance(p.Profile.CPUHashCost(slb.MaxLen), "cpu.hash")
			if _, err := palTPM.Extend(17, im.WindowMeasurement()); err != nil {
				return fmt.Errorf("core: stage-2 extend: %w", err)
			}
		}
		// Additional PAL code above the 64 KB window: the preparatory code
		// adds it to the DEV and extends its measurement into PCR 17 before
		// any of it runs (Section 2.4).
		if im.HasExtra() {
			if err := launch.ll.ExtendProtection(slbBase+uint32(slb.ExtraCodeOffset), len(im.Extra())); err != nil {
				return fmt.Errorf("core: extending DEV over extra PAL code: %w", err)
			}
			p.Clock.Advance(p.Profile.CPUHashCost(len(im.Extra())), "cpu.hash")
			if _, err := palTPM.Extend(17, im.ExtraMeasurement()); err != nil {
				return fmt.Errorf("core: extra-code extend: %w", err)
			}
		}
		identity := launch.ll.PCR17
		if im.TwoStage() {
			identity = im.ExpectedPCR17TwoStage()
		}
		if im.HasExtra() {
			identity = tpm.ExtendDigest(identity, im.ExtraMeasurement())
		}
		var err error
		env, err = pal.NewEnv(pal.EnvConfig{
			Clock:      p.Clock,
			Profile:    p.Profile,
			Mem:        p.Machine.Mem,
			Core:       p.Machine.BSP(),
			TPM:        palTPM,
			SLBBase:    slbBase,
			SLBLen:     im.Len(),
			Sandbox:    opts.Sandbox,
			HeapSize:   opts.HeapSize,
			Machine:    p.Machine,
			MaxPALTime: opts.MaxPALTime,
			Identity:   identity,
			ExtraLen:   len(im.Extra()),
		})
		if err != nil {
			return err
		}
		input, err := p.Mod.ReadInputs(slbBase)
		if err != nil {
			return err
		}
		palOut, palErr = pl.Run(env, input)
		if palErr == nil && env.TimedOut() {
			palErr = pal.ErrPALTimeout
		}
		if palErr == nil && palOut == nil {
			palOut = env.Output()
		}
		env.ExitSandbox()
		if palErr == nil && len(palOut) > slb.PageSize-4 {
			palErr = fmt.Errorf("core: PAL output of %d bytes exceeds the 4 KB output page", len(palOut))
		}
		return nil
	}); err != nil {
		launch.ll.End()
		return nil, err
	}
	if v, err := env.PCR17(); err == nil {
		res.PCR17AtLaunch = v
	}

	if err := phase("cleanup", func() error {
		if env.Heap != nil {
			env.Heap.Wipe()
		}
		wipe := slb.MaxLen
		if int(slbBase)+wipe > p.Machine.Mem.Size() {
			wipe = p.Machine.Mem.Size() - int(slbBase)
		}
		if err := p.Machine.Mem.Zero(slbBase, wipe); err != nil {
			return err
		}
		if im.HasExtra() {
			if err := p.Machine.Mem.Zero(slbBase+uint32(slb.ExtraCodeOffset), len(im.Extra())); err != nil {
				return err
			}
			// The preparatory code's DEV extension is cleared here; End()
			// only covers the primary 64 KB window.
			if err := p.Machine.Mem.DEVClear(slbBase+uint32(slb.ExtraCodeOffset), len(im.Extra())); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		launch.ll.End()
		return nil, err
	}

	if err := phase("extend-pcr", func() error {
		palTPM := tpm.NewClient(p.Bus, tis.Locality2, []byte("slbcore-extend"))
		res.InputDigest = palcrypto.SHA1Sum(opts.Input)
		if _, err := palTPM.Extend(17, res.InputDigest); err != nil {
			return err
		}
		res.OutputDigest = palcrypto.SHA1Sum(palOut)
		if _, err := palTPM.Extend(17, res.OutputDigest); err != nil {
			return err
		}
		if opts.Nonce != nil {
			if _, err := palTPM.Extend(17, *opts.Nonce); err != nil {
				return err
			}
		}
		if _, err := palTPM.Extend(17, slb.SessionTerminator); err != nil {
			return err
		}
		v, err := palTPM.PCRRead(17)
		if err != nil {
			return err
		}
		res.PCR17Final = v
		return nil
	}); err != nil {
		launch.ll.End()
		return nil, err
	}

	if err := phase("resume-core", func() error {
		p.Mod.RestoreKernelContext(p.Machine.BSP(), saved.st)
		return launch.ll.End()
	}); err != nil {
		return nil, err
	}

	if palErr == nil {
		res.Outputs = palOut
		p.Mod.PublishOutputs(palOut)
	}
	res.PALError = palErr
	res.End = p.Clock.Now()

	// The other cores executed untrusted work for the whole session
	// duration: retire that work without advancing the clock again.
	otherCores := len(p.Machine.Cores()) - 1
	p.Kernel.AbsorbParallelWork(otherCores, res.Duration())
	return res, nil
}
