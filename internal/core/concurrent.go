package core

import (
	"flicker/internal/pal"
)

// RunSessionConcurrent executes a Flicker session on the BSP while the
// untrusted OS keeps running on the remaining cores. This is the multicore
// extension the paper recommends for next-generation hardware (Section 7.5
// / [19]): "Systems should support secure execution on a subset of CPU
// cores, while allowing untrusted legacy code to continue to execute on
// other cores. This will eliminate problems with interrupts being
// disabled."
//
// It requires a profile with MulticoreIsolation (ProfileFuture); on
// 2008-era profiles it returns cpu.ErrNoMulticoreIsolation. The security
// contract is unchanged — DEV over the SLB, PCR-17 reset and measurement,
// cleanup, cap extend — but the OS is never suspended: work scheduled on
// the other cores is retired concurrently with the session, and pending
// interrupts are delivered to them throughout.
//
// The session itself is the partitioned phase list over the shared
// pipeline engine (see pipeline.go), and is serialized against classic
// sessions: the flicker-module owns a single SLB buffer and the machine
// supports one late launch at a time, so a partitioned launch queues
// behind any in-flight session exactly as a concurrent ioctl would.
func (p *Platform) RunSessionConcurrent(pl pal.PAL, opts SessionOptions) (*SessionResult, error) {
	return p.runPipeline(&partitionedPipeline, pl, opts)
}
