package core

// The metrics bridge folds the session pipeline's observer events into the
// platform's metrics registry, so session-level observability lands in the
// same scrape as the hardware layers': session counts by pipeline and
// outcome, per-phase simulated-duration histograms, per-phase abort counts,
// and a live in-flight gauge. NewPlatform attaches one automatically.

import (
	"sync"
	"time"

	"flicker/internal/metrics"
	"flicker/internal/simtime"
)

// metricsBridge implements Observer over a metrics.Registry and EventLog.
type metricsBridge struct {
	sessions  *metrics.CounterVec   // pipeline, result
	phaseSecs *metrics.HistogramVec // phase
	aborts    *metrics.CounterVec   // phase
	inFlight  *metrics.Gauge
	events    *metrics.EventLog

	mu    sync.Mutex
	start map[uint64]sessionTrack // by session id
	// Per-phase and per-pipeline ok-path handles, resolved lazily under mu:
	// every session crosses PhaseEnd five-plus times, and the phase and
	// pipeline vocabularies are tiny and fixed.
	phaseObs   map[string]*metrics.Histogram
	sessionsOK map[string]*metrics.Counter
}

// sessionTrack carries per-session state between observer callbacks.
type sessionTrack struct {
	pipeline   string
	traceID    string // active distributed trace ("" when untraced)
	phaseStart time.Duration
	lastPhase  string // most recent phase to start (the abort site on failure)
}

// newMetricsBridge registers the session families on reg.
func newMetricsBridge(reg *metrics.Registry, events *metrics.EventLog) *metricsBridge {
	return &metricsBridge{
		sessions: reg.Counter("flicker_sessions_total",
			"Flicker sessions, by pipeline and outcome.", "pipeline", "result"),
		phaseSecs: reg.Histogram("flicker_session_phase_seconds",
			"Simulated duration of session pipeline phases.", nil, "phase"),
		aborts: reg.Counter("flicker_session_aborts_total",
			"Sessions aborted by an infrastructure failure, by the phase that failed.", "phase"),
		inFlight: reg.Gauge("flicker_sessions_in_flight",
			"Sessions currently between SessionStart and SessionEnd.").With().Cell(),
		events:     events,
		start:      make(map[uint64]sessionTrack),
		phaseObs:   make(map[string]*metrics.Histogram),
		sessionsOK: make(map[string]*metrics.Counter),
	}
}

// phaseHist returns the cached histogram handle for a phase.
func (b *metricsBridge) phaseHist(phase string) *metrics.Histogram {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.phaseObs[phase]
	if !ok {
		h = b.phaseSecs.With(phase).Cell()
		b.phaseObs[phase] = h
	}
	return h
}

func (b *metricsBridge) SessionStart(m SessionMeta) {
	b.mu.Lock()
	b.start[m.ID] = sessionTrack{pipeline: m.Pipeline, traceID: m.TraceID}
	b.mu.Unlock()
	b.inFlight.Inc()
}

func (b *metricsBridge) PhaseStart(sid uint64, phase string, at time.Duration) {
	b.mu.Lock()
	if tr, ok := b.start[sid]; ok {
		tr.phaseStart = at
		tr.lastPhase = phase
		b.start[sid] = tr
	}
	b.mu.Unlock()
}

func (b *metricsBridge) Charge(sid uint64, phase string, c simtime.Charge) {}

func (b *metricsBridge) PhaseEnd(sid uint64, phase string, at time.Duration, err error) {
	b.mu.Lock()
	tr, ok := b.start[sid]
	b.mu.Unlock()
	if ok {
		// A traced session pins its trace ID as the exemplar of the bucket
		// each phase duration lands in.
		b.phaseHist(phase).ObserveDurationExemplar(at-tr.phaseStart, tr.traceID)
	}
	if err != nil {
		//flickervet:allow metrichandle(aborts are once-per-incident infrastructure failures)
		b.aborts.With(phase).Inc()
	}
}

func (b *metricsBridge) SessionEnd(sid uint64, at time.Duration, err error) {
	b.mu.Lock()
	tr, ok := b.start[sid]
	delete(b.start, sid)
	b.mu.Unlock()
	b.inFlight.Dec()
	if !ok {
		return
	}
	if err != nil {
		b.events.RecordTrace(metrics.EventSessionAbort,
			"core: session aborted in phase "+tr.lastPhase+": "+err.Error(), tr.traceID)
		//flickervet:allow metrichandle(aborted sessions are once-per-incident)
		b.sessions.With(tr.pipeline, "aborted").Inc()
		return
	}
	b.mu.Lock()
	c, cached := b.sessionsOK[tr.pipeline]
	if !cached {
		c = b.sessions.With(tr.pipeline, "ok").Cell()
		b.sessionsOK[tr.pipeline] = c
	}
	b.mu.Unlock()
	c.Inc()
}
