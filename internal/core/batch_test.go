package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"flicker/internal/pal"
	"flicker/internal/simtime"
	"flicker/internal/slb"
)

// echoPAL is deterministic per input, so batch replies can be compared
// byte-for-byte against singleton outputs.
func echoPAL() pal.PAL {
	return &pal.Func{
		PALName: "echo",
		Binary:  pal.DescriptorCode("echo", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return append([]byte("echo:"), input...), nil
		},
	}
}

// The acceptance check: a batched session's launch identity (PCR-17 after
// SKINIT) and its per-request outputs are bit-identical to running the same
// requests as individual sessions.
func TestBatchMatchesSingletonSessions(t *testing.T) {
	reqs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd")}

	single := newPlatform(t)
	var wantOut [][]byte
	var wantPCR []string
	for _, r := range reqs {
		res, err := single.RunSession(echoPAL(), SessionOptions{Input: r})
		if err != nil {
			t.Fatal(err)
		}
		if res.PALError != nil {
			t.Fatal(res.PALError)
		}
		wantOut = append(wantOut, res.Outputs)
		wantPCR = append(wantPCR, fmt.Sprintf("%x", res.PCR17AtLaunch))
	}

	batched := newPlatform(t)
	br, err := batched.RunSessionBatch(echoPAL(), Batch{Requests: reqs}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Session.PALError != nil {
		t.Fatal(br.Session.PALError)
	}
	if br.Completed != len(reqs) {
		t.Fatalf("Completed = %d, want %d", br.Completed, len(reqs))
	}
	// One measurement for the whole group, identical to every singleton's.
	if got := fmt.Sprintf("%x", br.Session.PCR17AtLaunch); got != wantPCR[0] {
		t.Errorf("batch PCR17AtLaunch = %s, singleton = %s", got, wantPCR[0])
	}
	for i, p := range wantPCR {
		if p != wantPCR[0] {
			t.Fatalf("singleton %d PCR17AtLaunch differs — test assumption broken", i)
		}
	}
	// Per-request outputs bit-identical to the singleton sessions'.
	for i := range reqs {
		if br.Replies[i].Err != nil {
			t.Fatalf("reply %d: %v", i, br.Replies[i].Err)
		}
		if string(br.Replies[i].Output) != string(wantOut[i]) {
			t.Errorf("reply %d = %q, singleton output = %q", i, br.Replies[i].Output, wantOut[i])
		}
	}
	// The framed output page round-trips to the same replies (the bytes the
	// attestation's output digest covers are per-request attributable).
	replies, trailer, err := DecodeBatchOutput(br.Session.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(trailer) != 0 {
		t.Errorf("trailer = %d bytes, want none", len(trailer))
	}
	for i := range reqs {
		if string(replies[i].Output) != string(wantOut[i]) {
			t.Errorf("decoded reply %d = %q, want %q", i, replies[i].Output, wantOut[i])
		}
	}
}

// The amortization claim itself, in simulated time: one batch of 8 must
// beat 8 singleton sessions by at least 3x (it is nearer 8x — the whole
// fixed cost is paid once).
func TestBatchAmortization(t *testing.T) {
	const n = 8
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i] = []byte{byte(i)}
	}

	single := newPlatform(t)
	var singletonTotal time.Duration
	for _, r := range reqs {
		res, err := single.RunSession(echoPAL(), SessionOptions{Input: r})
		if err != nil {
			t.Fatal(err)
		}
		singletonTotal += res.Duration()
	}

	batched := newPlatform(t)
	br, err := batched.RunSessionBatch(echoPAL(), Batch{Requests: reqs}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batchTotal := br.Session.Duration()
	if batchTotal <= 0 {
		t.Fatalf("batch duration = %v", batchTotal)
	}
	ratio := float64(singletonTotal) / float64(batchTotal)
	t.Logf("8 singletons: %v, 1 batch of 8: %v (%.1fx)", singletonTotal, batchTotal, ratio)
	if ratio < 3 {
		t.Fatalf("amortization ratio = %.2fx, want >= 3x", ratio)
	}
}

// An abort at request k must scrub the window, cap PCR 17, and report
// exactly the completed prefix.
func TestBatchAbortMidBatchPrefix(t *testing.T) {
	p := newPlatform(t)
	// Learn the (stable) SLB base from a clean session first.
	warm, err := p.RunSession(echoPAL(), SessionOptions{Input: []byte("warm")})
	if err != nil {
		t.Fatal(err)
	}
	base := warm.SLBBase
	boom := errors.New("killed at request 2")
	reqs := [][]byte{[]byte("0"), []byte("1"), []byte("2"), []byte("3"), []byte("4")}
	br, err := p.RunSessionBatch(echoPAL(), Batch{Requests: reqs}, SessionOptions{
		Injector: func(phase string) error {
			if phase == "request[2]" {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected abort", err)
	}
	if br == nil {
		t.Fatal("BatchResult is nil on abort; want the completed prefix")
	}
	if br.Completed != 2 || len(br.Replies) != 2 {
		t.Fatalf("Completed = %d (%d replies), want exactly the 2-request prefix", br.Completed, len(br.Replies))
	}
	for i, r := range br.Replies {
		if r.Err != nil || string(r.Output) != "echo:"+string(reqs[i]) {
			t.Errorf("prefix reply %d = (%q, %v)", i, r.Output, r.Err)
		}
	}
	// The abort teardown blanket-zeroed the SLB window and parameter pages.
	win, err := p.Machine.Mem.Read(base, slb.ParamAreaLen)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range win {
		if b != 0 {
			t.Fatalf("window byte %d = %#x after abort; want fully zeroed", i, b)
		}
	}
	// PCR 17 was capped: the platform still runs clean sessions afterwards,
	// with the same launch identity as ever.
	res, err := p.RunSession(echoPAL(), SessionOptions{Input: []byte("after")})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil || string(res.Outputs) != "echo:after" {
		t.Fatalf("post-abort session = (%q, %v)", res.Outputs, res.PALError)
	}
	st := p.Stats()
	if st.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", st.Aborted)
	}
}

// A request-level PAL failure must not leak into its neighbors or abort
// the session.
func TestBatchRequestErrorsIsolated(t *testing.T) {
	p := newPlatform(t)
	picky := &pal.Func{
		PALName: "picky",
		Binary:  pal.DescriptorCode("picky", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if string(input) == "bad" {
				return nil, errors.New("picky: refused")
			}
			return append([]byte("ok:"), input...), nil
		},
	}
	br, err := p.RunSessionBatch(picky, Batch{Requests: [][]byte{[]byte("x"), []byte("bad"), []byte("y")}}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Session.PALError != nil {
		t.Fatalf("session PALError = %v; a request failure must stay request-level", br.Session.PALError)
	}
	if br.Replies[0].Err != nil || string(br.Replies[0].Output) != "ok:x" {
		t.Errorf("reply 0 = (%q, %v)", br.Replies[0].Output, br.Replies[0].Err)
	}
	if br.Replies[1].Err == nil || !strings.Contains(br.Replies[1].Err.Error(), "refused") {
		t.Errorf("reply 1 err = %v, want the PAL refusal", br.Replies[1].Err)
	}
	if br.Replies[2].Err != nil || string(br.Replies[2].Output) != "ok:y" {
		t.Errorf("reply 2 = (%q, %v)", br.Replies[2].Output, br.Replies[2].Err)
	}
}

// Observers see one span per request, and charges the PAL incurs during a
// request attribute to it.
func TestBatchPerRequestSpans(t *testing.T) {
	p := newPlatform(t)
	var spans int
	var charged time.Duration
	p.AddObserver(&funcObserver{
		phaseStart: func(phase string) {
			if phase == phaseRequest {
				spans++
			}
		},
		charge: func(phase string, c simtime.Charge) {
			if phase == phaseRequest {
				charged += c.Duration
			}
		},
	})
	worker := &pal.Func{
		PALName: "worker",
		Binary:  pal.DescriptorCode("worker", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			env.ChargeCPU(simtime.Charge{Duration: time.Millisecond, Label: "cpu.work"})
			return []byte("done"), nil
		},
	}
	reqs := [][]byte{{1}, {2}, {3}}
	br, err := p.RunSessionBatch(worker, Batch{Requests: reqs}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if spans != len(reqs) {
		t.Errorf("request spans = %d, want %d", spans, len(reqs))
	}
	if charged < 3*time.Millisecond {
		t.Errorf("charges attributed to request spans = %v, want >= 3ms", charged)
	}
	// The session timeline records the same spans.
	var inTimeline int
	for _, ph := range br.Session.Phases {
		if ph.Name == phaseRequest {
			inTimeline++
		}
	}
	if inTimeline != len(reqs) {
		t.Errorf("timeline request phases = %d, want %d", inTimeline, len(reqs))
	}
}

// funcObserver adapts closures to the Observer interface for tests.
type funcObserver struct {
	phaseStart func(phase string)
	charge     func(phase string, c simtime.Charge)
}

func (f *funcObserver) SessionStart(SessionMeta) {}
func (f *funcObserver) PhaseStart(_ uint64, phase string, _ time.Duration) {
	if f.phaseStart != nil {
		f.phaseStart(phase)
	}
}
func (f *funcObserver) Charge(_ uint64, phase string, c simtime.Charge) {
	if f.charge != nil {
		f.charge(phase, c)
	}
}
func (f *funcObserver) PhaseEnd(uint64, string, time.Duration, error) {}
func (f *funcObserver) SessionEnd(uint64, time.Duration, error)       {}

// The SLB Core's session timer fires mid-batch: the interrupted request
// reports the timeout, later requests never run, completed replies survive.
func TestBatchTimeoutStopsLoop(t *testing.T) {
	p := newPlatform(t)
	slow := &pal.Func{
		PALName: "slow",
		Binary:  pal.DescriptorCode("slow", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			env.ChargeCPU(simtime.Charge{Duration: 10 * time.Millisecond, Label: "cpu.slow"})
			return []byte("done"), nil
		},
	}
	reqs := [][]byte{{0}, {1}, {2}, {3}}
	br, err := p.RunSessionBatch(slow, Batch{Requests: reqs}, SessionOptions{MaxPALTime: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(br.Session.PALError, pal.ErrPALTimeout) {
		t.Fatalf("session PALError = %v, want ErrPALTimeout", br.Session.PALError)
	}
	if br.Completed >= len(reqs) || br.Completed == 0 {
		t.Fatalf("Completed = %d, want a strict prefix", br.Completed)
	}
	last := br.Replies[br.Completed-1]
	if !errors.Is(last.Err, pal.ErrPALTimeout) {
		t.Errorf("interrupted reply err = %v, want ErrPALTimeout", last.Err)
	}
	for _, r := range br.Replies[:br.Completed-1] {
		if r.Err != nil || string(r.Output) != "done" {
			t.Errorf("completed reply = (%q, %v)", r.Output, r.Err)
		}
	}
}

// A request that stages no output must produce an empty reply: the staged
// output register is cleared at each request boundary, so one request can
// never inherit (leak) the reply a previous request staged via SetOutput.
func TestBatchNoStaleStagedOutput(t *testing.T) {
	p := newPlatform(t)
	stager := &pal.Func{
		PALName: "stager",
		Binary:  pal.DescriptorCode("stager", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if string(input) == "stage" {
				env.SetOutput([]byte("request-0-secret"))
			}
			return nil, nil // no direct return: the engine falls back to env.Output()
		},
	}
	br, err := p.RunSessionBatch(stager, Batch{Requests: [][]byte{[]byte("stage"), []byte("noop")}}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Session.PALError != nil {
		t.Fatal(br.Session.PALError)
	}
	if string(br.Replies[0].Output) != "request-0-secret" {
		t.Errorf("reply 0 = %q, want the staged output", br.Replies[0].Output)
	}
	if br.Replies[1].Err != nil || len(br.Replies[1].Output) != 0 {
		t.Errorf("reply 1 = (%q, %v); request 0's staged output leaked across the request boundary",
			br.Replies[1].Output, br.Replies[1].Err)
	}
}

// Forged count words in the wire frames must be rejected by the truncation
// checks without the count driving a huge preallocation: both decoders see
// untrusted bytes (DecodeBatchOutput is the verifier side).
func TestBatchDecodeForgedCount(t *testing.T) {
	// Input frame: empty header, then a count claiming 2^32-1 requests.
	in := []byte{0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := decodeBatchInput(in); err == nil {
		t.Error("forged input count accepted")
	}
	// Output frame: a count claiming 2^32-1 replies and no payload.
	out := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := DecodeBatchOutput(out); err == nil {
		t.Error("forged output count accepted")
	}
}

// Input validation: empty batches and groups that overflow the input page
// are rejected before any session cost is paid.
func TestBatchInputValidation(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.RunSessionBatch(echoPAL(), Batch{}, SessionOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([]byte, slb.PageSize/2)
	_, err := p.RunSessionBatch(echoPAL(), Batch{Requests: [][]byte{big, big, big}}, SessionOptions{})
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch err = %v, want ErrBatchTooLarge", err)
	}
	if n := p.Stats().Sessions; n != 0 {
		t.Errorf("rejected batches ran %d sessions", n)
	}
	// BatchInputFits agrees with the encoder.
	if !BatchInputFits(0, 10, 10) {
		t.Error("BatchInputFits rejects a tiny batch")
	}
	if BatchInputFits(0, len(big), len(big), len(big)) {
		t.Error("BatchInputFits accepts an overflowing batch")
	}
}

// A plain (non-BatchPAL) PAL must reject a batch header: it has no way to
// consume shared carried state, and silently dropping it would break the
// caller's sealed-state expectations.
func TestBatchHeaderRejectedForPlainPAL(t *testing.T) {
	p := newPlatform(t)
	br, err := p.RunSessionBatch(echoPAL(), Batch{Header: []byte("sealed"), Requests: [][]byte{{1}}}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Session.PALError == nil || !strings.Contains(br.Session.PALError.Error(), "header") {
		t.Fatalf("PALError = %v, want a header rejection", br.Session.PALError)
	}
	if br.Completed != 0 {
		t.Fatalf("Completed = %d, want 0 (no request ran)", br.Completed)
	}
}
