package core

// End-to-end observability tests: after real sessions, the platform's
// Prometheus exposition carries the cross-layer metric families the ISSUE's
// acceptance criteria name — per-ordinal TPM latency histograms, DEV
// violation counters, and session phase durations — and the registry
// survives concurrent sessions and scrapes under the race detector.

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"flicker/internal/metrics"
)

func TestExpositionAfterSession(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatal(res.PALError)
	}

	// Mount the paper's Section 3.1 malicious-DMA-device attack so the DEV
	// violation counter has a real sample, not just a family header.
	const attackAddr = 1 << 20
	if err := p.Machine.Mem.DEVProtect(attackAddr, 4096); err != nil {
		t.Fatal(err)
	}
	evil := p.Machine.Mem.AttachDevice("evil-nic")
	if _, err := evil.Read(attackAddr, 16); err == nil {
		t.Fatal("DEV failed to block the attack read")
	}

	var buf bytes.Buffer
	if err := p.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	// The three families the acceptance criteria name, with real samples.
	for _, want := range []string{
		`flicker_tpm_command_seconds_bucket{le="+Inf",ordinal="hashstart"} 1`,
		`flicker_dev_violations_total{device="evil-nic",op="read"} 1`,
		`flicker_session_phase_seconds_bucket{le="+Inf",phase="pal-exec"} 1`,
		`flicker_sessions_total{pipeline="classic",result="ok"} 1`,
		`flicker_tis_requests_total{locality="2",result="granted"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The event log saw the session's PCR-17 reset and the blocked DMA.
	if n := len(p.Events.EventsByKind(metrics.EventPCR17Reset)); n != 1 {
		t.Errorf("pcr17-reset events = %d, want 1", n)
	}
	if n := len(p.Events.EventsByKind(metrics.EventDEVViolation)); n != 1 {
		t.Errorf("dev-violation events = %d, want 1", n)
	}
}

func TestAbortedSessionMetrics(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.RunSession(helloPAL(), SessionOptions{FailPhase: "skinit"}); err == nil {
		t.Fatal("fault-injected session succeeded")
	}

	var buf bytes.Buffer
	if err := p.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`flicker_sessions_total{pipeline="classic",result="aborted"} 1`,
		`flicker_session_aborts_total{phase="skinit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if n := len(p.Events.EventsByKind(metrics.EventSessionAbort)); n != 1 {
		t.Errorf("session-abort events = %d, want 1", n)
	}
	st := p.Stats()
	if st.AbortedByPhase["skinit"] != 1 {
		t.Errorf("AbortedByPhase = %v, want skinit:1", st.AbortedByPhase)
	}
}

// TestMetricsConcurrentSessions hammers one registry from concurrent
// sessions and concurrent scrapers; run under -race (CI does) it proves the
// registry, event log, and every instrumented layer are data-race free.
func TestMetricsConcurrentSessions(t *testing.T) {
	p := newPlatform(t)
	const workers, perWorker = 4, 3

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if _, err := p.RunSession(helloPAL(), SessionOptions{}); err != nil {
					t.Errorf("session: %v", err)
					return
				}
			}
		}()
	}
	// Scrape both expositions continuously while the sessions run.
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
					var buf bytes.Buffer
					p.Metrics.WritePrometheus(&buf)
					p.Metrics.Snapshot()
					p.Events.Events()
					p.Stats()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapers.Wait()

	total := workers * perWorker
	var buf bytes.Buffer
	p.Metrics.WritePrometheus(&buf)
	want := `flicker_sessions_total{pipeline="classic",result="ok"} 12`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q after %d sessions", want, total)
	}
	if st := p.Stats(); st.Sessions != total {
		t.Errorf("Stats().Sessions = %d, want %d", st.Sessions, total)
	}
}
