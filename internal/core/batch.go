package core

// Batched session execution: the paper's Section 7.3-7.4 amortization. A
// batch runs the classic Figure 2 timeline once — one SKINIT, one set of
// closing extends, one suspend/resume — and loops the PAL over N requests
// inside the single pal-exec phase. Carried state crosses the boundary once
// in each direction: the batch header (e.g. a sealed database) is handed to
// the PAL's OpenBatch, and the trailer (the state resealed after the LAST
// request) comes back with the replies, preserving sealed-state
// monotonicity.
//
// Framing: the request group travels through the same 4 KB parameter pages
// a singleton session uses. The input page holds
//
//	u32 header_len | header | u32 count | count x (u32 len | bytes)
//
// and the output page holds
//
//	u32 count | count x (u8 status | u32 len | bytes) | u32 trailer_len | trailer
//
// where status 0 is a reply payload and status 1 an error string. The
// session's InputDigest/OutputDigest — and therefore the PCR-17 extends —
// cover the full frames, so every request's reply is attributable from the
// one attestation.
//
// Security: PCR17AtLaunch is a pure function of the launched image, so a
// batch session's launch identity — the value sealed storage is bound to —
// is bit-identical to a singleton session of the same image. Only the
// closing extends (input/output digests) differ, exactly as they differ
// between any two singleton sessions with different parameters.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flicker/internal/pal"
	"flicker/internal/slb"
)

// phaseRequest is the observer/trace span name for one batched request. The
// name is constant (not "request[i]") so per-phase metric label cardinality
// stays bounded; the i-th span in a session's timeline is request i.
const phaseRequest = "request"

// ErrBatchTooLarge is returned when a framed batch does not fit the 4 KB
// input page.
var ErrBatchTooLarge = errors.New("core: batch exceeds the 4 KB input page")

// Batch is a group of requests to run in one session.
type Batch struct {
	// Header is state shared by the whole group, delivered to the PAL's
	// OpenBatch (e.g. a sealed database, unsealed once per batch). Plain
	// (non-BatchPAL) PALs accept only an empty header.
	Header []byte
	// Requests are the per-request inputs, in execution order.
	Requests [][]byte
}

// BatchResult is the outcome of a batched session.
type BatchResult struct {
	// Session is the one session that carried the batch (nil if the
	// session aborted).
	Session *SessionResult
	// Replies holds one entry per executed request, in order. After an
	// abort at request k, it holds exactly the completed prefix (k
	// entries).
	Replies []pal.BatchReply
	// Trailer is the PAL's CloseBatch output (e.g. the resealed state).
	Trailer []byte
	// Completed is len(Replies): how many requests executed before the
	// session finished or aborted.
	Completed int
}

// batchRun threads the decoded request group through the pipeline and
// collects what the request loop produced, surviving even when the session
// itself aborts (the completed-prefix contract).
type batchRun struct {
	bp      pal.BatchPAL
	replies []pal.BatchReply
	trailer []byte
}

// RunSessionBatch executes the request group in one classic session. The
// returned BatchResult is non-nil even on session abort, reporting the
// completed prefix; the error mirrors RunSession's (infrastructure
// failures only — request-level failures land in the replies, and
// batch-level PAL failures in Session.PALError).
func (p *Platform) RunSessionBatch(pl pal.PAL, batch Batch, opts SessionOptions) (*BatchResult, error) {
	if len(batch.Requests) == 0 {
		return nil, errors.New("core: empty batch")
	}
	framed, err := encodeBatchInput(batch.Header, batch.Requests)
	if err != nil {
		return nil, err
	}
	br := &batchRun{bp: pal.AsBatch(pl)}
	opts.Input = framed
	opts.batch = br
	res, err := p.runPipeline(&classicBatchPipeline, pl, opts)
	out := &BatchResult{Session: res, Replies: br.replies, Trailer: br.trailer, Completed: len(br.replies)}
	return out, err
}

// classicBatchPipeline is the classic Figure 2 timeline with the request
// loop in place of the single PAL call. Every other phase — and therefore
// the launch measurement chain and the teardown matrix — is shared with
// RunSession.
var classicBatchPipeline = sessionPipeline{
	name: "classic-batch",
	phases: []phaseSpec{
		{name: "accept", body: acceptBody},
		{name: "init-slb", body: initSLBBody, teardown: zeroWindowTeardown},
		{name: "suspend-os", body: suspendOSBody, teardown: resumeOSTeardown},
		{name: "skinit", body: skinitBody, teardown: launchTeardown},
		{name: "pal-exec", body: palExecBatchBody},
		{name: "cleanup", body: cleanupBody},
		{name: "extend-pcr", body: extendPCRBody},
		{name: "resume-os", body: resumeOSBody},
	},
}

// palExecBatchBody is the batch variant of palExecBody: same environment
// setup, then OpenBatch, the request loop, CloseBatch, and the framed
// output write. Request-level errors go into the replies; OpenBatch /
// CloseBatch / timeout failures become the session's PALError; only
// injected faults and memory faults abort the session.
func palExecBatchBody(st *sessionState) error {
	framed, err := setupPALEnv(st)
	if err != nil {
		return err
	}
	env := st.env
	br := st.opts.batch
	header, reqs, err := decodeBatchInput(framed)
	if err != nil {
		// The input page no longer holds a well-formed frame: abort.
		env.ExitSandbox()
		return err
	}
	bctx, oerr := br.bp.OpenBatch(env, header, len(reqs))
	if oerr != nil {
		st.palErr = fmt.Errorf("core: batch open: %w", oerr)
	} else {
		for i, req := range reqs {
			// The injector sees each request boundary, so tests can kill
			// the session mid-batch and exercise the prefix contract.
			if st.opts.Injector != nil {
				if ierr := st.opts.Injector(fmt.Sprintf("request[%d]", i)); ierr != nil {
					env.ExitSandbox()
					return ierr
				}
			}
			// Each request starts with a clean output register, as a
			// singleton session's fresh Env would: the fallback below must
			// never hand one request a reply staged by an earlier one.
			env.ResetOutput()
			out, rerr := st.runBatchRequest(bctx, i, req)
			if rerr == nil && out == nil {
				out = env.Output()
			}
			br.replies = append(br.replies, pal.BatchReply{Output: out, Err: rerr})
			if env.TimedOut() {
				// The SLB Core's session timer fired: stop executing, as
				// a singleton would. Completed requests keep their
				// replies; the interrupted one reports the timeout.
				if rerr == nil {
					br.replies[i].Err = pal.ErrPALTimeout
					br.replies[i].Output = nil
				}
				st.palErr = pal.ErrPALTimeout
				break
			}
		}
		if st.palErr == nil {
			br.trailer, err = br.bp.CloseBatch(env, bctx)
			if err != nil {
				st.palErr = fmt.Errorf("core: batch close: %w", err)
			}
		}
	}
	env.ExitSandbox()
	if st.palErr == nil {
		st.palOut, err = encodeBatchOutput(br.replies, br.trailer)
		if err != nil {
			st.palErr = err
		} else if err := st.writeOutputPage(st.palOut); err != nil {
			return err
		}
	}
	if v, err := env.PCR17(); err == nil {
		st.res.PCR17AtLaunch = v
	}
	return nil
}

// runBatchRequest executes one request as an observer-visible span. Charges
// the PAL incurs during the request attribute to the "request" phase, and
// the span lands in the session timeline, so a trace of a batched session
// shows N request spans inside pal-exec. Request errors are reply-level,
// not session aborts, so PhaseEnd sees nil.
func (st *sessionState) runBatchRequest(bctx any, i int, req []byte) ([]byte, error) {
	start := st.p.Clock.Now()
	st.setPhase(phaseRequest)
	for _, o := range st.obs {
		o.PhaseStart(st.res.SessionID, phaseRequest, start)
	}
	out, err := st.opts.batch.bp.RunRequest(st.env, bctx, i, req)
	end := st.p.Clock.Now()
	st.res.Phases = append(st.res.Phases, Phase{Name: phaseRequest, Start: start, Duration: end - start})
	for _, o := range st.obs {
		o.PhaseEnd(st.res.SessionID, phaseRequest, end, nil)
	}
	st.setPhase("pal-exec")
	return out, err
}

// --- Wire framing -----------------------------------------------------------

// batchInputOverhead is the fixed frame cost: header length + count words.
const batchInputOverhead = 8

// BatchInputFits reports whether a header plus requests of the given sizes
// fit the input page once framed. The pool's coalescer uses it to bound
// group growth before paying for a session.
func BatchInputFits(headerLen int, reqLens ...int) bool {
	total := batchInputOverhead + headerLen
	for _, n := range reqLens {
		total += 4 + n
	}
	return total <= slb.PageSize-4
}

func encodeBatchInput(header []byte, reqs [][]byte) ([]byte, error) {
	total := batchInputOverhead + len(header)
	for _, r := range reqs {
		total += 4 + len(r)
	}
	if total > slb.PageSize-4 {
		return nil, fmt.Errorf("%w: %d requests frame to %d bytes", ErrBatchTooLarge, len(reqs), total)
	}
	out := make([]byte, 0, total)
	out = binary.BigEndian.AppendUint32(out, uint32(len(header)))
	out = append(out, header...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(reqs)))
	for _, r := range reqs {
		out = binary.BigEndian.AppendUint32(out, uint32(len(r)))
		out = append(out, r...)
	}
	return out, nil
}

func decodeBatchInput(b []byte) (header []byte, reqs [][]byte, err error) {
	take := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, errors.New("core: truncated batch input frame")
		}
		n := binary.BigEndian.Uint32(b)
		if int(n) > len(b)-4 {
			return nil, errors.New("core: batch input field overflow")
		}
		f := b[4 : 4+n]
		b = b[4+n:]
		return f, nil
	}
	if header, err = take(); err != nil {
		return nil, nil, err
	}
	if len(b) < 4 {
		return nil, nil, errors.New("core: truncated batch input count")
	}
	count := binary.BigEndian.Uint32(b)
	b = b[4:]
	// The count word is untrusted: cap the preallocation by what the
	// remaining bytes could possibly frame (>= 4 bytes per request), so a
	// forged count cannot force a huge allocation before the per-entry
	// truncation checks reject the frame.
	reqs = make([][]byte, 0, min(int(count), len(b)/4))
	for i := uint32(0); i < count; i++ {
		r, err := take()
		if err != nil {
			return nil, nil, err
		}
		reqs = append(reqs, r)
	}
	if len(b) != 0 {
		return nil, nil, errors.New("core: trailing bytes after batch input frame")
	}
	return header, reqs, nil
}

// Reply status bytes in the output frame.
const (
	batchReplyOK  byte = 0
	batchReplyErr byte = 1
)

// encodeBatchOutput frames the replies and trailer for the output page. A
// successful reply whose payload would overflow the shared page is
// downgraded in place to a reply-level error — the other replies and,
// critically, the trailer (carried state) still make it out. Only a frame
// that cannot fit even its error strings fails the batch.
func encodeBatchOutput(replies []pal.BatchReply, trailer []byte) ([]byte, error) {
	const capacity = slb.PageSize - 4
	size := func() int {
		total := 4 + 4 + len(trailer)
		for _, r := range replies {
			total += 5
			if r.Err != nil {
				total += len(r.Err.Error())
			} else {
				total += len(r.Output)
			}
		}
		return total
	}
	if size() > capacity {
		// Downgrade the largest successful replies until the frame fits.
		for size() > capacity {
			worst, worstLen := -1, 0
			for i, r := range replies {
				if r.Err == nil && len(r.Output) > worstLen {
					worst, worstLen = i, len(r.Output)
				}
			}
			if worst < 0 {
				return nil, fmt.Errorf("core: batch output frame of %d bytes exceeds the 4 KB output page", size())
			}
			replies[worst] = pal.BatchReply{Err: fmt.Errorf("core: reply of %d bytes overflows the shared output page", worstLen)}
		}
	}
	out := make([]byte, 0, size())
	out = binary.BigEndian.AppendUint32(out, uint32(len(replies)))
	for _, r := range replies {
		payload := r.Output
		status := batchReplyOK
		if r.Err != nil {
			status = batchReplyErr
			payload = []byte(r.Err.Error())
		}
		out = append(out, status)
		out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(trailer)))
	out = append(out, trailer...)
	return out, nil
}

// DecodeBatchOutput parses a batched session's Outputs frame back into
// per-request replies and the trailer — the verifier-side complement of the
// framing the attestation's output digest covers.
func DecodeBatchOutput(b []byte) ([]pal.BatchReply, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errors.New("core: truncated batch output frame")
	}
	count := binary.BigEndian.Uint32(b)
	b = b[4:]
	// Verifier-side parse of untrusted bytes: cap the preallocation by what
	// the remaining bytes could possibly frame (>= 5 bytes per reply), so a
	// forged count cannot force a huge allocation.
	replies := make([]pal.BatchReply, 0, min(int(count), len(b)/5))
	for i := uint32(0); i < count; i++ {
		if len(b) < 5 {
			return nil, nil, errors.New("core: truncated batch reply")
		}
		status := b[0]
		n := binary.BigEndian.Uint32(b[1:])
		if int(n) > len(b)-5 {
			return nil, nil, errors.New("core: batch reply overflow")
		}
		payload := append([]byte(nil), b[5:5+n]...)
		b = b[5+n:]
		switch status {
		case batchReplyOK:
			replies = append(replies, pal.BatchReply{Output: payload})
		case batchReplyErr:
			replies = append(replies, pal.BatchReply{Err: errors.New(string(payload))})
		default:
			return nil, nil, fmt.Errorf("core: unknown batch reply status %d", status)
		}
	}
	if len(b) < 4 {
		return nil, nil, errors.New("core: truncated batch trailer")
	}
	n := binary.BigEndian.Uint32(b)
	if int(n) != len(b)-4 {
		return nil, nil, errors.New("core: batch trailer length mismatch")
	}
	return replies, append([]byte(nil), b[4:4+n]...), nil
}
