package core

import (
	"time"

	"flicker/internal/pal"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// SessionOptions configures one Flicker session.
type SessionOptions struct {
	// Input is delivered to the PAL via the well-known input page (max
	// one 4 KB page minus the length prefix).
	Input []byte
	// Nonce, if non-nil, is the remote verifier's freshness nonce; the SLB
	// Core extends it into PCR 17 along with the input/output measurements.
	Nonce *tpm.Digest
	// Sandbox links the OS Protection module: the PAL runs in ring 3 and
	// cannot touch memory outside its own region.
	Sandbox bool
	// HeapSize links the Memory Management module with a heap of this size.
	HeapSize int
	// TwoStage uses the Section 7.2 optimized SLB: SKINIT measures only a
	// 4736-byte stub, which then hashes the full SLB on the main CPU.
	TwoStage bool
	// MaxPALTime arms the SLB Core's execution timer (Section 5.1.2):
	// PAL operations fail with pal.ErrPALTimeout once the budget is spent,
	// and the session reports the timeout as the PAL's error. Zero
	// disables the timer.
	MaxPALTime time.Duration

	// FailPhase, if non-empty, injects ErrFaultInjected at the start of the
	// named phase — the test hook for exercising every teardown path of the
	// pipeline (the resume bugs the paper's §7.5 experiment exists to catch).
	FailPhase string
	// Injector, if non-nil, is called with each phase name before the phase
	// body runs; a non-nil return aborts the session with that error.
	Injector func(phase string) error

	// TraceID, if non-empty, is the distributed-trace ID (16 hex digits)
	// this session runs under. The pipeline pins it on the platform's trace
	// tag for the session's duration, so deep layers (TPM dispatch) attach
	// it as the exemplar on their latency histograms, and the metrics
	// bridge links phase histograms and abort events to it.
	TraceID string
	// Observer, if non-nil, observes this session only, in addition to the
	// platform-registered observers (trace.SessionObserver uses this to
	// grow a span tree under a caller-owned parent span).
	Observer Observer

	// image, when set (by the registry path), reuses a prebuilt image.
	image *slb.Image
	// batch, when set (by RunSessionBatch), carries the decoded request
	// group and collects per-request replies; the classic-batch pipeline's
	// pal-exec body drives the request loop from it.
	batch *batchRun
}

// Phase is one step of the Figure 2 timeline with its simulated cost.
type Phase struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
}

// SessionResult describes a completed Flicker session.
type SessionResult struct {
	// SessionID is the platform-unique id assigned to this session.
	SessionID uint64
	// Pipeline names the phase engine that ran it: "classic" or
	// "partitioned".
	Pipeline string

	// Outputs is what the PAL wrote to the output page (nil on PAL error).
	Outputs []byte
	// PALError is the application-level failure, if any. The session
	// itself (cleanup, extend, resume) still completes.
	PALError error

	// Image is the launched SLB (patched).
	Image *slb.Image
	// SLBBase is where the flicker-module placed the SLB.
	SLBBase uint32
	// Measurement is H(P): the SKINIT-measured bytes' hash.
	Measurement tpm.Digest
	// PCR17AtLaunch is PCR 17 right after SKINIT (and, for two-stage
	// images, after the stub's window extend).
	PCR17AtLaunch tpm.Digest
	// PCR17Final is PCR 17 after the SLB Core's closing extends.
	PCR17Final tpm.Digest
	// InputDigest and OutputDigest are the parameter measurements the SLB
	// Core extended into PCR 17.
	InputDigest  tpm.Digest
	OutputDigest tpm.Digest
	// Nonce echoes the options nonce (nil if none).
	Nonce *tpm.Digest

	// Start and End are simulated timestamps; Phases is the timeline.
	Start, End time.Duration
	Phases     []Phase
}

// Duration returns the session's total simulated time.
func (r *SessionResult) Duration() time.Duration { return r.End - r.Start }

// PhaseDuration returns the summed duration of the named phase.
func (r *SessionResult) PhaseDuration(name string) time.Duration {
	var d time.Duration
	for _, ph := range r.Phases {
		if ph.Name == name {
			d += ph.Duration
		}
	}
	return d
}

// RunSession executes one complete Flicker session for the PAL: the paper's
// Figure 2 timeline, expressed as the classic phase list over the shared
// pipeline engine (see pipeline.go). An error return means the
// infrastructure failed (bad SLB, SKINIT precondition, TPM failure) and the
// engine's guaranteed teardown ran; PAL-level failures land in
// SessionResult.PALError with the session still torn down cleanly.
func (p *Platform) RunSession(pl pal.PAL, opts SessionOptions) (*SessionResult, error) {
	return p.runPipeline(&classicPipeline, pl, opts)
}
