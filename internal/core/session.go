package core

import (
	"fmt"
	"time"

	"flicker/internal/flickermod"
	"flicker/internal/hw/cpu"
	"flicker/internal/hw/tis"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// SessionOptions configures one Flicker session.
type SessionOptions struct {
	// Input is delivered to the PAL via the well-known input page (max
	// one 4 KB page minus the length prefix).
	Input []byte
	// Nonce, if non-nil, is the remote verifier's freshness nonce; the SLB
	// Core extends it into PCR 17 along with the input/output measurements.
	Nonce *tpm.Digest
	// Sandbox links the OS Protection module: the PAL runs in ring 3 and
	// cannot touch memory outside its own region.
	Sandbox bool
	// HeapSize links the Memory Management module with a heap of this size.
	HeapSize int
	// TwoStage uses the Section 7.2 optimized SLB: SKINIT measures only a
	// 4736-byte stub, which then hashes the full SLB on the main CPU.
	TwoStage bool
	// MaxPALTime arms the SLB Core's execution timer (Section 5.1.2):
	// PAL operations fail with pal.ErrPALTimeout once the budget is spent,
	// and the session reports the timeout as the PAL's error. Zero
	// disables the timer.
	MaxPALTime time.Duration
	// image, when set (by the registry path), reuses a prebuilt image.
	image *slb.Image
}

// Phase is one step of the Figure 2 timeline with its simulated cost.
type Phase struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
}

// SessionResult describes a completed Flicker session.
type SessionResult struct {
	// Outputs is what the PAL wrote to the output page (nil on PAL error).
	Outputs []byte
	// PALError is the application-level failure, if any. The session
	// itself (cleanup, extend, resume) still completes.
	PALError error

	// Image is the launched SLB (patched).
	Image *slb.Image
	// SLBBase is where the flicker-module placed the SLB.
	SLBBase uint32
	// Measurement is H(P): the SKINIT-measured bytes' hash.
	Measurement tpm.Digest
	// PCR17AtLaunch is PCR 17 right after SKINIT (and, for two-stage
	// images, after the stub's window extend).
	PCR17AtLaunch tpm.Digest
	// PCR17Final is PCR 17 after the SLB Core's closing extends.
	PCR17Final tpm.Digest
	// InputDigest and OutputDigest are the parameter measurements the SLB
	// Core extended into PCR 17.
	InputDigest  tpm.Digest
	OutputDigest tpm.Digest
	// Nonce echoes the options nonce (nil if none).
	Nonce *tpm.Digest

	// Start and End are simulated timestamps; Phases is the timeline.
	Start, End time.Duration
	Phases     []Phase
}

// Duration returns the session's total simulated time.
func (r *SessionResult) Duration() time.Duration { return r.End - r.Start }

// PhaseDuration returns the summed duration of the named phase.
func (r *SessionResult) PhaseDuration(name string) time.Duration {
	var d time.Duration
	for _, ph := range r.Phases {
		if ph.Name == name {
			d += ph.Duration
		}
	}
	return d
}

// RunSession executes one complete Flicker session for the PAL.
// An error return means the infrastructure failed (bad SLB, SKINIT
// precondition, TPM failure); PAL-level failures land in
// SessionResult.PALError with the session still torn down cleanly.
func (p *Platform) RunSession(pl pal.PAL, opts SessionOptions) (*SessionResult, error) {
	p.sessionMu.Lock()
	defer p.sessionMu.Unlock()
	res := &SessionResult{Start: p.Clock.Now(), Nonce: opts.Nonce}
	phase := func(name string, f func() error) error {
		st := p.Clock.Now()
		err := f()
		res.Phases = append(res.Phases, Phase{Name: name, Start: st, Duration: p.Clock.Now() - st})
		return err
	}

	// --- Accept uninitialized SLB and inputs ---------------------------
	var im *slb.Image
	var slbBase uint32
	if err := phase("accept", func() error {
		var err error
		im = opts.image
		if im == nil {
			im, err = BuildImage(pl, opts.TwoStage)
			if err != nil {
				return err
			}
		}
		slbBase, err = p.Mod.AllocateSLB()
		return err
	}); err != nil {
		return nil, err
	}
	res.Image = im
	res.SLBBase = slbBase

	// --- Initialize the SLB (patch GDT/TSS, place image and inputs) ----
	if err := phase("init-slb", func() error {
		return p.Mod.PlaceSLB(im, slbBase, opts.Input)
	}); err != nil {
		return nil, err
	}

	// --- Suspend OS (hotplug APs, INIT IPIs, save kernel state) --------
	var saved *flickerSaved
	if err := phase("suspend-os", func() error {
		st, err := p.Mod.SuspendOS(slbBase)
		if err != nil {
			return err
		}
		saved = &flickerSaved{st: st}
		return nil
	}); err != nil {
		return nil, err
	}

	// --- SKINIT ---------------------------------------------------------
	var launch launchState
	if err := phase("skinit", func() error {
		ll, err := p.Machine.SKINIT(0, slbBase)
		if err != nil {
			return err
		}
		launch.ll = ll
		return nil
	}); err != nil {
		// The OS was suspended; restore it before reporting failure.
		p.Mod.ResumeOS(saved.st)
		return nil, err
	}
	res.Measurement = launch.ll.Measurement

	// --- SLB Core init + PAL execution ----------------------------------
	var env *pal.Env
	var palOut []byte
	var palErr error
	if err := phase("pal-exec", func() error {
		// The SLB Core's TPM driver takes over the TPM at locality 2.
		p.mu.Lock()
		p.seq++
		seed := fmt.Sprintf("pal-tpm-%d", p.seq)
		p.mu.Unlock()
		palTPM := tpm.NewClient(p.Bus, tis.Locality2, []byte(seed))

		// Two-stage measurement: the stub hashes the full window on the
		// main CPU and extends it into PCR 17 before the PAL runs.
		if im.TwoStage() {
			p.Clock.Advance(p.Profile.CPUHashCost(slb.MaxLen), "cpu.hash")
			if _, err := palTPM.Extend(17, im.WindowMeasurement()); err != nil {
				return fmt.Errorf("core: stage-2 extend: %w", err)
			}
		}
		// Additional PAL code above the 64 KB window: the preparatory code
		// adds it to the DEV and extends its measurement into PCR 17 before
		// any of it runs (Section 2.4).
		if im.HasExtra() {
			if err := launch.ll.ExtendProtection(slbBase+uint32(slb.ExtraCodeOffset), len(im.Extra())); err != nil {
				return fmt.Errorf("core: extending DEV over extra PAL code: %w", err)
			}
			p.Clock.Advance(p.Profile.CPUHashCost(len(im.Extra())), "cpu.hash")
			if _, err := palTPM.Extend(17, im.ExtraMeasurement()); err != nil {
				return fmt.Errorf("core: extra-code extend: %w", err)
			}
		}
		identity := launch.ll.PCR17
		if im.TwoStage() {
			identity = im.ExpectedPCR17TwoStage()
		}
		if im.HasExtra() {
			identity = tpm.ExtendDigest(identity, im.ExtraMeasurement())
		}
		var err error
		env, err = pal.NewEnv(pal.EnvConfig{
			Clock:      p.Clock,
			Profile:    p.Profile,
			Mem:        p.Machine.Mem,
			Core:       p.Machine.BSP(),
			TPM:        palTPM,
			SLBBase:    slbBase,
			SLBLen:     im.Len(),
			Sandbox:    opts.Sandbox,
			HeapSize:   opts.HeapSize,
			Machine:    p.Machine,
			MaxPALTime: opts.MaxPALTime,
			Identity:   identity,
			ExtraLen:   len(im.Extra()),
		})
		if err != nil {
			return err
		}
		// Read inputs back from the input page — the PAL sees what is in
		// memory, not what the application intended to write.
		input, err := p.Mod.ReadInputs(slbBase)
		if err != nil {
			return err
		}
		palOut, palErr = pl.Run(env, input)
		if palErr == nil && env.TimedOut() {
			// The SLB Core's timer fired during execution.
			palErr = pal.ErrPALTimeout
		}
		if palErr == nil && palOut == nil {
			palOut = env.Output()
		}
		env.ExitSandbox()
		// Outputs are written to the well-known page beyond the SLB.
		if palErr == nil {
			if len(palOut) > slb.PageSize-4 {
				palErr = fmt.Errorf("core: PAL output of %d bytes exceeds the 4 KB output page", len(palOut))
			} else {
				page := make([]byte, 4+len(palOut))
				page[0] = byte(len(palOut) >> 24)
				page[1] = byte(len(palOut) >> 16)
				page[2] = byte(len(palOut) >> 8)
				page[3] = byte(len(palOut))
				copy(page[4:], palOut)
				if err := p.Machine.Mem.Write(env.OutputAddr(), page); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		launch.ll.End()
		p.Mod.ResumeOS(saved.st)
		return nil, err
	}
	if v, err := env.PCR17(); err == nil {
		res.PCR17AtLaunch = v
	}

	// --- Cleanup: erase all PAL secrets from the SLB window -------------
	if err := phase("cleanup", func() error {
		if env.Heap != nil {
			env.Heap.Wipe()
		}
		wipe := slb.MaxLen
		if int(slbBase)+wipe > p.Machine.Mem.Size() {
			wipe = p.Machine.Mem.Size() - int(slbBase)
		}
		if err := p.Machine.Mem.Zero(slbBase, wipe); err != nil {
			return err
		}
		if im.HasExtra() {
			if err := p.Machine.Mem.Zero(slbBase+uint32(slb.ExtraCodeOffset), len(im.Extra())); err != nil {
				return err
			}
			// The preparatory code's DEV extension is cleared here; End()
			// only covers the primary 64 KB window.
			if err := p.Machine.Mem.DEVClear(slbBase+uint32(slb.ExtraCodeOffset), len(im.Extra())); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		launch.ll.End()
		p.Mod.ResumeOS(saved.st)
		return nil, err
	}

	// --- Extend PCR 17: inputs, outputs, nonce, terminator --------------
	if err := phase("extend-pcr", func() error {
		palTPM := tpm.NewClient(p.Bus, tis.Locality2, []byte("slbcore-extend"))
		res.InputDigest = palcrypto.SHA1Sum(opts.Input)
		if _, err := palTPM.Extend(17, res.InputDigest); err != nil {
			return err
		}
		res.OutputDigest = palcrypto.SHA1Sum(palOut)
		if _, err := palTPM.Extend(17, res.OutputDigest); err != nil {
			return err
		}
		if opts.Nonce != nil {
			if _, err := palTPM.Extend(17, *opts.Nonce); err != nil {
				return err
			}
		}
		if _, err := palTPM.Extend(17, slb.SessionTerminator); err != nil {
			return err
		}
		v, err := palTPM.PCRRead(17)
		if err != nil {
			return err
		}
		res.PCR17Final = v
		return nil
	}); err != nil {
		launch.ll.End()
		p.Mod.ResumeOS(saved.st)
		return nil, err
	}

	// --- Resume OS -------------------------------------------------------
	if err := phase("resume-os", func() error {
		p.Mod.RestoreKernelContext(p.Machine.BSP(), saved.st)
		if err := launch.ll.End(); err != nil {
			return err
		}
		return p.Mod.ResumeOS(saved.st)
	}); err != nil {
		return nil, err
	}

	// --- Return outputs through the sysfs entry --------------------------
	if palErr == nil {
		res.Outputs = palOut
		p.Mod.PublishOutputs(palOut)
	}
	res.PALError = palErr
	res.End = p.Clock.Now()
	return res, nil
}

// flickerSaved and launchState are small holders so the phase closures can
// populate state declared before them.
type flickerSaved struct{ st *flickermod.SavedState }

type launchState struct{ ll *cpu.LateLaunch }
