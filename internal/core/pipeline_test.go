package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flicker/internal/attest"
	"flicker/internal/flickermod"
	"flicker/internal/hw/cpu"
	"flicker/internal/pal"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// checkPlatformHealthy asserts the invariants the guaranteed-teardown sweep
// must restore on every exit path: interrupts, paging, ring, the
// secure-session flags, the DEV, and the APs.
func checkPlatformHealthy(t *testing.T, p *Platform, where string) {
	t.Helper()
	bsp := p.Machine.BSP()
	if !bsp.InterruptsEnabled() {
		t.Errorf("%s: interrupts disabled", where)
	}
	if !bsp.PagingEnabled() {
		t.Errorf("%s: paging off", where)
	}
	if bsp.Ring() != 0 {
		t.Errorf("%s: BSP in ring %d", where, bsp.Ring())
	}
	if p.Machine.SecureSessionActive() {
		t.Errorf("%s: secure session still active", where)
	}
	if p.Machine.DebugDisabled() {
		t.Errorf("%s: debug access still disabled", where)
	}
	for _, c := range p.Machine.Cores()[1:] {
		if c.State() != cpu.CoreRunning {
			t.Errorf("%s: AP %d state = %v", where, c.ID, c.State())
		}
	}
	if p.Kernel.OnlineCoreCount() != len(p.Machine.Cores()) {
		t.Errorf("%s: cores offline", where)
	}
}

// phaseIndex maps a pipeline's phase names to their position, so the fault
// matrix can reason about which phases completed before the injected fault.
func phaseIndex(names []string, phase string) int {
	for i, n := range names {
		if n == phase {
			return i
		}
	}
	return -1
}

// faultMatrix injects ErrFaultInjected at every phase of a pipeline and
// checks the teardown invariants after each abort. run starts one session
// on a fresh platform; names is the pipeline's phase order.
func faultMatrix(t *testing.T, names []string, mkPlatform func(t *testing.T) *Platform,
	run func(p *Platform, opts SessionOptions) (*SessionResult, error)) {
	launchIdx := phaseIndex(names, "skinit")
	if launchIdx < 0 {
		launchIdx = phaseIndex(names, "skinit-partitioned")
	}
	initIdx := phaseIndex(names, "init-slb")
	extendIdx := phaseIndex(names, "extend-pcr")

	for _, phase := range names {
		t.Run(phase, func(t *testing.T) {
			p := mkPlatform(t)
			base, err := p.Mod.AllocateSLB()
			if err != nil {
				t.Fatal(err)
			}
			vimg, err := BuildImage(helloPAL(), false)
			if err != nil {
				t.Fatal(err)
			}
			vimg.Patch(base)
			pcrBefore := p.TPM.PCRValue(17)

			res, err := run(p, SessionOptions{FailPhase: phase})
			if !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("err = %v, want ErrFaultInjected", err)
			}
			if res != nil {
				t.Fatal("aborted session returned a result")
			}
			checkPlatformHealthy(t, p, "after fault at "+phase)

			idx := phaseIndex(names, phase)
			// Faults inject before the phase body, so the SLB was placed iff
			// the fault landed after init-slb. The window proper must then be
			// zeroed — by cleanup on late faults, by the abort teardown
			// otherwise.
			if idx > initIdx {
				win, err := p.Machine.Mem.Read(base, slb.MaxLen)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(win, make([]byte, slb.MaxLen)) {
					t.Error("SLB window not zeroed after abort")
				}
			}
			// PCR 17 state: untouched before the launch; capped with the
			// session terminator when the fault hit between the launch and the
			// closing extends; the full chain when only the resume was lost.
			pcr := p.TPM.PCRValue(17)
			switch {
			case idx <= launchIdx:
				if pcr != pcrBefore {
					t.Errorf("PCR 17 changed by pre-launch abort: %x", pcr)
				}
			case idx <= extendIdx:
				want := tpm.ExtendDigest(vimg.ExpectedPCR17(), slb.SessionTerminator)
				if pcr != want {
					t.Errorf("PCR 17 not capped after abort: %x, want %x", pcr, want)
				}
			default:
				want := attest.ExpectedFinalPCR17(vimg, nil, []byte("Hello, world"), nil)
				if pcr != want {
					t.Errorf("PCR 17 = %x after post-extend abort, want final chain %x", pcr, want)
				}
			}

			// The platform must be fully usable afterwards, with the PCR
			// algebra intact (SKINIT resets PCR 17, so a capped value cannot
			// leak into the next session).
			nonce := sha1Of("post-fault")
			res2, err := run(p, SessionOptions{Input: []byte("in"), Nonce: &nonce})
			if err != nil || res2.PALError != nil {
				t.Fatalf("follow-up session: %v %v", err, res2.PALError)
			}
			want := attest.ExpectedFinalPCR17(res2.Image, []byte("in"), res2.Outputs, &nonce)
			if res2.PCR17Final != want {
				t.Error("follow-up session PCR-17 chain mismatch")
			}
		})
	}
}

func TestFaultMatrixClassic(t *testing.T) {
	names := []string{"accept", "init-slb", "suspend-os", "skinit", "pal-exec", "cleanup", "extend-pcr", "resume-os"}
	faultMatrix(t, names, newPlatform, func(p *Platform, opts SessionOptions) (*SessionResult, error) {
		return p.RunSession(helloPAL(), opts)
	})
}

func TestFaultMatrixPartitioned(t *testing.T) {
	names := []string{"accept", "init-slb", "save-context", "skinit-partitioned", "pal-exec", "cleanup", "extend-pcr", "resume-core"}
	faultMatrix(t, names, futurePlatform, func(p *Platform, opts SessionOptions) (*SessionResult, error) {
		return p.RunSessionConcurrent(helloPAL(), opts)
	})
}

func TestInjectorHook(t *testing.T) {
	p := newPlatform(t)
	// A nil-returning injector sees every phase, in timeline order.
	var seen []string
	res, err := p.RunSession(helloPAL(), SessionOptions{
		Injector: func(phase string) error {
			seen = append(seen, phase)
			return nil
		},
	})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	want := []string{"accept", "init-slb", "suspend-os", "skinit", "pal-exec", "cleanup", "extend-pcr", "resume-os"}
	if len(seen) != len(want) {
		t.Fatalf("injector saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("injector order %v, want %v", seen, want)
		}
	}

	// A failing injector aborts the session with its error.
	boom := errors.New("injected boom")
	_, err = p.RunSession(helloPAL(), SessionOptions{
		Injector: func(phase string) error {
			if phase == "pal-exec" {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	checkPlatformHealthy(t, p, "after injector abort")
}

func TestImageCacheAcrossSessions(t *testing.T) {
	p := newPlatform(t)
	for i := 0; i < 5; i++ {
		res, err := p.RunSession(helloPAL(), SessionOptions{})
		if err != nil || res.PALError != nil {
			t.Fatalf("session %d: %v %v", i, err, res.PALError)
		}
	}
	st := p.Stats()
	if st.ImageBuilds != 1 {
		t.Errorf("5 sessions linked %d images, want 1", st.ImageBuilds)
	}
	if st.ImageCacheHits != 4 {
		t.Errorf("cache hits = %d, want 4", st.ImageCacheHits)
	}
	// Link options are part of the key: a two-stage session needs its own
	// build, as does a different PAL.
	if _, err := p.RunSession(helloPAL(), SessionOptions{TwoStage: true}); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ImageBuilds; got != 2 {
		t.Errorf("two-stage session reused the classic image (builds = %d)", got)
	}
	other := &pal.Func{
		PALName: "other",
		Binary:  pal.DescriptorCode("other", "1.0", nil, nil),
		Fn:      func(env *pal.Env, in []byte) ([]byte, error) { return []byte("x"), nil },
	}
	if _, err := p.RunSession(other, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ImageBuilds; got != 3 {
		t.Errorf("distinct PAL did not get its own build (builds = %d)", got)
	}
	// The cached image is measurement-identical to a fresh link.
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildImage(helloPAL(), false)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Patch(res.SLBBase)
	if res.PCR17AtLaunch != fresh.ExpectedPCR17() {
		t.Error("cached image measurement differs from a fresh link")
	}
}

func TestRegistryPathNeverRelinks(t *testing.T) {
	p := newPlatform(t)
	im, err := p.RegisterPAL(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := p.Kernel
	// Launch through sysfs twice; the second staging presents the image's
	// post-patch bytes, which must still resolve to the registration.
	for i := 0; i < 2; i++ {
		if err := k.SysfsWrite(flickermod.SysfsSLB, im.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := k.SysfsWrite(flickermod.SysfsControl, []byte{1}); err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		out, err := k.SysfsRead(flickermod.SysfsOutputs)
		if err != nil || string(out) != "Hello, world" {
			t.Fatalf("launch %d outputs = %q, %v", i, out, err)
		}
	}
	if got := p.Stats().ImageBuilds; got != 1 {
		t.Errorf("registry path linked %d images across 2 launches, want 1", got)
	}
}

func TestSessionStatsAggregation(t *testing.T) {
	p := newPlatform(t)
	var ids []uint64
	for i := 0; i < 3; i++ {
		res, err := p.RunSession(helloPAL(), SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.SessionID)
	}
	if _, err := p.RunSession(helloPAL(), SessionOptions{FailPhase: "skinit"}); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("err = %v", err)
	}
	st := p.Stats()
	if st.Sessions != 3 || st.Aborted != 1 {
		t.Fatalf("sessions = %d, aborted = %d", st.Sessions, st.Aborted)
	}
	if st.P50 <= 0 || st.Max < st.P50 || st.Total < st.Max {
		t.Errorf("latency stats inconsistent: p50=%v max=%v total=%v", st.P50, st.Max, st.Total)
	}
	var phaseSum time.Duration
	for _, name := range []string{"accept", "init-slb", "suspend-os", "skinit", "pal-exec", "cleanup", "extend-pcr", "resume-os"} {
		if _, ok := st.PhaseTotal[name]; !ok {
			t.Errorf("PhaseTotal missing %q", name)
		}
		phaseSum += st.PhaseTotal[name]
	}
	// PhaseTotal includes the aborted session's partial phases (accept
	// through the failed skinit), so it exceeds the completed-sessions total
	// by exactly that partial time.
	if phaseSum <= st.Total {
		t.Errorf("phase totals sum to %v, want > completed-sessions total %v (aborted partials must count)", phaseSum, st.Total)
	}
	if got := st.AbortedByPhase["skinit"]; got != 1 {
		t.Errorf("AbortedByPhase[skinit] = %d, want 1 (have %v)", got, st.AbortedByPhase)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Errorf("session ids not monotonic: %v", ids)
		}
	}
	// Pipeline names are reported on the result.
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline != "classic" {
		t.Errorf("pipeline = %q", res.Pipeline)
	}
}

// orderObserver records the callback stream and checks charge attribution:
// every charge must name the phase that was open when it was incurred.
type orderObserver struct {
	mu      sync.Mutex
	events  []string
	open    string
	charges map[string]int // phase -> charge count
	badAttr int
}

func (o *orderObserver) SessionStart(m SessionMeta) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "session-start:"+m.Pipeline+":"+m.PAL)
}

func (o *orderObserver) PhaseStart(sid uint64, phase string, at time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "start:"+phase)
	o.open = phase
}

func (o *orderObserver) Charge(sid uint64, phase string, c simtime.Charge) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if phase != o.open {
		o.badAttr++
	}
	o.charges[phase]++
}

func (o *orderObserver) PhaseEnd(sid uint64, phase string, at time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "end:"+phase)
	o.open = ""
}

func (o *orderObserver) SessionEnd(sid uint64, at time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, "session-end")
}

func TestObserverCallbackOrderAndChargeAttribution(t *testing.T) {
	p := newPlatform(t)
	o := &orderObserver{charges: make(map[string]int)}
	p.AddObserver(o)
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	want := []string{"session-start:classic:hello"}
	for _, ph := range []string{"accept", "init-slb", "suspend-os", "skinit", "pal-exec", "cleanup", "extend-pcr", "resume-os"} {
		want = append(want, "start:"+ph, "end:"+ph)
	}
	want = append(want, "session-end")
	if len(o.events) != len(want) {
		t.Fatalf("events = %v", o.events)
	}
	for i := range want {
		if o.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, o.events[i], want[i])
		}
	}
	if o.badAttr != 0 {
		t.Errorf("%d charges attributed to a phase that was not open", o.badAttr)
	}
	// The expensive phases charged the clock under their own names.
	for _, ph := range []string{"skinit", "extend-pcr"} {
		if o.charges[ph] == 0 {
			t.Errorf("no charges attributed to %q", ph)
		}
	}
	// A removed observer sees nothing further.
	before := len(o.events)
	p.RemoveObserver(o)
	if _, err := p.RunSession(helloPAL(), SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(o.events) != before {
		t.Error("removed observer still receiving events")
	}
}

func TestObserverSeesAbortedSessions(t *testing.T) {
	p := newPlatform(t)
	o := &orderObserver{charges: make(map[string]int)}
	p.AddObserver(o)
	if _, err := p.RunSession(helloPAL(), SessionOptions{FailPhase: "skinit"}); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("err = %v", err)
	}
	if len(o.events) == 0 || o.events[len(o.events)-1] != "session-end" {
		t.Fatalf("aborted session did not close its observer stream: %v", o.events)
	}
	// The aborted phase still gets its end event.
	found := false
	for _, e := range o.events {
		if e == "end:skinit" {
			found = true
		}
	}
	if !found {
		t.Error("no PhaseEnd for the faulted phase")
	}
}

func TestOutputPageZeroedBetweenSessions(t *testing.T) {
	p := newPlatform(t)
	secret := &pal.Func{
		PALName: "secret-out",
		Binary:  pal.DescriptorCode("secret-out", "1.0", nil, nil),
		Fn: func(env *pal.Env, in []byte) ([]byte, error) {
			return []byte("SESSION-A-SECRET-OUTPUT"), nil
		},
	}
	resA, err := p.RunSession(secret, SessionOptions{})
	if err != nil || resA.PALError != nil {
		t.Fatalf("%v %v", err, resA.PALError)
	}
	// The output page genuinely holds session A's output after the session
	// (that is how the flicker-module hands it to the application)...
	outAddr := resA.SLBBase + uint32(slb.OutputsOffset)
	page, err := p.Machine.Mem.Read(outAddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(page, []byte("SESSION-A-SECRET-OUTPUT")) {
		t.Fatal("output page does not hold session A's output")
	}
	// ...so session B's PAL must not be able to read it: init-slb zeroes the
	// page before the next launch.
	var leaked []byte
	spy := &pal.Func{
		PALName: "output-spy",
		Binary:  pal.DescriptorCode("output-spy", "1.0", nil, nil),
		Fn: func(env *pal.Env, in []byte) ([]byte, error) {
			b, err := env.ReadMem(env.OutputAddr(), 64)
			leaked = b
			return []byte("ok"), err
		},
	}
	resB, err := p.RunSession(spy, SessionOptions{})
	if err != nil || resB.PALError != nil {
		t.Fatalf("%v %v", err, resB.PALError)
	}
	if !bytes.Equal(leaked, make([]byte, 64)) {
		t.Fatalf("session B read stale output page: %q", leaked)
	}
}

func TestMixedPipelineRace(t *testing.T) {
	// Classic and partitioned sessions racing from many goroutines must all
	// serialize on the platform's session lock (run under -race; the old
	// RunSessionConcurrent skipped the lock entirely).
	p := futurePlatform(t)
	const n = 6
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := p.RunSession(helloPAL(), SessionOptions{})
			if err == nil && res.PALError != nil {
				err = res.PALError
			}
			errs <- err
		}()
		go func() {
			res, err := p.RunSessionConcurrent(helloPAL(), SessionOptions{})
			if err == nil && res.PALError != nil {
				err = res.PALError
			}
			errs <- err
		}()
	}
	for i := 0; i < 2*n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("racing session failed: %v", err)
		}
	}
	st := p.Stats()
	if st.Sessions != 2*n || st.Aborted != 0 {
		t.Fatalf("sessions = %d, aborted = %d", st.Sessions, st.Aborted)
	}
	checkPlatformHealthy(t, p, "after mixed race")
}

func TestFaultDuringLargePALSession(t *testing.T) {
	// Faults after the preparatory code extended the DEV over extra PAL code
	// must clear that extension too.
	p := newPlatform(t)
	extra := bytes.Repeat([]byte{0xEE}, 3*slb.PageSize)
	lp := &largeTestPAL{
		Func: pal.Func{
			PALName: "big",
			Binary:  pal.DescriptorCode("big", "1.0", nil, nil),
			Fn:      func(env *pal.Env, in []byte) ([]byte, error) { return []byte("ok"), nil },
		},
		extra: extra,
	}
	_, err := p.RunSession(lp, SessionOptions{FailPhase: "cleanup"})
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("err = %v", err)
	}
	base, _ := p.Mod.AllocateSLB()
	if p.Machine.Mem.DEVProtected(base+uint32(slb.ExtraCodeOffset), len(extra)) {
		t.Error("DEV still covers extra PAL code after abort")
	}
	got, err := p.Machine.Mem.Read(base+uint32(slb.ExtraCodeOffset), len(extra))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(extra))) {
		t.Error("extra PAL code survived the abort")
	}
	checkPlatformHealthy(t, p, "after large-PAL abort")
	if res, err := p.RunSession(lp, SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("follow-up large session: %v %v", err, res.PALError)
	}
}

// largeTestPAL implements pal.LargePAL for the abort test.
type largeTestPAL struct {
	pal.Func
	extra []byte
}

func (l *largeTestPAL) ExtraCode() []byte { return l.extra }

func TestNoResumeDuplication(t *testing.T) {
	// The engine is the single place that resumes the OS: a session that
	// aborts at every later phase in sequence on one platform must leave it
	// healthy each time (double-resume would trip the flicker-module).
	p := newPlatform(t)
	for _, phase := range []string{"skinit", "pal-exec", "extend-pcr", "resume-os"} {
		if _, err := p.RunSession(helloPAL(), SessionOptions{FailPhase: phase}); !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("fault at %s: %v", phase, err)
		}
		checkPlatformHealthy(t, p, fmt.Sprintf("repeated abort at %s", phase))
	}
	if res, err := p.RunSession(helloPAL(), SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("platform dead after abort sequence: %v %v", err, res.PALError)
	}
}
