package core

// Security tests for the SKINIT measurement cache: the write-generation
// invalidation must guarantee the cache never masks tampering. A staged SLB
// corrupted through a CPU store or a DMA transaction after warm (cached)
// sessions must produce a different PCR 17 — attestation fails exactly as
// it would on the uncached path — and an undisturbed warm session must
// produce bit-identical measurements to the cold one.

import (
	"testing"

	"flicker/internal/metrics"
)

// counterValue sums a labeled counter family's series matching the given
// label value (any label position).
func counterValue(reg *metrics.Registry, family, labelValue string) float64 {
	var total float64
	for _, f := range reg.Snapshot().Families {
		if f.Name != family {
			continue
		}
		for _, s := range f.Series {
			for _, v := range s.Labels {
				if v == labelValue {
					total += s.Value
					break
				}
			}
		}
	}
	return total
}

// TestMeasureCacheHitBitIdentical runs the same PAL twice: the first launch
// misses the cache and streams the SLB, the second hits and uses the
// precomputed digest. Every attestation-visible value must match exactly.
func TestMeasureCacheHitBitIdentical(t *testing.T) {
	p := newPlatform(t)
	nonce := palcrypto20(t, "cache-nonce")
	opts := SessionOptions{Input: []byte("in"), Nonce: &nonce}

	cold, err := p.RunSession(helloPAL(), opts)
	if err != nil || cold.PALError != nil {
		t.Fatalf("cold session: %v %v", err, cold.PALError)
	}
	misses := counterValue(p.Metrics, "flicker_skinit_measure_cache_total", "miss")
	if misses == 0 {
		t.Fatal("cold launch did not record a measurement cache miss")
	}

	warm, err := p.RunSession(helloPAL(), opts)
	if err != nil || warm.PALError != nil {
		t.Fatalf("warm session: %v %v", err, warm.PALError)
	}
	hits := counterValue(p.Metrics, "flicker_skinit_measure_cache_total", "hit")
	if hits == 0 {
		t.Fatal("second launch of an unchanged image did not hit the measurement cache")
	}

	if warm.Measurement != cold.Measurement {
		t.Errorf("cached Measurement %x != streamed %x", warm.Measurement, cold.Measurement)
	}
	if warm.PCR17AtLaunch != cold.PCR17AtLaunch {
		t.Errorf("cached PCR17AtLaunch %x != streamed %x", warm.PCR17AtLaunch, cold.PCR17AtLaunch)
	}
	if warm.PCR17Final != cold.PCR17Final {
		t.Errorf("cached PCR17Final %x != streamed %x", warm.PCR17Final, cold.PCR17Final)
	}
	// And both match the verifier's independent computation.
	if want := cold.Image.ExpectedPCR17(); warm.PCR17AtLaunch != want {
		t.Errorf("PCR17AtLaunch %x != verifier's expected %x", warm.PCR17AtLaunch, want)
	}
}

func palcrypto20(t *testing.T, s string) [20]byte {
	t.Helper()
	var d [20]byte
	copy(d[:], s)
	return d
}

// tamperOffset is where the tamper tests flip bytes: inside the measured
// SLB (the stack space region), where a corruption cannot derail header
// parsing or PAL execution — only the measurement.
const tamperOffset = 2048

// runTamperedSession runs one session that corrupts the staged SLB between
// init-slb and SKINIT (the window where a malicious flicker-module or
// device would strike a warm image) using the given corrupt func.
func runTamperedSession(t *testing.T, p *Platform, corrupt func(base uint32) error) *SessionResult {
	t.Helper()
	res, err := p.RunSession(helloPAL(), SessionOptions{
		Injector: func(phase string) error {
			if phase != "skinit" {
				return nil
			}
			base, err := p.Mod.AllocateSLB()
			if err != nil {
				return err
			}
			return corrupt(base)
		},
	})
	if err != nil {
		t.Fatalf("tampered session aborted: %v", err)
	}
	return res
}

// TestTamperAfterWarmSessionChangesPCR17 corrupts the staged SLB via a
// direct CPU write and, separately, via DMA — both after warm sessions have
// populated the measurement cache — and asserts SKINIT measures the
// corruption (different PCR 17) instead of replaying the cached digest.
func TestTamperAfterWarmSessionChangesPCR17(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(p *Platform) func(base uint32) error
	}{
		{"cpu-write", func(p *Platform) func(base uint32) error {
			return func(base uint32) error {
				return p.Machine.Mem.Write(base+tamperOffset, []byte("rootkit"))
			}
		}},
		{"dma-write", func(p *Platform) func(base uint32) error {
			nic := p.Machine.Mem.AttachDevice("evil-nic")
			return func(base uint32) error {
				// SKINIT has not yet raised the DEV for this launch, so the
				// malicious device's store lands — and bumps the region's
				// write generation.
				return nic.Write(base+tamperOffset, []byte("rootkit"))
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := newPlatform(t)
			// Two clean sessions: the second one runs from the cache.
			clean, err := p.RunSession(helloPAL(), SessionOptions{})
			if err != nil || clean.PALError != nil {
				t.Fatalf("clean session: %v %v", err, clean.PALError)
			}
			if _, err := p.RunSession(helloPAL(), SessionOptions{}); err != nil {
				t.Fatal(err)
			}
			if counterValue(p.Metrics, "flicker_skinit_measure_cache_total", "hit") == 0 {
				t.Fatal("warm-up did not populate the measurement cache")
			}

			tampered := runTamperedSession(t, p, tc.corrupt(p))
			if tampered.Measurement == clean.Measurement {
				t.Error("tampered SLB produced the clean measurement — cache masked the corruption")
			}
			if tampered.PCR17AtLaunch == clean.PCR17AtLaunch {
				t.Error("tampered SLB produced the clean PCR 17 — attestation would succeed")
			}

			// The cleanup scrub restores the pristine image, so the next
			// clean session measures correctly again (and re-warms the cache).
			recovered, err := p.RunSession(helloPAL(), SessionOptions{})
			if err != nil || recovered.PALError != nil {
				t.Fatalf("recovery session: %v %v", err, recovered.PALError)
			}
			if recovered.PCR17AtLaunch != clean.PCR17AtLaunch {
				t.Errorf("post-tamper session PCR 17 %x, want clean %x",
					recovered.PCR17AtLaunch, clean.PCR17AtLaunch)
			}
		})
	}
}

// TestSessionAllocsRegression guards the allocation budget of the cached
// hot path: a warm classic session must stay within budget so the per-
// session garbage stays off the scale-out path.
func TestSessionAllocsRegression(t *testing.T) {
	p := newPlatform(t)
	hello := helloPAL()
	if _, err := p.RunSession(hello, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		res, err := p.RunSession(hello, SessionOptions{})
		if err != nil || res.PALError != nil {
			t.Fatalf("%v %v", err, res.PALError)
		}
	})
	// The seed ran ~167 allocs/op; measurement caching brought the warm
	// path under 160, TPM client scratch-buffer reuse to ~95, and the
	// per-platform session scratch (cached locality-2 drivers, reused Env
	// and session state, zero-alloc SHA-1/PRNG, right-sized response
	// frames) to ~19. Of those, 8 are the TPM response frames — which are
	// never pooled because callers retain subslices — plus the
	// caller-retained SessionResult and the PAL's own staged output.
	// Budget with headroom so incidental churn does not flake, while any
	// regression to per-session clients, env rebuilds, or frame growth
	// trips.
	const budget = 32
	if avg > budget {
		t.Errorf("warm session costs %.0f allocs, budget %d", avg, budget)
	}
}
