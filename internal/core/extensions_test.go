package core

// Tests for the next-generation hardware extensions (the paper's Section
// 5.1.2 timer restrictions and the [19] recommendations: multicore secure
// partitions and hardware-protected PAL context).

import (
	"errors"
	"testing"
	"time"

	"flicker/internal/attest"
	"flicker/internal/hw/cpu"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
)

func futurePlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(PlatformConfig{Seed: "future-test", Profile: simtime.ProfileFuture()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- Section 5.1.2: SLB Core execution timer -------------------------------

func TestPALTimerFiresOnRunawayPAL(t *testing.T) {
	p := newPlatform(t)
	runaway := &pal.Func{
		PALName: "runaway",
		Binary:  pal.DescriptorCode("runaway", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			for i := 0; i < 100; i++ {
				env.ChargeCPU(simtime.Charge{Duration: 100 * time.Millisecond, Label: "app.spin"})
				// A well-behaved PAL would notice the timer; this one
				// spins until an Env operation fails.
				if _, err := env.HashMem(env.SLBBase(), 16); err != nil {
					return nil, err
				}
			}
			return []byte("never"), nil
		},
	}
	res, err := p.RunSession(runaway, SessionOptions{MaxPALTime: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PALError, pal.ErrPALTimeout) {
		t.Fatalf("PALError = %v, want timeout", res.PALError)
	}
	// The session still tore down: OS resumed, protections cleared.
	if !p.Machine.BSP().InterruptsEnabled() || p.Machine.SecureSessionActive() {
		t.Fatal("teardown incomplete after timer kill")
	}
}

func TestPALTimerMarksSilentOverrun(t *testing.T) {
	// A PAL that overruns but never calls a checked Env op is caught at
	// exit (the SLB Core's final timer check).
	p := newPlatform(t)
	silent := &pal.Func{
		PALName: "silent-overrun",
		Binary:  pal.DescriptorCode("silent-overrun", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			env.ChargeCPU(simtime.Charge{Duration: 2 * time.Second, Label: "app.spin"})
			return []byte("done anyway"), nil
		},
	}
	res, err := p.RunSession(silent, SessionOptions{MaxPALTime: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PALError, pal.ErrPALTimeout) {
		t.Fatalf("PALError = %v, want timeout", res.PALError)
	}
	if res.Outputs != nil {
		t.Fatal("timed-out PAL still produced outputs")
	}
}

func TestPALTimerLeavesRoomForTPM(t *testing.T) {
	// "a PAL may need some minimal amount of time to allow TPM operations
	// to complete": an op started within budget completes (non-preemptible
	// TPM command), and a PAL that fits its budget is unaffected.
	p := newPlatform(t)
	sealer := &pal.Func{
		PALName: "sealer",
		Binary:  pal.DescriptorCode("sealer", "1.0", []string{"TPM Driver", "TPM Utilities"}, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if _, err := env.SealToSelf([]byte("x")); err != nil {
				return nil, err
			}
			return []byte("sealed"), nil
		},
	}
	// Budget comfortably above seal cost (~16 ms with session setup).
	res, err := p.RunSession(sealer, SessionOptions{MaxPALTime: 200 * time.Millisecond})
	if err != nil || res.PALError != nil {
		t.Fatalf("in-budget PAL failed: %v %v", err, res.PALError)
	}
	// No timer: long PALs are fine.
	long := &pal.Func{
		PALName: "long",
		Binary:  pal.DescriptorCode("long", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			env.ChargeCPU(simtime.Charge{Duration: 10 * time.Second, Label: "app.work"})
			return []byte("ok"), nil
		},
	}
	res, err = p.RunSession(long, SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("untimed long PAL failed: %v %v", err, res.PALError)
	}
}

// --- [19]: multicore secure partitions -------------------------------------

func TestConcurrentSessionRequiresFutureHardware(t *testing.T) {
	p := newPlatform(t) // Broadcom-era profile
	_, err := p.RunSessionConcurrent(helloPAL(), SessionOptions{})
	if !errors.Is(err, cpu.ErrNoMulticoreIsolation) {
		t.Fatalf("err = %v, want ErrNoMulticoreIsolation", err)
	}
}

func TestConcurrentSessionRunsAndAttests(t *testing.T) {
	p := futurePlatform(t)
	nonce := sha1Of("concurrent-nonce")
	res, err := p.RunSessionConcurrent(helloPAL(), SessionOptions{Nonce: &nonce})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil || string(res.Outputs) != "Hello, world" {
		t.Fatalf("outputs = %q, err %v", res.Outputs, res.PALError)
	}
	// The attestation algebra is unchanged.
	want := attest.ExpectedFinalPCR17(res.Image, nil, res.Outputs, &nonce)
	if res.PCR17Final != want {
		t.Fatal("concurrent session PCR-17 chain mismatch")
	}
	// The APs were never touched.
	for _, c := range p.Machine.Cores()[1:] {
		if c.State() != cpu.CoreRunning {
			t.Fatalf("AP %d state = %v", c.ID, c.State())
		}
	}
}

func TestConcurrentSessionAbsorbsOSWork(t *testing.T) {
	// The headline benefit: OS work on the other core proceeds during the
	// session, so the session adds (almost) no wall-clock cost to it.
	p := futurePlatform(t)

	// Run one session to learn its duration.
	probe, err := p.RunSessionConcurrent(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := probe.Duration()
	if d <= 0 {
		t.Fatal("zero-duration session")
	}

	// Give the kernel exactly one session's worth of work, then run a
	// session: the work must be fully retired with no extra clock time.
	p.Kernel.Spawn("background", d)
	before := p.Clock.Now()
	if _, err := p.RunSessionConcurrent(helloPAL(), SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	elapsed := p.Clock.Now() - before
	if len(p.Kernel.Processes()) != 0 {
		t.Fatal("background work not retired during the session")
	}
	// Elapsed is one session, not session + work.
	if elapsed > d+d/10 {
		t.Fatalf("elapsed %v, want ~%v (work should overlap the session)", elapsed, d)
	}
}

func TestConcurrentSessionKeepsInterruptsFlowing(t *testing.T) {
	p := futurePlatform(t)
	spy := &pal.Func{
		PALName: "irq-spy",
		Binary:  pal.DescriptorCode("irq-spy", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			// An interrupt arrives mid-session.
			p.Machine.PendInterrupt(1)
			// The APs are running with interrupts enabled, so it is
			// deliverable immediately — unlike a classic session.
			if got := p.Machine.DrainInterrupts(); len(got) != 1 {
				return nil, errors.New("interrupt not deliverable during partitioned session")
			}
			return []byte("ok"), nil
		},
	}
	res, err := p.RunSessionConcurrent(spy, SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
}

// --- [19]: hardware-protected PAL context ----------------------------------

func TestHWContextRoundTripAcrossSessions(t *testing.T) {
	p := futurePlatform(t)
	store := &pal.Func{
		PALName: "ctx-store",
		Binary:  pal.DescriptorCode("ctx-store", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("stored"), env.StashContext(input)
		},
	}
	fetch := &pal.Func{
		PALName: "ctx-store", // same identity: same Binary is what matters
		Binary:  pal.DescriptorCode("ctx-store", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return env.FetchContext()
		},
	}
	if res, err := p.RunSession(store, SessionOptions{Input: []byte("checkpoint-v1")}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	res, err := p.RunSession(fetch, SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	if string(res.Outputs) != "checkpoint-v1" {
		t.Fatalf("fetched %q", res.Outputs)
	}
}

func TestHWContextIsolatedByIdentity(t *testing.T) {
	p := futurePlatform(t)
	victim := &pal.Func{
		PALName: "victim",
		Binary:  pal.DescriptorCode("victim", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("ok"), env.StashContext([]byte("victim secret"))
		},
	}
	thief := &pal.Func{
		PALName: "thief",
		Binary:  pal.DescriptorCode("thief", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if data, err := env.FetchContext(); err == nil {
				return nil, errors.New("stole context: " + string(data))
			}
			return []byte("blocked"), nil
		},
	}
	if res, err := p.RunSession(victim, SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	res, err := p.RunSession(thief, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatalf("context isolation failed: %v", res.PALError)
	}
}

func TestHWContextGates(t *testing.T) {
	// Unavailable on 2008 hardware.
	p := newPlatform(t)
	oldPal := &pal.Func{
		PALName: "ctx-on-old-hw",
		Binary:  pal.DescriptorCode("ctx-on-old-hw", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if env.HWContextAvailable() {
				return nil, errors.New("HW context claimed on 2008 hardware")
			}
			if err := env.StashContext([]byte("x")); !errors.Is(err, cpu.ErrNoHWContext) {
				return nil, errors.New("stash did not fail on 2008 hardware")
			}
			return []byte("ok"), nil
		},
	}
	if res, err := p.RunSession(oldPal, SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	// Inaccessible outside a session, even on future hardware.
	fp := futurePlatform(t)
	if err := fp.Machine.StashWrite(sha1Of("id"), []byte("x")); err == nil {
		t.Fatal("stash writable outside a session")
	}
	if _, err := fp.Machine.StashRead(sha1Of("id")); err == nil {
		t.Fatal("stash readable outside a session")
	}
}

func TestHWContextCapacity(t *testing.T) {
	p := futurePlatform(t)
	hog := &pal.Func{
		PALName: "hog",
		Binary:  pal.DescriptorCode("hog", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if err := env.StashContext(make([]byte, cpu.StashCapacity+1)); err == nil {
				return nil, errors.New("over-capacity stash accepted")
			}
			// Replacing one's own slot reuses its space.
			if err := env.StashContext(make([]byte, cpu.StashCapacity/2)); err != nil {
				return nil, err
			}
			if err := env.StashContext(make([]byte, cpu.StashCapacity/2)); err != nil {
				return nil, err
			}
			return []byte("ok"), nil
		},
	}
	if res, err := p.RunSession(hog, SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
}

func sha1Of(s string) [20]byte {
	return palcrypto.SHA1Sum([]byte(s))
}
