package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/flickermod"
	"flicker/internal/hw/cpu"
	"flicker/internal/kernel"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

func newPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(PlatformConfig{Seed: "core-test"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// helloPAL is the paper's Figure 5 example: ignore inputs, say hello.
func helloPAL() pal.PAL {
	return &pal.Func{
		PALName: "hello",
		Binary:  pal.DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("Hello, world"), nil
		},
	}
}

func TestHelloWorldSession(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatalf("PAL error: %v", res.PALError)
	}
	if string(res.Outputs) != "Hello, world" {
		t.Fatalf("outputs = %q", res.Outputs)
	}
	// The Figure 2 timeline phases all appear, in order.
	want := []string{"accept", "init-slb", "suspend-os", "skinit", "pal-exec", "cleanup", "extend-pcr", "resume-os"}
	if len(res.Phases) != len(want) {
		t.Fatalf("phases = %d, want %d", len(res.Phases), len(want))
	}
	for i, ph := range res.Phases {
		if ph.Name != want[i] {
			t.Errorf("phase %d = %s, want %s", i, ph.Name, want[i])
		}
	}
	if res.Duration() <= 0 {
		t.Error("session consumed no simulated time")
	}
	// Outputs also appear at the sysfs entry.
	out, err := p.Kernel.SysfsRead(flickermod.SysfsOutputs)
	if err != nil || string(out) != "Hello, world" {
		t.Errorf("sysfs outputs = %q, %v", out, err)
	}
}

func TestSessionRestoresOSState(t *testing.T) {
	p := newPlatform(t)
	bsp := p.Machine.BSP()
	bsp.SetCR3(0xCAFE0000)
	bsp.SetGDTBase(0xBEEF0000)
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bsp.InterruptsEnabled() {
		t.Error("interrupts not restored")
	}
	if !bsp.PagingEnabled() {
		t.Error("paging not restored")
	}
	if bsp.CR3() != 0xCAFE0000 {
		t.Errorf("CR3 = %#x", bsp.CR3())
	}
	if bsp.GDTBase() != 0xBEEF0000 {
		t.Errorf("GDT base = %#x", bsp.GDTBase())
	}
	if bsp.Ring() != 0 {
		t.Error("BSP not back in ring 0")
	}
	for _, c := range p.Machine.Cores()[1:] {
		if c.State() != cpu.CoreRunning {
			t.Errorf("AP %d not running after session", c.ID)
		}
	}
	if p.Machine.SecureSessionActive() || p.Machine.DebugDisabled() {
		t.Error("secure-session flags not cleared")
	}
	if p.Machine.Mem.DEVProtected(res.SLBBase, slb.MaxLen) {
		t.Error("DEV still set after session")
	}
	if p.Kernel.OnlineCoreCount() != len(p.Machine.Cores()) {
		t.Error("cores not re-onlined")
	}
}

func TestSessionWipesSecrets(t *testing.T) {
	p := newPlatform(t)
	var secretAddr uint32
	leaky := &pal.Func{
		PALName: "leaky",
		Binary:  pal.DescriptorCode("leaky", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			// Scribble a secret into the PAL's own memory (inside the SLB).
			secretAddr = env.SLBBase() + 32*1024
			return []byte("ok"), env.WriteMem(secretAddr, []byte("TOP-SECRET-KEY-MATERIAL"))
		},
	}
	if _, err := p.RunSession(leaky, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := p.Machine.Mem.Read(secretAddr, 23)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 23)) {
		t.Fatalf("secret survived cleanup: %q", got)
	}
}

func TestInputsDeliveredThroughParameterPage(t *testing.T) {
	p := newPlatform(t)
	echo := &pal.Func{
		PALName: "echo",
		Binary:  pal.DescriptorCode("echo", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return append([]byte("echo:"), input...), nil
		},
	}
	res, err := p.RunSession(echo, SessionOptions{Input: []byte("marco")})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Outputs) != "echo:marco" {
		t.Fatalf("outputs = %q", res.Outputs)
	}
	if res.InputDigest != palcrypto.SHA1Sum([]byte("marco")) {
		t.Error("input digest wrong")
	}
	if res.OutputDigest != palcrypto.SHA1Sum([]byte("echo:marco")) {
		t.Error("output digest wrong")
	}
}

func TestOversizedInputRejected(t *testing.T) {
	p := newPlatform(t)
	_, err := p.RunSession(helloPAL(), SessionOptions{Input: make([]byte, 5000)})
	if err == nil || !strings.Contains(err.Error(), "4 KB") {
		t.Fatalf("err = %v", err)
	}
}

func TestPALErrorStillTearsDown(t *testing.T) {
	p := newPlatform(t)
	failing := &pal.Func{
		PALName: "failing",
		Binary:  pal.DescriptorCode("failing", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return nil, errors.New("application exploded")
		},
	}
	res, err := p.RunSession(failing, SessionOptions{})
	if err != nil {
		t.Fatalf("infrastructure error: %v", err)
	}
	if res.PALError == nil || !strings.Contains(res.PALError.Error(), "exploded") {
		t.Fatalf("PALError = %v", res.PALError)
	}
	if res.Outputs != nil {
		t.Error("failed PAL produced outputs")
	}
	if !p.Machine.BSP().InterruptsEnabled() || p.Machine.SecureSessionActive() {
		t.Error("teardown incomplete after PAL error")
	}
	// The platform still works for the next session.
	res2, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil || res2.PALError != nil {
		t.Fatalf("follow-up session: %v %v", err, res2.PALError)
	}
}

func TestPCR17Algebra(t *testing.T) {
	p := newPlatform(t)
	nonce := palcrypto.SHA1Sum([]byte("verifier-nonce"))
	res, err := p.RunSession(helloPAL(), SessionOptions{Input: []byte("in"), Nonce: &nonce})
	if err != nil {
		t.Fatal(err)
	}
	// Launch value: V0 = H(0 || H(P)).
	if res.PCR17AtLaunch != res.Image.ExpectedPCR17() {
		t.Error("PCR17 at launch != H(0 || H(P))")
	}
	// Final value matches the verifier's recomputation.
	want := attest.ExpectedFinalPCR17(res.Image, []byte("in"), res.Outputs, &nonce)
	if res.PCR17Final != want {
		t.Error("final PCR 17 != verifier recomputation")
	}
	// And the TPM agrees.
	if p.TPM.PCRValue(17) != want {
		t.Error("TPM PCR 17 != expected")
	}
	// Without the nonce the value differs (nonce is load-bearing).
	if res.PCR17Final == attest.ExpectedFinalPCR17(res.Image, []byte("in"), res.Outputs, nil) {
		t.Error("nonce did not affect final PCR 17")
	}
}

func TestSandboxBlocksKernelMemory(t *testing.T) {
	p := newPlatform(t)
	var sandboxErr, openErr error
	probe := func(name string) pal.PAL {
		return &pal.Func{
			PALName: name,
			Binary:  pal.DescriptorCode(name, "1.0", nil, nil),
			Fn: func(env *pal.Env, input []byte) ([]byte, error) {
				_, err := env.ReadMem(kernel.KernelTextBase, 64)
				if name == "sandboxed" {
					sandboxErr = err
				} else {
					openErr = err
				}
				return []byte("done"), nil
			},
		}
	}
	if _, err := p.RunSession(probe("sandboxed"), SessionOptions{Sandbox: true}); err != nil {
		t.Fatal(err)
	}
	var sf *pal.SegFault
	if !errors.As(sandboxErr, &sf) {
		t.Fatalf("sandboxed read of kernel text: %v, want SegFault", sandboxErr)
	}
	// Without OS Protection "a PAL can access the machine's entire
	// physical memory" (Section 4.2).
	if _, err := p.RunSession(probe("open"), SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if openErr != nil {
		t.Fatalf("unsandboxed read failed: %v", openErr)
	}
}

func TestSandboxRing3(t *testing.T) {
	p := newPlatform(t)
	var ringDuring cpu.Ring
	probe := &pal.Func{
		PALName: "ring-probe",
		Binary:  pal.DescriptorCode("ring-probe", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			ringDuring = 99 // sentinel; read from machine below
			return []byte("x"), nil
		},
	}
	// Capture ring during execution via a wrapper.
	wrapped := &pal.Func{
		PALName: "ring-probe",
		Binary:  probe.Binary,
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			ringDuring = p.Machine.BSP().Ring()
			return []byte("x"), nil
		},
	}
	if _, err := p.RunSession(wrapped, SessionOptions{Sandbox: true}); err != nil {
		t.Fatal(err)
	}
	if ringDuring != 3 {
		t.Fatalf("PAL ran in ring %d, want 3", ringDuring)
	}
	if p.Machine.BSP().Ring() != 0 {
		t.Fatal("core not returned to ring 0")
	}
}

func TestTwoStageSession(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunSession(helloPAL(), SessionOptions{TwoStage: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Image.TwoStage() {
		t.Fatal("image not two-stage")
	}
	if res.PCR17AtLaunch != res.Image.ExpectedPCR17TwoStage() {
		t.Error("two-stage launch PCR mismatch")
	}
	want := attest.ExpectedFinalPCR17(res.Image, nil, res.Outputs, nil)
	if res.PCR17Final != want {
		t.Error("two-stage final PCR mismatch")
	}
	// The SKINIT phase must be much cheaper than a full-window launch:
	// only 4736 bytes go to the TPM.
	skinit := res.PhaseDuration("skinit")
	if got := p.Profile.SkinitCost(4736); skinit != got {
		t.Errorf("two-stage SKINIT = %v, want %v", skinit, got)
	}
}

func TestSysfsControlPath(t *testing.T) {
	p := newPlatform(t)
	im, err := p.RegisterPAL(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := p.Kernel
	if err := k.SysfsWrite(flickermod.SysfsSLB, im.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := k.SysfsWrite(flickermod.SysfsInputs, []byte("ignored")); err != nil {
		t.Fatal(err)
	}
	if err := k.SysfsWrite(flickermod.SysfsControl, []byte{1}); err != nil {
		t.Fatal(err)
	}
	out, err := k.SysfsRead(flickermod.SysfsOutputs)
	if err != nil || string(out) != "Hello, world" {
		t.Fatalf("outputs = %q, %v", out, err)
	}
	// Unregistered SLB bytes are rejected.
	if err := k.SysfsWrite(flickermod.SysfsSLB, []byte("rogue slb")); err != nil {
		t.Fatal(err)
	}
	if err := k.SysfsWrite(flickermod.SysfsControl, []byte{1}); err == nil {
		t.Fatal("launch of unregistered SLB succeeded")
	}
}

func TestAttestationEndToEnd(t *testing.T) {
	p := newPlatform(t)
	ca, err := attest.NewPrivacyCA([]byte("test-ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, "hp-dc5750")
	if err != nil {
		t.Fatal(err)
	}
	nonce := palcrypto.SHA1Sum([]byte("challenge-1"))
	res, err := p.RunSession(helloPAL(), SessionOptions{Input: []byte("q"), Nonce: &nonce})
	if err != nil {
		t.Fatal(err)
	}
	att, err := tqd.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	// The verifier knows the PAL (hence the image), the inputs, the
	// returned outputs, and its own nonce.
	vimg, _ := BuildImage(helloPAL(), false)
	vimg.Patch(res.SLBBase)
	if err := attest.VerifySession(ca.PublicKey(), att, nonce, vimg, []byte("q"), res.Outputs); err != nil {
		t.Fatalf("valid attestation rejected: %v", err)
	}
	// Tampered output: rejected.
	if err := attest.VerifySession(ca.PublicKey(), att, nonce, vimg, []byte("q"), []byte("Hello, w0rld")); err == nil {
		t.Error("tampered output accepted")
	}
	// Tampered input: rejected.
	if err := attest.VerifySession(ca.PublicKey(), att, nonce, vimg, []byte("Q"), res.Outputs); err == nil {
		t.Error("tampered input accepted")
	}
	// Wrong nonce (replay): rejected.
	other := palcrypto.SHA1Sum([]byte("challenge-2"))
	if err := attest.VerifySession(ca.PublicKey(), att, other, vimg, []byte("q"), res.Outputs); err == nil {
		t.Error("replayed attestation accepted")
	}
	// Wrong PAL: rejected.
	evil := &pal.Func{PALName: "evil", Binary: pal.DescriptorCode("evil", "1.0", nil, nil), Fn: nil}
	eimg, _ := BuildImage(evil, false)
	eimg.Patch(res.SLBBase)
	if err := attest.VerifySession(ca.PublicKey(), att, nonce, eimg, []byte("q"), res.Outputs); err == nil {
		t.Error("attestation verified against the wrong PAL")
	}
}

func TestOSCannotForgeSessionPCR(t *testing.T) {
	// A compromised OS extends PCR 17 with values of its choosing and then
	// quotes — the verifier must reject, because PCR 17 cannot be put into
	// the post-SKINIT state by software.
	p := newPlatform(t)
	p.Kernel.Compromise()
	ca, _ := attest.NewPrivacyCA([]byte("ca"), 0)
	tqd, err := attest.NewDaemon(p.OSTPM(), tpm.Digest{}, ca, "victim")
	if err != nil {
		t.Fatal(err)
	}
	// The OS knows the PAL and tries to synthesize the extend chain on top
	// of the boot value (-1) instead of a real SKINIT.
	im, _ := BuildImage(helloPAL(), false)
	base, _ := p.Mod.AllocateSLB()
	im.Patch(base)
	osTPM := p.OSTPM()
	osTPM.Extend(17, im.Measurement())
	osTPM.Extend(17, palcrypto.SHA1Sum(nil))
	osTPM.Extend(17, palcrypto.SHA1Sum([]byte("Hello, world")))
	nonce := palcrypto.SHA1Sum([]byte("n"))
	osTPM.Extend(17, nonce)
	osTPM.Extend(17, slb.SessionTerminator)
	att, err := tqd.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.VerifySession(ca.PublicKey(), att, nonce, im, nil, []byte("Hello, world")); err == nil {
		t.Fatal("forged session attestation verified")
	}
}

func TestMultipleSequentialSessions(t *testing.T) {
	p := newPlatform(t)
	for i := 0; i < 5; i++ {
		res, err := p.RunSession(helloPAL(), SessionOptions{})
		if err != nil || res.PALError != nil {
			t.Fatalf("session %d: %v %v", i, err, res.PALError)
		}
	}
}

func TestSessionTimingBreakdown(t *testing.T) {
	p := newPlatform(t)
	res, err := p.RunSession(helloPAL(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// SKINIT phase equals the Table 2 model for this SLB size.
	if got, want := res.PhaseDuration("skinit"), p.Profile.SkinitCost(res.Image.MeasuredLen()); got != want {
		t.Errorf("skinit phase = %v, want %v", got, want)
	}
	// The extend phase covers 3 extends (input, output, terminator) plus a
	// PCR read.
	want := 3*p.Profile.TPMExtend + p.Profile.TPMPCRRead
	if got := res.PhaseDuration("extend-pcr"); got != want {
		t.Errorf("extend phase = %v, want %v", got, want)
	}
}

func TestHeapAvailableWhenLinked(t *testing.T) {
	p := newPlatform(t)
	used := false
	heapy := &pal.Func{
		PALName: "heapy",
		Binary:  pal.DescriptorCode("heapy", "1.0", []string{"Memory Management"}, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if env.Heap == nil {
				return nil, errors.New("no heap")
			}
			ptr, err := env.Heap.Malloc(128)
			if err != nil {
				return nil, err
			}
			used = true
			return nil, env.Heap.Free(ptr)
		},
	}
	res, err := p.RunSession(heapy, SessionOptions{HeapSize: 4096})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	if !used {
		t.Fatal("heap not exercised")
	}
	// Without the module, Heap is nil.
	res, err = p.RunSession(heapy, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError == nil {
		t.Fatal("expected 'no heap' error without Memory Management module")
	}
}

func TestConcurrentCallersAreSerialized(t *testing.T) {
	// Two goroutines racing RunSession must both succeed: the platform
	// queues them like concurrent ioctls against the one flicker-module.
	p := newPlatform(t)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := p.RunSession(helloPAL(), SessionOptions{})
			if err == nil && res.PALError != nil {
				err = res.PALError
			}
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("racing session failed: %v", err)
		}
	}
}

func TestOutputPageBoundary(t *testing.T) {
	p := newPlatform(t)
	mk := func(n int) pal.PAL {
		return &pal.Func{
			PALName: "boundary",
			Binary:  pal.DescriptorCode("boundary", "1.0", nil, nil),
			Fn: func(env *pal.Env, input []byte) ([]byte, error) {
				return bytes.Repeat([]byte{0x42}, n), nil
			},
		}
	}
	// Exactly at the 4 KB page limit (minus the length prefix): fine.
	res, err := p.RunSession(mk(slb.PageSize-4), SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("max output: %v %v", err, res.PALError)
	}
	if len(res.Outputs) != slb.PageSize-4 {
		t.Fatalf("outputs = %d bytes", len(res.Outputs))
	}
	// One byte over: PAL error, session still tears down.
	res, err = p.RunSession(mk(slb.PageSize-3), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError == nil {
		t.Fatal("oversized output accepted")
	}
	if !p.Machine.BSP().InterruptsEnabled() {
		t.Fatal("teardown incomplete")
	}
}
