package core

// Tests for "Additional PAL Code" beyond the 64 KB SLB window (Section 2.4:
// protections "can be extended to larger memory regions" by preparatory
// code that programs the DEV and extends PCR 17 for the upper region).

import (
	"bytes"
	"errors"
	"testing"

	"flicker/internal/attest"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/slb"
)

// largePAL carries 128 KB of extra code (e.g. a full crypto library plus
// application logic that would never fit in the SLB).
func largePAL(p *Platform, probe func(env *pal.Env) error) pal.PAL {
	extra := palcrypto.NewPRNG([]byte("big-pal-extra-code")).Bytes(128 * 1024)
	return &pal.Func{
		PALName:     "big-pal",
		Binary:      pal.DescriptorCode("big-pal", "1.0", []string{"Crypto"}, nil),
		ExtraBinary: extra,
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			if probe != nil {
				if err := probe(env); err != nil {
					return nil, err
				}
			}
			// The PAL reads its own upper-region code (executing it, in
			// spirit).
			head, err := env.ReadMem(env.ExtraCodeAddr(), 64)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(head, extra[:64]) {
				return nil, errors.New("extra code not placed")
			}
			return []byte("big ok"), nil
		},
	}
}

func TestLargePALSessionAndAttestation(t *testing.T) {
	p := newPlatform(t)
	lp := largePAL(p, nil)
	nonce := palcrypto.SHA1Sum([]byte("big-nonce"))
	res, err := p.RunSession(lp, SessionOptions{Nonce: &nonce})
	if err != nil {
		t.Fatal(err)
	}
	if res.PALError != nil {
		t.Fatalf("PAL error: %v", res.PALError)
	}
	// The verifier's chain includes the extra-code measurement.
	im, err := BuildImage(lp, false)
	if err != nil {
		t.Fatal(err)
	}
	if !im.HasExtra() {
		t.Fatal("image lost its extra code")
	}
	im.Patch(res.SLBBase)
	want := attest.ExpectedFinalPCR17(im, nil, res.Outputs, &nonce)
	if res.PCR17Final != want {
		t.Fatal("large-PAL PCR-17 chain mismatch")
	}
	// A PAL with different extra code has a different launch identity even
	// with an identical SLB.
	other := &pal.Func{
		PALName:     "big-pal",
		Binary:      lp.Code(),
		ExtraBinary: bytes.Repeat([]byte{0xEE}, 128*1024),
		Fn:          func(env *pal.Env, in []byte) ([]byte, error) { return nil, nil },
	}
	oim, _ := BuildImage(other, false)
	oim.Patch(res.SLBBase)
	if attest.ExpectedLaunchPCR17(oim) == attest.ExpectedLaunchPCR17(im) {
		t.Fatal("extra code not part of the launch identity")
	}
}

func TestLargePALExtraRegionDMAProtected(t *testing.T) {
	p := newPlatform(t)
	nic := p.Machine.Mem.AttachDevice("evil-nic")
	var dmaErrInside error
	lp := largePAL(p, func(env *pal.Env) error {
		// Mid-session, a malicious device tries to read the upper region.
		_, dmaErrInside = nic.Read(env.ExtraCodeAddr()+4096, 64)
		return nil
	})
	res, err := p.RunSession(lp, SessionOptions{})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	if dmaErrInside == nil {
		t.Fatal("DMA into the extra-code region succeeded mid-session")
	}
	// After the session, the region is DMA-accessible again and wiped.
	base := res.SLBBase + uint32(slb.ExtraCodeOffset)
	got, err := nic.Read(base, 4096)
	if err != nil {
		t.Fatalf("post-session DMA still blocked: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("extra-code region not wiped after session")
	}
}

func TestLargePALSandboxCoversExtraRegion(t *testing.T) {
	p := newPlatform(t)
	lp := largePAL(p, func(env *pal.Env) error {
		// Inside the sandbox the PAL can reach its extra region...
		if _, err := env.ReadMem(env.ExtraCodeAddr(), 16); err != nil {
			return err
		}
		// ...but not beyond it.
		end := env.SLBBase() + uint32(slb.ExtraCodeOffset) + 128*1024
		if _, err := env.ReadMem(end+4096, 16); err == nil {
			return errors.New("sandbox did not cover the region end")
		}
		return nil
	})
	res, err := p.RunSession(lp, SessionOptions{Sandbox: true})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
}

func TestLargePALTwoStage(t *testing.T) {
	p := newPlatform(t)
	lp := largePAL(p, nil)
	res, err := p.RunSession(lp, SessionOptions{TwoStage: true})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	im, _ := BuildImage(lp, true)
	im.Patch(res.SLBBase)
	if res.PCR17Final != attest.ExpectedFinalPCR17(im, nil, res.Outputs, nil) {
		t.Fatal("two-stage large-PAL chain mismatch")
	}
}

func TestOversizedExtraRejected(t *testing.T) {
	huge := &pal.Func{
		PALName:     "huge",
		Binary:      pal.DescriptorCode("huge", "1.0", nil, nil),
		ExtraBinary: make([]byte, slb.MaxExtraCode+1),
		Fn:          func(env *pal.Env, in []byte) ([]byte, error) { return nil, nil },
	}
	if _, err := BuildImage(huge, false); err == nil {
		t.Fatal("oversized extra code accepted")
	}
}

func TestLargePALSealsToItsFullIdentity(t *testing.T) {
	// Sealing inside a large PAL binds to the post-extra-extend PCR-17
	// value; the same SLB with different extra code cannot unseal.
	p := newPlatform(t)
	var blob []byte
	sealerExtra := palcrypto.NewPRNG([]byte("sealer-extra")).Bytes(64 * 1024)
	mk := func(extra []byte, fn func(env *pal.Env, in []byte) ([]byte, error)) pal.PAL {
		return &pal.Func{
			PALName:     "large-sealer",
			Binary:      pal.DescriptorCode("large-sealer", "1.0", nil, nil),
			ExtraBinary: extra,
			Fn:          fn,
		}
	}
	sealer := mk(sealerExtra, func(env *pal.Env, in []byte) ([]byte, error) {
		if len(in) > 0 {
			return env.Unseal(in)
		}
		var err error
		blob, err = env.SealToSelf([]byte("large secret"))
		return []byte("sealed"), err
	})
	if res, err := p.RunSession(sealer, SessionOptions{}); err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	// Same SLB, different extra code: unseal must fail.
	imposter := mk(bytes.Repeat([]byte{9}, 64*1024), func(env *pal.Env, in []byte) ([]byte, error) {
		if _, err := env.Unseal(in); err == nil {
			return nil, errors.New("imposter unsealed the secret")
		}
		return []byte("blocked"), nil
	})
	res, err := p.RunSession(imposter, SessionOptions{Input: blob})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	// The genuine PAL gets it back.
	res, err = p.RunSession(sealer, SessionOptions{Input: blob})
	if err != nil || res.PALError != nil {
		t.Fatalf("%v %v", err, res.PALError)
	}
	if !bytes.Equal(res.Outputs, []byte("large secret")) {
		t.Fatalf("recovered %q", res.Outputs)
	}
}
