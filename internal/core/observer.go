package core

// Structured observability for the session pipeline: an Observer receives
// the Figure 2 timeline as it unfolds (session and phase boundaries, plus
// every simulated-clock charge attributed to the phase that incurred it).
// internal/trace builds its JSON span exporter on top of this; the same
// callbacks support the simTPM-style TPM performance analyses in PAPERS.md.

import (
	"sort"
	"time"

	"flicker/internal/simtime"
)

// SessionMeta identifies one session run to observers.
type SessionMeta struct {
	// ID is the platform-unique session id (monotonic, starting at 1).
	ID uint64
	// Pipeline names the phase-engine variant: "classic" (Figure 2,
	// OS-suspending) or "partitioned" (multicore, [19]).
	Pipeline string
	// PAL is the PAL's name.
	PAL string
	// Start is the simulated time at which the session began.
	Start time.Duration
	// TraceID is the distributed-trace ID the session runs under ("" when
	// untraced) — SessionOptions.TraceID, echoed to observers.
	TraceID string
}

// Observer receives session pipeline events. Callbacks are invoked
// synchronously from the session goroutine, in order: SessionStart, then
// for each phase PhaseStart / zero-or-more Charge / PhaseEnd, then
// SessionEnd. A non-nil err on PhaseEnd/SessionEnd is the infrastructure
// failure that aborted the session (PAL-level errors are not pipeline
// failures; they appear in SessionResult.PALError).
type Observer interface {
	SessionStart(m SessionMeta)
	PhaseStart(sid uint64, phase string, at time.Duration)
	// Charge reports a simulated-clock charge that occurred while the named
	// phase was open (phase is "" for charges outside any phase, e.g.
	// teardown after an abort).
	Charge(sid uint64, phase string, c simtime.Charge)
	PhaseEnd(sid uint64, phase string, at time.Duration, err error)
	SessionEnd(sid uint64, at time.Duration, err error)
}

// CombineObservers fans one observer stream out to several observers (the
// pool's coalescer merges per-job observers into the shared batched session
// with it). Nil entries are dropped; it returns nil for an empty set and
// the observer itself for a singleton.
func CombineObservers(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

// multiObserver fans callbacks out in registration order.
type multiObserver []Observer

func (m multiObserver) SessionStart(meta SessionMeta) {
	for _, o := range m {
		o.SessionStart(meta)
	}
}

func (m multiObserver) PhaseStart(sid uint64, phase string, at time.Duration) {
	for _, o := range m {
		o.PhaseStart(sid, phase, at)
	}
}

func (m multiObserver) Charge(sid uint64, phase string, c simtime.Charge) {
	for _, o := range m {
		o.Charge(sid, phase, c)
	}
}

func (m multiObserver) PhaseEnd(sid uint64, phase string, at time.Duration, err error) {
	for _, o := range m {
		o.PhaseEnd(sid, phase, at, err)
	}
}

func (m multiObserver) SessionEnd(sid uint64, at time.Duration, err error) {
	for _, o := range m {
		o.SessionEnd(sid, at, err)
	}
}

// AddObserver registers an observer for every subsequent session on the
// platform (both pipelines).
func (p *Platform) AddObserver(o Observer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observers = append(p.observers, o)
}

// RemoveObserver unregisters a previously added observer.
func (p *Platform) RemoveObserver(o Observer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, x := range p.observers {
		if x == o {
			p.observers = append(p.observers[:i], p.observers[i+1:]...)
			return
		}
	}
}

// observerList snapshots the registered observers for one session.
func (p *Platform) observerList() []Observer {
	return p.observersInto(nil)
}

// observersInto copies the observer list into dst's backing storage,
// growing it only when the list got longer — the session hot path hands in
// a per-platform scratch slice so a warm session does not allocate here.
func (p *Platform) observersInto(dst []Observer) []Observer {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.observers) == 0 {
		return dst[:0]
	}
	return append(dst[:0], p.observers...)
}

// SessionStats aggregates all sessions run on a platform.
type SessionStats struct {
	// Sessions counts sessions that completed their full pipeline
	// (including those whose PAL returned an application-level error).
	Sessions int
	// Aborted counts sessions torn down by an infrastructure failure.
	Aborted int
	// AbortedByPhase breaks Aborted down by the phase that failed, so
	// fault-matrix runs show where sessions die.
	AbortedByPhase map[string]int
	// ImageBuilds and ImageCacheHits account for the SLB image cache:
	// builds is how many times an image was actually linked, hits how many
	// sessions reused a cached one.
	ImageBuilds    int
	ImageCacheHits int
	// PhaseTotal sums simulated time per phase name across all sessions,
	// including the partial phases of aborted ones (an aborted session's
	// spent time is real platform time; dropping it would hide where
	// fault-matrix runs burn their cycles).
	PhaseTotal map[string]time.Duration
	// Total is the summed simulated duration of all completed sessions;
	// P50 and Max describe the per-session distribution.
	Total time.Duration
	P50   time.Duration
	Max   time.Duration
}

// Stats returns a snapshot of the platform's aggregate session statistics.
func (p *Platform) Stats() SessionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := SessionStats{
		Sessions:       len(p.sessionDurations),
		Aborted:        p.sessionsAborted,
		AbortedByPhase: make(map[string]int, len(p.abortsByPhase)),
		ImageBuilds:    p.imageBuilds,
		ImageCacheHits: p.imageCacheHits,
		PhaseTotal:     make(map[string]time.Duration, len(p.phaseTotal)),
	}
	for k, v := range p.abortsByPhase {
		st.AbortedByPhase[k] = v
	}
	for k, v := range p.phaseTotal {
		st.PhaseTotal[k] = v
	}
	if n := len(p.sessionDurations); n > 0 {
		sorted := make([]time.Duration, n)
		copy(sorted, p.sessionDurations)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.P50 = sorted[n/2]
		st.Max = sorted[n-1]
		for _, d := range sorted {
			st.Total += d
		}
	}
	return st
}

// recordSession folds one finished session into the aggregate statistics.
// Aborted sessions keep their phase attribution: the partial phases they ran
// (including the failed one) count toward PhaseTotal, and the failing phase
// is tallied in AbortedByPhase.
func (p *Platform) recordSession(res *SessionResult, failure error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ph := range res.Phases {
		p.phaseTotal[ph.Name] += ph.Duration
	}
	if failure != nil {
		p.sessionsAborted++
		if n := len(res.Phases); n > 0 {
			// runPhase records the failing phase before unwinding, so the
			// last recorded phase is where the session died.
			p.abortsByPhase[res.Phases[n-1].Name]++
		}
		return
	}
	p.sessionDurations = append(p.sessionDurations, res.Duration())
}
