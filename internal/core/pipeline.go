package core

// The session pipeline engine. Both session variants — the paper's Figure 2
// timeline (RunSession) and the multicore partitioned launch
// (RunSessionConcurrent) — are declarative lists of phaseSpecs executed by
// runPipeline. The engine owns the invariants the hand-rolled monoliths
// used to duplicate per error path:
//
//   - teardown is guaranteed: a single deferred sweep runs every registered
//     phase teardown in LIFO order on every exit path, and each teardown is
//     guarded by session state so OS resume and LateLaunch.End happen
//     exactly once whether the session completes, aborts, or panics;
//   - on abort after the SLB was placed, secrets are erased while the
//     window is still isolated and PCR 17 is capped with the session
//     terminator, so a half-finished session can never attest as complete;
//   - observers see every session, phase, and clock charge;
//   - fault injection (SessionOptions.FailPhase / Injector) can abort at
//     any phase boundary, which is how the teardown matrix is tested.

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"flicker/internal/flickermod"
	"flicker/internal/hw/cpu"
	"flicker/internal/hw/tis"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// ErrFaultInjected is the error raised by SessionOptions.FailPhase.
var ErrFaultInjected = errors.New("core: injected fault")

// phaseSpec is one declarative step of a session timeline.
type phaseSpec struct {
	// name appears in SessionResult.Phases, observer callbacks, and trace
	// renderings.
	name string
	// body performs the phase against the session state.
	body func(*sessionState) error
	// teardown, if non-nil, is registered once body succeeds and undoes the
	// phase's platform-level effect (resume the OS, end the late launch,
	// erase the SLB window) if the session aborts later. Teardowns are
	// guarded by session state, so the orderly resume phases make them
	// no-ops on the success path.
	teardown func(*sessionState)
}

// sessionPipeline is a named phase list plus an optional post-session step.
type sessionPipeline struct {
	name     string
	phases   []phaseSpec
	epilogue func(*sessionState)
}

// sessionState threads the mutable session context through the phases.
type sessionState struct {
	p    *Platform
	pl   pal.PAL
	opts SessionOptions
	res  *SessionResult

	im      *slb.Image
	slbBase uint32
	saved   *flickermod.SavedState
	ll      *cpu.LateLaunch
	env     *pal.Env
	palOut  []byte
	palErr  error

	// windowDirty marks that the SLB region holds a placed image/inputs
	// (and possibly PAL secrets); pcrOpen marks that PCR 17 holds an
	// uncapped launch measurement. Both are cleared by the orderly cleanup
	// and extend phases, or by the abort teardowns — whichever runs first.
	// aborted is set just before the teardown sweep when the session failed:
	// an aborted session blanket-zeroes the window even if the orderly
	// cleanup already scrubbed it. windowWiped makes that zero idempotent
	// across the launch and init-slb teardowns.
	windowDirty bool
	pcrOpen     bool
	aborted     bool
	windowWiped bool

	// obs is the observer list for this session, captured once by
	// runPipeline; the batch body uses it to emit per-request spans.
	obs []Observer

	teardowns []func(*sessionState)

	// phaseMu guards curPhase, which the clock's charge hook reads to
	// attribute charges to the open phase.
	phaseMu  sync.Mutex
	curPhase string
}

func (st *sessionState) setPhase(name string) {
	st.phaseMu.Lock()
	st.curPhase = name
	st.phaseMu.Unlock()
}

func (st *sessionState) phase() string {
	st.phaseMu.Lock()
	defer st.phaseMu.Unlock()
	return st.curPhase
}

// runTeardowns runs every registered teardown in LIFO order. Teardowns are
// idempotent (state-guarded), so this is safe on every exit path.
func (st *sessionState) runTeardowns() {
	for i := len(st.teardowns) - 1; i >= 0; i-- {
		st.teardowns[i](st)
	}
	st.teardowns = st.teardowns[:0]
}

// reset reinitializes the scratch session state for a new session, keeping
// the teardown slice's backing storage (and the phase mutex) in place.
// Fields are cleared individually rather than by struct assignment because
// phaseMu must not be copied.
func (st *sessionState) reset(p *Platform, pl pal.PAL, opts SessionOptions) {
	st.p = p
	st.pl = pl
	st.opts = opts
	st.res = nil
	st.im = nil
	st.slbBase = 0
	st.saved = nil
	st.ll = nil
	st.env = nil
	st.palOut = nil
	st.palErr = nil
	st.windowDirty = false
	st.pcrOpen = false
	st.aborted = false
	st.windowWiped = false
	st.obs = nil
	st.teardowns = st.teardowns[:0]
	st.setPhase("")
}

// runPipeline executes a phase list for one session. This is the single
// implementation of the session timeline: RunSession and
// RunSessionConcurrent differ only in the phase lists they pass in.
func (p *Platform) runPipeline(pipe *sessionPipeline, pl pal.PAL, opts SessionOptions) (res *SessionResult, err error) {
	// The flicker-module owns a single SLB buffer and the machine supports
	// one late launch at a time; all sessions — classic and partitioned —
	// queue here exactly as concurrent ioctls against the real module would.
	p.sessionMu.Lock()
	defer p.sessionMu.Unlock()

	// The session state is per-platform scratch reused across sessions
	// (sessionMu serializes them); only the SessionResult — which the
	// caller retains — is freshly allocated, with its phase timeline
	// preallocated to the pipeline length so it never regrows.
	st := &p.scratch.st
	st.reset(p, pl, opts)
	st.res = &SessionResult{
		Start:     p.Clock.Now(),
		Nonce:     opts.Nonce,
		SessionID: p.nextSessionID(),
		Pipeline:  pipe.name,
		Phases:    make([]Phase, 0, len(pipe.phases)),
	}
	obs := p.observersInto(p.scratch.obs)
	if opts.Observer != nil {
		obs = append(obs, opts.Observer)
	}
	p.scratch.obs = obs[:0]
	st.obs = obs
	if opts.TraceID != "" {
		// Pin the active trace on the platform tag so deep layers (TPM
		// dispatch) attach exemplars with exact attribution; sessions are
		// serialized under sessionMu, so one tag per platform suffices.
		p.traceTag.Set(opts.TraceID)
		defer p.traceTag.Clear()
	}
	for _, o := range obs {
		o.SessionStart(SessionMeta{
			ID:       st.res.SessionID,
			Pipeline: pipe.name,
			PAL:      pl.Name(),
			Start:    st.res.Start,
			TraceID:  opts.TraceID,
		})
	}
	if len(obs) > 0 {
		// The charge hook closes over the platform's session scratch, so
		// it is built once and reused by every session on this platform.
		if p.scratch.chargeFn == nil {
			p.scratch.chargeFn = func(c simtime.Charge) {
				phase := st.phase()
				for _, o := range st.obs {
					o.Charge(st.res.SessionID, phase, c)
				}
			}
		}
		p.Clock.SetOnCharge(p.scratch.chargeFn)
		defer p.Clock.SetOnCharge(nil)
	}

	var failure error
	defer func() {
		st.aborted = failure != nil
		st.runTeardowns()
		for _, o := range obs {
			o.SessionEnd(st.res.SessionID, p.Clock.Now(), failure)
		}
		p.recordSession(st.res, failure)
	}()

	for i := range pipe.phases {
		if phErr := st.runPhase(&pipe.phases[i], obs); phErr != nil {
			failure = phErr
			return nil, phErr
		}
	}

	if st.palErr == nil {
		st.res.Outputs = st.palOut
		p.Mod.PublishOutputs(st.palOut)
	}
	st.res.PALError = st.palErr
	st.res.End = p.Clock.Now()
	if pipe.epilogue != nil {
		pipe.epilogue(st)
	}
	return st.res, nil
}

// runPhase executes one phase: fault injection, body, timeline recording,
// observer callbacks, and teardown registration.
func (st *sessionState) runPhase(ph *phaseSpec, obs []Observer) error {
	start := st.p.Clock.Now()
	st.setPhase(ph.name)
	for _, o := range obs {
		o.PhaseStart(st.res.SessionID, ph.name, start)
	}
	var err error
	if st.opts.FailPhase == ph.name {
		err = fmt.Errorf("%w at phase %q", ErrFaultInjected, ph.name)
	} else if st.opts.Injector != nil {
		err = st.opts.Injector(ph.name)
	}
	if err == nil {
		err = ph.body(st)
	}
	end := st.p.Clock.Now()
	st.res.Phases = append(st.res.Phases, Phase{Name: ph.name, Start: start, Duration: end - start})
	for _, o := range obs {
		o.PhaseEnd(st.res.SessionID, ph.name, end, err)
	}
	st.setPhase("")
	if err != nil {
		return err
	}
	if ph.teardown != nil {
		st.teardowns = append(st.teardowns, ph.teardown)
	}
	return nil
}

// --- Shared phase bodies ----------------------------------------------------

// acceptBody resolves the SLB image (through the platform's image cache
// unless the registry already supplied one) and obtains slb_base.
func acceptBody(st *sessionState) error {
	var err error
	st.im = st.opts.image
	if st.im == nil {
		st.im, err = st.p.imageFor(st.pl, st.opts.TwoStage)
		if err != nil {
			return err
		}
	}
	st.slbBase, err = st.p.Mod.AllocateSLB()
	if err != nil {
		return err
	}
	st.res.Image = st.im
	st.res.SLBBase = st.slbBase
	return nil
}

// initSLBBody zeroes the output page (a stale output page from a prior
// session must not be readable by this session's PAL) and places the
// patched image and inputs.
func initSLBBody(st *sessionState) error {
	if err := st.p.Machine.Mem.Zero(st.slbBase+uint32(slb.OutputsOffset), slb.PageSize); err != nil {
		return err
	}
	if err := st.p.Mod.PlaceSLB(st.im, st.slbBase, st.opts.Input); err != nil {
		return err
	}
	st.windowDirty = true
	return nil
}

// suspendOSBody hotplugs the APs, sends the INIT IPIs, and saves kernel
// state (classic pipeline only).
func suspendOSBody(st *sessionState) error {
	sv, err := st.p.Mod.SuspendOS(st.slbBase)
	if err != nil {
		return err
	}
	st.saved = sv
	return nil
}

// saveContextBody saves only the launching core's context — no hotplug, no
// INIT IPIs (partitioned pipeline).
func saveContextBody(st *sessionState) error {
	sv, err := st.p.Mod.SaveContextOnly(st.slbBase)
	if err != nil {
		return err
	}
	st.saved = sv
	return nil
}

// skinitBody runs the late launch; launched marks PCR 17 as holding an
// uncapped measurement until the extend phase completes.
func skinitBody(st *sessionState) error {
	ll, err := st.p.Machine.SKINIT(0, st.slbBase)
	if err != nil {
		return err
	}
	st.launched(ll)
	return nil
}

// skinitPartitionedBody is skinitBody for multicore-isolation hardware.
func skinitPartitionedBody(st *sessionState) error {
	ll, err := st.p.Machine.SKINITPartitioned(0, st.slbBase)
	if err != nil {
		return err
	}
	st.launched(ll)
	return nil
}

func (st *sessionState) launched(ll *cpu.LateLaunch) {
	st.ll = ll
	st.pcrOpen = true
	st.res.Measurement = ll.Measurement
}

// setupPALEnv is the pal-exec prologue shared by the singleton and batch
// bodies: stage-2/extra-code measurement, identity computation, Env
// construction, and the input read-back from the input page. It sets st.env
// and returns the input bytes the PAL will see.
func setupPALEnv(st *sessionState) ([]byte, error) {
	p := st.p
	// The PAL's locality-2 driver is cached on the platform and reseeded
	// with the same per-session identity a fresh client would get, so the
	// nonce stream is identical to pre-cache behavior.
	seed := append(p.scratch.seed[:0], "pal-tpm-"...)
	seed = strconv.AppendInt(seed, int64(p.nextSeq()), 10)
	p.scratch.seed = seed
	palTPM := p.scratch.palClient
	palTPM.Reseed(seed)

	// Two-stage measurement: the stub hashes the full window on the main
	// CPU and extends it into PCR 17 before the PAL runs.
	if st.im.TwoStage() {
		p.Clock.Advance(p.Profile.CPUHashCost(slb.MaxLen), "cpu.hash")
		if _, err := palTPM.Extend(17, st.im.WindowMeasurement()); err != nil {
			return nil, fmt.Errorf("core: stage-2 extend: %w", err)
		}
	}
	// Additional PAL code above the 64 KB window: the preparatory code adds
	// it to the DEV and extends its measurement into PCR 17 before any of
	// it runs (Section 2.4).
	if st.im.HasExtra() {
		if err := st.ll.ExtendProtection(st.slbBase+uint32(slb.ExtraCodeOffset), len(st.im.Extra())); err != nil {
			return nil, fmt.Errorf("core: extending DEV over extra PAL code: %w", err)
		}
		p.Clock.Advance(p.Profile.CPUHashCost(len(st.im.Extra())), "cpu.hash")
		if _, err := palTPM.Extend(17, st.im.ExtraMeasurement()); err != nil {
			return nil, fmt.Errorf("core: extra-code extend: %w", err)
		}
	}
	identity := st.ll.PCR17
	if st.im.TwoStage() {
		identity = st.im.ExpectedPCR17TwoStage()
	}
	if st.im.HasExtra() {
		identity = tpm.ExtendDigest(identity, st.im.ExtraMeasurement())
	}
	env := &p.scratch.env
	err := env.Reinit(pal.EnvConfig{
		Clock:      p.Clock,
		Profile:    p.Profile,
		Mem:        p.Machine.Mem,
		Core:       p.Machine.BSP(),
		TPM:        palTPM,
		SLBBase:    st.slbBase,
		SLBLen:     st.im.Len(),
		Sandbox:    st.opts.Sandbox,
		HeapSize:   st.opts.HeapSize,
		Machine:    p.Machine,
		MaxPALTime: st.opts.MaxPALTime,
		Identity:   identity,
		ExtraLen:   len(st.im.Extra()),
	})
	if err != nil {
		return nil, err
	}
	st.env = env
	// Read inputs back from the input page — the PAL sees what is in
	// memory, not what the application intended to write.
	return p.Mod.ReadInputs(st.slbBase)
}

// writeOutputPage frames out with a 4-byte big-endian length prefix into the
// well-known output page. An oversized output is a PAL-level error (recorded
// in st.palErr); a memory fault is a session error.
func (st *sessionState) writeOutputPage(out []byte) error {
	if len(out) > slb.PageSize-4 {
		st.palErr = fmt.Errorf("core: PAL output of %d bytes exceeds the 4 KB output page", len(out))
		return nil
	}
	page := st.p.scratch.page
	if cap(page) < 4+len(out) {
		page = make([]byte, 4+len(out))
	}
	page = page[:4+len(out)]
	st.p.scratch.page = page
	page[0] = byte(len(out) >> 24)
	page[1] = byte(len(out) >> 16)
	page[2] = byte(len(out) >> 8)
	page[3] = byte(len(out))
	copy(page[4:], out)
	return st.p.Machine.Mem.Write(st.env.OutputAddr(), page)
}

// palExecBody initializes the SLB Core environment (stage-2/extra-code
// measurement, TPM driver at locality 2), runs the PAL, and writes its
// outputs to the well-known output page.
func palExecBody(st *sessionState) error {
	input, err := setupPALEnv(st)
	if err != nil {
		return err
	}
	env := st.env
	st.palOut, st.palErr = st.pl.Run(env, input)
	if st.palErr == nil && env.TimedOut() {
		// The SLB Core's timer fired during execution.
		st.palErr = pal.ErrPALTimeout
	}
	if st.palErr == nil && st.palOut == nil {
		st.palOut = env.Output()
	}
	env.ExitSandbox()
	// Outputs are written to the well-known page beyond the SLB.
	if st.palErr == nil {
		if err := st.writeOutputPage(st.palOut); err != nil {
			return err
		}
	}
	if v, err := env.PCR17(); err == nil {
		st.res.PCR17AtLaunch = v
	}
	return nil
}

// cleanupBody erases all PAL secrets from the SLB window while the launch
// protections are still in place. The erase is a scrub, not a blanket zero:
// the image region is restored to the pristine patched image bytes and the
// rest of the window is zeroed, both through the compare-based memory ops.
// That leaves the window in a fixed public state — pristine measured image
// followed by zeros — so no PAL-written byte survives (a "secret" identical
// to the public image bytes is not a secret), while an undisturbed session
// leaves the region's write generation untouched and the next SKINIT hits
// the measurement cache. Any PAL write into the window differs from that
// fixed state, gets scrubbed, and bumps the generation, forcing the next
// launch to re-hash. The abort path (zeroWindowTeardown) keeps the blanket
// zero: a failed session should not optimize for the next launch.
func cleanupBody(st *sessionState) error {
	if st.env != nil && st.env.Heap != nil {
		st.env.Heap.Wipe()
	}
	wipe := slb.MaxLen
	if int(st.slbBase)+wipe > st.p.Machine.Mem.Size() {
		wipe = st.p.Machine.Mem.Size() - int(st.slbBase)
	}
	img := st.im.Bytes()
	scrub := len(img)
	if scrub > wipe {
		scrub = wipe
	}
	if _, err := st.p.Machine.Mem.WriteIfChanged(st.slbBase, img[:scrub]); err != nil {
		return err
	}
	if wipe > scrub {
		if _, err := st.p.Machine.Mem.ZeroIfDirty(st.slbBase+uint32(scrub), wipe-scrub); err != nil {
			return err
		}
	}
	// The extra-code region lies outside the 64 KB measured window, so
	// zeroing it cannot disturb the measurement cache; it stays blanket-
	// zeroed (the post-session contract is an empty, DMA-accessible region).
	if st.im.HasExtra() {
		if err := st.p.Machine.Mem.Zero(st.slbBase+uint32(slb.ExtraCodeOffset), len(st.im.Extra())); err != nil {
			return err
		}
		// The preparatory code's DEV extension is cleared here; End() only
		// covers the primary 64 KB window.
		if err := st.p.Machine.Mem.DEVClear(st.slbBase+uint32(slb.ExtraCodeOffset), len(st.im.Extra())); err != nil {
			return err
		}
	}
	st.windowDirty = false
	return nil
}

// extendPCRBody extends inputs, outputs, nonce, and the terminator into
// PCR 17, closing the session's attestation chain.
func extendPCRBody(st *sessionState) error {
	// The SLB Core's driver only issues unauthorized commands (Extend,
	// PCRRead), so the cached client needs no per-session reseed.
	palTPM := st.p.scratch.slbClient
	st.res.InputDigest = palcrypto.SHA1Sum(st.opts.Input)
	if _, err := palTPM.Extend(17, st.res.InputDigest); err != nil {
		return err
	}
	st.res.OutputDigest = palcrypto.SHA1Sum(st.palOut)
	if _, err := palTPM.Extend(17, st.res.OutputDigest); err != nil {
		return err
	}
	if st.opts.Nonce != nil {
		if _, err := palTPM.Extend(17, *st.opts.Nonce); err != nil {
			return err
		}
	}
	if _, err := palTPM.Extend(17, slb.SessionTerminator); err != nil {
		return err
	}
	v, err := palTPM.PCRRead(17)
	if err != nil {
		return err
	}
	st.res.PCR17Final = v
	st.pcrOpen = false
	return nil
}

// resumeOSBody is the classic pipeline's orderly teardown, performed as a
// measured phase: restore the kernel context, end the launch, resume the
// OS. It clears the guards, so the deferred teardown sweep is a no-op.
func resumeOSBody(st *sessionState) error {
	st.p.Mod.RestoreKernelContext(st.p.Machine.BSP(), st.saved)
	if err := st.ll.End(); err != nil {
		return err
	}
	return st.p.Mod.ResumeOS(st.saved)
}

// resumeCoreBody is the partitioned pipeline's orderly teardown: the OS was
// never suspended, so only the launching core's context comes back.
func resumeCoreBody(st *sessionState) error {
	st.p.Mod.RestoreKernelContext(st.p.Machine.BSP(), st.saved)
	return st.ll.End()
}

// --- Abort teardowns --------------------------------------------------------

// zeroWindowTeardown erases the SLB region (window, parameter pages, extra
// code) after an abort, so neither inputs nor PAL state survive a failed
// session. Registered by init-slb; also invoked from launchTeardown so the
// erase happens before the launch protections drop. On an abort it runs
// even when the orderly cleanup already scrubbed the window: a failed
// session leaves a fully zeroed region, not the pristine image the scrub
// restores for the next launch's cache hit.
func zeroWindowTeardown(st *sessionState) {
	if st.windowWiped || (!st.windowDirty && !st.aborted) {
		return
	}
	st.windowDirty = false
	st.windowWiped = true
	wipe := slb.ParamAreaLen
	if int(st.slbBase)+wipe > st.p.Machine.Mem.Size() {
		wipe = st.p.Machine.Mem.Size() - int(st.slbBase)
	}
	st.p.Machine.Mem.Zero(st.slbBase, wipe)
	if st.im != nil && st.im.HasExtra() {
		st.p.Machine.Mem.Zero(st.slbBase+uint32(slb.ExtraCodeOffset), len(st.im.Extra()))
		st.p.Machine.Mem.DEVClear(st.slbBase+uint32(slb.ExtraCodeOffset), len(st.im.Extra()))
	}
}

// launchTeardown unwinds an open late launch after an abort: erase the
// window while it is still isolated, cap PCR 17 with the session terminator
// (an aborted session must never attest as complete), restore the kernel
// context, and end the launch. No-op once the orderly resume phase has run.
func launchTeardown(st *sessionState) {
	if st.ll == nil || st.ll.Ended() {
		return
	}
	zeroWindowTeardown(st)
	if st.pcrOpen {
		st.pcrOpen = false
		c := tpm.NewClient(st.p.Bus, tis.Locality2, []byte("slbcore-abort"))
		c.Extend(17, slb.SessionTerminator)
	}
	st.p.Mod.RestoreKernelContext(st.p.Machine.BSP(), st.saved)
	st.ll.End()
}

// resumeOSTeardown re-onlines the APs after an abort. No-op once ResumeOS
// has run (orderly or otherwise): SavedState tracks suspension.
func resumeOSTeardown(st *sessionState) {
	if st.saved == nil || !st.saved.Suspended() {
		return
	}
	st.p.Mod.ResumeOS(st.saved)
}

// --- Pipeline definitions ---------------------------------------------------

// classicPipeline is the paper's Figure 2 timeline.
var classicPipeline = sessionPipeline{
	name: "classic",
	phases: []phaseSpec{
		{name: "accept", body: acceptBody},
		{name: "init-slb", body: initSLBBody, teardown: zeroWindowTeardown},
		{name: "suspend-os", body: suspendOSBody, teardown: resumeOSTeardown},
		{name: "skinit", body: skinitBody, teardown: launchTeardown},
		{name: "pal-exec", body: palExecBody},
		{name: "cleanup", body: cleanupBody},
		{name: "extend-pcr", body: extendPCRBody},
		{name: "resume-os", body: resumeOSBody},
	},
}

// partitionedPipeline is the multicore variant ([19]): the OS keeps running
// on the other cores, so there is no suspend and no AP resume; the work the
// other cores retired during the session is absorbed afterwards.
var partitionedPipeline = sessionPipeline{
	name: "partitioned",
	phases: []phaseSpec{
		{name: "accept", body: acceptBody},
		{name: "init-slb", body: initSLBBody, teardown: zeroWindowTeardown},
		{name: "save-context", body: saveContextBody},
		{name: "skinit-partitioned", body: skinitPartitionedBody, teardown: launchTeardown},
		{name: "pal-exec", body: palExecBody},
		{name: "cleanup", body: cleanupBody},
		{name: "extend-pcr", body: extendPCRBody},
		{name: "resume-core", body: resumeCoreBody},
	},
	epilogue: func(st *sessionState) {
		// The other cores executed untrusted work for the whole session
		// duration: retire that work without advancing the clock again.
		otherCores := len(st.p.Machine.Cores()) - 1
		st.p.Kernel.AbsorbParallelWork(otherCores, st.res.Duration())
	},
}
