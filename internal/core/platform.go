// Package core orchestrates Flicker sessions end to end: it owns the
// simulated platform (TPM, machine, untrusted kernel, flicker-module) and
// implements the Figure 2 timeline — accept SLB and inputs, initialize,
// suspend the OS, SKINIT, run the PAL under the SLB Core, clean up, extend
// PCR 17, resume the OS, and return the outputs.
package core

import (
	"fmt"
	"sync"
	"time"

	"flicker/internal/flickermod"
	"flicker/internal/hw/cpu"
	"flicker/internal/hw/tis"
	"flicker/internal/kernel"
	"flicker/internal/metrics"
	"flicker/internal/pal"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// PlatformConfig describes a simulated Flicker platform.
type PlatformConfig struct {
	// Cores is the machine's core count (default 2, like the paper's
	// Athlon64 X2 test machine).
	Cores int
	// MemSize is the physical memory size (default 32 MB).
	MemSize int
	// Profile is the latency profile (default ProfileBroadcom).
	Profile *simtime.Profile
	// Seed makes the whole platform deterministic (default "flicker").
	Seed string
	// TPMKeyBits sets the TPM key size (default 512 for speed; latency is
	// simulated regardless).
	TPMKeyBits int
	// NoiseFraction, if > 0, adds deterministic latency jitter (e.g. 0.01).
	NoiseFraction float64
	// Metrics and Events, if non-nil, are used instead of freshly created
	// instances — the sharded session pool passes one shared pair so N
	// platforms fold into a single registry and event log (Registry
	// instruments are fetch-or-register, so shards share counters).
	Metrics *metrics.Registry
	Events  *metrics.EventLog
}

// Platform is a fully assembled simulated machine running the untrusted OS
// with the flicker-module loaded.
type Platform struct {
	Clock   *simtime.Clock
	Profile *simtime.Profile
	TPM     *tpm.TPM
	Bus     *tis.Bus
	Machine *cpu.Machine
	Kernel  *kernel.Kernel
	Mod     *flickermod.Module

	// Metrics is the platform-wide registry every simulated layer reports
	// into (TPM dispatch, TIS arbitration, DMA/DEV, SKINIT, sessions);
	// `flicker serve` exposes it. Events is the bounded security event log
	// (DEV violations, PCR-17 resets, locality faults, session aborts).
	Metrics *metrics.Registry
	Events  *metrics.EventLog

	// traceTag pins the active session's distributed-trace ID for the
	// layers below the pipeline (sessions are serialized, so one tag per
	// platform is exact).
	traceTag *metrics.TraceTag

	mu       sync.Mutex
	registry map[tpm.Digest]*registeredPAL
	seq      int

	// imageCache memoizes built SLB images by PAL identity and link
	// options, so repeated sessions for the same PAL do not relink the
	// image on the hot path.
	imageCache     map[imageKey]*slb.Image
	imageBuilds    int
	imageCacheHits int

	// observability and aggregate statistics (see observer.go).
	observers        []Observer
	sessionSeq       uint64
	sessionDurations []time.Duration
	phaseTotal       map[string]time.Duration
	sessionsAborted  int
	abortsByPhase    map[string]int

	// sessionMu serializes Flicker sessions — classic and partitioned
	// alike: the flicker-module owns a single SLB buffer and the machine
	// supports one late launch at a time, so concurrent callers queue here
	// exactly as concurrent ioctls against the real module would.
	sessionMu sync.Mutex

	// scratch is per-session state reused across runs, guarded by sessionMu
	// like the rest of the session path. It is what makes a warm session
	// (near-)zero-alloc: the session state, observer list, PAL environment,
	// locality-2 TPM drivers, and output-page framing buffer all persist
	// across sessions. SessionResult and response frames are NEVER pooled —
	// callers retain those.
	scratch struct {
		st        sessionState
		obs       []Observer
		env       pal.Env
		palClient *tpm.Client // PAL's locality-2 driver, reseeded per session
		slbClient *tpm.Client // SLB Core's locality-2 driver (unauth commands)
		seed      []byte      // per-session client nonce-seed scratch
		page      []byte      // output-page framing scratch
		chargeFn  func(simtime.Charge)
	}
}

type registeredPAL struct {
	p     pal.PAL
	image *slb.Image
	opts  SessionOptions
	// bytesKey caches SHA-1 over the image's current bytes, valid while the
	// image's patch generation still equals bytesGen. LaunchByMeasurement's
	// fallback consults it instead of rehashing every registered image's
	// full bytes on each lookup miss.
	bytesKey tpm.Digest
	bytesGen uint64
}

// currentBytesKey returns the digest of the image's current bytes,
// recomputing it only when the image was patched since the last call.
// Callers hold p.mu.
func (r *registeredPAL) currentBytesKey() tpm.Digest {
	if g := r.image.PatchGen(); r.bytesGen != g {
		r.bytesKey = palcrypto.SHA1Sum(r.image.Bytes())
		r.bytesGen = g
	}
	return r.bytesKey
}

// imageKey identifies a built SLB image: the PAL's measured identity (name,
// code, extra code) plus the link options that change the image bytes.
type imageKey struct {
	name     string
	code     tpm.Digest
	extra    tpm.Digest
	hasExtra bool
	twoStage bool
}

// NewPlatform boots a platform: TPM, machine, kernel, flicker-module.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = 32 << 20
	}
	if cfg.Profile == nil {
		cfg.Profile = simtime.ProfileBroadcom()
	}
	if cfg.Seed == "" {
		cfg.Seed = "flicker"
	}
	var clock *simtime.Clock
	if cfg.NoiseFraction > 0 {
		clock = simtime.NewWithNoise(0xF11C4E2, cfg.NoiseFraction)
	} else {
		clock = simtime.New()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	events := cfg.Events
	if events == nil {
		// A platform-private log is stamped with this platform's simulated
		// clock; a shared log keeps whatever time source it was built with.
		events = metrics.NewEventLog(0).WithNow(clock.Now)
	}
	tp, err := tpm.New(clock, cfg.Profile, tpm.Options{
		Seed:    []byte("tpm|" + cfg.Seed),
		KeyBits: cfg.TPMKeyBits,
	})
	if err != nil {
		return nil, fmt.Errorf("core: TPM: %w", err)
	}
	tp.Instrument(reg, events)
	traceTag := metrics.NewTraceTag()
	tp.SetTraceTag(traceTag)
	bus := tis.NewBus(tp)
	bus.Instrument(reg, events)
	machine, err := cpu.NewMachine(clock, cfg.Profile, bus, cpu.Config{
		Cores:   cfg.Cores,
		MemSize: cfg.MemSize,
	})
	if err != nil {
		return nil, fmt.Errorf("core: machine: %w", err)
	}
	machine.Instrument(reg, events)
	machine.Mem.Instrument(reg, events)
	k, err := kernel.Boot(machine, clock, cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: kernel: %w", err)
	}
	mod, err := flickermod.Load(k, machine)
	if err != nil {
		return nil, fmt.Errorf("core: flicker-module: %w", err)
	}
	p := &Platform{
		Clock:         clock,
		Profile:       cfg.Profile,
		TPM:           tp,
		Bus:           bus,
		Machine:       machine,
		Kernel:        k,
		Mod:           mod,
		Metrics:       reg,
		Events:        events,
		traceTag:      traceTag,
		registry:      make(map[tpm.Digest]*registeredPAL),
		imageCache:    make(map[imageKey]*slb.Image),
		phaseTotal:    make(map[string]time.Duration),
		abortsByPhase: make(map[string]int),
	}
	p.scratch.palClient = tpm.NewClient(bus, tis.Locality2, []byte("pal-tpm"))
	p.scratch.slbClient = tpm.NewClient(bus, tis.Locality2, []byte("slbcore-extend"))
	p.AddObserver(newMetricsBridge(reg, events))
	mod.SetLauncher(p)
	return p, nil
}

// OSTPM returns a TPM driver at locality 0 — the untrusted OS's TSS stack
// (used by the tqd to generate quotes after a session).
func (p *Platform) OSTPM() *tpm.Client {
	p.mu.Lock()
	p.seq++
	seed := fmt.Sprintf("os-tpm-%d", p.seq)
	p.mu.Unlock()
	return tpm.NewClient(p.Bus, tis.Locality0, []byte(seed))
}

// BuildImage builds (and caches nothing) the SLB image for a PAL under the
// given options, so verifiers can compute expected measurements.
func BuildImage(pl pal.PAL, twoStage bool) (*slb.Image, error) {
	code := slb.PALCode{Name: pl.Name(), Code: pl.Code()}
	if lp, ok := pl.(pal.LargePAL); ok {
		code.Extra = lp.ExtraCode()
	}
	if twoStage {
		return slb.BuildTwoStage(code)
	}
	return slb.Build(code)
}

// imageFor returns the SLB image for a PAL, reusing a cached build when the
// PAL's identity and link options match a previous session. The image bytes
// are a pure function of (name, code, extra, twoStage), so a cache hit is
// measurement-identical to a fresh link.
func (p *Platform) imageFor(pl pal.PAL, twoStage bool) (*slb.Image, error) {
	key := imageKey{
		name:     pl.Name(),
		code:     palcrypto.SHA1Sum(pl.Code()),
		twoStage: twoStage,
	}
	if lp, ok := pl.(pal.LargePAL); ok {
		key.extra = palcrypto.SHA1Sum(lp.ExtraCode())
		key.hasExtra = true
	}
	p.mu.Lock()
	im, ok := p.imageCache[key]
	if ok {
		p.imageCacheHits++
	}
	p.mu.Unlock()
	if ok {
		return im, nil
	}
	im, err := BuildImage(pl, twoStage)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.imageBuilds++
	p.imageCache[key] = im
	p.mu.Unlock()
	return im, nil
}

// nextSessionID allocates a platform-unique session id.
func (p *Platform) nextSessionID() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sessionSeq++
	return p.sessionSeq
}

// nextSeq allocates a deterministic per-platform sequence number (TPM
// client seeds).
func (p *Platform) nextSeq() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	return p.seq
}

// RegisterPAL associates a PAL with its image bytes so the sysfs control
// path can find the behavior for a staged SLB. It returns the image.
func (p *Platform) RegisterPAL(pl pal.PAL, opts SessionOptions) (*slb.Image, error) {
	im, err := p.imageFor(pl, opts.TwoStage)
	if err != nil {
		return nil, err
	}
	opts.image = im
	key := palcrypto.SHA1Sum(im.Bytes())
	p.mu.Lock()
	p.registry[key] = &registeredPAL{
		p: pl, image: im, opts: opts,
		bytesKey: key, bytesGen: im.PatchGen(),
	}
	p.mu.Unlock()
	return im, nil
}

// LaunchByMeasurement implements flickermod.Launcher: it runs a session for
// a registered SLB identified by the hash of its unpatched bytes. The
// registered prebuilt image is reused — the hot path never relinks.
func (p *Platform) LaunchByMeasurement(key [20]byte, inputs []byte) ([]byte, error) {
	p.mu.Lock()
	reg, ok := p.registry[key]
	if !ok {
		// The staged bytes may be a registered image that was patched in
		// place after registration (slb_base is stable): match on the
		// image's current bytes via the per-entry digest cache, which only
		// rehashes an image whose patch generation moved.
		for _, r := range p.registry {
			if r.currentBytesKey() == key {
				reg, ok = r, true
				break
			}
		}
	}
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no PAL registered for SLB hash %x", key[:8])
	}
	opts := reg.opts
	opts.Input = inputs
	res, err := p.RunSession(reg.p, opts)
	if err != nil {
		return nil, err
	}
	if res.PALError != nil {
		return nil, fmt.Errorf("core: PAL failed: %w", res.PALError)
	}
	return res.Outputs, nil
}
