// Package metrics is a dependency-free, concurrency-safe metrics registry
// for the Flicker platform simulation: counters, gauges, and fixed-bucket
// histograms, all supporting label pairs (TPM ordinal, device name, phase).
//
// The paper's evaluation (Section 7) is built on per-operation measurement —
// TPM command latencies, SKINIT cost, session overhead. The registry is how
// every layer of the simulation reports those measurements in a form an
// external monitor can scrape: expose.go renders the Prometheus text format
// and a JSON snapshot, and `flicker serve` puts both on an HTTP endpoint.
//
// All instruments are nil-safe: methods on a nil *Registry return detached
// instruments that record into themselves but appear in no exposition, so
// uninstrumented components cost one pointer and no branches at call sites.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind discriminates the metric families a registry holds.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the kind as the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultLatencyBuckets are the fixed histogram bounds (in seconds) used for
// every latency histogram in the simulation. They span the paper's measured
// range: sub-millisecond SKINIT state changes up to the ~900 ms Unseal on
// the Broadcom TPM (Table 4).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Seconds converts a simulated duration to the float seconds histograms
// observe (the Prometheus base unit).
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Registry holds named metric families. The zero value is not usable; use
// NewRegistry. A nil *Registry is usable everywhere and registers nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// family is one named metric with its labeled series.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
	sorder []string
}

// series is one label-value combination of a family.
type series struct {
	labelValues []string

	mu    sync.Mutex
	value float64  // counter / gauge
	count uint64   // histogram observations
	sum   float64  // histogram sum
	binds []uint64 // histogram cumulative-from-zero per-bound counts

	// Lock-free per-shard cells attached via Cell(); folded into the above
	// at every read point (see cells.go). Appended under mu, then only read
	// under mu — the cells themselves are atomic.
	counterCells   []*counterCell
	histogramCells []*histogramCell

	// exemplars holds the most recent trace-annotated observation per
	// bucket (index len(binds) is the +Inf bucket). Allocated lazily on the
	// first ObserveExemplar so untraced histograms pay nothing.
	exemplars []exemplar
}

// exemplar links one histogram bucket to a concrete trace: the last traced
// observation that landed in the bucket, OpenMetrics-style.
type exemplar struct {
	traceID string
	value   float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the named family, creating it on first use. Re-registering
// a name with a different kind or label arity panics: that is a programming
// error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []string) *family {
	if r == nil {
		return &family{name: name, help: help, kind: kind, labels: labels,
			buckets: buckets, series: make(map[string]*series)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q re-registered as %v/%d labels (was %v/%d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		buckets: buckets, series: make(map[string]*series)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// with returns the series for one label-value combination, creating it on
// first use.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.binds = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
		f.sorder = append(f.sorder, key)
	}
	return s
}

// --- Counters ---------------------------------------------------------------

// CounterVec is a counter family; With selects a labeled series.
type CounterVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, nil, labels)}
}

// With returns the counter for the given label values (in declaration order).
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.with(values)}
}

// Counter is a monotonically increasing value. A cell-backed counter (see
// Cell) adds without locking; Value always folds every cell in.
type Counter struct {
	s    *series
	cell *counterCell
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be >= 0).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("metrics: counter decrease")
	}
	if c.cell != nil {
		c.cell.add(delta)
		return
	}
	c.s.mu.Lock()
	c.s.value += delta
	c.s.mu.Unlock()
}

// Value returns the current count, including every attached cell.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.foldValueLocked()
}

// --- Gauges -----------------------------------------------------------------

// GaugeVec is a gauge family; With selects a labeled series.
type GaugeVec struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, nil, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.with(values)}
}

// Gauge is a value that can move in both directions. A cell-backed gauge
// (see Cell) supports the delta operations without locking.
type Gauge struct {
	s    *series
	cell *counterCell
}

// Set stores v. Set through a cell-backed gauge panics: a cell is one
// shard's slice of the value, and an absolute store has no fold semantics.
func (g *Gauge) Set(v float64) {
	if g.cell != nil {
		panic("metrics: Set on a cell-backed gauge")
	}
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g.cell != nil {
		g.cell.add(delta)
		return
	}
	g.s.mu.Lock()
	g.s.value += delta
	g.s.mu.Unlock()
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value, including every attached cell.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.foldValueLocked()
}

// --- Histograms -------------------------------------------------------------

// HistogramVec is a histogram family; With selects a labeled series.
type HistogramVec struct{ f *family }

// Histogram registers (or fetches) a histogram family with the given bucket
// upper bounds (nil means DefaultLatencyBuckets). Bounds must be sorted
// ascending; a terminal +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %q buckets not ascending", name))
		}
	}
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, buckets, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.with(values), buckets: v.f.buckets}
}

// Histogram accumulates observations into fixed buckets. A cell-backed
// histogram (see Cell) observes without locking; exemplars still pin under
// the series lock.
type Histogram struct {
	s       *series
	buckets []float64
	cell    *histogramCell
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.observe(v, "") }

// ObserveExemplar records one sample and, when traceID is non-empty, pins
// it as the exemplar of the bucket it lands in — the breadcrumb that links
// a fat latency bucket to a concrete trace in /traces/{id}. An empty
// traceID behaves exactly like Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) { h.observe(v, traceID) }

// ObserveDuration records a simulated duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(Seconds(d)) }

// ObserveDurationExemplar is ObserveDuration with an exemplar trace ID.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.observe(Seconds(d), traceID)
}

func (h *Histogram) observe(v float64, traceID string) {
	if h.cell != nil {
		h.cell.observe(v, h.buckets)
		if traceID != "" {
			h.s.mu.Lock()
			slot := len(h.buckets)
			for i, b := range h.buckets {
				if v <= b {
					slot = i
					break
				}
			}
			if h.s.exemplars == nil {
				h.s.exemplars = make([]exemplar, len(h.buckets)+1)
			}
			h.s.exemplars[slot] = exemplar{traceID: traceID, value: v}
			h.s.mu.Unlock()
		}
		return
	}
	h.s.mu.Lock()
	h.s.count++
	h.s.sum += v
	// slot is the non-cumulative bucket the sample falls in; the implicit
	// +Inf bucket is index len(buckets).
	slot := len(h.buckets)
	for i, b := range h.buckets {
		if v <= b {
			h.s.binds[i]++
			if i < slot {
				slot = i
			}
		}
	}
	if traceID != "" {
		if h.s.exemplars == nil {
			h.s.exemplars = make([]exemplar, len(h.buckets)+1)
		}
		h.s.exemplars[slot] = exemplar{traceID: traceID, value: v}
	}
	h.s.mu.Unlock()
}

// Count returns the number of observations, including every attached cell.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	count, _, _ := h.s.foldHistogramLocked()
	return count
}

// Sum returns the sum of all observations, including every attached cell.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	_, sum, _ := h.s.foldHistogramLocked()
	return sum
}

// snapshotFamilies returns the registry's families in registration order.
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.families[n])
	}
	return out
}

// snapshotSeries returns a family's series in first-use order.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.sorder))
	for _, k := range f.sorder {
		out = append(out, f.series[k])
	}
	return out
}

// labelPairs renders sorted name="value" pairs for exposition. %q escapes
// quotes, backslashes, and newlines exactly as the Prometheus text format
// requires.
func labelPairs(names, values []string, extra ...string) string {
	var parts []string
	for i, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%q", n, values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}
