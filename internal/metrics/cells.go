package metrics

// Lock-free accumulation cells. A cell is a private, atomically updated
// shard of a series: each pool shard (or per-shard platform component)
// calls Cell() on its cached handle once and then increments without ever
// touching the series mutex, so the shared registry stops being a
// cross-shard serialization point on the session hot path. The owning
// series folds every attached cell back in under its own lock at read time
// (Value/Count/Sum, Prometheus exposition, JSON snapshot), so exposition
// totals are exactly what the un-celled instruments would have produced.
//
// Cells are for long-lived cached handles — one per shard per series, made
// at Instrument time. Per-event With().Cell() on a cold path would grow an
// unbounded cell list; cold paths should keep using the locked instruments.
//
// A scrape that races an in-flight histogram observation may see the cell's
// count without its sum (or a bucket without the count): each field is
// independently atomic. The skew is bounded by the in-flight operation and
// is the standard monitoring trade for a lock-free write path.

import (
	"math"
	"sync/atomic"
)

// counterCell accumulates float64 deltas with CAS on the value's bit
// pattern (one writer or many, no locks either way).
type counterCell struct {
	bits atomic.Uint64
}

func (c *counterCell) add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *counterCell) load() float64 {
	return math.Float64frombits(c.bits.Load())
}

// histogramCell is a lock-free shard of a histogram series: observation
// count, sum (CAS on bits), and cumulative per-bound bucket counts.
type histogramCell struct {
	count   atomic.Uint64
	sumBits atomic.Uint64
	binds   []atomic.Uint64
}

func (c *histogramCell) observe(v float64, buckets []float64) {
	c.count.Add(1)
	for {
		old := c.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for i, b := range buckets {
		if v <= b {
			c.binds[i].Add(1)
		}
	}
}

// Cell returns a counter backed by a new lock-free cell attached to the
// same series. Writes through the returned handle never take the series
// lock; reads anywhere (Value, scrape, snapshot) include them.
func (c *Counter) Cell() *Counter {
	cell := &counterCell{}
	c.s.mu.Lock()
	c.s.counterCells = append(c.s.counterCells, cell)
	c.s.mu.Unlock()
	return &Counter{s: c.s, cell: cell}
}

// Cell returns a gauge backed by a new lock-free cell attached to the same
// series. Only the delta operations (Add/Inc/Dec) work through a cell —
// Set has no meaning when several shards each hold a private slice of the
// value, and panics.
func (g *Gauge) Cell() *Gauge {
	cell := &counterCell{}
	g.s.mu.Lock()
	g.s.counterCells = append(g.s.counterCells, cell)
	g.s.mu.Unlock()
	return &Gauge{s: g.s, cell: cell}
}

// Cell returns a histogram backed by a new lock-free cell attached to the
// same series. Exemplar-annotated observations still pin the exemplar under
// the series lock (they are rare, traced-only events); the count, sum, and
// bucket increments stay lock-free.
func (h *Histogram) Cell() *Histogram {
	cell := &histogramCell{binds: make([]atomic.Uint64, len(h.buckets))}
	h.s.mu.Lock()
	h.s.histogramCells = append(h.s.histogramCells, cell)
	h.s.mu.Unlock()
	return &Histogram{s: h.s, buckets: h.buckets, cell: cell}
}

// foldValueLocked returns the series value including every attached cell.
// The caller holds s.mu.
func (s *series) foldValueLocked() float64 {
	v := s.value
	for _, c := range s.counterCells {
		v += c.load()
	}
	return v
}

// foldHistogramLocked returns count, sum, and cumulative bucket counts
// including every attached cell. The caller holds s.mu; binds is freshly
// allocated (read paths are cold).
func (s *series) foldHistogramLocked() (count uint64, sum float64, binds []uint64) {
	count, sum = s.count, s.sum
	binds = append([]uint64(nil), s.binds...)
	for _, c := range s.histogramCells {
		count += c.count.Load()
		sum += math.Float64frombits(c.sumBits.Load())
		for i := range c.binds {
			binds[i] += c.binds[i].Load()
		}
	}
	return count, sum, binds
}
