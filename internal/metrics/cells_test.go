package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterCellFold: writes through cells and the plain handle land in
// one exposition total.
func TestCounterCellFold(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Counter("cell_test_total", "h", "shard")
	base := vec.With("a")
	c1 := base.Cell()
	c2 := base.Cell()
	base.Add(1)
	c1.Add(2)
	c2.Add(3)
	if got := base.Value(); got != 6 {
		t.Fatalf("folded Value = %v, want 6", got)
	}
	if got := c1.Value(); got != 6 {
		t.Fatalf("cell handle Value = %v, want 6 (reads always fold)", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `cell_test_total{shard="a"} 6`) {
		t.Fatalf("exposition missing folded total:\n%s", b.String())
	}
}

// TestHistogramCellFold: cell observations fold into count, sum, buckets,
// and both exposition formats.
func TestHistogramCellFold(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cell_hist_seconds", "h", []float64{1, 10}).With()
	cell := h.Cell()
	h.Observe(0.5)
	cell.Observe(5)
	cell.Observe(50)
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got != 55.5 {
		t.Fatalf("Sum = %v, want 55.5", got)
	}
	snap := reg.Snapshot()
	ss := snap.Families[0].Series[0]
	if ss.Count != 3 || ss.Buckets[0] != 1 || ss.Buckets[1] != 2 {
		t.Fatalf("snapshot fold wrong: count=%d buckets=%v", ss.Count, ss.Buckets)
	}
}

// TestGaugeCellDeltas: delta ops work through cells; Set panics.
func TestGaugeCellDeltas(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("cell_gauge", "h").With()
	cell := g.Cell()
	cell.Inc()
	cell.Inc()
	cell.Dec()
	g.Add(10)
	if got := g.Value(); got != 11 {
		t.Fatalf("folded gauge = %v, want 11", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set on a cell-backed gauge did not panic")
		}
	}()
	cell.Set(1)
}

// TestCellConcurrent hammers one series through per-goroutine cells — the
// shape of per-shard platforms reporting into one registry — and checks
// the fold under the race detector.
func TestCellConcurrent(t *testing.T) {
	reg := NewRegistry()
	base := reg.Counter("cell_conc_total", "h").With()
	hist := reg.Histogram("cell_conc_seconds", "h", []float64{1}).With()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := base.Cell()
		hc := hist.Cell()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				hc.Observe(0.5)
			}
		}()
	}
	// Concurrent scrapes must see consistent (monotonic, folded) state.
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := base.Value(); got != workers*perWorker {
		t.Fatalf("folded counter = %v, want %d", got, workers*perWorker)
	}
	if got := hist.Count(); got != workers*perWorker {
		t.Fatalf("folded histogram count = %d, want %d", got, workers*perWorker)
	}
}
