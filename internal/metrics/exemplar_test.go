package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, "op").With("x")

	h.ObserveExemplar(0.005, "00000000000000aa") // second bucket
	h.ObserveExemplar(5.0, "00000000000000bb")   // +Inf bucket
	h.Observe(0.006)                             // untraced: must not disturb exemplars
	h.ObserveExemplar(0.007, "")                 // empty ID behaves like Observe

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `lat_seconds_bucket{le="0.01",op="x"} 3 # {trace_id="00000000000000aa"} 0.005`) {
		t.Fatalf("bucket exemplar missing:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_bucket{le="+Inf",op="x"} 4 # {trace_id="00000000000000bb"} 5`) {
		t.Fatalf("+Inf exemplar missing:\n%s", text)
	}
	if strings.Contains(text, `le="0.001",op="x"} 0 #`) {
		t.Fatalf("empty bucket grew an exemplar:\n%s", text)
	}

	snap := r.Snapshot()
	var ss *SeriesSnapshot
	for i := range snap.Families {
		if snap.Families[i].Name == "lat_seconds" {
			ss = &snap.Families[i].Series[0]
		}
	}
	if ss == nil || len(ss.Exemplars) != 2 {
		t.Fatalf("snapshot exemplars: %+v", ss)
	}
	if ss.Exemplars[0].Bound != "0.01" || ss.Exemplars[0].TraceID != "00000000000000aa" {
		t.Fatalf("snapshot exemplar[0]: %+v", ss.Exemplars[0])
	}
	if ss.Exemplars[1].Bound != "+Inf" || ss.Exemplars[1].Value != 5 {
		t.Fatalf("snapshot exemplar[1]: %+v", ss.Exemplars[1])
	}
}

func TestHistogramExemplarOverwrite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "d", []float64{1}).With()
	h.ObserveDurationExemplar(500*time.Millisecond, "0000000000000001")
	h.ObserveDurationExemplar(600*time.Millisecond, "0000000000000002")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="0000000000000002"} 0.6`) {
		t.Fatalf("latest exemplar should win:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "0000000000000001") {
		t.Fatalf("stale exemplar survived:\n%s", sb.String())
	}
}

func TestTraceTag(t *testing.T) {
	var nilTag *TraceTag
	nilTag.Set("x")
	nilTag.Clear()
	if nilTag.Get() != "" {
		t.Fatal("nil tag returned a value")
	}
	tag := NewTraceTag()
	if tag.Get() != "" {
		t.Fatal("fresh tag not empty")
	}
	tag.Set("00000000000000ff")
	if tag.Get() != "00000000000000ff" {
		t.Fatal("tag lost value")
	}
	tag.Clear()
	if tag.Get() != "" {
		t.Fatal("tag not cleared")
	}
}

func TestEventLogTraceLink(t *testing.T) {
	l := NewEventLog(4)
	l.RecordTrace(EventHostEvicted, "host0: quote mismatch", "00000000000000cc")
	l.Record(EventSessionAbort, "plain")
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("events: %d", len(evs))
	}
	if evs[0].TraceID != "00000000000000cc" || evs[0].Kind != EventHostEvicted {
		t.Fatalf("trace link lost: %+v", evs[0])
	}
	if evs[1].TraceID != "" {
		t.Fatalf("plain record grew a trace: %+v", evs[1])
	}
}
