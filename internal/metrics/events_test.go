package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Record(EventDEVViolation, "v")
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	// Oldest two were evicted: sequence numbers 3, 4, 5 remain in order.
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
	if got := l.TotalRecorded(); got != 5 {
		t.Fatalf("TotalRecorded = %d, want 5", got)
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestEventLogKindsAndNow(t *testing.T) {
	now := 42 * time.Millisecond
	l := NewEventLog(0).WithNow(func() time.Duration { return now })
	l.Record(EventPCR17Reset, "skinit")
	l.Record(EventLocalityFault, "busy")
	l.Record(EventPCR17Reset, "skinit again")
	resets := l.EventsByKind(EventPCR17Reset)
	if len(resets) != 2 {
		t.Fatalf("resets = %d, want 2", len(resets))
	}
	if resets[0].At != now {
		t.Fatalf("At = %v, want %v", resets[0].At, now)
	}
}

func TestNilEventLog(t *testing.T) {
	var l *EventLog
	l.Record(EventSessionAbort, "x") // must not panic
	if l.Events() != nil || l.Len() != 0 || l.TotalRecorded() != 0 {
		t.Fatal("nil log should report nothing")
	}
	if l.WithNow(func() time.Duration { return 0 }) != nil {
		t.Fatal("nil WithNow should stay nil")
	}
}

func TestEventLogConcurrency(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(EventDEVViolation, "hammer")
				if i%50 == 0 {
					l.Events()
				}
			}
		}()
	}
	wg.Wait()
	if got := l.TotalRecorded(); got != 1600 {
		t.Fatalf("TotalRecorded = %d, want 1600", got)
	}
	if got := l.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}
