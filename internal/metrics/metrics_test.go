package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("tpm_commands_total", "TPM commands.", "ordinal", "code")
	v.With("extend", "0").Inc()
	v.With("extend", "0").Add(2)
	v.With("seal", "1").Inc()
	if got := v.With("extend", "0").Value(); got != 3 {
		t.Fatalf("extend counter = %v, want 3", got)
	}
	if got := v.With("seal", "1").Value(); got != 1 {
		t.Fatalf("seal counter = %v, want 1", got)
	}
	// Re-registering the same family returns the same series.
	v2 := r.Counter("tpm_commands_total", "TPM commands.", "ordinal", "code")
	if got := v2.With("extend", "0").Value(); got != 3 {
		t.Fatalf("re-registered counter = %v, want 3", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sessions_active", "Active sessions.").With()
	g.Set(5)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, "op").With("x")
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5) // beyond the last bound: only +Inf
	h.ObserveDuration(2 * time.Millisecond)
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.001",op="x"} 1`,
		`lat_seconds_bucket{le="0.01",op="x"} 3`,
		`lat_seconds_bucket{le="0.1",op="x"} 3`,
		`lat_seconds_bucket{le="+Inf",op="x"} 4`,
		`lat_seconds_count{op="x"} 4`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusHeadersForEmptyFamilies(t *testing.T) {
	// A registered family with no series still shows its HELP/TYPE header,
	// so a scrape reveals what the platform *can* emit.
	r := NewRegistry()
	r.Counter("dev_violations_total", "DEV-blocked DMA.", "device")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE dev_violations_total counter") {
		t.Fatalf("missing empty-family header in:\n%s", b.String())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", "k").With("v").Add(7)
	r.Histogram("h_seconds", "h", []float64{1}, "k").With("v").Observe(0.5)
	snap := r.Snapshot()
	if len(snap.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(snap.Families))
	}
	if snap.Families[0].Series[0].Value != 7 {
		t.Fatalf("counter snapshot = %v, want 7", snap.Families[0].Series[0].Value)
	}
	hs := snap.Families[1].Series[0]
	if hs.Count != 1 || hs.Buckets[0] != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x").With()
	c.Inc()
	if got := c.Value(); got != 1 {
		t.Fatalf("nil-registry counter = %v, want 1", got)
	}
	r.Histogram("y_seconds", "y", nil).With().Observe(0.1)
	r.Gauge("z", "z").With().Set(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry exposed %q", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "esc", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines (run
// under -race in CI): concurrent series creation, updates, and scrapes.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			names := []string{"a", "b", "c"}
			cv := r.Counter("conc_total", "c", "op")
			hv := r.Histogram("conc_seconds", "h", nil, "op")
			gv := r.Gauge("conc_gauge", "g", "op")
			for i := 0; i < 500; i++ {
				op := names[(id+i)%len(names)]
				cv.With(op).Inc()
				hv.With(op).Observe(float64(i) / 1000)
				gv.With(op).Set(float64(i))
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, op := range []string{"a", "b", "c"} {
		total += r.Counter("conc_total", "c", "op").With(op).Value()
	}
	if total != workers*500 {
		t.Fatalf("total = %v, want %d", total, workers*500)
	}
}
