package metrics

// Exposition: the Prometheus text format (for scraping monitors) and a JSON
// snapshot (for the `flicker serve` /stats endpoint and programmatic reads).

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order with their
// HELP/TYPE headers even when no series exist yet, so a scrape always shows
// which families the platform can emit.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			if err := f.writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of a family.
func (f *family) writeSeries(w io.Writer, s *series) error {
	s.mu.Lock()
	value := s.foldValueLocked()
	count, sum, binds := s.foldHistogramLocked()
	exemplars := append([]exemplar(nil), s.exemplars...)
	s.mu.Unlock()

	switch f.kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelPairs(f.labels, s.labelValues), formatFloat(value))
		return err
	case KindHistogram:
		for i, b := range f.buckets {
			le := strconv.FormatFloat(b, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				f.name, labelPairs(f.labels, s.labelValues, "le", le), binds[i],
				exemplarSuffix(exemplars, i)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			f.name, labelPairs(f.labels, s.labelValues, "le", "+Inf"), count,
			exemplarSuffix(exemplars, len(f.buckets))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelPairs(f.labels, s.labelValues), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelPairs(f.labels, s.labelValues), count)
		return err
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus clients do: integral
// values without an exponent or trailing zeros.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// exemplarSuffix renders a bucket line's OpenMetrics-style exemplar
// (" # {trace_id=\"...\"} value"), or "" when the bucket holds none. The
// suffix follows the sample value, so scrapers that key on the line prefix
// are unaffected.
func exemplarSuffix(exemplars []exemplar, i int) string {
	if i >= len(exemplars) || exemplars[i].traceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", exemplars[i].traceID, formatFloat(exemplars[i].value))
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family in a Snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled series in a FamilySnapshot. Value is set for
// counters and gauges; Count/Sum/Buckets for histograms (Buckets holds the
// cumulative count per upper bound, in DefaultLatencyBuckets order).
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Bounds  []float64         `json:"bounds,omitempty"`
	Buckets []uint64          `json:"buckets,omitempty"`
	// Exemplars links buckets to recent traces: one entry per bucket that
	// holds a trace-annotated observation (Bound "+Inf" for the overflow
	// bucket).
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// ExemplarSnapshot is one bucket's exemplar in a SeriesSnapshot.
type ExemplarSnapshot struct {
	Bound   string  `json:"le"`
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Snapshot captures every family and series for programmatic consumption.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.snapshotFamilies() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		for _, s := range f.snapshotSeries() {
			s.mu.Lock()
			count, sum, binds := s.foldHistogramLocked()
			ss := SeriesSnapshot{
				Value: s.foldValueLocked(),
				Count: count,
				Sum:   sum,
			}
			if f.kind == KindHistogram {
				ss.Bounds = append([]float64(nil), f.buckets...)
				ss.Buckets = binds
				for i, ex := range s.exemplars {
					if ex.traceID == "" {
						continue
					}
					le := "+Inf"
					if i < len(f.buckets) {
						le = strconv.FormatFloat(f.buckets[i], 'g', -1, 64)
					}
					ss.Exemplars = append(ss.Exemplars, ExemplarSnapshot{
						Bound: le, TraceID: ex.traceID, Value: ex.value,
					})
				}
			}
			s.mu.Unlock()
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					ss.Labels[n] = s.labelValues[i]
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
