package metrics

import "sync"

// TraceTag carries the active trace ID across a layer boundary that cannot
// see the tracer itself: the platform pins the current session's trace ID
// here (sessions on one platform are serialized), and deep layers — the TPM
// command dispatcher — read it to attach exemplars to their latency
// histograms with exact attribution. It lives in this package because
// every simulated layer may import metrics, while internal/trace sits above
// internal/core in the import graph.
//
// All methods are safe on a nil *TraceTag, so untraced platforms pay one
// pointer check.
type TraceTag struct {
	mu sync.Mutex
	id string
}

// NewTraceTag returns an empty tag.
func NewTraceTag() *TraceTag { return &TraceTag{} }

// Set pins the active trace ID.
func (t *TraceTag) Set(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// Clear unpins the tag.
func (t *TraceTag) Clear() { t.Set("") }

// Get returns the active trace ID, or "".
func (t *TraceTag) Get() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}
