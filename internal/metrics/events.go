package metrics

// The security event log: a bounded ring buffer of security-relevant
// occurrences (DEV-blocked DMA, PCR-17 resets, locality faults, session
// aborts, SKINIT precondition violations). The paper's adversary model
// (Section 3.1) makes these the events a deployment must be able to audit;
// tests and `flicker serve` query the log, and the hardware layers record
// into it through the same nil-safe discipline as the registry.

import (
	"sync"
	"time"
)

// Event kinds recorded by the platform layers.
const (
	// EventDEVViolation is a device DMA transaction rejected by the DEV.
	EventDEVViolation = "dev-violation"
	// EventPCR17Reset is a locality-4 hash-sequence start resetting the
	// dynamic PCRs (the SKINIT measurement path).
	EventPCR17Reset = "pcr17-reset"
	// EventLocalityFault is a TIS access-arbitration rejection or a TPM
	// command refused with a bad-locality result code.
	EventLocalityFault = "locality-fault"
	// EventSessionAbort is a session torn down by an infrastructure failure.
	EventSessionAbort = "session-abort"
	// EventSKINITFault is a rejected SKINIT (precondition violation).
	EventSKINITFault = "skinit-fault"
	// EventHostEvicted is a fabric member evicted by the controller (missed
	// heartbeats or a failed re-attestation).
	EventHostEvicted = "host-evicted"
)

// Event is one security-relevant occurrence.
type Event struct {
	// Seq is the monotonically increasing sequence number (1-based over the
	// log's lifetime, so gaps at the front reveal ring-buffer eviction).
	Seq uint64 `json:"seq"`
	// At is the simulated time of the event (zero when the recording layer
	// has no clock).
	At time.Duration `json:"at_ns"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
	// TraceID links the event to the trace that was active when it was
	// recorded (empty when none) — e.g. an eviction event points at its
	// re-attestation trace in /traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// EventLog is a bounded ring buffer of Events, safe for concurrent use.
// A nil *EventLog ignores records and reports no events.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	start int // index of the oldest event
	n     int // number of valid events
	seq   uint64
	now   func() time.Duration
}

// NewEventLog creates a log retaining the most recent cap events (cap <= 0
// defaults to 256).
func NewEventLog(cap int) *EventLog {
	if cap <= 0 {
		cap = 256
	}
	return &EventLog{buf: make([]Event, cap)}
}

// WithNow installs a simulated-time source used to stamp Event.At (the
// platform passes its Clock.Now). Returns the log for chaining.
func (l *EventLog) WithNow(now func() time.Duration) *EventLog {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
	return l
}

// Record appends an event, evicting the oldest when full.
func (l *EventLog) Record(kind, detail string) { l.RecordTrace(kind, detail, "") }

// RecordTrace is Record with a trace-ID link for events that occur while a
// trace is in scope.
func (l *EventLog) RecordTrace(kind, detail, traceID string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev := Event{Seq: l.seq, Kind: kind, Detail: detail, TraceID: traceID}
	if l.now != nil {
		ev.At = l.now()
	}
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = ev
		l.n++
	} else {
		l.buf[l.start] = ev
		l.start = (l.start + 1) % len(l.buf)
	}
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.start+i)%len(l.buf)])
	}
	return out
}

// EventsByKind returns the retained events of one kind, oldest first.
func (l *EventLog) EventsByKind(kind string) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// TotalRecorded returns how many events were ever recorded, including those
// evicted by the ring buffer.
func (l *EventLog) TotalRecorded() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
