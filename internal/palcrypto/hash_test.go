package palcrypto

import (
	"bytes"
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha512"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func hexEq(t *testing.T, got []byte, wantHex string) {
	t.Helper()
	if gh := hex.EncodeToString(got); gh != wantHex {
		t.Errorf("digest = %s, want %s", gh, wantHex)
	}
}

func TestSHA1Vectors(t *testing.T) {
	// FIPS 180-4 / RFC 3174 vectors.
	cases := []struct{ in, want string }{
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
		{strings.Repeat("a", 1000000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
	}
	for _, tc := range cases {
		d := SHA1Sum([]byte(tc.in))
		hexEq(t, d[:], tc.want)
	}
}

func TestMD5Vectors(t *testing.T) {
	// RFC 1321 Appendix A.5 vectors.
	cases := []struct{ in, want string }{
		{"", "d41d8cd98f00b204e9800998ecf8427e"},
		{"a", "0cc175b9c0f1b6a831c399e269772661"},
		{"abc", "900150983cd24fb0d6963f7d28e17f72"},
		{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
		{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
			"d174ab98d277d9f5a5611c2c9f419d9f"},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
			"57edf4a22be3c955ac49da2e2107b67a"},
	}
	for _, tc := range cases {
		d := MD5Sum([]byte(tc.in))
		hexEq(t, d[:], tc.want)
	}
}

func TestSHA512Vectors(t *testing.T) {
	// FIPS 180-4 vectors.
	cases := []struct{ in, want string }{
		{"", "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"},
		{"abc", "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"},
		{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
			"8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"},
	}
	for _, tc := range cases {
		d := SHA512Sum([]byte(tc.in))
		hexEq(t, d[:], tc.want)
	}
}

// Property: our implementations agree with the standard library on
// arbitrary inputs (including ones that straddle block boundaries).
func TestHashesMatchStdlib(t *testing.T) {
	f := func(data []byte) bool {
		s1 := SHA1Sum(data)
		w1 := sha1.Sum(data)
		m := MD5Sum(data)
		wm := md5.Sum(data)
		s5 := SHA512Sum(data)
		w5 := sha512.Sum512(data)
		return s1 == w1 && m == wm && s5 == w5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: streaming in arbitrary chunk splits equals one-shot hashing.
func TestStreamingEqualsOneShot(t *testing.T) {
	f := func(data []byte, splits []uint8) bool {
		h := NewSHA1()
		rest := data
		for _, s := range splits {
			if len(rest) == 0 {
				break
			}
			n := int(s) % (len(rest) + 1)
			h.Write(rest[:n])
			rest = rest[n:]
		}
		h.Write(rest)
		want := SHA1Sum(data)
		return bytes.Equal(h.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	h := NewSHA1()
	h.Write([]byte("hello "))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("repeated Sum differs")
	}
	h.Write([]byte("world"))
	want := SHA1Sum([]byte("hello world"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Fatal("Sum disturbed streaming state")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	for _, h := range []Hash{NewSHA1(), NewMD5(), NewSHA512()} {
		h.Write([]byte("garbage"))
		h.Reset()
		h.Write([]byte("abc"))
		fresh := map[int]string{
			SHA1Size:   "a9993e364706816aba3e25717850c26c9cd0d89d",
			MD5Size:    "900150983cd24fb0d6963f7d28e17f72",
			SHA512Size: "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
		}
		hexEq(t, h.Sum(nil), fresh[h.Size()])
	}
}

func TestBlockBoundaryLengths(t *testing.T) {
	// Exercise every length around the SHA-1/MD5 padding boundary and the
	// SHA-512 one; compare against stdlib.
	for n := 50; n <= 70; n++ {
		data := bytes.Repeat([]byte{0xA5}, n)
		if SHA1Sum(data) != sha1.Sum(data) {
			t.Errorf("sha1 mismatch at len %d", n)
		}
		if MD5Sum(data) != md5.Sum(data) {
			t.Errorf("md5 mismatch at len %d", n)
		}
	}
	for n := 110; n <= 132; n++ {
		data := bytes.Repeat([]byte{0x3C}, n)
		if SHA512Sum(data) != sha512.Sum512(data) {
			t.Errorf("sha512 mismatch at len %d", n)
		}
	}
}
