// Package palcrypto is the from-scratch cryptographic module library that a
// PAL links against, mirroring the paper's "Crypto" module (Figure 6: RSA,
// SHA-1, SHA-512, MD5, AES, RC4, multi-precision integers). Everything here
// is implemented directly from the relevant specifications rather than
// delegating to crypto/*, because in the real system this code *is* part of
// the measured TCB and its size is part of the paper's accounting.
//
// The implementations are tested against FIPS / RFC test vectors and
// cross-checked against the standard library in the test suite.
package palcrypto

import "encoding/binary"

// SHA1Size is the size of a SHA-1 digest in bytes.
const SHA1Size = 20

// SHA1BlockSize is the block size of SHA-1 in bytes.
const SHA1BlockSize = 64

// SHA1 is a streaming SHA-1 hash (FIPS 180-4). The zero value is NOT ready
// to use; call NewSHA1.
type SHA1 struct {
	h   [5]uint32
	x   [SHA1BlockSize]byte
	nx  int
	len uint64
}

// NewSHA1 returns a new SHA-1 hash state.
func NewSHA1() *SHA1 {
	s := &SHA1{}
	s.Reset()
	return s
}

// Reset returns the hash to its initial state.
func (s *SHA1) Reset() {
	s.h = [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	s.nx = 0
	s.len = 0
}

// Write absorbs p into the hash state. It never fails.
func (s *SHA1) Write(p []byte) (int, error) {
	n := len(p)
	s.len += uint64(n)
	if s.nx > 0 {
		c := copy(s.x[s.nx:], p)
		s.nx += c
		if s.nx == SHA1BlockSize {
			s.block(s.x[:])
			s.nx = 0
		}
		p = p[c:]
	}
	if full := len(p) &^ (SHA1BlockSize - 1); full > 0 {
		s.block(p[:full])
		p = p[full:]
	}
	if len(p) > 0 {
		s.nx = copy(s.x[:], p)
	}
	return n, nil
}

// Sum appends the current digest to b without disturbing the running state.
func (s *SHA1) Sum(b []byte) []byte {
	var out [SHA1Size]byte
	s.sumInto(&out)
	return append(b, out[:]...)
}

// SumInto writes the current digest into out without disturbing the running
// state and without touching the heap — the hot-path form of Sum for the
// per-command digests a warm session computes dozens of times.
func (s *SHA1) SumInto(out *[SHA1Size]byte) { s.sumInto(out) }

func (s *SHA1) sumInto(out *[SHA1Size]byte) {
	d := *s // copy so callers can keep writing
	var pad [SHA1BlockSize + 8]byte
	pad[0] = 0x80
	msgLen := d.len
	var padLen int
	if rem := int(msgLen % SHA1BlockSize); rem < 56 {
		padLen = 56 - rem
	} else {
		padLen = 64 + 56 - rem
	}
	d.Write(pad[:padLen])
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], msgLen<<3)
	d.Write(lenBytes[:])
	if d.nx != 0 {
		panic("palcrypto: sha1 padding error")
	}
	for i, v := range d.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
}

// Size returns SHA1Size.
func (s *SHA1) Size() int { return SHA1Size }

// BlockSize returns SHA1BlockSize.
func (s *SHA1) BlockSize() int { return SHA1BlockSize }

// Round constants, one per 20-round group (FIPS 180-4 §4.2.1).
const (
	sha1K0 = 0x5A827999
	sha1K1 = 0x6ED9EBA1
	sha1K2 = 0x8F1BBCDC
	sha1K3 = 0xCA62C1D6
)

// block compresses one or more full 64-byte blocks of p into the state. The
// message schedule is precomputed per 20-round group and the round switch is
// split into four straight-line loops so the round function and constant are
// compile-time known in each — this function dominates SKINIT measurement
// cost, so it is the hottest code in the whole simulator.
func (s *SHA1) block(p []byte) {
	var w [80]uint32
	h0, h1, h2, h3, h4 := s.h[0], s.h[1], s.h[2], s.h[3], s.h[4]
	for len(p) >= SHA1BlockSize {
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(p[i*4:])
		}
		for i := 16; i < 80; i++ {
			t := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
			w[i] = t<<1 | t>>31
		}
		a, b, c, d, e := h0, h1, h2, h3, h4
		for i := 0; i < 20; i++ {
			f := (b & c) | (^b & d)
			t := (a<<5 | a>>27) + f + e + sha1K0 + w[i]
			e, d, c, b, a = d, c, (b<<30 | b>>2), a, t
		}
		for i := 20; i < 40; i++ {
			f := b ^ c ^ d
			t := (a<<5 | a>>27) + f + e + sha1K1 + w[i]
			e, d, c, b, a = d, c, (b<<30 | b>>2), a, t
		}
		for i := 40; i < 60; i++ {
			f := (b & c) | (b & d) | (c & d)
			t := (a<<5 | a>>27) + f + e + sha1K2 + w[i]
			e, d, c, b, a = d, c, (b<<30 | b>>2), a, t
		}
		for i := 60; i < 80; i++ {
			f := b ^ c ^ d
			t := (a<<5 | a>>27) + f + e + sha1K3 + w[i]
			e, d, c, b, a = d, c, (b<<30 | b>>2), a, t
		}
		h0 += a
		h1 += b
		h2 += c
		h3 += d
		h4 += e
		p = p[SHA1BlockSize:]
	}
	s.h[0], s.h[1], s.h[2], s.h[3], s.h[4] = h0, h1, h2, h3, h4
}

// SHA1Sum computes the SHA-1 digest of data in one shot. The state lives on
// the caller's stack, so a one-shot digest costs no heap allocation.
func SHA1Sum(data []byte) [SHA1Size]byte {
	var s SHA1
	s.Reset()
	s.Write(data)
	var out [SHA1Size]byte
	s.sumInto(&out)
	return out
}
