package palcrypto

import (
	"encoding/binary"
	"math"
)

// MD5Size is the size of an MD5 digest in bytes.
const MD5Size = 16

// MD5BlockSize is the block size of MD5 in bytes.
const MD5BlockSize = 64

// MD5 is a streaming MD5 hash (RFC 1321). MD5 is present because the SSH
// application's server-side password file uses md5crypt (see md5crypt.go),
// exactly as in the paper's Figure 7 protocol; it is not intended for any
// collision-resistant use.
type MD5 struct {
	h   [4]uint32
	x   [MD5BlockSize]byte
	nx  int
	len uint64
}

// NewMD5 returns a new MD5 hash state.
func NewMD5() *MD5 {
	m := &MD5{}
	m.Reset()
	return m
}

// Reset returns the hash to its initial state.
func (m *MD5) Reset() {
	m.h = [4]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476}
	m.nx = 0
	m.len = 0
}

// Write absorbs p into the hash state. It never fails.
func (m *MD5) Write(p []byte) (int, error) {
	n := len(p)
	m.len += uint64(n)
	if m.nx > 0 {
		c := copy(m.x[m.nx:], p)
		m.nx += c
		if m.nx == MD5BlockSize {
			m.block(m.x[:])
			m.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= MD5BlockSize {
		m.block(p[:MD5BlockSize])
		p = p[MD5BlockSize:]
	}
	if len(p) > 0 {
		m.nx = copy(m.x[:], p)
	}
	return n, nil
}

// Sum appends the current digest to b without disturbing the running state.
func (m *MD5) Sum(b []byte) []byte {
	d := *m
	var pad [MD5BlockSize + 8]byte
	pad[0] = 0x80
	msgLen := d.len
	var padLen int
	if rem := int(msgLen % MD5BlockSize); rem < 56 {
		padLen = 56 - rem
	} else {
		padLen = 64 + 56 - rem
	}
	d.Write(pad[:padLen])
	var lenBytes [8]byte
	binary.LittleEndian.PutUint64(lenBytes[:], msgLen<<3)
	d.Write(lenBytes[:])
	var out [MD5Size]byte
	for i, v := range d.h {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return append(b, out[:]...)
}

// Size returns MD5Size.
func (m *MD5) Size() int { return MD5Size }

// BlockSize returns MD5BlockSize.
func (m *MD5) BlockSize() int { return MD5BlockSize }

// md5T is the RFC 1321 sine-derived constant table, built at init time so
// the table itself is self-evidently correct.
var md5T = func() [64]uint32 {
	var t [64]uint32
	for i := range t {
		t[i] = uint32(math.Floor(4294967296 * math.Abs(math.Sin(float64(i+1)))))
	}
	return t
}()

var md5Shift = [4][4]uint{
	{7, 12, 17, 22},
	{5, 9, 14, 20},
	{4, 11, 16, 23},
	{6, 10, 15, 21},
}

func (m *MD5) block(p []byte) {
	var x [16]uint32
	for i := 0; i < 16; i++ {
		x[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	a, b, c, d := m.h[0], m.h[1], m.h[2], m.h[3]
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (b & c) | (^b & d)
			g = i
		case i < 32:
			f = (d & b) | (^d & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ d
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^d)
			g = (7 * i) % 16
		}
		sh := md5Shift[i/16][i%4]
		t := a + f + md5T[i] + x[g]
		a, d, c, b = d, c, b, b+(t<<sh|t>>(32-sh))
	}
	m.h[0] += a
	m.h[1] += b
	m.h[2] += c
	m.h[3] += d
}

// MD5Sum computes the MD5 digest of data in one shot.
func MD5Sum(data []byte) [MD5Size]byte {
	m := NewMD5()
	m.Write(data)
	var out [MD5Size]byte
	copy(out[:], m.Sum(nil))
	return out
}
