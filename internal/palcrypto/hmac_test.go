package palcrypto

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func TestHMACSHA1RFC2202Vectors(t *testing.T) {
	cases := []struct {
		key, data []byte
		want      string
	}{
		{bytes.Repeat([]byte{0x0b}, 20), []byte("Hi There"),
			"b617318655057264e28bc0b6fb378c8ef146be00"},
		{[]byte("Jefe"), []byte("what do ya want for nothing?"),
			"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
		{bytes.Repeat([]byte{0xaa}, 20), bytes.Repeat([]byte{0xdd}, 50),
			"125d7342b9ac11cd91a39af48aa17b4f63f175d3"},
		// Key longer than the block size.
		{bytes.Repeat([]byte{0xaa}, 80), []byte("Test Using Larger Than Block-Size Key - Hash Key First"),
			"aa4ae5e15272d00e95705637ce8a3b55ed402112"},
	}
	for i, tc := range cases {
		got := HMACSHA1(tc.key, tc.data)
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("case %d: got %x, want %s", i, got, tc.want)
		}
	}
}

func TestHMACMatchesStdlib(t *testing.T) {
	f := func(key, data []byte) bool {
		ours := HMACSHA1(key, data)
		std := hmac.New(sha1.New, key)
		std.Write(data)
		return bytes.Equal(ours[:], std.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHMACResetReuse(t *testing.T) {
	m := NewHMAC(func() Hash { return NewSHA1() }, []byte("key"))
	m.Write([]byte("one"))
	first := m.Sum(nil)
	m.Reset()
	m.Write([]byte("one"))
	second := m.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Reset did not restore keyed state")
	}
	want := HMACSHA1([]byte("key"), []byte("one"))
	if !bytes.Equal(first, want[:]) {
		t.Fatal("streaming HMAC differs from one-shot")
	}
}

func TestHMACOverSHA512(t *testing.T) {
	// RFC 4231 test case 2 for HMAC-SHA-512.
	m := NewHMAC(func() Hash { return NewSHA512() }, []byte("Jefe"))
	m.Write([]byte("what do ya want for nothing?"))
	want := "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea2505549758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
	if got := hex.EncodeToString(m.Sum(nil)); got != want {
		t.Fatalf("HMAC-SHA512 = %s, want %s", got, want)
	}
}

func TestConstantTimeEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"", "x", false},
		{strings.Repeat("z", 1000), strings.Repeat("z", 1000), true},
	}
	for _, tc := range cases {
		if got := ConstantTimeEqual([]byte(tc.a), []byte(tc.b)); got != tc.want {
			t.Errorf("ConstantTimeEqual(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestConstantTimeEqualProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		return ConstantTimeEqual(a, b) == bytes.Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
