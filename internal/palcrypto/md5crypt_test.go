package palcrypto

import (
	"strings"
	"testing"
	"testing/quick"
)

// Reference entries generated with `openssl passwd -1 -salt <salt> <pw>`,
// which implements the canonical crypt(3) $1$ algorithm.
func TestMD5CryptReferenceVectors(t *testing.T) {
	cases := []struct{ password, salt, want string }{
		{"0.s0.l33t", "deadbeef", "$1$deadbeef$0Huu6KHrKLVWfqa4WljDE0"},
		{"password", "saltsalt", "$1$saltsalt$qjXMvbEw8oaL.CzflDtaK/"},
		{"pa55w0rd.longer-than-16-chars", "Vxu1bkBV", "$1$Vxu1bkBV$jtRCWLdFOIbZxhCy1ZDQP1"},
	}
	for _, tc := range cases {
		if got := MD5Crypt(tc.password, tc.salt); got != tc.want {
			t.Errorf("MD5Crypt(%q, %q) = %q, want %q", tc.password, tc.salt, got, tc.want)
		}
	}
}

func TestMD5CryptSaltNormalization(t *testing.T) {
	want := MD5Crypt("secret", "abcd1234")
	// A "$1$" prefix and trailing "$..." must be stripped from the salt.
	if got := MD5Crypt("secret", "$1$abcd1234$whatever"); got != want {
		t.Errorf("prefixed salt produced %q, want %q", got, want)
	}
	// Salts longer than 8 characters are truncated.
	if got := MD5Crypt("secret", "abcd1234EXTRA"); got != want {
		t.Errorf("long salt produced %q, want %q", got, want)
	}
}

func TestMD5CryptVerify(t *testing.T) {
	stored := MD5Crypt("hunter2", "aaaaaaaa")
	ok, err := MD5CryptVerify("hunter2", stored)
	if err != nil || !ok {
		t.Fatalf("verify correct password: ok=%v err=%v", ok, err)
	}
	ok, err = MD5CryptVerify("hunter3", stored)
	if err != nil || ok {
		t.Fatalf("verify wrong password: ok=%v err=%v", ok, err)
	}
	if _, err := MD5CryptVerify("x", "$6$notmd5$zzz"); err == nil {
		t.Fatal("accepted non-$1$ entry")
	}
	if _, err := MD5CryptVerify("x", "$1$nodollar"); err == nil {
		t.Fatal("accepted malformed entry without hash separator")
	}
}

func TestMD5CryptOutputShape(t *testing.T) {
	f := func(pw string, saltSeed uint32) bool {
		if len(pw) > 64 {
			pw = pw[:64]
		}
		salt := ""
		for i := 0; i < 8; i++ {
			salt += string(itoa64[(saltSeed>>(i*4))&0x3f&63])
		}
		out := MD5Crypt(pw, salt)
		if !strings.HasPrefix(out, "$1$"+salt+"$") {
			return false
		}
		hash := out[len("$1$"+salt+"$"):]
		if len(hash) != 22 {
			return false
		}
		for _, c := range hash {
			if !strings.ContainsRune(itoa64, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMD5CryptDistinctPasswordsDistinctHashes(t *testing.T) {
	a := MD5Crypt("password-a", "somesalt")
	b := MD5Crypt("password-b", "somesalt")
	c := MD5Crypt("password-a", "othrsalt")
	if a == b {
		t.Error("different passwords hashed identically")
	}
	if a == c {
		t.Error("different salts hashed identically")
	}
}
