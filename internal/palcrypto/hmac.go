package palcrypto

// Hash is the minimal hash interface the PAL crypto library exposes; it is
// structurally compatible with hash.Hash but avoids importing it so the PAL
// TCB surface stays self-contained.
type Hash interface {
	Write(p []byte) (int, error)
	Sum(b []byte) []byte
	Reset()
	Size() int
	BlockSize() int
}

// HMAC implements RFC 2104 over any Hash constructor.
type HMAC struct {
	outer, inner Hash
	ipad, opad   []byte
	size         int
}

// NewHMAC returns an HMAC keyed with key over the hash returned by newHash.
// TPM 1.2 authorization sessions (OIAP/OSAP) use HMAC-SHA1, and the
// distributed-computing PAL uses HMAC-SHA1 for state chaining.
func NewHMAC(newHash func() Hash, key []byte) *HMAC {
	inner, outer := newHash(), newHash()
	bs := inner.BlockSize()
	if len(key) > bs {
		h := newHash()
		h.Write(key)
		key = h.Sum(nil)
	}
	ipad := make([]byte, bs)
	opad := make([]byte, bs)
	copy(ipad, key)
	copy(opad, key)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	m := &HMAC{outer: outer, inner: inner, ipad: ipad, opad: opad, size: inner.Size()}
	m.inner.Write(ipad)
	return m
}

// Write absorbs p into the MAC state.
func (m *HMAC) Write(p []byte) (int, error) { return m.inner.Write(p) }

// Sum appends the current MAC to b.
func (m *HMAC) Sum(b []byte) []byte {
	innerSum := m.inner.Sum(nil)
	m.outer.Reset()
	m.outer.Write(m.opad)
	m.outer.Write(innerSum)
	return m.outer.Sum(b)
}

// Reset rewinds the MAC to its freshly-keyed state.
func (m *HMAC) Reset() {
	m.inner.Reset()
	m.inner.Write(m.ipad)
}

// Size returns the MAC length in bytes.
func (m *HMAC) Size() int { return m.size }

// BlockSize returns the underlying hash block size.
func (m *HMAC) BlockSize() int { return m.inner.BlockSize() }

// HMACSHA1 computes an HMAC-SHA1 in one shot.
func HMACSHA1(key, msg []byte) [SHA1Size]byte {
	m := NewHMAC(func() Hash { return NewSHA1() }, key)
	m.Write(msg)
	var out [SHA1Size]byte
	copy(out[:], m.Sum(nil))
	return out
}

// ConstantTimeEqual compares two byte slices without early exit, so MAC and
// password-hash comparisons inside a PAL do not leak timing.
func ConstantTimeEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
