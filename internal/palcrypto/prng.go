package palcrypto

import "encoding/binary"

// PRNG is a deterministic pseudo-random generator built from SHA-1 in
// counter mode. The paper's PALs call TPM GetRandom once for 128 bytes and
// use it "to seed a pseudorandom number generator" (Section 7.4.1); this is
// that generator. Determinism given a seed keeps the whole simulation
// reproducible.
type PRNG struct {
	seed [SHA1Size]byte
	ctr  uint64
	buf  []byte
}

// NewPRNG creates a generator seeded with the given entropy.
func NewPRNG(seed []byte) *PRNG {
	p := &PRNG{}
	p.seed = SHA1Sum(seed)
	return p
}

// Read fills b with pseudo-random bytes. It never fails.
func (p *PRNG) Read(b []byte) (int, error) {
	n := len(b)
	for len(b) > 0 {
		if len(p.buf) == 0 {
			var block [SHA1Size + 8]byte
			copy(block[:], p.seed[:])
			binary.BigEndian.PutUint64(block[SHA1Size:], p.ctr)
			p.ctr++
			d := SHA1Sum(block[:])
			p.buf = d[:]
		}
		c := copy(b, p.buf)
		p.buf = p.buf[c:]
		b = b[c:]
	}
	return n, nil
}

// Bytes returns n fresh pseudo-random bytes.
func (p *PRNG) Bytes(n int) []byte {
	out := make([]byte, n)
	p.Read(out)
	return out
}

// Uint64 returns a pseudo-random 64-bit value.
func (p *PRNG) Uint64() uint64 {
	var b [8]byte
	p.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("palcrypto: Intn with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := p.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}
