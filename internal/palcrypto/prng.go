package palcrypto

import "encoding/binary"

// PRNG is a deterministic pseudo-random generator built from SHA-1 in
// counter mode. The paper's PALs call TPM GetRandom once for 128 bytes and
// use it "to seed a pseudorandom number generator" (Section 7.4.1); this is
// that generator. Determinism given a seed keeps the whole simulation
// reproducible.
type PRNG struct {
	seed [SHA1Size]byte
	ctr  uint64
	// block holds the current output block; off is how much of it has been
	// consumed. Keeping the block inline (rather than slicing a fresh
	// digest) keeps Read allocation-free — the generator backs every TPM
	// nonce and every PAL RNG on the session hot path.
	block [SHA1Size]byte
	off   int
}

// NewPRNG creates a generator seeded with the given entropy.
func NewPRNG(seed []byte) *PRNG {
	p := &PRNG{}
	p.Reseed(seed)
	return p
}

// Reseed resets the generator to the state NewPRNG(seed) would produce,
// reusing the receiver's storage.
func (p *PRNG) Reseed(seed []byte) {
	p.seed = SHA1Sum(seed)
	p.ctr = 0
	p.off = SHA1Size
}

// Read fills b with pseudo-random bytes. It never fails.
func (p *PRNG) Read(b []byte) (int, error) {
	n := len(b)
	for len(b) > 0 {
		if p.off == SHA1Size {
			var in [SHA1Size + 8]byte
			copy(in[:], p.seed[:])
			binary.BigEndian.PutUint64(in[SHA1Size:], p.ctr)
			p.ctr++
			p.block = SHA1Sum(in[:])
			p.off = 0
		}
		c := copy(b, p.block[p.off:])
		p.off += c
		b = b[c:]
	}
	return n, nil
}

// Bytes returns n fresh pseudo-random bytes.
func (p *PRNG) Bytes(n int) []byte {
	out := make([]byte, n)
	p.Read(out)
	return out
}

// Uint64 returns a pseudo-random 64-bit value.
func (p *PRNG) Uint64() uint64 {
	var b [8]byte
	p.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("palcrypto: Intn with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := p.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}
