package palcrypto

import (
	"bytes"
	"crypto/aes"
	stdrc4 "crypto/rc4"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestAESFIPS197Vectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		// FIPS-197 Appendix C.
		{"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
			"69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "00112233445566778899aabbccddeeff",
			"dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "00112233445566778899aabbccddeeff",
			"8ea2b7ca516745bfeafc49904b496089"},
		// FIPS-197 Appendix B.
		{"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734",
			"3925841d02dc09fbdc118597196a0b32"},
	}
	for i, tc := range cases {
		c, err := NewAES(mustHex(t, tc.key))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, mustHex(t, tc.pt))
		if hex.EncodeToString(got) != tc.ct {
			t.Errorf("case %d: encrypt = %x, want %s", i, got, tc.ct)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if hex.EncodeToString(back) != tc.pt {
			t.Errorf("case %d: decrypt = %x, want %s", i, back, tc.pt)
		}
	}
}

func TestAESInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33, 64} {
		if _, err := NewAES(make([]byte, n)); err == nil {
			t.Errorf("NewAES accepted %d-byte key", n)
		}
	}
}

// Property: our AES agrees with crypto/aes for random keys and blocks.
func TestAESMatchesStdlib(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		ours, err := NewAES(key[:])
		if err != nil {
			return false
		}
		std, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a, b := make([]byte, 16), make([]byte, 16)
		ours.Encrypt(a, block[:])
		std.Encrypt(b, block[:])
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAES256MatchesStdlib(t *testing.T) {
	f := func(key [32]byte, block [16]byte) bool {
		ours, _ := NewAES(key[:])
		std, _ := aes.NewCipher(key[:])
		a, b := make([]byte, 16), make([]byte, 16)
		ours.Encrypt(a, block[:])
		std.Encrypt(b, block[:])
		ours.Decrypt(a, a)
		return bytes.Equal(b[:0], b[:0]) && bytes.Equal(a, block[:]) && func() bool {
			ours.Encrypt(a, block[:])
			return bytes.Equal(a, b)
		}()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CTR keystream is an involution (encrypting twice restores).
func TestAESCTRInvolution(t *testing.T) {
	f := func(key [16]byte, iv [16]byte, data []byte) bool {
		c, _ := NewAES(key[:])
		buf := append([]byte(nil), data...)
		c.CTRKeystream(iv, buf)
		c.CTRKeystream(iv, buf)
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAESCTRDifferentIVsDiffer(t *testing.T) {
	c, _ := NewAES(make([]byte, 16))
	data := make([]byte, 64)
	a := append([]byte(nil), data...)
	b := append([]byte(nil), data...)
	c.CTRKeystream([16]byte{0: 1}, a)
	c.CTRKeystream([16]byte{0: 2}, b)
	if bytes.Equal(a, b) {
		t.Fatal("different IVs produced identical keystreams")
	}
}

func TestAESCTRCounterCarry(t *testing.T) {
	// An IV of all 0xFF must wrap without panicking and still decrypt.
	c, _ := NewAES(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	var iv [16]byte
	for i := range iv {
		iv[i] = 0xff
	}
	data := bytes.Repeat([]byte{0x42}, 80)
	buf := append([]byte(nil), data...)
	c.CTRKeystream(iv, buf)
	c.CTRKeystream(iv, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("CTR carry wrap broke round trip")
	}
}

func TestRC4Vectors(t *testing.T) {
	// Vectors from the original Usenet posting / RFC 6229 spot checks.
	cases := []struct{ key, pt, ct string }{
		{"0102030405", "0000000000000000", "b2396305f03dc027"},
		{"4b6579", "506c61696e74657874", "bbf316e8d940af0ad3"},
		{"57696b69", "7065646961", "1021bf0420"},
	}
	for i, tc := range cases {
		c, err := NewRC4(mustHex(t, tc.key))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		pt := mustHex(t, tc.pt)
		out := make([]byte, len(pt))
		c.XORKeyStream(out, pt)
		if hex.EncodeToString(out) != tc.ct {
			t.Errorf("case %d: got %x, want %s", i, out, tc.ct)
		}
	}
}

func TestRC4MatchesStdlib(t *testing.T) {
	f := func(key []byte, data []byte) bool {
		if len(key) == 0 || len(key) > 256 {
			return true
		}
		ours, err := NewRC4(key)
		if err != nil {
			return false
		}
		std, err := stdrc4.NewCipher(key)
		if err != nil {
			return false
		}
		a := make([]byte, len(data))
		b := make([]byte, len(data))
		ours.XORKeyStream(a, data)
		std.XORKeyStream(b, data)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRC4InvalidKey(t *testing.T) {
	if _, err := NewRC4(nil); err == nil {
		t.Error("NewRC4 accepted empty key")
	}
	if _, err := NewRC4(make([]byte, 257)); err == nil {
		t.Error("NewRC4 accepted 257-byte key")
	}
}

func TestRC4StreamContinuity(t *testing.T) {
	// Encrypting in two calls must equal encrypting in one.
	key := []byte("continuity-key")
	one, _ := NewRC4(key)
	two, _ := NewRC4(key)
	data := bytes.Repeat([]byte{0xAB}, 100)
	a := make([]byte, 100)
	one.XORKeyStream(a, data)
	b := make([]byte, 100)
	two.XORKeyStream(b[:37], data[:37])
	two.XORKeyStream(b[37:], data[37:])
	if !bytes.Equal(a, b) {
		t.Fatal("split keystream differs from contiguous keystream")
	}
}
