package palcrypto

import (
	"encoding/binary"
	"fmt"
)

// AESBlockSize is the AES block size in bytes.
const AESBlockSize = 16

// aesSbox is computed at init from the AES field inverse and affine map, so
// the table is derived rather than transcribed.
var aesSbox, aesInvSbox = func() (s [256]byte, inv [256]byte) {
	// Multiplicative inverse in GF(2^8) via exponentiation tables.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 256; i++ {
		exp[i%255] = x
		log[x] = byte(i % 255)
		x = gmul(x, 3)
	}
	invOf := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		v := invOf(byte(i))
		// Affine transformation.
		r := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		s[i] = r
		inv[r] = byte(i)
	}
	return
}()

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// gmul multiplies two elements of GF(2^8) with the AES polynomial 0x11b.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// AES is an AES-128/192/256 block cipher (FIPS 197). Only the block
// operation is exposed; modes (CTR, CBC-MAC style use) are built on top.
type AES struct {
	enc [][4]uint32 // round keys as columns
	nr  int
}

// NewAES creates an AES cipher for a 16-, 24-, or 32-byte key.
func NewAES(key []byte) (*AES, error) {
	var nk, nr int
	switch len(key) {
	case 16:
		nk, nr = 4, 10
	case 24:
		nk, nr = 6, 12
	case 32:
		nk, nr = 8, 14
	default:
		return nil, fmt.Errorf("palcrypto: invalid AES key size %d", len(key))
	}
	// Key expansion over words.
	nw := 4 * (nr + 1)
	w := make([]uint32, nw)
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1)
	for i := nk; i < nw; i++ {
		t := w[i-1]
		if i%nk == 0 {
			t = subWord(t<<8|t>>24) ^ rcon<<24
			rcon = uint32(gmul(byte(rcon), 2))
		} else if nk > 6 && i%nk == 4 {
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	a := &AES{nr: nr}
	a.enc = make([][4]uint32, nr+1)
	for r := 0; r <= nr; r++ {
		for c := 0; c < 4; c++ {
			a.enc[r][c] = w[4*r+c]
		}
	}
	return a, nil
}

func subWord(x uint32) uint32 {
	return uint32(aesSbox[x>>24])<<24 | uint32(aesSbox[x>>16&0xff])<<16 |
		uint32(aesSbox[x>>8&0xff])<<8 | uint32(aesSbox[x&0xff])
}

// BlockSize returns AESBlockSize.
func (a *AES) BlockSize() int { return AESBlockSize }

// state is the AES 4x4 byte state, column-major as in FIPS 197.
type aesState [16]byte

func (a *AES) addRoundKey(s *aesState, r int) {
	for c := 0; c < 4; c++ {
		k := a.enc[r][c]
		s[4*c+0] ^= byte(k >> 24)
		s[4*c+1] ^= byte(k >> 16)
		s[4*c+2] ^= byte(k >> 8)
		s[4*c+3] ^= byte(k)
	}
}

// Encrypt encrypts one 16-byte block from src into dst (may alias).
func (a *AES) Encrypt(dst, src []byte) {
	if len(src) < 16 || len(dst) < 16 {
		panic("palcrypto: AES block too short")
	}
	var s aesState
	copy(s[:], src[:16])
	a.addRoundKey(&s, 0)
	for r := 1; r < a.nr; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		a.addRoundKey(&s, r)
	}
	subBytes(&s)
	shiftRows(&s)
	a.addRoundKey(&s, a.nr)
	copy(dst[:16], s[:])
}

// Decrypt decrypts one 16-byte block from src into dst (may alias).
func (a *AES) Decrypt(dst, src []byte) {
	if len(src) < 16 || len(dst) < 16 {
		panic("palcrypto: AES block too short")
	}
	var s aesState
	copy(s[:], src[:16])
	a.addRoundKey(&s, a.nr)
	invShiftRows(&s)
	invSubBytes(&s)
	for r := a.nr - 1; r >= 1; r-- {
		a.addRoundKey(&s, r)
		invMixColumns(&s)
		invShiftRows(&s)
		invSubBytes(&s)
	}
	a.addRoundKey(&s, 0)
	copy(dst[:16], s[:])
}

func subBytes(s *aesState) {
	for i := range s {
		s[i] = aesSbox[s[i]]
	}
}

func invSubBytes(s *aesState) {
	for i := range s {
		s[i] = aesInvSbox[s[i]]
	}
}

// shiftRows operates on the column-major layout: byte (row r, col c) is at
// index 4*c+r.
func shiftRows(s *aesState) {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[c] = s[4*((c+r)%4)+r]
		}
		for c := 0; c < 4; c++ {
			s[4*c+r] = row[c]
		}
	}
}

func invShiftRows(s *aesState) {
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[c] = s[4*((c-r+4)%4)+r]
		}
		for c := 0; c < 4; c++ {
			s[4*c+r] = row[c]
		}
	}
}

func mixColumns(s *aesState) {
	for c := 0; c < 4; c++ {
		col := s[4*c : 4*c+4]
		a0, a1, a2, a3 := col[0], col[1], col[2], col[3]
		col[0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		col[1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		col[2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		col[3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

func invMixColumns(s *aesState) {
	for c := 0; c < 4; c++ {
		col := s[4*c : 4*c+4]
		a0, a1, a2, a3 := col[0], col[1], col[2], col[3]
		col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}

// CTRKeystream XORs data with the AES-CTR keystream for the given 16-byte
// IV, in place. CTR is used by the distributed-computing PAL to encrypt
// checkpointed state under its sealed symmetric key.
func (a *AES) CTRKeystream(iv [16]byte, data []byte) {
	var ctr, ks [16]byte
	ctr = iv
	for off := 0; off < len(data); off += 16 {
		a.Encrypt(ks[:], ctr[:])
		n := len(data) - off
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			data[off+i] ^= ks[i]
		}
		// Increment the counter big-endian.
		for i := 15; i >= 0; i-- {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
}
