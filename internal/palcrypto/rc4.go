package palcrypto

import "fmt"

// RC4 is the RC4 stream cipher. It is included for parity with the paper's
// crypto module inventory (Figure 6); new designs should prefer AES-CTR.
type RC4 struct {
	s    [256]byte
	i, j byte
}

// NewRC4 creates an RC4 cipher from a 1..256 byte key.
func NewRC4(key []byte) (*RC4, error) {
	if len(key) < 1 || len(key) > 256 {
		return nil, fmt.Errorf("palcrypto: invalid RC4 key size %d", len(key))
	}
	c := &RC4{}
	for i := 0; i < 256; i++ {
		c.s[i] = byte(i)
	}
	var j byte
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%len(key)]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// XORKeyStream XORs src with the keystream into dst (may alias src).
func (c *RC4) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("palcrypto: RC4 output shorter than input")
	}
	i, j := c.i, c.j
	for k, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}
