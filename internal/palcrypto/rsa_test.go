package palcrypto

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

// testKey generates a deterministic small-but-real RSA key once for the
// whole test file; 512-bit keys keep the suite fast while exercising every
// code path.
func testKey(t *testing.T) *RSAPrivateKey {
	t.Helper()
	key, err := GenerateRSAKey(NewPRNG([]byte("rsa-test-seed")), 512)
	if err != nil {
		t.Fatalf("GenerateRSAKey: %v", err)
	}
	return key
}

func TestGenerateRSAKeyProperties(t *testing.T) {
	key := testKey(t)
	if key.N.BitLen() != 512 {
		t.Errorf("modulus bit length = %d, want 512", key.N.BitLen())
	}
	if new(big.Int).Mul(key.P, key.Q).Cmp(key.N) != 0 {
		t.Error("N != P*Q")
	}
	// e*d == 1 mod lcm is implied by mod phi; check e*d mod (p-1) and (q-1).
	ed := new(big.Int).Mul(big.NewInt(int64(key.E)), key.D)
	for _, pm := range []*big.Int{new(big.Int).Sub(key.P, bigOne), new(big.Int).Sub(key.Q, bigOne)} {
		if new(big.Int).Mod(ed, pm).Cmp(bigOne) != 0 {
			t.Error("e*d != 1 mod (prime-1)")
		}
	}
	if !key.P.ProbablyPrime(20) || !key.Q.ProbablyPrime(20) {
		t.Error("factor not prime")
	}
}

func TestGenerateRSAKeyDeterministic(t *testing.T) {
	a, err := GenerateRSAKey(NewPRNG([]byte("same-seed")), 512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRSAKey(NewPRNG([]byte("same-seed")), 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(b.N) != 0 {
		t.Error("same seed produced different keys")
	}
	c, err := GenerateRSAKey(NewPRNG([]byte("diff-seed")), 512)
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(c.N) == 0 {
		t.Error("different seeds produced the same key")
	}
}

func TestGenerateRSAKeyTooSmall(t *testing.T) {
	if _, err := GenerateRSAKey(NewPRNG([]byte("x")), 64); err == nil {
		t.Fatal("accepted 64-bit modulus")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := testKey(t)
	rng := NewPRNG([]byte("enc"))
	msgs := [][]byte{
		{},
		[]byte("x"),
		[]byte("the user's password"),
		bytes.Repeat([]byte{0x00}, 20), // leading zeros must survive
		bytes.Repeat([]byte{0xff}, key.Size()-11),
	}
	for i, msg := range msgs {
		ct, err := EncryptPKCS1(rng, &key.RSAPublicKey, msg)
		if err != nil {
			t.Fatalf("msg %d: encrypt: %v", i, err)
		}
		if len(ct) != key.Size() {
			t.Errorf("msg %d: ciphertext length %d, want %d", i, len(ct), key.Size())
		}
		pt, err := DecryptPKCS1(key, ct)
		if err != nil {
			t.Fatalf("msg %d: decrypt: %v", i, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Errorf("msg %d: round trip got %x, want %x", i, pt, msg)
		}
	}
}

func TestEncryptTooLong(t *testing.T) {
	key := testKey(t)
	msg := make([]byte, key.Size()-10)
	if _, err := EncryptPKCS1(NewPRNG([]byte("e")), &key.RSAPublicKey, msg); err == nil {
		t.Fatal("accepted over-long message")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	key := testKey(t)
	// Wrong length.
	if _, err := DecryptPKCS1(key, make([]byte, 7)); err == nil {
		t.Error("accepted short ciphertext")
	}
	// c >= N.
	tooBig := key.N.Bytes()
	if _, err := DecryptPKCS1(key, tooBig); err == nil {
		t.Error("accepted c >= N")
	}
	// Random bytes should (overwhelmingly) fail padding checks.
	rng := NewPRNG([]byte("garbage"))
	fails := 0
	for i := 0; i < 20; i++ {
		ct := rng.Bytes(key.Size())
		ct[0] = 0 // keep it < N
		if _, err := DecryptPKCS1(key, ct); err != nil {
			fails++
		}
	}
	if fails < 19 {
		t.Errorf("only %d/20 random ciphertexts rejected", fails)
	}
}

func TestCiphertextNondeterministic(t *testing.T) {
	key := testKey(t)
	rng := NewPRNG([]byte("nd"))
	a, _ := EncryptPKCS1(rng, &key.RSAPublicKey, []byte("same message"))
	b, _ := EncryptPKCS1(rng, &key.RSAPublicKey, []byte("same message"))
	if bytes.Equal(a, b) {
		t.Fatal("PKCS1 encryption is deterministic (padding reuse)")
	}
}

func TestSignVerify(t *testing.T) {
	key := testKey(t)
	msg := []byte("certificate signing request")
	sig, err := SignPKCS1SHA1(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPKCS1SHA1(&key.RSAPublicKey, msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// Tampered message.
	if err := VerifyPKCS1SHA1(&key.RSAPublicKey, []byte("certificate signing requesT"), sig); err == nil {
		t.Error("tampered message accepted")
	}
	// Tampered signature.
	bad := append([]byte(nil), sig...)
	bad[len(bad)/2] ^= 1
	if err := VerifyPKCS1SHA1(&key.RSAPublicKey, msg, bad); err == nil {
		t.Error("tampered signature accepted")
	}
	// Wrong key.
	other, _ := GenerateRSAKey(NewPRNG([]byte("other")), 512)
	if err := VerifyPKCS1SHA1(&other.RSAPublicKey, msg, sig); err == nil {
		t.Error("signature accepted under wrong key")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	key := testKey(t)
	f := func(msg []byte) bool {
		sig, err := SignPKCS1SHA1(key, msg)
		if err != nil {
			return false
		}
		return VerifyPKCS1SHA1(&key.RSAPublicKey, msg, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	key := testKey(t)
	b := MarshalPublicKey(&key.RSAPublicKey)
	got, err := UnmarshalPublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(key.N) != 0 || got.E != key.E {
		t.Fatal("public key round trip mismatch")
	}
}

func TestPublicKeyUnmarshalRejects(t *testing.T) {
	key := testKey(t)
	good := MarshalPublicKey(&key.RSAPublicKey)
	cases := map[string][]byte{
		"empty":        {},
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte(nil), good...), 0),
		"even exp":     func() []byte { b := append([]byte(nil), good...); b[3] = 4; return b }(),
		"tiny modulus": {0, 1, 0, 1, 0, 0, 0, 1, 7},
	}
	for name, b := range cases {
		if _, err := UnmarshalPublicKey(b); err == nil {
			t.Errorf("%s: accepted malformed public key", name)
		}
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	key := testKey(t)
	b := MarshalPrivateKey(key)
	got, err := UnmarshalPrivateKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(key.N) != 0 || got.D.Cmp(key.D) != 0 {
		t.Fatal("private key round trip mismatch")
	}
	// The recomputed CRT parameters must still decrypt.
	ct, _ := EncryptPKCS1(NewPRNG([]byte("r")), &key.RSAPublicKey, []byte("sealed"))
	pt, err := DecryptPKCS1(got, ct)
	if err != nil || !bytes.Equal(pt, []byte("sealed")) {
		t.Fatalf("round-tripped key failed to decrypt: %v", err)
	}
}

func TestPrivateKeyUnmarshalRejectsInconsistent(t *testing.T) {
	key := testKey(t)
	b := MarshalPrivateKey(key)
	// Corrupt a middle byte of the N field; P*Q check must fail.
	b[10] ^= 0xff
	if _, err := UnmarshalPrivateKey(b); err == nil {
		t.Fatal("accepted inconsistent private key")
	}
	if _, err := UnmarshalPrivateKey(b[:5]); err == nil {
		t.Fatal("accepted truncated private key")
	}
}

func TestPRNGDeterministicAndDistinct(t *testing.T) {
	a := NewPRNG([]byte("seed")).Bytes(64)
	b := NewPRNG([]byte("seed")).Bytes(64)
	c := NewPRNG([]byte("tree")).Bytes(64)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different streams")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced the same stream")
	}
}

func TestPRNGReadSplitsEqualOneShot(t *testing.T) {
	one := NewPRNG([]byte("split")).Bytes(100)
	p := NewPRNG([]byte("split"))
	var parts []byte
	for _, n := range []int{1, 7, 19, 73} {
		parts = append(parts, p.Bytes(n)...)
	}
	if !bytes.Equal(one, parts) {
		t.Fatal("split reads differ from one-shot read")
	}
}

func TestPRNGIntn(t *testing.T) {
	p := NewPRNG([]byte("intn"))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := p.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("digit %d count %d grossly non-uniform", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	p.Intn(0)
}
