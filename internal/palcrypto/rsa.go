package palcrypto

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// RSAPublicKey is an RSA public key (n, e).
type RSAPublicKey struct {
	N *big.Int
	E int
}

// RSAPrivateKey is an RSA private key with CRT parameters.
type RSAPrivateKey struct {
	RSAPublicKey
	D    *big.Int
	P, Q *big.Int
	// CRT acceleration values.
	Dp, Dq, Qinv *big.Int
}

// Size returns the modulus length in bytes.
func (k *RSAPublicKey) Size() int { return (k.N.BitLen() + 7) / 8 }

// Zero wipes the private half of the key in place: every limb of the
// private exponent, the primes, and the CRT values is overwritten before
// the big.Ints are reset. PALs that recover a sealed key for one session
// (OpenChannel, the CA's issuance path) defer this so the key material is
// gone before the session returns to the untrusted OS — the paper's
// "erase all traces" obligation applied to heap state. The public half
// (n, e) is released anyway and stays intact.
func (k *RSAPrivateKey) Zero() {
	for _, x := range []*big.Int{k.D, k.P, k.Q, k.Dp, k.Dq, k.Qinv} {
		if x == nil {
			continue
		}
		limbs := x.Bits()
		for i := range limbs {
			limbs[i] = 0
		}
		x.SetInt64(0)
	}
}

var bigOne = big.NewInt(1)

// GenerateRSAKey generates an RSA keypair of the given modulus bit length
// using entropy from rand. Primes are produced by rejection sampling with
// Miller-Rabin testing (math/big's ProbablyPrime, which is a deterministic
// BPSW + MR combination for our sizes). e is fixed at 65537.
//
// The paper's Secure Channel and CA PALs generate 1024-bit keys inside a
// Flicker session seeded from TPM GetRandom; the key generation latency
// (185.7 ms in Figure 9a) is charged by the timing model, not by this code.
func GenerateRSAKey(rand io.Reader, bits int) (*RSAPrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("palcrypto: RSA modulus %d too small", bits)
	}
	e := 65537
	eBig := big.NewInt(int64(e))
	for attempts := 0; attempts < 1000; attempts++ {
		p, err := genPrime(rand, (bits+1)/2)
		if err != nil {
			return nil, err
		}
		q, err := genPrime(rand, bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, bigOne)
		qm1 := new(big.Int).Sub(q, bigOne)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int)
		if d.ModInverse(eBig, phi) == nil {
			continue // gcd(e, phi) != 1; pick new primes
		}
		key := &RSAPrivateKey{
			RSAPublicKey: RSAPublicKey{N: n, E: e},
			D:            d,
			P:            p,
			Q:            q,
			Dp:           new(big.Int).Mod(d, pm1),
			Dq:           new(big.Int).Mod(d, qm1),
			Qinv:         new(big.Int).ModInverse(q, p),
		}
		return key, nil
	}
	return nil, errors.New("palcrypto: RSA key generation failed to converge")
}

// genPrime returns a random prime of exactly the given bit length.
func genPrime(rand io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("palcrypto: prime too small")
	}
	b := make([]byte, (bits+7)/8)
	for {
		if _, err := io.ReadFull(rand, b); err != nil {
			return nil, err
		}
		// Force exact bit length and oddness.
		excess := len(b)*8 - bits
		b[0] &= 0xff >> uint(excess)
		b[0] |= 0x80 >> uint(excess)
		// Set the second-highest bit too, so products of two primes
		// reach the full modulus length more often.
		if bits > 17 {
			if excess == 7 {
				b[1] |= 0x80
			} else {
				b[0] |= 0x40 >> uint(excess)
			}
		}
		b[len(b)-1] |= 1
		p := new(big.Int).SetBytes(b)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// modPowCRT computes c^d mod n using the CRT parameters.
func (k *RSAPrivateKey) modPowCRT(c *big.Int) *big.Int {
	m1 := new(big.Int).Exp(c, k.Dp, k.P)
	m2 := new(big.Int).Exp(c, k.Dq, k.Q)
	h := new(big.Int).Sub(m1, m2)
	h.Mod(h, k.P)
	h.Mul(h, k.Qinv)
	h.Mod(h, k.P)
	h.Mul(h, k.Q)
	h.Add(h, m2)
	return h
}

// ErrRSADecryption is returned for any malformed or mis-keyed ciphertext.
// A single error value avoids creating a padding oracle.
var ErrRSADecryption = errors.New("palcrypto: RSA decryption error")

// ErrRSAVerification is returned when a signature does not verify.
var ErrRSAVerification = errors.New("palcrypto: RSA verification error")

// EncryptPKCS1 encrypts msg under pub with PKCS#1 v1.5 (EME, block type 02).
// The paper uses PKCS1 encryption for the password sent to the SSH PAL,
// citing its chosen-ciphertext security and nonmalleability [15].
func EncryptPKCS1(rand io.Reader, pub *RSAPublicKey, msg []byte) ([]byte, error) {
	k := pub.Size()
	if len(msg) > k-11 {
		return nil, fmt.Errorf("palcrypto: message too long for RSA-%d PKCS1", pub.N.BitLen())
	}
	em := make([]byte, k)
	em[0] = 0
	em[1] = 2
	ps := em[2 : k-len(msg)-1]
	// Nonzero random padding bytes.
	for i := range ps {
		var b [1]byte
		for {
			if _, err := io.ReadFull(rand, b[:]); err != nil {
				return nil, err
			}
			if b[0] != 0 {
				break
			}
		}
		ps[i] = b[0]
	}
	em[k-len(msg)-1] = 0
	copy(em[k-len(msg):], msg)
	m := new(big.Int).SetBytes(em)
	c := new(big.Int).Exp(m, big.NewInt(int64(pub.E)), pub.N)
	return leftPad(c.Bytes(), k), nil
}

// DecryptPKCS1 decrypts a PKCS#1 v1.5 ciphertext.
func DecryptPKCS1(priv *RSAPrivateKey, ciphertext []byte) ([]byte, error) {
	k := priv.Size()
	if len(ciphertext) != k {
		return nil, ErrRSADecryption
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Cmp(priv.N) >= 0 {
		return nil, ErrRSADecryption
	}
	em := leftPad(priv.modPowCRT(c).Bytes(), k)
	if em[0] != 0 || em[1] != 2 {
		return nil, ErrRSADecryption
	}
	// Find the 0x00 separator after at least 8 padding bytes.
	sep := -1
	for i := 2; i < len(em); i++ {
		if em[i] == 0 {
			sep = i
			break
		}
	}
	if sep < 10 {
		return nil, ErrRSADecryption
	}
	out := make([]byte, len(em)-sep-1)
	copy(out, em[sep+1:])
	return out, nil
}

// sha1DigestInfo is the DER prefix for a SHA-1 DigestInfo (RFC 3447 §9.2).
var sha1DigestInfo = []byte{
	0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e,
	0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
}

// SignPKCS1SHA1 signs the SHA-1 digest of msg with PKCS#1 v1.5 (EMSA).
func SignPKCS1SHA1(priv *RSAPrivateKey, msg []byte) ([]byte, error) {
	digest := SHA1Sum(msg)
	k := priv.Size()
	tLen := len(sha1DigestInfo) + SHA1Size
	if k < tLen+11 {
		return nil, errors.New("palcrypto: RSA key too small for SHA-1 signature")
	}
	em := make([]byte, k)
	em[0] = 0
	em[1] = 1
	for i := 2; i < k-tLen-1; i++ {
		em[i] = 0xff
	}
	em[k-tLen-1] = 0
	copy(em[k-tLen:], sha1DigestInfo)
	copy(em[k-SHA1Size:], digest[:])
	m := new(big.Int).SetBytes(em)
	s := priv.modPowCRT(m)
	return leftPad(s.Bytes(), k), nil
}

// VerifyPKCS1SHA1 verifies a PKCS#1 v1.5 SHA-1 signature over msg.
func VerifyPKCS1SHA1(pub *RSAPublicKey, msg, sig []byte) error {
	k := pub.Size()
	if len(sig) != k {
		return ErrRSAVerification
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return ErrRSAVerification
	}
	em := leftPad(new(big.Int).Exp(s, big.NewInt(int64(pub.E)), pub.N).Bytes(), k)
	digest := SHA1Sum(msg)
	tLen := len(sha1DigestInfo) + SHA1Size
	if em[0] != 0 || em[1] != 1 || em[k-tLen-1] != 0 {
		return ErrRSAVerification
	}
	for i := 2; i < k-tLen-1; i++ {
		if em[i] != 0xff {
			return ErrRSAVerification
		}
	}
	if !ConstantTimeEqual(em[k-tLen:k-SHA1Size], sha1DigestInfo) ||
		!ConstantTimeEqual(em[k-SHA1Size:], digest[:]) {
		return ErrRSAVerification
	}
	return nil
}

// leftPad returns b left-padded with zeros to length k.
func leftPad(b []byte, k int) []byte {
	if len(b) > k {
		panic("palcrypto: leftPad input longer than target")
	}
	out := make([]byte, k)
	copy(out[k-len(b):], b)
	return out
}

// MarshalPublicKey serializes a public key into a simple length-prefixed
// wire format (4-byte big-endian lengths) used by the Secure Channel module.
func MarshalPublicKey(pub *RSAPublicKey) []byte {
	nb := pub.N.Bytes()
	out := make([]byte, 0, 8+len(nb))
	out = appendU32(out, uint32(pub.E))
	out = appendU32(out, uint32(len(nb)))
	out = append(out, nb...)
	return out
}

// UnmarshalPublicKey parses the format produced by MarshalPublicKey.
func UnmarshalPublicKey(b []byte) (*RSAPublicKey, error) {
	if len(b) < 8 {
		return nil, errors.New("palcrypto: truncated public key")
	}
	e := int(readU32(b))
	nLen := int(readU32(b[4:]))
	if nLen <= 0 || len(b) != 8+nLen {
		return nil, errors.New("palcrypto: malformed public key")
	}
	if e < 3 || e%2 == 0 {
		return nil, errors.New("palcrypto: invalid public exponent")
	}
	n := new(big.Int).SetBytes(b[8:])
	if n.BitLen() < 128 {
		return nil, errors.New("palcrypto: modulus too small")
	}
	return &RSAPublicKey{N: n, E: e}, nil
}

// MarshalPrivateKey serializes a private key (for sealed storage only —
// never leaves a PAL unencrypted).
func MarshalPrivateKey(priv *RSAPrivateKey) []byte {
	var out []byte
	out = appendU32(out, uint32(priv.E))
	for _, v := range []*big.Int{priv.N, priv.D, priv.P, priv.Q} {
		vb := v.Bytes()
		out = appendU32(out, uint32(len(vb)))
		out = append(out, vb...)
	}
	return out
}

// UnmarshalPrivateKey parses the format produced by MarshalPrivateKey and
// recomputes the CRT parameters.
func UnmarshalPrivateKey(b []byte) (*RSAPrivateKey, error) {
	if len(b) < 4 {
		return nil, errors.New("palcrypto: truncated private key")
	}
	e := int(readU32(b))
	b = b[4:]
	var vals [4]*big.Int
	for i := range vals {
		if len(b) < 4 {
			return nil, errors.New("palcrypto: truncated private key")
		}
		l := int(readU32(b))
		b = b[4:]
		if l < 0 || len(b) < l {
			return nil, errors.New("palcrypto: truncated private key")
		}
		vals[i] = new(big.Int).SetBytes(b[:l])
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, errors.New("palcrypto: trailing bytes in private key")
	}
	n, d, p, q := vals[0], vals[1], vals[2], vals[3]
	if new(big.Int).Mul(p, q).Cmp(n) != 0 {
		return nil, errors.New("palcrypto: inconsistent private key")
	}
	pm1 := new(big.Int).Sub(p, bigOne)
	qm1 := new(big.Int).Sub(q, bigOne)
	qinv := new(big.Int).ModInverse(q, p)
	if qinv == nil {
		return nil, errors.New("palcrypto: inconsistent private key")
	}
	return &RSAPrivateKey{
		RSAPublicKey: RSAPublicKey{N: n, E: e},
		D:            d, P: p, Q: q,
		Dp:   new(big.Int).Mod(d, pm1),
		Dq:   new(big.Int).Mod(d, qm1),
		Qinv: qinv,
	}, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
