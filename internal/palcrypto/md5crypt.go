package palcrypto

import (
	"fmt"
	"strings"
)

// md5cryptMagic is the scheme prefix used in /etc/passwd-style entries.
const md5cryptMagic = "$1$"

// itoa64 is crypt(3)'s base-64 alphabet (distinct from RFC 4648).
const itoa64 = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// MD5Crypt implements the FreeBSD/Linux md5crypt password hash ("$1$"
// scheme, Poul-Henning Kamp's algorithm). The paper's SSH Login PAL
// (Figure 7) computes hash <- md5crypt(salt, password) inside the Flicker
// session and outputs only the hash, so the cleartext password never exists
// outside the PAL.
//
// salt is the raw salt string (at most 8 characters, truncated otherwise;
// a leading "$1$" prefix and anything after a '$' are stripped first).
// The return value is the full "$1$<salt>$<hash>" string as stored in a
// password file.
func MD5Crypt(password, salt string) string {
	salt = strings.TrimPrefix(salt, md5cryptMagic)
	if i := strings.IndexByte(salt, '$'); i >= 0 {
		salt = salt[:i]
	}
	if len(salt) > 8 {
		salt = salt[:8]
	}
	pw := []byte(password)
	sa := []byte(salt)

	ctx := NewMD5()
	ctx.Write(pw)
	ctx.Write([]byte(md5cryptMagic))
	ctx.Write(sa)

	alt := NewMD5()
	alt.Write(pw)
	alt.Write(sa)
	alt.Write(pw)
	altSum := alt.Sum(nil)

	for i := len(pw); i > 0; i -= 16 {
		n := i
		if n > 16 {
			n = 16
		}
		ctx.Write(altSum[:n])
	}
	for i := len(pw); i > 0; i >>= 1 {
		if i&1 != 0 {
			ctx.Write([]byte{0})
		} else {
			ctx.Write(pw[:1])
		}
	}
	final := ctx.Sum(nil)

	// 1000 strengthening rounds, alternating inputs per the reference
	// implementation.
	for i := 0; i < 1000; i++ {
		c := NewMD5()
		if i&1 != 0 {
			c.Write(pw)
		} else {
			c.Write(final)
		}
		if i%3 != 0 {
			c.Write(sa)
		}
		if i%7 != 0 {
			c.Write(pw)
		}
		if i&1 != 0 {
			c.Write(final)
		} else {
			c.Write(pw)
		}
		final = c.Sum(nil)
	}

	var sb strings.Builder
	sb.WriteString(md5cryptMagic)
	sb.WriteString(salt)
	sb.WriteByte('$')
	// crypt(3)'s permuted 3-byte groups.
	groups := [][3]int{{0, 6, 12}, {1, 7, 13}, {2, 8, 14}, {3, 9, 15}, {4, 10, 5}}
	for _, g := range groups {
		v := uint(final[g[0]])<<16 | uint(final[g[1]])<<8 | uint(final[g[2]])
		to64(&sb, v, 4)
	}
	to64(&sb, uint(final[11]), 2)
	return sb.String()
}

func to64(sb *strings.Builder, v uint, n int) {
	for ; n > 0; n-- {
		sb.WriteByte(itoa64[v&0x3f])
		v >>= 6
	}
}

// MD5CryptVerify checks password against a stored "$1$salt$hash" entry.
func MD5CryptVerify(password, stored string) (bool, error) {
	if !strings.HasPrefix(stored, md5cryptMagic) {
		return false, fmt.Errorf("palcrypto: not an md5crypt entry: %q", stored)
	}
	rest := stored[len(md5cryptMagic):]
	i := strings.IndexByte(rest, '$')
	if i < 0 {
		return false, fmt.Errorf("palcrypto: malformed md5crypt entry")
	}
	salt := rest[:i]
	return ConstantTimeEqual([]byte(MD5Crypt(password, salt)), []byte(stored)), nil
}
