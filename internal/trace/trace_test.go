package trace

import (
	"strings"
	"testing"
	"time"

	"flicker/internal/core"
	"flicker/internal/pal"
	"flicker/internal/simtime"
)

func TestRenderTimeline(t *testing.T) {
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "trace-test"})
	if err != nil {
		t.Fatal(err)
	}
	hello := &pal.Func{
		PALName: "hello",
		Binary:  pal.DescriptorCode("hello", "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("hi"), nil
		},
	}
	res, err := p.RunSession(hello, core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(res, 50)
	for _, want := range []string{"session timeline", "skinit", "pal-exec", "resume-os", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Tiny width is clamped, not broken.
	if out := RenderTimeline(res, 5); !strings.Contains(out, "skinit") {
		t.Error("clamped width broke rendering")
	}
	// Empty session handled.
	if out := RenderTimeline(&core.SessionResult{}, 50); !strings.Contains(out, "empty") {
		t.Error("empty session not handled")
	}
}

func TestRenderCharges(t *testing.T) {
	charges := []simtime.Charge{
		{Label: "tpm.unseal", Duration: 900 * time.Millisecond},
		{Label: "cpu.skinit", Duration: 14 * time.Millisecond},
		{Label: "cpu.skinit", Duration: 14 * time.Millisecond},
	}
	out := RenderCharges(charges)
	if !strings.Contains(out, "tpm.unseal") || !strings.Contains(out, "cpu.skinit") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// Most expensive first.
	if strings.Index(out, "tpm.unseal") > strings.Index(out, "cpu.skinit") {
		t.Error("charges not sorted by cost")
	}
	if !strings.Contains(out, "(2 ops)") {
		t.Error("op counts missing")
	}
	if out := RenderCharges(nil); !strings.Contains(out, "0.000 ms total") {
		t.Errorf("empty charges: %s", out)
	}
}
