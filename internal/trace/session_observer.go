package trace

import (
	"sync"
	"time"

	"flicker/internal/core"
	"flicker/internal/simtime"
)

// SessionObserver adapts the core.Observer callback stream into spans under
// one or more parent spans: a "session" span per session, a child span per
// phase, and a leaf span per simulated-clock charge (the TPM-command /
// hardware-step level of the tree). Timestamps are replayed from the
// observer callbacks, so the spans live on the session platform's timebase
// regardless of which site's tracer minted their IDs.
//
// Multiple parents cover coalesced batches: when several traced requests
// share one physical session, every member's trace receives its own copy of
// the session span tree.
type SessionObserver struct {
	parents []*Span

	mu   sync.Mutex
	open map[uint64]*obsSession
}

type obsSession struct {
	sessions []*Span // one per parent
	phases   []*Span // open phase span per parent, nil when no phase is open
}

// NewSessionObserver builds an observer attaching session spans under the
// given parents. Nil parents are dropped; with no live parent the observer
// is inert (and cheap).
func NewSessionObserver(parents ...*Span) *SessionObserver {
	o := &SessionObserver{open: make(map[uint64]*obsSession)}
	for _, p := range parents {
		if p != nil {
			o.parents = append(o.parents, p)
		}
	}
	return o
}

var _ core.Observer = (*SessionObserver)(nil)

// SessionStart opens a session span under every parent.
func (o *SessionObserver) SessionStart(m core.SessionMeta) {
	if len(o.parents) == 0 {
		return
	}
	s := &obsSession{
		sessions: make([]*Span, len(o.parents)),
		phases:   make([]*Span, len(o.parents)),
	}
	for i, p := range o.parents {
		sp := p.ChildAt("session", m.Start)
		sp.SetAttr("pal", m.PAL)
		sp.SetAttr("pipeline", m.Pipeline)
		s.sessions[i] = sp
	}
	o.mu.Lock()
	o.open[m.ID] = s
	o.mu.Unlock()
}

// PhaseStart opens a phase span under each session span.
func (o *SessionObserver) PhaseStart(sid uint64, phase string, at time.Duration) {
	o.mu.Lock()
	s := o.open[sid]
	if s != nil {
		for i, sess := range s.sessions {
			s.phases[i] = sess.ChildAt(phase, at)
		}
	}
	o.mu.Unlock()
}

// Charge records one simulated-clock charge as a leaf span under the open
// phase (or directly under the session span for out-of-phase charges such
// as abort teardowns).
func (o *SessionObserver) Charge(sid uint64, phase string, c simtime.Charge) {
	o.mu.Lock()
	s := o.open[sid]
	if s != nil {
		for i := range s.sessions {
			parent := s.phases[i]
			if parent == nil {
				parent = s.sessions[i]
			}
			leaf := parent.ChildAt(c.Label, c.At)
			leaf.EndAt(c.At + c.Duration)
		}
	}
	o.mu.Unlock()
}

// PhaseEnd closes the phase spans.
func (o *SessionObserver) PhaseEnd(sid uint64, phase string, at time.Duration, err error) {
	o.mu.Lock()
	s := o.open[sid]
	if s != nil {
		for i, ph := range s.phases {
			ph.EndErrAt(err, at)
			s.phases[i] = nil
		}
	}
	o.mu.Unlock()
}

// SessionEnd closes the session spans (and any phase span left open).
func (o *SessionObserver) SessionEnd(sid uint64, at time.Duration, err error) {
	o.mu.Lock()
	s := o.open[sid]
	delete(o.open, sid)
	o.mu.Unlock()
	if s == nil {
		return
	}
	for i, ph := range s.phases {
		ph.EndErrAt(err, at)
		s.phases[i] = nil
	}
	for _, sess := range s.sessions {
		sess.EndErrAt(err, at)
	}
}
