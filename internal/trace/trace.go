// Package trace renders Flicker session timelines and clock charge
// breakdowns as text, for the CLI and for debugging latency questions. The
// timeline view corresponds to the paper's Figure 2.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"flicker/internal/core"
	"flicker/internal/simtime"
)

// RenderTimeline draws the session's phases as a proportional bar chart.
// Phases shorter than the resolution still get one cell so every step of
// the Figure 2 timeline is visible.
func RenderTimeline(res *core.SessionResult, width int) string {
	if width < 20 {
		width = 60
	}
	total := res.Duration()
	if total <= 0 {
		return "(empty session)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "session timeline (%.3f ms total)\n", simtime.Millis(total))
	longest := 0
	for _, ph := range res.Phases {
		if len(ph.Name) > longest {
			longest = len(ph.Name)
		}
	}
	for _, ph := range res.Phases {
		cells := int(int64(width) * int64(ph.Duration) / int64(total))
		if cells < 1 {
			cells = 1
		}
		pct := 100 * float64(ph.Duration) / float64(total)
		fmt.Fprintf(&b, "  %-*s |%s%s| %9.3f ms %5.1f%%\n",
			longest, ph.Name,
			strings.Repeat("#", cells), strings.Repeat(" ", width-min(cells, width)),
			simtime.Millis(ph.Duration), pct)
	}
	return b.String()
}

// RenderCharges aggregates a charge list by label and renders the cost
// ranking, most expensive first.
func RenderCharges(charges []simtime.Charge) string {
	totals := make(map[string]time.Duration)
	counts := make(map[string]int)
	var sum time.Duration
	for _, c := range charges {
		totals[c.Label] += c.Duration
		counts[c.Label]++
		sum += c.Duration
	}
	labels := make([]string, 0, len(totals))
	for l := range totals {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if totals[labels[i]] != totals[labels[j]] {
			return totals[labels[i]] > totals[labels[j]]
		}
		return labels[i] < labels[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "charge breakdown (%.3f ms total)\n", simtime.Millis(sum))
	for _, l := range labels {
		pct := 0.0
		if sum > 0 {
			pct = 100 * float64(totals[l]) / float64(sum)
		}
		fmt.Fprintf(&b, "  %-24s %10.3f ms %5.1f%%  (%d ops)\n",
			l, simtime.Millis(totals[l]), pct, counts[l])
	}
	return b.String()
}
