package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"flicker/internal/core"
	"flicker/internal/pal"
	"flicker/internal/simtime"
)

func tracePlatform(t *testing.T) *core.Platform {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{Seed: "trace-json-test"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tracePAL(name string) pal.PAL {
	return &pal.Func{
		PALName: name,
		Binary:  pal.DescriptorCode(name, "1.0", nil, nil),
		Fn: func(env *pal.Env, input []byte) ([]byte, error) {
			return []byte("hi"), nil
		},
	}
}

func TestSessionSpansConversion(t *testing.T) {
	p := tracePlatform(t)
	res, err := p.RunSession(tracePAL("hello"), core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := SessionSpans(res)
	if s.SessionID != res.SessionID || s.Pipeline != "classic" {
		t.Errorf("span identity = %d/%q", s.SessionID, s.Pipeline)
	}
	if len(s.Phases) != len(res.Phases) {
		t.Fatalf("phases = %d, want %d", len(s.Phases), len(res.Phases))
	}
	for i, ph := range res.Phases {
		if s.Phases[i].Name != ph.Name {
			t.Errorf("phase %d = %q, want %q", i, s.Phases[i].Name, ph.Name)
		}
		if s.Phases[i].DurationMs != simtime.Millis(ph.Duration) {
			t.Errorf("phase %d duration mismatch", i)
		}
	}
	if s.DurationMs != simtime.Millis(res.Duration()) {
		t.Error("session duration mismatch")
	}
	// Phases tile the session: starts are monotone, last phase ends at EndMs.
	for i := 1; i < len(s.Phases); i++ {
		if s.Phases[i].StartMs < s.Phases[i-1].StartMs {
			t.Error("phase starts not monotone")
		}
	}
	last := s.Phases[len(s.Phases)-1]
	if got := last.StartMs + last.DurationMs; got != s.EndMs {
		t.Errorf("last phase ends at %v, session at %v", got, s.EndMs)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	p := tracePlatform(t)
	res, err := p.RunSession(tracePAL("hello"), core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExportJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SessionSpan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, SessionSpans(res)) {
		t.Errorf("round trip changed the span:\n%s", b)
	}
}

func TestRecorderCapturesSessionsLive(t *testing.T) {
	p := tracePlatform(t)
	rec := NewRecorder()
	p.AddObserver(rec)
	res1, err := p.RunSession(tracePAL("one"), core.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunSession(tracePAL("two"), core.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	got := rec.Sessions()
	if len(got) != 2 {
		t.Fatalf("recorded %d sessions, want 2", len(got))
	}
	if got[0].SessionID != res1.SessionID || got[0].PAL != "one" || got[1].PAL != "two" {
		t.Errorf("session identities wrong: %+v", got)
	}
	// Live-recorded phase durations match the result's timeline.
	if len(got[0].Phases) != len(res1.Phases) {
		t.Fatalf("phases = %d, want %d", len(got[0].Phases), len(res1.Phases))
	}
	for i, ph := range res1.Phases {
		if got[0].Phases[i].Name != ph.Name || got[0].Phases[i].DurationMs != simtime.Millis(ph.Duration) {
			t.Errorf("phase %d: recorded %+v, result %+v", i, got[0].Phases[i], ph)
		}
	}
	// Charges were captured with phase attribution; the sum of charges in a
	// phase never exceeds the phase's duration.
	if len(got[0].Charges) == 0 {
		t.Fatal("no charges recorded")
	}
	perPhase := make(map[string]float64)
	for _, c := range got[0].Charges {
		if c.Phase == "" {
			t.Errorf("charge %q not attributed to a phase", c.Label)
		}
		perPhase[c.Phase] += c.DurationMs
	}
	for _, ph := range got[0].Phases {
		if perPhase[ph.Name] > ph.DurationMs+1e-9 {
			t.Errorf("phase %q charges %.6f ms exceed phase %.6f ms", ph.Name, perPhase[ph.Name], ph.DurationMs)
		}
	}
}

func TestRecorderRecordsAbortedSessions(t *testing.T) {
	p := tracePlatform(t)
	rec := NewRecorder()
	p.AddObserver(rec)
	if _, err := p.RunSession(tracePAL("doomed"), core.SessionOptions{FailPhase: "skinit"}); !errors.Is(err, core.ErrFaultInjected) {
		t.Fatalf("err = %v", err)
	}
	got := rec.Sessions()
	if len(got) != 1 {
		t.Fatalf("recorded %d sessions, want 1", len(got))
	}
	if !strings.Contains(got[0].Error, "injected fault") {
		t.Errorf("session error = %q", got[0].Error)
	}
	lastPhase := got[0].Phases[len(got[0].Phases)-1]
	if lastPhase.Name != "skinit" || !strings.Contains(lastPhase.Error, "injected fault") {
		t.Errorf("faulted phase not marked: %+v", lastPhase)
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	p := tracePlatform(t)
	rec := NewRecorder()
	p.AddObserver(rec)
	if _, err := p.RunSession(tracePAL("hello"), core.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []SessionSpan
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(back, rec.Sessions()) {
		t.Error("WriteJSON round trip changed the spans")
	}
	// An empty recorder writes a valid empty array.
	buf.Reset()
	if err := NewRecorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty recorder wrote %q", buf.String())
	}
}

func TestRenderTimelineZeroDurationPhase(t *testing.T) {
	// A phase shorter than one cell still renders a visible bar.
	res := &core.SessionResult{
		Start: 0,
		End:   100 * time.Millisecond,
		Phases: []core.Phase{
			{Name: "big", Start: 0, Duration: 100 * time.Millisecond},
			{Name: "tiny", Start: 100 * time.Millisecond, Duration: 0},
		},
	}
	out := RenderTimeline(res, 40)
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "tiny") && !strings.Contains(line, "#") {
			t.Errorf("zero-duration phase has no bar: %q", line)
		}
	}
}

func TestRenderChargesTieBreak(t *testing.T) {
	// Equal-cost labels sort alphabetically, so output is deterministic.
	charges := []simtime.Charge{
		{Label: "b.op", Duration: time.Millisecond},
		{Label: "a.op", Duration: time.Millisecond},
	}
	out := RenderCharges(charges)
	if strings.Index(out, "a.op") > strings.Index(out, "b.op") {
		t.Errorf("tie not broken alphabetically:\n%s", out)
	}
}
