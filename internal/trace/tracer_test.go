package trace

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flicker/internal/simtime"
)

func TestTracerSpanTree(t *testing.T) {
	clk := simtime.New()
	tr := NewTracer("ctrl", clk.Now)
	var got *TraceData
	tr.OnComplete(func(td *TraceData) { got = td })

	root := tr.Start("fabric.run")
	root.SetAttr("pal", "seal")
	clk.Advance(1*time.Millisecond, "t")
	child := root.Child("attempt")
	clk.Advance(2*time.Millisecond, "t")
	leaf := child.Child("rpc")
	clk.Advance(3*time.Millisecond, "t")
	leaf.End()
	child.End()
	clk.Advance(1*time.Millisecond, "t")
	root.End()

	if got == nil {
		t.Fatal("OnComplete did not fire")
	}
	if got.ID != FormatID(got.TraceID) || len(got.ID) != 16 {
		t.Fatalf("bad trace id %q", got.ID)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(got.Spans))
	}
	if r := got.Root(); r == nil || r.Name != "fabric.run" || r.Parent != 0 {
		t.Fatalf("root not first: %+v", got.Spans[0])
	}
	if got.Attr("pal") != "seal" {
		t.Fatalf("root attr lost: %v", got.Spans[0].Attrs)
	}
	if got.Duration != 7*time.Millisecond {
		t.Fatalf("root duration = %v", got.Duration)
	}
	tree := got.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "attempt" {
		t.Fatalf("bad tree: %+v", tree)
	}
	if len(tree.Children[0].Children) != 1 || tree.Children[0].Children[0].Name != "rpc" {
		t.Fatalf("bad leaf: %+v", tree.Children[0])
	}
	if tree.Children[0].Children[0].Duration != 3*time.Millisecond {
		t.Fatalf("leaf duration = %v", tree.Children[0].Children[0].Duration)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer("s", nil)
	if tr.Enabled() {
		t.Fatal("fresh tracer should be disabled")
	}
	if sp := tr.StartSampled("x"); sp != nil {
		t.Fatal("disabled tracer sampled a span")
	}
	tr.SetSampleRate(0.01)
	n := 0
	for i := 0; i < 1000; i++ {
		if sp := tr.StartSampled("x"); sp != nil {
			n++
			sp.End()
		}
	}
	if n != 10 {
		t.Fatalf("rate 0.01 over 1000: sampled %d, want 10", n)
	}
	tr.SetSampleRate(1)
	for i := 0; i < 5; i++ {
		if sp := tr.StartSampled("x"); sp == nil {
			t.Fatal("rate 1 skipped a span")
		}
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	if tr.Start("x") != nil || tr.StartSampled("x") != nil || tr.Join(1, 2, "x") != nil {
		t.Fatal("nil tracer returned a span")
	}
	tr.SetSampleRate(1)
	var sp *Span
	sp.SetAttr("k", "v")
	sp.Trigger("t")
	sp.End()
	sp.EndErr(errors.New("e"))
	sp.Adopt([]SpanRecord{{Span: 1}})
	if sp.Child("c") != nil || sp.ChildAt("c", 0) != nil {
		t.Fatal("nil span spawned a child")
	}
	if id, _ := sp.Context(); id != 0 || sp.TraceHex() != "" {
		t.Fatal("nil span has context")
	}
}

func TestJoinAndAdopt(t *testing.T) {
	// Controller side mints the trace; host side joins it over the "wire"
	// and ships its records back for adoption.
	ctrl := NewTracer("ctrl", nil)
	host := NewTracer("host0", nil)
	var got *TraceData
	ctrl.OnComplete(func(td *TraceData) { got = td })

	root := ctrl.Start("fabric.run")
	attempt := root.Child("attempt")
	traceID, parentSpan := attempt.Context()

	seg := host.Join(traceID, parentSpan, "host.run")
	inner := seg.Child("queue")
	inner.End()
	seg.End()
	wire := seg.Records()
	if len(wire) != 2 {
		t.Fatalf("segment shipped %d records, want 2", len(wire))
	}

	attempt.Adopt(wire)
	attempt.End()
	root.End()
	if got == nil || len(got.Spans) != 4 {
		t.Fatalf("assembled trace wrong: %+v", got)
	}
	tree := got.Tree()
	// root -> attempt -> host.run -> queue
	at := tree.Children[0]
	if len(at.Children) != 1 || at.Children[0].Name != "host.run" || at.Children[0].Site != "host0" {
		t.Fatalf("host segment not under attempt: %+v", at)
	}
	if len(at.Children[0].Children) != 1 || at.Children[0].Children[0].Name != "queue" {
		t.Fatalf("host leaf lost: %+v", at.Children[0])
	}
	// Host and controller IDs must not collide (distinct site prefixes).
	seen := map[uint64]bool{}
	for _, r := range got.Spans {
		if seen[r.Span] {
			t.Fatalf("span id collision: %x", r.Span)
		}
		seen[r.Span] = true
	}
}

func TestOrphanedRecordsAttachToRoot(t *testing.T) {
	ctrl := NewTracer("ctrl", nil)
	var got *TraceData
	ctrl.OnComplete(func(td *TraceData) { got = td })
	root := ctrl.Start("r")
	// A record whose parent never made it back (died mid-call).
	root.Adopt([]SpanRecord{{Span: 999, Parent: 12345, Name: "lost", Site: "hostX"}})
	root.End()
	tree := got.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "lost" {
		t.Fatalf("orphan not reattached: %+v", tree)
	}
}

func TestFlightRecorderTriggers(t *testing.T) {
	f := NewFlightRecorder(4, 4, 10*time.Millisecond)
	mk := func(id uint64, trigger, errStr string, d time.Duration) *TraceData {
		return &TraceData{ID: FormatID(id), TraceID: id, Name: "r", Trigger: trigger,
			Err: errStr, Duration: d,
			Spans: []SpanRecord{{Span: id, Name: "r"}}}
	}
	f.Offer(mk(1, "failover-resubmit", "", time.Millisecond))
	f.Offer(mk(2, "", "boom", time.Millisecond))
	f.Offer(mk(3, "", "", 20*time.Millisecond)) // slow
	f.Offer(mk(4, "", "", time.Millisecond))    // plain -> reservoir
	if _, trig, samp := f.Stats(); trig != 3 || samp != 1 {
		t.Fatalf("trig=%d samp=%d", trig, samp)
	}
	if td := f.Get(FormatID(2)); td == nil || td.Trigger != "error" {
		t.Fatalf("error trace not retained/triggered: %+v", td)
	}
	if td := f.Get(FormatID(3)); td == nil || td.Trigger != "slow" {
		t.Fatalf("slow trace not triggered: %+v", td)
	}
	if f.Get(FormatID(1)) == nil {
		t.Fatal("explicit trigger lost")
	}
	got := f.Recent(10, "", "error")
	if len(got) != 1 || got[0].ID != FormatID(2) {
		t.Fatalf("outcome filter: %+v", got)
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(2, 2, 0)
	for i := uint64(1); i <= 5; i++ {
		f.Offer(&TraceData{ID: FormatID(i), TraceID: i, Trigger: "x",
			Spans: []SpanRecord{{Span: i}}})
	}
	if f.Get(FormatID(1)) != nil || f.Get(FormatID(2)) != nil || f.Get(FormatID(3)) != nil {
		t.Fatal("evicted traces still indexed")
	}
	if f.Get(FormatID(4)) == nil || f.Get(FormatID(5)) == nil {
		t.Fatal("recent traces lost")
	}
	got := f.Recent(10, "", "")
	if len(got) != 2 || got[0].ID != FormatID(5) || got[1].ID != FormatID(4) {
		t.Fatalf("Recent order: %v, %v", got[0].ID, got[1].ID)
	}
}

func TestFlightRecorderPALFilter(t *testing.T) {
	f := NewFlightRecorder(8, 8, 0)
	for i := uint64(1); i <= 4; i++ {
		pal := "seal"
		if i%2 == 0 {
			pal = "hello"
		}
		f.Offer(&TraceData{ID: FormatID(i), TraceID: i, Trigger: "x",
			Spans: []SpanRecord{{Span: i, Attrs: []SpanAttr{{Key: "pal", Value: pal}}}}})
	}
	got := f.Recent(10, "seal", "")
	if len(got) != 2 {
		t.Fatalf("pal filter: %d", len(got))
	}
	for _, td := range got {
		if td.Attr("pal") != "seal" {
			t.Fatalf("wrong pal: %+v", td)
		}
	}
}

func TestFlightRecorderReservoirDeterministic(t *testing.T) {
	run := func() []string {
		f := NewFlightRecorder(2, 4, 0)
		for i := uint64(1); i <= 100; i++ {
			f.Offer(&TraceData{ID: FormatID(i), TraceID: i,
				Spans: []SpanRecord{{Span: i}}})
		}
		var ids []string
		for _, td := range f.Recent(10, "", "") {
			ids = append(ids, td.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("reservoir sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir not deterministic: %v vs %v", a, b)
		}
	}
}

func TestNilFlightRecorderIsNoop(t *testing.T) {
	var f *FlightRecorder
	f.Offer(&TraceData{ID: "x"})
	if f.Get("x") != nil || f.Recent(1, "", "") != nil {
		t.Fatal("nil recorder returned data")
	}
}

// TestConcurrentSpansAndFlightReads is the -race hammer: goroutines mint
// spans on a shared tracer and complete traces into a flight recorder while
// readers pound Get/Recent.
func TestConcurrentSpansAndFlightReads(t *testing.T) {
	tr := NewTracer("hammer", nil)
	tr.SetSampleRate(1)
	f := NewFlightRecorder(32, 32, 0)
	tr.OnComplete(f.Offer)

	const writers, readers, per = 8, 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, td := range f.Recent(8, "", "") {
					f.Get(td.ID)
					td.Tree()
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				root := tr.StartSampled("load")
				root.SetAttr("pal", "seal")
				c1 := root.Child("a")
				c2 := root.Child("b")
				c2.SetAttr("k", "v")
				c2.End()
				c1.End()
				if i%7 == 0 {
					root.Trigger("hammer")
				}
				root.End()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	offered, trig, samp := f.Stats()
	if offered != writers*per {
		t.Fatalf("offered %d, want %d", offered, writers*per)
	}
	if trig == 0 || samp == 0 {
		t.Fatalf("trig=%d samp=%d", trig, samp)
	}
}
