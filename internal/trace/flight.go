package trace

import (
	"sync"
	"time"
)

// FlightRecorder retains completed traces for postmortem reads. Two bounded
// stores back it: a triggered ring that keeps every trace matching a
// retention trigger (explicit Trigger marks such as failover resubmits and
// re-attestation evictions, root-span errors, duration over the slow
// threshold), and a reservoir sample of everything else so /traces always
// has representative baseline traces to compare against. The reservoir uses
// a deterministic xorshift stream — no math/rand — so tests replay
// identically.
type FlightRecorder struct {
	mu       sync.Mutex
	slow     time.Duration
	trigCap  int
	sampCap  int
	trig     []*TraceData // ring, trigHead is the next overwrite slot
	trigHead int
	samp     []*TraceData // reservoir
	seen     uint64       // untriggered traces offered so far
	rng      uint64
	index    map[string][]*TraceData // trace ID -> live entries
	total    uint64
}

// DefaultFlightCapacity bounds each of the two stores when the caller
// passes a non-positive capacity.
const DefaultFlightCapacity = 256

// NewFlightRecorder creates a recorder keeping up to trigCap triggered
// traces and a sampCap-sized reservoir of the rest. slow is the duration
// trigger: any trace at least this long is retained as triggered (0
// disables the duration trigger).
func NewFlightRecorder(trigCap, sampCap int, slow time.Duration) *FlightRecorder {
	if trigCap <= 0 {
		trigCap = DefaultFlightCapacity
	}
	if sampCap <= 0 {
		sampCap = DefaultFlightCapacity
	}
	return &FlightRecorder{
		slow:    slow,
		trigCap: trigCap,
		sampCap: sampCap,
		rng:     0x9e3779b97f4a7c15,
		index:   make(map[string][]*TraceData),
	}
}

// xorshift64 steps the deterministic reservoir stream.
func (f *FlightRecorder) xorshift64() uint64 {
	x := f.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rng = x
	return x
}

// retained reports why td must be kept in the triggered ring ("" = sample).
func (f *FlightRecorder) retained(td *TraceData) string {
	switch {
	case td.Trigger != "":
		return td.Trigger
	case td.Err != "":
		return "error"
	case f.slow > 0 && td.Duration >= f.slow:
		return "slow"
	}
	return ""
}

// Offer hands a completed trace to the recorder. Safe on a nil recorder.
func (f *FlightRecorder) Offer(td *TraceData) {
	if f == nil || td == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if why := f.retained(td); why != "" {
		if td.Trigger == "" {
			td.Trigger = why
		}
		if len(f.trig) < f.trigCap {
			f.trig = append(f.trig, td)
		} else {
			f.drop(f.trig[f.trigHead])
			f.trig[f.trigHead] = td
			f.trigHead = (f.trigHead + 1) % f.trigCap
		}
		f.add(td)
		return
	}
	f.seen++
	if len(f.samp) < f.sampCap {
		f.samp = append(f.samp, td)
		f.add(td)
		return
	}
	if j := f.xorshift64() % f.seen; j < uint64(f.sampCap) {
		f.drop(f.samp[j])
		f.samp[j] = td
		f.add(td)
	}
}

func (f *FlightRecorder) add(td *TraceData) {
	f.index[td.ID] = append(f.index[td.ID], td)
}

func (f *FlightRecorder) drop(td *TraceData) {
	live := f.index[td.ID]
	for i, t := range live {
		if t == td {
			live = append(live[:i], live[i+1:]...)
			break
		}
	}
	if len(live) == 0 {
		delete(f.index, td.ID)
	} else {
		f.index[td.ID] = live
	}
}

// Get returns the retained trace with the given hex ID, or nil.
func (f *FlightRecorder) Get(id string) *TraceData {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if live := f.index[id]; len(live) > 0 {
		return live[len(live)-1]
	}
	return nil
}

// Recent returns up to n retained traces, newest first, triggered traces
// before sampled ones. pal filters on the root span's "pal" attribute and
// outcome on TraceData.Outcome(); either may be "" for no filter.
func (f *FlightRecorder) Recent(n int, pal, outcome string) []*TraceData {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		n = f.trigCap + f.sampCap
	}
	out := make([]*TraceData, 0, n)
	match := func(td *TraceData) bool {
		if pal != "" && td.Attr("pal") != pal {
			return false
		}
		if outcome != "" && td.Outcome() != outcome {
			return false
		}
		return true
	}
	// Triggered ring newest-first: walk backwards from the slot before the
	// next overwrite position.
	for i := 0; i < len(f.trig) && len(out) < n; i++ {
		idx := (f.trigHead - 1 - i + 2*len(f.trig)) % len(f.trig)
		if len(f.trig) < f.trigCap {
			idx = len(f.trig) - 1 - i // ring not yet wrapped: append order
		}
		if td := f.trig[idx]; match(td) {
			out = append(out, td)
		}
	}
	for i := len(f.samp) - 1; i >= 0 && len(out) < n; i-- {
		if td := f.samp[i]; match(td) {
			out = append(out, td)
		}
	}
	return out
}

// Stats reports the recorder's occupancy: traces offered, triggered slots
// used, and reservoir slots used.
func (f *FlightRecorder) Stats() (offered uint64, triggered, sampled int) {
	if f == nil {
		return 0, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total, len(f.trig), len(f.samp)
}
