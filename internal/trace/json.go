// JSON span export for session timelines. Two entry points:
//
//   - SessionSpans converts a finished SessionResult into a span tree
//     (one session span, one child span per phase) — the offline path;
//   - Recorder implements core.Observer and captures sessions live,
//     including every simulated-clock charge attributed to the phase that
//     incurred it — the substrate for simTPM-style TPM cost analyses.
//
// All times are in simulated milliseconds, the unit the paper reports in.
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"flicker/internal/core"
	"flicker/internal/simtime"
)

// PhaseSpan is one Figure 2 phase as a JSON span.
type PhaseSpan struct {
	Name       string  `json:"name"`
	StartMs    float64 `json:"start_ms"`
	DurationMs float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
}

// ChargeSpan is one simulated-clock charge, attributed to the phase that
// was open when it was incurred ("" for charges outside any phase, e.g.
// abort teardown).
type ChargeSpan struct {
	Label      string  `json:"label"`
	Phase      string  `json:"phase,omitempty"`
	AtMs       float64 `json:"at_ms"`
	DurationMs float64 `json:"duration_ms"`
}

// SessionSpan is a whole session as a JSON span tree.
type SessionSpan struct {
	SessionID  uint64       `json:"session_id"`
	Pipeline   string       `json:"pipeline,omitempty"`
	PAL        string       `json:"pal,omitempty"`
	StartMs    float64      `json:"start_ms"`
	EndMs      float64      `json:"end_ms"`
	DurationMs float64      `json:"duration_ms"`
	Error      string       `json:"error,omitempty"`
	Phases     []PhaseSpan  `json:"phases"`
	Charges    []ChargeSpan `json:"charges,omitempty"`
}

// SessionSpans converts a finished session into its span tree. Charges are
// not available on this path (the result does not carry them); use a
// Recorder observer to capture them live.
func SessionSpans(res *core.SessionResult) SessionSpan {
	s := SessionSpan{
		SessionID:  res.SessionID,
		Pipeline:   res.Pipeline,
		StartMs:    simtime.Millis(res.Start),
		EndMs:      simtime.Millis(res.End),
		DurationMs: simtime.Millis(res.Duration()),
		Phases:     make([]PhaseSpan, 0, len(res.Phases)),
	}
	if res.PALError != nil {
		s.Error = res.PALError.Error()
	}
	for _, ph := range res.Phases {
		s.Phases = append(s.Phases, PhaseSpan{
			Name:       ph.Name,
			StartMs:    simtime.Millis(ph.Start),
			DurationMs: simtime.Millis(ph.Duration),
		})
	}
	return s
}

// ExportJSON renders a session as indented JSON spans.
func ExportJSON(res *core.SessionResult) ([]byte, error) {
	return json.MarshalIndent(SessionSpans(res), "", "  ")
}

// Recorder captures sessions live as a core.Observer. It is safe for
// concurrent use and records every session run while attached, aborted
// ones included.
type Recorder struct {
	mu       sync.Mutex
	done     []SessionSpan
	open     map[uint64]*SessionSpan
	phaseAt  map[uint64]time.Duration
	phaseTop map[uint64]int // index of the open phase span, -1 if none
}

// NewRecorder returns an empty Recorder; attach it with
// Platform.AddObserver.
func NewRecorder() *Recorder {
	return &Recorder{
		open:     make(map[uint64]*SessionSpan),
		phaseAt:  make(map[uint64]time.Duration),
		phaseTop: make(map[uint64]int),
	}
}

// SessionStart implements core.Observer.
func (r *Recorder) SessionStart(m core.SessionMeta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.open[m.ID] = &SessionSpan{
		SessionID: m.ID,
		Pipeline:  m.Pipeline,
		PAL:       m.PAL,
		StartMs:   simtime.Millis(m.Start),
		Phases:    []PhaseSpan{},
	}
	r.phaseTop[m.ID] = -1
}

// PhaseStart implements core.Observer.
func (r *Recorder) PhaseStart(sid uint64, phase string, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.open[sid]
	if s == nil {
		return
	}
	s.Phases = append(s.Phases, PhaseSpan{Name: phase, StartMs: simtime.Millis(at)})
	r.phaseAt[sid] = at
	r.phaseTop[sid] = len(s.Phases) - 1
}

// Charge implements core.Observer.
func (r *Recorder) Charge(sid uint64, phase string, c simtime.Charge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.open[sid]
	if s == nil {
		return
	}
	s.Charges = append(s.Charges, ChargeSpan{
		Label:      c.Label,
		Phase:      phase,
		AtMs:       simtime.Millis(c.At),
		DurationMs: simtime.Millis(c.Duration),
	})
}

// PhaseEnd implements core.Observer.
func (r *Recorder) PhaseEnd(sid uint64, phase string, at time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.open[sid]
	if s == nil {
		return
	}
	if i := r.phaseTop[sid]; i >= 0 && i < len(s.Phases) && s.Phases[i].Name == phase {
		s.Phases[i].DurationMs = simtime.Millis(at - r.phaseAt[sid])
		if err != nil {
			s.Phases[i].Error = err.Error()
		}
	}
	r.phaseTop[sid] = -1
}

// SessionEnd implements core.Observer.
func (r *Recorder) SessionEnd(sid uint64, at time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.open[sid]
	if s == nil {
		return
	}
	s.EndMs = simtime.Millis(at)
	s.DurationMs = s.EndMs - s.StartMs
	if err != nil {
		s.Error = err.Error()
	}
	r.done = append(r.done, *s)
	delete(r.open, sid)
	delete(r.phaseAt, sid)
	delete(r.phaseTop, sid)
}

// Sessions returns the recorded sessions, in completion order.
func (r *Recorder) Sessions() []SessionSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SessionSpan, len(r.done))
	copy(out, r.done)
	return out
}

// WriteJSON writes every recorded session as one indented JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Sessions(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
