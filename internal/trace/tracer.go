package trace

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// This file is the distributed half of the trace package: a dependency-free
// tracer whose span tree can cross the fabric wire protocol. IDs are
// deterministic counters prefixed by a hash of the creating site, times come
// from an injected clock (each site records spans on its own simtime
// timebase), and sampling is counter-based — no wall clock and no math/rand,
// so the package stays inside flickervet's walltime discipline.

// SpanAttr is one key/value annotation on a span. Attributes are kept as an
// ordered slice (not a map) so wire encoding and JSON output are
// deterministic.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is the flat, wire-friendly form of one completed span. A trace
// is a set of records tied together by Parent references; records created on
// different sites (controller, host) carry different Site names and span-ID
// prefixes, so a reassembled trace never collides.
type SpanRecord struct {
	Span     uint64        `json:"span"`
	Parent   uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Site     string        `json:"site"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"error,omitempty"`
	Attrs    []SpanAttr    `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute, or "".
func (r *SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TraceData is one completed trace: the root span plus every descendant
// record gathered locally or adopted from remote sites.
type TraceData struct {
	ID       string        `json:"trace_id"`
	TraceID  uint64        `json:"-"`
	Name     string        `json:"name"`
	Trigger  string        `json:"trigger,omitempty"`
	Err      string        `json:"error,omitempty"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []SpanRecord  `json:"spans"`
}

// Root returns the trace's root span record (the first entry), or nil.
func (td *TraceData) Root() *SpanRecord {
	if td == nil || len(td.Spans) == 0 {
		return nil
	}
	return &td.Spans[0]
}

// Attr returns the root span's attribute value for key, or "".
func (td *TraceData) Attr(key string) string {
	if r := td.Root(); r != nil {
		return r.Attr(key)
	}
	return ""
}

// Outcome classifies the trace for filtering: "error" when the root span
// ended with an error, "ok" otherwise.
func (td *TraceData) Outcome() string {
	if td != nil && td.Err != "" {
		return "error"
	}
	return "ok"
}

// FormatID renders a trace or span ID the way every surface (exemplars,
// /traces, wire logs) spells it: 16 lowercase hex digits.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Tracer mints trace and span IDs for one site and assembles completed
// traces. All methods are safe for concurrent use and safe on a nil
// receiver (a nil *Tracer is "tracing disabled": every Start returns nil).
type Tracer struct {
	site   string
	prefix uint64
	now    func() time.Duration

	mu          sync.Mutex
	nextTrace   uint64
	nextSpan    uint64
	sampleEvery uint64 // 0 = never, 1 = always, N = every Nth root
	sampleSeen  uint64
	onComplete  func(*TraceData)
}

// NewTracer creates a tracer for a site. now supplies the site's timebase
// (typically a simtime clock's Now); nil means all spans record zero times.
func NewTracer(site string, now func() time.Duration) *Tracer {
	return &Tracer{site: site, prefix: sitePrefix(site), now: now}
}

// sitePrefix folds an FNV-1a hash of the site name into the top 16 bits of
// every ID the tracer mints, so spans created independently on the
// controller and on each host land in disjoint ID ranges.
func sitePrefix(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return (h | 1<<63) & (0xffff << 48) // keep 16 bits, never zero-prefix
}

// SetSampleRate configures head sampling for StartSampled: r <= 0 disables,
// r >= 1 samples everything, otherwise every round(1/r)-th root is sampled.
// Sampling is a deterministic counter, not a coin flip.
func (t *Tracer) SetSampleRate(r float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case r <= 0:
		t.sampleEvery = 0
	case r >= 1:
		t.sampleEvery = 1
	default:
		t.sampleEvery = uint64(1/r + 0.5)
	}
}

// Enabled reports whether StartSampled can ever return a span.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sampleEvery > 0
}

// OnComplete registers the sink invoked (synchronously, from End) with every
// completed root trace. Joined segments do not fire it — their records are
// shipped back to the root's site instead.
func (t *Tracer) OnComplete(fn func(*TraceData)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onComplete = fn
}

// Start begins a new root span unconditionally (no sampling decision).
// Returns nil only on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTrace++
	traceID := t.prefix | (t.nextTrace & spanCounterMask)
	t.mu.Unlock()
	return t.newSpan(&traceState{tracer: t, traceID: traceID, root: true}, 0, name)
}

// StartSampled begins a new root span if the deterministic sampler elects
// this request; otherwise it returns nil (and every nil-safe Span method
// downstream is a no-op).
func (t *Tracer) StartSampled(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	every := t.sampleEvery
	if every == 0 {
		t.mu.Unlock()
		return nil
	}
	t.sampleSeen++
	hit := t.sampleSeen%every == 0
	t.mu.Unlock()
	if !hit {
		return nil
	}
	return t.Start(name)
}

// Join begins a local segment of a remote trace: a span whose trace ID and
// parent arrived over the wire. Ending the segment does NOT fire OnComplete;
// the caller reads Records() and ships them back to the root's site.
func (t *Tracer) Join(traceID, parentSpan uint64, name string) *Span {
	if t == nil || traceID == 0 {
		return nil
	}
	return t.newSpan(&traceState{tracer: t, traceID: traceID}, parentSpan, name)
}

const spanCounterMask = (uint64(1) << 48) - 1

func (t *Tracer) newSpan(st *traceState, parent uint64, name string) *Span {
	t.mu.Lock()
	t.nextSpan++
	id := t.prefix | (t.nextSpan & spanCounterMask)
	t.mu.Unlock()
	var at time.Duration
	if t.now != nil {
		at = t.now()
	}
	return &Span{st: st, id: id, parent: parent, name: name, start: at}
}

// traceState is the per-trace accumulator every span of a local trace (or
// local segment of a remote trace) appends its record to on End.
type traceState struct {
	tracer  *Tracer
	traceID uint64
	root    bool // true when this site owns the trace root

	mu      sync.Mutex
	recs    []SpanRecord
	trigger string
}

// Span is one open interval in a trace. All methods are nil-safe so
// unsampled paths cost a single pointer check.
type Span struct {
	st     *traceState
	id     uint64
	parent uint64
	name   string
	start  time.Duration

	mu    sync.Mutex
	attrs []SpanAttr
	ended bool
}

// Context returns the wire propagation pair (trace ID, this span's ID), or
// zeros on a nil span.
func (s *Span) Context() (traceID, spanID uint64) {
	if s == nil {
		return 0, 0
	}
	return s.st.traceID, s.id
}

// TraceHex returns the trace ID in the canonical 16-hex-digit form, or ""
// on a nil span — the exact string exemplars and SessionOptions.TraceID
// carry.
func (s *Span) TraceHex() string {
	if s == nil {
		return ""
	}
	return FormatID(s.st.traceID)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value (batch sizes, frame
// IDs). Formatting happens here so hot paths don't hand-roll strconv calls.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Trigger marks the whole trace for flight-recorder retention (e.g.
// "failover-resubmit", "reattest-evict"). The last non-empty reason wins.
func (s *Span) Trigger(reason string) {
	if s == nil || reason == "" {
		return
	}
	s.st.mu.Lock()
	s.st.trigger = reason
	s.st.mu.Unlock()
}

// Child opens a sub-span at the tracer's current time.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.st.tracer.newSpan(s.st, s.id, name)
}

// ChildAt opens a sub-span with an explicit start time (used by observers
// that replay session-clock timestamps rather than reading the tracer's
// clock).
func (s *Span) ChildAt(name string, start time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := s.st.tracer.newSpan(s.st, s.id, name)
	c.start = start
	return c
}

// Adopt splices span records assembled on another site (shipped back in a
// reply frame) into this span's trace. Records whose Parent is zero are
// re-parented under this span so orphaned remote roots stay attached.
func (s *Span) Adopt(recs []SpanRecord) {
	if s == nil || len(recs) == 0 {
		return
	}
	s.st.mu.Lock()
	for _, r := range recs {
		if r.Parent == 0 {
			r.Parent = s.id
		}
		s.st.recs = append(s.st.recs, r)
	}
	s.st.mu.Unlock()
}

// End closes the span at the tracer's current time.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err (if any) on its record. Ending the
// trace's root span assembles the TraceData and fires the tracer's
// OnComplete sink.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	var at time.Duration
	if now := s.st.tracer.now; now != nil {
		at = now()
	}
	s.endAt(err, at)
}

// EndAt closes the span at an explicit timestamp (same timebase the span
// was opened in via ChildAt).
func (s *Span) EndAt(at time.Duration) { s.EndErrAt(nil, at) }

// EndErrAt is EndAt with an error.
func (s *Span) EndErrAt(err error, at time.Duration) {
	if s == nil {
		return
	}
	s.endAt(err, at)
}

func (s *Span) endAt(err error, at time.Duration) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	d := at - s.start
	if d < 0 {
		d = 0
	}
	rec := SpanRecord{
		Span:     s.id,
		Parent:   s.parent,
		Name:     s.name,
		Site:     s.st.tracer.site,
		Start:    s.start,
		Duration: d,
		Attrs:    attrs,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	st := s.st
	st.mu.Lock()
	// The root's record leads the slice so TraceData.Root() is O(1).
	if st.root && s.parent == 0 {
		st.recs = append([]SpanRecord{rec}, st.recs...)
	} else {
		st.recs = append(st.recs, rec)
	}
	done := st.root && s.parent == 0
	recs := st.recs
	trigger := st.trigger
	st.mu.Unlock()
	if !done {
		return
	}
	td := &TraceData{
		ID:       FormatID(st.traceID),
		TraceID:  st.traceID,
		Name:     s.name,
		Trigger:  trigger,
		Err:      rec.Err,
		Start:    rec.Start,
		Duration: rec.Duration,
		Spans:    recs,
	}
	st.tracer.mu.Lock()
	sink := st.tracer.onComplete
	st.tracer.mu.Unlock()
	if sink != nil {
		sink(td)
	}
}

// Records snapshots every record accumulated so far in this span's trace
// (used by a joined segment to ship its finished spans back over the wire).
func (s *Span) Records() []SpanRecord {
	if s == nil {
		return nil
	}
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	out := make([]SpanRecord, len(s.st.recs))
	copy(out, s.st.recs)
	return out
}

// TraceNode is one vertex of a reassembled trace tree (the /traces/{id}
// JSON shape).
type TraceNode struct {
	SpanRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// Tree reassembles the trace's records into a parent/child tree rooted at
// the trace root. Records whose parent is missing (e.g. the host half of a
// died-mid-call attempt) attach to the root so nothing is silently dropped.
func (td *TraceData) Tree() *TraceNode {
	if td == nil || len(td.Spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*TraceNode, len(td.Spans))
	order := make([]*TraceNode, 0, len(td.Spans))
	for i := range td.Spans {
		n := &TraceNode{SpanRecord: td.Spans[i]}
		if _, dup := nodes[n.Span]; !dup {
			nodes[n.Span] = n
		}
		order = append(order, n)
	}
	root := nodes[td.Spans[0].Span]
	for _, n := range order {
		if n == root {
			continue
		}
		if p, ok := nodes[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			root.Children = append(root.Children, n)
		}
	}
	return root
}
