package attest

import (
	"errors"
	"sync"
	"testing"
	"time"

	"flicker/internal/simtime"
	"flicker/internal/tpm"
)

func TestNonceAuthorityIssueRedeem(t *testing.T) {
	clock := simtime.New()
	a := NewNonceAuthority(clock.Now, time.Second, []byte("t"))
	n1 := a.Issue()
	n2 := a.Issue()
	if n1 == n2 {
		t.Fatal("two issued nonces collide")
	}
	if err := a.Redeem(n1); err != nil {
		t.Fatalf("fresh redeem: %v", err)
	}
	// Second redemption of the same nonce is a replay.
	if err := a.Redeem(n1); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("double redeem = %v, want ErrReplayedNonce", err)
	}
	// A nonce the authority never issued is a forgery/replay.
	var forged tpm.Digest
	forged[0] = 0xAB
	if err := a.Redeem(forged); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("unissued redeem = %v, want ErrReplayedNonce", err)
	}
	if err := a.Redeem(n2); err != nil {
		t.Fatalf("second challenge redeem: %v", err)
	}
}

func TestNonceAuthorityFreshnessWindow(t *testing.T) {
	clock := simtime.New()
	a := NewNonceAuthority(clock.Now, time.Second, []byte("t"))
	n := a.Issue()
	clock.Advance(1500*time.Millisecond, "attacker.delay")
	if err := a.Redeem(n); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("late redeem = %v, want ErrStaleNonce", err)
	}
	// Stale entries are consumed: retrying after the rejection is a replay,
	// not a second stale error.
	if err := a.Redeem(n); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("retry after stale = %v, want ErrReplayedNonce", err)
	}
	// Within the window everything redeems.
	n2 := a.Issue()
	clock.Advance(900*time.Millisecond, "net")
	if err := a.Redeem(n2); err != nil {
		t.Fatalf("in-window redeem: %v", err)
	}
}

func TestNonceAuthoritySweepsExpired(t *testing.T) {
	clock := simtime.New()
	a := NewNonceAuthority(clock.Now, time.Second, []byte("t"))
	for i := 0; i < 10; i++ {
		a.Issue()
	}
	clock.Advance(2*time.Second, "idle")
	a.Issue() // triggers the sweep
	if got := a.Outstanding(); got != 1 {
		t.Fatalf("outstanding after sweep = %d, want 1", got)
	}
}

func TestNonceAuthorityDeterministicPerSeed(t *testing.T) {
	c1, c2 := simtime.New(), simtime.New()
	a1 := NewNonceAuthority(c1.Now, time.Second, []byte("same"))
	a2 := NewNonceAuthority(c2.Now, time.Second, []byte("same"))
	if a1.Issue() != a2.Issue() {
		t.Fatal("same-seed authorities diverge")
	}
	b := NewNonceAuthority(simtime.New().Now, time.Second, []byte("other"))
	if a1.Issue() == b.Issue() {
		t.Fatal("different-seed authorities collide")
	}
}

func TestNonceAuthorityConcurrentRace(t *testing.T) {
	clock := simtime.New()
	a := NewNonceAuthority(clock.Now, time.Minute, []byte("race"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := a.Redeem(a.Issue()); err != nil {
					t.Errorf("redeem: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
}
