// Package attest implements the remote-party side of Flicker (Section 4.4):
// the Privacy CA that certifies AIKs, the TPM Quote Daemon (tqd) that the
// untrusted OS runs to produce attestations, and the verifier logic that
// recomputes expected PCR-17 values and validates quotes.
//
// The PCR-17 algebra a verifier relies on:
//
//	after SKINIT:      V0 = H(0^20 || H(P))
//	(two-stage only):  V0' = H(V0 || H(window))
//	after the session: Vf = extend chain of V0 with
//	                        H(inputs), H(outputs), [nonce], terminator
//
// Only SKINIT can put PCR 17 into state V0, so a valid quote over Vf proves
// that PAL P ran under Flicker with exactly those inputs and outputs.
package attest

import (
	"errors"
	"fmt"

	"flicker/internal/palcrypto"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

// ExpectedLaunchPCR17 returns PCR 17 immediately after launch for an image
// (handling the two-stage optimization).
func ExpectedLaunchPCR17(im *slb.Image) tpm.Digest {
	v := im.ExpectedPCR17()
	if im.TwoStage() {
		v = im.ExpectedPCR17TwoStage()
	}
	if im.HasExtra() {
		// The preparatory code extends the upper region's measurement
		// after protecting it (Section 2.4).
		v = tpm.ExtendDigest(v, im.ExtraMeasurement())
	}
	return v
}

// ExpectedFinalPCR17 recomputes the PCR-17 value after a complete session
// of the given image with the given parameters. nonce may be nil.
func ExpectedFinalPCR17(im *slb.Image, input, output []byte, nonce *tpm.Digest) tpm.Digest {
	v := ExpectedLaunchPCR17(im)
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum(input))
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum(output))
	if nonce != nil {
		v = tpm.ExtendDigest(v, *nonce)
	}
	return tpm.ExtendDigest(v, slb.SessionTerminator)
}

// ExpectedFinalPCR17Ext is ExpectedFinalPCR17 for PALs that perform their
// own PCR-17 extends during execution (like the rootkit detector, which
// extends the kernel hash). palExtends lists those values in order; the
// verifier recomputes the chain launch → palExtends… → H(input) →
// H(output) → [nonce] → terminator.
func ExpectedFinalPCR17Ext(im *slb.Image, palExtends []tpm.Digest, input, output []byte, nonce *tpm.Digest) tpm.Digest {
	v := ExpectedLaunchPCR17(im)
	for _, m := range palExtends {
		v = tpm.ExtendDigest(v, m)
	}
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum(input))
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum(output))
	if nonce != nil {
		v = tpm.ExtendDigest(v, *nonce)
	}
	return tpm.ExtendDigest(v, slb.SessionTerminator)
}

// PrivacyCA certifies that AIKs belong to legitimate TPMs. Verifiers trust
// its public key.
type PrivacyCA struct {
	key *palcrypto.RSAPrivateKey
}

// NewPrivacyCA creates a CA with a deterministic key from the seed.
func NewPrivacyCA(seed []byte, bits int) (*PrivacyCA, error) {
	if bits == 0 {
		bits = 512
	}
	key, err := palcrypto.GenerateRSAKey(palcrypto.NewPRNG(append([]byte("privacy-ca|"), seed...)), bits)
	if err != nil {
		return nil, err
	}
	return &PrivacyCA{key: key}, nil
}

// PublicKey returns the CA's verification key.
func (ca *PrivacyCA) PublicKey() *palcrypto.RSAPublicKey { return &ca.key.RSAPublicKey }

// AIKCert binds an AIK public key to a platform identity.
type AIKCert struct {
	PlatformID string
	AIKPub     []byte // marshaled RSA public key
	Signature  []byte // CA signature over PlatformID || AIKPub
}

// certBody is the signed byte string.
func certBody(platformID string, aikPub []byte) []byte {
	out := []byte("AIK-CERT|")
	out = append(out, platformID...)
	out = append(out, 0)
	return append(out, aikPub...)
}

// Certify issues an AIK certificate.
func (ca *PrivacyCA) Certify(platformID string, aikPub *palcrypto.RSAPublicKey) (*AIKCert, error) {
	pub := palcrypto.MarshalPublicKey(aikPub)
	sig, err := palcrypto.SignPKCS1SHA1(ca.key, certBody(platformID, pub))
	if err != nil {
		return nil, err
	}
	return &AIKCert{PlatformID: platformID, AIKPub: pub, Signature: sig}, nil
}

// VerifyCert checks an AIK certificate against a trusted CA key and returns
// the certified AIK public key.
func VerifyCert(caPub *palcrypto.RSAPublicKey, cert *AIKCert) (*palcrypto.RSAPublicKey, error) {
	if cert == nil {
		return nil, errors.New("attest: nil certificate")
	}
	if err := palcrypto.VerifyPKCS1SHA1(caPub, certBody(cert.PlatformID, cert.AIKPub), cert.Signature); err != nil {
		return nil, fmt.Errorf("attest: AIK certificate invalid: %w", err)
	}
	return palcrypto.UnmarshalPublicKey(cert.AIKPub)
}

// Attestation is what the challenged platform returns: a quote over PCR 17
// and the AIK certificate chain. The event log (which PAL, which
// parameters) travels separately and is untrusted; the verifier recomputes
// it.
type Attestation struct {
	Nonce     tpm.Digest
	Composite tpm.Digest
	Signature []byte
	Cert      *AIKCert
}

// Daemon is the tqd: "a TPM Quote Daemon ... that runs on the untrusted OS
// and provides an attestation service" (Section 6). It owns a loaded AIK.
type Daemon struct {
	tpmc      *tpm.Client
	aikHandle uint32
	aikAuth   tpm.Digest
	aikBlob   []byte // wrapped AIK, reloaded after reboots
	cert      *AIKCert
}

// NewDaemon creates the quote daemon: it generates an AIK in the TPM
// (owner-authorized), keeps the wrapped blob for reloads, and has the
// Privacy CA certify the public key.
func NewDaemon(tpmc *tpm.Client, ownerAuth tpm.Digest, ca *PrivacyCA, platformID string) (*Daemon, error) {
	handle, pub, blob, err := tpmc.MakeIdentity(ownerAuth)
	if err != nil {
		return nil, fmt.Errorf("attest: MakeIdentity: %w", err)
	}
	cert, err := ca.Certify(platformID, pub)
	if err != nil {
		return nil, fmt.Errorf("attest: certifying AIK: %w", err)
	}
	return &Daemon{tpmc: tpmc, aikHandle: handle, aikBlob: blob, cert: cert}, nil
}

// ReloadAIK loads the wrapped AIK blob into a fresh volatile handle; the
// tqd calls this at boot, since a platform reset evicts all loaded keys.
func (d *Daemon) ReloadAIK() error {
	h, err := d.tpmc.LoadKey2(d.aikBlob)
	if err != nil {
		return fmt.Errorf("attest: reloading AIK: %w", err)
	}
	d.aikHandle = h
	return nil
}

// Quote produces an attestation of PCR 17 for the verifier's nonce.
func (d *Daemon) Quote(nonce tpm.Digest) (*Attestation, error) {
	q, err := d.tpmc.Quote(d.aikHandle, d.aikAuth, nonce, tpm.SelectPCRs(17))
	if err != nil {
		return nil, fmt.Errorf("attest: quote: %w", err)
	}
	return &Attestation{
		Nonce:     nonce,
		Composite: q.Composite,
		Signature: q.Signature,
		Cert:      d.cert,
	}, nil
}

// Verify checks an attestation end to end against the PCR-17 value the
// verifier expects:
//
//  1. the AIK certificate chains to the trusted Privacy CA;
//  2. the quote signature covers TPM_QUOTE_INFO(composite, nonce);
//  3. the nonce is the verifier's own (freshness);
//  4. the composite equals CompositeHash({17: expected}).
func Verify(caPub *palcrypto.RSAPublicKey, att *Attestation, nonce tpm.Digest, expectedPCR17 tpm.Digest) error {
	if att == nil {
		return errors.New("attest: nil attestation")
	}
	aikPub, err := VerifyCert(caPub, att.Cert)
	if err != nil {
		return err
	}
	if att.Nonce != nonce {
		return errors.New("attest: nonce mismatch (stale or replayed attestation)")
	}
	qi := tpm.QuoteInfo(att.Composite, nonce)
	if err := palcrypto.VerifyPKCS1SHA1(aikPub, qi, att.Signature); err != nil {
		return fmt.Errorf("attest: quote signature invalid: %w", err)
	}
	want := tpm.CompositeHash(tpm.SelectPCRs(17), map[int]tpm.Digest{17: expectedPCR17})
	if att.Composite != want {
		return errors.New("attest: PCR 17 does not match the expected PAL/session value")
	}
	return nil
}

// VerifySession is the full remote-party check for a Flicker session: it
// recomputes the expected final PCR 17 from the image and parameters, then
// verifies the attestation against it.
func VerifySession(caPub *palcrypto.RSAPublicKey, att *Attestation, nonce tpm.Digest,
	im *slb.Image, input, output []byte) error {
	expected := ExpectedFinalPCR17(im, input, output, &nonce)
	if err := Verify(caPub, att, nonce, expected); err != nil {
		return err
	}
	return nil
}
