package attest

import (
	"strings"
	"testing"

	"flicker/internal/hw/tis"
	"flicker/internal/palcrypto"
	"flicker/internal/simtime"
	"flicker/internal/slb"
	"flicker/internal/tpm"
)

func testImage(t *testing.T, code string) *slb.Image {
	t.Helper()
	im, err := slb.Build(slb.PALCode{Name: "t", Code: []byte(code)})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestExpectedFinalPCR17Chain(t *testing.T) {
	im := testImage(t, "pal-x")
	nonce := palcrypto.SHA1Sum([]byte("n"))
	v := im.ExpectedPCR17()
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum([]byte("in")))
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum([]byte("out")))
	v = tpm.ExtendDigest(v, nonce)
	v = tpm.ExtendDigest(v, slb.SessionTerminator)
	if got := ExpectedFinalPCR17(im, []byte("in"), []byte("out"), &nonce); got != v {
		t.Fatal("chain mismatch")
	}
	// nil nonce omits the nonce extend.
	v2 := im.ExpectedPCR17()
	v2 = tpm.ExtendDigest(v2, palcrypto.SHA1Sum([]byte("in")))
	v2 = tpm.ExtendDigest(v2, palcrypto.SHA1Sum([]byte("out")))
	v2 = tpm.ExtendDigest(v2, slb.SessionTerminator)
	if got := ExpectedFinalPCR17(im, []byte("in"), []byte("out"), nil); got != v2 {
		t.Fatal("nil-nonce chain mismatch")
	}
}

func TestExpectedLaunchPCR17TwoStage(t *testing.T) {
	im2, err := slb.BuildTwoStage(slb.PALCode{Name: "t", Code: []byte("pal-y")})
	if err != nil {
		t.Fatal(err)
	}
	if ExpectedLaunchPCR17(im2) != im2.ExpectedPCR17TwoStage() {
		t.Fatal("two-stage launch value wrong")
	}
	im1 := testImage(t, "pal-y")
	if ExpectedLaunchPCR17(im1) != im1.ExpectedPCR17() {
		t.Fatal("one-stage launch value wrong")
	}
}

func TestPrivacyCACertify(t *testing.T) {
	ca, err := NewPrivacyCA([]byte("seed"), 0)
	if err != nil {
		t.Fatal(err)
	}
	aik, err := palcrypto.GenerateRSAKey(palcrypto.NewPRNG([]byte("aik")), 512)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Certify("platform-1", &aik.RSAPublicKey)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := VerifyCert(ca.PublicKey(), cert)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(aik.N) != 0 {
		t.Fatal("recovered AIK differs")
	}
	// Wrong CA key: rejected.
	other, _ := NewPrivacyCA([]byte("other"), 0)
	if _, err := VerifyCert(other.PublicKey(), cert); err == nil {
		t.Fatal("cert verified under wrong CA")
	}
	// Tampered platform ID: rejected.
	bad := *cert
	bad.PlatformID = "platform-2"
	if _, err := VerifyCert(ca.PublicKey(), &bad); err == nil {
		t.Fatal("tampered cert accepted")
	}
	if _, err := VerifyCert(ca.PublicKey(), nil); err == nil {
		t.Fatal("nil cert accepted")
	}
}

// attRig builds a TPM + daemon against a real simulated TPM.
func attRig(t *testing.T) (*tpm.TPM, *tis.Bus, *Daemon, *PrivacyCA) {
	t.Helper()
	clock := simtime.New()
	tp, err := tpm.New(clock, simtime.ProfileBroadcom(), tpm.Options{Seed: []byte("attest-test")})
	if err != nil {
		t.Fatal(err)
	}
	bus := tis.NewBus(tp)
	ca, err := NewPrivacyCA([]byte("ca"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tqd, err := NewDaemon(tpm.NewClient(bus, tis.Locality0, []byte("tqd")), tpm.Digest{}, ca, "test-platform")
	if err != nil {
		t.Fatal(err)
	}
	return tp, bus, tqd, ca
}

func TestDaemonQuoteVerifies(t *testing.T) {
	_, bus, tqd, ca := attRig(t)
	// Put PCR 17 into a known state via the hardware path.
	slbBytes := []byte("some measured pal")
	if _, err := tpm.RunHashSequence(bus, slbBytes); err != nil {
		t.Fatal(err)
	}
	expected := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum(slbBytes))
	nonce := palcrypto.SHA1Sum([]byte("fresh"))
	att, err := tqd.Quote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(ca.PublicKey(), att, nonce, expected); err != nil {
		t.Fatalf("valid attestation rejected: %v", err)
	}
	// Wrong expected value: rejected with the PCR message.
	var wrong tpm.Digest
	wrong[0] = 1
	err = Verify(ca.PublicKey(), att, nonce, wrong)
	if err == nil || !strings.Contains(err.Error(), "PCR 17") {
		t.Fatalf("wrong-PCR error = %v", err)
	}
	// Forged signature: rejected.
	bad := *att
	bad.Signature = append([]byte(nil), att.Signature...)
	bad.Signature[10] ^= 1
	if err := Verify(ca.PublicKey(), &bad, nonce, expected); err == nil {
		t.Fatal("forged signature accepted")
	}
	// Nil attestation.
	if err := Verify(ca.PublicKey(), nil, nonce, expected); err == nil {
		t.Fatal("nil attestation accepted")
	}
}

func TestQuoteNonceBindsFreshness(t *testing.T) {
	_, _, tqd, ca := attRig(t)
	n1 := palcrypto.SHA1Sum([]byte("n1"))
	n2 := palcrypto.SHA1Sum([]byte("n2"))
	att, err := tqd.Quote(n1)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the n1 attestation for challenge n2 must fail even if the
	// attacker rewrites the claimed nonce (signature covers it).
	replay := *att
	replay.Nonce = n2
	var anything tpm.Digest
	if err := Verify(ca.PublicKey(), &replay, n2, anything); err == nil {
		t.Fatal("nonce-rewritten replay accepted")
	}
	if err := Verify(ca.PublicKey(), att, n2, anything); err == nil {
		t.Fatal("stale attestation accepted for new nonce")
	}
}

func TestDaemonSurvivesRebootViaReload(t *testing.T) {
	tp, bus, tqd, ca := attRig(t)
	if _, err := tpm.RunHashSequence(bus, []byte("pal")); err != nil {
		t.Fatal(err)
	}
	nonce := palcrypto.SHA1Sum([]byte("pre"))
	if _, err := tqd.Quote(nonce); err != nil {
		t.Fatal(err)
	}
	// Power cycle: the volatile AIK handle is evicted. The BIOS issues
	// TPM_Startup before anything else runs.
	tp.Reboot()
	if err := tpm.NewClient(bus, tis.Locality0, []byte("bios")).Startup(); err != nil {
		t.Fatal(err)
	}
	if _, err := tqd.Quote(nonce); err == nil {
		t.Fatal("quote succeeded with an evicted AIK handle")
	}
	// The tqd reloads its wrapped blob at boot and quoting resumes, with
	// the SAME certified identity.
	if err := tqd.ReloadAIK(); err != nil {
		t.Fatal(err)
	}
	if _, err := tpm.RunHashSequence(bus, []byte("pal")); err != nil {
		t.Fatal(err)
	}
	nonce2 := palcrypto.SHA1Sum([]byte("post"))
	att, err := tqd.Quote(nonce2)
	if err != nil {
		t.Fatal(err)
	}
	expected := tpm.ExtendDigest(tpm.Digest{}, palcrypto.SHA1Sum([]byte("pal")))
	if err := Verify(ca.PublicKey(), att, nonce2, expected); err != nil {
		t.Fatalf("post-reboot attestation invalid: %v", err)
	}
}

func TestExpectedFinalPCR17ExtChain(t *testing.T) {
	im := testImage(t, "ext-pal")
	d1 := palcrypto.SHA1Sum([]byte("kernel hash"))
	d2 := palcrypto.SHA1Sum([]byte("second extend"))
	nonce := palcrypto.SHA1Sum([]byte("n"))
	v := im.ExpectedPCR17()
	v = tpm.ExtendDigest(v, d1)
	v = tpm.ExtendDigest(v, d2)
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum([]byte("in")))
	v = tpm.ExtendDigest(v, palcrypto.SHA1Sum([]byte("out")))
	v = tpm.ExtendDigest(v, nonce)
	v = tpm.ExtendDigest(v, slb.SessionTerminator)
	got := ExpectedFinalPCR17Ext(im, []tpm.Digest{d1, d2}, []byte("in"), []byte("out"), &nonce)
	if got != v {
		t.Fatal("extended chain mismatch")
	}
	// With no PAL extends it degenerates to the plain chain.
	if ExpectedFinalPCR17Ext(im, nil, []byte("in"), []byte("out"), &nonce) !=
		ExpectedFinalPCR17(im, []byte("in"), []byte("out"), &nonce) {
		t.Fatal("empty extend list should match the plain chain")
	}
}

func TestLaunchChainWithExtraCode(t *testing.T) {
	im, err := slb.Build(slb.PALCode{Name: "big", Code: []byte("slb code"), Extra: []byte("upper code")})
	if err != nil {
		t.Fatal(err)
	}
	want := tpm.ExtendDigest(im.ExpectedPCR17(), im.ExtraMeasurement())
	if ExpectedLaunchPCR17(im) != want {
		t.Fatal("launch chain does not include the extra-code measurement")
	}
}
