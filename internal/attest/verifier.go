package attest

// Verifier-side nonce lifecycle. attest.Verify already binds a quote to
// the verifier's nonce, but that check alone assumes the verifier holds
// exactly one outstanding challenge forever. A controller admitting a
// fleet has many challenges in flight and must also bound how long any of
// them stays redeemable: a quote produced for a week-old nonce proves what
// the platform ran a week ago, not what it runs now. NonceAuthority issues
// challenge nonces, remembers them for a freshness window on the
// verifier's clock, and consumes each exactly once — a response outside
// the window is stale, a second response to the same challenge (or a
// response to a challenge never issued) is a replay/forgery.

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"flicker/internal/palcrypto"
	"flicker/internal/tpm"
)

// ErrStaleNonce is returned by Redeem when the challenge aged out of the
// freshness window before the response arrived.
var ErrStaleNonce = errors.New("attest: nonce outside the freshness window (stale attestation)")

// ErrReplayedNonce is returned by Redeem for a nonce the authority never
// issued or has already consumed: a replayed or forged attestation.
var ErrReplayedNonce = errors.New("attest: nonce never issued or already redeemed (replayed attestation)")

// NonceAuthority issues fresh challenge nonces and redeems each at most
// once within a freshness window. It is safe for concurrent use.
type NonceAuthority struct {
	now    func() time.Duration
	window time.Duration

	mu          sync.Mutex
	prng        *palcrypto.PRNG
	seq         uint64
	outstanding map[tpm.Digest]time.Duration // nonce -> issue time
}

// NewNonceAuthority creates an authority on the given clock reading (a
// simtime.Clock's Now, so freshness is deterministic in tests) with the
// given redemption window. A zero window defaults to one minute of
// verifier time; seed makes the nonce stream deterministic per verifier.
func NewNonceAuthority(now func() time.Duration, window time.Duration, seed []byte) *NonceAuthority {
	if window <= 0 {
		window = time.Minute
	}
	return &NonceAuthority{
		now:         now,
		window:      window,
		prng:        palcrypto.NewPRNG(append([]byte("nonce-authority|"), seed...)),
		outstanding: make(map[tpm.Digest]time.Duration),
	}
}

// Issue mints a fresh challenge nonce and records its issue time. Expired
// entries are swept opportunistically so the outstanding set stays bounded
// by the window, not by fleet history.
func (a *NonceAuthority) Issue() tpm.Digest {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	for n, at := range a.outstanding {
		if now-at > a.window {
			delete(a.outstanding, n)
		}
	}
	a.seq++
	var material [16]byte
	binary.BigEndian.PutUint64(material[:8], a.seq)
	a.prng.Read(material[8:])
	nonce := palcrypto.SHA1Sum(material[:])
	a.outstanding[nonce] = now
	return nonce
}

// Redeem consumes an issued nonce. It fails with ErrReplayedNonce when the
// nonce was never issued or was already redeemed, and with ErrStaleNonce
// when the response arrived after the freshness window; in both cases the
// attestation carrying it must be rejected. A successful redemption
// removes the nonce, so verifying the same response twice is itself a
// replay.
func (a *NonceAuthority) Redeem(nonce tpm.Digest) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	at, ok := a.outstanding[nonce]
	if !ok {
		return ErrReplayedNonce
	}
	delete(a.outstanding, nonce)
	if a.now()-at > a.window {
		return ErrStaleNonce
	}
	return nil
}

// Outstanding reports how many issued nonces await redemption (stale
// entries included until the next Issue sweeps them).
func (a *NonceAuthority) Outstanding() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.outstanding)
}
