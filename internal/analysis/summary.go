package analysis

// The interprocedural layer: per-function summaries computed bottom-up over
// the module call graph, so taint introduced in one function is visible at
// every call site that consumes it. The function-local analyzers (the v1
// untrustedlen, and by construction everything built on plain ast.Inspect)
// lose a fact the moment it crosses a call boundary — a wire-decoded count
// handed to a helper that sizes an allocation, or an unsealed secret handed
// to a formatter two frames up — and after PRs 6–9 the code that touches
// unsealed bytes spans sealed → core → pool → fabric. Summaries carry
// exactly the facts the three interprocedural analyzers (secretflow,
// atomicsafe's census, untrustedlen v2) need:
//
//   - paramFlow:  which results each parameter may flow into
//   - paramSinks: which escape sinks (trace attr, exemplar, log/fmt,
//     package-level var, wire encode, unclamped allocation size) each
//     parameter can reach, with the call chain to the sink
//   - paramScrub: whether the function zeroes a parameter's bytes on an
//     unconditional path (clear(), Zero/Wipe/Scrub/Erase-style ops)
//   - resultWire / resultSecret: which results carry a wire-decoded
//     integer or unsealed-secret-derived bytes
//
// plus the function's own concrete violations (sink events whose value is
// already tainted) and secret obligations (unsealed values that neither
// reach a scrub nor escape to a caller).
//
// Order: the call graph (static calls plus the same import-closure-limited
// CHA expansion the TCB accountant uses — the machinery is shared through
// modIndex below) is condensed into strongly connected components, and
// components are summarized callee-first. Within a recursive component the
// members are iterated to a fixpoint with a hard cutoff of sccRounds
// rounds; facts that have not stabilized by then are dropped, making
// recursion an under-approximation rather than a divergence.
//
// The value model is deliberately modest: flow-insensitive over local
// variables (assignment positions and guard positions disambiguate the
// clamp-before-allocate ordering), field-insensitive (a struct value
// carries the union of everything stored into it), and callee-transparent
// only for module functions — standard-library calls default to
// "parameters flow to every result" except for the cataloged sinks,
// builtins, and the declassification boundaries described in secretflow.go.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// --- shared module index (CHA machinery, also used by tcb.go) ---------------

// modIndex is the module-wide declaration/type index both the TCB
// accountant and the summary engine build their call graphs from.
type modIndex struct {
	l     *Loader
	pkgs  []*Package
	decls map[*types.Func]*ast.FuncDecl
	pkgOf map[*types.Func]*Package
	// named collects every named type in the module, for CHA.
	named []*types.Named
	// visible memoizes each package's transitive import closure (itself
	// included), the set of packages whose types it can name.
	visible map[*types.Package]map[*types.Package]bool
}

// newModIndex indexes every function declaration and named type in pkgs.
func newModIndex(l *Loader, pkgs []*Package) *modIndex {
	ix := &modIndex{
		l:       l,
		pkgs:    pkgs,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		pkgOf:   make(map[*types.Func]*Package),
		visible: make(map[*types.Package]map[*types.Package]bool),
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					ix.decls[obj] = fd
					ix.pkgOf[obj] = pkg
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					ix.named = append(ix.named, named)
				}
			}
		}
	}
	return ix
}

// visibleFrom reports whether def's types are nameable from pkg: def is
// pkg itself or in pkg's transitive imports. A package cannot construct
// values of types it cannot name, so CHA expansions are limited to this
// closure.
func (ix *modIndex) visibleFrom(pkg, def *types.Package) bool {
	if pkg == nil || def == nil || pkg == def {
		return true
	}
	closure := ix.visible[pkg]
	if closure == nil {
		closure = map[*types.Package]bool{pkg: true}
		queue := []*types.Package{pkg}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, imp := range p.Imports() {
				if !closure[imp] {
					closure[imp] = true
					queue = append(queue, imp)
				}
			}
		}
		ix.visible[pkg] = closure
	}
	return closure[def]
}

// implementors returns, for an interface method, the corresponding concrete
// method of every module type implementing the interface (CHA).
func (ix *modIndex) implementors(m *types.Func) []*types.Func {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range ix.named {
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if f, ok := obj.(*types.Func); ok {
			out = append(out, f)
		}
	}
	return out
}

// callEdges records, for each declared function, every module function it
// references plus the CHA expansion of every interface method it calls,
// restricted to the caller's import closure.
func (ix *modIndex) callEdges() map[*types.Func][]*types.Func {
	edges := make(map[*types.Func][]*types.Func, len(ix.decls))
	for obj, fd := range ix.decls {
		pkg := ix.pkgOf[obj]
		var out []*types.Func
		seen := make(map[*types.Func]bool)
		add := func(f *types.Func) {
			if f != nil && !seen[f] && ix.decls[f] != nil {
				seen[f] = true
				out = append(out, f)
			}
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if f, ok := pkg.Info.Uses[id].(*types.Func); ok {
					if recv := f.Type().(*types.Signature).Recv(); recv != nil {
						if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
							for _, impl := range ix.implementors(f) {
								if ix.visibleFrom(pkg.Types, impl.Pkg()) {
									add(impl)
								}
							}
							return true
						}
					}
					add(f)
				}
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return funcID(out[i]) < funcID(out[j]) })
		edges[obj] = out
	}
	return edges
}

// --- taint tags and sink kinds ----------------------------------------------

// tags is one abstract value: the taints it carries and the enclosing
// function's parameters that may flow into it.
type tags struct {
	wire   bool   // derives from a wire-decoded integer
	secret bool   // derives from unsealed secret bytes
	params uint64 // bitset of the enclosing function's parameters
}

func (t tags) empty() bool     { return !t.wire && !t.secret && t.params == 0 }
func (t tags) union(o tags) tags {
	return tags{wire: t.wire || o.wire, secret: t.secret || o.secret, params: t.params | o.params}
}

// SinkKind classifies an escape sink.
type SinkKind uint8

const (
	// SinkAlloc sizes an allocation (make) without a clamp — untrustedlen's
	// sink.
	SinkAlloc SinkKind = iota
	// SinkTraceAttr annotates a trace span (Span.SetAttr / SetAttrInt).
	SinkTraceAttr
	// SinkExemplar pins a metric exemplar (Observe*Exemplar).
	SinkExemplar
	// SinkLog reaches fmt/log output or string formatting.
	SinkLog
	// SinkGlobal is stored into a package-level variable.
	SinkGlobal
	// SinkWire is encoded onto a wire frame (encoding/binary appends/puts,
	// netsim port calls) outside the sealed path.
	SinkWire
)

// String names the sink for diagnostics and the JSON report.
func (k SinkKind) String() string {
	switch k {
	case SinkAlloc:
		return "allocation size"
	case SinkTraceAttr:
		return "trace span attribute"
	case SinkExemplar:
		return "metric exemplar"
	case SinkLog:
		return "log/fmt output"
	case SinkGlobal:
		return "package-level variable"
	case SinkWire:
		return "wire encode"
	}
	return "sink"
}

// sinkChain is one path from a parameter to a sink: the position of the
// sink operation and the callee chain (funcIDs, outermost first) below the
// summarized function.
type sinkChain struct {
	pos   token.Pos
	chain []string
}

// sinkEvent is one concrete violation inside a function: a value already
// carrying taint reached a sink.
type sinkEvent struct {
	kind   SinkKind
	pos    token.Pos // sink position in this function (call site or op)
	srcPos token.Pos // where the taint was born in this function
	wire   bool
	secret bool
	chain  []string // callee chain below this function, nil for a direct sink
}

// obligation is one unsealed-secret value that neither reaches a scrub nor
// escapes to the caller: it would be dropped on the floor still live.
type obligation struct {
	pos         token.Pos // the source call
	name        string    // the local variable, "" when anonymous
	conditional bool      // scrubbed, but only on a conditional path
}

// FuncSummary is one function's interprocedural summary.
type FuncSummary struct {
	fn   *types.Func
	decl *ast.FuncDecl

	// paramFlow[i] is the bitset of result indices parameter i may flow to.
	paramFlow []uint64
	// paramSinks[i] maps each sink kind parameter i can reach to one
	// representative chain.
	paramSinks []map[SinkKind]*sinkChain
	// paramScrub[i] reports that the function zeroes parameter i's bytes on
	// an unconditional path.
	paramScrub []bool
	// paramClamp[i] reports that the function validates parameter i (a
	// comparison guard anywhere in the body). Passing a wire count through
	// a validator helper (memory.checkRange-style) counts as clamping it.
	paramClamp []bool
	// resultWire/resultSecret are bitsets of tainted result indices.
	resultWire   uint64
	resultSecret uint64

	events      []sinkEvent
	obligations []obligation
}

// --- the engine -------------------------------------------------------------

// sccRounds is the recursion cutoff: members of a recursive call-graph
// component are re-summarized at most this many times; facts that have not
// stabilized by then are dropped (an under-approximation, never a hang).
const sccRounds = 3

// maxChaFanout bounds how many CHA implementors an interface call site
// merges; beyond it the call degrades to the unknown-callee default.
const maxChaFanout = 8

// Interp is the interprocedural context shared by one analysis run: the
// module index, the call graph, and the computed summaries.
type Interp struct {
	l     *Loader
	idx   *modIndex
	edges map[*types.Func][]*types.Func
	sums  map[*types.Func]*FuncSummary

	// census for atomicsafe, built lazily (see atomicsafe.go).
	atomics *atomicCensus
}

// NewInterp builds summaries for every function declared in pkgs,
// bottom-up over the call graph.
func NewInterp(l *Loader, pkgs []*Package) *Interp {
	ip := &Interp{
		l:    l,
		idx:  newModIndex(l, pkgs),
		sums: make(map[*types.Func]*FuncSummary),
	}
	ip.edges = ip.idx.callEdges()
	for _, scc := range ip.sccs() {
		rounds := 1
		if len(scc) > 1 || ip.selfRecursive(scc[0]) {
			rounds = sccRounds
		}
		for r := 0; r < rounds; r++ {
			changed := false
			for _, fn := range scc {
				if ip.summarize(fn) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return ip
}

// Summary returns fn's summary, or nil for functions with no declaration in
// the analyzed package set.
func (ip *Interp) Summary(fn *types.Func) *FuncSummary { return ip.sums[fn] }

func (ip *Interp) selfRecursive(fn *types.Func) bool {
	for _, c := range ip.edges[fn] {
		if c == fn {
			return true
		}
	}
	return false
}

// sccs returns the call graph's strongly connected components in
// callee-first (reverse topological) order, deterministically.
func (ip *Interp) sccs() [][]*types.Func {
	fns := make([]*types.Func, 0, len(ip.idx.decls))
	for fn := range ip.idx.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return funcID(fns[i]) < funcID(fns[j]) })

	// Tarjan, iterative enough for Go stacks (module functions are shallow).
	index := make(map[*types.Func]int)
	low := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range ip.edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return funcID(scc[i]) < funcID(scc[j]) })
			out = append(out, scc)
		}
	}
	for _, fn := range fns {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
	return out
}

// summarize (re)computes fn's summary against the current summaries of its
// callees, reporting whether the exported facts changed.
func (ip *Interp) summarize(fn *types.Func) bool {
	decl := ip.idx.decls[fn]
	if decl == nil || decl.Body == nil {
		return false
	}
	w := &funcWalker{
		ip:       ip,
		fn:       fn,
		pkg:      ip.idx.pkgOf[fn],
		st:       make(map[types.Object]tags),
		taintPos: make(map[types.Object]token.Pos),
		guardPos: make(map[types.Object]token.Pos),
		scrubbed: make(map[types.Object]int),
		escaped:  make(map[types.Object]bool),
	}
	sig := fn.Type().(*types.Signature)
	w.sig = sig
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		p := sig.Params().At(i)
		w.st[p] = tags{params: 1 << uint(i)}
		w.paramObj = append(w.paramObj, p)
	}
	sum := &FuncSummary{
		fn:         fn,
		decl:       decl,
		paramFlow:  make([]uint64, len(w.paramObj)),
		paramSinks: make([]map[SinkKind]*sinkChain, len(w.paramObj)),
		paramScrub: make([]bool, len(w.paramObj)),
		paramClamp: make([]bool, len(w.paramObj)),
	}
	w.sum = sum

	// Flow-insensitive fixpoint over the body: two passes are enough for
	// the straight-line chains the module writes; a third catches
	// use-before-def shuffles. Events are only recorded on the final pass
	// so earlier, partially-propagated passes cannot duplicate them.
	for pass := 0; pass < 3; pass++ {
		w.record = pass == 2
		w.walkStmts(decl.Body.List, 0)
	}
	w.finish()

	old := ip.sums[fn]
	ip.sums[fn] = sum
	return old == nil || !summariesEqual(old, sum)
}

func summariesEqual(a, b *FuncSummary) bool {
	if a.resultWire != b.resultWire || a.resultSecret != b.resultSecret ||
		len(a.events) != len(b.events) || len(a.obligations) != len(b.obligations) {
		return false
	}
	for i := range a.paramFlow {
		if a.paramFlow[i] != b.paramFlow[i] || a.paramScrub[i] != b.paramScrub[i] ||
			a.paramClamp[i] != b.paramClamp[i] ||
			len(a.paramSinks[i]) != len(b.paramSinks[i]) {
			return false
		}
		for k := range a.paramSinks[i] {
			if _, ok := b.paramSinks[i][k]; !ok {
				return false
			}
		}
	}
	return true
}

// funcWalker carries one function's in-progress analysis state.
type funcWalker struct {
	ip       *Interp
	fn       *types.Func
	pkg      *Package
	sig      *types.Signature
	sum      *FuncSummary
	paramObj []*types.Var

	st       map[types.Object]tags
	taintPos map[types.Object]token.Pos
	guardPos map[types.Object]token.Pos
	// scrubbed records the shallowest branch depth at which each object was
	// zeroed, stored as depth+1 so the zero value means "never scrubbed". A
	// scrub discharges a secret obligation when it is no deeper than the
	// branch where the secret materialized: a defer inside the same switch
	// arm as the Unseal covers every path that saw the secret.
	scrubbed map[types.Object]int
	// escaped: the object flowed to a return value, an outgoing call that
	// keeps it alive (its result was consumed), a custody boundary
	// (SetOutput/Seal), or a channel — the caller (or the engine's page
	// scrub) takes over the obligation.
	escaped map[types.Object]bool
	// secretSources are the secret-source call sites seen, with the object
	// each result landed in (nil when immediately consumed — treated as
	// escaped into the consuming expression).
	secretSources []secretSource

	// inLit counts enclosing func-literal bodies: returns inside a literal
	// leave the literal, not this function, so they mark escapes without
	// touching the result masks.
	inLit int

	record bool
}

type secretSource struct {
	pos  token.Pos
	obj  types.Object
	cond int // branch depth where the value became secret
}

// --- statements -------------------------------------------------------------

func (w *funcWalker) walkStmts(list []ast.Stmt, cond int) {
	for _, s := range list {
		w.walkStmt(s, cond)
	}
}

func (w *funcWalker) walkStmt(s ast.Stmt, cond int) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s.Lhs, s.Rhs, cond)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.assign(lhs, vs.Values, cond)
				}
			}
		}
	case *ast.ExprStmt:
		w.eval(s.X, cond)
	case *ast.ReturnStmt:
		w.handleReturn(s, cond)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, cond)
		}
		w.recordGuards(s.Cond)
		w.eval(s.Cond, cond)
		w.walkStmts(s.Body.List, cond+1)
		if s.Else != nil {
			w.walkStmt(s.Else, cond+1)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, cond)
		}
		if s.Cond != nil {
			w.recordGuards(s.Cond)
			w.eval(s.Cond, cond)
		}
		if s.Post != nil {
			w.walkStmt(s.Post, cond+1)
		}
		w.walkStmts(s.Body.List, cond+1)
	case *ast.RangeStmt:
		xt := w.eval(s.X, cond)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := w.objOf(id); obj != nil {
					w.merge(obj, xt, e.Pos(), cond)
				}
			}
		}
		w.walkStmts(s.Body.List, cond+1)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, cond)
		}
		if s.Tag != nil {
			w.recordGuards(s.Tag)
			w.eval(s.Tag, cond)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.recordGuards(e)
					w.eval(e, cond)
				}
				w.walkStmts(cc.Body, cond+1)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, cond)
		}
		w.walkStmt(s.Assign, cond)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cond+1)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, cond+1)
				}
				w.walkStmts(cc.Body, cond+1)
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, cond)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, cond)
	case *ast.DeferStmt:
		// A deferred call runs on every exit path: a top-level defer is an
		// unconditional scrub site even though it executes last.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.eval(a, cond)
			}
			w.inLit++
			w.walkStmts(lit.Body.List, cond)
			w.inLit--
			return
		}
		w.evalCall(s.Call, cond)
	case *ast.GoStmt:
		w.evalCall(s.Call, cond+1)
	case *ast.SendStmt:
		t := w.eval(s.Value, cond)
		w.eval(s.Chan, cond)
		// A channel send hands the value to another goroutine; the
		// obligation moves with it.
		if !t.empty() {
			for _, o := range w.carriers(s.Value) {
				w.escaped[o] = true
			}
		}
	case *ast.IncDecStmt:
		w.eval(s.X, cond)
	}
}

// assign propagates RHS tags into LHS objects, handling 1:1, tuple-call,
// and comma-ok shapes, and flags secret stores into package-level state.
func (w *funcWalker) assign(lhs, rhs []ast.Expr, cond int) {
	var rts []tags
	switch {
	case len(lhs) == len(rhs):
		rts = make([]tags, len(rhs))
		for i, r := range rhs {
			rts[i] = w.eval(r, cond)
		}
	case len(rhs) == 1:
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			rts = w.evalCall(call, cond)
			for len(rts) < len(lhs) {
				rts = append(rts, tags{})
			}
		} else {
			// comma-ok over an index/type assertion/receive.
			t := w.eval(rhs[0], cond)
			rts = make([]tags, len(lhs))
			rts[0] = t
		}
	default:
		for _, r := range rhs {
			w.eval(r, cond)
		}
		return
	}
	for i, l := range lhs {
		t := rts[i]
		srcPos := rhs[min(i, len(rhs)-1)].Pos()
		switch l := ast.Unparen(l).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := w.objOf(l)
			if obj == nil {
				continue
			}
			if w.isGlobal(obj) {
				w.sinkValue(t, SinkGlobal, l.Pos(), srcPos, nil)
				continue
			}
			// Strong update: a plain reassignment replaces the old value,
			// so `n = min(n, limit)` launders the wire taint (the clamp
			// idiom) instead of accumulating it forever.
			w.setState(obj, t, srcPos, cond)
		case *ast.SelectorExpr:
			// Field-insensitive: storing into x.f taints x; storing into a
			// package-level var's field is a global store.
			if base := w.rootIdent(l.X); base != nil {
				if obj := w.objOf(base); obj != nil {
					if w.isGlobal(obj) {
						w.sinkValue(t, SinkGlobal, l.Pos(), srcPos, nil)
						continue
					}
					w.merge(obj, t, srcPos, cond)
				}
			}
		case *ast.IndexExpr:
			if base := w.rootIdent(l.X); base != nil {
				if obj := w.objOf(base); obj != nil {
					if w.isGlobal(obj) {
						w.sinkValue(t, SinkGlobal, l.Pos(), srcPos, nil)
						continue
					}
					w.merge(obj, t, srcPos, cond)
				}
			}
		case *ast.StarExpr:
			if base := w.rootIdent(l.X); base != nil {
				if obj := w.objOf(base); obj != nil {
					w.merge(obj, t, srcPos, cond)
				}
			}
		}
	}
}

func (w *funcWalker) handleReturn(s *ast.ReturnStmt, cond int) {
	if w.inLit > 0 {
		// Returning from a literal hands the value to the literal's caller
		// (for pal.Func bodies, the session engine's custody): an escape,
		// not a contribution to the enclosing function's results.
		for _, e := range s.Results {
			if !w.eval(e, cond).empty() {
				for _, o := range w.carriers(e) {
					w.escaped[o] = true
				}
			}
		}
		return
	}
	results := w.sig.Results()
	record := func(r int, t tags, carriersOf ast.Expr) {
		if r >= 64 {
			return
		}
		if t.wire {
			w.sum.resultWire |= 1 << uint(r)
		}
		if t.secret {
			w.sum.resultSecret |= 1 << uint(r)
		}
		for i := range w.sum.paramFlow {
			if t.params&(1<<uint(i)) != 0 {
				w.sum.paramFlow[i] |= 1 << uint(r)
			}
		}
		if carriersOf != nil && !t.empty() {
			for _, o := range w.carriers(carriersOf) {
				w.escaped[o] = true
			}
		}
	}
	switch {
	case len(s.Results) == results.Len():
		for i, e := range s.Results {
			record(i, w.eval(e, cond), e)
		}
	case len(s.Results) == 1 && results.Len() > 1:
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			rts := w.evalCall(call, cond)
			for i := 0; i < results.Len() && i < len(rts); i++ {
				record(i, rts[i], nil)
			}
			for _, o := range w.carriers(s.Results[0]) {
				w.escaped[o] = true
			}
		}
	case len(s.Results) == 0 && results.Len() > 0:
		// Bare return with named results.
		for i := 0; i < results.Len(); i++ {
			if obj := results.At(i); obj.Name() != "" {
				record(i, w.st[obj], nil)
				w.escaped[obj] = true
			}
		}
	default:
		for _, e := range s.Results {
			w.eval(e, cond)
		}
	}
}

// recordGuards marks every object mentioned in a comparison as clamped from
// the comparison's position on: the author validated the value.
func (w *funcWalker) recordGuards(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := w.objOf(id); obj != nil {
						if cur, ok := w.guardPos[obj]; !ok || be.Pos() < cur {
							w.guardPos[obj] = be.Pos()
						}
					}
				}
				return true
			})
		}
		return true
	})
}

// --- expressions ------------------------------------------------------------

// eval computes an expression's tags (first result for calls).
func (w *funcWalker) eval(e ast.Expr, cond int) tags {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			return w.st[obj]
		}
	case *ast.CallExpr:
		rts := w.evalCall(e, cond)
		if len(rts) > 0 {
			return rts[0]
		}
	case *ast.BinaryExpr:
		x := w.eval(e.X, cond)
		y := w.eval(e.Y, cond)
		switch e.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return tags{} // booleans are not carriers
		}
		return x.union(y)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW { // channel receive: unknown producer
			w.eval(e.X, cond)
			return tags{}
		}
		return w.eval(e.X, cond)
	case *ast.StarExpr:
		return w.eval(e.X, cond)
	case *ast.SelectorExpr:
		// Qualified package identifier or field/method selection: a field
		// read carries the base value's tags (field-insensitive).
		if sel := w.pkg.Info.Selections[e]; sel != nil {
			if sel.Kind() == types.FieldVal {
				return w.eval(e.X, cond)
			}
			return tags{} // method value
		}
		return tags{} // pkg.Name
	case *ast.IndexExpr:
		return w.eval(e.X, cond)
	case *ast.IndexListExpr:
		return w.eval(e.X, cond)
	case *ast.SliceExpr:
		return w.eval(e.X, cond)
	case *ast.TypeAssertExpr:
		return w.eval(e.X, cond)
	case *ast.CompositeLit:
		var t tags
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t = t.union(w.eval(kv.Value, cond))
				continue
			}
			t = t.union(w.eval(elt, cond))
		}
		return t
	case *ast.FuncLit:
		w.walkLit(e, cond)
	}
	return tags{}
}

// walkLit walks a function literal's body: as conditional (it runs at an
// unknown time, so scrubs inside don't count as covering the enclosing
// function's paths) and with lit-return semantics.
func (w *funcWalker) walkLit(lit *ast.FuncLit, cond int) {
	w.inLit++
	w.walkStmts(lit.Body.List, cond+1)
	w.inLit--
}

// evalCall dispatches one call: builtins, conversions, sources, scrubs,
// custody boundaries, sinks, module callees (summary transfer), and the
// unknown-callee default.
func (w *funcWalker) evalCall(call *ast.CallExpr, cond int) []tags {
	info := w.pkg.Info

	// Immediately-invoked (or go'd) literal: walk the body, then fall
	// through to the unknown-callee default for the result.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkLit(lit, cond)
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap", "make", "new", "min", "max":
				// len/cap launder (a length is not the value); min/max are
				// the clamp idiom; make/new create fresh values. Arguments
				// still get walked for nested calls.
				for _, a := range call.Args {
					w.eval(a, cond)
				}
				if id.Name == "make" {
					w.auditMakeSizes(call, cond)
				}
				return []tags{{}}
			case "clear":
				// clear(x) zeroes x in place: the scrub sink.
				if len(call.Args) == 1 {
					w.scrubExpr(call.Args[0], cond)
				}
				return []tags{{}}
			case "append", "copy":
				var t tags
				for _, a := range call.Args {
					t = t.union(w.eval(a, cond))
				}
				if len(call.Args) > 0 {
					if base := w.rootIdent(call.Args[0]); base != nil {
						if obj := w.objOf(base); obj != nil {
							w.merge(obj, t, call.Pos(), cond)
						}
					}
				}
				return []tags{t}
			default:
				for _, a := range call.Args {
					w.eval(a, cond)
				}
				return []tags{{}}
			}
		}
	}

	// Conversions propagate their operand (string(secret), int(n)).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return []tags{w.eval(call.Args[0], cond)}
	}

	f := calleeFunc(info, call)

	// Wire-decode source.
	if isEndianDecode(f) {
		for _, a := range call.Args {
			w.eval(a, cond)
		}
		return []tags{{wire: true}}
	}
	// Secret source.
	if w.ip.isSecretSource(f) {
		for _, a := range call.Args {
			w.eval(a, cond)
		}
		return []tags{{secret: true}}
	}
	// Custody boundary: the value is handed to the sealed path / the
	// engine's scrubbed output register; results are released artifacts.
	if w.ip.isCustody(f) {
		for _, a := range call.Args {
			if !w.eval(a, cond).empty() {
				for _, o := range w.carriers(a) {
					w.escaped[o] = true
				}
			}
		}
		return w.cleanResults(f)
	}
	// Named scrub op (Zero/Wipe/Scrub/Erase/ZeroIfDirty/ResetOutput...),
	// matched by name like scrubpair does, so hw/memory, pal, palcrypto,
	// and fixture scrubbers all count. Checked before declassification:
	// palcrypto.(*RSAPrivateKey).Zero is a scrub, not a release.
	if name := calleeName(call); name != "" && scrubOps[name] {
		for _, a := range call.Args {
			w.eval(a, cond)
			w.scrubExpr(a, cond)
		}
		if recv := receiverExpr(call); recv != nil {
			w.eval(recv, cond)
			w.scrubExpr(recv, cond)
		}
		return w.cleanResults(f)
	}
	// Declassification: palcrypto encrypt/sign/digest outputs are
	// releasable ciphertext and MACs; the key argument is consumed (custody
	// moves into the crypto op), and the result drops the secret tag —
	// otherwise every sealed response frame would flag.
	if w.ip.isDeclassifier(f) {
		for _, a := range call.Args {
			if !w.eval(a, cond).empty() {
				for _, o := range w.carriers(a) {
					w.escaped[o] = true
				}
			}
		}
		if recv := receiverExpr(call); recv != nil {
			w.eval(recv, cond)
		}
		return w.cleanResults(f)
	}
	// Cataloged leak sinks (trace attrs, exemplars, fmt/log, wire encodes).
	if kind, isSink := w.ip.sinkOf(f); isSink {
		for _, a := range call.Args {
			t := w.eval(a, cond)
			w.sinkValue(t, kind, call.Pos(), w.srcPosOf(a), nil)
		}
		// Append-style encoders return their buffer; the buffer inherits
		// the arguments (so chained appends keep flagging).
		return w.unknownResults(call, cond, tags{})
	}

	// Interface method: merge the CHA implementors' summaries (bounded).
	if f != nil {
		if recv := f.Type().(*types.Signature).Recv(); recv != nil {
			if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
				impls := w.ip.idx.implementors(f)
				var known []*FuncSummary
				for _, impl := range impls {
					if !w.ip.idx.visibleFrom(w.pkg.Types, impl.Pkg()) {
						continue
					}
					if s := w.ip.sums[impl]; s != nil {
						known = append(known, s)
					}
				}
				if len(known) > 0 && len(known) <= maxChaFanout {
					return w.applySummaries(call, known, cond)
				}
				return w.unknownResults(call, cond, tags{})
			}
		}
		if s := w.ip.sums[f]; s != nil {
			return w.applySummaries(call, []*FuncSummary{s}, cond)
		}
	}

	// Unknown callee (stdlib, dynamic): parameters flow to every result.
	return w.unknownResults(call, cond, tags{})
}

// applySummaries transfers one or more callee summaries onto a call site:
// argument taints reach the callee's parameter sinks (reported here, at the
// caller, with the chain extended), parameter scrubs discharge arguments,
// and result taints flow out.
func (w *funcWalker) applySummaries(call *ast.CallExpr, sums []*FuncSummary, cond int) []tags {
	nres := 1
	if sig, ok := typeOfCall(w.pkg.Info, call); ok {
		nres = sig
	}
	out := make([]tags, nres)

	argTags := make([]tags, len(call.Args))
	for i, a := range call.Args {
		argTags[i] = w.eval(a, cond)
	}
	for _, s := range sums {
		np := len(s.paramFlow)
		for i, a := range call.Args {
			pi := i
			if pi >= np {
				if np == 0 {
					continue
				}
				pi = np - 1 // variadic tail
			}
			t := argTags[i]
			if t.empty() {
				continue
			}
			// Sinks the callee exposes this parameter to.
			for kind, sc := range s.paramSinks[pi] {
				if kind == SinkAlloc && !t.wire && t.params == 0 {
					continue
				}
				chain := append([]string{funcID(s.fn)}, sc.chain...)
				if kind == SinkAlloc && t.wire && w.unclampedAt(a, call.Pos()) {
					w.sinkValue(tags{wire: true}, SinkAlloc, call.Pos(), w.srcPosOf(a), chain)
				}
				if kind != SinkAlloc && t.secret {
					w.sinkValue(tags{secret: true}, kind, call.Pos(), w.srcPosOf(a), chain)
				}
				// Parameter bits propagate regardless, building this
				// function's own summary.
				w.paramSink(t, kind, call.Pos(), chain)
			}
			// Scrub transfer: the callee zeroes this parameter.
			if s.paramScrub[pi] {
				w.scrubExpr(call.Args[i], cond)
			}
			// Clamp transfer: the callee validates this parameter
			// (memory.checkRange-style helpers), so the value counts as
			// guarded from the call on.
			if s.paramClamp[pi] {
				for _, o := range w.carriers(call.Args[i]) {
					if cur, ok := w.guardPos[o]; !ok || call.Pos() < cur {
						w.guardPos[o] = call.Pos()
					}
				}
			}
			// Custody: the callee folds the argument into a result the
			// caller consumes.
			if s.paramFlow[pi] != 0 {
				for _, o := range w.carriers(call.Args[i]) {
					w.escaped[o] = true
				}
			}
			// Result flow.
			for r := 0; r < nres && r < 64; r++ {
				if s.paramFlow[pi]&(1<<uint(r)) != 0 {
					out[r] = out[r].union(t)
				}
			}
		}
		for r := 0; r < nres && r < 64; r++ {
			if s.resultWire&(1<<uint(r)) != 0 {
				out[r].wire = true
			}
			if s.resultSecret&(1<<uint(r)) != 0 {
				out[r].secret = true
			}
		}
	}
	return out
}

// unknownResults is the default transfer for calls with no summary: every
// result carries the union of the arguments (plus extra), so taint survives
// strings.TrimSpace-style plumbing.
func (w *funcWalker) unknownResults(call *ast.CallExpr, cond int, extra tags) []tags {
	t := extra
	for _, a := range call.Args {
		t = t.union(w.eval(a, cond))
	}
	if recv := receiverExpr(call); recv != nil {
		t = t.union(w.eval(recv, cond))
	}
	if !t.empty() {
		// Custody-by-default: if the caller consumes the result, the taint
		// (and the obligation) moves into it; the assignment path re-taints.
		for _, a := range call.Args {
			for _, o := range w.carriers(a) {
				w.escaped[o] = true
			}
		}
	}
	n := 1
	if nr, ok := typeOfCall(w.pkg.Info, call); ok {
		n = nr
	}
	out := make([]tags, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func (w *funcWalker) cleanResults(f *types.Func) []tags {
	n := 1
	if f != nil {
		if sig, ok := f.Type().(*types.Signature); ok {
			n = sig.Results().Len()
			if n == 0 {
				n = 1
			}
		}
	}
	return make([]tags, n)
}

// auditMakeSizes checks a make() call's size/cap arguments for unclamped
// tainted values — the untrustedlen sink.
func (w *funcWalker) auditMakeSizes(call *ast.CallExpr, cond int) {
	for _, arg := range call.Args[1:] {
		t := w.eval(arg, cond)
		if t.empty() {
			continue
		}
		if !w.unclampedAt(arg, call.Pos()) {
			continue
		}
		if t.wire {
			w.sinkValue(tags{wire: true}, SinkAlloc, call.Pos(), w.srcPosOf(arg), nil)
		}
		w.paramSink(t, SinkAlloc, call.Pos(), nil)
	}
}

// unclampedAt reports whether no carrier of e was guarded (compared or
// min/max'ed) before pos. Expressions with no carrier variable (a decode
// inlined into the size argument) are always unclamped.
func (w *funcWalker) unclampedAt(e ast.Expr, pos token.Pos) bool {
	for _, o := range w.carriers(e) {
		if gp, ok := w.guardPos[o]; ok && gp < pos {
			return false
		}
	}
	return true
}

// --- sinks, scrubs, bookkeeping ---------------------------------------------

// sinkValue records a concrete event (when the value is tainted) on the
// final pass. Param bits route to paramSink separately by callers that
// need position-sensitive handling; this helper covers both for the
// common path.
func (w *funcWalker) sinkValue(t tags, kind SinkKind, pos, srcPos token.Pos, chain []string) {
	w.paramSink(t, kind, pos, chain)
	if !w.record || (!t.wire && !t.secret) {
		return
	}
	if kind == SinkAlloc && !t.wire {
		return // allocation sizes only matter for wire counts
	}
	if kind != SinkAlloc && !t.secret {
		return // leak sinks only matter for secrets
	}
	for _, ev := range w.sum.events {
		if ev.pos == pos && ev.kind == kind {
			return
		}
	}
	w.sum.events = append(w.sum.events, sinkEvent{
		kind: kind, pos: pos, srcPos: srcPos,
		wire: t.wire, secret: t.secret, chain: chain,
	})
}

func (w *funcWalker) paramSink(t tags, kind SinkKind, pos token.Pos, chain []string) {
	if t.params == 0 {
		return
	}
	for i := range w.sum.paramSinks {
		if t.params&(1<<uint(i)) == 0 {
			continue
		}
		if w.sum.paramSinks[i] == nil {
			w.sum.paramSinks[i] = make(map[SinkKind]*sinkChain)
		}
		if _, ok := w.sum.paramSinks[i][kind]; !ok {
			w.sum.paramSinks[i][kind] = &sinkChain{pos: pos, chain: chain}
		}
	}
}

// scrubExpr marks e's carriers as scrubbed at the current branch depth,
// keeping the shallowest depth seen.
func (w *funcWalker) scrubExpr(e ast.Expr, cond int) {
	for _, o := range w.carriers(e) {
		if cur := w.scrubbed[o]; cur == 0 || cur > cond+1 {
			w.scrubbed[o] = cond + 1
		}
		// A scrub on every path through the function is a summary fact
		// about the parameters it covers.
		if cond == 0 {
			if t := w.st[o]; t.params != 0 {
				for i := range w.sum.paramScrub {
					if t.params&(1<<uint(i)) != 0 {
						w.sum.paramScrub[i] = true
					}
				}
			}
		}
	}
}

// merge unions tags into obj's state (weak update, for field-insensitive
// stores), recording the earliest taint site and secret obligations.
func (w *funcWalker) merge(obj types.Object, t tags, pos token.Pos, cond int) {
	if t.empty() {
		return
	}
	cur := w.st[obj]
	if !cur.secret && t.secret {
		// This local just became a secret holder: attach the obligation to
		// the position where it happened. Transitions fire once because
		// state persists across the body passes.
		w.secretSources = append(w.secretSources, secretSource{pos: pos, obj: obj, cond: cond})
	}
	w.st[obj] = cur.union(t)
	if _, ok := w.taintPos[obj]; !ok {
		w.taintPos[obj] = pos
	}
}

// setState replaces obj's state (strong update, for plain reassignment).
func (w *funcWalker) setState(obj types.Object, t tags, pos token.Pos, cond int) {
	cur := w.st[obj]
	if !cur.secret && t.secret {
		w.secretSources = append(w.secretSources, secretSource{pos: pos, obj: obj, cond: cond})
	}
	if t.empty() {
		delete(w.st, obj)
		return
	}
	w.st[obj] = t
	if _, ok := w.taintPos[obj]; !ok {
		w.taintPos[obj] = pos
	}
}

// finish converts the final state into obligations and parameter facts.
func (w *funcWalker) finish() {
	for i, p := range w.paramObj {
		if _, ok := w.guardPos[p]; ok {
			w.sum.paramClamp[i] = true
		}
	}
	seen := make(map[types.Object]bool)
	for _, src := range w.secretSources {
		obj := src.obj
		if obj == nil || seen[obj] {
			continue
		}
		seen[obj] = true
		sc := w.scrubbed[obj]
		if w.escaped[obj] || (sc != 0 && sc-1 <= src.cond) {
			continue
		}
		// Params already carry the obligation at their caller.
		if t := w.st[obj]; t.params != 0 {
			continue
		}
		w.sum.obligations = append(w.sum.obligations, obligation{
			pos: src.pos, name: obj.Name(), conditional: sc != 0,
		})
	}
	sort.Slice(w.sum.obligations, func(i, j int) bool {
		return w.sum.obligations[i].pos < w.sum.obligations[j].pos
	})
	sort.Slice(w.sum.events, func(i, j int) bool {
		if w.sum.events[i].pos != w.sum.events[j].pos {
			return w.sum.events[i].pos < w.sum.events[j].pos
		}
		return w.sum.events[i].kind < w.sum.events[j].kind
	})
}

// --- small helpers ----------------------------------------------------------

func (w *funcWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pkg.Info.Uses[id]
}

func (w *funcWalker) isGlobal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// rootIdent returns the base identifier of a selector/index/star chain.
func (w *funcWalker) rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// carriers lists the local objects with non-empty state mentioned in e.
func (w *funcWalker) carriers(e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.objOf(id); obj != nil {
				if !w.st[obj].empty() {
					out = append(out, obj)
				}
			}
		}
		return true
	})
	return out
}

// srcPosOf returns the earliest known taint position among e's carriers,
// falling back to e itself (for inlined sources).
func (w *funcWalker) srcPosOf(e ast.Expr) token.Pos {
	best := token.NoPos
	for _, o := range w.carriers(e) {
		if tp, ok := w.taintPos[o]; ok && (!best.IsValid() || tp < best) {
			best = tp
		}
	}
	if !best.IsValid() {
		return e.Pos()
	}
	return best
}

// calleeName returns the syntactic callee name (method or function), "" for
// indirect calls.
func calleeName(call *ast.CallExpr) string {
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fe.Name
	case *ast.SelectorExpr:
		return fe.Sel.Name
	}
	return ""
}

// receiverExpr returns the receiver expression of a method-call syntax
// (x in x.M(...)), nil otherwise.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// typeOfCall returns the number of results the call produces.
func typeOfCall(info *types.Info, call *ast.CallExpr) (int, bool) {
	tv, ok := info.Types[call]
	if !ok {
		return 0, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len(), true
	default:
		if tv.IsVoid() {
			return 0, true
		}
		return 1, true
	}
}

// isEndianDecode matches binary.BigEndian/LittleEndian/NativeEndian
// Uint16/Uint32/Uint64 — the wire-integer sources.
func isEndianDecode(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch f.Name() {
	case "Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

// --- source / custody / sink catalogs ---------------------------------------

// isSecretSource reports the unsealed-secret sources: pal.Env.Unseal (the
// session's replay-checked sealed-storage reads in internal/sealed derive
// from it and are summarized automatically).
func (ip *Interp) isSecretSource(f *types.Func) bool {
	if f == nil || f.Name() != "Unseal" {
		return false
	}
	return ip.isEnvMethod(f)
}

// isCustody reports the sealed-path custody boundaries: handing a value to
// them discharges the scrub obligation (the engine zeroes the output page;
// Seal returns releasable ciphertext).
func (ip *Interp) isCustody(f *types.Func) bool {
	if f == nil {
		return false
	}
	switch f.Name() {
	case "SetOutput", "SealToSelf", "SealToPCR17":
		return ip.isEnvMethod(f)
	}
	return false
}

// isDeclassifier reports palcrypto's ciphertext/MAC producers. Decrypt* and
// Unmarshal* stay out: their outputs are plaintext and keep the taint via
// their ordinary summaries.
func (ip *Interp) isDeclassifier(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() != ip.l.Module+"/internal/palcrypto" {
		return false
	}
	name := f.Name()
	return !strings.HasPrefix(name, "Decrypt") && !strings.HasPrefix(name, "Unmarshal")
}

// isEnvMethod reports whether f is a method on internal/pal's Env.
func (ip *Interp) isEnvMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == "Env" && tn.Pkg() != nil &&
		tn.Pkg().Path() == ip.l.Module+"/internal/pal"
}

// sinkOf classifies cataloged leak-sink callees.
func (ip *Interp) sinkOf(f *types.Func) (SinkKind, bool) {
	if f == nil || f.Pkg() == nil {
		return 0, false
	}
	path, name := f.Pkg().Path(), f.Name()
	switch path {
	case "fmt":
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
			"Sprint", "Sprintf", "Sprintln", "Errorf", "Appendf":
			return SinkLog, true
		}
	case "log", "log/slog":
		return SinkLog, true
	case "encoding/binary":
		if strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "PutUint") {
			return SinkWire, true
		}
	}
	switch {
	case path == ip.l.Module+"/internal/trace" &&
		(name == "SetAttr" || name == "SetAttrInt"):
		return SinkTraceAttr, true
	case path == ip.l.Module+"/internal/metrics" && strings.Contains(name, "Exemplar"):
		return SinkExemplar, true
	case path == ip.l.Module+"/internal/netsim" &&
		(name == "Call" || name == "CallAppend" || name == "Send"):
		return SinkWire, true
	}
	return 0, false
}
