package analysis

// walltime: cycle-accounted simulation packages must not read the host's
// wall clock or use math/rand. Every latency the simulation reports is a
// simtime.Clock charge — the paper's Section 7 tables are regenerated from
// those charges, and determinism is what makes the regression benches and
// the measurement-cache bit-identity tests meaningful. A stray time.Now in
// internal/hw or internal/core silently turns a reproducible table into a
// machine-dependent one (PR 4 shipped a mis-scaled shared timer that only
// hand review caught; this class is mechanically checkable).
//
// Genuinely wall-clock code (e.g. the pool's group-commit wait, or a
// queue-delay metric measuring real scheduling latency) documents itself
// with //flickervet:allow walltime(reason) at the offending line and
// routes the reading through an injectable clock so tests stay
// deterministic.

import (
	"go/ast"
	"strconv"
)

// WallTime reports wall-clock and math/rand use inside cycle-accounted
// simulation packages.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "no time.Now/time.Since/math/rand inside cycle-accounted " +
		"simulation packages (use simtime.Clock or an injectable clock)",
	Scope: prefixScope(
		"flicker/internal/hw",
		"flicker/internal/tpm",
		"flicker/internal/core",
		"flicker/internal/fabric",
		"flicker/internal/pool",
		// The tracer's span IDs and sampling decisions must be deterministic
		// (counter-based, no wall clock, no math/rand) or trace-replay tests
		// and the simtime-anchored span timestamps fall apart.
		"flicker/internal/trace",
	),
	Run: runWallTime,
}

// bannedTimeFuncs are the wall-clock readers the simulation must not call.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a cycle-accounted package; use simtime's deterministic noise source or palcrypto.PRNG", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host wall clock inside a cycle-accounted package; charge a simtime.Clock or inject the clock", obj.Name())
			}
			return true
		})
	}
}
