package analysis

// VET_report.json: the machine-readable twin of flickervet's diagnostics,
// uploaded by CI next to TCB_report.json. The schema is deliberately flat:
//
//	{
//	  "module": "flicker",
//	  "analyzers": [
//	    {"name": "secretflow", "doc": "...", "findings": 0, "suppressed": 1},
//	    ...
//	  ],
//	  "findings":   [ {analyzer, file, line, col, message, sink_chain?} ],
//	  "suppressed": [ {analyzer, file, line, col, message, sink_chain?, reason} ]
//	}
//
// "analyzers" lists every analyzer that ran, including clean ones, so a
// zero is an assertion ("secretflow ran and found nothing"), not an
// absence. "findings" must be empty for CI to pass; "suppressed" carries
// each //flickervet:allow with its mandatory reason, so the waiver
// inventory ships with every build.

import (
	"encoding/json"
	"path/filepath"
)

// VetReport is the marshaled form of one flickervet run.
type VetReport struct {
	Module    string           `json:"module"`
	Analyzers []VetAnalyzer    `json:"analyzers"`
	Findings  []VetFinding     `json:"findings"`
	Suppress  []VetSuppression `json:"suppressed"`
}

// VetAnalyzer is one analyzer's tally for the run.
type VetAnalyzer struct {
	Name       string `json:"name"`
	Doc        string `json:"doc"`
	Findings   int    `json:"findings"`
	Suppressed int    `json:"suppressed"`
}

// VetFinding is one diagnostic, positioned and chained.
type VetFinding struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	Chain    []string `json:"sink_chain,omitempty"`
}

// VetSuppression is a finding silenced by an allow directive.
type VetSuppression struct {
	VetFinding
	Reason string `json:"reason"`
}

// Unsuppressed reports the total live finding count.
func (r *VetReport) Unsuppressed() int { return len(r.Findings) }

// JSON marshals the report, indented, with a trailing newline.
func (r *VetReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// buildReport assembles the report from a finished run. File paths are
// relative to the module root when possible, so the artifact is stable
// across checkouts.
func buildReport(module string, analyzers []*Analyzer, diags []Diagnostic, suppressed []SuppressedDiagnostic) *VetReport {
	rep := &VetReport{
		Module:   module,
		Findings: []VetFinding{},
		Suppress: []VetSuppression{},
	}
	counts := make(map[string]*VetAnalyzer, len(analyzers))
	for _, a := range analyzers {
		va := &VetAnalyzer{Name: a.Name, Doc: a.Doc}
		counts[a.Name] = va
		rep.Analyzers = append(rep.Analyzers, VetAnalyzer{}) // placeholder, filled below
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, vetFinding(d))
		if c := counts[d.Analyzer]; c != nil {
			c.Findings++
		}
	}
	for _, s := range suppressed {
		rep.Suppress = append(rep.Suppress, VetSuppression{VetFinding: vetFinding(s.Diagnostic), Reason: s.Reason})
		if c := counts[s.Analyzer]; c != nil {
			c.Suppressed++
		}
	}
	for i, a := range analyzers {
		rep.Analyzers[i] = *counts[a.Name]
	}
	return rep
}

func vetFinding(d Diagnostic) VetFinding {
	return VetFinding{
		Analyzer: d.Analyzer,
		File:     filepath.ToSlash(d.Pos.Filename),
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
		Chain:    d.Chain,
	}
}
