// Package analysis is flickervet's engine: a dependency-free static-analysis
// suite for this module, built only on go/ast, go/parser, go/types, and
// go/importer.
//
// The paper's headline claim is a *measured, minimal* TCB (Section 7.1:
// hundreds of lines where a commodity stack has millions). A repo that
// simulates that claim should be able to measure its own TCB and enforce
// the security contracts the simulation models mechanically — the bug
// classes this package codifies (unclamped wire-length allocations, wall
// clock leaking into cycle-accounted code, staged secrets without a
// registered scrub, locality-4 ordinals escaping the SKINIT path, and
// per-event metric-handle lookups) have each been hit and hand-fixed in
// this repo's history.
//
// The loader in this file type-checks the whole module from source:
// module-internal imports resolve to their directories, standard-library
// imports go through go/importer (compiled export data when available,
// source otherwise). Nothing outside the standard library is required.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module (or a test
// fixture loaded under a synthetic import path).
type Package struct {
	// Path is the package's import path ("flicker/internal/core").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking failures. Analysis still runs on
	// what checked, but flickervet reports these and exits nonzero.
	TypeErrors []error
}

// Loader loads and type-checks packages of a single module from source.
type Loader struct {
	// Fset positions every loaded file, shared across packages.
	Fset *token.FileSet
	// Root is the module root (the directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import cycle guard
	std     types.Importer      // stdlib fallback chain
	stdPkgs map[string]*types.Package
}

// NewLoader creates a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One importer instance for the loader's whole lifetime: a fresh
	// importer per import would hand out distinct *types.Package instances
	// for the same stdlib path, and cross-package types would not unify.
	// Compiled export data (gc) is ~10x faster when the toolchain ships it;
	// probe once and fall back to type-checking the stdlib from source.
	std := importer.Default()
	if _, err := std.Import("fmt"); err != nil {
		std = importer.ForCompiler(fset, "source", nil)
	}
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  mod,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     std,
		stdPkgs: make(map[string]*types.Package),
	}, nil
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll loads every package under the module root, skipping testdata,
// vendor, hidden, and underscore-prefixed directories. The result is sorted
// by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		imp := l.Module
		if rel != "." {
			imp = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(imp)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDirAs loads the package in dir under the given synthetic import path.
// Analyzer tests use it to place fixture packages inside an analyzer's
// package-path scope without the fixtures living there.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	return l.loadDir(dir, importPath)
}

// Package returns an already-loaded package by import path, or nil.
func (l *Loader) Package(path string) *Package { return l.pkgs[path] }

// Packages returns every module package loaded so far, sorted by path.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// load resolves a module-internal import path to its directory and loads it.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(importPath, l.Module)
	rel = strings.TrimPrefix(rel, "/")
	return l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), importPath)
}

// loadDir parses and type-checks one directory as importPath.
func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer func() { delete(l.loading, importPath) }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %q: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg := &Package{Path: importPath, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.importPkg(path)
		}),
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg resolves one import: module-internal paths load from source,
// everything else goes to the loader's standard-library importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return p.Types, fmt.Errorf("analysis: %q has type errors", path)
		}
		return p.Types, nil
	}
	if p, ok := l.stdPkgs[path]; ok {
		return p, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.stdPkgs[path] = p
	return p, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
