package analysis

// framekind: every switch that dispatches on fabric frame kinds or run/op
// status codes must carry a non-empty default arm. The fabric's failure
// contract (PR 7/8) is that protocol garbage and unknown frames degrade to
// an explicit failover outcome (host-lost, runLost, an error response) —
// a switch that silently falls through turns the next added frame kind
// into a dropped request instead of a failed-over one.
//
// Detection is name-driven and local: a switch "dispatches on kinds" when
// any of its case expressions mentions a package-level constant whose name
// matches the fabric catalogs (kindX / runX). That keeps the lint honest
// in fixtures and future packages without hard-coding the constant list.

import (
	"go/ast"
	"go/types"
	"regexp"
)

// FrameKind reports fabric kind/status switches with no failover default.
var FrameKind = &Analyzer{
	Name: "framekind",
	Doc: "switches over fabric frame/op kind constants must have a " +
		"non-empty default arm that fails over",
	Scope: prefixScope("flicker/internal/fabric"),
	Run:   runFrameKind,
}

// kindConstName matches the fabric constant catalogs: frame kinds
// (kindChallenge, kindRunBatch, ...) and run statuses (runOK, runLost, ...).
var kindConstName = regexp.MustCompile(`^(kind|run)[A-Z]`)

func runFrameKind(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			dispatches := false
			var def *ast.CaseClause
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					def = cc
					continue
				}
				for _, e := range cc.List {
					if mentionsKindConst(pass.Pkg.Info, e) {
						dispatches = true
					}
				}
			}
			if !dispatches {
				return true
			}
			switch {
			case def == nil:
				pass.Reportf(sw.Pos(),
					"switch over fabric frame/op kind constants has no default arm; "+
						"unknown kinds must fail over explicitly (error response / host-lost)")
			case len(def.Body) == 0:
				pass.Reportf(def.Pos(),
					"default arm of a fabric frame/op kind switch is empty; "+
						"unknown kinds must fail over explicitly, not be swallowed")
			}
			return true
		})
	}
}

// mentionsKindConst reports whether the expression names a package-level
// constant from the fabric kind/status catalogs.
func mentionsKindConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		c, ok := info.Uses[id].(*types.Const)
		if !ok || c.Pkg() == nil {
			return true
		}
		if c.Parent() == c.Pkg().Scope() && kindConstName.MatchString(c.Name()) {
			found = true
		}
		return !found
	})
	return found
}
