package analysis

// atomicsafe: a field that is accessed atomically anywhere must be accessed
// atomically everywhere. -race only catches the interleavings a test
// happens to schedule; this is the static version of the discipline the
// lock-free hot path (submit ring, pool park/wake flags, metric cells)
// relies on.
//
// Three rules, over a module-wide census (one function's atomic access
// must make a *different* file's plain access a finding, so this cannot be
// a per-package walk):
//
//  1. mixed access: a struct field that appears as &x.f in a sync/atomic
//     function call (atomic.LoadUint64(&x.f), CompareAndSwap..., ...) is
//     flagged at every other plain read or write of that field.
//  2. undisciplined neighbors: in a struct that holds atomic.* typed
//     fields (atomic.Bool, atomic.Uint64, ...) and no sync.Mutex/RWMutex,
//     a plain field written by two or more different functions is flagged
//     at its declaration — the struct opted into lock-free access, so a
//     multi-writer plain field next to the atomics is either a race or a
//     handoff protocol that deserves an //flickervet:allow with the
//     protocol named in the reason (see internal/pool/ring.go).
//  3. alignment: a field used with 64-bit sync/atomic functions must sit
//     at an 8-byte offset under 32-bit layout (GOARCH=386 sizes), the
//     classic pre-atomic.Int64 crash. Typed atomic.Int64/Uint64 fields are
//     exempt — the runtime aligns them.
//
// Constructor writes through composite literals do not count as plain
// writes (the object is not yet shared); writes via methods and functions
// do, wherever they live.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicSafe reports mixed atomic/plain access to fields and 64-bit
// alignment hazards.
var AtomicSafe = &Analyzer{
	Name: "atomicsafe",
	Doc: "fields accessed via sync/atomic must be accessed atomically " +
		"everywhere, with 64-bit alignment under 32-bit layout",
	// The census is module-wide; the per-package pass only reports the
	// findings anchored in that package.
	Scope:       func(string) bool { return true },
	NeedsInterp: true,
	Run:         runAtomicSafe,
}

func runAtomicSafe(pass *Pass) {
	if pass.Interp == nil {
		return
	}
	for _, f := range pass.Interp.atomicFindings().findings {
		if f.pkg == pass.Pkg.Path {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

type atomicFinding struct {
	pos token.Pos
	pkg string
	msg string
}

type atomicCensus struct {
	findings []atomicFinding
}

// atomicFindings builds (once) the module-wide census and derived findings.
func (ip *Interp) atomicFindings() *atomicCensus {
	if ip.atomics != nil {
		return ip.atomics
	}
	c := &atomicCensus{}
	ip.atomics = c

	pkgs := make([]*Package, len(ip.idx.pkgs))
	copy(pkgs, ip.idx.pkgs)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	// Pass 1: fields reached through sync/atomic function calls.
	type atomicUse struct {
		firstPos token.Pos
		is64     bool
	}
	fnFields := make(map[*types.Var]*atomicUse)
	consumed := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pkg.Info, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
					return true
				}
				if f.Type().(*types.Signature).Recv() != nil {
					return true // typed atomics police themselves
				}
				if len(call.Args) == 0 {
					return true
				}
				ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					return true
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fv := fieldOf(pkg, sel)
				if fv == nil {
					return true
				}
				consumed[sel] = true
				u := fnFields[fv]
				if u == nil {
					u = &atomicUse{firstPos: call.Pos()}
					fnFields[fv] = u
				}
				if strings.Contains(f.Name(), "64") {
					u.is64 = true
				}
				return true
			})
		}
	}

	// Pass 2: plain accesses to those fields (rule 1).
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || consumed[sel] {
					return true
				}
				fv := fieldOf(pkg, sel)
				if fv == nil {
					return true
				}
				u, tracked := fnFields[fv]
				if !tracked {
					return true
				}
				c.findings = append(c.findings, atomicFinding{
					pos: sel.Sel.Pos(),
					pkg: pkg.Path,
					msg: fmt.Sprintf("field %s is accessed with sync/atomic (e.g. at %s) but accessed plainly here; use atomic ops everywhere or guard it with a mutex",
						fieldName(fv), ip.l.Fset.Position(u.firstPos)),
				})
				return true
			})
		}
	}

	// Pass 3: per-field plain writers, for rule 2.
	writers := make(map[*types.Var]map[string]bool)
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fnName := pkg.Path + "." + fd.Name.Name
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fnName = funcID(obj)
				}
				noteWrite := func(e ast.Expr) {
					if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
						if fv := fieldOf(pkg, sel); fv != nil {
							if writers[fv] == nil {
								writers[fv] = make(map[string]bool)
							}
							writers[fv][fnName] = true
						}
					}
				}
				ast.Inspect(fd, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for _, l := range n.Lhs {
							noteWrite(l)
						}
					case *ast.IncDecStmt:
						noteWrite(n.X)
					}
					return true
				})
			}
		}
	}

	// Rules 2 and 3 over every named struct in the analyzed set.
	named := make([]*types.Named, len(ip.idx.named))
	copy(named, ip.idx.named)
	sort.Slice(named, func(i, j int) bool {
		return named[i].Obj().Pkg().Path()+"."+named[i].Obj().Name() <
			named[j].Obj().Pkg().Path()+"."+named[j].Obj().Name()
	})
	sizes386 := types.SizesFor("gc", "386")
	for _, nt := range named {
		st, ok := nt.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		pkgPath := nt.Obj().Pkg().Path()
		hasAtomicTyped, hasMutex := false, false
		allFields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			allFields[i] = f
			if isAtomicTyped(f.Type()) {
				hasAtomicTyped = true
			}
			if isMutexTyped(f.Type()) {
				hasMutex = true
			}
		}

		// Rule 3: 32-bit alignment of 64-bit atomically-accessed fields.
		var offsets []int64
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			u := fnFields[f]
			if u == nil || !u.is64 {
				continue
			}
			if offsets == nil {
				offsets = sizes386.Offsetsof(allFields)
			}
			if offsets[i]%8 != 0 {
				c.findings = append(c.findings, atomicFinding{
					pos: f.Pos(),
					pkg: pkgPath,
					msg: fmt.Sprintf("field %s is used with 64-bit sync/atomic ops but sits at offset %d under 32-bit layout; move it to the front of the struct or use atomic.Uint64/Int64",
						fieldName(f), offsets[i]),
				})
			}
		}

		// Rule 2: undisciplined plain neighbors of typed atomics.
		if !hasAtomicTyped || hasMutex {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isAtomicTyped(f.Type()) || isSyncTyped(f.Type()) || isChanTyped(f.Type()) {
				continue
			}
			ws := writers[f]
			if len(ws) < 2 {
				continue
			}
			names := make([]string, 0, len(ws))
			for w := range ws {
				names = append(names, w)
			}
			sort.Strings(names)
			c.findings = append(c.findings, atomicFinding{
				pos: f.Pos(),
				pkg: pkgPath,
				msg: fmt.Sprintf("plain field %s of atomic-disciplined struct %s.%s is written by multiple functions (%s); make it atomic, add a mutex, or document the handoff protocol with an allow directive",
					f.Name(), pkgPath, nt.Obj().Name(), strings.Join(names, ", ")),
			})
		}
	}

	sort.Slice(c.findings, func(i, j int) bool {
		if c.findings[i].pos != c.findings[j].pos {
			return c.findings[i].pos < c.findings[j].pos
		}
		return c.findings[i].msg < c.findings[j].msg
	})
	return c
}

// fieldOf resolves a selector to the struct field it names, nil otherwise.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func fieldName(f *types.Var) string {
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

func isAtomicTyped(t types.Type) bool {
	return namedIn(t, "sync/atomic") != ""
}

func isMutexTyped(t types.Type) bool {
	n := namedIn(t, "sync")
	return n == "Mutex" || n == "RWMutex"
}

// isSyncTyped treats any sync.* field (WaitGroup, Once, Cond, Map, Pool) as
// carrying its own discipline.
func isSyncTyped(t types.Type) bool {
	return namedIn(t, "sync") != ""
}

func isChanTyped(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// namedIn returns the type's name when it is a named type declared in the
// given package, "" otherwise.
func namedIn(t types.Type, pkgPath string) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return ""
	}
	return obj.Name()
}
