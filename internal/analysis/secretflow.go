package analysis

// secretflow: unsealed secrets must die inside the session.
//
// Sources: pal.Env.Unseal (every sealed-storage read — sealed.Unseal, the
// secure-channel key recovery, the app PALs — bottoms out there, and the
// summary engine propagates the taint through those wrappers
// automatically).
//
// Obligation: a function that materializes a secret into a local must, on
// an unconditional path, either (a) scrub it (clear(), a Zero/Wipe/Scrub/
// Erase-style op, or a callee summarized as scrubbing that parameter),
// (b) return it — the obligation moves to the caller, or (c) hand it to a
// custody boundary (env.SetOutput, whose page the session engine zeroes on
// teardown; env.SealToSelf/SealToPCR17, which release only ciphertext;
// a channel send; or any call that folds it into a consumed result — e.g.
// palcrypto's AEAD open/derive chain — where the result re-carries the
// taint and the obligation).
//
// Leak sinks — reported wherever a secret-tagged value reaches one, in
// this function or any summarized callee (the chain is printed):
//   trace span attrs (Span.SetAttr/SetAttrInt), metric exemplars,
//   fmt/log output, package-level variables, and wire encodes outside the
//   sealed path (encoding/binary appends/puts, netsim port calls).
//
// Declassification: ciphertext and MACs derived from a secret are
// releasable, otherwise every sealed response would flag. Values returned
// by env.SealToSelf/SealToPCR17 are clean by the custody rule above;
// palcrypto's encrypt/sign/digest outputs are clean because those
// functions' summaries are overridden here (the key parameter does not
// flow to the result).

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// SecretFlow reports unsealed secrets that leak to traces, exemplars, logs,
// globals, or the wire, or that are dropped without a scrub.
var SecretFlow = &Analyzer{
	Name: "secretflow",
	Doc: "unsealed secrets must be scrubbed on every path and never reach " +
		"trace attrs, exemplars, logs, globals, or unsealed wire encodes",
	// Secrets travel wherever the session engine does; every package is in
	// scope.
	Scope:       func(string) bool { return true },
	NeedsInterp: true,
	Run:         runSecretFlow,
}

func runSecretFlow(pass *Pass) {
	if pass.Interp == nil {
		return
	}
	for _, fn := range pass.declaredFuncs() {
		sum := pass.Interp.Summary(fn)
		if sum == nil {
			continue
		}
		for _, ev := range sum.events {
			if !ev.secret || ev.kind == SinkAlloc {
				continue
			}
			msg := fmt.Sprintf("unsealed secret reaches %s", ev.kind)
			if len(ev.chain) > 0 {
				msg += " via " + chainString(ev.chain)
			}
			if ev.srcPos.IsValid() && ev.srcPos != ev.pos {
				msg += fmt.Sprintf(" (secret materialized at %s)", pass.Loader.Fset.Position(ev.srcPos))
			}
			msg += "; secrets may only leave the session sealed or scrubbed"
			pass.reportChain(ev.pos, ev.chain, "%s", msg)
		}
		for _, ob := range sum.obligations {
			name := ob.name
			if name == "" {
				name = "value"
			}
			if ob.conditional {
				pass.Reportf(ob.pos, "unsealed secret %q is scrubbed only on a conditional path; zero it unconditionally (defer clear(...)) before returning", name)
			} else {
				pass.Reportf(ob.pos, "unsealed secret %q is neither scrubbed nor handed off; zero it (clear/Zero/Wipe) or seal it before returning", name)
			}
		}
	}
}

// declaredFuncs lists the functions declared in the pass's package, in
// source order.
func (p *Pass) declaredFuncs() []*types.Func {
	var out []*types.Func
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out = append(out, obj)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func chainString(chain []string) string {
	s := ""
	for i, c := range chain {
		if i > 0 {
			s += " -> "
		}
		s += c
	}
	return s
}
