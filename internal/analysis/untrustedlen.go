package analysis

// untrustedlen: a make/preallocation whose size or capacity derives from a
// wire-decoded integer (binary.BigEndian.Uint32 over input bytes and
// friends) must be clamped against the remaining frame/buffer length
// before the allocation.
//
// This is the PR 4 forged-count bug, generalized: DecodeBatchOutput once
// did `make([]pal.BatchReply, 0, count)` with a 32-bit count read straight
// off the wire, so a forged frame could demand a multi-GB allocation
// before any per-entry validation ran. The repo's idiom for the fix is
//
//	reqs = make([][]byte, 0, min(int(count), len(b)/4))
//
// — cap the preallocation by what the remaining bytes could possibly
// frame. The analyzer accepts a min(...) clamp or any comparison guard on
// the decoded value between the decode and the allocation.
//
// v2 is interprocedural: the taint and the clamp no longer have to sit in
// the same function. The summary engine (summary.go) propagates the wire
// tag through helper results — `count, b, err = readU16(b)` taints count
// because readU16's summary says its first result is wire-decoded — and
// through helper parameters: a helper that sizes an allocation with its
// parameter gives that parameter a SinkAlloc entry, so an unclamped
// wire-decoded argument at any call site is a finding at the call, with
// the callee chain in the message. A clamp on either side of the call
// boundary (caller comparison/min before the call, or callee clamp before
// its make) silences it, matching where authors actually put the guard.

import "fmt"

// UntrustedLen reports unclamped allocations sized by wire-decoded integers.
var UntrustedLen = &Analyzer{
	Name: "untrustedlen",
	Doc: "make() sized by a wire-decoded integer without a clamp against " +
		"the remaining buffer (forged-count allocation), across call boundaries",
	// Every module package parses some frame format somewhere; the bug
	// class is not confined to the simulation core.
	Scope:       func(string) bool { return true },
	NeedsInterp: true,
	Run:         runUntrustedLen,
}

func runUntrustedLen(pass *Pass) {
	if pass.Interp == nil {
		return
	}
	for _, fn := range pass.declaredFuncs() {
		sum := pass.Interp.Summary(fn)
		if sum == nil {
			continue
		}
		for _, ev := range sum.events {
			if ev.kind != SinkAlloc || !ev.wire {
				continue
			}
			src := ""
			if ev.srcPos.IsValid() && ev.srcPos != ev.pos {
				src = fmt.Sprintf(" (decoded at %s)", pass.Fset().Position(ev.srcPos))
			}
			if len(ev.chain) == 0 {
				pass.Reportf(ev.pos,
					"allocation sized by a wire-decoded integer%s without a clamp against the remaining frame; "+
						"cap it, e.g. min(int(n), len(buf)/entrySize)", src)
				continue
			}
			pass.reportChain(ev.pos, ev.chain,
				"wire-decoded integer%s passed unclamped to %s, which sizes an allocation with it; "+
					"clamp before the call, e.g. min(int(n), len(buf)/entrySize)",
				src, chainString(ev.chain))
		}
	}
}
