package analysis

// untrustedlen: a make/preallocation whose size or capacity derives from a
// wire-decoded integer (binary.BigEndian.Uint32 over input bytes and
// friends) must be clamped against the remaining frame/buffer length
// before the allocation.
//
// This is the PR 4 forged-count bug, generalized: DecodeBatchOutput once
// did `make([]pal.BatchReply, 0, count)` with a 32-bit count read straight
// off the wire, so a forged frame could demand a multi-GB allocation
// before any per-entry validation ran. The repo's idiom for the fix is
//
//	reqs = make([][]byte, 0, min(int(count), len(b)/4))
//
// — cap the preallocation by what the remaining bytes could possibly
// frame. The analyzer accepts a min(...) clamp or any comparison guard on
// the decoded value between the decode and the allocation.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UntrustedLen reports unclamped allocations sized by wire-decoded integers.
var UntrustedLen = &Analyzer{
	Name: "untrustedlen",
	Doc: "make() sized by a wire-decoded integer without a clamp against " +
		"the remaining buffer (forged-count allocation)",
	// Every module package parses some frame format somewhere; the bug
	// class is not confined to the simulation core.
	Scope: func(string) bool { return true },
	Run:   runUntrustedLen,
}

// taintTracker accumulates, per file, where wire-decoded integers are born,
// where they are validated, and where they size allocations.
type taintTracker struct {
	pass *Pass
	// taintPos records the earliest position at which each object became
	// tainted (assigned from a wire decode).
	taintPos map[types.Object]token.Pos
	// clampPos records the earliest position at which each tainted object
	// was validated (compared, or re-derived through min).
	clampPos map[types.Object]token.Pos
}

func runUntrustedLen(pass *Pass) {
	tr := &taintTracker{
		pass:     pass,
		taintPos: make(map[types.Object]token.Pos),
		clampPos: make(map[types.Object]token.Pos),
	}
	// Pass 1: find taints and clamps, in any order (positions disambiguate).
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				tr.recordAssign(n)
			case *ast.IfStmt:
				tr.recordGuard(n.Cond)
			case *ast.ForStmt:
				if n.Cond != nil {
					tr.recordGuard(n.Cond)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil {
					tr.recordGuard(n.Tag)
				}
			}
			return true
		})
	}
	// Pass 2: audit allocations.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !tr.isBuiltin(call, "make") || len(call.Args) < 2 {
				return true
			}
			for _, arg := range call.Args[1:] {
				if src, obj := tr.taintedAt(arg, call.Pos()); src.IsValid() {
					what := "a wire-decoded integer"
					if obj != nil {
						what = "wire-decoded " + obj.Name()
					}
					tr.pass.Reportf(call.Pos(),
						"allocation sized by %s (decoded at %s) without a clamp against the remaining frame; "+
							"cap it, e.g. min(int(n), len(buf)/entrySize)",
						what, tr.pass.Fset().Position(src))
					break
				}
			}
			return true
		})
	}
}

// recordAssign taints LHS objects assigned from wire-decode expressions.
func (tr *taintTracker) recordAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := tr.pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = tr.pass.Pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if tr.exprTainted(as.Rhs[i]) {
			if cur, ok := tr.taintPos[obj]; !ok || as.Pos() < cur {
				tr.taintPos[obj] = as.Pos()
			}
		}
	}
}

// recordGuard marks every tainted object mentioned in a condition as
// clamped from that point on: a comparison against anything is taken as
// the author validating the decoded value.
func (tr *taintTracker) recordGuard(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := tr.pass.Pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				if _, tainted := tr.taintPos[obj]; tainted {
					if cur, ok := tr.clampPos[obj]; !ok || be.Pos() < cur {
						tr.clampPos[obj] = be.Pos()
					}
				}
				return true
			})
		}
		return true
	})
}

// exprTainted reports whether an expression carries a wire-decoded integer:
// a binary.*Endian.UintNN call, a tainted identifier, or arithmetic or
// conversions over either. min/max calls launder the taint — they are the
// clamp idiom.
func (tr *taintTracker) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := tr.pass.Pkg.Info.Uses[e]
		_, ok := tr.taintPos[obj]
		return ok
	case *ast.BinaryExpr:
		return tr.exprTainted(e.X) || tr.exprTainted(e.Y)
	case *ast.CallExpr:
		if tr.isBuiltin(e, "min") || tr.isBuiltin(e, "max") {
			return false
		}
		if tr.isEndianDecode(e) {
			return true
		}
		// A conversion propagates its operand's taint (int(n), uint64(n)).
		if tv, ok := tr.pass.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return tr.exprTainted(e.Args[0])
		}
		return false
	}
	return false
}

// taintedAt reports whether e mentions (or is) a wire-decoded value that is
// still unclamped at position at. It returns the taint origin and, when the
// taint flows through a variable, that variable's object.
func (tr *taintTracker) taintedAt(e ast.Expr, at token.Pos) (token.Pos, types.Object) {
	var srcPos token.Pos
	var srcObj types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if srcPos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tr.isBuiltin(n, "min") || tr.isBuiltin(n, "max") {
				return false // clamped subexpression
			}
			if tr.isEndianDecode(n) {
				srcPos = n.Pos()
				return false
			}
		case *ast.Ident:
			obj := tr.pass.Pkg.Info.Uses[n]
			if obj == nil {
				return true
			}
			tp, tainted := tr.taintPos[obj]
			if !tainted || tp >= at {
				return true
			}
			if cp, clamped := tr.clampPos[obj]; clamped && cp < at {
				return true
			}
			srcPos, srcObj = tp, obj
			return false
		}
		return true
	})
	return srcPos, srcObj
}

// isEndianDecode matches binary.BigEndian/LittleEndian/NativeEndian
// Uint16/Uint32/Uint64 calls (and the AppendUint variants do not read, so
// only the readers count).
func (tr *taintTracker) isEndianDecode(call *ast.CallExpr) bool {
	f := calleeFunc(tr.pass.Pkg.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch f.Name() {
	case "Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

// isBuiltin reports whether call invokes the named Go builtin.
func (tr *taintTracker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := tr.pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isB
}
