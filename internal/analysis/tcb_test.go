package analysis

import (
	"strings"
	"testing"
)

// loadModule loads the whole module once for the TCB tests.
func loadModule(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return l, pkgs
}

func TestTCBReportEntries(t *testing.T) {
	l, pkgs := loadModule(t)
	rep, err := BuildTCBReport(l, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]TCBEntry)
	for _, e := range rep.Entries {
		byName[e.PAL] = e
	}
	// Every shipped PAL and the engine pseudo-entry must be discovered.
	for _, want := range []string{
		"ssh-auth", "flicker-ca", "rootkit-detector", "boinc-factor", sessionEngineEntry,
	} {
		e, ok := byName[want]
		if !ok {
			t.Errorf("missing TCB entry %q (have %v)", want, names(rep))
			continue
		}
		if e.Functions == 0 || e.Lines == 0 {
			t.Errorf("%q: empty reachable set (%d funcs, %d lines)", want, e.Functions, e.Lines)
		}
	}
	// The engine entry must not absorb PAL application logic: its closure
	// excludes the pal.PAL interface expansion, so it must be far smaller
	// than any application's and must not include app packages.
	eng := byName[sessionEngineEntry]
	for pkg := range eng.Packages {
		if strings.Contains(pkg, "/internal/apps/") {
			t.Errorf("session-engine TCB includes app package %s", pkg)
		}
	}
	if ssh, ok := byName["ssh-auth"]; ok && eng.Lines >= ssh.Lines {
		t.Errorf("session-engine (%d lines) should be smaller than ssh-auth's closure (%d lines)",
			eng.Lines, ssh.Lines)
	}
}

func TestTCBBudgetCheck(t *testing.T) {
	rep := &TCBReport{Module: "flicker", Entries: []TCBEntry{
		{PAL: "ssh-auth", Lines: 2600, Functions: 10},
		{PAL: "new-pal", Lines: 100, Functions: 2},
	}}
	budget := &TCBBudget{Budgets: map[string]int{
		"ssh-auth": 2500, // under-provisioned: over-budget error
		"gone-pal": 1,    // stale: names no current entry
		// new-pal intentionally missing: unbudgeted-entry error
	}}
	errs := CheckTCBBudget(rep, budget)
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3: %v", len(errs), errs)
	}
	joined := errs[0].Error() + errs[1].Error() + errs[2].Error()
	for _, frag := range []string{"over its 2500-line budget", "no budget", "gone-pal"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("errors missing %q: %v", frag, errs)
		}
	}
	if rep.Entries[0].BudgetLines != 2500 {
		t.Errorf("budget not annotated on report entry: %+v", rep.Entries[0])
	}

	// A sufficient budget passes clean.
	rep2 := &TCBReport{Entries: []TCBEntry{{PAL: "ssh-auth", Lines: 2400}}}
	if errs := CheckTCBBudget(rep2, &TCBBudget{Budgets: map[string]int{"ssh-auth": 2500}}); len(errs) != 0 {
		t.Errorf("clean budget produced errors: %v", errs)
	}
}

func names(rep *TCBReport) []string {
	var out []string
	for _, e := range rep.Entries {
		out = append(out, e.PAL)
	}
	return out
}
