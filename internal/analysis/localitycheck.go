package analysis

// localitycheck: the locality-4 TPM hash sequence (HASH_START / HASH_DATA /
// HASH_END, and the HASH_DIGEST fast path) is the CPU microcode's channel —
// it is the ONLY way PCR 17 can be reset without a reboot, and no simulated
// software component holds locality 4. If app, kernel, or pool code could
// drive those ordinals, it could re-measure PCR 17 to an arbitrary value
// and forge a launch identity, which is exactly the class of trusted-path
// rot the "Insecure Despite Proven Updated" VCEK extraction exploited: a
// privileged primitive reachable from code that was never supposed to hold
// it.
//
// The primitives may only be referenced from the SKINIT measurement path
// (internal/hw/cpu, internal/core) and the defining packages themselves
// (internal/tpm, internal/hw/tis).

import (
	"go/ast"
)

// locality4Allowed are the packages that may reference the locality-4
// measurement primitives.
var locality4Allowed = prefixScope(
	"flicker/internal/tpm",
	"flicker/internal/hw/tis",
	"flicker/internal/hw/cpu",
	"flicker/internal/core",
)

// locality4TPMObjects are the restricted names in flicker/internal/tpm.
var locality4TPMObjects = map[string]bool{
	"OrdHashStart": true, "OrdHashData": true, "OrdHashEnd": true,
	"OrdHashDigest": true, "RunHashSequence": true,
	"RunHashSequencePrecomputed": true,
}

// LocalityCheck reports locality-4 measurement primitives referenced
// outside the SKINIT path.
var LocalityCheck = &Analyzer{
	Name: "localitycheck",
	Doc: "locality-4 TPM hash-sequence primitives (PCR 17 reset path) may " +
		"only be issued from the SKINIT measurement path",
	Scope: func(pkg string) bool { return !locality4Allowed(pkg) },
	Run:   runLocalityCheck,
}

func runLocalityCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "flicker/internal/tpm":
				if locality4TPMObjects[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"tpm.%s is a locality-4 measurement primitive (PCR 17 reset path); "+
							"only the SKINIT path (internal/hw/cpu, internal/core) may issue it", obj.Name())
				}
			case "flicker/internal/hw/tis":
				if obj.Name() == "Locality4" {
					pass.Reportf(sel.Pos(),
						"tis.Locality4 is the CPU microcode's hardware locality; "+
							"software outside the SKINIT path must not address it")
				}
			}
			return true
		})
	}
}
