package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// fixtureCases pairs each analyzer with its seeded fixture package. The
// synthetic import path places the fixture inside the analyzer's scope;
// each fixture holds at least one violation and one near-miss, and the
// golden file is the analyzer's exact expected output.
var fixtureCases = []struct {
	analyzer *Analyzer
	dir      string
	as       string
}{
	{UntrustedLen, "untrustedlen", "flicker/internal/apps/ulfixture"},
	{WallTime, "walltime", "flicker/internal/hw/wtfixture"},
	{ScrubPair, "scrubpair", "flicker/internal/core/spfixture"},
	{LocalityCheck, "localitycheck", "flicker/internal/apps/lcfixture"},
	{MetricHandle, "metrichandle", "flicker/internal/pool/mhfixture"},
	// Tracing-era scope extensions: the tracer package is cycle-accounted
	// (deterministic IDs and sampling), and the fabric's exemplar-bearing
	// observation methods are per-event consumers like Observe.
	{WallTime, "walltime_trace", "flicker/internal/trace/wtfixture"},
	{MetricHandle, "metrichandle_fabric", "flicker/internal/fabric/mhfixture"},
	// flickervet v2: analyzers built on the interprocedural summary engine.
	// The secretflow leak is seeded two calls deep and the untrustedlen_x
	// cases split decode and allocation across functions, so these fixtures
	// fail without the summary transfer.
	{SecretFlow, "secretflow", "flicker/internal/apps/sffixture"},
	{AtomicSafe, "atomicsafe", "flicker/internal/pool/asfixture"},
	{FrameKind, "framekind", "flicker/internal/fabric/fkfixture"},
	{UntrustedLen, "untrustedlen_x", "flicker/internal/apps/ulxfixture"},
}

func TestAnalyzerFixturesGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", tc.dir), tc.as)
			if err != nil {
				t.Fatal(err)
			}
			for _, te := range pkg.TypeErrors {
				t.Fatalf("fixture does not type-check: %v", te)
			}
			if !tc.analyzer.Scope(tc.as) {
				t.Fatalf("synthetic path %q is outside %s's scope", tc.as, tc.analyzer.Name)
			}
			diags := Run(l, []*Package{pkg}, []*Analyzer{tc.analyzer})
			if len(diags) == 0 {
				t.Fatalf("%s missed its seeded violation", tc.analyzer.Name)
			}
			var b strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			got := b.String()
			golden := filepath.Join("testdata", "golden", tc.dir+".txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestAnalyzersCleanOnModule is the acceptance gate CI also enforces: the
// module's own code must carry no findings (violations are either fixed or
// carry a justified //flickervet:allow).
func TestAnalyzersCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Fatalf("%s: %v", p.Path, te)
		}
	}
	diags, rep := RunReport(l, pkgs, All())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
	// Suppressions are allowed but must be visible: every one carries a
	// reason, and the report totals must agree with the raw list.
	var total int
	for _, a := range rep.Analyzers {
		if a.Findings != 0 {
			t.Errorf("report counts %d unsuppressed %s finding(s) on a clean run", a.Findings, a.Name)
		}
		total += a.Suppressed
	}
	if total != len(rep.Suppress) {
		t.Errorf("per-analyzer suppressed counts sum to %d, report lists %d", total, len(rep.Suppress))
	}
	for _, s := range rep.Suppress {
		if s.Reason == "" {
			t.Errorf("suppression without a reason: %s:%d (%s)", s.File, s.Line, s.Analyzer)
		}
	}
	t.Logf("module clean under %d analyzers with %d justified suppression(s)", len(rep.Analyzers), total)
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in       string
		ok       bool
		analyzer string
	}{
		{"//flickervet:allow walltime(queue delay is wall time)", true, "walltime"},
		{"//flickervet:allow metrichandle(cold path)", true, "metrichandle"},
		{"//flickervet:allow walltime()", false, ""},   // reason mandatory
		{"//flickervet:allow walltime", false, ""},     // no reason at all
		{"// flickervet:allow walltime(x)", false, ""}, // not a directive (space)
		{"//flickervet:allow (x)", false, ""},          // no analyzer name
	}
	for _, tc := range cases {
		d, ok := parseAllow(tc.in)
		if ok != tc.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if ok && d.analyzer != tc.analyzer {
			t.Errorf("parseAllow(%q) analyzer = %q, want %q", tc.in, d.analyzer, tc.analyzer)
		}
	}
}
