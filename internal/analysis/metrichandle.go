package analysis

// metrichandle: hot-path packages must not look a metrics series up per
// event. Every CounterVec/GaugeVec/HistogramVec.With call joins its label
// values into a series key and takes the family mutex; doing that on every
// TPM command, TIS submit, or DMA transaction is the allocation/latency
// class PR 4 hand-fixed by caching resolved handles (tpm.okCounters,
// tis.cachedOK). The analyzer flags the syntactic signature of the bug — a
// freshly looked-up series consumed in the same expression:
//
//	vec.With(label).Inc()            // flagged: per-event lookup
//	h := vec.With(label); ... h.Inc() // fine: handle cached by the caller
//
// Cold paths (fault/error counters that fire at most once per incident)
// keep the direct form under //flickervet:allow metrichandle(reason).

import (
	"go/ast"
)

// metricsPkg is the module's metrics registry package.
const metricsPkg = "flicker/internal/metrics"

// metricConsumers are the recording methods that mark a series lookup as
// consumed-per-event when chained directly onto With.
var metricConsumers = map[string]bool{
	"Inc": true, "Dec": true, "Add": true, "Set": true,
	"Observe": true, "ObserveDuration": true,
	"ObserveExemplar": true, "ObserveDurationExemplar": true,
}

// MetricHandle reports per-event metrics series lookups in hot-path
// packages.
var MetricHandle = &Analyzer{
	Name: "metrichandle",
	Doc: "hot-path packages must use cached metric handles, not per-event " +
		"With(label...) series lookups",
	Scope: prefixScope(
		"flicker/internal/tpm",
		"flicker/internal/hw",
		"flicker/internal/core",
		"flicker/internal/pool",
		// The fabric's run/admit paths observe per-session histograms (now
		// with exemplars) and the trace hot path must never acquire a
		// registry lookup per span.
		"flicker/internal/fabric",
		"flicker/internal/trace",
	),
	Run: runMetricHandle,
}

func runMetricHandle(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			outer, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(outer.Fun).(*ast.SelectorExpr)
			if !ok || !metricConsumers[sel.Sel.Name] {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			w := calleeFunc(pass.Pkg.Info, inner)
			if w == nil || w.Name() != "With" || w.Pkg() == nil || w.Pkg().Path() != metricsPkg {
				return true
			}
			pass.Reportf(inner.Pos(),
				"metrics series resolved per event (With(...).%s()); cache the handle at registration "+
					"time (the tpm.okCounters / tis.cachedOK idiom) or annotate a cold path",
				sel.Sel.Name)
			return true
		})
	}
}
