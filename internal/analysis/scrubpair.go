package analysis

// scrubpair: a pipeline phase that stages secret-bearing state (SLB window
// writes, staged PAL output) must be covered by a LIFO scrub teardown
// registered at or before that phase in the pipeline's phase list.
//
// This is the PR 4 stale-output leak, generalized: the batched request
// loop staged each request's reply in the shared Env and a request with no
// output of its own could inherit — and leak across callers — the previous
// request's bytes, because the staging had no paired reset. The session
// engine's contract is that teardowns run LIFO on every exit path
// (pipeline.go); this analyzer makes the "every staging phase is behind a
// scrub" half of that contract mechanical.
//
// Detection is structural so the engine types can evolve: any composite
// literal building a slice of phase-shaped structs (a struct with func
// fields named body and teardown, any casing) is treated as a pipeline
// definition. A phase stages if its body — followed through same-package
// calls — reaches a staging operation (PlaceSLB, SetOutput, Write,
// WriteIfChanged, PublishOutputs); a teardown scrubs if it reaches a scrub
// operation (Zero, ZeroIfDirty, Wipe, ResetOutput, DEVClear, Erase,
// Scrub).

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ScrubPair reports staging pipeline phases with no scrub teardown
// registered at or before them.
var ScrubPair = &Analyzer{
	Name: "scrubpair",
	Doc: "pipeline phases that stage secret-bearing state must be covered " +
		"by a LIFO scrub teardown registered at or before the phase",
	Scope: prefixScope("flicker/internal/core"),
	Run:   runScrubPair,
}

// stagingOps are operations that place secret-bearing bytes somewhere that
// outlives the call: the SLB window, the staged output register, memory.
var stagingOps = map[string]bool{
	"PlaceSLB": true, "SetOutput": true, "Write": true,
	"WriteIfChanged": true, "PublishOutputs": true,
}

// scrubOps are operations that erase or reset staged state.
var scrubOps = map[string]bool{
	"Zero": true, "ZeroIfDirty": true, "Wipe": true, "ResetOutput": true,
	"DEVClear": true, "Erase": true, "Scrub": true,
}

func runScrubPair(pass *Pass) {
	decls := funcDeclOf(pass.Pkg)
	sp := &scrubPairCheck{pass: pass, decls: decls, memo: make(map[*types.Func][2]int)}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			elemType, ok := phaseElemType(pass, cl)
			if !ok {
				return true
			}
			sp.checkPipeline(cl, elemType)
			return false // phase literals inside are handled by checkPipeline
		})
	}
}

// phaseElemType reports whether cl builds a slice/array of phase-shaped
// structs, returning the element struct type.
func phaseElemType(pass *Pass, cl *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := pass.Pkg.Info.Types[cl]
	if !ok {
		return nil, false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	default:
		return nil, false
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	var hasBody, hasTeardown bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if _, isFunc := f.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		switch strings.ToLower(f.Name()) {
		case "body":
			hasBody = true
		case "teardown":
			hasTeardown = true
		}
	}
	return st, hasBody && hasTeardown
}

type scrubPairCheck struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	// memo caches (stages, scrubs) per function: 0 unknown, 1 no, 2 yes.
	memo map[*types.Func][2]int
}

// checkPipeline walks one phase list in declaration order, tracking whether
// a scrub teardown has been registered yet.
func (sp *scrubPairCheck) checkPipeline(list *ast.CompositeLit, _ *types.Struct) {
	scrubRegistered := false
	for _, elt := range list.Elts {
		ph, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		var bodyExpr, teardownExpr ast.Expr
		name := ""
		for _, pe := range ph.Elts {
			kv, ok := pe.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch strings.ToLower(key.Name) {
			case "body":
				bodyExpr = kv.Value
			case "teardown":
				teardownExpr = kv.Value
			case "name":
				if lit, ok := kv.Value.(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						name = s
					}
				}
			}
		}
		if teardownExpr != nil && sp.reaches(teardownExpr, scrubOps, 1) {
			scrubRegistered = true
		}
		if bodyExpr != nil && !scrubRegistered && sp.reaches(bodyExpr, stagingOps, 0) {
			label := name
			if label == "" {
				label = "(unnamed)"
			}
			sp.pass.Reportf(ph.Pos(),
				"phase %q stages secret-bearing state but no scrub teardown is registered at or before it; "+
					"pair the staging with a LIFO teardown (e.g. a zero/erase of the staged region)", label)
		}
	}
}

// reaches reports whether fn (an ident for a same-package function, or a
// func literal) transitively performs one of the named operations,
// following calls into same-package function declarations. kind selects
// the memo slot (0 staging, 1 scrub).
func (sp *scrubPairCheck) reaches(fn ast.Expr, ops map[string]bool, kind int) bool {
	visited := make(map[*types.Func]bool)
	var scanFunc func(obj *types.Func) bool
	var scanBody func(body ast.Node) bool

	scanBody = func(body ast.Node) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var calleeName string
			switch fe := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeName = fe.Name
			case *ast.SelectorExpr:
				calleeName = fe.Sel.Name
			default:
				return true
			}
			if ops[calleeName] {
				found = true
				return false
			}
			if f := calleeFunc(sp.pass.Pkg.Info, call); f != nil &&
				f.Pkg() == sp.pass.Pkg.Types && scanFunc(f) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	scanFunc = func(obj *types.Func) bool {
		if v, ok := sp.memo[obj]; ok && v[kind] != 0 {
			return v[kind] == 2
		}
		if visited[obj] {
			return false
		}
		visited[obj] = true
		decl := sp.decls[obj]
		if decl == nil || decl.Body == nil {
			return false
		}
		got := scanBody(decl.Body)
		v := sp.memo[obj]
		if got {
			v[kind] = 2
		} else {
			v[kind] = 1
		}
		sp.memo[obj] = v
		return got
	}

	switch fe := ast.Unparen(fn).(type) {
	case *ast.Ident:
		if f, ok := sp.pass.Pkg.Info.Uses[fe].(*types.Func); ok {
			return scanFunc(f)
		}
	case *ast.FuncLit:
		return scanBody(fe.Body)
	case *ast.SelectorExpr:
		if f, ok := sp.pass.Pkg.Info.Uses[fe.Sel].(*types.Func); ok {
			return scanFunc(f)
		}
	}
	return false
}
