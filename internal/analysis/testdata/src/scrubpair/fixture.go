// Package spfixture seeds one scrubpair violation and one near-miss, using
// a local phase-shaped struct so the analyzer's structural matching is what
// is under test.
package spfixture

type phase struct {
	name     string
	body     func() error
	teardown func()
}

type window struct{ buf []byte }

// Write stages bytes into the window (a staging op by name).
func (w *window) Write(p []byte) { copy(w.buf, p) }

// Zero scrubs the window (a scrub op by name).
func (w *window) Zero() {
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// BadPipeline stages secrets in its first phase with no scrub teardown
// registered anywhere before it: the seeded violation.
func BadPipeline(w *window, secret []byte) []phase {
	return []phase{
		{name: "stage-secret", body: func() error { w.Write(secret); return nil }},
		{name: "compute", body: func() error { return nil }},
	}
}

// GoodPipeline is the near-miss: the staging phase registers its own scrub
// teardown, so the LIFO unwind erases the window on every exit path.
func GoodPipeline(w *window, secret []byte) []phase {
	return []phase{
		{
			name:     "stage-secret",
			body:     func() error { w.Write(secret); return nil },
			teardown: func() { w.Zero() },
		},
		{name: "compute", body: func() error { return nil }},
	}
}
