// Package mhfixture seeds a metrichandle violation in the fabric's scope
// using the exemplar-bearing observation methods: ObserveDurationExemplar
// chained onto a fresh With(...) lookup is a per-event series resolution
// exactly like Observe, and must use a handle cached at registration time.
package mhfixture

import (
	"time"

	"flicker/internal/metrics"
)

type controller struct {
	runSeconds   *metrics.HistogramVec
	runSecondsOK *metrics.Histogram
}

func newController(reg *metrics.Registry) *controller {
	vec := reg.Histogram("fixture_run_seconds", "Session latency.", nil, "result")
	return &controller{runSeconds: vec, runSecondsOK: vec.With("ok")}
}

// observeSlow resolves the series on every completed session: the seeded
// violation, through the exemplar-carrying consumer.
func (c *controller) observeSlow(d time.Duration, traceID string) {
	c.runSeconds.With("ok").ObserveDurationExemplar(d, traceID) // want: per-event lookup
}

// observeFast records through the handle cached at construction — the
// near-miss.
func (c *controller) observeFast(d time.Duration, traceID string) {
	c.runSecondsOK.ObserveDurationExemplar(d, traceID)
}
