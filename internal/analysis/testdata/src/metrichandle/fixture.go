// Package mhfixture seeds one metrichandle violation and one near-miss.
// It is loaded under a hot-path package prefix.
package mhfixture

import "flicker/internal/metrics"

type server struct {
	reqs   *metrics.CounterVec
	okReqs *metrics.Counter
}

func newServer(reg *metrics.Registry) *server {
	vec := reg.Counter("fixture_requests_total", "Requests.", "result")
	return &server{reqs: vec, okReqs: vec.With("ok")}
}

// handleSlow resolves the series on every event: the seeded violation.
func (s *server) handleSlow() {
	s.reqs.With("ok").Inc() // want: per-event lookup
}

// handleFast uses the handle cached at construction — the near-miss.
func (s *server) handleFast() {
	s.okReqs.Inc()
}
